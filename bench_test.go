// Benchmarks regenerating every table and figure of the paper, plus
// the ablations of DESIGN.md §5. Campaign-backed benchmarks execute
// their campaign once (cached across b.N) and report the headline rates
// as custom metrics; the timed loop then measures the per-experiment
// cost. Run with:
//
//	go test -bench=. -benchmem
//
// Campaign sizes are reduced from the paper's (9290/2372) to keep the
// suite fast; cmd/goofi runs the full-scale campaigns.
package ctrlguard_test

import (
	"context"
	"sync"
	"testing"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/fphys"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/sim"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/tune"
	"ctrlguard/internal/workload"
)

const benchCampaignSize = 1500

// --- cached campaign + golden-run fixtures ---

var (
	campaignOnce sync.Once
	campaigns    map[workload.Variant]*goofi.Result

	goldenOnce sync.Once
	goldens    map[workload.Variant]*workload.Outcome
)

func campaignFor(b *testing.B, v workload.Variant) *goofi.Result {
	b.Helper()
	campaignOnce.Do(func() {
		campaigns = make(map[workload.Variant]*goofi.Result)
		for _, variant := range workload.Variants() {
			res, err := goofi.Run(goofi.Config{
				Variant:     variant,
				Experiments: benchCampaignSize,
				Seed:        2001,
			})
			if err != nil {
				b.Fatalf("campaign %s: %v", variant, err)
			}
			campaigns[variant] = res
		}
	})
	return campaigns[v]
}

func goldenFor(b *testing.B, v workload.Variant) *workload.Outcome {
	b.Helper()
	goldenOnce.Do(func() {
		goldens = make(map[workload.Variant]*workload.Outcome)
		for _, variant := range workload.Variants() {
			out := workload.Run(workload.Program(variant), workload.SpecFor(variant))
			if out.Detected() {
				b.Fatalf("golden %s trapped: %v", variant, out.Trap)
			}
			goldens[variant] = out
		}
	})
	return goldens[v]
}

// reportCampaign attaches the paper's headline rates as metrics.
func reportCampaign(b *testing.B, res *goofi.Result) {
	a := goofi.Analyze(res.Records)
	b.ReportMetric(goofi.ValueFailureProportion(a.Total).P()*100, "uwr_pct")
	b.ReportMetric(goofi.SevereProportion(a.Total).P()*100, "severe_pct")
	b.ReportMetric(goofi.DetectedProportion(a.Total).P()*100, "detected_pct")
	vf := goofi.ValueFailureProportion(a.Total)
	sev := goofi.SevereProportion(a.Total)
	if vf.Count > 0 {
		b.ReportMetric(float64(sev.Count)/float64(vf.Count)*100, "severe_share_pct")
	}
}

// benchExperiments times single fault-injection experiments against a
// cached golden run, round-robin over freshly sampled faults.
func benchExperiments(b *testing.B, v workload.Variant) {
	golden := goldenFor(b, v)
	prog := workload.Program(v)
	sampler := inject.NewSampler(7, golden.Instructions)
	injections := make([]workload.Injection, 64)
	for i := range injections {
		injections[i] = sampler.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := workload.SpecFor(v)
		inj := injections[i%len(injections)]
		spec.Injection = &inj
		out := workload.Run(prog, spec)
		if !out.Detected() {
			classify.Run(golden.Outputs, out.Outputs, true, classify.DefaultConfig())
		}
	}
	// Campaign construction in reportCampaign must not count towards
	// the per-experiment timing.
	b.StopTimer()
}

// --- Figures 3, 4, 5: the fault-free closed loop ---

func BenchmarkFig3FaultFreeSpeed(b *testing.B) {
	var finalErr float64
	for i := 0; i < b.N; i++ {
		eng := plant.NewEngine(plant.DefaultEngineConfig())
		ctrl := control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
		tr := sim.Run(ctrl, eng, sim.PaperConfig())
		finalErr = tr.R[tr.Len()-1] - tr.Y[tr.Len()-1]
	}
	b.ReportMetric(finalErr, "final_tracking_err_rpm")
}

func BenchmarkFig4LoadProfile(b *testing.B) {
	load := plant.HillyTerrainLoad()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = 0
		for k := 0; k < plant.DefaultIterations; k++ {
			if v := load(float64(k) * plant.DefaultSampleInterval); v > peak {
				peak = v
			}
		}
	}
	b.ReportMetric(peak, "peak_load")
}

func BenchmarkFig5FaultFreeOutput(b *testing.B) {
	var maxU float64
	for i := 0; i < b.N; i++ {
		eng := plant.NewEngine(plant.DefaultEngineConfig())
		ctrl := control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
		tr := sim.Run(ctrl, eng, sim.PaperConfig())
		maxU = 0
		for _, u := range tr.U {
			if u > maxU {
				maxU = u
			}
		}
	}
	b.ReportMetric(maxU, "max_throttle_deg")
}

// --- Figures 7-10: single-fault example traces ---

// figScenario runs the deterministic injection behind one figure and
// reports the deviation profile.
func figScenario(b *testing.B, v workload.Variant, iteration int, bit uint, want classify.Outcome) {
	golden := goldenFor(b, v)
	prog := workload.Program(v)
	var verdict classify.Verdict
	for i := 0; i < b.N; i++ {
		spec := workload.PaperRunSpec()
		spec.Injection = &workload.Injection{
			At:  golden.IterationStarts[iteration] + 1,
			Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: bit},
		}
		out := workload.Run(prog, spec)
		if out.Detected() {
			b.Fatalf("unexpected detection: %v", out.Trap)
		}
		verdict = classify.Run(golden.Outputs, out.Outputs, true, classify.DefaultConfig())
	}
	if verdict.Outcome != want {
		b.Fatalf("outcome = %v, want %v", verdict.Outcome, want)
	}
	b.ReportMetric(verdict.MaxDeviation, "max_dev_deg")
	b.ReportMetric(float64(verdict.StrongIterations), "strong_iters")
}

func BenchmarkFig7PermanentFailure(b *testing.B) {
	figScenario(b, workload.AlgorithmI, 300, 28, classify.Permanent)
}

func BenchmarkFig8SemiPermanentFailure(b *testing.B) {
	figScenario(b, workload.AlgorithmI, 120, 21, classify.SemiPermanent)
}

func BenchmarkFig9TransientFailure(b *testing.B) {
	figScenario(b, workload.AlgorithmI, 300, 17, classify.Transient)
}

func BenchmarkFig10AssertionMiss(b *testing.B) {
	figScenario(b, workload.AlgorithmII, 390, 20, classify.SemiPermanent)
}

// --- Campaign fast path: checkpointed warm start vs full replay ---

// The warm/full pair measures the same campaign with the checkpoint
// fast path on and off; their ratio is the speedup the CI bench gate
// asserts on (cmd/benchgate -speedup). Both disable the fault-space
// pruner and the lockstep batcher so the pair keeps measuring
// checkpointing alone; the pruned benchmark layers the pruner back on
// top of the warm start, and the lockstep benchmark measures the
// composed production engine. One op = one whole campaign, so run
// these with -benchtime=1x.
const fastPathExperiments = 300

func benchWholeCampaign(b *testing.B, disableWarmStart, disablePrune, disableLockstep bool) {
	var res *goofi.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = goofi.Run(goofi.Config{
			Variant:          workload.AlgorithmI,
			Experiments:      fastPathExperiments,
			Seed:             2001,
			DisableWarmStart: disableWarmStart,
			DisablePrune:     disablePrune,
			DisableLockstep:  disableLockstep,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fastPathExperiments*b.N)/b.Elapsed().Seconds(), "experiments/s")
	if ws := res.WarmStart; ws != nil {
		b.ReportMetric(float64(ws.Resumed), "resumed")
		b.ReportMetric(float64(ws.EarlyExits), "early_exits")
		b.ReportMetric(float64(ws.Checkpoints), "checkpoints")
	}
	if p := res.Prune; p != nil {
		b.ReportMetric(float64(p.Simulated), "simulated")
		b.ReportMetric(float64(p.PrunedDead), "pruned_dead")
		b.ReportMetric(float64(p.Collapsed), "collapsed")
		b.ReportMetric(float64(p.Classes), "classes")
	}
	if l := res.Lockstep; l != nil {
		b.ReportMetric(float64(l.Lanes), "lanes")
		b.ReportMetric(float64(l.Batches), "batches")
		b.ReportMetric(float64(l.Solo), "solo")
	}
}

func BenchmarkCampaignWarmStart(b *testing.B) {
	benchWholeCampaign(b, false, true, true)
}

func BenchmarkCampaignFullReplay(b *testing.B) {
	benchWholeCampaign(b, true, true, true)
}

// BenchmarkCampaignPruned layers fault-space pruning on top of the
// warm start. The CI gate asserts its speedup over
// BenchmarkCampaignWarmStart — the pruner's contribution on top of the
// checkpoint fast path.
func BenchmarkCampaignPruned(b *testing.B) {
	benchWholeCampaign(b, false, false, true)
}

// BenchmarkCampaignLockstep is the production default: warm start,
// pruning, and lockstep batching over the predecoded engine. The CI
// gate asserts its speedup over BenchmarkCampaignFullReplay — the
// whole fast-path stack against the naive campaign.
func BenchmarkCampaignLockstep(b *testing.B) {
	benchWholeCampaign(b, false, false, false)
}

// --- Tables 2, 3, 4: the fault-injection campaigns ---

// skipHeavyCampaigns keeps the CI bench job (-short -benchtime=1x)
// under its time budget: the table/ablation benchmarks share a cached
// seven-variant campaign fixture that alone takes minutes to build.
func skipHeavyCampaigns(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping campaign-fixture benchmark in -short mode")
	}
}

func BenchmarkTable2AlgorithmI(b *testing.B) {
	skipHeavyCampaigns(b)
	benchExperiments(b, workload.AlgorithmI)
	reportCampaign(b, campaignFor(b, workload.AlgorithmI))
}

func BenchmarkTable3AlgorithmII(b *testing.B) {
	skipHeavyCampaigns(b)
	benchExperiments(b, workload.AlgorithmII)
	reportCampaign(b, campaignFor(b, workload.AlgorithmII))
}

func BenchmarkTable4Comparison(b *testing.B) {
	skipHeavyCampaigns(b)
	r1 := campaignFor(b, workload.AlgorithmI)
	r2 := campaignFor(b, workload.AlgorithmII)
	a1, a2 := goofi.Analyze(r1.Records), goofi.Analyze(r2.Records)
	s1, s2 := goofi.SevereProportion(a1.Total), goofi.SevereProportion(a2.Total)
	b.ReportMetric(s1.P()*100, "alg1_severe_pct")
	b.ReportMetric(s2.P()*100, "alg2_severe_pct")
	if s2.P() > 0 {
		b.ReportMetric(s1.P()/s2.P(), "severe_reduction_x")
	}
	var tbl string
	for i := 0; i < b.N; i++ {
		tbl = goofi.RenderComparisonTable(a1, a2)
	}
	if len(tbl) == 0 {
		b.Fatal("empty table")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationRegState: with the state in a register instead of
// the cache, the severe-failure mass moves from the cache region to the
// register region.
func BenchmarkAblationRegState(b *testing.B) {
	skipHeavyCampaigns(b)
	benchExperiments(b, workload.AlgorithmIRegState)
	a := goofi.Analyze(campaignFor(b, workload.AlgorithmIRegState).Records)
	b.ReportMetric(goofi.SevereProportion(a.Cache).P()*100, "cache_severe_pct")
	b.ReportMetric(goofi.SevereProportion(a.Regs).P()*100, "regs_severe_pct")
}

// BenchmarkAblationBackupFirst: backing the state up before asserting
// it poisons the recovery point, so severe failures stay near the
// Algorithm I level instead of dropping.
func BenchmarkAblationBackupFirst(b *testing.B) {
	skipHeavyCampaigns(b)
	benchExperiments(b, workload.AlgorithmIIBackupFirst)
	reportCampaign(b, campaignFor(b, workload.AlgorithmIIBackupFirst))
}

// BenchmarkAblationFailStop: trapping on assertion failure converts
// recoveries into detections — strong failure semantics at the price of
// availability (the controller stops).
func BenchmarkAblationFailStop(b *testing.B) {
	skipHeavyCampaigns(b)
	benchExperiments(b, workload.AlgorithmIIFailStop)
	res := campaignFor(b, workload.AlgorithmIIFailStop)
	a := goofi.Analyze(res.Records)
	constraint := 0
	for _, r := range res.Records {
		if r.Mechanism == string(cpu.MechConstraint) {
			constraint++
		}
	}
	b.ReportMetric(float64(constraint)/float64(len(res.Records))*100, "failstop_pct")
	b.ReportMetric(goofi.SevereProportion(a.Total).P()*100, "severe_pct")
}

// BenchmarkFutureWorkMIMO runs the paper's future-work direction on the
// simulated CPU: a two-state, two-output controller protected by the
// generalised §4.3 scheme. The reported metrics compare the severe
// share of value failures with and without the protection.
func BenchmarkFutureWorkMIMO(b *testing.B) {
	skipHeavyCampaigns(b)
	benchExperiments(b, workload.MIMOAlgorithmI)
	a1 := goofi.Analyze(campaignFor(b, workload.MIMOAlgorithmI).Records)
	a2 := goofi.Analyze(campaignFor(b, workload.MIMOAlgorithmII).Records)
	s1, s2 := goofi.SevereProportion(a1.Total), goofi.SevereProportion(a2.Total)
	b.ReportMetric(s1.P()*100, "mimo_alg1_severe_pct")
	b.ReportMetric(s2.P()*100, "mimo_alg2_severe_pct")
	if s2.P() > 0 {
		b.ReportMetric(s1.P()/s2.P(), "severe_reduction_x")
	}
}

// BenchmarkAblationGuardPolicies compares the guard's recovery policies
// on the Go controller under variable-level injection: fraction of runs
// whose worst output deviation stays under 1 degree.
func BenchmarkAblationGuardPolicies(b *testing.B) {
	policies := []struct {
		name   string
		policy core.RecoveryPolicy
	}{
		{"rollback", core.Rollback},
		{"saturate", core.Saturate},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			cfg := control.PaperPIConfig(plant.DefaultSampleInterval)
			okRuns, runs := 0, 0
			for i := 0; i < b.N; i++ {
				sampler := inject.NewVarSampler(uint64(i)+1, 1, plant.DefaultIterations)
				it, flip := sampler.Next()

				eng := plant.NewEngine(plant.DefaultEngineConfig())
				ctrl := control.NewPI(cfg)
				guard := core.NewGuard(ctrl,
					core.RangeAssertion{Min: cfg.OutMin, Max: cfg.OutMax},
					core.WithPolicy(p.policy))
				ref := plant.PaperReference()

				eng2 := plant.NewEngine(plant.DefaultEngineConfig())
				goldenCtrl := control.NewPI(cfg)
				golden := sim.Run(goldenCtrl, eng2, sim.PaperConfig())

				worst := 0.0
				y := eng.Speed()
				for k := 0; k < plant.DefaultIterations; k++ {
					if k == it {
						flip.Apply(ctrl)
					}
					t := float64(k) * plant.DefaultSampleInterval
					u, err := guard.Step([]float64{ref(t), y})
					if err != nil {
						b.Fatal(err)
					}
					if d := u[0] - golden.U[k]; d > worst {
						worst = d
					} else if -d > worst {
						worst = -d
					}
					y = eng.Step(u[0])
				}
				runs++
				if worst < 1.0 {
					okRuns++
				}
			}
			b.ReportMetric(float64(okRuns)/float64(runs)*100, "runs_under_1deg_pct")
		})
	}
}

// BenchmarkTuneEvaluate measures the tuner's evaluation throughput:
// one full candidate evaluation per op (fault-free run plus a
// 200-experiment variable-level campaign), the unit the design-space
// search spends its time on. The experiments/s metric is the budget
// planner for guardtune: evaluations × experiments ÷ rate ≈ wall time.
func BenchmarkTuneEvaluate(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping evaluator benchmark in -short mode")
	}
	const experiments = 200
	ev := tune.NewEvaluator(17)
	cand := tune.Config{Policy: tune.PolicyRollback, RateLimit: 8}
	// Warm up outside the timer: assertion learning and overhead
	// calibration happen once per evaluator.
	res, err := ev.Evaluate(context.Background(), cand, experiments)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(context.Background(), cand, experiments); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(experiments*b.N)/b.Elapsed().Seconds(), "experiments/s")
	b.ReportMetric(res.Severe.P()*100, "severe_pct")
	b.ReportMetric(res.Overhead*100, "overhead_pct")
}

// --- Fault forensics: the tracing subsystem ---

// traceFixture captures the Figure 7 severe failure once; the encode
// benchmark then measures the stream codec alone.
var (
	traceOnce sync.Once
	traceFig7 *trace.Trace
)

func traceFixture(b *testing.B) *trace.Trace {
	b.Helper()
	traceOnce.Do(func() {
		golden := goldenFor(b, workload.AlgorithmI)
		tr, err := trace.Capture(context.Background(), workload.AlgorithmI,
			workload.PaperRunSpec(), workload.Injection{
				At:  golden.IterationStarts[300] + 1,
				Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 28},
			}, classify.DefaultConfig())
		if err != nil {
			b.Fatalf("trace capture: %v", err)
		}
		traceFig7 = tr
	})
	return traceFig7
}

// BenchmarkTraceEncode measures the varint-delta stream codec on a
// real 350-iteration severe-failure trace, round-tripped so encode and
// decode regressions both show up.
func BenchmarkTraceEncode(b *testing.B) {
	tr := traceFixture(b)
	data := trace.Encode(tr)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data = trace.Encode(tr)
		if _, err := trace.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(data))/float64(len(tr.Iterations)), "bytes_per_iteration")
}

// BenchmarkTraceReplay measures a full traced replay of one campaign
// experiment — the unit of work behind goofi's Config.Trace mode and
// the server's trace endpoint (a golden pass plus an instrumented
// faulty pass per op).
func BenchmarkTraceReplay(b *testing.B) {
	cfg := goofi.Config{Variant: workload.AlgorithmI, Experiments: 8, Seed: 2001}
	var iters int
	for i := 0; i < b.N; i++ {
		tr, err := goofi.TraceExperiment(context.Background(), cfg, i%cfg.Experiments)
		if err != nil {
			b.Fatal(err)
		}
		iters = len(tr.Iterations)
	}
	b.ReportMetric(float64(iters), "trace_iterations")
}

// --- Micro-benchmarks of the core paths ---

func BenchmarkPIControllerStep(b *testing.B) {
	ctrl := control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
	for i := 0; i < b.N; i++ {
		ctrl.Step(2000, 1990)
	}
}

func BenchmarkProtectedPIStep(b *testing.B) {
	ctrl := control.NewProtectedPI(control.PaperPIConfig(plant.DefaultSampleInterval))
	for i := 0; i < b.N; i++ {
		ctrl.Step(2000, 1990)
	}
}

func BenchmarkGuardStep(b *testing.B) {
	cfg := control.PaperPIConfig(plant.DefaultSampleInterval)
	guard := core.NewGuard(control.NewPI(cfg),
		core.RangeAssertion{Min: cfg.OutMin, Max: cfg.OutMax})
	in := []float64{2000, 1990}
	for i := 0; i < b.N; i++ {
		if _, err := guard.Step(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMControlIteration(b *testing.B) {
	golden := goldenFor(b, workload.AlgorithmI)
	prog := workload.Program(workload.AlgorithmI)
	spec := workload.PaperRunSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := workload.Run(prog, spec)
		if out.Detected() {
			b.Fatal(out.Trap)
		}
	}
	perIter := float64(golden.Instructions) / float64(len(golden.Outputs))
	b.ReportMetric(perIter, "instrs_per_iteration")
}

// benchVMRun times one full fault-free run; the interpret knob selects
// the classic fetch/decode loop or the predecoded dispatch engine. The
// CI bench job uploads this pair's benchstat diff as the
// decoded-vs-interpreted artifact.
func benchVMRun(b *testing.B, interpret bool) {
	prog := workload.Program(workload.AlgorithmI)
	spec := workload.PaperRunSpec()
	spec.Interpret = interpret
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := workload.Run(prog, spec)
		if out.Detected() {
			b.Fatal(out.Trap)
		}
	}
}

func BenchmarkVMRunDecoded(b *testing.B)     { benchVMRun(b, false) }
func BenchmarkVMRunInterpreted(b *testing.B) { benchVMRun(b, true) }

func BenchmarkBitFlip64(b *testing.B) {
	v := 7.0
	for i := 0; i < b.N; i++ {
		v = fphys.FlipBit64(v, uint(i%64))
	}
	_ = v
}
