package viz

import (
	"fmt"
	"math"
	"strings"
)

// TimelineSeries is one per-iteration quantity drawn on a timeline.
// Values[i] belongs to iteration Timeline.StartK+i; non-finite values
// break the polyline (a gap).
type TimelineSeries struct {
	Name   string
	Color  string
	Values []float64
}

// TimelineMark is a labelled event anchored to one iteration, drawn as
// a vertical line.
type TimelineMark struct {
	K     int
	Label string
	Color string
}

// Timeline renders per-iteration series with event marks — the
// propagation timeline of a traced fault-injection experiment.
type Timeline struct {
	Title  string
	XLabel string
	Width  int // pixels (default 720)
	Height int // pixels (default 360)

	// StartK is the iteration of every series' first value.
	StartK int

	// Normalize scales each series to its own maximum, so quantities
	// of very different magnitude (a degrees-scale state error against
	// an instruction count) share one 0..1 axis.
	Normalize bool
}

// Render draws the series and marks as an SVG document. An empty
// timeline renders a "no data" placeholder.
func (tl Timeline) Render(series []TimelineSeries, marks []TimelineMark) string {
	w, h := tl.Width, tl.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 360
	}

	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if tl.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", w/2, svgEscaper.Replace(tl.Title))
	}
	if maxLen == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#888">no data</text>`+"\n", w/2, h/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	drawn := make([]TimelineSeries, len(series))
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for i, s := range series {
		vals := append([]float64(nil), s.Values...)
		if tl.Normalize {
			peak := 0.0
			for _, v := range vals {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) > peak {
					peak = math.Abs(v)
				}
			}
			if peak > 0 {
				for j := range vals {
					vals[j] /= peak
				}
			}
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			ylo, yhi = math.Min(ylo, v), math.Max(yhi, v)
		}
		drawn[i] = TimelineSeries{Name: s.Name, Color: s.Color, Values: vals}
	}
	if ylo > yhi { // every value was non-finite
		ylo, yhi = 0, 1
	}
	ylo = math.Min(ylo, 0)
	ylo, yhi = padRange(ylo, yhi)
	xlo, xhi := float64(tl.StartK), float64(tl.StartK+maxLen-1)
	xlo, xhi = padRange(xlo, xhi)

	plotW := float64(w - svgMarginLeft - svgMarginRight)
	plotH := float64(h - svgMarginTop - svgMarginBottom)
	px := func(x float64) float64 {
		return float64(svgMarginLeft) + (x-xlo)/(xhi-xlo)*plotW
	}
	py := func(y float64) float64 {
		return float64(svgMarginTop) + (yhi-y)/(yhi-ylo)*plotH
	}

	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		svgMarginLeft, svgMarginTop, plotW, plotH)
	for i := 0; i <= svgTicks; i++ {
		f := float64(i) / svgTicks
		xv, yv := xlo+f*(xhi-xlo), ylo+f*(yhi-ylo)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			px(xv), float64(svgMarginTop)+plotH, px(xv), float64(svgMarginTop)+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px(xv), float64(svgMarginTop)+plotH+18, svgEscaper.Replace(fmt.Sprintf("%.4g", xv)))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			float64(svgMarginLeft)-4, py(yv), float64(svgMarginLeft), py(yv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			float64(svgMarginLeft)-8, py(yv)+4, svgEscaper.Replace(fmt.Sprintf("%.3g", yv)))
	}
	if tl.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			float64(svgMarginLeft)+plotW/2, h-8, svgEscaper.Replace(tl.XLabel))
	}

	// Event marks: vertical lines with staggered labels so neighbours
	// stay readable.
	for i, m := range marks {
		mk := float64(m.K)
		if mk < xlo || mk > xhi {
			continue
		}
		color := m.Color
		if color == "" {
			color = "#555"
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="%s" stroke-dasharray="3 3"/>`+"\n",
			px(mk), svgMarginTop, px(mk), float64(svgMarginTop)+plotH, color)
		if m.Label != "" {
			y := svgMarginTop + 12 + (i%3)*13
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="%s">%s</text>`+"\n",
				px(mk)+4, y, color, svgEscaper.Replace(m.Label))
		}
	}

	for si, s := range drawn {
		color := s.Color
		if color == "" {
			color = "#2d6cdf"
		}
		var seg []string
		flushSeg := func() {
			if len(seg) > 1 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
					strings.Join(seg, " "), color)
			}
			seg = seg[:0]
		}
		for j, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				flushSeg()
				continue
			}
			seg = append(seg, fmt.Sprintf("%.1f,%.1f", px(float64(tl.StartK+j)), py(v)))
		}
		flushSeg()
		if s.Name != "" {
			lx, ly := w-svgMarginRight-170, svgMarginTop+14+si*16
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
				lx, ly-4, lx+18, ly-4, color)
			fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+24, ly, svgEscaper.Replace(s.Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}
