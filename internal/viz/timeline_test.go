package viz

import (
	"math"
	"strings"
	"testing"
)

func TestTimelineContainsSeriesAndMarks(t *testing.T) {
	out := Timeline{Title: "propagation", XLabel: "iteration", StartK: 300}.Render(
		[]TimelineSeries{
			{Name: "state error", Color: "#2d6cdf", Values: []float64{0, 60, 1, 0.5}},
			{Name: "deviation", Values: []float64{0, 3, 0.2, 0}},
		},
		[]TimelineMark{{K: 300, Label: "injected"}, {K: 301, Label: "recovered", Color: "#1e8449"}},
	)
	for _, want := range []string{"propagation", "iteration", "state error", "deviation",
		"injected", "recovered", "<svg", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	out := Timeline{Title: "empty"}.Render(nil, nil)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty timeline output: %q", out)
	}
}

func TestTimelineNonFiniteGaps(t *testing.T) {
	out := Timeline{}.Render([]TimelineSeries{
		{Name: "s", Values: []float64{1, math.NaN(), math.Inf(1), 2, 3}},
	}, nil)
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("non-finite values leaked into the SVG:\n%s", out)
	}
	if !strings.Contains(out, "<polyline") {
		t.Error("finite samples not drawn")
	}
}

func TestTimelineNormalize(t *testing.T) {
	out := Timeline{Normalize: true}.Render([]TimelineSeries{
		{Name: "big", Values: []float64{0, 1e6}},
		{Name: "small", Values: []float64{0, 1e-3}},
	}, nil)
	// With per-series normalisation both peaks sit at the same top-of-
	// axis value, so the axis labels stay in [0, 1].
	if strings.Contains(out, "1e+06") && !strings.Contains(out, ">1<") {
		t.Errorf("normalised axis still shows raw magnitudes:\n%s", out)
	}
}

func TestTimelineMarkOutsideRangeSkipped(t *testing.T) {
	out := Timeline{StartK: 100}.Render(
		[]TimelineSeries{{Name: "s", Values: []float64{1, 2, 3}}},
		[]TimelineMark{{K: 999, Label: "far-away"}},
	)
	if strings.Contains(out, "far-away") {
		t.Error("mark outside the x range was drawn")
	}
}
