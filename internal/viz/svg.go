package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a scatter plot.
type Point struct {
	X, Y  float64
	Label string // shown as a hover tooltip
	Front bool   // highlighted and joined by the front polyline
}

// Scatter renders an SVG scatter plot, used by guardtune to draw the
// Pareto front of protection designs over the cost/coverage plane.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // pixels (default 640)
	Height int // pixels (default 440)
}

const (
	svgMarginLeft   = 64
	svgMarginRight  = 16
	svgMarginTop    = 36
	svgMarginBottom = 48
	svgTicks        = 5
)

var svgEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
)

// Render draws the points as an SVG document. Non-finite coordinates
// are skipped; an empty plot renders a "no data" placeholder; a
// degenerate range (single point, or all points sharing a coordinate)
// is padded so nothing divides by zero.
func (s Scatter) Render(points []Point) string {
	w, h := s.Width, s.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 440
	}

	finite := make([]Point, 0, len(points))
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
			continue
		}
		finite = append(finite, p)
		xlo, xhi = math.Min(xlo, p.X), math.Max(xhi, p.X)
		ylo, yhi = math.Min(ylo, p.Y), math.Max(yhi, p.Y)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if s.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", w/2, svgEscaper.Replace(s.Title))
	}
	if len(finite) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#888">no data</text>`+"\n", w/2, h/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	xlo, xhi = padRange(xlo, xhi)
	ylo, yhi = padRange(ylo, yhi)

	plotW := float64(w - svgMarginLeft - svgMarginRight)
	plotH := float64(h - svgMarginTop - svgMarginBottom)
	px := func(x float64) float64 {
		return float64(svgMarginLeft) + (x-xlo)/(xhi-xlo)*plotW
	}
	py := func(y float64) float64 {
		return float64(svgMarginTop) + (yhi-y)/(yhi-ylo)*plotH
	}

	// Axes and ticks.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		svgMarginLeft, svgMarginTop, plotW, plotH)
	for i := 0; i <= svgTicks; i++ {
		f := float64(i) / svgTicks
		xv, yv := xlo+f*(xhi-xlo), ylo+f*(yhi-ylo)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			px(xv), float64(svgMarginTop)+plotH, px(xv), float64(svgMarginTop)+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px(xv), float64(svgMarginTop)+plotH+18, svgEscaper.Replace(fmt.Sprintf("%.3g", xv)))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333"/>`+"\n",
			float64(svgMarginLeft)-4, py(yv), float64(svgMarginLeft), py(yv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			float64(svgMarginLeft)-8, py(yv)+4, svgEscaper.Replace(fmt.Sprintf("%.3g", yv)))
	}
	if s.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			float64(svgMarginLeft)+plotW/2, h-8, svgEscaper.Replace(s.XLabel))
	}
	if s.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			float64(svgMarginTop)+plotH/2, float64(svgMarginTop)+plotH/2, svgEscaper.Replace(s.YLabel))
	}

	// The front polyline joins highlighted points in x order, tracing
	// the trade-off curve.
	var front []Point
	for _, p := range finite {
		if p.Front {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].X != front[j].X {
			return front[i].X < front[j].X
		}
		return front[i].Y < front[j].Y
	})
	if len(front) > 1 {
		coords := make([]string, len(front))
		for i, p := range front {
			coords[i] = fmt.Sprintf("%.1f,%.1f", px(p.X), py(p.Y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#c0392b" stroke-dasharray="4 3"/>`+"\n",
			strings.Join(coords, " "))
	}

	for _, p := range finite {
		fill, r := "#2d6cdf", 4.0
		if p.Front {
			fill, r = "#c0392b", 5.0
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.0f" fill="%s" fill-opacity="0.85">`, px(p.X), py(p.Y), r, fill)
		if p.Label != "" {
			fmt.Fprintf(&b, `<title>%s</title>`, svgEscaper.Replace(p.Label))
		}
		b.WriteString("</circle>\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// padRange widens a degenerate [lo, hi] so scaling never divides by
// zero: a single point sits centered in a unit (or ±10 %) window.
func padRange(lo, hi float64) (float64, float64) {
	if lo != hi {
		return lo, hi
	}
	pad := math.Abs(lo) * 0.1
	if pad == 0 {
		pad = 1
	}
	return lo - pad, hi + pad
}
