package viz

import (
	"math"
	"strings"
	"testing"
)

func TestRenderContainsTitleAndLegend(t *testing.T) {
	out := Chart{Title: "Figure 3", XLabel: "time"}.Render(
		Series{Name: "reference", Values: []float64{1, 2, 3}, Mark: '.'},
		Series{Name: "actual", Values: []float64{1, 2, 2.5}, Mark: '#'},
	)
	for _, want := range []string{"Figure 3", "reference", "actual", "time", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Chart{}.Render(Series{Name: "flat", Values: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Error("constant series not drawn")
	}
}

func TestRenderRespectsDimensions(t *testing.T) {
	out := Chart{Width: 30, Height: 5}.Render(Series{Name: "s", Values: []float64{0, 1, 2, 3}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	plotRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotRows++
		}
	}
	if plotRows != 5 {
		t.Errorf("plot rows = %d, want 5", plotRows)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	out := Chart{}.Render(Series{Name: "s", Values: []float64{1, math.NaN(), math.Inf(1), 2}})
	if out == "" {
		t.Error("chart with non-finite values rendered nothing")
	}
}

func TestRenderDefaultMark(t *testing.T) {
	out := Chart{}.Render(Series{Name: "s", Values: []float64{1, 2}})
	if !strings.Contains(out, "* = s") {
		t.Error("default mark not used in legend")
	}
}
