package viz

import (
	"math"
	"strings"
	"testing"
)

func TestRenderContainsTitleAndLegend(t *testing.T) {
	out := Chart{Title: "Figure 3", XLabel: "time"}.Render(
		Series{Name: "reference", Values: []float64{1, 2, 3}, Mark: '.'},
		Series{Name: "actual", Values: []float64{1, 2, 2.5}, Mark: '#'},
	)
	for _, want := range []string{"Figure 3", "reference", "actual", "time", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Chart{}.Render(Series{Name: "flat", Values: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Error("constant series not drawn")
	}
}

func TestRenderRespectsDimensions(t *testing.T) {
	out := Chart{Width: 30, Height: 5}.Render(Series{Name: "s", Values: []float64{0, 1, 2, 3}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	plotRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotRows++
		}
	}
	if plotRows != 5 {
		t.Errorf("plot rows = %d, want 5", plotRows)
	}
}

func TestRenderSkipsNonFinite(t *testing.T) {
	out := Chart{}.Render(Series{Name: "s", Values: []float64{1, math.NaN(), math.Inf(1), 2}})
	if out == "" {
		t.Error("chart with non-finite values rendered nothing")
	}
}

func TestRenderDefaultMark(t *testing.T) {
	out := Chart{}.Render(Series{Name: "s", Values: []float64{1, 2}})
	if !strings.Contains(out, "* = s") {
		t.Error("default mark not used in legend")
	}
}

func TestRenderSingleSample(t *testing.T) {
	out := Chart{Title: "one"}.Render(Series{Name: "s", Values: []float64{7}})
	if !strings.Contains(out, "*") || strings.Contains(out, "NaN") {
		t.Errorf("single-sample chart malformed:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	for _, pts := range [][]Point{nil, {}, {{X: math.NaN(), Y: 1}}} {
		out := Scatter{Title: "empty"}.Render(pts)
		if !strings.Contains(out, "no data") {
			t.Errorf("empty scatter (%v) missing placeholder:\n%s", pts, out)
		}
		if !strings.Contains(out, "</svg>") {
			t.Error("not a closed SVG document")
		}
	}
}

func TestScatterSinglePoint(t *testing.T) {
	out := Scatter{}.Render([]Point{{X: 0, Y: 0, Label: "only"}})
	if !strings.Contains(out, "<circle") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("degenerate range leaked %s into the SVG:\n%s", bad, out)
		}
	}
}

func TestScatterSkipsNonFinite(t *testing.T) {
	out := Scatter{}.Render([]Point{
		{X: 1, Y: 1},
		{X: math.Inf(1), Y: 2},
		{X: 2, Y: math.NaN()},
	})
	if got := strings.Count(out, "<circle"); got != 1 {
		t.Errorf("drew %d points, want 1 (non-finite skipped)", got)
	}
}

func TestScatterFrontPolylineAndLabels(t *testing.T) {
	out := Scatter{Title: "front", XLabel: "overhead", YLabel: "severe"}.Render([]Point{
		{X: 0.2, Y: 0.08, Label: "a<b>", Front: true},
		{X: 0.5, Y: 0.02, Label: "c", Front: true},
		{X: 0.9, Y: 0.05, Label: "dominated"},
	})
	for _, want := range []string{"<polyline", "overhead", "severe", "a&lt;b&gt;", "front"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q", want)
		}
	}
}

func TestScatterSingleFrontPointNoPolyline(t *testing.T) {
	out := Scatter{}.Render([]Point{{X: 1, Y: 2, Front: true}, {X: 3, Y: 4}})
	if strings.Contains(out, "<polyline") {
		t.Error("polyline drawn for a single front point")
	}
}
