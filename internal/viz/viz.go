// Package viz renders time series as plain-text line charts, used by
// the command-line tools to regenerate the paper's figures in a
// terminal.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of a chart.
type Series struct {
	Name   string
	Values []float64
	Mark   byte // character used to draw this series
}

// Chart configures a plot.
type Chart struct {
	Title  string
	YLabel string
	XLabel string
	Width  int // plot columns (default 100)
	Height int // plot rows (default 20)
}

// Render draws the series over a common x-axis of sample indices.
// Series are drawn in order, later series over earlier ones.
func (c Chart) Render(series ...Series) string {
	width := c.Width
	if width <= 0 {
		width = 100
	}
	height := c.Height
	if height <= 0 {
		height = 20
	}

	n := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > n {
			n = len(s.Values)
		}
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if n == 0 {
		return c.Title + "\n(no data)\n"
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		for col := 0; col < width; col++ {
			idx := col * len(s.Values) / width
			if idx >= len(s.Values) {
				continue
			}
			v := s.Values[idx]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			if row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	var legend []string
	for _, s := range series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		legend = append(legend, fmt.Sprintf("%c = %s", mark, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, ", "))
	}
	for r, row := range grid {
		yVal := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%10s  %s\n", "", c.XLabel)
	}
	return b.String()
}
