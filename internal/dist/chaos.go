package dist

import (
	"context"
	"os"
	"sync"
)

// Executor-side chaos: the fault-tolerance claims of the coordinator
// are only credible if tests can make real executors die in realistic
// ways. A task may therefore carry TEST-ONLY chaos knobs — die after N
// records, or wedge (stop emitting anything, including heartbeats)
// after N records — honored solely by processes that opt in
// (cmd/ctrlexec), never by the in-process Engine, and only on the
// shard's first lease so the re-leased attempt completes.

// chaosExitCode is the one-shot executor's self-kill exit status,
// 128+SIGKILL by convention — from the coordinator's side the process
// death is indistinguishable from an external kill -9, which the chaos
// suite also delivers for real through Proc.OnSpawn.
const chaosExitCode = 137

// withChaos wraps emit with the task's chaos knobs. With no knobs set,
// chaos disallowed, or a re-leased attempt, emit is returned untouched.
func withChaos(task ShardTask, allow bool, emit func(Event)) func(Event) {
	if !allow || task.Attempt > 0 || (task.ChaosKillAfter <= 0 && task.ChaosHangAfter <= 0) {
		return emit
	}
	var (
		mu      sync.Mutex
		records int
		wedged  bool
	)
	return func(ev Event) {
		mu.Lock()
		if wedged {
			mu.Unlock()
			select {} // wedge: no more events, no more heartbeats, ever
		}
		if ev.Type == EventRecord {
			records++
		}
		kill := task.ChaosKillAfter > 0 && records >= task.ChaosKillAfter
		if task.ChaosHangAfter > 0 && records >= task.ChaosHangAfter {
			wedged = true
		}
		mu.Unlock()
		emit(ev)
		if kill {
			os.Exit(chaosExitCode) // dies mid-shard, stream cut short
		}
	}
}

// ServeShard is the executor-side main loop shared by every transport
// host (ctrlexec's stdin mode and the HTTP ShardHandler): keep-alive
// beats while the engine works, the shard run itself, and a terminal
// error event when it fails. Calls to emit are serialised by the
// transports' encoders; chaos knobs apply only when allowChaos is set.
func ServeShard(ctx context.Context, task ShardTask, allowChaos bool, emit func(Event)) error {
	emit = withChaos(task, allowChaos, emit)
	stop := keepAlive(ctx, task.Shard, emit)
	defer stop()
	if err := RunShard(ctx, task, emit); err != nil {
		emit(Event{Type: EventError, Shard: task.Shard, Error: err.Error()})
		return err
	}
	return nil
}
