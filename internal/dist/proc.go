package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os/exec"
	"sync"
)

// Proc is the local-subprocess Executor: each shard lease spawns one
// ctrlexec process, writes the task as JSON on its stdin, and reads
// the event stream from its stdout. The process boundary is the
// isolation boundary the coordinator's fault tolerance relies on — a
// wedged executor is SIGKILLed when its lease expires (the Run context
// is cancelled) and can never take the coordinator down with it, and
// the executor self-limits its wall clock and heap (ctrlexec -timeout,
// -mem) so a runaway shard dies on its own machine.
type Proc struct {
	// Bin is the ctrlexec binary to spawn.
	Bin string

	// Args are extra arguments placed before the task is fed on stdin
	// (e.g. -timeout, -mem resource limits).
	Args []string

	// Tag names this executor slot in journals and logs
	// (default "proc").
	Tag string

	// OnSpawn, if non-nil, observes every spawned process. TEST-ONLY:
	// the chaos suite uses it to SIGKILL executors mid-shard.
	OnSpawn func(task ShardTask, pid int)
}

// Name implements Executor.
func (p *Proc) Name() string {
	if p.Tag != "" {
		return p.Tag
	}
	return "proc"
}

// stderrTail keeps the last chunk of a subprocess's stderr for error
// reporting without buffering unbounded output.
type stderrTail struct {
	mu  sync.Mutex
	buf []byte
}

func (t *stderrTail) Write(b []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, b...)
	if n := len(t.buf); n > 4096 {
		t.buf = append(t.buf[:0], t.buf[n-4096:]...)
	}
	return len(b), nil
}

func (t *stderrTail) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(bytes.TrimSpace(t.buf))
}

// Run implements Executor: spawn, feed the task, relay the event
// stream, and reap. Cancelling ctx kills the subprocess outright
// (SIGKILL) — the lease-expiry path must work against a process that
// no longer responds to anything gentler.
func (p *Proc) Run(ctx context.Context, task ShardTask, sink func(Event)) error {
	body, err := json.Marshal(task)
	if err != nil {
		return fmt.Errorf("dist: encode task: %w", err)
	}
	cmd := exec.Command(p.Bin, p.Args...)
	cmd.Stdin = bytes.NewReader(body)
	tail := &stderrTail{}
	cmd.Stderr = tail
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("dist: stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("dist: spawn %s: %w", p.Bin, err)
	}
	if p.OnSpawn != nil {
		p.OnSpawn(task, cmd.Process.Pid)
	}

	// The killer outlives the scan loop on purpose: a wedged executor
	// produces no more lines, so only the context can end it.
	waitDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cmd.Process.Kill()
		case <-waitDone:
		}
	}()

	var (
		sawDone bool
		evErr   string
	)
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A torn line at the end of a killed executor's stream is
			// expected; anything it managed to stream before is kept.
			continue
		}
		switch ev.Type {
		case EventDone:
			sawDone = true
		case EventError:
			evErr = ev.Error
		}
		sink(ev)
	}
	scanErr := sc.Err()
	waitErr := cmd.Wait()
	close(waitDone)

	switch {
	case ctx.Err() != nil:
		return ctx.Err()
	case evErr != "":
		return fmt.Errorf("dist: executor %s failed: %s", p.Name(), evErr)
	case scanErr != nil:
		return fmt.Errorf("dist: executor %s stream: %w", p.Name(), scanErr)
	case waitErr != nil:
		if msg := tail.String(); msg != "" {
			return fmt.Errorf("dist: executor %s exited: %w (stderr: %s)", p.Name(), waitErr, msg)
		}
		return fmt.Errorf("dist: executor %s exited: %w", p.Name(), waitErr)
	case !sawDone:
		return fmt.Errorf("dist: executor %s stream ended without a done event", p.Name())
	}
	return nil
}
