package dist

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// soloBytes runs the spec on the plain in-process engine and returns
// the canonical record-file bytes — the ground truth every distributed
// run must reproduce exactly.
func soloBytes(t *testing.T, spec goofi.CampaignSpec) []byte {
	t.Helper()
	cfg, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := goofi.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := goofi.WriteRecords(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func distBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := goofi.WriteRecords(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCoordinatorEngineExecutorsByteIdentical(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 90, Seed: 7}
	want := soloBytes(t, spec)

	res, err := Run(context.Background(), spec, []Executor{Engine{}, Engine{}}, Options{
		ShardSize:  17,
		SegmentDir: t.TempDir(),
		Campaign:   "c-test",
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 6 { // ceil-free contiguous split: 5×17 + 1×5
		t.Fatalf("Shards = %d, want 6", res.Shards)
	}
	if res.Releases != 0 {
		t.Fatalf("Releases = %d, want 0", res.Releases)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatalf("distributed record file differs from solo run (%d vs %d bytes)", len(got), len(want))
	}
}

func TestCoordinatorRejectsBadInput(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 10, Seed: 1}
	if _, err := Run(context.Background(), spec, nil, Options{SegmentDir: t.TempDir()}); err == nil {
		t.Fatal("no executors: want error")
	}
	if _, err := Run(context.Background(), spec, []Executor{Engine{}}, Options{}); err == nil {
		t.Fatal("missing SegmentDir: want error")
	}
	seq := goofi.CampaignSpec{Variant: "alg1", Precision: 0.05, Seed: 1}
	if _, err := Run(context.Background(), seq, []Executor{Engine{}}, Options{SegmentDir: t.TempDir()}); err == nil {
		t.Fatal("sequential spec: want error")
	}
}

func TestCoordinatorJournalAndSegments(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg2", Experiments: 60, Seed: 11}
	want := soloBytes(t, spec)
	segDir := t.TempDir()

	var mu sync.Mutex
	var entries []journal.Entry
	res, err := Run(context.Background(), spec, []Executor{Engine{}}, Options{
		ShardSize:    25,
		SegmentDir:   segDir,
		Campaign:     "c-jnl",
		KeepSegments: true,
		Logger:       quietLogger(),
		Journal: func(e journal.Entry) {
			mu.Lock()
			entries = append(entries, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("distributed record file differs from solo run")
	}

	leased, completed := 0, 0
	for _, e := range entries {
		if e.Job != "c-jnl" || e.Shard == nil {
			t.Fatalf("journal entry missing job/shard: %+v", e)
		}
		switch e.Type {
		case journal.EventShardLeased:
			leased++
		case journal.EventShardCompleted:
			completed++
		}
	}
	if leased != res.Shards || completed != res.Shards {
		t.Fatalf("journaled %d leases / %d completions, want %d each", leased, completed, res.Shards)
	}

	// KeepSegments: every shard's segment survives and holds exactly its
	// in-shard records.
	for i := 0; i < res.Shards; i++ {
		path := filepath.Join(segDir, "shard-000"+string(rune('0'+i))+".jsonl")
		recs, err := goofi.LoadRecords(path)
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		if len(recs) == 0 {
			t.Fatalf("segment %d is empty", i)
		}
	}
}

func TestCoordinatorSkipsCompletedShards(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 50, Seed: 3}
	want := soloBytes(t, spec)
	segDir := t.TempDir()

	// First: run shard 0 alone to produce its segment, as a previous
	// coordinator incarnation would have.
	first, err := Run(context.Background(), spec, []Executor{Engine{}}, Options{
		ShardSize:    20,
		SegmentDir:   segDir,
		KeepSegments: true,
		Logger:       quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Shards != 3 {
		t.Fatalf("Shards = %d, want 3", first.Shards)
	}
	// Drop the later segments, keeping shard 0's — the salvaged state.
	os.Remove(filepath.Join(segDir, "shard-0001.jsonl"))
	os.Remove(filepath.Join(segDir, "shard-0002.jsonl"))

	var leased int32
	res, err := Run(context.Background(), spec, []Executor{Engine{}}, Options{
		ShardSize:       20,
		SegmentDir:      segDir,
		CompletedShards: map[int]bool{0: true},
		Logger:          quietLogger(),
		TaskHook: func(task *ShardTask) {
			if task.Shard == 0 {
				t.Error("shard 0 was re-leased despite being journaled complete")
			}
			atomic.AddInt32(&leased, 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&leased); got != 2 {
		t.Fatalf("leased %d shards, want 2 (shard 0 skipped)", got)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("resumed distributed record file differs from solo run")
	}
}

// failingExecutor always errors without streaming anything.
type failingExecutor struct{}

func (failingExecutor) Name() string { return "broken" }
func (failingExecutor) Run(ctx context.Context, task ShardTask, sink func(Event)) error {
	return errors.New("boom")
}

func TestCoordinatorGivesUpAfterMaxAttempts(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 30, Seed: 5}
	_, err := Run(context.Background(), spec, []Executor{failingExecutor{}}, Options{
		ShardSize:   30,
		MaxAttempts: 2,
		SegmentDir:  t.TempDir(),
		Logger:      quietLogger(),
	})
	if err == nil || !strings.Contains(err.Error(), "failed 2 times") {
		t.Fatalf("err = %v, want shard give-up after 2 attempts", err)
	}
}

// wedgingExecutor wedges (blocks ignoring everything but ctx) on a
// shard's first lease, then delegates to the real engine — the
// in-process stand-in for a hung worker whose lease must expire.
type wedgingExecutor struct{}

func (wedgingExecutor) Name() string { return "wedgy" }
func (wedgingExecutor) Run(ctx context.Context, task ShardTask, sink func(Event)) error {
	if task.Attempt == 0 {
		<-ctx.Done()
		return ctx.Err()
	}
	return RunShard(ctx, task, sink)
}

func TestCoordinatorLeaseExpiryReLeases(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 40, Seed: 9}
	want := soloBytes(t, spec)

	start := time.Now()
	res, err := Run(context.Background(), spec, []Executor{wedgingExecutor{}}, Options{
		ShardSize:  40,
		LeaseTTL:   400 * time.Millisecond,
		SegmentDir: t.TempDir(),
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Releases != 1 {
		t.Fatalf("Releases = %d, want 1 (one expired lease)", res.Releases)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("finished in %v, before the lease could have expired", elapsed)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("record file differs from solo run after lease expiry and re-lease")
	}
}

func TestMergeRecordsErrors(t *testing.T) {
	recs := []goofi.Record{{ID: 0}, {ID: 1}}
	if _, err := MergeRecords(3, recs); err == nil {
		t.Fatal("incomplete coverage: want error")
	}
	if _, err := MergeRecords(1, []goofi.Record{{ID: 5}}); err == nil {
		t.Fatal("out-of-range ID: want error")
	}
	merged, err := MergeRecords(2, []goofi.Record{{ID: 1}}, []goofi.Record{{ID: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if merged[0].ID != 0 || merged[1].ID != 1 {
		t.Fatalf("merge out of order: %v", merged)
	}
}
