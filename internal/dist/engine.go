package dist

import (
	"context"
	"fmt"
	"sync"

	"ctrlguard/internal/goofi"
)

// RunShard executes one shard task in-process through the goofi engine
// and streams its events to emit. It is the single execution path every
// transport shares: cmd/ctrlexec calls it behind stdin/stdout and HTTP,
// and Engine calls it directly for executor-less (in-process) runs and
// tests. Calls to emit are serialised.
//
// The engine's own guarantees carry over verbatim: records are
// byte-identical to the solo run's (warm start, pruning and all), and
// task.Resume records matching the deterministic plan are reused
// without being re-executed or re-streamed.
func RunShard(ctx context.Context, task ShardTask, emit func(Event)) error {
	cfg, err := task.Spec.Resolve()
	if err != nil {
		return err
	}
	if task.Spec.Sequential() {
		return fmt.Errorf("dist: precision-driven campaigns cannot shard (experiment IDs are not stable across batches)")
	}
	cfg.Shard = &goofi.Shard{Start: task.Start, End: task.End}
	cfg.Resume = task.Resume

	var (
		mu   sync.Mutex
		done int
	)
	cfg.OnResume = func(recs []goofi.Record) {
		mu.Lock()
		done += len(recs)
		d := done
		mu.Unlock()
		// Resumed records are already in the coordinator's segment; a
		// beat reports the head start without re-streaming them.
		emit(Event{Type: EventBeat, Shard: task.Shard, Done: d})
	}
	cfg.OnRecord = func(rec goofi.Record) {
		mu.Lock()
		done++
		d := done
		r := rec
		mu.Unlock()
		emit(Event{Type: EventRecord, Shard: task.Shard, Done: d, Record: &r})
	}

	res, err := goofi.RunContext(ctx, cfg)
	if err != nil {
		return err
	}
	emit(Event{Type: EventDone, Shard: task.Shard, Done: done, Result: &ShardResult{
		Shard:   task.Shard,
		Start:   task.Start,
		End:     task.End,
		Done:    done,
		Resumed: res.Faults.Resumed,
		Faults:  res.Faults,
		Prune:   res.Prune,
	}})
	return nil
}

// Engine is the in-process Executor: shard tasks run on this process's
// goofi engine with no isolation boundary. It is the fallback when no
// executor binary is available, and the reference implementation the
// transported executors are tested against.
type Engine struct{}

// Name implements Executor.
func (Engine) Name() string { return "inproc" }

// Run implements Executor.
func (Engine) Run(ctx context.Context, task ShardTask, sink func(Event)) error {
	return RunShard(ctx, task, sink)
}
