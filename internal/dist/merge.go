package dist

import (
	"fmt"

	"ctrlguard/internal/goofi"
)

// MergeRecords folds per-shard record sets into the canonical
// experiment-ordered slice of a solo run. Within a set, a later record
// for the same experiment ID wins — a re-leased shard's segment may
// hold a salvaged abandoned record followed by its successful re-run,
// and the engine's own resume discipline is newest-wins too. Exactly
// one record per ID in [0, total) must emerge, or the merge fails
// loudly rather than writing a silently incomplete record file.
func MergeRecords(total int, shardSets ...[]goofi.Record) ([]goofi.Record, error) {
	out := make([]goofi.Record, total)
	seen := make([]bool, total)
	for _, set := range shardSets {
		for _, rec := range set {
			if rec.ID < 0 || rec.ID >= total {
				return nil, fmt.Errorf("dist: merge: record ID %d outside plan [0,%d)", rec.ID, total)
			}
			out[rec.ID] = rec
			seen[rec.ID] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("dist: merge: no record for experiment %d (incomplete shard coverage)", id)
		}
	}
	return out, nil
}
