package dist

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"ctrlguard/internal/goofi"
)

// The chaos suite runs shards on real ctrlexec subprocesses and kills
// them in every way the coordinator claims to survive: a SIGKILL
// mid-stream, a self-exit mid-shard, and a silent wedge that only the
// lease watchdog can detect. Each case must still end with a record
// file byte-identical to a single-process run — the acceptance bar for
// the whole distributed layer.

var ctrlexecBin string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "ctrlexec-build-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctrlexecBin = filepath.Join(tmp, "ctrlexec")
	out, err := exec.Command("go", "build", "-o", ctrlexecBin, "ctrlguard/cmd/ctrlexec").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "build ctrlexec: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

func procExecutors(n int, onSpawn func(ShardTask, int)) []Executor {
	out := make([]Executor, n)
	for i := range out {
		out[i] = &Proc{Bin: ctrlexecBin, Tag: fmt.Sprintf("local-%d", i+1), OnSpawn: onSpawn}
	}
	return out
}

func TestProcExecutorsByteIdentical(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 60, Seed: 21}
	want := soloBytes(t, spec)

	res, err := Run(context.Background(), spec, procExecutors(2, nil), Options{
		ShardSize:  20,
		SegmentDir: t.TempDir(),
		Campaign:   "c-proc",
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Releases != 0 {
		t.Fatalf("Releases = %d, want 0", res.Releases)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("subprocess-distributed record file differs from solo run")
	}
}

// TestProcChaosSelfKillReLease: the executor leasing shard 0 exits with
// status 137 mid-shard (after streaming 3 records). The coordinator
// must salvage the streamed records, re-lease the shard, and still
// produce the solo run's bytes.
func TestProcChaosSelfKillReLease(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 60, Seed: 23}
	want := soloBytes(t, spec)

	res, err := Run(context.Background(), spec, procExecutors(2, nil), Options{
		ShardSize:  30,
		SegmentDir: t.TempDir(),
		Campaign:   "c-kill",
		Logger:     quietLogger(),
		TaskHook: func(task *ShardTask) {
			if task.Shard == 0 && task.Attempt == 0 {
				task.ChaosKillAfter = 3
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Releases < 1 {
		t.Fatalf("Releases = %d, want >= 1 (the killed executor's shard)", res.Releases)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("record file differs from solo run after mid-shard executor death")
	}
}

// TestProcExternalSIGKILLReLease delivers a real kill -9 to the
// executor process running shard 0 once it has streamed a few records
// — the genuine article, not a simulated exit.
func TestProcExternalSIGKILLReLease(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg2", Experiments: 60, Seed: 29}
	want := soloBytes(t, spec)

	var mu sync.Mutex
	pids := map[int]int{} // shard -> pid of its attempt-0 executor
	killed := false
	shard0Records := 0

	res, err := Run(context.Background(), spec, procExecutors(2, func(task ShardTask, pid int) {
		mu.Lock()
		if task.Attempt == 0 {
			pids[task.Shard] = pid
		}
		mu.Unlock()
	}), Options{
		ShardSize:  30,
		SegmentDir: t.TempDir(),
		Campaign:   "c-sigkill",
		Logger:     quietLogger(),
		OnRecord: func(rec goofi.Record) {
			mu.Lock()
			defer mu.Unlock()
			if rec.ID >= 30 || killed {
				return
			}
			// Shard 0 is streaming; after its third record, kill its
			// executor dead mid-shard.
			shard0Records++
			if shard0Records >= 3 {
				killed = true
				if pid := pids[0]; pid > 0 {
					syscall.Kill(pid, syscall.SIGKILL)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("the kill never fired; test exercised nothing")
	}
	if res.Releases < 1 {
		t.Fatalf("Releases = %d, want >= 1 after SIGKILL", res.Releases)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("record file differs from solo run after SIGKILL'd executor was re-leased")
	}
}

// TestProcChaosWedgeLeaseExpiry wedges the shard-0 executor after two
// records: it stops streaming everything, heartbeats included. Only the
// lease watchdog can notice; it must kill the process and re-lease.
func TestProcChaosWedgeLeaseExpiry(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg1", Experiments: 40, Seed: 31}
	want := soloBytes(t, spec)

	start := time.Now()
	const ttl = 1500 * time.Millisecond
	res, err := Run(context.Background(), spec, procExecutors(2, nil), Options{
		ShardSize:  20,
		LeaseTTL:   ttl,
		SegmentDir: t.TempDir(),
		Campaign:   "c-wedge",
		Logger:     quietLogger(),
		TaskHook: func(task *ShardTask) {
			if task.Shard == 0 && task.Attempt == 0 {
				task.ChaosHangAfter = 2
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Releases < 1 {
		t.Fatalf("Releases = %d, want >= 1 (the wedged executor's lease)", res.Releases)
	}
	if elapsed := time.Since(start); elapsed < ttl {
		t.Fatalf("finished in %v — the wedge cannot have expired a %v lease", elapsed, ttl)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("record file differs from solo run after wedged executor was expired")
	}
}

// TestHTTPExecutorByteIdentical drives the remote transport end to end
// against an in-process ShardHandler.
func TestHTTPExecutorByteIdentical(t *testing.T) {
	spec := goofi.CampaignSpec{Variant: "alg2", Experiments: 50, Seed: 37}
	want := soloBytes(t, spec)

	ts := httptest.NewServer(ShardHandler(quietLogger(), false))
	defer ts.Close()

	res, err := Run(context.Background(), spec, []Executor{&HTTP{URL: ts.URL, Tag: "remote-1"}}, Options{
		ShardSize:  15,
		SegmentDir: t.TempDir(),
		Campaign:   "c-http",
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := distBytes(t, res); !bytes.Equal(got, want) {
		t.Fatal("HTTP-distributed record file differs from solo run")
	}
}
