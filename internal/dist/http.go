package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"
)

// HTTP is the remote Executor transport: the task is POSTed to a
// ctrlexec process serving ShardHandler on another machine, and the
// response body streams the same NDJSON events the subprocess
// transport reads from a pipe. Record events double as heartbeats here
// too; cancelling ctx (lease expiry) aborts the request, which closes
// the connection and lets the remote executor's own context kill the
// shard run.
type HTTP struct {
	// URL is the executor's base URL (e.g. http://host:9077); the task
	// is POSTed to URL + "/api/v1/shards/run".
	URL string

	// Tag names this executor in journals and logs (default the URL).
	Tag string

	// Client, if nil, uses a client with no overall timeout — shard
	// duration is bounded by the coordinator's lease, not the
	// transport.
	Client *http.Client
}

// Name implements Executor.
func (h *HTTP) Name() string {
	if h.Tag != "" {
		return h.Tag
	}
	return h.URL
}

// Run implements Executor.
func (h *HTTP) Run(ctx context.Context, task ShardTask, sink func(Event)) error {
	body, err := json.Marshal(task)
	if err != nil {
		return fmt.Errorf("dist: encode task: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL+"/api/v1/shards/run", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = &http.Client{}
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("dist: executor %s: %w", h.Name(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: executor %s: %s: %s", h.Name(), resp.Status, bytes.TrimSpace(msg))
	}

	var (
		sawDone bool
		evErr   string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // torn tail of a dying remote: keep what arrived
		}
		switch ev.Type {
		case EventDone:
			sawDone = true
		case EventError:
			evErr = ev.Error
		}
		sink(ev)
	}
	switch {
	case ctx.Err() != nil:
		return ctx.Err()
	case evErr != "":
		return fmt.Errorf("dist: executor %s failed: %s", h.Name(), evErr)
	case sc.Err() != nil:
		return fmt.Errorf("dist: executor %s stream: %w", h.Name(), sc.Err())
	case !sawDone:
		return fmt.Errorf("dist: executor %s stream ended without a done event", h.Name())
	}
	return nil
}

// ShardHandler serves shard tasks over HTTP — the remote side of the
// HTTP transport, mounted by ctrlexec -serve at
// POST /api/v1/shards/run. Events stream back as NDJSON, flushed per
// line so records reach the coordinator (and renew the lease) as they
// complete. Chaos knobs in the task are honored only when allowChaos
// is set (ctrlexec enables it; embedding servers should not).
func ShardHandler(logger *log.Logger, allowChaos bool) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a shard task", http.StatusMethodNotAllowed)
			return
		}
		var task ShardTask
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
		if err := dec.Decode(&task); err != nil {
			http.Error(w, fmt.Sprintf("bad shard task: %v", err), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)

		var mu sync.Mutex
		enc := json.NewEncoder(w)
		emit := func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if err := enc.Encode(&ev); err != nil {
				return // coordinator went away; ctx will cancel the run
			}
			if flusher != nil {
				flusher.Flush()
			}
		}

		logger.Printf("shard %d [%d,%d) of %s leased to this executor (attempt %d, %d resume records)",
			task.Shard, task.Start, task.End, task.Campaign, task.Attempt, len(task.Resume))
		if err := ServeShard(r.Context(), task, allowChaos, emit); err != nil {
			logger.Printf("shard %d failed: %v", task.Shard, err)
			return
		}
		logger.Printf("shard %d done", task.Shard)
	})
}

// keepAlive emits periodic beat events until stopped, covering the
// stretches when the engine is working but no record completes (the
// golden run, a long experiment): the lease must not expire on an
// executor that is merely busy. Returns a stop function.
func keepAlive(ctx context.Context, shard int, emit func(Event)) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				emit(Event{Type: EventBeat, Shard: shard})
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
