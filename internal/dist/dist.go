// Package dist distributes one fault-injection campaign across many
// executor processes. It is the scale-out layer over the existing
// crash-safe goofi engine: a coordinator splits the campaign's plan
// into contiguous experiment-ID shards, leases each shard to an
// executor (a local ctrlexec subprocess or a remote HTTP executor
// behind the same interface), streams every completed record back into
// a per-shard JSONL segment, and finally merges the segments into the
// canonical experiment-ordered record file — byte-identical to a solo
// run's, which the goofi shard tests pin.
//
// Fault tolerance is lease-based, in the paper's best-effort-recovery
// spirit applied to the harness itself: every record an executor
// streams doubles as a lease heartbeat. An executor that dies
// (SIGKILL) or wedges (no heartbeat within the lease TTL) has its
// lease expired, its process killed, and its shard re-leased to
// another executor, which resumes from the records already salvaged
// into the coordinator-side segment — so a lost executor costs the
// unstreamed tail of its shard, never the shard and never the
// campaign. Lease transitions (leased / renewed / completed / expired)
// write through the internal/journal WAL so a restarted coordinator
// knows which shards already finished.
package dist

import (
	"context"

	"ctrlguard/internal/goofi"
)

// ShardTask is the unit of work leased to an executor: one contiguous
// slice of the campaign plan. The executor re-derives the full
// deterministic plan from the spec and seed, executes only
// [Start, End), and streams each completed record back. Resume carries
// the records the coordinator already holds for this shard (salvaged
// from the segment of an expired lease), so a re-leased shard pays
// only for the lost tail.
type ShardTask struct {
	// Campaign is the job ID the shard belongs to (diagnostics only).
	Campaign string `json:"campaign,omitempty"`

	// Spec is the full campaign spec — identical for every shard.
	Spec goofi.CampaignSpec `json:"spec"`

	// Shard is the shard's index within the campaign's shard plan.
	Shard int `json:"shard"`

	// Start and End bound the shard's experiment-ID range [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`

	// Attempt counts prior leases of this shard (0 = first lease).
	Attempt int `json:"attempt,omitempty"`

	// Resume holds records already persisted for this shard; matching
	// experiments are reused instead of re-executed and are NOT
	// re-streamed.
	Resume []goofi.Record `json:"resume,omitempty"`

	// ChaosKillAfter and ChaosHangAfter are TEST-ONLY fault injection
	// for the executor itself, honored by cmd/ctrlexec on attempt 0:
	// after streaming N records the executor SIGKILLs itself
	// (ChaosKillAfter) or stops heartbeating and hangs
	// (ChaosHangAfter). The chaos suite uses them to prove a dead or
	// wedged executor's shard is re-leased and the final records stay
	// byte-identical.
	ChaosKillAfter int `json:"chaosKillAfter,omitempty"`
	ChaosHangAfter int `json:"chaosHangAfter,omitempty"`
}

// ShardResult summarises a completed shard. The records themselves
// travel as individual record events (they double as heartbeats and
// land in the coordinator's segment as they complete); the result
// carries only the accounting.
type ShardResult struct {
	Shard   int               `json:"shard"`
	Start   int               `json:"start"`
	End     int               `json:"end"`
	Done    int               `json:"done"`    // records completed, including resumed
	Resumed int               `json:"resumed"` // reused from Resume, not re-executed
	Faults  goofi.FaultStats  `json:"faults"`
	Prune   *goofi.PruneStats `json:"prune,omitempty"`
}

// Event is one line of the executor→coordinator stream (JSON lines
// over a subprocess pipe or an HTTP response body). Every event renews
// the shard's lease.
type Event struct {
	// Type is "beat" (keep-alive while no record is ready, e.g. during
	// the golden run), "record" (one completed experiment), "done" (the
	// shard finished; Result set), or "error" (the executor failed;
	// Error set).
	Type string `json:"type"`

	Shard  int           `json:"shard"`
	Done   int           `json:"done,omitempty"` // progress: records completed so far
	Record *goofi.Record `json:"record,omitempty"`
	Result *ShardResult  `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// Event type values.
const (
	EventBeat   = "beat"
	EventRecord = "record"
	EventDone   = "done"
	EventError  = "error"
)

// Executor runs shard tasks somewhere: in-process (Engine), in a local
// subprocess (Proc), or on a remote host (HTTP). Run streams events to
// sink — records double as lease heartbeats — and returns when the
// shard completes or fails. Implementations must honor ctx promptly:
// the coordinator cancels the context of a run whose lease expires,
// and a Proc executor answers that by SIGKILLing its subprocess.
type Executor interface {
	// Name identifies the executor in journal entries and logs.
	Name() string

	// Run executes one shard task. A nil error means a done event was
	// delivered and the shard's records all streamed (or rode in via
	// task.Resume).
	Run(ctx context.Context, task ShardTask, sink func(Event)) error
}
