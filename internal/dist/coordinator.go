package dist

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
)

// Default knobs for Options. Shard size trades scheduling granularity
// (small shards spread load and bound re-run cost after a kill) against
// per-shard overhead (each lease replays the golden run and redraws the
// plan). The lease TTL must comfortably exceed the executors' beat
// interval (500ms) plus one long experiment.
const (
	DefaultShardSize   = 500
	DefaultLeaseTTL    = 15 * time.Second
	DefaultMaxAttempts = 3
)

// Options configures a distributed campaign run.
type Options struct {
	// ShardSize is the number of experiments per shard
	// (default DefaultShardSize).
	ShardSize int

	// LeaseTTL is how long a leased shard may go without streaming any
	// event before the coordinator declares the executor dead, kills
	// the lease, and re-queues the shard (default DefaultLeaseTTL).
	LeaseTTL time.Duration

	// MaxAttempts is how many leases a shard gets before the campaign
	// fails (default DefaultMaxAttempts).
	MaxAttempts int

	// SegmentDir holds the per-shard record segments. Every record an
	// executor streams is appended (durably) to its shard's segment
	// before the campaign result exists, so a coordinator crash or an
	// executor death costs only un-streamed work. Created if missing.
	SegmentDir string

	// Campaign names the job in journal entries.
	Campaign string

	// Journal, if non-nil, receives shard lease-lifecycle entries
	// (leased / renewed / completed / expired) as they happen. Renewal
	// entries are throttled to one per half-TTL per shard.
	Journal func(journal.Entry)

	// CompletedShards marks shards finished by a previous coordinator
	// incarnation (replayed from the journal). They are not re-leased;
	// their records come straight from their salvaged segments.
	CompletedShards map[int]bool

	// OnProgress, if non-nil, is called after each ingested record with
	// the campaign-wide completed count and the plan total.
	OnProgress func(done, total int)

	// OnRecord, if non-nil, observes every record as the coordinator
	// ingests it, in arrival order (not experiment order).
	OnRecord func(goofi.Record)

	// Logger for coordinator decisions (default: discard into the
	// standard logger).
	Logger *log.Logger

	// KeepSegments leaves the per-shard segment files in place after a
	// successful run instead of removing them.
	KeepSegments bool

	// TaskHook, if non-nil, observes (and may mutate) every task just
	// before it is leased. TEST-ONLY: the chaos suite uses it to plant
	// chaos knobs on first attempts.
	TaskHook func(*ShardTask)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ShardSize <= 0 {
		out.ShardSize = DefaultShardSize
	}
	if out.LeaseTTL <= 0 {
		out.LeaseTTL = DefaultLeaseTTL
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = DefaultMaxAttempts
	}
	if out.Logger == nil {
		out.Logger = log.Default()
	}
	return out
}

// Result is the merged outcome of a distributed campaign: exactly what
// the solo engine would have produced for the same spec, plus
// scheduling counters.
type Result struct {
	// Records is the complete record set in experiment order,
	// byte-identical to a single-process run of the same spec.
	Records []goofi.Record

	// Faults aggregates executor-side isolation stats across the leases
	// that completed during this coordinator incarnation. Shards
	// finished by a previous incarnation contribute records but no
	// stats.
	Faults goofi.FaultStats

	// Prune aggregates the per-shard pruning tallies the same way.
	Prune goofi.PruneStats

	// Shards is the number of shards the plan was split into.
	Shards int

	// Releases counts leases that died (expired, crashed, or errored)
	// and sent their shard back to the queue.
	Releases int
}

// shardState is the coordinator's view of one shard.
type shardState struct {
	idx   int
	shard goofi.Shard

	mu       sync.Mutex
	records  map[int]goofi.Record // ingested, newest wins
	appender *goofi.RecordAppender
	attempt  int
	result   *ShardResult
	lastJot  time.Time // last journaled renewal
}

// resume returns the shard's salvaged records in ID order — the Resume
// set handed to the next lease so completed work is never re-executed.
func (st *shardState) resume() []goofi.Record {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]goofi.Record, 0, len(st.records))
	for _, r := range st.records {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

type coordinator struct {
	opts  Options
	spec  goofi.CampaignSpec
	total int

	states []*shardState
	queue  chan int

	mu       sync.Mutex
	pending  int
	done     int // ingested unique records, campaign-wide
	releases int
	failure  error
	cancel   context.CancelFunc
}

// Run executes a campaign sharded across the given executors and
// returns the merged result. The record file content is byte-identical
// to a solo run of the same spec: shards are contiguous experiment-ID
// ranges of the same deterministic plan, and the merge re-assembles
// them in experiment order.
//
// Fault tolerance is lease-based. Every event an executor streams
// (records, completion, and idle heartbeats) renews its shard's lease;
// a lease that goes LeaseTTL without an event is expired — the
// executor is killed (for subprocess transports, SIGKILL) and the
// shard re-queued, resuming from the records its segment already
// holds. A shard that fails MaxAttempts times fails the campaign.
func Run(ctx context.Context, spec goofi.CampaignSpec, executors []Executor, opts Options) (*Result, error) {
	if len(executors) == 0 {
		return nil, fmt.Errorf("dist: no executors")
	}
	if spec.Sequential() {
		return nil, fmt.Errorf("dist: precision-driven campaigns cannot shard (experiment IDs are not stable across batches)")
	}
	cfg, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.SegmentDir == "" {
		return nil, fmt.Errorf("dist: Options.SegmentDir is required")
	}
	if err := os.MkdirAll(o.SegmentDir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: segment dir: %w", err)
	}

	total := cfg.Experiments
	shards := goofi.SplitShards(total, o.ShardSize)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	c := &coordinator{
		opts:   o,
		spec:   spec,
		total:  total,
		states: make([]*shardState, len(shards)),
		// Buffered for every enqueue that can ever happen, so re-queues
		// after a failed lease never block a slot goroutine.
		queue:  make(chan int, len(shards)*o.MaxAttempts),
		cancel: cancel,
	}

	// Open every shard's segment up front, salvaging whatever a previous
	// coordinator incarnation (or an earlier lease this run) persisted.
	defer func() {
		for _, st := range c.states {
			if st != nil && st.appender != nil {
				st.appender.Close()
			}
		}
	}()
	for i, sh := range shards {
		st := &shardState{idx: i, shard: sh, records: make(map[int]goofi.Record)}
		ap, salvaged, err := goofi.OpenRecordAppender(c.segmentPath(i))
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d segment: %w", i, err)
		}
		st.appender = ap
		for _, r := range salvaged {
			if r.ID >= sh.Start && r.ID < sh.End {
				st.records[r.ID] = r
			}
		}
		c.states[i] = st
		c.done += len(st.records)
	}

	// Queue the shards that still need work.
	for i := range shards {
		if o.CompletedShards[i] {
			st := c.states[i]
			if n, want := len(st.records), st.shard.Size(); n != want {
				// The journal says done but the segment disagrees —
				// fail safe and re-run it rather than merge a hole.
				o.Logger.Printf("dist: shard %d journaled complete but segment has %d/%d records; re-leasing", i, n, want)
			} else {
				continue
			}
		}
		c.pending++
		c.queue <- i
	}

	if c.pending > 0 {
		var wg sync.WaitGroup
		for _, ex := range executors {
			wg.Add(1)
			go func(ex Executor) {
				defer wg.Done()
				c.slot(runCtx, ex)
			}(ex)
		}
		wg.Wait()
	}

	c.mu.Lock()
	failure := c.failure
	releases := c.releases
	c.mu.Unlock()
	if failure != nil {
		return nil, failure
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge the shard segments into the canonical experiment-ordered
	// record set and aggregate the per-lease stats.
	sets := make([][]goofi.Record, len(c.states))
	res := &Result{Shards: len(shards), Releases: releases}
	for i, st := range c.states {
		sets[i] = st.resume()
		if r := st.result; r != nil {
			res.Faults.Retried += r.Faults.Retried
			res.Faults.Panicked += r.Faults.Panicked
			res.Faults.TimedOut += r.Faults.TimedOut
			res.Faults.Abandoned += r.Faults.Abandoned
			res.Faults.Resumed += r.Faults.Resumed
			if p := r.Prune; p != nil {
				res.Prune.Planned += p.Planned
				res.Prune.Simulated += p.Simulated
				res.Prune.PrunedDead += p.PrunedDead
				res.Prune.Collapsed += p.Collapsed
				res.Prune.Classes += p.Classes
			}
		}
	}
	res.Records, err = MergeRecords(total, sets...)
	if err != nil {
		return nil, err
	}

	if !o.KeepSegments {
		for _, st := range c.states {
			st.appender.Close()
			st.appender = nil
			os.Remove(c.segmentPath(st.idx))
		}
	}
	return res, nil
}

func (c *coordinator) segmentPath(shard int) string {
	return filepath.Join(c.opts.SegmentDir, fmt.Sprintf("shard-%04d.jsonl", shard))
}

// jot writes a journal entry for a shard event, if journaling is on.
func (c *coordinator) jot(typ journal.EventType, shard int, executor string, done int, errMsg string) {
	if c.opts.Journal == nil {
		return
	}
	sh := shard
	c.opts.Journal(journal.Entry{
		Job:      c.opts.Campaign,
		Type:     typ,
		Shard:    &sh,
		Executor: executor,
		Done:     done,
		Total:    c.total,
		Error:    errMsg,
	})
}

// slot is one executor's scheduling loop: lease shards off the queue
// until the queue closes (campaign done) or the run is cancelled
// (campaign failed).
func (c *coordinator) slot(ctx context.Context, ex Executor) {
	for {
		select {
		case <-ctx.Done():
			return
		case idx, ok := <-c.queue:
			if !ok {
				return
			}
			st := c.states[idx]
			err := c.lease(ctx, ex, st)
			if err == nil {
				c.complete(st, ex)
				continue
			}
			if ctx.Err() != nil {
				return
			}
			c.release(st, ex, err)
		}
	}
}

// complete marks a shard finished; the last one closes the queue.
func (c *coordinator) complete(st *shardState, ex Executor) {
	st.mu.Lock()
	got := len(st.records)
	st.mu.Unlock()
	c.jot(journal.EventShardCompleted, st.idx, ex.Name(), got, "")
	c.opts.Logger.Printf("dist: shard %d [%d,%d) completed by %s (%d records)",
		st.idx, st.shard.Start, st.shard.End, ex.Name(), got)
	c.mu.Lock()
	c.pending--
	if c.pending == 0 {
		close(c.queue)
	}
	c.mu.Unlock()
}

// release returns a failed shard to the queue for another lease, or
// fails the whole campaign once its attempts are spent.
func (c *coordinator) release(st *shardState, ex Executor, cause error) {
	c.jot(journal.EventShardExpired, st.idx, ex.Name(), 0, cause.Error())
	st.mu.Lock()
	st.attempt++
	attempt := st.attempt
	salvaged := len(st.records)
	st.mu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if attempt >= c.opts.MaxAttempts {
		if c.failure == nil {
			c.failure = fmt.Errorf("dist: shard %d failed %d times, giving up: %w", st.idx, attempt, cause)
			c.cancel()
		}
		return
	}
	c.releases++
	c.opts.Logger.Printf("dist: shard %d lease to %s died (%v); re-queueing with %d salvaged records (attempt %d)",
		st.idx, ex.Name(), cause, salvaged, attempt)
	c.queue <- st.idx
}

// lease runs one shard on one executor under a lease: any streamed
// event renews it, and LeaseTTL of silence expires it, cancelling the
// executor's context (which kills a subprocess outright).
func (c *coordinator) lease(ctx context.Context, ex Executor, st *shardState) error {
	st.mu.Lock()
	attempt := st.attempt
	st.mu.Unlock()
	task := ShardTask{
		Campaign: c.opts.Campaign,
		Spec:     c.spec,
		Shard:    st.idx,
		Start:    st.shard.Start,
		End:      st.shard.End,
		Attempt:  attempt,
		Resume:   st.resume(),
	}
	if c.opts.TaskHook != nil {
		c.opts.TaskHook(&task)
	}
	c.jot(journal.EventShardLeased, st.idx, ex.Name(), len(task.Resume), "")
	c.opts.Logger.Printf("dist: shard %d [%d,%d) leased to %s (attempt %d, %d resume records)",
		st.idx, st.shard.Start, st.shard.End, ex.Name(), attempt, len(task.Resume))

	leaseCtx, cancelLease := context.WithCancel(ctx)
	defer cancelLease()
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	var expired atomic.Bool

	// Watchdog: expire the lease when the executor goes quiet. The beat
	// interval is well under the TTL, so a live-but-slow executor never
	// trips this — only a dead or wedged one.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		t := time.NewTicker(c.opts.LeaseTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-watchdogDone:
				return
			case <-leaseCtx.Done():
				return
			case <-t.C:
				if time.Since(time.Unix(0, lastBeat.Load())) > c.opts.LeaseTTL {
					expired.Store(true)
					cancelLease()
					return
				}
			}
		}
	}()

	sink := func(ev Event) {
		lastBeat.Store(time.Now().UnixNano())
		switch ev.Type {
		case EventRecord:
			if ev.Record != nil {
				c.ingest(st, *ev.Record)
			}
		case EventDone:
			st.mu.Lock()
			st.result = ev.Result
			st.mu.Unlock()
		}
		c.renew(st, ex)
	}

	err := ex.Run(leaseCtx, task, sink)
	if err != nil && expired.Load() {
		return fmt.Errorf("lease expired after %s without progress (executor killed): %w", c.opts.LeaseTTL, err)
	}
	return err
}

// renew journals lease renewals, throttled to one per half-TTL per
// shard so the journal scales with shards, not records.
func (c *coordinator) renew(st *shardState, ex Executor) {
	if c.opts.Journal == nil {
		return
	}
	now := time.Now()
	st.mu.Lock()
	due := now.Sub(st.lastJot) >= c.opts.LeaseTTL/2
	var got int
	if due {
		st.lastJot = now
		got = len(st.records)
	}
	st.mu.Unlock()
	if due {
		c.jot(journal.EventShardRenewed, st.idx, ex.Name(), got, "")
	}
}

// ingest durably appends a streamed record to the shard's segment and
// folds it into the in-memory state. The append happens before the
// record is observable anywhere else: if the coordinator dies the
// instant after, the segment already has it.
func (c *coordinator) ingest(st *shardState, rec goofi.Record) {
	st.mu.Lock()
	_, dup := st.records[rec.ID]
	if err := st.appender.Append(rec); err != nil {
		// The record survives in memory; the segment just lost
		// durability for it. Log and carry on — the merge uses memory.
		c.opts.Logger.Printf("dist: shard %d segment append: %v", st.idx, err)
	}
	st.records[rec.ID] = rec
	st.mu.Unlock()

	c.mu.Lock()
	if !dup {
		c.done++
	}
	done := c.done
	c.mu.Unlock()
	if c.opts.OnRecord != nil {
		c.opts.OnRecord(rec)
	}
	if c.opts.OnProgress != nil {
		c.opts.OnProgress(done, c.total)
	}
}
