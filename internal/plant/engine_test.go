package plant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineSteadyState(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Load = NoLoad()
	eng := NewEngine(cfg)
	u := eng.SteadyStateThrottle(2000, 0)
	for i := 0; i < 5000; i++ {
		eng.Step(u)
	}
	if math.Abs(eng.Speed()-2000) > 1 {
		t.Errorf("steady-state speed = %v, want ≈ 2000", eng.Speed())
	}
}

func TestEngineSpeedNeverNegative(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.InitSpeed = 10
	cfg.Load = func(float64) float64 { return 1e6 } // crushing load
	eng := NewEngine(cfg)
	for i := 0; i < 100; i++ {
		if y := eng.Step(0); y < 0 {
			t.Fatalf("speed went negative: %v", y)
		}
	}
}

func TestEngineMoreThrottleMoreSpeed(t *testing.T) {
	run := func(u float64) float64 {
		cfg := DefaultEngineConfig()
		cfg.Load = NoLoad()
		eng := NewEngine(cfg)
		for i := 0; i < 2000; i++ {
			eng.Step(u)
		}
		return eng.Speed()
	}
	lo, hi := run(10), run(20)
	if hi <= lo {
		t.Errorf("speed(u=20)=%v should exceed speed(u=10)=%v", hi, lo)
	}
}

func TestEngineClampsThrottle(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Load = NoLoad()
	a := NewEngine(cfg)
	b := NewEngine(cfg)
	for i := 0; i < 500; i++ {
		a.Step(1e9)
		b.Step(ThrottleMax)
	}
	if a.Speed() != b.Speed() {
		t.Errorf("unclamped throttle produced different trajectory: %v vs %v", a.Speed(), b.Speed())
	}
}

func TestEngineDeterministic(t *testing.T) {
	cfg := DefaultEngineConfig()
	a := NewEngine(cfg)
	b := NewEngine(cfg)
	for i := 0; i < 650; i++ {
		u := 7 + 3*math.Sin(float64(i)/20)
		if ya, yb := a.Step(u), b.Step(u); ya != yb {
			t.Fatalf("engines diverged at step %d: %v vs %v", i, ya, yb)
		}
	}
}

func TestEngineReset(t *testing.T) {
	eng := NewEngine(DefaultEngineConfig())
	for i := 0; i < 100; i++ {
		eng.Step(40)
	}
	eng.Reset()
	if eng.Speed() != 2000 {
		t.Errorf("speed after reset = %v, want 2000", eng.Speed())
	}
	if eng.Time() != 0 {
		t.Errorf("time after reset = %v, want 0", eng.Time())
	}
}

func TestEngineTimeAdvances(t *testing.T) {
	eng := NewEngine(DefaultEngineConfig())
	eng.Step(7)
	eng.Step(7)
	want := 2 * DefaultSampleInterval
	if math.Abs(eng.Time()-want) > 1e-12 {
		t.Errorf("Time() = %v, want %v", eng.Time(), want)
	}
}

func TestEngineSpeedFiniteProperty(t *testing.T) {
	f := func(throttles []float64) bool {
		eng := NewEngine(DefaultEngineConfig())
		for _, u := range throttles {
			y := eng.Step(u)
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperReferenceProfile(t *testing.T) {
	ref := PaperReference()
	tests := []struct {
		t    float64
		want float64
	}{
		{0, 2000},
		{4.99, 2000},
		{5.0, 3000},
		{9.99, 3000},
	}
	for _, tt := range tests {
		if got := ref(tt.t); got != tt.want {
			t.Errorf("ref(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestHillyTerrainLoadWindows(t *testing.T) {
	load := HillyTerrainLoad()
	if load(2.0) != 0 {
		t.Error("load outside windows should be zero")
	}
	if load(3.5) <= 0 {
		t.Error("load in 3<t<4 should be positive")
	}
	if load(7.5) <= 0 {
		t.Error("load in 7<t<8 should be positive")
	}
	if load(5.5) != 0 {
		t.Error("load between windows should be zero")
	}
	if load(9.0) != 0 {
		t.Error("load after windows should be zero")
	}
}

func TestHillyTerrainLoadContinuity(t *testing.T) {
	load := HillyTerrainLoad()
	// Half-sine bumps are ~0 at the window boundaries.
	for _, tt := range []float64{3.0001, 3.9999, 7.0001, 7.9999} {
		if v := load(tt); math.Abs(v) > 1 {
			t.Errorf("load(%v) = %v, want near 0 (continuous bump)", tt, v)
		}
	}
}

func TestSteadyStateThrottleInverts(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Load = NoLoad()
	eng := NewEngine(cfg)
	u := eng.SteadyStateThrottle(3000, 0)
	for i := 0; i < 5000; i++ {
		eng.Step(u)
	}
	if math.Abs(eng.Speed()-3000) > 1 {
		t.Errorf("holding steady-state throttle gave %v rpm, want ≈ 3000", eng.Speed())
	}
}
