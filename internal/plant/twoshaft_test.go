package plant

import (
	"math"
	"testing"
)

func TestTwoShaftSteadyState(t *testing.T) {
	cfg := DefaultTwoShaftConfig()
	p := NewTwoShaft(cfg)
	u1, u2 := p.SteadyStateInputs(300, 200)
	for i := 0; i < 20000; i++ {
		p.Step(u1, u2)
	}
	n1, n2 := p.Speeds()
	if math.Abs(n1-300) > 1 || math.Abs(n2-200) > 1 {
		t.Errorf("steady state = (%v, %v), want (300, 200)", n1, n2)
	}
}

func TestTwoShaftCoupling(t *testing.T) {
	// Raising u2 alone must raise shaft 1 too (cross gain G12 > 0).
	base := NewTwoShaft(DefaultTwoShaftConfig())
	more := NewTwoShaft(DefaultTwoShaftConfig())
	for i := 0; i < 5000; i++ {
		base.Step(30, 20)
		more.Step(30, 30)
	}
	b1, _ := base.Speeds()
	m1, _ := more.Speeds()
	if m1 <= b1 {
		t.Errorf("shaft 1 should rise with u2: %v vs %v", m1, b1)
	}
}

func TestTwoShaftClampsActuators(t *testing.T) {
	a := NewTwoShaft(DefaultTwoShaftConfig())
	b := NewTwoShaft(DefaultTwoShaftConfig())
	for i := 0; i < 500; i++ {
		a.Step(1e9, -1e9)
		b.Step(100, 0)
	}
	a1, a2 := a.Speeds()
	b1, b2 := b.Speeds()
	if a1 != b1 || a2 != b2 {
		t.Error("actuator clamping not applied")
	}
}

func TestTwoShaftSpeedsNeverNegative(t *testing.T) {
	p := NewTwoShaft(DefaultTwoShaftConfig())
	for i := 0; i < 5000; i++ {
		p.Step(0, 0)
		n1, n2 := p.Speeds()
		if n1 < 0 || n2 < 0 {
			t.Fatalf("negative speed: %v, %v", n1, n2)
		}
	}
}

func TestTwoShaftReset(t *testing.T) {
	p := NewTwoShaft(DefaultTwoShaftConfig())
	p.Step(50, 30)
	p.Reset()
	n1, n2 := p.Speeds()
	if n1 != 300 || n2 != 200 {
		t.Errorf("reset state = (%v, %v)", n1, n2)
	}
}

func TestTwoShaftSteadyStateInputsInRange(t *testing.T) {
	cfg := DefaultTwoShaftConfig()
	p := NewTwoShaft(cfg)
	for _, set := range [][2]float64{{300, 200}, {400, 250}} {
		u1, u2 := p.SteadyStateInputs(set[0], set[1])
		if u1 < cfg.U1Min || u1 > cfg.U1Max || u2 < cfg.U2Min || u2 > cfg.U2Max {
			t.Errorf("set-point (%v, %v) needs out-of-range inputs (%v, %v)", set[0], set[1], u1, u2)
		}
	}
}

func TestPaperMIMOReference(t *testing.T) {
	r1, r2 := PaperMIMOReference()
	if r1(0) != 300 || r1(6) != 400 {
		t.Errorf("shaft 1 reference wrong: %v, %v", r1(0), r1(6))
	}
	if r2(0) != 200 || r2(6) != 250 {
		t.Errorf("shaft 2 reference wrong: %v, %v", r2(0), r2(6))
	}
}
