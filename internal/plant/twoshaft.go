package plant

// TwoShaft is a crude two-spool jet-engine abstraction: two coupled
// rotational shafts whose speeds respond to two actuators (fuel flow
// and nozzle area), each with its own authority range. It is the
// controlled object for the MIMO workload implementing the paper's
// future-work direction (multiple-input multiple-output controllers
// such as jet-engine controllers).
//
//	dn1/dt = (g11·u1 + g12·u2 − d1·n1) / J1
//	dn2/dt = (g21·u1 + g22·u2 − d2·n2) / J2
type TwoShaft struct {
	cfg TwoShaftConfig
	n1  float64
	n2  float64
	k   int
}

// TwoShaftConfig holds the physical parameters.
type TwoShaftConfig struct {
	G11, G12 float64 // actuator gains onto shaft 1
	G21, G22 float64 // actuator gains onto shaft 2
	D1, D2   float64 // drag coefficients
	J1, J2   float64 // shaft inertias
	T        float64 // sample interval, seconds
	Init1    float64 // initial shaft speeds
	Init2    float64

	// U1Min..U2Max are the actuator authority ranges (fuel flow and
	// nozzle area).
	U1Min, U1Max float64
	U2Min, U2Max float64
}

// DefaultTwoShaftConfig returns parameters giving a well-behaved
// closed loop with the MIMO workload's controller gains.
func DefaultTwoShaftConfig() TwoShaftConfig {
	return TwoShaftConfig{
		G11: 8, G12: 1,
		G21: 1.5, G22: 6,
		D1: 0.9, D2: 1.1,
		J1: 1, J2: 1,
		T:     DefaultSampleInterval,
		Init1: 300, Init2: 200,
		U1Min: 0, U1Max: 100,
		U2Min: 0, U2Max: 40,
	}
}

// NewTwoShaft creates the plant in its initial state.
func NewTwoShaft(cfg TwoShaftConfig) *TwoShaft {
	return &TwoShaft{cfg: cfg, n1: cfg.Init1, n2: cfg.Init2}
}

// Step advances one sample interval with actuator commands u1, u2
// (clamped to their authority ranges) and returns the new shaft speeds.
// Speeds never go negative.
func (p *TwoShaft) Step(u1, u2 float64) (n1, n2 float64) {
	u1 = clampTo(u1, p.cfg.U1Min, p.cfg.U1Max)
	u2 = clampTo(u2, p.cfg.U2Min, p.cfg.U2Max)
	d1 := (p.cfg.G11*u1 + p.cfg.G12*u2 - p.cfg.D1*p.n1) / p.cfg.J1
	d2 := (p.cfg.G21*u1 + p.cfg.G22*u2 - p.cfg.D2*p.n2) / p.cfg.J2
	p.n1 += p.cfg.T * d1
	p.n2 += p.cfg.T * d2
	if p.n1 < 0 {
		p.n1 = 0
	}
	if p.n2 < 0 {
		p.n2 = 0
	}
	p.k++
	return p.n1, p.n2
}

// Speeds returns the current shaft speeds.
func (p *TwoShaft) Speeds() (n1, n2 float64) {
	return p.n1, p.n2
}

// Clone returns an independent plant frozen at the current state, for
// checkpoint/resume of closed-loop runs.
func (p *TwoShaft) Clone() *TwoShaft {
	cp := *p
	return &cp
}

// Reset restores the initial state.
func (p *TwoShaft) Reset() {
	p.n1, p.n2 = p.cfg.Init1, p.cfg.Init2
	p.k = 0
}

// SteadyStateInputs returns the actuator commands holding the given
// shaft speeds, by inverting the static gain matrix.
func (p *TwoShaft) SteadyStateInputs(n1, n2 float64) (u1, u2 float64) {
	// Solve G·u = D·n for u.
	b1 := p.cfg.D1 * n1
	b2 := p.cfg.D2 * n2
	det := p.cfg.G11*p.cfg.G22 - p.cfg.G12*p.cfg.G21
	u1 = (b1*p.cfg.G22 - p.cfg.G12*b2) / det
	u2 = (p.cfg.G11*b2 - b1*p.cfg.G21) / det
	return u1, u2
}

// PaperMIMOReference returns the reference profiles for the MIMO
// workload: both shafts hold their initial set-points for the first
// half of the window, then step up (shaft 1: 300→400, shaft 2:
// 200→250), mirroring the shape of the paper's Figure 3 for two loops.
func PaperMIMOReference() (ref1, ref2 ReferenceProfile) {
	return StepReference(300, 400, 5.0), StepReference(200, 250, 5.0)
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
