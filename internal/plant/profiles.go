package plant

import "math"

// ReferenceProfile maps simulation time (seconds) to the desired engine
// speed (rpm).
type ReferenceProfile func(t float64) float64

// LoadProfile maps simulation time (seconds) to the external load
// torque acting on the engine.
type LoadProfile func(t float64) float64

// PaperReference returns the reference speed profile of Figure 3:
// 2000 rpm for the first half of the 10 second window, then a momentary
// change to 3000 rpm.
func PaperReference() ReferenceProfile {
	return StepReference(2000, 3000, 5.0)
}

// StepReference returns a profile that holds `before` rpm until
// stepTime and `after` rpm from then on.
func StepReference(before, after, stepTime float64) ReferenceProfile {
	return func(t float64) float64 {
		if t < stepTime {
			return before
		}
		return after
	}
}

// ConstantReference returns a profile pinned at rpm.
func ConstantReference(rpm float64) ReferenceProfile {
	return func(float64) float64 { return rpm }
}

// HillyTerrainLoad returns the load torque profile of Figure 4: the
// engine load rises while the vehicle climbs during 3 < t < 4 and
// 7 < t < 8, producing the speed dips seen in Figure 3. Each episode is
// a half-sine bump so the load is continuous.
func HillyTerrainLoad() LoadProfile {
	const amplitude = 130.0
	return func(t float64) float64 {
		switch {
		case t > 3 && t < 4:
			return amplitude * math.Sin(math.Pi*(t-3))
		case t > 7 && t < 8:
			return amplitude * math.Sin(math.Pi*(t-7))
		default:
			return 0
		}
	}
}

// NoLoad returns a profile with zero external load.
func NoLoad() LoadProfile {
	return func(float64) float64 { return 0 }
}
