// Package plant implements the controlled object of the paper's
// experiments: the engine model that the Simulink environment simulator
// provided on the host workstation. The engine's speed responds to the
// throttle angle commanded by the PI controller and to an external load
// torque (the "hilly terrain" disturbance of Figure 4).
//
// The model is a first-order rotational inertia:
//
//	J * dω/dt = Kt*u − b*ω − L(t)
//
// where ω is the engine speed (rpm), u the throttle angle (degrees,
// 0–70), L(t) the load torque, J the inertia, b viscous friction and Kt
// the torque gain. The exact physics are irrelevant to the paper's
// dependability result; what matters is that the closed loop with the
// PI controller reproduces the qualitative traces of Figures 3–5
// (setpoint tracking, disturbance dips, throttle in range).
package plant

import "ctrlguard/internal/fphys"

// Default simulation parameters from the paper: 650 iterations of the
// control loop covering 10 seconds, i.e. a 15.4 ms sample interval.
const (
	// DefaultSampleInterval is the paper's 15.4 ms control period.
	DefaultSampleInterval = 10.0 / 650

	// DefaultIterations is the paper's observed window of 650 samples.
	DefaultIterations = 650

	// ThrottleMin and ThrottleMax are the physical limits of the
	// engine throttle angle in degrees.
	ThrottleMin = 0.0
	ThrottleMax = 70.0
)

// EngineConfig holds the physical parameters of the engine model.
type EngineConfig struct {
	Inertia    float64 // J, rotational inertia
	Friction   float64 // b, viscous friction coefficient
	TorqueGain float64 // Kt, torque per degree of throttle
	T          float64 // sample interval in seconds
	InitSpeed  float64 // initial engine speed in rpm
	Load       LoadProfile
}

// DefaultEngineConfig returns parameters tuned so the closed loop with
// the paper's PI controller reproduces the shape of Figures 3-5.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Inertia:    0.08,
		Friction:   0.07,
		TorqueGain: 20.0,
		T:          DefaultSampleInterval,
		InitSpeed:  2000,
		Load:       HillyTerrainLoad(),
	}
}

// Engine is the controlled object. It is deterministic: two engines
// with the same configuration produce identical trajectories for
// identical inputs.
type Engine struct {
	cfg   EngineConfig
	omega float64
	k     int
}

// NewEngine creates an engine in its initial state.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{cfg: cfg, omega: cfg.InitSpeed}
}

// Step advances the engine by one sample interval with throttle angle u
// (degrees, clamped to the physical range) and returns the new engine
// speed in rpm. Speed never goes negative: a real engine stalls at zero.
func (e *Engine) Step(u float64) float64 {
	u = fphys.Clamp(u, ThrottleMin, ThrottleMax)
	t := float64(e.k) * e.cfg.T
	load := 0.0
	if e.cfg.Load != nil {
		load = e.cfg.Load(t)
	}
	dOmega := (e.cfg.TorqueGain*u - e.cfg.Friction*e.omega - load) / e.cfg.Inertia
	e.omega += e.cfg.T * dOmega
	if e.omega < 0 {
		e.omega = 0
	}
	e.k++
	return e.omega
}

// Speed returns the current engine speed in rpm without advancing time.
func (e *Engine) Speed() float64 {
	return e.omega
}

// Clone returns an independent engine frozen at the current state, for
// checkpoint/resume of closed-loop runs. The load profile is shared
// (profiles are pure functions of time).
func (e *Engine) Clone() *Engine {
	cp := *e
	return &cp
}

// Time returns the current simulation time in seconds.
func (e *Engine) Time() float64 {
	return float64(e.k) * e.cfg.T
}

// Reset returns the engine to its initial state.
func (e *Engine) Reset() {
	e.omega = e.cfg.InitSpeed
	e.k = 0
}

// SteadyStateThrottle returns the throttle angle that holds speed omega
// against load torque load, useful for initialising the controller
// integrator to avoid a start-up transient.
func (e *Engine) SteadyStateThrottle(omega, load float64) float64 {
	return (e.cfg.Friction*omega + load) / e.cfg.TorqueGain
}
