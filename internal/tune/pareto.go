package tune

// The tuner minimizes four objectives per configuration. Campaign-
// backed objectives are noisy proportions, so pruning decisions use
// 95 % confidence intervals: a candidate is only discarded when
// another is better beyond noise somewhere and not worse beyond noise
// anywhere — a noisy candidate whose intervals overlap everything
// survives to the next refinement round, where a doubled campaign
// tightens its intervals.

// objective is one minimized metric with its uncertainty bounds.
type objective struct {
	point  float64
	lo, hi float64
}

// objectives extracts the four metrics. Proportions carry their 95 %
// intervals (degenerate [0, 1] when unmeasured, via
// stats.Proportion.Interval95); the modelled overhead is exact.
func objectives(r Result) [4]objective {
	obj := [4]objective{}
	for i, p := range []struct {
		point float64
		prop  interface{ Interval95() (float64, float64) }
	}{
		{r.Severe.P(), r.Severe},
		{r.ValueFailures.P(), r.ValueFailures},
		{r.FalsePositives.P(), r.FalsePositives},
	} {
		lo, hi := p.prop.Interval95()
		obj[i] = objective{point: p.point, lo: lo, hi: hi}
	}
	obj[3] = objective{point: r.Overhead, lo: r.Overhead, hi: r.Overhead}
	return obj
}

// Dominates reports point-wise Pareto dominance: a is no worse than b
// on every objective and strictly better on at least one.
func Dominates(a, b Result) bool {
	oa, ob := objectives(a), objectives(b)
	strict := false
	for i := range oa {
		if oa[i].point > ob[i].point {
			return false
		}
		if oa[i].point < ob[i].point {
			strict = true
		}
	}
	return strict
}

// ConfidentlyDominates reports dominance beyond campaign noise: a is
// better than b with separated 95 % intervals on at least one
// objective (a.hi < b.lo) and not worse beyond noise on any
// (never a.lo > b.hi). Only this relation may prune a candidate
// during the search — point-wise dominance on overlapping intervals
// could discard a configuration whose true rates are better.
func ConfidentlyDominates(a, b Result) bool {
	oa, ob := objectives(a), objectives(b)
	separated := false
	for i := range oa {
		if oa[i].lo > ob[i].hi {
			return false // worse beyond noise somewhere
		}
		if oa[i].hi < ob[i].lo {
			separated = true
		}
	}
	return separated
}

// ParetoFront returns the point-wise non-dominated subset, preserving
// input order. Duplicated metric vectors all survive (neither
// strictly dominates the other).
func ParetoFront(rs []Result) []Result {
	var front []Result
	for i, r := range rs {
		dominated := false
		for j, other := range rs {
			if i != j && Dominates(other, r) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	return front
}
