package tune

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/workload"
)

// Result is the measured quality of one protection configuration. The
// struct is shared with cmd/guardstudy's -json output so hand-written
// design studies and the tuner speak one schema (a study can seed the
// tuner, and both feed the same plots). Fields a producer did not
// measure keep a zero-experiment Proportion, whose Interval95 is the
// degenerate [0, 1] — "unknown", not "zero".
type Result struct {
	// Name labels the design: the configuration ID for tuner results,
	// or a study's design name.
	Name string `json:"name"`

	// Config is the design-space point, when the producer has one.
	Config Config `json:"config"`

	// Experiments is the fault-injection campaign size behind the
	// failure rates.
	Experiments int `json:"experiments"`

	// ValueFailures and Severe are the campaign's undetected-wrong-
	// result rates (severe is the subset the paper calls critical).
	ValueFailures stats.Proportion `json:"valueFailures"`
	Severe        stats.Proportion `json:"severe"`

	// Detected is the detection coverage: the share of injected faults
	// caught by any error-detection mechanism, including in-loop
	// detectors (signature monitoring, behavior automata). Producers
	// that do not measure coverage leave the zero-experiment Proportion
	// ("unknown", not "zero").
	Detected stats.Proportion `json:"detected"`

	// FalsePositives is the share of fault-free control iterations in
	// which the guard intervened — detector noise that costs control
	// performance with no fault present.
	FalsePositives stats.Proportion `json:"falsePositives"`

	// Overhead is the modelled runtime cost of the protection as a
	// fraction of the bare control iteration (0.42 = 42 % more
	// instructions per iteration). It is an instruction-count model
	// calibrated against the simulated CPU's Algorithm I vs II
	// workloads, so it is exact and deterministic.
	Overhead float64 `json:"overhead"`
}

// Evaluator measures protection configurations on the paper's engine
// workload. The zero value plus a seed is ready to use; fields
// override the paper defaults. Methods are safe for concurrent use
// after the first call completes, and EvaluateAll itself parallelises
// internally — callers need no extra concurrency.
type Evaluator struct {
	// PI overrides the controller gains (zero value = paper config).
	PI control.PIConfig

	// Engine and Reference override the plant (nil = paper defaults).
	Engine    *plant.EngineConfig
	Reference plant.ReferenceProfile

	// Iterations is the closed-loop run length (0 = the paper's 650).
	Iterations int

	// Seed drives every campaign; candidate seeds are derived from it
	// and the configuration identity, so results do not depend on
	// evaluation order.
	Seed uint64

	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int

	prepOnce sync.Once
	prepErr  error
	pi       control.PIConfig
	engine   plant.EngineConfig
	ref      plant.ReferenceProfile
	iters    int
	learner  *core.BoundsLearner
	perOp    float64 // simulated-CPU instructions per guard element op
	baseCost float64 // simulated-CPU instructions per bare iteration
}

// NewEvaluator returns an evaluator with the paper's workload and the
// given campaign seed.
func NewEvaluator(seed uint64) *Evaluator {
	return &Evaluator{Seed: seed}
}

// prepare resolves defaults, learns the assertion envelope from a
// fault-free reference run, and calibrates the overhead cost model.
func (e *Evaluator) prepare() error {
	e.prepOnce.Do(func() {
		e.pi = e.PI
		if e.pi == (control.PIConfig{}) {
			e.pi = control.PaperPIConfig(plant.DefaultSampleInterval)
		}
		if e.Engine != nil {
			e.engine = *e.Engine
		} else {
			e.engine = plant.DefaultEngineConfig()
		}
		e.ref = e.Reference
		if e.ref == nil {
			e.ref = plant.PaperReference()
		}
		e.iters = e.Iterations
		if e.iters <= 0 {
			e.iters = plant.DefaultIterations
		}

		// Learn the state envelope from the unprotected fault-free
		// loop — the automated version of the paper's manual
		// constraint engineering, shared by every learned candidate.
		ctrl := control.NewPI(e.pi)
		eng := plant.NewEngine(e.engine)
		learner := core.NewBoundsLearner(len(ctrl.State()))
		y := eng.Speed()
		for k := 0; k < e.iters; k++ {
			u := ctrl.Step(e.ref(float64(k)*e.engine.T), y)
			y = eng.Step(u)
			if err := learner.Observe(ctrl.State()); err != nil {
				e.prepErr = err
				return
			}
		}
		e.learner = learner

		e.prepErr = e.calibrate()
	})
	return e.prepErr
}

// calibrate derives the overhead model from the simulated CPU: the
// instruction-count difference between the Algorithm II and Algorithm
// I workloads prices the four guard element operations Algorithm II
// performs per iteration (assert state, assert output, back up state,
// back up output, each on one element). Wall clocks would make the
// search nondeterministic; the simulated CPU charges the paper's
// actual target instead.
func (e *Evaluator) calibrate() error {
	bare := workload.Run(workload.Program(workload.AlgorithmI), workload.SpecFor(workload.AlgorithmI))
	if bare.Detected() {
		return fmt.Errorf("tune: Algorithm I calibration run trapped: %v", bare.Trap)
	}
	protected := workload.Run(workload.Program(workload.AlgorithmII), workload.SpecFor(workload.AlgorithmII))
	if protected.Detected() {
		return fmt.Errorf("tune: Algorithm II calibration run trapped: %v", protected.Trap)
	}
	iters := len(bare.Outputs)
	if iters == 0 || len(protected.Outputs) == 0 {
		return fmt.Errorf("tune: calibration runs produced no outputs")
	}
	e.baseCost = float64(bare.Instructions) / float64(iters)
	delta := float64(protected.Instructions)/float64(len(protected.Outputs)) - e.baseCost
	if delta <= 0 || e.baseCost <= 0 {
		return fmt.Errorf("tune: implausible calibration (base %.1f, delta %.1f instructions/iteration)", e.baseCost, delta)
	}
	e.perOp = delta / 4
	return nil
}

// guardPolicy maps a design-space policy onto the guard's.
func guardPolicy(p Policy) (core.RecoveryPolicy, error) {
	switch p {
	case PolicyRollback:
		return core.Rollback, nil
	case PolicyFreeze:
		return core.Freeze, nil
	case PolicySaturate:
		return core.Saturate, nil
	default:
		return 0, fmt.Errorf("tune: policy %q has no guard construction", p)
	}
}

// build returns a constructor for the candidate's guarded controller.
// Assertions are constructed fresh per instance because rate
// assertions carry history.
func (e *Evaluator) build(c Config) (func() (*core.Guard, control.Stateful), error) {
	pol, err := guardPolicy(c.Policy)
	if err != nil {
		return nil, err
	}
	var newAssert func() (core.Assertion, error)
	if c.Learned {
		newAssert = func() (core.Assertion, error) {
			rng, err := e.learner.RangeAssertionWithMargin(c.Slack)
			if err != nil {
				return nil, err
			}
			if c.RateLimit <= 0 {
				return rng, nil
			}
			rate, err := e.learner.RateAssertionWithMargin(c.RateLimit)
			if err != nil {
				return nil, err
			}
			return core.All(rng, rate), nil
		}
	} else {
		width := e.pi.OutMax - e.pi.OutMin
		lo, hi := e.pi.OutMin-c.Slack*width, e.pi.OutMax+c.Slack*width
		newAssert = func() (core.Assertion, error) {
			rng := core.RangeAssertion{Min: lo, Max: hi}
			if c.RateLimit <= 0 {
				return rng, nil
			}
			return core.All(rng, core.NewRateAssertion(c.RateLimit)), nil
		}
	}
	// Pre-flight once so the per-run constructor cannot fail.
	if _, err := newAssert(); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", c.ID(), err)
	}
	return func() (*core.Guard, control.Stateful) {
		assert, _ := newAssert()
		g := core.NewGuard(control.NewPI(e.pi), assert, core.WithPolicy(pol))
		return g, core.NewGuardedController(g)
	}, nil
}

// faultFree drives the candidate through one fault-free closed-loop
// run, measuring false positives (iterations with any guard
// intervention) and returning the modelled overhead.
func (e *Evaluator) faultFree(c Config) (fp stats.Proportion, overhead float64, err error) {
	if c.Policy == PolicyNone {
		return stats.Proportion{Count: 0, N: e.iters}, 0, nil
	}
	build, err := e.build(c)
	if err != nil {
		return stats.Proportion{}, 0, err
	}
	g, ctrl := build()
	eng := plant.NewEngine(e.engine)
	y := eng.Speed()
	fpSteps, prev := 0, 0
	for k := 0; k < e.iters; k++ {
		u := ctrl.Update([]float64{e.ref(float64(k) * e.engine.T), y})
		y = eng.Step(u[0])
		s := g.Stats()
		if v := s.StateViolations + s.OutputViolations; v > prev {
			fpSteps++
			prev = v
		}
	}

	// Overhead model: per iteration the guard checks every state and
	// output element against each assertion leaf and backs each
	// element up once; each element operation costs perOp simulated-
	// CPU instructions (recoveries are rare and amortize to noise).
	stateDim := len(g.Controller().State())
	const outDim = 1 // the engine workload is SISO
	leaves := 1
	if c.RateLimit > 0 {
		leaves = 2
	}
	ops := float64((leaves + 1) * (stateDim + outDim))
	overhead = ops * e.perOp / e.baseCost
	return stats.Proportion{Count: fpSteps, N: e.iters}, overhead, nil
}

// candidateSeed derives a campaign seed from the evaluator seed and
// the configuration identity, so a candidate's campaign is identical
// no matter when or alongside what it is evaluated.
func (e *Evaluator) candidateSeed(c Config) uint64 {
	h := fnv.New64a()
	io.WriteString(h, c.ID())
	return h.Sum64() ^ (e.Seed*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019)
}

// Evaluate measures one configuration with an n-experiment campaign.
func (e *Evaluator) Evaluate(ctx context.Context, c Config, n int) (Result, error) {
	rs, err := e.EvaluateAll(ctx, []Config{c}, n)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// EvaluateAll measures every candidate: fault-free runs concurrently
// across a bounded pool, then all fault-injection campaigns batched
// over one shared worker pool (goofi.RunVariableBatch) so small
// campaigns saturate the machine. Results align with cands by index.
func (e *Evaluator) EvaluateAll(ctx context.Context, cands []Config, n int) ([]Result, error) {
	if err := e.prepare(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("tune: need a positive campaign size, got %d", n)
	}
	for _, c := range cands {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Phase A: fault-free metrics, concurrently across candidates.
	results := make([]Result, len(cands))
	errs := make([]error, len(cands))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, c := range cands {
		wg.Add(1)
		go func(i int, c Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fp, overhead, err := e.faultFree(c)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = Result{
				Name:           c.ID(),
				Config:         c,
				Experiments:    n,
				FalsePositives: fp,
				Overhead:       overhead,
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase B: one batched fault-injection pass over all candidates.
	cfgs := make([]goofi.VarConfig, len(cands))
	for i, c := range cands {
		factory, err := e.campaignFactory(c)
		if err != nil {
			return nil, err
		}
		cfgs[i] = goofi.VarConfig{
			Name:        c.ID(),
			New:         factory,
			Experiments: n,
			Seed:        e.candidateSeed(c),
			Iterations:  e.iters,
			Engine:      &e.engine,
			Reference:   e.ref,
			Workers:     workers,
		}
	}
	campaigns, err := goofi.RunVariableBatch(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	for i, res := range campaigns {
		vf, sev := goofi.VarSummary(res.Records)
		results[i].ValueFailures = vf
		results[i].Severe = sev
	}
	return results, nil
}

// campaignFactory returns the controller constructor the campaign
// injects into: the bare controller for PolicyNone, the guarded one
// otherwise.
func (e *Evaluator) campaignFactory(c Config) (func() control.Stateful, error) {
	if c.Policy == PolicyNone {
		return func() control.Stateful { return control.NewPI(e.pi) }, nil
	}
	build, err := e.build(c)
	if err != nil {
		return nil, err
	}
	return func() control.Stateful {
		_, ctrl := build()
		return ctrl
	}, nil
}
