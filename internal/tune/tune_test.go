package tune

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"ctrlguard/internal/stats"
)

// testSpec is a small, fast search space shared by the search tests:
// the unprotected baseline plus static rollback guards with and
// without a rate assertion.
func testSpec() Spec {
	return Spec{
		Space: Space{
			Policies:   []Policy{PolicyNone, PolicyRollback},
			Learned:    []bool{false},
			Slacks:     []float64{0},
			RateLimits: []float64{0, 8},
		},
		Seed:               17,
		InitialExperiments: 150,
		Rounds:             2,
		OverheadBudget:     1.5,
	}
}

func TestConfigIDAndNormalize(t *testing.T) {
	none := Config{Policy: PolicyNone, Slack: 0.5, RateLimit: 3, Learned: true}
	if got := none.normalize(); got != (Config{Policy: PolicyNone}) {
		t.Errorf("normalize(none) = %+v", got)
	}
	a := Config{Policy: PolicyRollback, Slack: 0.1, RateLimit: 8}
	b := Config{Policy: PolicyRollback, Learned: true, Slack: 0.1, RateLimit: 8}
	if a.ID() == b.ID() {
		t.Errorf("learned and static configs share ID %q", a.ID())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Policy: "explode"}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := (Config{Policy: PolicyRollback, Slack: -1}).Validate(); err == nil {
		t.Error("negative slack accepted")
	}
	if err := (Config{Policy: PolicyRollback, RateLimit: -1}).Validate(); err == nil {
		t.Error("negative rate limit accepted")
	}
	if err := (Config{Policy: PolicySaturate, Slack: 0.1, RateLimit: 3}).Validate(); err != nil {
		t.Errorf("legal config rejected: %v", err)
	}
}

func TestSpaceCandidates(t *testing.T) {
	cands := DefaultSpace().Candidates()
	if cands[0].Policy != PolicyNone {
		t.Errorf("baseline not first: %+v", cands[0])
	}
	// 3 protected policies × 2 learned × 3 slacks × 3 rates + baseline.
	if want := 3*2*3*3 + 1; len(cands) != want {
		t.Errorf("candidates = %d, want %d", len(cands), want)
	}
	seen := make(map[string]bool)
	for _, c := range cands {
		if seen[c.ID()] {
			t.Errorf("duplicate candidate %s", c.ID())
		}
		seen[c.ID()] = true
		if err := c.Validate(); err != nil {
			t.Errorf("invalid candidate %s: %v", c.ID(), err)
		}
	}

	// Enumeration must be deterministic.
	again := DefaultSpace().Candidates()
	if !reflect.DeepEqual(cands, again) {
		t.Error("Candidates() order is not stable")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec (all defaults) rejected: %v", err)
	}
	if err := (Spec{Rounds: 99}).Validate(); err == nil {
		t.Error("absurd round count accepted")
	}
	if err := (Spec{InitialExperiments: -5}).Validate(); err == nil {
		t.Error("negative experiments accepted")
	}
	if err := (Spec{Space: Space{Policies: []Policy{"bogus"}}}).Validate(); err == nil {
		t.Error("bogus policy accepted")
	}
	one := Spec{Space: Space{Policies: []Policy{PolicyNone}}}
	if err := one.Validate(); err == nil {
		t.Error("baseline-only space accepted")
	}
}

// synthetic builds a Result with exact (large-n) proportions for
// dominance unit tests.
func synthetic(name string, severe, value, fp float64, overhead float64) Result {
	const n = 1000000
	prop := func(p float64) stats.Proportion {
		return stats.Proportion{Count: int(p * n), N: n}
	}
	return Result{
		Name:           name,
		Config:         Config{Policy: PolicyRollback, Slack: 0.1},
		Severe:         prop(severe),
		ValueFailures:  prop(value),
		FalsePositives: prop(fp),
		Overhead:       overhead,
	}
}

func TestDominates(t *testing.T) {
	better := synthetic("better", 0.01, 0.10, 0.00, 0.4)
	worse := synthetic("worse", 0.05, 0.12, 0.01, 0.6)
	mixed := synthetic("mixed", 0.005, 0.15, 0.00, 0.4) // better severe, worse value rate
	if !Dominates(better, worse) {
		t.Error("better should dominate worse")
	}
	if Dominates(worse, better) {
		t.Error("worse should not dominate better")
	}
	if Dominates(better, mixed) || Dominates(mixed, better) {
		t.Error("trade-off pair should be mutually non-dominated")
	}
	if Dominates(better, better) {
		t.Error("a result must not dominate itself")
	}
}

func TestConfidentDominanceRespectsNoise(t *testing.T) {
	// Ten experiments each: hugely overlapping intervals. Point-wise
	// one dominates, but neither may confidently prune the other.
	small := func(name string, severeCount int) Result {
		return Result{
			Name:           name,
			Severe:         stats.Proportion{Count: severeCount, N: 10},
			ValueFailures:  stats.Proportion{Count: severeCount, N: 10},
			FalsePositives: stats.Proportion{Count: 0, N: 650},
			Overhead:       0.4,
		}
	}
	a, b := small("a", 1), small("b", 2)
	if !Dominates(a, b) {
		t.Fatal("a should point-wise dominate b")
	}
	if ConfidentlyDominates(a, b) {
		t.Error("overlapping intervals must not prune")
	}

	// A million experiments: the same rates separate cleanly.
	bigA := synthetic("bigA", 0.1, 0.1, 0.0, 0.4)
	bigB := synthetic("bigB", 0.2, 0.2, 0.0, 0.4)
	if !ConfidentlyDominates(bigA, bigB) {
		t.Error("separated intervals should prune")
	}

	// An unmeasured proportion (n = 0) spans [0, 1]: nothing can be
	// confidently better than it on that metric, and it cannot prune.
	unknown := synthetic("unknown", 0.1, 0.1, 0.0, 0.4)
	unknown.FalsePositives = stats.Proportion{}
	if ConfidentlyDominates(bigA, unknown) || ConfidentlyDominates(unknown, bigA) {
		t.Error("unmeasured metrics must block confident pruning")
	}
}

func TestParetoFront(t *testing.T) {
	rs := []Result{
		synthetic("a", 0.01, 0.10, 0.00, 0.8),
		synthetic("b", 0.05, 0.12, 0.00, 0.2), // cheaper but weaker: on the front
		synthetic("c", 0.05, 0.12, 0.01, 0.9), // dominated by both
	}
	front := ParetoFront(rs)
	if len(front) != 2 || front[0].Name != "a" || front[1].Name != "b" {
		t.Errorf("front = %v", names(front))
	}
	if got := ParetoFront(nil); got != nil {
		t.Errorf("empty front = %v", got)
	}
}

func names(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

func TestTuneEvaluateGuardBeatsBaseline(t *testing.T) {
	ev := NewEvaluator(17)
	const n = 400
	rs, err := ev.EvaluateAll(context.Background(), []Config{
		{Policy: PolicyNone},
		{Policy: PolicyRollback},
	}, n)
	if err != nil {
		t.Fatal(err)
	}
	bare, guarded := rs[0], rs[1]
	if bare.Severe.N != n || guarded.Severe.N != n {
		t.Fatalf("campaign sizes: bare %d, guarded %d, want %d", bare.Severe.N, guarded.Severe.N, n)
	}
	if bare.Severe.Count == 0 {
		t.Fatal("unprotected baseline shows no severe failures; campaign too easy to discriminate")
	}
	if guarded.Severe.P() >= bare.Severe.P() {
		t.Errorf("guard severe rate %v not below baseline %v", guarded.Severe, bare.Severe)
	}
	if bare.Overhead != 0 || bare.FalsePositives.Count != 0 {
		t.Errorf("baseline must be free: %+v", bare)
	}
	if guarded.Overhead <= 0 {
		t.Errorf("guarded overhead = %v, want > 0", guarded.Overhead)
	}
	if guarded.FalsePositives.N == 0 {
		t.Error("false positives unmeasured for the guarded candidate")
	}
}

// TestTuneEvaluateOrderIndependent checks the per-candidate seeding
// contract: a candidate's measurements must not depend on what else is
// in the batch or where it sits.
func TestTuneEvaluateOrderIndependent(t *testing.T) {
	cfg := Config{Policy: PolicyRollback, RateLimit: 8}
	ev1 := NewEvaluator(17)
	solo, err := ev1.Evaluate(context.Background(), cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewEvaluator(17)
	batch, err := ev2.EvaluateAll(context.Background(), []Config{
		{Policy: PolicyNone},
		{Policy: PolicySaturate},
		cfg,
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo, batch[2]) {
		t.Errorf("candidate result depends on batch position:\nsolo  %+v\nbatch %+v", solo, batch[2])
	}
}

// TestTuneSearchDeterministic is the reproducibility acceptance
// criterion: with a fixed seed, two independent searches must produce
// identical Pareto fronts (indeed identical outcomes).
func TestTuneSearchDeterministic(t *testing.T) {
	a, err := Search(context.Background(), testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Front, b.Front) {
		t.Errorf("Pareto fronts differ across runs:\n%v\n%v", names(a.Front), names(b.Front))
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("outcomes differ across runs with a fixed seed")
	}
}

// TestTuneSearchRecommendationDominatesBaseline is the quality
// acceptance criterion: the recommended configuration must strictly
// beat unprotected Algorithm I on severe-failure rate while keeping
// the modelled runtime overhead within the configured budget.
func TestTuneSearchRecommendationDominatesBaseline(t *testing.T) {
	spec := testSpec()
	out, err := Search(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recommended == nil {
		t.Fatalf("no recommendation; front = %v", names(out.Front))
	}
	rec, base := *out.Recommended, out.Baseline
	if base.Config.Policy != PolicyNone {
		t.Fatalf("baseline is %+v, want the unprotected configuration", base.Config)
	}
	if rec.Severe.P() >= base.Severe.P() {
		t.Errorf("recommended severe rate %v does not strictly beat the baseline's %v",
			rec.Severe, base.Severe)
	}
	if rec.Overhead > spec.OverheadBudget {
		t.Errorf("recommended overhead %v exceeds the budget %v", rec.Overhead, spec.OverheadBudget)
	}
	if len(out.Front) == 0 || len(out.Results) == 0 {
		t.Error("search returned no results")
	}
	for _, r := range out.Front {
		for _, other := range out.Results {
			if Dominates(other, r) {
				t.Errorf("front member %s is dominated by %s", r.Name, other.Name)
			}
		}
	}
}

func TestTuneSearchProgressAndRounds(t *testing.T) {
	spec := testSpec()
	var calls int
	var lastDone, lastTotal int
	out, err := Search(context.Background(), spec, func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if lastDone != out.Evaluations || lastDone > lastTotal {
		t.Errorf("final progress %d/%d, evaluations %d", lastDone, lastTotal, out.Evaluations)
	}
	if len(out.Rounds) != spec.Rounds {
		t.Errorf("rounds = %d, want %d", len(out.Rounds), spec.Rounds)
	}
	if out.Rounds[1].Experiments != 2*spec.InitialExperiments {
		t.Errorf("round 1 experiments = %d, want doubled %d",
			out.Rounds[1].Experiments, 2*spec.InitialExperiments)
	}
}

func TestTuneSearchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, testSpec(), nil); err == nil {
		t.Error("cancelled search reported success")
	}
}

func TestResultsStoreRoundTrip(t *testing.T) {
	in := []Result{
		synthetic("a", 0.01, 0.1, 0.0, 0.4),
		{Name: "study-design", Experiments: 100,
			Severe: stats.Proportion{Count: 3, N: 100}},
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestReadResultsRejectsGarbage(t *testing.T) {
	if _, err := ReadResults(bytes.NewBufferString("{\"name\":\"ok\"}\nnot json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}
