package tune

import (
	"context"
	"strings"
	"testing"

	"ctrlguard/internal/detect"
	"ctrlguard/internal/workload"
)

// TestDetectorStudyParetoFront is the pinned end-to-end study from the
// issue: on Algorithm I/II and the MIMO variant under the PC/branch
// fault model, signature monitoring and behavior automata must appear
// on the tuner's Pareto front, with detection coverage and modeled
// overhead reported for every armed point.
func TestDetectorStudyParetoFront(t *testing.T) {
	if testing.Short() {
		t.Skip("full detector study in -short mode")
	}
	study, err := RunDetectorStudy(context.Background(), DetectorStudyConfig{
		Experiments: 150,
		Seed:        17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default space: 3 variants x pc model x 4 detector specs.
	if want := 12; len(study.Results) != want {
		t.Fatalf("%d results, want %d", len(study.Results), want)
	}

	for _, r := range study.Results {
		if r.Experiments != 150 {
			t.Errorf("%s: %d experiments, want 150", r.Name, r.Experiments)
		}
		if r.Detected.N == 0 {
			t.Errorf("%s: detection coverage not measured", r.Name)
		}
		armed := !strings.HasSuffix(r.Name, "/detect=none")
		if armed && r.Overhead <= 0 {
			t.Errorf("%s: armed detector reports no overhead", r.Name)
		}
		if !armed && r.Overhead != 0 {
			t.Errorf("%s: unarmed point reports %.3f overhead", r.Name, r.Overhead)
		}
		if armed && r.Detected.Count == 0 {
			t.Errorf("%s: armed detector point detected nothing", r.Name)
		}
	}

	// Both detector families must survive to the front somewhere in the
	// space — the paper-style result that in-loop detection is worth its
	// overhead under control-flow faults.
	var cfeOnFront, automatonOnFront bool
	for _, r := range study.Front {
		if strings.Contains(r.Name, "detect=cfe") {
			cfeOnFront = true
		}
		if strings.Contains(r.Name, "automaton") {
			automatonOnFront = true
		}
	}
	if !cfeOnFront {
		t.Error("no signature-monitoring point on the Pareto front")
	}
	if !automatonOnFront {
		t.Error("no behavior-automaton point on the Pareto front")
	}
}

// TestDetectorStudyDeterministic pins that the study is a pure function
// of its seed.
func TestDetectorStudyDeterministic(t *testing.T) {
	cfg := DetectorStudyConfig{
		Space: DetectorSpace{
			Variants:  []workload.Variant{workload.AlgorithmI},
			Detectors: []detect.Spec{{}, {CFE: true}},
		},
		Experiments: 60,
		Seed:        23,
	}
	a, err := RunDetectorStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDetectorStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Errorf("result %d differs across identical runs:\n%+v\n%+v",
				i, a.Results[i], b.Results[i])
		}
	}
}

// TestDetectorPointIDs pins the point naming the CLI and saved results
// key on.
func TestDetectorPointIDs(t *testing.T) {
	p := DetectorPoint{Variant: workload.AlgorithmI, Detector: detect.Spec{CFE: true, Automaton: true}}
	if got, want := p.ID(), "alg1/bitflip/detect=cfe+automaton"; got != want {
		t.Errorf("ID() = %q, want %q", got, want)
	}
	p = DetectorPoint{Variant: workload.AlgorithmII, Model: workload.ModelPC}
	if got, want := p.ID(), "alg2/pc/detect=none"; got != want {
		t.Errorf("ID() = %q, want %q", got, want)
	}
}
