package tune

import (
	"testing"

	"ctrlguard/internal/control"
)

// TestCampaignControllersAreCloneable guards the tuner's free ride on
// the warm-started variable campaigns: every controller shape the
// evaluator hands to goofi.RunVariableBatch — bare PI, and guards over
// static or learned assertions with and without rate limits — must
// support CloneStateful, or the campaigns silently fall back to full
// replay and Phase B loses its speedup.
func TestCampaignControllersAreCloneable(t *testing.T) {
	e := NewEvaluator(99)
	if err := e.prepare(); err != nil {
		t.Fatal(err)
	}
	configs := []Config{
		{Policy: PolicyNone},
		{Policy: PolicyRollback, Slack: 0.1},
		{Policy: PolicyRollback, Slack: 0.1, RateLimit: 8},
		{Policy: PolicyFreeze, Learned: true, Slack: 0.2},
		{Policy: PolicySaturate, Learned: true, Slack: 0.2, RateLimit: 5},
	}
	for _, c := range configs {
		factory, err := e.campaignFactory(c)
		if err != nil {
			t.Fatalf("%s: %v", c.ID(), err)
		}
		ctrl := factory()
		cl, ok := ctrl.(interface{ CloneStateful() any })
		if !ok {
			t.Errorf("%s: controller has no CloneStateful method", c.ID())
			continue
		}
		clone, ok := cl.CloneStateful().(control.Stateful)
		if !ok || clone == nil {
			t.Errorf("%s: controller declined to clone", c.ID())
			continue
		}
		// The clone must be independent: writes do not reach the
		// original.
		orig := ctrl.State()[0]
		clone.SetState([]float64{orig + 1e6})
		if ctrl.State()[0] != orig {
			t.Errorf("%s: clone shares state with the original", c.ID())
		}
	}
}
