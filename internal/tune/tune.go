// Package tune searches the protection design space opened by the
// guard framework. The paper evaluates one hand-picked design
// (Algorithm II); this package treats a protection configuration —
// assertion bound slack, rate-assertion threshold, learned-vs-static
// assertions, recovery policy — as a point in a parameterized space,
// measures each candidate with variable-level fault-injection
// campaigns plus a fault-free run (false positives and runtime
// overhead), and searches the space with a grid seeded successive-
// halving refinement. The output is a Pareto front over
// {severe-failure rate, value-failure rate, false-positive rate,
// runtime overhead} and a recommended dominant configuration under an
// overhead budget.
//
// Everything is deterministic for a fixed seed: candidate campaign
// seeds are derived from the configuration identity, fault-free
// metrics are exact, and the runtime overhead is an instruction-count
// cost model calibrated against the repo's simulated CPU rather than
// a wall clock — so two runs of the same search produce identical
// Pareto fronts.
package tune

import (
	"fmt"
	"sort"
)

// Policy names a guard recovery policy in the design space. PolicyNone
// selects the unprotected controller (the Algorithm I baseline every
// search keeps for comparison).
type Policy string

const (
	PolicyNone     Policy = "none"
	PolicyRollback Policy = "rollback"
	PolicyFreeze   Policy = "freeze"
	PolicySaturate Policy = "saturate"
)

// Policies lists the valid policy names.
func Policies() []Policy {
	return []Policy{PolicyNone, PolicyRollback, PolicyFreeze, PolicySaturate}
}

func (p Policy) valid() bool {
	switch p {
	case PolicyNone, PolicyRollback, PolicyFreeze, PolicySaturate:
		return true
	}
	return false
}

// Config is one point in the protection design space.
//
// The Slack and RateLimit parameters change meaning with Learned:
//
//   - Static assertions check the physical actuator range widened by
//     Slack (a fraction of the range width per side), and RateLimit is
//     an absolute per-sample output-unit bound (0 disables the rate
//     assertion).
//   - Learned assertions derive the envelope from a fault-free
//     reference run; Slack is the margin fraction passed to the bounds
//     learner and RateLimit is the safety factor applied to the worst
//     observed per-sample change (0 disables the rate assertion).
//
// Under PolicySaturate a configuration with a rate assertion falls
// back to rollback recovery whenever the violation is not saturable
// (the guard only saturates pure range assertions); such points are
// still legal — they simply measure like hybrids.
type Config struct {
	Policy    Policy  `json:"policy,omitempty"`
	Learned   bool    `json:"learned,omitempty"`
	Slack     float64 `json:"slack,omitempty"`
	RateLimit float64 `json:"rateLimit,omitempty"`
}

// ID returns the configuration's canonical identity, used for
// deterministic per-candidate seeding, deduplication, and display.
func (c Config) ID() string {
	if c.Policy == PolicyNone {
		return string(PolicyNone)
	}
	kind := "static"
	if c.Learned {
		kind = "learned"
	}
	return fmt.Sprintf("%s/%s/slack=%g/rate=%g", c.Policy, kind, c.Slack, c.RateLimit)
}

// Validate reports whether the configuration is a legal design point.
func (c Config) Validate() error {
	if !c.Policy.valid() {
		return fmt.Errorf("tune: unknown policy %q (want one of %v)", c.Policy, Policies())
	}
	if c.Slack < 0 {
		return fmt.Errorf("tune: slack must be non-negative, got %g", c.Slack)
	}
	if c.RateLimit < 0 {
		return fmt.Errorf("tune: rate limit must be non-negative, got %g", c.RateLimit)
	}
	return nil
}

// normalize collapses the assertion parameters of the unprotected
// configuration so every PolicyNone point shares one identity.
func (c Config) normalize() Config {
	if c.Policy == PolicyNone {
		return Config{Policy: PolicyNone}
	}
	return c
}

// Space is the parameter grid the search enumerates: the cross product
// of policies, learned-vs-static, bound slacks, and rate limits.
// PolicyNone contributes a single baseline candidate regardless of the
// other axes.
type Space struct {
	Policies   []Policy  `json:"policies,omitempty"`
	Learned    []bool    `json:"learned,omitempty"`
	Slacks     []float64 `json:"slacks,omitempty"`
	RateLimits []float64 `json:"rateLimits,omitempty"`
}

// DefaultSpace returns the stock grid: every recovery policy, static
// and learned assertions, three slacks and three rate limits — 54
// protected candidates plus the unprotected baseline.
func DefaultSpace() Space {
	return Space{
		Policies:   []Policy{PolicyNone, PolicyRollback, PolicyFreeze, PolicySaturate},
		Learned:    []bool{false, true},
		Slacks:     []float64{0, 0.1, 0.25},
		RateLimits: []float64{0, 3, 8},
	}
}

// withDefaults fills empty axes from DefaultSpace.
func (s Space) withDefaults() Space {
	def := DefaultSpace()
	if len(s.Policies) == 0 {
		s.Policies = def.Policies
	}
	if len(s.Learned) == 0 {
		s.Learned = def.Learned
	}
	if len(s.Slacks) == 0 {
		s.Slacks = def.Slacks
	}
	if len(s.RateLimits) == 0 {
		s.RateLimits = def.RateLimits
	}
	return s
}

// Validate checks every axis value.
func (s Space) Validate() error {
	for _, p := range s.Policies {
		if !p.valid() {
			return fmt.Errorf("tune: unknown policy %q (want one of %v)", p, Policies())
		}
	}
	for _, sl := range s.Slacks {
		if sl < 0 {
			return fmt.Errorf("tune: slack must be non-negative, got %g", sl)
		}
	}
	for _, r := range s.RateLimits {
		if r < 0 {
			return fmt.Errorf("tune: rate limit must be non-negative, got %g", r)
		}
	}
	return nil
}

// Candidates enumerates the grid in a fixed order, deduplicated by
// configuration identity. The unprotected baseline, when present, is
// always first.
func (s Space) Candidates() []Config {
	var out []Config
	seen := make(map[string]bool)
	add := func(c Config) {
		c = c.normalize()
		if id := c.ID(); !seen[id] {
			seen[id] = true
			out = append(out, c)
		}
	}
	for _, p := range s.Policies {
		if p == PolicyNone {
			add(Config{Policy: PolicyNone})
		}
	}
	for _, p := range s.Policies {
		if p == PolicyNone {
			continue
		}
		for _, learned := range s.Learned {
			for _, slack := range s.Slacks {
				for _, rate := range s.RateLimits {
					add(Config{Policy: p, Learned: learned, Slack: slack, RateLimit: rate})
				}
			}
		}
	}
	return out
}

// sortResults orders results deterministically: best severe rate
// first, then value-failure rate, false positives, overhead, and
// finally identity as the total tie-break.
func sortResults(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if ap, bp := a.Severe.P(), b.Severe.P(); ap != bp {
			return ap < bp
		}
		if ap, bp := a.ValueFailures.P(), b.ValueFailures.P(); ap != bp {
			return ap < bp
		}
		if ap, bp := a.FalsePositives.P(), b.FalsePositives.P(); ap != bp {
			return ap < bp
		}
		if a.Overhead != b.Overhead {
			return a.Overhead < b.Overhead
		}
		return a.Config.ID() < b.Config.ID()
	})
}
