package tune

import (
	"context"
	"fmt"
)

// Spec is the external, serialisable description of a tuning job,
// shared by cmd/guardtune's flag parsing and ctrlguardd's JSON API —
// the same pattern goofi.CampaignSpec follows for campaigns.
type Spec struct {
	// Space is the parameter grid (empty axes default to
	// DefaultSpace's).
	Space Space `json:"space"`

	// Seed drives every campaign of the search.
	Seed uint64 `json:"seed"`

	// InitialExperiments is the round-0 campaign size per candidate
	// (default 250); it doubles each refinement round.
	InitialExperiments int `json:"initialExperiments,omitempty"`

	// Rounds is the number of successive-halving rounds (default 3):
	// each round evaluates the survivors, then halves the field and
	// doubles the campaign size.
	Rounds int `json:"rounds,omitempty"`

	// Workers bounds the evaluation worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// OverheadBudget caps the modelled runtime overhead a recommended
	// configuration may cost (default 1.0 — at most doubling the bare
	// control iteration).
	OverheadBudget float64 `json:"overheadBudget,omitempty"`

	// Iterations is the closed-loop run length (0 = the paper's 650).
	Iterations int `json:"iterations,omitempty"`
}

// withDefaults fills the spec's zero fields.
func (s Spec) withDefaults() Spec {
	s.Space = s.Space.withDefaults()
	if s.InitialExperiments == 0 {
		s.InitialExperiments = 250
	}
	if s.Rounds == 0 {
		s.Rounds = 3
	}
	if s.OverheadBudget == 0 {
		s.OverheadBudget = 1.0
	}
	return s
}

// Validate checks the spec after defaulting, mirroring what Search
// will reject — front ends validate requests identically.
func (s Spec) Validate() error {
	d := s.withDefaults()
	if err := d.Space.Validate(); err != nil {
		return err
	}
	if s.InitialExperiments < 0 {
		return fmt.Errorf("tune: initial experiments must be positive, got %d", s.InitialExperiments)
	}
	if d.Rounds < 1 || d.Rounds > 12 {
		return fmt.Errorf("tune: rounds must be in [1, 12], got %d", d.Rounds)
	}
	if d.Workers < 0 {
		return fmt.Errorf("tune: workers must be non-negative, got %d", d.Workers)
	}
	if d.OverheadBudget < 0 {
		return fmt.Errorf("tune: overhead budget must be non-negative, got %g", d.OverheadBudget)
	}
	if d.Iterations < 0 {
		return fmt.Errorf("tune: iterations must be non-negative, got %d", d.Iterations)
	}
	if len(d.candidates()) < 2 {
		return fmt.Errorf("tune: the space holds %d candidate(s); need at least the baseline and one protected design", len(d.candidates()))
	}
	return nil
}

// candidates enumerates the grid with the unprotected baseline
// guaranteed present — every search measures Algorithm I so the
// recommendation can be judged against it.
func (s Spec) candidates() []Config {
	cands := s.Space.Candidates()
	for _, c := range cands {
		if c.Policy == PolicyNone {
			return cands
		}
	}
	return append([]Config{{Policy: PolicyNone}}, cands...)
}

// PlannedEvaluations returns an upper bound on candidate evaluations
// across all rounds (confidence-interval pruning may discard more
// than half a field, never less), for progress reporting.
func (s Spec) PlannedEvaluations() int {
	d := s.withDefaults()
	c := len(d.candidates())
	total := 0
	for r := 0; r < d.Rounds; r++ {
		total += c
		c = keepCount(c)
	}
	return total
}

// keepCount is the successive-halving survivor count for a field of n:
// the baseline plus half the protected candidates, never below the
// baseline plus two (a front needs diversity to be worth refining).
func keepCount(n int) int {
	keep := 1 + (n-1+1)/2 // baseline + ceil((n-1)/2)
	if min := 3; keep < min {
		keep = min
	}
	if keep > n {
		keep = n
	}
	return keep
}

// RoundSummary records one refinement round.
type RoundSummary struct {
	Round       int      `json:"round"`
	Experiments int      `json:"experiments"` // campaign size per candidate
	Candidates  int      `json:"candidates"`  // field size this round
	Pruned      []string `json:"pruned,omitempty"`
}

// Outcome is a finished search.
type Outcome struct {
	Spec        Spec           `json:"spec"`
	Candidates  int            `json:"candidates"`  // round-0 field size
	Evaluations int            `json:"evaluations"` // candidate evaluations performed
	Experiments int            `json:"experiments"` // fault injections performed
	Rounds      []RoundSummary `json:"rounds"`

	// Baseline is the unprotected Algorithm I measurement from the
	// final round — the yardstick for every recommendation.
	Baseline Result `json:"baseline"`

	// Results holds the final round's evaluations, best first.
	Results []Result `json:"results"`

	// Front is the Pareto-optimal subset of Results over
	// {severe, value failures, false positives, overhead}.
	Front []Result `json:"front"`

	// Recommended is the front member with the lowest severe-failure
	// rate whose overhead fits the budget, or nil when nothing does.
	Recommended *Result `json:"recommended,omitempty"`
}

// Progress reports search progress: done counts candidate evaluations
// finished, total is Spec.PlannedEvaluations' upper bound.
type Progress func(done, total int)

// Search runs the design-space search: a grid pass over the space,
// then successive-halving refinement — each round evaluates every
// surviving candidate (fault-free run + fault-injection campaign over
// a shared worker pool), prunes the field, and doubles the campaign
// size, so measurement effort concentrates on the designs still in
// contention. The final round's results yield the Pareto front and a
// recommendation under the overhead budget.
//
// For a fixed spec the outcome is deterministic: candidate campaign
// seeds derive from configuration identity, pruning uses fixed
// tie-breaks, and no wall clock enters any metric.
func Search(ctx context.Context, spec Spec, progress Progress) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	spec = spec.withDefaults()

	ev := &Evaluator{Seed: spec.Seed, Workers: spec.Workers, Iterations: spec.Iterations}
	survivors := spec.candidates()
	out := &Outcome{Spec: spec, Candidates: len(survivors)}
	total := spec.PlannedEvaluations()
	report := func() {
		if progress != nil {
			progress(out.Evaluations, total)
		}
	}
	report()

	n := spec.InitialExperiments
	var results []Result
	for round := 0; round < spec.Rounds; round++ {
		var err error
		results, err = ev.EvaluateAll(ctx, survivors, n)
		if err != nil {
			return nil, err
		}
		out.Evaluations += len(survivors)
		out.Experiments += len(survivors) * n
		summary := RoundSummary{Round: round, Experiments: n, Candidates: len(survivors)}
		report()

		if round < spec.Rounds-1 {
			var pruned []string
			survivors, pruned = halve(results)
			summary.Pruned = pruned
			n *= 2
		}
		out.Rounds = append(out.Rounds, summary)
	}

	sortResults(results)
	out.Results = results
	out.Front = ParetoFront(results)
	for _, r := range results {
		if r.Config.Policy == PolicyNone {
			out.Baseline = r
			break
		}
	}
	out.Recommended = recommend(out.Front, spec.OverheadBudget)
	return out, nil
}

// halve selects the next round's survivors: first drop every
// candidate another one confidently dominates (interval-separated, so
// noise cannot prune a contender), then — if the field is still too
// large — rank the protected candidates and keep the top half. The
// unprotected baseline always survives as the comparison anchor.
// Returns the survivors' configurations in stable order and the
// pruned IDs.
func halve(results []Result) (survivors []Config, pruned []string) {
	alive := make([]Result, 0, len(results))
	for i, r := range results {
		if r.Config.Policy == PolicyNone {
			alive = append(alive, r)
			continue
		}
		confidentlyOut := false
		for j, other := range results {
			if i != j && ConfidentlyDominates(other, r) {
				confidentlyOut = true
				break
			}
		}
		if confidentlyOut {
			pruned = append(pruned, r.Config.ID())
		} else {
			alive = append(alive, r)
		}
	}

	keep := keepCount(len(results))
	if len(alive) > keep {
		ranked := append([]Result(nil), alive...)
		sortResults(ranked)
		kept := make(map[string]bool, keep)
		kept[Config{Policy: PolicyNone}.ID()] = true
		for _, r := range ranked {
			if len(kept) >= keep {
				break
			}
			kept[r.Config.ID()] = true
		}
		trimmed := alive[:0]
		for _, r := range alive {
			if kept[r.Config.ID()] {
				trimmed = append(trimmed, r)
			} else {
				pruned = append(pruned, r.Config.ID())
			}
		}
		alive = trimmed
	}

	survivors = make([]Config, len(alive))
	for i, r := range alive {
		survivors[i] = r.Config
	}
	return survivors, pruned
}

// recommend picks the front member with the lowest severe-failure
// rate whose modelled overhead fits the budget; ties fall to the
// sortResults order. Returns nil when no front member fits.
func recommend(front []Result, budget float64) *Result {
	ranked := append([]Result(nil), front...)
	sortResults(ranked)
	for _, r := range ranked {
		if r.Overhead <= budget {
			out := r
			return &out
		}
	}
	return nil
}
