package tune

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"

	"ctrlguard/internal/detect"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/workload"
)

// Detector design space: beyond the guard parameters the variable-level
// tuner searches, the CPU-level campaigns open a second space — which
// in-loop detector families (control-flow signature monitoring, mined
// behavior automata) to arm against which fault model. A detector study
// measures every (variant, model, detector) point with a CPU-level
// GOOFI campaign and reports the same Result schema the tuner uses, so
// detection coverage, residual failure rates, detector noise, and
// modeled overhead feed the same Pareto machinery.

// DetectorPoint is one point of the detector design space.
type DetectorPoint struct {
	Variant  workload.Variant  `json:"variant"`
	Model    inject.FaultModel `json:"model"`
	Detector detect.Spec       `json:"detector"`
}

// ID returns the point's canonical identity, used for deterministic
// seeding and display.
func (p DetectorPoint) ID() string {
	return fmt.Sprintf("%s/%s/detect=%s", p.Variant, p.Model.Canonical(), p.Detector)
}

// DetectorSpace enumerates the detector design grid.
type DetectorSpace struct {
	Variants  []workload.Variant  `json:"variants,omitempty"`
	Models    []inject.FaultModel `json:"models,omitempty"`
	Detectors []detect.Spec       `json:"detectors,omitempty"`
}

// DefaultDetectorSpace returns the stock grid: the paper's two
// algorithms and the MIMO baseline under the control-flow (pc) fault
// model, with every detector combination including the undetected
// baseline.
func DefaultDetectorSpace() DetectorSpace {
	return DetectorSpace{
		Variants: []workload.Variant{
			workload.AlgorithmI,
			workload.AlgorithmII,
			workload.MIMOAlgorithmI,
		},
		Models: []inject.FaultModel{inject.ModelPC},
		Detectors: []detect.Spec{
			{},
			{CFE: true},
			{Automaton: true},
			{CFE: true, Automaton: true},
		},
	}
}

// withDefaults fills empty axes from DefaultDetectorSpace.
func (s DetectorSpace) withDefaults() DetectorSpace {
	def := DefaultDetectorSpace()
	if len(s.Variants) == 0 {
		s.Variants = def.Variants
	}
	if len(s.Models) == 0 {
		s.Models = def.Models
	}
	if len(s.Detectors) == 0 {
		s.Detectors = def.Detectors
	}
	return s
}

// Points enumerates the grid in a fixed order.
func (s DetectorSpace) Points() []DetectorPoint {
	var out []DetectorPoint
	for _, v := range s.Variants {
		for _, m := range s.Models {
			for _, d := range s.Detectors {
				out = append(out, DetectorPoint{Variant: v, Model: m, Detector: d})
			}
		}
	}
	return out
}

// DetectorStudyConfig configures a detector study.
type DetectorStudyConfig struct {
	// Space is the grid to measure (empty axes default to
	// DefaultDetectorSpace).
	Space DetectorSpace

	// Experiments is the campaign size per point.
	Experiments int

	// Seed drives every campaign; point seeds are derived from it and
	// the point identity, so results do not depend on evaluation order.
	Seed uint64

	// Workers bounds per-campaign parallelism (0 = GOMAXPROCS).
	Workers int
}

// DetectorStudy is the measured detector design space.
type DetectorStudy struct {
	// Points and Results align by index, in Space.Points order.
	Points  []DetectorPoint `json:"points"`
	Results []Result        `json:"results"`

	// Front is the Pareto-optimal subset of Results (point-wise, over
	// severe rate, value-failure rate, false-positive rate and
	// overhead).
	Front []Result `json:"front"`
}

// pointSeed derives a campaign seed from the study seed and the point
// identity, mirroring Evaluator.candidateSeed.
func pointSeed(seed uint64, p DetectorPoint) uint64 {
	h := fnv.New64a()
	io.WriteString(h, p.ID())
	return h.Sum64() ^ (seed*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019)
}

// RunDetectorStudy measures every point of the detector design space
// with a CPU-level fault-injection campaign and returns the results
// with their Pareto front. Deterministic for a fixed configuration.
func RunDetectorStudy(ctx context.Context, cfg DetectorStudyConfig) (*DetectorStudy, error) {
	if cfg.Experiments <= 0 {
		return nil, fmt.Errorf("tune: detector study needs a positive campaign size, got %d", cfg.Experiments)
	}
	space := cfg.Space.withDefaults()
	points := space.Points()
	study := &DetectorStudy{Points: points}
	for _, p := range points {
		out, err := goofi.RunContext(ctx, goofi.Config{
			Variant:     p.Variant,
			Experiments: cfg.Experiments,
			Seed:        pointSeed(cfg.Seed, p),
			Workers:     cfg.Workers,
			Model:       p.Model,
			Detect:      p.Detector,
		})
		if err != nil {
			return nil, fmt.Errorf("tune: detector point %s: %w", p.ID(), err)
		}
		study.Results = append(study.Results, detectorResult(p, out))
	}
	study.Front = ParetoFront(study.Results)
	return study, nil
}

// detectorResult condenses one campaign into the tuner's Result schema.
func detectorResult(p DetectorPoint, out *goofi.Result) Result {
	c := goofi.Analyze(out.Records).Total
	r := Result{
		Name:          p.ID(),
		Experiments:   len(out.Records),
		Detected:      goofi.DetectedProportion(c),
		ValueFailures: goofi.ValueFailureProportion(c),
		Severe:        goofi.SevereProportion(c),
	}
	// Detector noise and cost come from the campaign's monitored golden
	// run; an unarmed point has exact zeros over the same denominator.
	iters := len(out.Golden.Outputs)
	r.FalsePositives = stats.Proportion{Count: 0, N: iters}
	if out.Detect != nil {
		r.FalsePositives.Count = out.Detect.FalsePositives
		r.Overhead = out.Detect.Overhead
	}
	return r
}
