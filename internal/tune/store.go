package tune

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ctrlguard/internal/fsatomic"
)

// Tuning results persist as JSON lines, one configuration per line —
// the same dependency-free store the campaign records use, so study
// and tuner outputs are uniformly greppable and joinable.

// WriteResults streams results to w as JSON lines.
func WriteResults(w io.Writer, rs []Result) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range rs {
		if err := enc.Encode(&rs[i]); err != nil {
			return fmt.Errorf("tune: encode result %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadResults parses JSON-lines results from r.
func ReadResults(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var res Result
		if err := json.Unmarshal(b, &res); err != nil {
			return nil, fmt.Errorf("tune: decode result on line %d: %w", line, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tune: read results: %w", err)
	}
	return out, nil
}

// SaveResults writes results to path via write-temp/fsync/rename, so a
// crash mid-save can never leave a torn result file behind.
func SaveResults(path string, rs []Result) error {
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		return WriteResults(w, rs)
	})
}

// LoadResults reads results from path.
func LoadResults(path string) ([]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tune: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadResults(f)
}
