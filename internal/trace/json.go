package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// A flipped exponent bit can turn a stored controller value into ±Inf
// or NaN (a value in [1,2) has exponent 0x3ff; flipping bit 62 makes it
// 0x7ff). encoding/json refuses to marshal those, so Iteration encodes
// its floats through jsonFloat, which renders non-finite values as the
// quoted strings "NaN", "+Inf" and "-Inf" and accepts them back.

type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`:
		*f = jsonFloat(math.NaN())
		return nil
	case `"+Inf"`, `"Inf"`:
		*f = jsonFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("trace: bad float %q: %w", b, err)
	}
	*f = jsonFloat(v)
	return nil
}

// iterationJSON is the wire shape of Iteration.
type iterationJSON struct {
	K              int       `json:"k"`
	X              jsonFloat `json:"x"`
	XGolden        jsonFloat `json:"xGolden"`
	Backup         jsonFloat `json:"backup"`
	Output         jsonFloat `json:"output"`
	GoldenOutput   jsonFloat `json:"goldenOutput"`
	RegsTouched    uint32    `json:"regsTouched"`
	CacheTouched   uint32    `json:"cacheTouched"`
	RegDivergent   uint32    `json:"regDivergent"`
	CacheDivergent uint32    `json:"cacheDivergent"`
	Events         uint8     `json:"events"`
}

// MarshalJSON implements json.Marshaler (see jsonFloat).
func (it Iteration) MarshalJSON() ([]byte, error) {
	return json.Marshal(iterationJSON{
		K:              it.K,
		X:              jsonFloat(it.X),
		XGolden:        jsonFloat(it.XGolden),
		Backup:         jsonFloat(it.Backup),
		Output:         jsonFloat(it.Output),
		GoldenOutput:   jsonFloat(it.GoldenOutput),
		RegsTouched:    it.RegsTouched,
		CacheTouched:   it.CacheTouched,
		RegDivergent:   it.RegDivergent,
		CacheDivergent: it.CacheDivergent,
		Events:         it.Events,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (it *Iteration) UnmarshalJSON(b []byte) error {
	var j iterationJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*it = Iteration{
		K:              j.K,
		X:              float64(j.X),
		XGolden:        float64(j.XGolden),
		Backup:         float64(j.Backup),
		Output:         float64(j.Output),
		GoldenOutput:   float64(j.GoldenOutput),
		RegsTouched:    j.RegsTouched,
		CacheTouched:   j.CacheTouched,
		RegDivergent:   j.RegDivergent,
		CacheDivergent: j.CacheDivergent,
		Events:         j.Events,
	}
	return nil
}
