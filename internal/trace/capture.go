package trace

import (
	"context"
	"fmt"
	"math"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// Capture runs one experiment in forensic detail mode: the reference
// execution and the faulty execution are both traced instruction by
// instruction, and the result is reduced to per-iteration snapshots
// from the injection iteration to the end of the run. Capture is
// deterministic: the same (variant, spec, injection) always yields an
// identical Trace, so a campaign record can be replayed after the fact
// from nothing but its seed and ID (see goofi.TraceExperiment).
//
// A detail-mode run is orders of magnitude slower than a campaign
// experiment; ctx cancellation is honoured at iteration boundaries.
// ccfg's zero value means the paper's classification thresholds.
func Capture(ctx context.Context, variant workload.Variant, spec workload.RunSpec, inj workload.Injection, ccfg classify.Config) (*Trace, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Iterations == 0 {
		spec = workload.SpecFor(variant)
	}
	if ccfg == (classify.Config{}) {
		ccfg = classify.DefaultConfig()
	}
	prog := workload.Program(variant)
	abort := func() bool { return ctx.Err() != nil }

	goldenCol := newCollector(prog)
	goldenSpec := spec
	goldenSpec.Injection = nil
	goldenSpec.Observer = goldenCol.observe
	goldenSpec.Abort = abort
	golden := workload.Run(prog, goldenSpec)
	if golden.Aborted {
		return nil, fmt.Errorf("trace: capture cancelled: %w", ctx.Err())
	}
	if golden.Detected() {
		return nil, fmt.Errorf("trace: reference execution trapped: %v", golden.Trap)
	}
	goldenCol.flush()

	faultyCol := newCollector(prog)
	faultyCol.ref = goldenCol
	faultyCol.injectAt, faultyCol.hasInject = inj.At, true
	faultySpec := spec
	faultySpec.Injection = &inj
	faultySpec.Observer = faultyCol.observe
	faultySpec.Abort = abort
	faulty := workload.Run(prog, faultySpec)
	if faulty.Aborted {
		return nil, fmt.Errorf("trace: capture cancelled: %w", ctx.Err())
	}
	faultyCol.flush()

	var verdict classify.Verdict
	if faulty.Detected() {
		verdict = classify.DetectedVerdict(string(faulty.Trap.Mech))
	} else {
		verdict = classify.RunMulti(golden.MultiOutputs, faulty.MultiOutputs,
			!cpu.StatesEqual(golden.FinalState, faulty.FinalState), ccfg)
	}

	injIter := 0
	for k, start := range golden.IterationStarts {
		if inj.At >= start {
			injIter = k
		}
	}

	h := Header{
		Variant:    string(variant),
		Experiment: -1,
		Injection: Injection{
			Region:  string(inj.Bit.Region),
			Element: inj.Bit.Element,
			Bit:     inj.Bit.Bit,
			At:      inj.At,
		},
		InjectionIteration:  injIter,
		Iterations:          spec.Iterations,
		Outcome:             verdict.Outcome.String(),
		Mechanism:           verdict.Mechanism,
		FirstArchDivergence: faultyCol.firstArchDiv,
		TrapIteration:       -1,
		HasState:            faultyCol.hasState,
		HasBackup:           faultyCol.hasBackup,
	}
	if faulty.Detected() {
		h.TrapIteration = faulty.TrapIteration
	}

	t := &Trace{Header: h}
	lastK := len(faultyCol.xEnd) - 1
	for k := injIter; k <= lastK; k++ {
		it := Iteration{
			K:              k,
			X:              math.Float64frombits(faultyCol.xEnd[k]),
			XGolden:        math.Float64frombits(goldenCol.xEnd[k]),
			Backup:         math.Float64frombits(faultyCol.backupEnd[k]),
			RegsTouched:    faultyCol.regsTouched[k],
			CacheTouched:   faultyCol.cacheTouched[k],
			RegDivergent:   faultyCol.regDiv[k],
			CacheDivergent: faultyCol.cacheDiv[k],
			Events:         faultyCol.events[k],
		}
		if k < len(faulty.Outputs) && k < len(golden.Outputs) {
			it.Output, it.GoldenOutput = faulty.Outputs[k], golden.Outputs[k]
		} else {
			// The run trapped during this iteration: no output was
			// delivered.
			it.Events |= EventTrapped
		}
		t.Iterations = append(t.Iterations, it)
	}
	return t, nil
}

// collector accumulates the per-instruction observations of one traced
// run into per-iteration records. A collector without ref is a
// reference pass recording state signatures; with ref set it is the
// faulty pass, comparing against those signatures on the fly.
type collector struct {
	xAddr, xoldAddr     uint32
	hasState, hasBackup bool
	recLabels           map[uint32]uint8
	injectAt            uint64
	hasInject           bool

	ref *collector

	// Per-instruction state signatures (reference pass only).
	regHash, cacheHash []uint64

	// Running state.
	started            bool
	lastK              int
	instrIndex         int
	prevRegs           [16]uint32
	prevCache          []uint32
	curCache           []uint32
	curX, curBackup    uint64
	firstArchDiv       int64
	accRegs, accCache  uint32
	accRegD, accCacheD uint32
	accEvents          uint8

	// Per-iteration results, indexed by iteration.
	xEnd, backupEnd           []uint64
	regsTouched, cacheTouched []uint32
	regDiv, cacheDiv          []uint32
	events                    []uint8
}

// stateLabels and backupLabels name the data words tracked as "the
// controller state" and "its recovery backup" across the workload
// variants (the SISO variants use x/xold, the MIMO variants x1/x1old;
// for MIMO the first shaft's integrator stands for the state).
var (
	stateLabels  = []string{"x", "x1"}
	backupLabels = []string{"xold", "x1old"}
)

// recoveryLabels maps the code labels of the assertion-failure blocks
// to the event they signify. The fail-stop variants use dead/dead2 for
// the same two assertions.
var recoveryLabels = map[string]uint8{
	"recx":  EventStateAssertFailed,
	"dead":  EventStateAssertFailed,
	"recu":  EventOutputAssertFailed,
	"dead2": EventOutputAssertFailed,
}

func newCollector(prog *cpu.Program) *collector {
	c := &collector{
		lastK:        -1,
		firstArchDiv: -1,
		recLabels:    make(map[uint32]uint8),
		prevCache:    make([]uint32, 0, cpu.CacheTotalWords),
		curCache:     make([]uint32, 0, cpu.CacheTotalWords),
	}
	for _, l := range stateLabels {
		if a, ok := prog.DataAddr(l); ok {
			c.xAddr, c.hasState = a, true
			break
		}
	}
	for _, l := range backupLabels {
		if a, ok := prog.DataAddr(l); ok {
			c.xoldAddr, c.hasBackup = a, true
			break
		}
	}
	for name, bit := range recoveryLabels {
		if a, ok := prog.CodeLabels[name]; ok {
			c.recLabels[a] = bit
		}
	}
	return c
}

// observe is the workload.RunSpec.Observer hook: called before every
// instruction with the machine state the previous instruction left
// behind. State deltas are therefore attributed to the iteration that
// executed the writing instruction, and the snapshot flushed at an
// iteration boundary is the end-of-iteration state.
func (c *collector) observe(k int, instr uint64, vm *cpu.CPU) {
	if !c.started {
		c.started = true
		c.lastK = k
		c.prevRegs = vm.Regs
		c.prevCache = vm.Cache.SnapshotWords(c.prevCache)
	} else {
		for r := 1; r < 16; r++ {
			if vm.Regs[r] != c.prevRegs[r] {
				c.accRegs |= 1 << uint(r)
			}
		}
		c.prevRegs = vm.Regs
		c.curCache = vm.Cache.SnapshotWords(c.curCache)
		for i, w := range c.curCache {
			if w != c.prevCache[i] {
				c.accCache |= 1 << uint(i)
			}
		}
		c.prevCache, c.curCache = c.curCache, c.prevCache
	}

	if c.ref != nil {
		i := c.instrIndex
		regDiff := i < len(c.ref.regHash) && vm.RegisterHash() != c.ref.regHash[i]
		cacheDiff := i < len(c.ref.cacheHash) && vm.CacheHash() != c.ref.cacheHash[i]
		if regDiff {
			c.accRegD++
		}
		if cacheDiff {
			c.accCacheD++
		}
		if (regDiff || cacheDiff) && c.firstArchDiv < 0 {
			c.firstArchDiv = int64(instr)
		}
	} else {
		c.regHash = append(c.regHash, vm.RegisterHash())
		c.cacheHash = append(c.cacheHash, vm.CacheHash())
	}
	c.instrIndex++

	if c.hasState {
		c.curX = vm.PeekDoubleBits(c.xAddr)
	}
	if c.hasBackup {
		c.curBackup = vm.PeekDoubleBits(c.xoldAddr)
	}

	if k != c.lastK {
		c.flush()
		c.lastK = k
	}

	// Events observed at this PC belong to the iteration about to
	// execute (recovery-block entries, the injection itself).
	if bit, ok := c.recLabels[vm.PC]; ok {
		c.accEvents |= bit
	}
	if c.hasInject && instr == c.injectAt {
		c.accEvents |= EventInjected
	}
}

// flush closes the current iteration's accumulators into the
// per-iteration arrays. Capture calls it once more after the run ends
// to record the final (or trapped) iteration.
func (c *collector) flush() {
	if !c.started {
		return
	}
	c.xEnd = append(c.xEnd, c.curX)
	c.backupEnd = append(c.backupEnd, c.curBackup)
	c.regsTouched = append(c.regsTouched, c.accRegs)
	c.cacheTouched = append(c.cacheTouched, c.accCache)
	c.regDiv = append(c.regDiv, c.accRegD)
	c.cacheDiv = append(c.cacheDiv, c.accCacheD)
	c.events = append(c.events, c.accEvents)
	c.accRegs, c.accCache, c.accRegD, c.accCacheD, c.accEvents = 0, 0, 0, 0, 0
}
