package trace

import (
	"fmt"
	"math"

	"ctrlguard/internal/viz"
)

// TimelineSVG renders t's propagation timeline: the state error and
// output deviation per iteration (each normalised to its own peak, so
// a million-degree runaway and a tenth-of-a-degree wobble both show
// their shape), with the causal chain's links as event marks.
func TimelineSVG(t *Trace, c *Chain) string {
	if c == nil {
		c = Analyze(t, 0)
	}
	n := len(t.Iterations)
	stateErr := make([]float64, n)
	outDev := make([]float64, n)
	diverging := make([]float64, n)
	for i, it := range t.Iterations {
		stateErr[i] = it.StateError()
		if it.Events&EventTrapped != 0 {
			outDev[i] = math.NaN()
		} else {
			outDev[i] = it.Deviation()
		}
		diverging[i] = float64(it.RegDivergent + it.CacheDivergent)
	}

	series := []viz.TimelineSeries{
		{Name: peakName("|Δoutput|", outDev), Color: "#c0392b", Values: outDev},
		{Name: peakName("divergent instructions", diverging), Color: "#999999", Values: diverging},
	}
	if t.Header.HasState {
		series = append([]viz.TimelineSeries{
			{Name: peakName("|Δx| state error", stateErr), Color: "#2d6cdf", Values: stateErr},
		}, series...)
	}

	var marks []viz.TimelineMark
	for _, l := range c.Links {
		color := "#555"
		switch l.Kind {
		case "injected":
			color = "#8e44ad"
		case "assert-state", "assert-output", "recovered":
			color = "#1e8449"
		case "trapped":
			color = "#b03a2e"
		case "end":
			continue
		}
		marks = append(marks, viz.TimelineMark{K: l.K, Label: l.Kind, Color: color})
	}

	tl := viz.Timeline{
		Title: fmt.Sprintf("%s: %s → %s", t.Header.Variant,
			t.Header.Injection.String(), t.Header.Outcome),
		XLabel:    "control iteration",
		StartK:    startK(t),
		Normalize: true,
	}
	return tl.Render(series, marks)
}

func startK(t *Trace) int {
	if len(t.Iterations) > 0 {
		return t.Iterations[0].K
	}
	return t.Header.InjectionIteration
}

// peakName annotates a legend entry with the series' peak, which the
// normalised axis no longer shows.
func peakName(name string, vals []float64) string {
	peak := 0.0
	for _, v := range vals {
		if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) > peak {
			peak = math.Abs(v)
		}
	}
	return fmt.Sprintf("%s (peak %.3g)", name, peak)
}
