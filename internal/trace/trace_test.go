package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// fig7Injection returns the paper's Figure 7 fault for a variant: bit
// 28 of the cached state variable's high word, flipped early in
// control iteration 300.
func fig7Injection(t *testing.T, v workload.Variant) workload.Injection {
	t.Helper()
	golden := workload.Run(workload.Program(v), workload.PaperRunSpec())
	if golden.Detected() {
		t.Fatalf("golden run trapped: %v", golden.Trap)
	}
	return workload.Injection{
		At:  golden.IterationStarts[300] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 28},
	}
}

func captureFig7(t *testing.T, v workload.Variant) *Trace {
	t.Helper()
	tr, err := Capture(context.Background(), v, workload.PaperRunSpec(),
		fig7Injection(t, v), classify.Config{})
	if err != nil {
		t.Fatalf("Capture(%s): %v", v, err)
	}
	return tr
}

// TestSevereFaultAlg1VsAlg2 is the subsystem's acceptance test: the
// same cached-state fault propagates for the rest of the run under
// Algorithm I but is cut short by best effort recovery under
// Algorithm II.
func TestSevereFaultAlg1VsAlg2(t *testing.T) {
	tr1 := captureFig7(t, workload.AlgorithmI)
	tr2 := captureFig7(t, workload.AlgorithmII)

	if tr1.Header.InjectionIteration != 300 {
		t.Errorf("alg1 injection iteration = %d, want 300", tr1.Header.InjectionIteration)
	}
	if tr1.Header.Outcome != "uwr-permanent" {
		t.Errorf("alg1 outcome = %q, want uwr-permanent", tr1.Header.Outcome)
	}
	if tr1.Header.FirstArchDivergence < 0 {
		t.Error("alg1 trace records no architectural divergence")
	}
	if !tr1.Header.HasState || tr1.Header.HasBackup {
		t.Errorf("alg1 HasState/HasBackup = %v/%v, want true/false",
			tr1.Header.HasState, tr1.Header.HasBackup)
	}
	if !tr2.Header.HasBackup {
		t.Error("alg2 trace should locate the xold backup")
	}

	c1 := Analyze(tr1, 0)
	c2 := Analyze(tr2, 0)

	if c1.CorruptIterations < 2 {
		t.Errorf("alg1 chain: state corruption across %d iterations, want >= 2", c1.CorruptIterations)
	}
	if c1.RecoveryIteration >= 0 {
		t.Errorf("alg1 chain reports recovery at %d; alg1 has no recovery blocks", c1.RecoveryIteration)
	}
	if last := c1.Links[len(c1.Links)-1]; last.Kind != "end" {
		t.Errorf("alg1 chain ends with %q, want \"end\"", last.Kind)
	}

	if c2.RecoveryIteration < 0 {
		t.Fatal("alg2 chain records no recovery")
	}
	if !c2.CleanTail {
		t.Errorf("alg2 chain tail not clean: last corruption k=%d, recovery k=%d",
			c2.LastStateCorruption, c2.RecoveryIteration)
	}
	if last := c2.Links[len(c2.Links)-1]; last.Kind != "recovered" {
		t.Errorf("alg2 chain ends with %q, want \"recovered\"", last.Kind)
	}
	if c2.RecoveryLatency < 0 || c2.RecoveryLatency > 1 {
		t.Errorf("alg2 recovery latency = %d iterations, want 0 or 1", c2.RecoveryLatency)
	}
	if c2.DetectionIteration < 0 {
		t.Error("alg2 chain records no detection")
	}
	// The injected iteration must carry the injection event and show
	// the fault site's cache word as touched.
	first := tr2.Find(300)
	if first == nil {
		t.Fatal("alg2 trace has no snapshot for iteration 300")
	}
	if first.Events&EventInjected == 0 {
		t.Error("iteration 300 lacks EventInjected")
	}
	if first.CacheTouched&1 == 0 {
		t.Error("iteration 300 does not mark line0 word0 (the fault site) as touched")
	}
}

// TestCaptureDeterministic is the replay guarantee: capturing the same
// fault twice yields byte-identical encoded traces.
func TestCaptureDeterministic(t *testing.T) {
	inj := fig7Injection(t, workload.AlgorithmII)
	a, err := Capture(context.Background(), workload.AlgorithmII, workload.PaperRunSpec(), inj, classify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Capture(context.Background(), workload.AlgorithmII, workload.PaperRunSpec(), inj, classify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(a), Encode(b)) {
		t.Error("two captures of the same fault encode differently")
	}
}

func TestCaptureCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Capture(ctx, workload.AlgorithmI, workload.PaperRunSpec(),
		workload.Injection{At: 10, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}},
		classify.Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Capture with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func sampleTrace() *Trace {
	return &Trace{
		Header: Header{
			Variant:             "alg2",
			Experiment:          17,
			Seed:                99,
			Injection:           Injection{Region: "cache", Element: "line0.data0", Bit: 28, At: 12345},
			InjectionIteration:  300,
			Iterations:          650,
			Outcome:             "uwr-transient",
			FirstArchDivergence: 12345,
			TrapIteration:       -1,
			HasState:            true,
			HasBackup:           true,
		},
		Iterations: []Iteration{
			{K: 300, X: 10.5, XGolden: 10.5, Backup: 10.4, Output: 1.25, GoldenOutput: 1.25,
				RegsTouched: 0xfffe, CacheTouched: 0x3, Events: EventInjected},
			{K: 301, X: 74.2, XGolden: 10.6, Backup: 10.5, Output: 3.5, GoldenOutput: 1.26,
				RegsTouched: 0xfffe, CacheTouched: 0x3, RegDivergent: 41, CacheDivergent: 180,
				Events: EventStateAssertFailed},
			{K: 302, X: 10.6, XGolden: 10.7, Backup: 10.6, Output: 1.3, GoldenOutput: 1.27,
				RegsTouched: 0xfffe, CacheTouched: 0x3, RegDivergent: 2, CacheDivergent: 2},
		},
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	want := sampleTrace()
	got, err := Read(bytes.NewReader(Encode(want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Header != want.Header {
		t.Errorf("header round-trip mismatch:\n got %+v\nwant %+v", got.Header, want.Header)
	}
	if len(got.Iterations) != len(want.Iterations) {
		t.Fatalf("iterations = %d, want %d", len(got.Iterations), len(want.Iterations))
	}
	for i := range want.Iterations {
		if got.Iterations[i] != want.Iterations[i] {
			t.Errorf("iteration %d mismatch:\n got %+v\nwant %+v", i, got.Iterations[i], want.Iterations[i])
		}
	}
}

// TestDecodeTruncated cuts an encoded trace at every possible byte
// boundary: no prefix may panic, and any cut after the header must
// return the complete frames before the cut with a *TruncatedError.
func TestDecodeTruncated(t *testing.T) {
	full := Encode(sampleTrace())
	whole, err := Decode(full)
	if err != nil {
		t.Fatalf("Decode(full): %v", err)
	}
	for i := 0; i < len(full); i++ {
		tr, err := Decode(full[:i])
		if err != nil {
			var te *TruncatedError
			if !errors.As(err, &te) {
				continue // pre-header cuts (magic/version) are plain errors
			}
		} else if len(tr.Iterations) == len(whole.Iterations) {
			// A cut landing exactly on a frame boundary is a valid
			// shorter stream — but never a longer one.
			t.Fatalf("Decode(%d of %d bytes) returned the full trace", i, len(full))
		}
		if tr == nil {
			continue // header itself was cut
		}
		if len(tr.Iterations) > len(whole.Iterations) {
			t.Fatalf("cut at %d: %d frames, more than the full %d", i, len(tr.Iterations), len(whole.Iterations))
		}
		for j := range tr.Iterations {
			if tr.Iterations[j] != whole.Iterations[j] {
				t.Fatalf("cut at %d: frame %d differs from the full decode", i, j)
			}
		}
	}
}

func TestDecodeRejectsForeignData(t *testing.T) {
	if _, err := Decode([]byte("{\"not\":\"a trace\"}")); err == nil {
		t.Error("Decode accepted JSON junk")
	}
	bad := Encode(sampleTrace())
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("Decode accepted an unknown format version")
	}
}

// TestIterationJSONNonFinite: a flipped exponent bit can make the
// recorded state ±Inf or NaN; the JSON form must survive that.
func TestIterationJSONNonFinite(t *testing.T) {
	in := Iteration{K: 5, X: math.Inf(1), XGolden: 10.5, Backup: math.NaN(),
		Output: math.Inf(-1), GoldenOutput: 1.5}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out Iteration
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !math.IsInf(out.X, 1) || !math.IsNaN(out.Backup) || !math.IsInf(out.Output, -1) {
		t.Errorf("non-finite values lost: %+v", out)
	}
	if out.XGolden != 10.5 || out.GoldenOutput != 1.5 {
		t.Errorf("finite values corrupted: %+v", out)
	}
}

func TestAnalyzeTrapped(t *testing.T) {
	tr := sampleTrace()
	tr.Header.Outcome = "detected"
	tr.Header.Mechanism = "watchdog"
	tr.Header.TrapIteration = 302
	c := Analyze(tr, 0)
	if c.DetectionIteration != 301 {
		// The assertion at 301 saw the error before the trap.
		t.Errorf("DetectionIteration = %d, want 301", c.DetectionIteration)
	}
	if last := c.Links[len(c.Links)-1]; last.Kind != "trapped" {
		t.Errorf("chain ends with %q, want \"trapped\"", last.Kind)
	}
}

func TestTimelineSVG(t *testing.T) {
	svg := TimelineSVG(sampleTrace(), nil)
	for _, want := range []string{"<svg", "alg2", "injected", "assert-state", "state error", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("timeline SVG missing %q", want)
		}
	}
}
