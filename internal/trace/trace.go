// Package trace is the fault-forensics subsystem: it turns one
// fault-injection experiment into explainable evidence. A traced
// experiment re-executes deterministically in detail mode and records,
// for every control iteration from the injection until the run's
// classification, a snapshot of the quantities the paper's causal
// argument rests on — the controller state variable x, its backup, the
// delivered output against the fault-free output, which registers and
// cache words the iteration touched, how many instructions diverged
// architecturally from the reference execution, and whether an
// executable assertion fired and recovered. A propagation analyzer
// reduces the raw trace to a causal chain (fault site → first
// architectural deviation → state corruption → output deviation →
// recovery/detection/end), and a compact varint-delta stream format
// persists traces append-only and truncation-tolerantly.
package trace

import (
	"fmt"
	"math"
)

// FormatVersion identifies the binary stream layout written by Encode.
const FormatVersion = 1

// Injection names the injected fault in serialisable form (the trace
// file must be self-contained; workload/cpu types stay internal).
type Injection struct {
	Region  string `json:"region"`
	Element string `json:"element"`
	Bit     uint   `json:"bit"`
	At      uint64 `json:"at"`
}

// String renders the fault site like cpu.StateBit does.
func (i Injection) String() string {
	return fmt.Sprintf("%s/%s[%d]@%d", i.Region, i.Element, i.Bit, i.At)
}

// Header describes the traced experiment.
type Header struct {
	// Variant is the workload program the experiment ran.
	Variant string `json:"variant"`

	// Experiment is the campaign experiment ID the trace replays, or
	// -1 for a standalone (explicitly specified) fault.
	Experiment int `json:"experiment"`

	// Seed is the campaign seed the injection was re-derived from
	// (0 for standalone faults).
	Seed uint64 `json:"seed,omitempty"`

	// Injection is the injected fault.
	Injection Injection `json:"injection"`

	// InjectionIteration is the control iteration during which the
	// fault was injected.
	InjectionIteration int `json:"injectionIteration"`

	// Iterations is the length of the reference run's window.
	Iterations int `json:"iterations"`

	// Outcome and Mechanism are the experiment's ordinary
	// classification (the same strings goofi.Record carries).
	Outcome   string `json:"outcome"`
	Mechanism string `json:"mechanism,omitempty"`

	// FirstArchDivergence is the global instruction index at which the
	// faulty run's architectural state (registers or cache) first
	// differed from the reference run, or -1 when it never did.
	FirstArchDivergence int64 `json:"firstArchDivergence"`

	// TrapIteration is the iteration during which an error-detection
	// mechanism terminated the run, or -1.
	TrapIteration int `json:"trapIteration"`

	// HasState reports that the workload's state variable could be
	// located (data label x or x1); X/XGolden are meaningful only then.
	HasState bool `json:"hasState"`

	// HasBackup reports that the workload keeps a recovery backup of
	// the state (Algorithm II family); Backup is meaningful only then.
	HasBackup bool `json:"hasBackup"`
}

// Per-iteration event bits.
const (
	// EventInjected marks the iteration during which the bit flipped.
	EventInjected uint8 = 1 << iota

	// EventStateAssertFailed marks an executable assertion on the
	// controller state failing (the recovery block was entered).
	EventStateAssertFailed

	// EventOutputAssertFailed marks the output assertion failing.
	EventOutputAssertFailed

	// EventTrapped marks the iteration an EDM terminated the run; its
	// Output/GoldenOutput are zero because no output was delivered.
	EventTrapped
)

// Iteration is one per-iteration snapshot of a traced experiment,
// taken at the end of control iteration K (after the state store, at
// the iteration's last executed instruction for a trapped iteration).
type Iteration struct {
	// K is the control iteration index.
	K int

	// X and XGolden are the effective value of the controller state
	// variable at the end of the iteration, in the faulty and the
	// reference run.
	X       float64
	XGolden float64

	// Backup is the effective value of the state's recovery backup
	// (x_old) at the end of the iteration; zero when !Header.HasBackup.
	Backup float64

	// Output and GoldenOutput are the delivered first-port outputs.
	// Both are zero for a trapped iteration (EventTrapped).
	Output       float64
	GoldenOutput float64

	// RegsTouched has bit r set when register r was written during the
	// iteration (r1..r15).
	RegsTouched uint32

	// CacheTouched has bit line*WordsPerLine+word set when that cache
	// data word changed during the iteration.
	CacheTouched uint32

	// RegDivergent and CacheDivergent count the iteration's
	// instructions at which the register file (resp. cache state)
	// differed from the reference run at the same global instruction
	// index.
	RegDivergent   uint32
	CacheDivergent uint32

	// Events is a bitmask of Event* flags.
	Events uint8
}

// StateError returns |X − XGolden|, the state corruption magnitude.
func (it Iteration) StateError() float64 {
	return math.Abs(it.X - it.XGolden)
}

// Deviation returns |Output − GoldenOutput|, the output deviation.
func (it Iteration) Deviation() float64 {
	return math.Abs(it.Output - it.GoldenOutput)
}

// Recovered reports whether best effort recovery ran this iteration.
func (it Iteration) Recovered() bool {
	return it.Events&(EventStateAssertFailed|EventOutputAssertFailed) != 0
}

// Trace is one experiment's propagation record: the header plus the
// per-iteration snapshots from the injection iteration to the end of
// the run (or the trap).
type Trace struct {
	Header     Header      `json:"header"`
	Iterations []Iteration `json:"iterations"`
}

// Find returns the snapshot of iteration k, or nil.
func (t *Trace) Find(k int) *Iteration {
	for i := range t.Iterations {
		if t.Iterations[i].K == k {
			return &t.Iterations[i]
		}
	}
	return nil
}
