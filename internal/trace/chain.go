package trace

import (
	"fmt"
	"strings"

	"ctrlguard/internal/classify"
)

// Link is one step of a causal chain, anchored to the control
// iteration where it first happened.
type Link struct {
	// Kind is one of "injected", "arch-divergence", "state-corruption",
	// "output-deviation", "assert-state", "assert-output", "trapped",
	// "recovered" or "end".
	Kind string `json:"kind"`

	// K is the control iteration the link anchors to.
	K int `json:"k"`

	// Detail is a human-readable elaboration.
	Detail string `json:"detail"`
}

func (l Link) String() string {
	if l.Detail == "" {
		return fmt.Sprintf("%-16s k=%d", l.Kind, l.K)
	}
	return fmt.Sprintf("%-16s k=%d  %s", l.Kind, l.K, l.Detail)
}

// Chain is the reduced causal account of one trace: fault site → first
// architectural deviation → state corruption → output deviation →
// detection/recovery/end, with latencies in control iterations.
type Chain struct {
	Outcome   string `json:"outcome"`
	Mechanism string `json:"mechanism,omitempty"`

	// InjectionIteration is where the chain starts.
	InjectionIteration int `json:"injectionIteration"`

	// ArchDivergenceIteration is the first iteration with any
	// instruction-level register/cache divergence from the reference
	// run (-1: the fault never surfaced architecturally).
	ArchDivergenceIteration int `json:"archDivergenceIteration"`

	// FirstStateCorruption / LastStateCorruption bracket the iterations
	// whose controller state erred beyond the threshold (-1: none).
	// CorruptIterations counts them; MaxStateError is the worst |Δx|.
	FirstStateCorruption int     `json:"firstStateCorruption"`
	LastStateCorruption  int     `json:"lastStateCorruption"`
	CorruptIterations    int     `json:"corruptIterations"`
	MaxStateError        float64 `json:"maxStateError"`

	// FirstOutputDeviation is the first iteration whose delivered
	// output deviated beyond the threshold (-1: none); StrongIterations
	// counts them; MaxDeviation is the worst deviation.
	FirstOutputDeviation int     `json:"firstOutputDeviation"`
	StrongIterations     int     `json:"strongIterations"`
	MaxDeviation         float64 `json:"maxDeviation"`

	// DetectionIteration is when an executable assertion or an EDM
	// first saw the error (-1: never); DetectionLatency is its distance
	// from the injection in iterations (-1 when undetected).
	DetectionIteration int `json:"detectionIteration"`
	DetectionLatency   int `json:"detectionLatency"`

	// RecoveryIteration is the last iteration a recovery block ran
	// (-1: never); RecoveryLatency is its distance from the injection.
	RecoveryIteration int `json:"recoveryIteration"`
	RecoveryLatency   int `json:"recoveryLatency"`

	// CleanTail reports that after the chain's last corrective event
	// (recovery, or the injection itself) neither state corruption nor
	// strong output deviation occurred again — the chain genuinely
	// ends there instead of trailing corruption to the end of the run.
	CleanTail bool `json:"cleanTail"`

	// Links is the chain in causal order.
	Links []Link `json:"links"`
}

// Analyze reduces t to its causal chain. threshold is the strong-
// deviation bound in output units; <= 0 means the paper's 0.1°.
func Analyze(t *Trace, threshold float64) *Chain {
	if threshold <= 0 {
		threshold = classify.DefaultConfig().Threshold
	}
	h := t.Header
	c := &Chain{
		Outcome:                 h.Outcome,
		Mechanism:               h.Mechanism,
		InjectionIteration:      h.InjectionIteration,
		ArchDivergenceIteration: -1,
		FirstStateCorruption:    -1,
		LastStateCorruption:     -1,
		FirstOutputDeviation:    -1,
		DetectionIteration:      -1,
		DetectionLatency:        -1,
		RecoveryIteration:       -1,
		RecoveryLatency:         -1,
	}

	for _, it := range t.Iterations {
		if c.ArchDivergenceIteration < 0 && it.RegDivergent+it.CacheDivergent > 0 {
			c.ArchDivergenceIteration = it.K
		}
		if h.HasState && it.StateError() > threshold {
			if c.FirstStateCorruption < 0 {
				c.FirstStateCorruption = it.K
			}
			c.LastStateCorruption = it.K
			c.CorruptIterations++
			if it.StateError() > c.MaxStateError {
				c.MaxStateError = it.StateError()
			}
		}
		if it.Events&EventTrapped == 0 && it.Deviation() > threshold {
			if c.FirstOutputDeviation < 0 {
				c.FirstOutputDeviation = it.K
			}
			c.StrongIterations++
			if it.Deviation() > c.MaxDeviation {
				c.MaxDeviation = it.Deviation()
			}
		}
		if it.Recovered() {
			if c.DetectionIteration < 0 {
				c.DetectionIteration = it.K
			}
			c.RecoveryIteration = it.K
		}
	}
	if h.TrapIteration >= 0 && (c.DetectionIteration < 0 || h.TrapIteration < c.DetectionIteration) {
		c.DetectionIteration = h.TrapIteration
	}
	if c.DetectionIteration >= 0 {
		c.DetectionLatency = c.DetectionIteration - h.InjectionIteration
	}
	if c.RecoveryIteration >= 0 {
		c.RecoveryLatency = c.RecoveryIteration - h.InjectionIteration
	}

	// The tail is clean when nothing bad happens after the last
	// corrective event.
	after := h.InjectionIteration
	if c.RecoveryIteration > after {
		after = c.RecoveryIteration
	}
	c.CleanTail = c.LastStateCorruption <= after && lastStrong(t, threshold) <= after

	c.Links = buildLinks(t, c)
	return c
}

// lastStrong returns the last iteration with a strong output
// deviation, or -1.
func lastStrong(t *Trace, threshold float64) int {
	last := -1
	for _, it := range t.Iterations {
		if it.Events&EventTrapped == 0 && it.Deviation() > threshold {
			last = it.K
		}
	}
	return last
}

func buildLinks(t *Trace, c *Chain) []Link {
	h := t.Header
	links := []Link{{Kind: "injected", K: h.InjectionIteration,
		Detail: h.Injection.String()}}
	if c.ArchDivergenceIteration >= 0 {
		d := ""
		if h.FirstArchDivergence >= 0 {
			d = fmt.Sprintf("first at instruction %d", h.FirstArchDivergence)
		}
		links = append(links, Link{Kind: "arch-divergence",
			K: c.ArchDivergenceIteration, Detail: d})
	}
	if c.FirstStateCorruption >= 0 {
		links = append(links, Link{Kind: "state-corruption", K: c.FirstStateCorruption,
			Detail: fmt.Sprintf("through k=%d (%d iterations, max |Δx| %.3g)",
				c.LastStateCorruption, c.CorruptIterations, c.MaxStateError)})
	}
	if c.FirstOutputDeviation >= 0 {
		links = append(links, Link{Kind: "output-deviation", K: c.FirstOutputDeviation,
			Detail: fmt.Sprintf("%d strong iterations, max %.3g", c.StrongIterations, c.MaxDeviation)})
	}
	for _, it := range t.Iterations {
		if it.Events&EventStateAssertFailed != 0 {
			links = append(links, Link{Kind: "assert-state", K: it.K,
				Detail: "state assertion failed; recovery block ran"})
			break
		}
	}
	for _, it := range t.Iterations {
		if it.Events&EventOutputAssertFailed != 0 {
			links = append(links, Link{Kind: "assert-output", K: it.K,
				Detail: "output assertion failed; recovery block ran"})
			break
		}
	}
	if h.TrapIteration >= 0 {
		links = append(links, Link{Kind: "trapped", K: h.TrapIteration,
			Detail: "EDM " + h.Mechanism})
		return links
	}
	last := h.InjectionIteration
	if n := len(t.Iterations); n > 0 {
		last = t.Iterations[n-1].K
	}
	if c.RecoveryIteration >= 0 && c.CleanTail {
		links = append(links, Link{Kind: "recovered", K: c.RecoveryIteration,
			Detail: fmt.Sprintf("chain ends here; %d iterations after injection", c.RecoveryLatency)})
		return links
	}
	links = append(links, Link{Kind: "end", K: last, Detail: "outcome " + c.Outcome})
	return links
}

// String renders the chain one link per line.
func (c *Chain) String() string {
	var b strings.Builder
	for _, l := range c.Links {
		fmt.Fprintf(&b, "%s\n", l)
	}
	return b.String()
}

// Diff renders two chains for the same fault side by side — typically
// Algorithm I against Algorithm II — followed by a comparative verdict
// on how far the error propagated under each.
func Diff(labelA string, a *Chain, labelB string, b *Chain) string {
	var s strings.Builder
	fmt.Fprintf(&s, "--- %s (outcome %s)\n%s", labelA, a.Outcome, a)
	fmt.Fprintf(&s, "--- %s (outcome %s)\n%s", labelB, b.Outcome, b)
	fmt.Fprintf(&s, "--- verdict\n%s: %s\n%s: %s\n",
		labelA, propagationSummary(a), labelB, propagationSummary(b))
	return s.String()
}

func propagationSummary(c *Chain) string {
	switch {
	case c.RecoveryIteration >= 0 && c.CleanTail:
		return fmt.Sprintf("error contained; chain ends at recovery in iteration %d (latency %d)",
			c.RecoveryIteration, c.RecoveryLatency)
	case c.CorruptIterations > 0:
		return fmt.Sprintf("state corruption propagated across %d iterations (k=%d..%d, max |Δx| %.3g)",
			c.CorruptIterations, c.FirstStateCorruption, c.LastStateCorruption, c.MaxStateError)
	case c.StrongIterations > 0:
		return fmt.Sprintf("output deviated strongly for %d iterations (max %.3g)",
			c.StrongIterations, c.MaxDeviation)
	case c.DetectionIteration >= 0:
		return fmt.Sprintf("detected in iteration %d (latency %d) before any strong deviation",
			c.DetectionIteration, c.DetectionLatency)
	default:
		return "no strong deviation observed"
	}
}
