package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Stream layout (FormatVersion 1):
//
//	magic "CGTR" | version byte | uvarint header length | header JSON |
//	frames...
//
// Each frame is one Iteration: a uvarint payload length followed by
// the payload — the iteration index as a uvarint delta from the
// previous frame, the five state doubles as uvarint-encoded XOR deltas
// of their IEEE bit patterns against the previous frame (consecutive
// snapshots share sign and exponent, so the XOR is small), the four
// touch/divergence words as uvarints, and the event byte. The format
// is append-only and length-prefixed, so a file cut short at any byte
// still yields every complete frame, mirroring goofi.ReadRecords.

var magic = [4]byte{'C', 'G', 'T', 'R'}

var errShortFrame = errors.New("frame payload cut short")

// TruncatedError reports a trace stream that ended mid-frame (a
// crashed or still-running writer). The preceding complete frames are
// returned alongside it.
type TruncatedError struct {
	// Frames is the number of complete iteration frames decoded.
	Frames int
	Err    error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace stream truncated after %d frames: %v", e.Frames, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// Encode serialises t into the compact stream format. Encoding is
// deterministic: equal traces yield identical bytes.
func Encode(t *Trace) []byte {
	buf := append([]byte{}, magic[:]...)
	buf = append(buf, FormatVersion)
	hdr, err := json.Marshal(t.Header)
	if err != nil {
		// Header holds only strings, ints and bools.
		panic(err)
	}
	buf = binary.AppendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)

	var prev Iteration
	frame := make([]byte, 0, 64)
	for _, it := range t.Iterations {
		frame = frame[:0]
		frame = binary.AppendUvarint(frame, uint64(it.K-prev.K))
		frame = appendFloatDelta(frame, it.X, prev.X)
		frame = appendFloatDelta(frame, it.XGolden, prev.XGolden)
		frame = appendFloatDelta(frame, it.Backup, prev.Backup)
		frame = appendFloatDelta(frame, it.Output, prev.Output)
		frame = appendFloatDelta(frame, it.GoldenOutput, prev.GoldenOutput)
		frame = binary.AppendUvarint(frame, uint64(it.RegsTouched))
		frame = binary.AppendUvarint(frame, uint64(it.CacheTouched))
		frame = binary.AppendUvarint(frame, uint64(it.RegDivergent))
		frame = binary.AppendUvarint(frame, uint64(it.CacheDivergent))
		frame = append(frame, it.Events)
		buf = binary.AppendUvarint(buf, uint64(len(frame)))
		buf = append(buf, frame...)
		prev = it
	}
	return buf
}

func appendFloatDelta(b []byte, v, prev float64) []byte {
	return binary.AppendUvarint(b, math.Float64bits(v)^math.Float64bits(prev))
}

// Decode parses a trace stream. When the stream is cut short the
// complete frames decoded so far are returned together with a
// *TruncatedError; a stream that is not a trace at all (bad magic,
// unknown version, corrupt header) returns a nil trace.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, errors.New("trace: not a trace stream (bad magic)")
	}
	if len(data) < len(magic)+1 {
		return nil, &TruncatedError{Err: errors.New("version byte missing")}
	}
	if v := data[len(magic)]; v != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", v)
	}
	rest := data[len(magic)+1:]

	hlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < hlen {
		return nil, &TruncatedError{Err: errors.New("header cut short")}
	}
	t := &Trace{}
	if err := json.Unmarshal(rest[n:n+int(hlen)], &t.Header); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	rest = rest[n+int(hlen):]

	var prev Iteration
	for len(rest) > 0 {
		flen, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < flen {
			return t, &TruncatedError{Frames: len(t.Iterations),
				Err: fmt.Errorf("frame %d cut short", len(t.Iterations))}
		}
		it, err := decodeFrame(rest[n:n+int(flen)], prev)
		if err != nil {
			return t, &TruncatedError{Frames: len(t.Iterations), Err: err}
		}
		rest = rest[n+int(flen):]
		t.Iterations = append(t.Iterations, it)
		prev = it
	}
	return t, nil
}

// Read decodes a trace stream from r (see Decode).
func Read(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return Decode(data)
}

// frameReader cursors through one frame payload, latching the first
// decoding error.
type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errShortFrame
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *frameReader) byte() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.err = errShortFrame
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *frameReader) floatDelta(prev float64) float64 {
	return math.Float64frombits(math.Float64bits(prev) ^ r.uvarint())
}

func decodeFrame(b []byte, prev Iteration) (Iteration, error) {
	r := frameReader{b: b}
	var it Iteration
	it.K = prev.K + int(r.uvarint())
	it.X = r.floatDelta(prev.X)
	it.XGolden = r.floatDelta(prev.XGolden)
	it.Backup = r.floatDelta(prev.Backup)
	it.Output = r.floatDelta(prev.Output)
	it.GoldenOutput = r.floatDelta(prev.GoldenOutput)
	it.RegsTouched = uint32(r.uvarint())
	it.CacheTouched = uint32(r.uvarint())
	it.RegDivergent = uint32(r.uvarint())
	it.CacheDivergent = uint32(r.uvarint())
	it.Events = r.byte()
	if r.err != nil {
		return Iteration{}, r.err
	}
	return it, nil
}
