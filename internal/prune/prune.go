// Package prune implements static fault-space pruning for SCIFI bit-flip
// campaigns: a def-use/liveness analysis over the golden run's dynamic
// instruction stream that classifies every candidate injection
// (location, bit, time) BEFORE it is simulated.
//
// The analysis is sound ONLY for the permanent single bit-flip model
// (see SupportsModel): a transient fault may vanish before the first
// use the classifier keys on, a burst perturbs several bits whose
// first uses can differ, and the equivalence-class argument assumes
// one corrupted location. Campaigns using any other fault model must
// decline pruning entirely rather than risk silently wrong verdicts.
//
// The analysis exploits a structural property of single-bit transient
// faults: a faulty run executes exactly the golden instruction sequence
// until the first dynamic READ of the faulted location. From one
// instrumented golden replay the analyzer therefore knows, for every
// injection point, which of three fates applies:
//
//   - Dead: the location is overwritten at full width before its next
//     read (and is invisible to the end-of-run state comparison). The
//     flip provably cannot influence the run; its verdict equals the
//     golden-vs-golden classification without any simulation.
//
//   - Class: the location's first read happens at dynamic instruction T
//     with a machine and environment state identical to the golden
//     run's everywhere except the flipped bit. All injections sharing
//     (location-at-T, bit, T) reach T in the same state and therefore
//     produce bit-identical outcomes: one representative simulation
//     stands for the whole class.
//
//   - For faults in dirty cache data, a write-back migrates the flipped
//     bit into its memory word before anything reads it; the analysis
//     follows that single hop and continues the scan on the memory
//     word's event list.
//
// Soundness notes, each load-bearing and pinned by the cross-validation
// property test:
//
//   - All defs in this ISA are full-width (32-bit register and word
//     writes, whole-tag refills, boolean assignments), so a def really
//     erases any single-bit flip.
//   - Cache metadata (tag/valid/dirty) reads follow Cache.ensure's
//     short-circuit evaluation exactly: a tag is only "read" when the
//     hit check or eviction actually depends on it; otherwise the
//     refill overwrites it and the flip is dead.
//   - The end of the run reads every register, the PC, both flags and
//     the effective memory image (memory overlaid with valid+dirty
//     lines) through cpu.FinalState, so locations that survive to the
//     end unread are still "used" by the final state comparison —
//     except cache data words whose line is not written back, which
//     are invisible and therefore dead.
package prune

import (
	"fmt"
	"sort"

	"ctrlguard/internal/cpu"
)

// SupportsModel reports whether the pruner's classification is sound
// for the named fault model ("" is the default permanent single
// bit-flip). Campaign engines call this on the decline path: any model
// the analysis cannot reason about runs fully simulated.
func SupportsModel(model string) bool {
	return model == "" || model == "bitflip"
}

// Location numbering: a dense index over every trackable fault carrier.
// Registers r1..r15 map to 0..14; then the PC and the two flags; then
// per cache line tag, valid, dirty and the data words; then one slot
// per data-segment memory word (memory is not an injection target, but
// write-backs migrate cache faults into it).
const (
	locPC        = 15
	locFlagZ     = 16
	locFlagLT    = 17
	locCacheBase = 18
	locPerLine   = 3 + cpu.CacheWordsPerLine
	locMemBase   = locCacheBase + cpu.CacheLines*locPerLine
	numMemWords  = int(cpu.DataSize / 4)
	numLocs      = locMemBase + numMemWords
)

// locReg returns the location of register r (1..15).
func locReg(r int) uint32 { return uint32(r - 1) }

// memLoc returns the location of the data-segment memory word at addr.
func memLoc(addr uint32) (uint32, bool) {
	if cpu.SegmentOf(addr) != cpu.SegData {
		return 0, false
	}
	return uint32(locMemBase) + (addr-cpu.DataBase)/4, true
}

// locOf maps an injectable state bit onto its location index.
func locOf(b cpu.StateBit) (uint32, bool) {
	switch b.Region {
	case cpu.RegionRegisters:
		switch b.Element {
		case "pc":
			return locPC, true
		case "flagZ":
			return locFlagZ, true
		case "flagLT":
			return locFlagLT, true
		}
		var r int
		if _, err := fmt.Sscanf(b.Element, "r%d", &r); err != nil || r < 1 || r > 15 {
			return 0, false
		}
		return locReg(r), true
	case cpu.RegionCache:
		var l int
		var field string
		if _, err := fmt.Sscanf(b.Element, "line%d.%s", &l, &field); err != nil || l < 0 || l >= cpu.CacheLines {
			return 0, false
		}
		base := uint32(locCacheBase + l*locPerLine)
		switch field {
		case "tag":
			return base, true
		case "valid":
			return base + 1, true
		case "dirty":
			return base + 2, true
		}
		var w int
		if _, err := fmt.Sscanf(field, "data%d", &w); err != nil || w < 0 || w >= cpu.CacheWordsPerLine {
			return 0, false
		}
		return base + 3 + uint32(w), true
	}
	return 0, false
}

// Event kinds, in intra-instruction execution order semantics: the
// FIRST event a location receives within one instruction decides the
// fate of a fault present when the instruction begins.
const (
	evUse uint8 = iota // the pre-instruction value influences behaviour
	evDef              // overwritten at full width
	evWB               // cache data word written back to memory word aux
)

// event is one def/use touch of a location by one dynamic instruction.
type event struct {
	idx  uint32 // dynamic instruction index
	kind uint8
	aux  uint32 // evWB: memory byte address receiving the write-back
}

// Capture observes a golden run and builds the per-location event
// index. Attach Observer() to the golden RunSpec, then call Finish.
// The observer is read-only (it never perturbs the machine) and must
// see every instruction of exactly one fault-free run.
type Capture struct {
	bad       bool
	vm        *cpu.CPU
	count     uint64
	events    [numLocs][]event
	lastTouch [numLocs]uint32 // idx+1 of the last event, for intra-instruction dedup
}

// NewCapture returns an empty capture.
func NewCapture() *Capture {
	return &Capture{}
}

// Observer returns the workload.RunSpec observer that records events.
func (c *Capture) Observer() func(iteration int, instr uint64, vm *cpu.CPU) {
	return c.observe
}

func (c *Capture) add(loc uint32, idx uint32, kind uint8, aux uint32) {
	if c.lastTouch[loc] == idx+1 {
		return // a same-instruction event landed first and wins
	}
	c.lastTouch[loc] = idx + 1
	c.events[loc] = append(c.events[loc], event{idx: idx, kind: kind, aux: aux})
}

func regVal(vm *cpu.CPU, r int) uint32 {
	if r == 0 {
		return 0
	}
	return vm.Regs[r]
}

// observe records the def/use events of the instruction about to
// execute. Emission order mirrors CPU.Step's micro-operation order —
// operand reads, the storage check, the cache access (hit check,
// eviction, refill, then the word access), then result writes — so the
// first-event-wins dedup resolves same-instruction conflicts the way
// the hardware would.
func (c *Capture) observe(_ int, instr uint64, vm *cpu.CPU) {
	if c.bad {
		return
	}
	if instr != c.count || instr >= 1<<31 {
		c.bad = true
		return
	}
	c.count++
	c.vm = vm

	// CurrentInstr reads the predecoded slot when the machine runs the
	// predecoded engine, keeping Decode off the observed golden run too.
	in, err := vm.CurrentInstr()
	if err != nil {
		c.bad = true // a golden run never fetches an illegal instruction
		return
	}
	idx := uint32(instr)
	du := in.DefUse()

	// 1. Operand reads.
	for r := 1; r < 16; r++ {
		if du.UseRegs&(1<<r) != 0 {
			c.add(locReg(r), idx, evUse, 0)
		}
	}
	if du.UseFlags&cpu.FlagMaskZ != 0 {
		c.add(locFlagZ, idx, evUse, 0)
	}
	if du.UseFlags&cpu.FlagMaskLT != 0 {
		c.add(locFlagLT, idx, evUse, 0)
	}

	// 2. The data-memory access, if any.
	if du.Mem != cpu.MemNone {
		addr := regVal(vm, in.Rs1) + uint32(int32(int16(in.Imm)))
		switch cpu.SegmentOf(addr) {
		case cpu.SegIO:
			// Uncached, host-mapped: no tracked state involved.
		case cpu.SegStack:
			// The storage check reads the stack pointer.
			c.add(locReg(cpu.SPReg), idx, evUse, 0)
		case cpu.SegData:
			if !c.cacheEvents(vm, addr, du.Mem == cpu.MemStore, idx) {
				c.bad = true
				return
			}
		default:
			c.bad = true // would trap; cannot happen on a golden run
			return
		}
	}

	// 3. Result writes.
	for r := 1; r < 16; r++ {
		if du.DefRegs&(1<<r) != 0 {
			c.add(locReg(r), idx, evDef, 0)
		}
	}
	if du.DefFlags&cpu.FlagMaskZ != 0 {
		c.add(locFlagZ, idx, evDef, 0)
	}
	if du.DefFlags&cpu.FlagMaskLT != 0 {
		c.add(locFlagLT, idx, evDef, 0)
	}
}

// cacheEvents replays Cache.ensure's decision tree against the current
// (pre-access) cache state, recording exactly the reads whose value the
// access depends on and the writes that overwrite state.
func (c *Capture) cacheEvents(vm *cpu.CPU, addr uint32, isStore bool, idx uint32) bool {
	acc := vm.Cache.Probe(addr)
	base := uint32(locCacheBase + acc.Line*locPerLine)
	tagLoc, validLoc, dirtyLoc := base, base+1, base+2
	wordLoc := func(w int) uint32 { return base + 3 + uint32(w) }

	if acc.Hit {
		// The hit check read valid and tag and both mattered.
		c.add(validLoc, idx, evUse, 0)
		c.add(tagLoc, idx, evUse, 0)
		if isStore {
			c.add(wordLoc(acc.Word), idx, evDef, 0)
			c.add(dirtyLoc, idx, evDef, 0)
		} else {
			c.add(wordLoc(acc.Word), idx, evUse, 0)
		}
		return true
	}

	// Miss. The hit check always reads valid; it short-circuits past
	// the tag when the line is invalid (a flipped tag in an invalid
	// line changes nothing and is then overwritten by the refill).
	c.add(validLoc, idx, evUse, 0)
	if acc.VictimValid {
		c.add(tagLoc, idx, evUse, 0)
		c.add(dirtyLoc, idx, evUse, 0) // eviction reads dirty for valid lines
		if acc.VictimDirty {
			// Write-back: each data word's flipped bits migrate into
			// the victim's memory words before the refill overwrites
			// the line.
			for w := 0; w < cpu.CacheWordsPerLine; w++ {
				wbAddr := acc.VictimBase + uint32(w*4)
				ml, ok := memLoc(wbAddr)
				if !ok {
					return false // write-back outside SegData traps; never golden
				}
				c.add(wordLoc(w), idx, evWB, wbAddr)
				c.add(ml, idx, evDef, 0)
			}
		}
	}
	// Refill: reads four memory words, then overwrites the whole line.
	for w := 0; w < cpu.CacheWordsPerLine; w++ {
		if ml, ok := memLoc(acc.FillBase + uint32(w*4)); ok {
			c.add(ml, idx, evUse, 0)
		}
	}
	for w := 0; w < cpu.CacheWordsPerLine; w++ {
		c.add(wordLoc(w), idx, evDef, 0)
	}
	c.add(tagLoc, idx, evDef, 0)
	c.add(validLoc, idx, evDef, 0)
	c.add(dirtyLoc, idx, evDef, 0)
	// Finally the access itself (the load's read deduplicates against
	// the refill's def: the word was overwritten before it was read).
	if isStore {
		c.add(wordLoc(acc.Word), idx, evDef, 0)
		c.add(dirtyLoc, idx, evDef, 0)
	} else {
		c.add(wordLoc(acc.Word), idx, evUse, 0)
	}
	return true
}

// Index is the finished event index of one golden run, ready for Fate
// queries. It is immutable and safe for concurrent use.
type Index struct {
	events    [numLocs][]event
	total     uint64
	lineValid [cpu.CacheLines]bool
	lineDirty [cpu.CacheLines]bool
}

// Finish seals the capture into a queryable Index. total must be the
// golden run's instruction count. It returns nil when the capture
// cannot vouch for the run (decode failure, instruction count mismatch,
// or an index overflow) — callers then simply simulate everything.
func (c *Capture) Finish(total uint64) *Index {
	if c.bad || c.vm == nil || c.count != total || total >= 1<<31 {
		return nil
	}
	ix := &Index{events: c.events, total: total}
	for l := 0; l < cpu.CacheLines; l++ {
		_, valid, dirty := c.vm.Cache.LineState(l)
		ix.lineValid[l] = valid
		ix.lineDirty[l] = dirty
	}
	return ix
}

// Total returns the golden run's instruction count.
func (ix *Index) Total() uint64 { return ix.total }

// Key identifies a first-use equivalence class: every injection whose
// flipped bit first matters at dynamic instruction At, while residing
// in location Loc, reaches At in an identical machine state and shares
// one verdict. At == Total() means the end-of-run state comparison.
type Key struct {
	Loc uint32
	Bit uint
	At  uint64
}

// Fate is the analysis result for one injection.
type Fate struct {
	// Dead reports that the flip is provably erased before anything
	// reads it: the outcome equals the golden run's.
	Dead bool

	// Key is the injection's first-use equivalence class (zero when
	// Dead).
	Key Key
}

// Fate classifies the injection (bit, at). The boolean is false when
// the analysis cannot speak for this injection (unknown element or an
// out-of-range time); the campaign must then simulate it.
func (ix *Index) Fate(bit cpu.StateBit, at uint64) (Fate, bool) {
	loc, ok := locOf(bit)
	if !ok || at >= ix.total {
		return Fate{}, false
	}
	if loc == locPC {
		// The fetch reads the PC every instruction: a PC fault is
		// always first used by the faulted instruction itself.
		return Fate{Key: Key{Loc: loc, Bit: bit.Bit, At: at}}, true
	}
	evs := ix.events[loc][:]
	i := sort.Search(len(evs), func(j int) bool { return uint64(evs[j].idx) >= at })
	for {
		if i >= len(evs) {
			return ix.endFate(loc, bit.Bit), true
		}
		switch e := evs[i]; e.kind {
		case evDef:
			return Fate{Dead: true}, true
		case evUse:
			return Fate{Key: Key{Loc: loc, Bit: bit.Bit, At: uint64(e.idx)}}, true
		default: // evWB: follow the flip into its memory word
			ml, ok := memLoc(e.aux)
			if !ok {
				return Fate{}, false
			}
			after := uint64(e.idx)
			loc = ml
			evs = ix.events[loc][:]
			i = sort.Search(len(evs), func(j int) bool { return uint64(evs[j].idx) > after })
		}
	}
}

// endFate resolves a fault that survives to the end of the run without
// a single event: the final state comparison reads registers, PC,
// flags and the effective memory image, so most locations are still
// "used" at index Total(). Cache data words are the exception — a line
// that is not both valid and dirty never reaches the final image, so
// its flips are invisible.
func (ix *Index) endFate(loc uint32, bit uint) Fate {
	if loc >= locCacheBase && loc < locMemBase {
		rel := int(loc) - locCacheBase
		line, field := rel/locPerLine, rel%locPerLine
		if field >= 3 { // a data word
			if ix.lineValid[line] && ix.lineDirty[line] {
				return Fate{Key: Key{Loc: loc, Bit: bit, At: ix.total}}
			}
			return Fate{Dead: true}
		}
		// Metadata flips redirect or suppress the final overlay;
		// conservatively treat them as used by it.
		return Fate{Key: Key{Loc: loc, Bit: bit, At: ix.total}}
	}
	return Fate{Key: Key{Loc: loc, Bit: bit, At: ix.total}}
}
