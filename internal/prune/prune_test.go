package prune

import (
	"testing"

	"ctrlguard/internal/cpu"
)

// testIO is a no-op I/O bus for manually driven programs.
type testIO struct{}

func (testIO) ReadIO(off uint32) uint32  { return 0 }
func (testIO) WriteIO(off, v uint32)     {}

// captureRun executes the program to HALT under the capture's observer
// and returns the sealed index.
func captureRun(t *testing.T, p *cpu.Program) *Index {
	t.Helper()
	cap := NewCapture()
	obs := cap.Observer()
	c := cpu.New(p, testIO{})
	for steps := 0; !c.Halted(); steps++ {
		if steps > 10000 {
			t.Fatal("program did not halt")
		}
		obs(0, c.InstrCount(), c)
		if err := c.Step(); err != nil {
			t.Fatalf("golden run trapped: %v", err)
		}
	}
	ix := cap.Finish(c.InstrCount())
	if ix == nil {
		t.Fatal("Finish rejected a clean golden run")
	}
	return ix
}

func fate(t *testing.T, ix *Index, element string, bit uint, at uint64) Fate {
	t.Helper()
	region := cpu.RegionRegisters
	if element[0] == 'l' {
		region = cpu.RegionCache
	}
	f, ok := ix.Fate(cpu.StateBit{Region: region, Element: element, Bit: bit}, at)
	if !ok {
		t.Fatalf("Fate(%s:%d at %d) declined", element, bit, at)
	}
	return f
}

func TestFateRegisterDeadAndUsed(t *testing.T) {
	ix := captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 5
 MOVI r1, 6
 ADD r2, r1, r1
 HALT
`))
	// A flip in r1 present when instruction 0 (MOVI r1) begins is
	// overwritten before anything reads it.
	if f := fate(t, ix, "r1", 3, 0); !f.Dead {
		t.Errorf("r1 flip before its def: fate %+v, want dead", f)
	}
	if f := fate(t, ix, "r1", 3, 1); !f.Dead {
		t.Errorf("r1 flip before second def: fate %+v, want dead", f)
	}
	// A flip present when the ADD begins is read by the ADD.
	if f := fate(t, ix, "r1", 3, 2); f.Dead || f.Key.At != 2 {
		t.Errorf("r1 flip at the ADD: fate %+v, want first use at 2", f)
	}
	// A register the program never touches is still read by the final
	// state comparison.
	if f := fate(t, ix, "r9", 0, 1); f.Dead || f.Key.At != ix.Total() {
		t.Errorf("untouched r9: fate %+v, want end-of-run use at %d", f, ix.Total())
	}
	// Distinct bits of the same first use are distinct classes.
	a, b := fate(t, ix, "r1", 3, 2), fate(t, ix, "r1", 4, 2)
	if a.Key == b.Key {
		t.Error("different bits collapsed into one class key")
	}
}

func TestFatePCAlwaysTerminal(t *testing.T) {
	ix := captureRun(t, cpu.MustAssemble(".code\n NOP\n NOP\n HALT\n"))
	// The fetch reads the PC every instruction: the faulted instruction
	// itself is the first use.
	for at := uint64(0); at < 3; at++ {
		f := fate(t, ix, "pc", 2, at)
		if f.Dead || f.Key.At != at {
			t.Errorf("pc flip at %d: fate %+v, want first use at %d", at, f, at)
		}
	}
}

func TestFateFlags(t *testing.T) {
	ix := captureRun(t, cpu.MustAssemble(`
.code
 CMP r1, r2
skip:
 HALT
`))
	// A Z flip present when the CMP begins is overwritten by it.
	if f := fate(t, ix, "flagZ", 0, 0); !f.Dead {
		t.Errorf("flagZ before CMP: fate %+v, want dead", f)
	}
	// After the CMP nothing reads Z until the final state word.
	if f := fate(t, ix, "flagZ", 0, 1); f.Dead || f.Key.At != ix.Total() {
		t.Errorf("flagZ after CMP: fate %+v, want end-of-run use", f)
	}

	ix = captureRun(t, cpu.MustAssemble(`
.code
 CMP r1, r2
 BEQ done
 NOP
done:
 SIG
 HALT
`))
	// The BEQ (dynamic index 1) reads Z.
	if f := fate(t, ix, "flagZ", 0, 1); f.Dead || f.Key.At != 1 {
		t.Errorf("flagZ at the BEQ: fate %+v, want first use at 1", f)
	}
}

func TestFateCacheRefillKillsDataFlip(t *testing.T) {
	ix := captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 0x1000
 LD r2, 0(r1)
 HALT
.data
 .word 7
`))
	// The load at index 1 misses a cold cache: the refill overwrites
	// line0's data words before the load reads the word, so a flip
	// sitting in the invalid line's data is dead — even in the very
	// word being loaded.
	for _, el := range []string{"line0.data0", "line0.data3"} {
		if f := fate(t, ix, el, 13, 1); !f.Dead {
			t.Errorf("%s flip before a cold-miss load: fate %+v, want dead", el, f)
		}
	}
	// A flip in the invalid line's tag is never read either: the hit
	// check short-circuits on valid, the refill overwrites the tag.
	if f := fate(t, ix, "line0.tag", 2, 1); !f.Dead {
		t.Errorf("tag flip in an invalid line: fate %+v, want dead", f)
	}
	// The valid bit is what the hit check reads: first use at the load.
	if f := fate(t, ix, "line0.valid", 0, 1); f.Dead || f.Key.At != 1 {
		t.Errorf("valid flip: fate %+v, want first use at 1", f)
	}
}

func TestFateCacheHitReadsWord(t *testing.T) {
	ix := captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 0x1000
 LD r2, 0(r1)
 LD r3, 0(r1)
 HALT
.data
 .word 7
`))
	// After the first load fills the line, a flip in the cached word is
	// read by the second load (a hit) at index 2.
	if f := fate(t, ix, "line0.data0", 13, 2); f.Dead || f.Key.At != 2 {
		t.Errorf("cached word flip: fate %+v, want first use at 2", f)
	}
	// The hit check reads the tag of the now-valid line.
	if f := fate(t, ix, "line0.tag", 2, 2); f.Dead || f.Key.At != 2 {
		t.Errorf("valid line tag flip: fate %+v, want first use at 2", f)
	}
}

func TestFateWriteBackMigration(t *testing.T) {
	// ST dirties line0 with tag 0x1000; the conflicting load of 0x1080
	// (same line, different tag) evicts it, writing the flip back into
	// memory word 0x1004; the final load of 0x1004 misses again and
	// refills from memory — the first true read of the migrated flip.
	ix := captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 0x1000
 MOVI r2, 77
 ST r2, 4(r1)
 LD r3, 0x80(r1)
 LD r4, 4(r1)
 HALT
.data
 .word 1
 .word 2
 .word 3
 .word 4
`))
	f := fate(t, ix, "line0.data1", 6, 3)
	if f.Dead {
		t.Fatalf("dirty word flip was pruned dead across a write-back")
	}
	if f.Key.At != 4 {
		t.Errorf("migrated flip first used at %d, want the refill at 4", f.Key.At)
	}
	wantLoc, _ := memLoc(0x1004)
	if f.Key.Loc != wantLoc {
		t.Errorf("migrated flip tracked in loc %d, want memory word loc %d", f.Key.Loc, wantLoc)
	}

	// A flip in another word of the same dirty line also migrates, and
	// the refill at index 4 reads the whole 16-byte fill line — the
	// migrated word included — so it shares the same first-use time in
	// a different location.
	g := fate(t, ix, "line0.data3", 6, 3)
	if g.Dead || g.Key.At != 4 {
		t.Errorf("migrated sibling flip: fate %+v, want refill use at 4", g)
	}
	if g.Key.Loc == f.Key.Loc {
		t.Error("distinct migrated words collapsed into one location")
	}
}

func TestFateWriteBackSurvivesToFinalState(t *testing.T) {
	// The dirty victim's flip migrates to memory at the eviction and is
	// never read again: the final state comparison reads memory, so the
	// fate is an end-of-run use, not dead.
	ix := captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 0x1000
 MOVI r2, 77
 ST r2, 4(r1)
 LD r3, 0x80(r1)
 HALT
.data
 .word 1
 .word 2
`))
	f := fate(t, ix, "line0.data1", 6, 3)
	if f.Dead || f.Key.At != ix.Total() {
		t.Errorf("migrated-then-unread flip: fate %+v, want end-of-run use", f)
	}
	wantLoc, _ := memLoc(0x1004)
	if f.Key.Loc != wantLoc {
		t.Errorf("flip tracked in loc %d, want memory word loc %d", f.Key.Loc, wantLoc)
	}
}

func TestFateEndOfRunCacheVisibility(t *testing.T) {
	// The run ends with line0 resident and CLEAN (filled by a load,
	// never stored to): its data words never reach the final memory
	// image, so a late flip is dead; the metadata is conservatively
	// treated as used.
	ix := captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 0x1000
 LD r2, 0(r1)
 HALT
.data
 .word 7
`))
	if f := fate(t, ix, "line0.data2", 9, 2); !f.Dead {
		t.Errorf("flip in a clean resident line at the end: fate %+v, want dead", f)
	}
	if f := fate(t, ix, "line0.valid", 0, 2); f.Dead {
		t.Errorf("valid flip at the end: fate %+v, want conservative use", f)
	}

	// With a store the line ends dirty: its words are in the final
	// image.
	ix = captureRun(t, cpu.MustAssemble(`
.code
 MOVI r1, 0x1000
 MOVI r2, 9
 ST r2, 0(r1)
 HALT
.data
 .word 7
`))
	if f := fate(t, ix, "line0.data0", 9, 3); f.Dead || f.Key.At != ix.Total() {
		t.Errorf("flip in a dirty resident line at the end: fate %+v, want end-of-run use", f)
	}
}

func TestFateDeclines(t *testing.T) {
	ix := captureRun(t, cpu.MustAssemble(".code\n HALT\n"))
	if _, ok := ix.Fate(cpu.StateBit{Region: cpu.RegionRegisters, Element: "r1", Bit: 0}, ix.Total()); ok {
		t.Error("Fate accepted an out-of-range injection time")
	}
	if _, ok := ix.Fate(cpu.StateBit{Region: "bogus", Element: "x", Bit: 0}, 0); ok {
		t.Error("Fate accepted an unknown region")
	}
}

func TestFinishRejectsBadCaptures(t *testing.T) {
	// Wrong instruction total: the capture cannot vouch for the run.
	c := NewCapture()
	obs := c.Observer()
	vm := cpu.New(cpu.MustAssemble(".code\n NOP\n HALT\n"), testIO{})
	obs(0, vm.InstrCount(), vm)
	if err := vm.Step(); err != nil {
		t.Fatal(err)
	}
	if ix := c.Finish(99); ix != nil {
		t.Error("Finish accepted a capture that missed instructions")
	}

	// Never observed anything.
	if ix := NewCapture().Finish(0); ix != nil {
		t.Error("Finish accepted an empty capture")
	}

	// Out-of-order observations mark the capture bad.
	c2 := NewCapture()
	obs2 := c2.Observer()
	obs2(0, 1, vm)
	if ix := c2.Finish(1); ix != nil {
		t.Error("Finish accepted an out-of-order capture")
	}
}
