package prune

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"ctrlguard/internal/cpu"
)

// Cross-validation property test: the pruner's claims are checked
// against the machine itself on randomized programs. For every
// injection the analyzer marks DEAD, a full simulation must reproduce
// the golden run bit for bit; for every first-use equivalence class
// with two or more members, the members' full simulations must be
// bitwise identical to each other.
//
// Reproduction: the test is deterministic by default; set
// PRUNE_CROSSVAL_SEED to replay a failure and PRUNE_CROSSVAL_TRIALS to
// widen the search (e.g. PRUNE_CROSSVAL_TRIALS=200 go test -run
// CrossVal ./internal/prune/).

const crossvalBudget = 20000 // step budget per faulty simulation

// rawOutcome is the complete observable result of one run: how it
// ended, how long it took, and the architectural final state (registers,
// PC, flags, memory overlaid with dirty lines). Two runs with equal
// rawOutcomes are indistinguishable to any classifier.
type rawOutcome struct {
	steps  uint64
	halted bool
	trap   string
	state  []uint32
}

func (a rawOutcome) equal(b rawOutcome) bool {
	return a.steps == b.steps && a.halted == b.halted && a.trap == b.trap &&
		cpu.StatesEqual(a.state, b.state)
}

func (a rawOutcome) String() string {
	return fmt.Sprintf("{steps %d halted %v trap %q}", a.steps, a.halted, a.trap)
}

// simulate runs the program with a single bit flip applied when the
// instruction counter reaches at (inject == false runs it clean).
func simulate(t *testing.T, p *cpu.Program, inject bool, bit cpu.StateBit, at uint64) rawOutcome {
	t.Helper()
	c := cpu.New(p, testIO{})
	armed := inject
	for steps := 0; steps < crossvalBudget; steps++ {
		if armed && c.InstrCount() == at {
			if err := c.FlipBit(bit); err != nil {
				t.Fatalf("FlipBit(%v): %v", bit, err)
			}
			armed = false
		}
		if c.Halted() {
			break
		}
		if err := c.Step(); err != nil {
			return rawOutcome{steps: c.InstrCount(), trap: err.Error(), state: c.FinalState()}
		}
	}
	return rawOutcome{steps: c.InstrCount(), halted: c.Halted(), state: c.FinalState()}
}

// randomProgram emits a straight-line program over r2..r13,r15 with
// loads and stores spread across enough of the data segment to exercise
// cache conflicts, evictions and write-backs. r1 stays the data base
// register and r14 (SP) is untouched, so the golden run never traps.
func randomProgram(rng *rand.Rand) string {
	regs := []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15}
	r := func() int { return regs[rng.Intn(len(regs))] }
	// 1 KiB of data: 8 cache lines x 2 conflicting tags.
	const dataWords = 256
	off := func() int { return rng.Intn(dataWords) * 4 }

	var b strings.Builder
	b.WriteString(".code\n MOVI r1, 0x1000\n")
	n := 60 + rng.Intn(140)
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0, 1:
			fmt.Fprintf(&b, " MOVI r%d, %d\n", r(), rng.Intn(32768))
		case 2:
			fmt.Fprintf(&b, " ADD r%d, r%d, r%d\n", r(), r(), r())
		case 3:
			fmt.Fprintf(&b, " SUB r%d, r%d, r%d\n", r(), r(), r())
		case 4:
			fmt.Fprintf(&b, " AND r%d, r%d, r%d\n", r(), r(), r())
		case 5:
			fmt.Fprintf(&b, " OR r%d, r%d, r%d\n", r(), r(), r())
		case 6:
			fmt.Fprintf(&b, " XOR r%d, r%d, r%d\n", r(), r(), r())
		case 7:
			fmt.Fprintf(&b, " ADDI r%d, r%d, %d\n", r(), r(), rng.Intn(2048))
		case 8:
			fmt.Fprintf(&b, " CMP r%d, r%d\n", r(), r())
		case 9, 10:
			fmt.Fprintf(&b, " LD r%d, %d(r1)\n", r(), off())
		default:
			fmt.Fprintf(&b, " ST r%d, %d(r1)\n", r(), off())
		}
	}
	b.WriteString(" HALT\n.data\n")
	for i := 0; i < dataWords; i++ {
		fmt.Fprintf(&b, " .word %d\n", rng.Intn(1<<16))
	}
	return b.String()
}

func crossvalParams(t *testing.T) (seed int64, trials, samples int) {
	seed, trials, samples = 7, 10, 80
	if s := os.Getenv("PRUNE_CROSSVAL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad PRUNE_CROSSVAL_SEED %q: %v", s, err)
		}
		seed = v
	}
	if s := os.Getenv("PRUNE_CROSSVAL_TRIALS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad PRUNE_CROSSVAL_TRIALS %q", s)
		}
		trials = v
	}
	return seed, trials, samples
}

func TestCrossValPrunerAgainstSimulation(t *testing.T) {
	seed, trials, samples := crossvalParams(t)
	rng := rand.New(rand.NewSource(seed))
	bits := cpu.StateBits()

	var checkedDead, checkedClasses int
	for trial := 0; trial < trials; trial++ {
		src := randomProgram(rng)
		p, err := cpu.Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: assemble: %v", trial, err)
		}
		ix := captureRun(t, p)
		golden := simulate(t, p, false, cpu.StateBit{}, 0)
		if !golden.halted || golden.steps != ix.Total() {
			t.Fatalf("trial %d: golden run %v does not match the capture (%d instructions)",
				trial, golden, ix.Total())
		}

		classes := make(map[Key][]int) // key -> injection sample indices
		type sample struct {
			bit cpu.StateBit
			at  uint64
		}
		injections := make([]sample, samples)
		for i := range injections {
			injections[i] = sample{
				bit: bits[rng.Intn(len(bits))],
				at:  uint64(rng.Int63n(int64(ix.Total()))),
			}
			if i%3 != 0 {
				// Reuse the previous sample's bit at a fresh time: two
				// flips of the same bit whose windows reach the same
				// first use form exactly the class collision we want to
				// stress.
				injections[i].bit = injections[i-1].bit
			}
			f, ok := ix.Fate(injections[i].bit, injections[i].at)
			if !ok {
				continue
			}
			if f.Dead {
				// The pruner's central claim: a dead flip's run is
				// indistinguishable from the golden run.
				got := simulate(t, p, true, injections[i].bit, injections[i].at)
				if !got.equal(golden) {
					t.Fatalf("trial %d (seed %d): UNSOUND dead verdict for %s:%d at %d:\nfaulty %v\ngolden %v",
						trial, seed, injections[i].bit.Element, injections[i].bit.Bit,
						injections[i].at, got, golden)
				}
				checkedDead++
				continue
			}
			classes[f.Key] = append(classes[f.Key], i)
		}

		// Every multi-member class must be internally bitwise identical.
		for key, members := range classes {
			if len(members) < 2 {
				continue
			}
			rep := simulate(t, p, true, injections[members[0]].bit, injections[members[0]].at)
			for _, m := range members[1:] {
				got := simulate(t, p, true, injections[m].bit, injections[m].at)
				if !got.equal(rep) {
					t.Fatalf("trial %d (seed %d): UNSOUND class %+v: member %s:%d at %d gave %v, representative %s:%d at %d gave %v",
						trial, seed, key,
						injections[m].bit.Element, injections[m].bit.Bit, injections[m].at, got,
						injections[members[0]].bit.Element, injections[members[0]].bit.Bit,
						injections[members[0]].at, rep)
				}
			}
			checkedClasses++
		}
	}
	if checkedDead == 0 {
		t.Error("cross-validation never saw a dead verdict; generator is too tame")
	}
	if checkedClasses == 0 {
		t.Error("cross-validation never saw a multi-member class; generator is too tame")
	}
	t.Logf("cross-validated %d dead verdicts and %d equivalence classes over %d programs",
		checkedDead, checkedClasses, trials)
}
