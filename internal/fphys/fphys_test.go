package fphys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	tests := []struct {
		name      string
		v, lo, hi float64
		want      float64
	}{
		{"below", -1, 0, 70, 0},
		{"above", 71, 0, 70, 70},
		{"inside", 35, 0, 70, 35},
		{"at lower", 0, 0, 70, 0},
		{"at upper", 70, 0, 70, 70},
		{"negative range", -5, -10, -1, -5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
				t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestClamp32(t *testing.T) {
	if got := Clamp32(100, 0, 70); got != 70 {
		t.Errorf("Clamp32(100, 0, 70) = %v, want 70", got)
	}
	if got := Clamp32(-3, 0, 70); got != 0 {
		t.Errorf("Clamp32(-3, 0, 70) = %v, want 0", got)
	}
}

func TestClampPropertyResultInRange(t *testing.T) {
	f := func(v float64) bool {
		got := Clamp(v, 0, 70)
		return got >= 0 && got <= 70
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampPropertyIdempotent(t *testing.T) {
	f := func(v float64) bool {
		once := Clamp(v, -5, 5)
		twice := Clamp(once, -5, 5)
		return once == twice || (math.IsNaN(once) && math.IsNaN(twice))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInRange(t *testing.T) {
	tests := []struct {
		name      string
		v, lo, hi float64
		want      bool
	}{
		{"inside", 10, 0, 70, true},
		{"at bounds lo", 0, 0, 70, true},
		{"at bounds hi", 70, 0, 70, true},
		{"below", -0.001, 0, 70, false},
		{"above", 70.001, 0, 70, false},
		{"nan", math.NaN(), 0, 70, false},
		{"+inf", math.Inf(1), 0, 70, false},
		{"-inf", math.Inf(-1), 0, 70, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InRange(tt.v, tt.lo, tt.hi); got != tt.want {
				t.Errorf("InRange(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
			}
		})
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.05, 0.1) {
		t.Error("expected 1.0 ≈ 1.05 within 0.1")
	}
	if AlmostEqual(1.0, 1.2, 0.1) {
		t.Error("expected 1.0 !≈ 1.2 within 0.1")
	}
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN must never be almost equal")
	}
}

func TestFlipBit64RoundTrip(t *testing.T) {
	f := func(v float64, bit uint8) bool {
		i := uint(bit % 64)
		flipped := FlipBit64(v, i)
		back := FlipBit64(flipped, i)
		return math.Float64bits(back) == math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBit64ChangesValue(t *testing.T) {
	f := func(v float64, bit uint8) bool {
		i := uint(bit % 64)
		flipped := FlipBit64(v, i)
		return math.Float64bits(flipped) != math.Float64bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBit64OutOfRange(t *testing.T) {
	if got := FlipBit64(3.5, 64); got != 3.5 {
		t.Errorf("FlipBit64 out-of-range bit changed value: %v", got)
	}
}

func TestFlipBit64SignBit(t *testing.T) {
	if got := FlipBit64(1.0, 63); got != -1.0 {
		t.Errorf("flipping sign bit of 1.0 = %v, want -1.0", got)
	}
}

func TestFlipBit32RoundTrip(t *testing.T) {
	f := func(v float32, bit uint8) bool {
		i := uint(bit % 32)
		flipped := FlipBit32(v, i)
		back := FlipBit32(flipped, i)
		return math.Float32bits(back) == math.Float32bits(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipBit32OutOfRange(t *testing.T) {
	if got := FlipBit32(3.5, 32); got != 3.5 {
		t.Errorf("FlipBit32 out-of-range bit changed value: %v", got)
	}
}

func TestIsFiniteNumber(t *testing.T) {
	tests := []struct {
		name string
		v    float64
		want bool
	}{
		{"zero", 0, true},
		{"regular", 12.5, true},
		{"nan", math.NaN(), false},
		{"+inf", math.Inf(1), false},
		{"-inf", math.Inf(-1), false},
		{"max", math.MaxFloat64, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsFiniteNumber(tt.v); got != tt.want {
				t.Errorf("IsFiniteNumber(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}
