// Package fphys provides small numeric helpers shared across the
// repository: clamping, approximate comparison, and IEEE-754 bit
// manipulation used by variable-level fault injection.
package fphys

import "math"

// Clamp limits v to the closed interval [lo, hi].
// It requires lo <= hi; if lo > hi the result is unspecified but finite.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp32 limits v to the closed interval [lo, hi] in single precision.
func Clamp32(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InRange reports whether v lies in the closed interval [lo, hi].
// NaN is never in range.
func InRange(v, lo, hi float64) bool {
	return v >= lo && v <= hi
}

// AlmostEqual reports whether a and b differ by at most tol.
// NaN values are never almost equal to anything.
func AlmostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// FlipBit64 returns f with bit i (0 = least significant) of its IEEE-754
// double-precision representation inverted. This models a single-event
// upset in a memory word holding f. Bits outside [0, 63] leave f
// unchanged.
func FlipBit64(f float64, i uint) float64 {
	if i > 63 {
		return f
	}
	return math.Float64frombits(math.Float64bits(f) ^ (1 << i))
}

// FlipBit32 returns f with bit i (0 = least significant) of its IEEE-754
// single-precision representation inverted. Bits outside [0, 31] leave f
// unchanged.
func FlipBit32(f float32, i uint) float32 {
	if i > 31 {
		return f
	}
	return math.Float32frombits(math.Float32bits(f) ^ (1 << i))
}

// IsFiniteNumber reports whether f is neither NaN nor an infinity.
func IsFiniteNumber(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
