package core

import (
	"math"
	"testing"
)

func feed(t *testing.T, l *BoundsLearner, samples ...[]float64) {
	t.Helper()
	for _, s := range samples {
		if err := l.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLearnerEnvelope(t *testing.T) {
	l := NewBoundsLearner(2)
	feed(t, l, []float64{1, 10}, []float64{3, 8}, []float64{2, 12})
	min, max, rate := l.Learned()
	if min[0] != 1 || max[0] != 3 {
		t.Errorf("element 0 envelope = [%v, %v], want [1, 3]", min[0], max[0])
	}
	if min[1] != 8 || max[1] != 12 {
		t.Errorf("element 1 envelope = [%v, %v], want [8, 12]", min[1], max[1])
	}
	if rate[0] != 2 || rate[1] != 4 {
		t.Errorf("rates = %v, want [2, 4]", rate)
	}
}

func TestLearnerDimensionMismatch(t *testing.T) {
	l := NewBoundsLearner(2)
	if err := l.Observe([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestLearnerRejectsNonFinite(t *testing.T) {
	l := NewBoundsLearner(1)
	if err := l.Observe([]float64{math.NaN()}); err == nil {
		t.Error("expected error for NaN observation")
	}
	if err := l.Observe([]float64{math.Inf(1)}); err == nil {
		t.Error("expected error for Inf observation")
	}
}

func TestLearnerRangeAssertionMargin(t *testing.T) {
	l := NewBoundsLearner(1)
	feed(t, l, []float64{0}, []float64{10})
	a, err := l.RangeAssertionWithMargin(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Check(0, -1) || !a.Check(0, 11) {
		t.Error("margin not applied")
	}
	if a.Check(0, -1.5) || a.Check(0, 11.5) {
		t.Error("bounds too loose")
	}
}

func TestLearnerConstantElementGetsSlack(t *testing.T) {
	l := NewBoundsLearner(1)
	feed(t, l, []float64{5}, []float64{5}, []float64{5})
	a, err := l.RangeAssertionWithMargin(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Check(0, 5) {
		t.Error("learned bound rejects the observed constant")
	}
	if a.Check(0, 50) {
		t.Error("constant element bound absurdly loose")
	}
}

func TestLearnerRateAssertion(t *testing.T) {
	l := NewBoundsLearner(1)
	feed(t, l, []float64{0}, []float64{2}, []float64{3})
	a, err := l.RateAssertionWithMargin(2) // bound = 2×2 = 4
	if err != nil {
		t.Fatal(err)
	}
	if !a.Check(0, 1) || !a.Check(0, 4.5) {
		t.Error("small steps rejected")
	}
	if a.Check(0, 10) {
		t.Error("large jump accepted")
	}
}

func TestLearnerRateAssertionPerElement(t *testing.T) {
	// A fast element must not loosen a slow element's bound.
	l := NewBoundsLearner(2)
	feed(t, l, []float64{0, 0}, []float64{1, 1000}, []float64{2, 2000})
	a, err := l.RateAssertionWithMargin(2) // bounds: [2, 2000]
	if err != nil {
		t.Fatal(err)
	}
	if !a.Check(0, 1) {
		t.Fatal("seeding failed")
	}
	if a.Check(0, 10) {
		t.Error("slow element jump accepted; bound polluted by the fast element")
	}
	if !a.Check(1, 1500) {
		t.Error("fast element legitimate step rejected")
	}
}

func TestLearnerRateConstantElementGetsFallbackBound(t *testing.T) {
	l := NewBoundsLearner(2)
	feed(t, l, []float64{5, 0}, []float64{5, 3}, []float64{5, 6})
	a, err := l.RateAssertionWithMargin(2)
	if err != nil {
		t.Fatal(err)
	}
	a.Check(0, 5)
	if !a.Check(0, 7) { // within the fallback bound (3×2 = 6)
		t.Error("constant element pinned; fallback bound missing")
	}
	if a.Check(0, 50) {
		t.Error("constant element unbounded")
	}
}

func TestLearnerNoObservationsErrors(t *testing.T) {
	l := NewBoundsLearner(1)
	if _, err := l.RangeAssertionWithMargin(0.1); err == nil {
		t.Error("expected error with no observations")
	}
	if _, err := l.RateAssertionWithMargin(2); err == nil {
		t.Error("expected error with no rate history")
	}
}

func TestLearnerNextRunResetsRateHistory(t *testing.T) {
	l := NewBoundsLearner(1)
	feed(t, l, []float64{0}, []float64{1})
	l.NextRun()
	// The jump from 1 to 100 across runs must not count as a rate.
	feed(t, l, []float64{100}, []float64{100.5})
	_, _, rate := l.Learned()
	if rate[0] != 1 {
		t.Errorf("rate = %v, want 1 (cross-run jump excluded)", rate[0])
	}
}

func TestLearnerEndToEndWithGuard(t *testing.T) {
	// Learn bounds from a fake controller's healthy trajectory, then
	// verify the guard built from them passes healthy operation and
	// catches a corruption.
	l := NewBoundsLearner(1)
	x := 0.0
	for i := 0; i < 100; i++ {
		x += 0.5
		if err := l.Observe([]float64{x}); err != nil {
			t.Fatal(err)
		}
	}
	rng, err := l.RangeAssertionWithMargin(0.2)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := l.RateAssertionWithMargin(3)
	if err != nil {
		t.Fatal(err)
	}
	assert := All(rng, rate)

	ctrl := newFake(25)
	g := NewGuard(ctrl, assert)
	for i := 0; i < 10; i++ {
		if _, err := g.Step([]float64{0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().StateViolations != 0 {
		t.Fatalf("healthy run tripped learned assertions: %+v", g.Stats())
	}
	ctrl.x[0] = 49 // in learned range? envelope [0,50]+margin; jump of ~20 trips the rate bound
	g.Step([]float64{0.5})
	if g.Stats().StateViolations == 0 {
		t.Error("learned rate assertion missed an in-range jump")
	}
}
