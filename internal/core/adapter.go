package core

// GuardedController adapts a Guard to the Stateful interface so a
// guarded controller can be driven by the same closed-loop runners and
// fault-injection campaigns as a bare controller.
//
// Under the Rollback and Saturate policies Guard.Step never fails; the
// adapter is meant for those. Under FailStop a failed assertion makes
// Update repeat the last delivered output (the loop must keep actuating
// something) and counts the event in the guard's stats.
type GuardedController struct {
	guard *Guard
	lastU []float64
}

var _ Stateful = (*GuardedController)(nil)

// NewGuardedController wraps g.
func NewGuardedController(g *Guard) *GuardedController {
	return &GuardedController{guard: g}
}

// Guard returns the underlying guard (for stats).
func (gc *GuardedController) Guard() *Guard {
	return gc.guard
}

// State implements Stateful by exposing the wrapped controller's state.
func (gc *GuardedController) State() []float64 {
	return gc.guard.Controller().State()
}

// SetState implements Stateful by writing the wrapped controller's
// state — this is the fault-injection surface.
func (gc *GuardedController) SetState(x []float64) {
	gc.guard.Controller().SetState(x)
}

// Update implements Stateful via the guarded step.
func (gc *GuardedController) Update(inputs []float64) []float64 {
	u, err := gc.guard.Step(inputs)
	if err != nil {
		if gc.lastU == nil {
			gc.lastU = make([]float64, len(gc.guard.Controller().State()))
		}
		return append([]float64(nil), gc.lastU...)
	}
	gc.lastU = append(gc.lastU[:0], u...)
	return u
}
