package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// fakeController is a minimal Stateful used to observe the guard's
// behaviour precisely. Update adds each input to the matching state
// element and returns the state as output.
type fakeController struct {
	x []float64
}

func newFake(x ...float64) *fakeController {
	return &fakeController{x: append([]float64(nil), x...)}
}

func (f *fakeController) State() []float64 {
	return append([]float64(nil), f.x...)
}

func (f *fakeController) SetState(x []float64) {
	copy(f.x, x)
}

func (f *fakeController) Update(in []float64) []float64 {
	for i := range f.x {
		if i < len(in) {
			f.x[i] += in[i]
		}
	}
	return f.State()
}

func TestGuardHealthyPassThrough(t *testing.T) {
	ctrl := newFake(1, 2)
	g := NewGuard(ctrl, RangeAssertion{Min: -100, Max: 100})
	u, err := g.Step([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 2 || u[1] != 3 {
		t.Errorf("u = %v, want [2 3]", u)
	}
	if s := g.Stats(); s.StateViolations != 0 || s.OutputViolations != 0 {
		t.Errorf("healthy step recorded violations: %+v", s)
	}
}

func TestGuardStateRollback(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70})
	if _, err := g.Step([]float64{0}); err != nil {
		t.Fatal(err)
	}

	ctrl.x[0] = 1e9 // corrupt the state between iterations
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 {
		t.Errorf("u after rollback = %v, want 5 (recovered state)", u[0])
	}
	s := g.Stats()
	if s.StateViolations != 1 || s.StateRecoveries != 1 {
		t.Errorf("stats = %+v, want one state violation+recovery", s)
	}
}

func TestGuardOutputRollback(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70},
		WithOutputAssertion(RangeAssertion{Min: 0, Max: 10}))
	if _, err := g.Step([]float64{0}); err != nil { // healthy: u = 5
		t.Fatal(err)
	}
	u, err := g.Step([]float64{20}) // drives output to 25 > 10
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 {
		t.Errorf("u after output rollback = %v, want previous output 5", u[0])
	}
	if got := ctrl.State()[0]; got != 5 {
		t.Errorf("state after output rollback = %v, want restored 5", got)
	}
	if s := g.Stats(); s.OutputViolations != 1 || s.OutputRecoveries != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGuardFailStop(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70}, WithPolicy(FailStop))
	if _, err := g.Step([]float64{0}); err != nil {
		t.Fatal(err)
	}
	ctrl.x[0] = -999
	_, err := g.Step([]float64{0})
	if !errors.Is(err, ErrAssertionFailed) {
		t.Errorf("err = %v, want ErrAssertionFailed", err)
	}
}

func TestGuardFreezeStateViolationHoldsOutput(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70}, WithPolicy(Freeze))
	if _, err := g.Step([]float64{0}); err != nil { // healthy: u = 5
		t.Fatal(err)
	}

	ctrl.x[0] = 1e9 // corrupt the state between iterations
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 {
		t.Errorf("u under freeze = %v, want the held output 5", u[0])
	}
	// Freeze must not write the state back: the corruption persists.
	if ctrl.x[0] != 1e9 {
		t.Errorf("state = %v, want the corrupted 1e9 left alone", ctrl.x[0])
	}
	s := g.Stats()
	if s.StateViolations != 1 || s.StateRecoveries != 0 || s.OutputRecoveries != 1 {
		t.Errorf("stats = %+v, want 1 state violation, 0 state recoveries, 1 output hold", s)
	}
}

func TestGuardFreezeOutputViolationKeepsState(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70},
		WithPolicy(Freeze),
		WithOutputAssertion(RangeAssertion{Min: 0, Max: 10}))
	if _, err := g.Step([]float64{0}); err != nil { // healthy: u = 5
		t.Fatal(err)
	}

	// Push the output out of its range while the state stays legal.
	u, err := g.Step([]float64{20}) // update makes x = u = 25 > 10
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 {
		t.Errorf("u under freeze = %v, want the held output 5", u[0])
	}
	if ctrl.x[0] != 25 {
		t.Errorf("state = %v, want 25 (freeze leaves the update in place)", ctrl.x[0])
	}
}

func TestGuardFreezeFirstStepFallsBackToRollback(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70}, WithPolicy(Freeze))
	ctrl.x[0] = 1e9 // corrupt before any output exists
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 {
		t.Errorf("u = %v, want 5 (state recovered from the seed backup)", u[0])
	}
	if s := g.Stats(); s.StateRecoveries != 1 {
		t.Errorf("stats = %+v, want one state recovery", s)
	}
}

func TestGuardSaturatePolicy(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70}, WithPolicy(Saturate))
	if _, err := g.Step([]float64{0}); err != nil {
		t.Fatal(err)
	}
	ctrl.x[0] = 1000
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 70 {
		t.Errorf("u = %v, want saturated 70", u[0])
	}
}

func TestGuardSaturateNaNGoesToMin(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70}, WithPolicy(Saturate))
	if _, err := g.Step([]float64{0}); err != nil {
		t.Fatal(err)
	}
	ctrl.x[0] = math.NaN()
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 0 {
		t.Errorf("NaN saturated to %v, want 0", u[0])
	}
}

func TestGuardSaturateFallsBackToRollback(t *testing.T) {
	// Saturate cannot clamp with a FuncAssertion, so it must fall back
	// to rollback.
	ctrl := newFake(5)
	pos := FuncAssertion{CheckFunc: func(_ int, v float64) bool { return v >= 0 && v <= 70 }}
	g := NewGuard(ctrl, pos, WithPolicy(Saturate))
	if _, err := g.Step([]float64{0}); err != nil {
		t.Fatal(err)
	}
	ctrl.x[0] = -50
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != 5 {
		t.Errorf("u = %v, want rollback value 5", u[0])
	}
}

func TestGuardBackupTracksHealthyState(t *testing.T) {
	// The backup holds the state as it was at the *start* of the last
	// healthy iteration (x(k−1) in the paper), not its end.
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 1000})
	g.Step([]float64{10}) // reads 5, backup = 5, x: 5→15
	g.Step([]float64{10}) // reads 15, backup = 15, x: 15→25
	ctrl.x[0] = -1
	u, _ := g.Step([]float64{0})
	if u[0] != 15 {
		t.Errorf("recovered to %v, want backup 15 (state at start of last healthy iteration)", u[0])
	}
}

func TestGuardMultiElementRecoveryRestoresAll(t *testing.T) {
	// Per §4.3, a single invalid element triggers recovery of the
	// whole state vector.
	ctrl := newFake(1, 2, 3)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70})
	g.Step([]float64{0, 0, 0})
	ctrl.x = []float64{1, -999, 3.5}
	g.Step([]float64{0, 0, 0})
	got := ctrl.State()
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("state[%d] = %v, want %v (whole vector restored)", i, got[i], want[i])
		}
	}
}

func TestGuardFirstIterationOutputViolation(t *testing.T) {
	// An output violation on the very first iteration has no previous
	// output; the guard must still return something usable (the
	// zero-seeded backup) and not panic.
	ctrl := newFake(500)
	g := NewGuard(ctrl, RangeAssertion{Min: -1e9, Max: 1e9},
		WithOutputAssertion(RangeAssertion{Min: 0, Max: 70}))
	u, err := g.Step([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(u) != 1 {
		t.Fatalf("no output returned")
	}
}

func TestGuardStatsCountSteps(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70})
	for i := 0; i < 7; i++ {
		g.Step([]float64{0})
	}
	if g.Stats().Steps != 7 {
		t.Errorf("Steps = %d, want 7", g.Stats().Steps)
	}
}

func TestGuardResetBackups(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70})
	g.Step([]float64{10})
	ctrl.SetState([]float64{50})
	g.ResetBackups()
	if g.Stats().Steps != 0 {
		t.Error("ResetBackups must clear stats")
	}
	ctrl.x[0] = -1
	u, _ := g.Step([]float64{0})
	if u[0] != 50 {
		t.Errorf("recovered to %v, want reseeded backup 50", u[0])
	}
}

func TestGuardController(t *testing.T) {
	ctrl := newFake(5)
	g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70})
	if g.Controller() != Stateful(ctrl) {
		t.Error("Controller() did not return the wrapped controller")
	}
}

func TestPropertyGuardSaturateOutputAlwaysInRange(t *testing.T) {
	// Under the Saturate policy with range assertions on state and
	// output, the guarded output never leaves the range, whatever
	// corruption hits the state between steps.
	f := func(corrupt float64, steps uint8) bool {
		ctrl := newFake(5)
		g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70}, WithPolicy(Saturate))
		for i := 0; i < int(steps%20)+1; i++ {
			if i == 3 {
				ctrl.x[0] = corrupt
			}
			u, err := g.Step([]float64{0})
			if err != nil {
				return false
			}
			if u[0] < 0 || u[0] > 70 || u[0] != u[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGuardRollbackOutputFinite(t *testing.T) {
	// Under Rollback, whatever bit pattern lands in the state, the
	// delivered output is always finite.
	f := func(corrupt float64, at uint8) bool {
		ctrl := newFake(5)
		g := NewGuard(ctrl, RangeAssertion{Min: 0, Max: 70})
		for i := 0; i < 10; i++ {
			if i == int(at%10) {
				ctrl.x[0] = corrupt
			}
			u, err := g.Step([]float64{0})
			if err != nil {
				return false
			}
			if math.IsNaN(u[0]) || math.IsInf(u[0], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
