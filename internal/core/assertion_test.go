package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRangeAssertion(t *testing.T) {
	a := RangeAssertion{Min: 0, Max: 70}
	tests := []struct {
		name string
		v    float64
		want bool
	}{
		{"inside", 35, true},
		{"at min", 0, true},
		{"at max", 70, true},
		{"below", -0.1, false},
		{"above", 70.1, false},
		{"nan", math.NaN(), false},
		{"+inf", math.Inf(1), false},
		{"-inf", math.Inf(-1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Check(0, tt.v); got != tt.want {
				t.Errorf("Check(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestRangeAssertionName(t *testing.T) {
	a := RangeAssertion{Min: 0, Max: 70}
	if !strings.Contains(a.Name(), "0") || !strings.Contains(a.Name(), "70") {
		t.Errorf("Name() = %q should mention bounds", a.Name())
	}
}

func TestPerElementRange(t *testing.T) {
	a := PerElementRange{Min: []float64{0, -10}, Max: []float64{70, 10}}
	if !a.Check(0, 35) || a.Check(0, -1) {
		t.Error("element 0 bounds wrong")
	}
	if !a.Check(1, -5) || a.Check(1, 11) {
		t.Error("element 1 bounds wrong")
	}
	if !a.Check(5, 1e9) {
		t.Error("elements beyond configured bounds must pass")
	}
}

func TestFiniteAssertion(t *testing.T) {
	a := FiniteAssertion{}
	if !a.Check(0, 1e308) {
		t.Error("large finite value rejected")
	}
	if a.Check(0, math.NaN()) || a.Check(0, math.Inf(1)) {
		t.Error("non-finite value accepted")
	}
}

func TestRateAssertionFirstSampleSeeds(t *testing.T) {
	a := NewRateAssertion(1.0)
	if !a.Check(0, 100) {
		t.Error("first sample must pass")
	}
	if !a.Check(0, 100.5) {
		t.Error("small step rejected")
	}
	if a.Check(0, 150) {
		t.Error("large jump accepted")
	}
}

func TestRateAssertionRejectedValueDoesNotSeed(t *testing.T) {
	a := NewRateAssertion(1.0)
	a.Check(0, 10)
	if a.Check(0, 50) {
		t.Fatal("jump accepted")
	}
	// Reference must still be 10, so 10.5 is fine but 49.5 is not.
	if !a.Check(0, 10.5) {
		t.Error("value near old reference rejected; rejected value seeded history")
	}
}

func TestRateAssertionPerElementHistory(t *testing.T) {
	a := NewRateAssertion(1.0)
	a.Check(0, 10)
	a.Check(1, 500)
	if !a.Check(1, 500.5) {
		t.Error("element 1 history polluted by element 0")
	}
}

func TestRateAssertionReset(t *testing.T) {
	a := NewRateAssertion(1.0)
	a.Check(0, 10)
	a.Reset()
	if !a.Check(0, 99999) {
		t.Error("first check after reset must pass")
	}
}

func TestRateAssertionCatchesInRangeJump(t *testing.T) {
	// The Figure 10 scenario: x jumps from ≈10 to 69, both inside the
	// physical range. A range assertion misses it; a rate assertion
	// combined with it catches it.
	rng := RangeAssertion{Min: 0, Max: 70}
	rate := NewRateAssertion(5.0)
	combined := All(rng, rate)
	if !combined.Check(0, 10) {
		t.Fatal("healthy value rejected")
	}
	if rng.Check(0, 69) != true {
		t.Fatal("range assertion should miss the in-range jump")
	}
	if combined.Check(0, 69) {
		t.Error("combined assertion should catch the in-range jump")
	}
}

func TestFuncAssertion(t *testing.T) {
	a := FuncAssertion{CheckFunc: func(_ int, v float64) bool { return v > 0 }, Label: "positive"}
	if !a.Check(0, 1) || a.Check(0, -1) {
		t.Error("FuncAssertion did not delegate")
	}
	if a.Name() != "positive" {
		t.Errorf("Name() = %q", a.Name())
	}
	if (FuncAssertion{CheckFunc: a.CheckFunc}).Name() != "func" {
		t.Error("default label wrong")
	}
}

func TestAllConjunction(t *testing.T) {
	a := All(RangeAssertion{Min: 0, Max: 100}, RangeAssertion{Min: 50, Max: 200})
	if !a.Check(0, 75) {
		t.Error("value in both ranges rejected")
	}
	if a.Check(0, 25) || a.Check(0, 150) {
		t.Error("value outside one range accepted")
	}
	if !strings.Contains(a.Name(), "all(") {
		t.Errorf("Name() = %q", a.Name())
	}
}

func TestRangeAssertionProperty(t *testing.T) {
	a := RangeAssertion{Min: -1, Max: 1}
	f := func(v float64) bool {
		got := a.Check(0, v)
		want := v >= -1 && v <= 1
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerElementRate(t *testing.T) {
	a := NewPerElementRate([]float64{1, 1000})
	if !a.Check(0, 10) || !a.Check(1, 5000) {
		t.Fatal("first samples must pass")
	}
	if !a.Check(0, 10.5) {
		t.Error("small step on slow element rejected")
	}
	if a.Check(0, 15) {
		t.Error("large jump on slow element accepted")
	}
	if !a.Check(1, 5900) {
		t.Error("element 1 should tolerate a 900 step")
	}
	if a.Check(1, 8000) {
		t.Error("element 1 should reject a 2100 step")
	}
}

func TestPerElementRateBeyondBoundsAccepted(t *testing.T) {
	a := NewPerElementRate([]float64{1})
	if !a.Check(5, 1e9) {
		t.Error("elements beyond the bounds must pass")
	}
}

func TestPerElementRateRejectedDoesNotSeed(t *testing.T) {
	a := NewPerElementRate([]float64{1})
	a.Check(0, 10)
	if a.Check(0, 50) {
		t.Fatal("jump accepted")
	}
	if !a.Check(0, 10.5) {
		t.Error("reference polluted by rejected value")
	}
}

func TestPerElementRateReset(t *testing.T) {
	a := NewPerElementRate([]float64{1})
	a.Check(0, 10)
	a.Reset()
	if !a.Check(0, 99999) {
		t.Error("first check after reset must pass")
	}
}

func TestPerElementRateName(t *testing.T) {
	if NewPerElementRate(nil).Name() != "per-element-rate" {
		t.Error("name wrong")
	}
}
