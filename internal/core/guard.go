package core

import "errors"

// Stateful is the controller contract the guard protects. It matches
// control.Stateful structurally so any controller from package control
// (or a user's own) can be wrapped without an adapter.
type Stateful interface {
	State() []float64
	SetState(x []float64)
	Update(inputs []float64) []float64
}

// RecoveryPolicy selects what the guard does when an assertion fails.
type RecoveryPolicy int

const (
	// Rollback is the paper's best effort recovery: replace the
	// offending vector with the copy backed up during the previous
	// iteration.
	Rollback RecoveryPolicy = iota + 1

	// FailStop turns an assertion failure into an error from Step,
	// modelling a node with fail-stop semantics (the conventional
	// alternative the paper argues against for control loops).
	FailStop

	// Saturate clamps each offending element into the assertion's
	// range when the assertion is a RangeAssertion or
	// PerElementRange; other assertions fall back to Rollback.
	Saturate

	// Freeze holds the last accepted output for the offending
	// iteration without writing the state back: on a state violation
	// the controller update is skipped entirely and the previous
	// output is delivered again; on an output violation the previous
	// output replaces the rejected one but the state is left as the
	// update wrote it. Freeze is the cheapest recovery (no state
	// writes), at the price of letting a corrupted state persist —
	// a distinct point in the cost/coverage design space the tuner
	// explores. Before any output exists to hold, Freeze falls back
	// to Rollback.
	Freeze
)

// ErrAssertionFailed is returned by Guard.Step under the FailStop
// policy when an executable assertion rejects the state or the output.
var ErrAssertionFailed = errors.New("core: executable assertion failed")

// GuardStats counts the guard's interventions.
type GuardStats struct {
	Steps            int // total Step calls
	StateViolations  int // iterations whose state assertion failed
	OutputViolations int // iterations whose output assertion failed
	StateRecoveries  int // state rollbacks performed
	OutputRecoveries int // output rollbacks performed
}

// Guard wraps a Stateful controller with the generalised
// assertion + backup + best effort recovery scheme of §4.3:
//
//  1. Before backing up any state x_i(k), assert it. On failure,
//     recover every state element from the previous backup; otherwise
//     back the state up.
//  2. Before returning the outputs u_j(k), assert them. On failure,
//     deliver the previous outputs and restore the corresponding state.
//  3. Back up the output signals.
//  4. Return the output signals.
type Guard struct {
	ctrl        Stateful
	stateAssert Assertion
	outAssert   Assertion
	policy      RecoveryPolicy

	xBackup []float64
	uBackup []float64
	stats   GuardStats
}

// GuardOption customises a Guard.
type GuardOption func(*Guard)

// WithPolicy selects the recovery policy (default Rollback).
func WithPolicy(p RecoveryPolicy) GuardOption {
	return func(g *Guard) { g.policy = p }
}

// WithOutputAssertion sets the assertion applied to the output vector.
// By default the state assertion is reused.
func WithOutputAssertion(a Assertion) GuardOption {
	return func(g *Guard) { g.outAssert = a }
}

// NewGuard wraps ctrl with stateAssert applied to its state vector. The
// initial backups are seeded from the controller's current (healthy)
// state.
func NewGuard(ctrl Stateful, stateAssert Assertion, opts ...GuardOption) *Guard {
	g := &Guard{
		ctrl:        ctrl,
		stateAssert: stateAssert,
		outAssert:   stateAssert,
		policy:      Rollback,
		xBackup:     ctrl.State(),
	}
	for _, opt := range opts {
		opt(g)
	}
	return g
}

// Step runs one guarded control iteration. Under FailStop it returns
// ErrAssertionFailed when an assertion rejects the state or output; the
// other policies always return a usable output.
func (g *Guard) Step(inputs []float64) ([]float64, error) {
	g.stats.Steps++

	// Step 1: assert the state before backing it up.
	x := g.ctrl.State()
	if bad := firstViolation(g.stateAssert, x); bad >= 0 {
		g.stats.StateViolations++
		switch g.policy {
		case FailStop:
			return nil, ErrAssertionFailed
		case Freeze:
			if g.uBackup != nil {
				// Hold the previous output and skip the update;
				// the suspect state is deliberately left alone.
				g.stats.OutputRecoveries++
				u := make([]float64, len(g.uBackup))
				copy(u, g.uBackup)
				return u, nil
			}
			// Nothing delivered yet to hold: recover the state.
			g.ctrl.SetState(g.xBackup)
			g.stats.StateRecoveries++
		case Saturate:
			if sat, ok := saturate(g.stateAssert, x); ok {
				g.ctrl.SetState(sat)
				g.stats.StateRecoveries++
				copy(g.xBackup, sat)
				break
			}
			fallthrough
		default: // Rollback
			g.ctrl.SetState(g.xBackup)
			g.stats.StateRecoveries++
		}
	} else {
		copy(g.xBackup, x)
	}

	u := g.ctrl.Update(inputs)
	if g.uBackup == nil {
		g.uBackup = make([]float64, len(u))
		copy(g.uBackup, u)
	}

	// Step 2: assert the outputs before returning them.
	if bad := firstViolation(g.outAssert, u); bad >= 0 {
		g.stats.OutputViolations++
		switch g.policy {
		case FailStop:
			return nil, ErrAssertionFailed
		case Freeze: // previous output, state left as the update wrote it
			copy(u, g.uBackup)
			g.stats.OutputRecoveries++
		case Saturate:
			if sat, ok := saturate(g.outAssert, u); ok {
				u = sat
				g.stats.OutputRecoveries++
				break
			}
			fallthrough
		default: // Rollback: previous output and its matching state.
			copy(u, g.uBackup)
			g.ctrl.SetState(g.xBackup)
			g.stats.OutputRecoveries++
		}
	}

	// Step 3: back up the outputs. Step 4: return them.
	copy(g.uBackup, u)
	return u, nil
}

// Stats returns the intervention counters.
func (g *Guard) Stats() GuardStats {
	return g.stats
}

// Controller returns the wrapped controller.
func (g *Guard) Controller() Stateful {
	return g.ctrl
}

// ResetBackups reseeds the backups from the controller's current state,
// for use after an external Reset of the wrapped controller.
func (g *Guard) ResetBackups() {
	g.xBackup = g.ctrl.State()
	g.uBackup = nil
	g.stats = GuardStats{}
}

// firstViolation returns the index of the first element rejected by a,
// or -1 if all pass. A VectorAssertion's whole-vector check runs first;
// its rejection is attributed to element 0.
func firstViolation(a Assertion, v []float64) int {
	if va, ok := a.(VectorAssertion); ok {
		if !va.CheckVector(v) {
			return 0
		}
	}
	for i, x := range v {
		if !a.Check(i, x) {
			return i
		}
	}
	return -1
}

// saturate clamps each element into the assertion's interval when the
// assertion carries one. The bool result reports whether saturation was
// possible.
func saturate(a Assertion, v []float64) ([]float64, bool) {
	out := append([]float64(nil), v...)
	switch ra := a.(type) {
	case RangeAssertion:
		for i, x := range out {
			if x < ra.Min || x != x { // x != x catches NaN
				out[i] = ra.Min
			} else if x > ra.Max {
				out[i] = ra.Max
			}
		}
		return out, true
	case PerElementRange:
		for i, x := range out {
			if i >= len(ra.Min) || i >= len(ra.Max) {
				continue
			}
			if x < ra.Min[i] || x != x {
				out[i] = ra.Min[i]
			} else if x > ra.Max[i] {
				out[i] = ra.Max[i]
			}
		}
		return out, true
	default:
		return nil, false
	}
}
