package core

import (
	"errors"
	"fmt"
	"math"
)

// BoundsLearner derives executable assertions from fault-free
// operation: it records the envelope (min/max) and the worst
// per-sample rate of change of every state element over one or more
// reference runs, then emits range and rate assertions with a safety
// margin. This automates the paper's manual step of finding "the
// physical constraints of the controlled object", and the learned rate
// bound addresses the in-range corruptions the paper's Figure 10 shows
// escaping a pure range assertion.
type BoundsLearner struct {
	min, max []float64
	rate     []float64
	prev     []float64
	samples  int
}

// NewBoundsLearner creates a learner for state vectors of dimension n.
func NewBoundsLearner(n int) *BoundsLearner {
	l := &BoundsLearner{
		min:  make([]float64, n),
		max:  make([]float64, n),
		rate: make([]float64, n),
		prev: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		l.min[i] = math.Inf(1)
		l.max[i] = math.Inf(-1)
	}
	return l
}

// Observe records one state sample. Calling it with a vector of the
// wrong length returns an error. Successive calls within one run feed
// the rate envelope; call NextRun between runs so the jump from the
// final state of one run to the initial state of another does not
// pollute the rate bound.
func (l *BoundsLearner) Observe(x []float64) error {
	if len(x) != len(l.min) {
		return fmt.Errorf("core: observed state has dimension %d, want %d", len(x), len(l.min))
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("core: non-finite value in a reference run; refusing to learn from it")
		}
		if v < l.min[i] {
			l.min[i] = v
		}
		if v > l.max[i] {
			l.max[i] = v
		}
		if l.samples > 0 {
			if d := math.Abs(v - l.prev[i]); d > l.rate[i] {
				l.rate[i] = d
			}
		}
	}
	copy(l.prev, x)
	l.samples++
	return nil
}

// NextRun resets the rate history between reference runs.
func (l *BoundsLearner) NextRun() {
	l.samples = 0
}

// Samples returns the number of observations so far.
func (l *BoundsLearner) Samples() int {
	return l.samples
}

// RangeAssertionWithMargin returns a per-element range assertion whose
// bounds are the observed envelope widened by margin (a fraction of the
// envelope's width; 0.1 widens each side by 10 % of the width).
// Elements that never varied get a minimum absolute slack so the
// assertion is not degenerate.
func (l *BoundsLearner) RangeAssertionWithMargin(margin float64) (Assertion, error) {
	if l.samples == 0 && l.min[0] > l.max[0] {
		return nil, errors.New("core: no observations to learn bounds from")
	}
	lo := make([]float64, len(l.min))
	hi := make([]float64, len(l.min))
	for i := range l.min {
		width := l.max[i] - l.min[i]
		slack := width * margin
		if slack == 0 {
			slack = math.Max(math.Abs(l.max[i])*margin, 1e-9)
		}
		lo[i] = l.min[i] - slack
		hi[i] = l.max[i] + slack
	}
	return PerElementRange{Min: lo, Max: hi}, nil
}

// RateAssertionWithMargin returns a per-element rate assertion: each
// element's bound is its own worst observed per-sample change scaled by
// factor (use ≥ 2 for safety; transient conditions not seen during
// learning may change the state faster). Per-element bounds matter when
// the state mixes slow and fast dynamics — a global bound set by the
// fastest element would be blind to jumps in the slow ones. Elements
// that never changed get the largest observed bound so they are not
// pinned.
func (l *BoundsLearner) RateAssertionWithMargin(factor float64) (Assertion, error) {
	worst := 0.0
	for _, r := range l.rate {
		if r > worst {
			worst = r
		}
	}
	if worst == 0 {
		return nil, errors.New("core: observed no state changes; cannot learn a rate bound")
	}
	bounds := make([]float64, len(l.rate))
	for i, r := range l.rate {
		if r == 0 {
			r = worst
		}
		bounds[i] = r * factor
	}
	return NewPerElementRate(bounds), nil
}

// Learned returns the raw envelope for inspection.
func (l *BoundsLearner) Learned() (min, max, rate []float64) {
	return append([]float64(nil), l.min...),
		append([]float64(nil), l.max...),
		append([]float64(nil), l.rate...)
}
