package core

import "reflect"

// Cloning support for warm-started variable-level campaigns: a guarded
// controller snapshotted mid-run must carry its backups and the history
// of its stateful assertions, or a resumed experiment could recover to
// different values than a full replay and break the campaigns'
// byte-identical-results guarantee. Anything that cannot be cloned
// faithfully declines (nil / false), and campaigns fall back to full
// replay — slower, never wrong.

// AssertionCloner is implemented by assertions that can be deep-copied
// mid-run. Stateless value assertions (RangeAssertion, PerElementRange,
// FiniteAssertion) do not need it: they are shared as-is. A nil return
// means the assertion declines to be cloned.
type AssertionCloner interface {
	CloneAssertion() Assertion
}

// CloneAssertion implements AssertionCloner: an independent copy with
// the same reference history.
func (a *RateAssertion) CloneAssertion() Assertion {
	cp := NewRateAssertion(a.MaxDelta)
	for k, v := range a.prev {
		cp.prev[k] = v
	}
	for k := range a.seeded {
		cp.seeded[k] = true
	}
	return cp
}

// CloneAssertion implements AssertionCloner.
func (a *PerElementRate) CloneAssertion() Assertion {
	cp := NewPerElementRate(a.MaxDelta)
	for k, v := range a.prev {
		cp.prev[k] = v
	}
	for k := range a.seeded {
		cp.seeded[k] = true
	}
	return cp
}

// CloneAssertion implements AssertionCloner, cloning every conjunct; it
// returns nil when any conjunct cannot be cloned.
func (a allAssertion) CloneAssertion() Assertion {
	cp := make(allAssertion, len(a))
	for i, sub := range a {
		c, ok := cloneAssertion(sub)
		if !ok {
			return nil
		}
		cp[i] = c
	}
	return cp
}

// cloneAssertion returns an independent copy of a, or false when a
// faithful copy cannot be guaranteed (e.g. a FuncAssertion whose
// closure may capture mutable state).
func cloneAssertion(a Assertion) (Assertion, bool) {
	switch v := a.(type) {
	case AssertionCloner:
		if c := v.CloneAssertion(); c != nil {
			return c, true
		}
		return nil, false
	case RangeAssertion, PerElementRange, FiniteAssertion:
		// Value types whose Check never mutates them: safe to share.
		return a, true
	default:
		return nil, false
	}
}

// sameAssertion reports whether two assertion interface values refer to
// the same underlying object. It deliberately avoids interface
// equality, which panics for uncomparable dynamic types (allAssertion
// is a slice).
func sameAssertion(a, b Assertion) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	if va.Type() != vb.Type() {
		return false
	}
	switch va.Kind() {
	case reflect.Pointer:
		return va.Pointer() == vb.Pointer()
	case reflect.Slice:
		return va.Pointer() == vb.Pointer() && va.Len() == vb.Len()
	default:
		// Distinct value copies are indistinguishable, and stateless,
		// so treating them as different is always safe.
		return false
	}
}

// cloneStateful clones a controller through the CloneStateful() any
// convention (see package control).
func cloneStateful(c Stateful) (Stateful, bool) {
	cl, ok := c.(interface{ CloneStateful() any })
	if !ok {
		return nil, false
	}
	v := cl.CloneStateful()
	if v == nil {
		return nil, false
	}
	s, ok := v.(Stateful)
	return s, ok
}

// Clone returns an independent guard — wrapped controller, assertion
// history, backups and stats — or false when any part declines to be
// cloned.
func (g *Guard) Clone() (*Guard, bool) {
	ctrl, ok := cloneStateful(g.ctrl)
	if !ok {
		return nil, false
	}
	sa, ok := cloneAssertion(g.stateAssert)
	if !ok {
		return nil, false
	}
	oa := sa
	// NewGuard reuses the state assertion for the output by default;
	// preserve that aliasing so a stateful assertion keeps seeing both
	// vectors through one history, exactly like the original.
	if !sameAssertion(g.stateAssert, g.outAssert) {
		if oa, ok = cloneAssertion(g.outAssert); !ok {
			return nil, false
		}
	}
	cp := &Guard{
		ctrl:        ctrl,
		stateAssert: sa,
		outAssert:   oa,
		policy:      g.policy,
		xBackup:     append([]float64(nil), g.xBackup...),
		stats:       g.stats,
	}
	if g.uBackup != nil {
		cp.uBackup = append([]float64(nil), g.uBackup...)
	}
	return cp, true
}

// CloneStateful lets a guarded controller participate in warm-started
// campaigns; it returns nil when the guard cannot be cloned faithfully.
func (gc *GuardedController) CloneStateful() any {
	g, ok := gc.guard.Clone()
	if !ok {
		return nil
	}
	cp := &GuardedController{guard: g}
	if gc.lastU != nil {
		cp.lastU = append([]float64(nil), gc.lastU...)
	}
	return cp
}
