// Package core implements the paper's primary contribution in reusable
// form: executable assertions on controller state variables and output
// signals, combined with best effort recovery from backed-up copies.
// The Guard type implements the generalised four-step scheme of §4.3 of
// the paper for controllers with an arbitrary number of state variables
// and output signals.
package core

import (
	"fmt"
	"math"
)

// Assertion is an executable assertion: a software-implemented check
// verifying that a variable fulfils limitations given by a
// specification (footnote 2 of the paper). Check receives the index of
// the variable within its vector and the value.
type Assertion interface {
	// Check reports whether element i with value v is acceptable.
	Check(i int, v float64) bool

	// Name identifies the assertion in diagnostics.
	Name() string
}

// RangeAssertion accepts values inside a closed interval, the physical
// constraint the paper uses (throttle limits 0.0–70.0 degrees). NaN and
// infinities are always rejected.
type RangeAssertion struct {
	Min, Max float64
}

var _ Assertion = RangeAssertion{}

// Check implements Assertion.
func (a RangeAssertion) Check(_ int, v float64) bool {
	return v >= a.Min && v <= a.Max
}

// Name implements Assertion.
func (a RangeAssertion) Name() string {
	return fmt.Sprintf("range[%g,%g]", a.Min, a.Max)
}

// PerElementRange applies a distinct closed interval to each element of
// the vector, for heterogeneous state vectors (e.g. a MIMO controller
// whose states have different physical meanings). Elements beyond the
// configured bounds are accepted.
type PerElementRange struct {
	Min, Max []float64
}

var _ Assertion = PerElementRange{}

// Check implements Assertion.
func (a PerElementRange) Check(i int, v float64) bool {
	if i >= len(a.Min) || i >= len(a.Max) {
		return true
	}
	return v >= a.Min[i] && v <= a.Max[i]
}

// Name implements Assertion.
func (a PerElementRange) Name() string {
	return "per-element-range"
}

// FiniteAssertion rejects NaN and infinities — the weakest physically
// meaningful assertion, useful when tight bounds are unknown.
type FiniteAssertion struct{}

var _ Assertion = FiniteAssertion{}

// Check implements Assertion.
func (FiniteAssertion) Check(_ int, v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Name implements Assertion.
func (FiniteAssertion) Name() string {
	return "finite"
}

// RateAssertion bounds the change of each element since the previous
// accepted value: |v − prev| ≤ MaxDelta. It is stateful; the first
// check of each element always passes and seeds the history. Rate
// assertions catch in-range corruptions that a pure range assertion
// misses (the Figure 10 failure mode of the paper).
type RateAssertion struct {
	MaxDelta float64

	prev   map[int]float64
	seeded map[int]bool
}

var _ Assertion = (*RateAssertion)(nil)

// NewRateAssertion creates a rate-of-change assertion.
func NewRateAssertion(maxDelta float64) *RateAssertion {
	return &RateAssertion{
		MaxDelta: maxDelta,
		prev:     make(map[int]float64),
		seeded:   make(map[int]bool),
	}
}

// Check implements Assertion. Accepted values become the new reference
// for element i; rejected values leave the reference unchanged.
func (a *RateAssertion) Check(i int, v float64) bool {
	if !a.seeded[i] {
		a.seeded[i] = true
		a.prev[i] = v
		return true
	}
	if math.Abs(v-a.prev[i]) > a.MaxDelta {
		return false
	}
	a.prev[i] = v
	return true
}

// Name implements Assertion.
func (a *RateAssertion) Name() string {
	return fmt.Sprintf("rate[%g]", a.MaxDelta)
}

// Reset clears the rate assertion's history.
func (a *RateAssertion) Reset() {
	a.prev = make(map[int]float64)
	a.seeded = make(map[int]bool)
}

// PerElementRate bounds the change of each element with a distinct
// limit, for state vectors whose elements have very different dynamics
// (an integrator moves by degrees per sample, a derivative state by
// thousands). Elements beyond the configured bounds are accepted.
// Like RateAssertion it is stateful: the first check of each element
// seeds its history, and rejected values do not update it.
type PerElementRate struct {
	MaxDelta []float64

	prev   map[int]float64
	seeded map[int]bool
}

var _ Assertion = (*PerElementRate)(nil)

// NewPerElementRate creates a per-element rate assertion.
func NewPerElementRate(maxDelta []float64) *PerElementRate {
	return &PerElementRate{
		MaxDelta: append([]float64(nil), maxDelta...),
		prev:     make(map[int]float64),
		seeded:   make(map[int]bool),
	}
}

// Check implements Assertion.
func (a *PerElementRate) Check(i int, v float64) bool {
	if i >= len(a.MaxDelta) {
		return true
	}
	if !a.seeded[i] {
		a.seeded[i] = true
		a.prev[i] = v
		return true
	}
	if math.Abs(v-a.prev[i]) > a.MaxDelta[i] {
		return false
	}
	a.prev[i] = v
	return true
}

// Name implements Assertion.
func (a *PerElementRate) Name() string {
	return "per-element-rate"
}

// Reset clears the assertion's history.
func (a *PerElementRate) Reset() {
	a.prev = make(map[int]float64)
	a.seeded = make(map[int]bool)
}

// FuncAssertion adapts a plain function to the Assertion interface.
type FuncAssertion struct {
	CheckFunc func(i int, v float64) bool
	Label     string
}

var _ Assertion = FuncAssertion{}

// Check implements Assertion.
func (a FuncAssertion) Check(i int, v float64) bool {
	return a.CheckFunc(i, v)
}

// Name implements Assertion.
func (a FuncAssertion) Name() string {
	if a.Label == "" {
		return "func"
	}
	return a.Label
}

// VectorAssertion is the optional vector-level extension of Assertion
// for checks that depend on the whole vector at once rather than one
// element at a time — state-sequence automata mined from golden traces
// (internal/detect) validate the transition of the full state vector.
// When an assertion given to a Guard also implements VectorAssertion,
// the guard evaluates CheckVector over the candidate vector before the
// per-element checks; a rejection counts as a violation of element 0.
type VectorAssertion interface {
	Assertion

	// CheckVector reports whether the vector as a whole is acceptable.
	// Like the stateful element assertions, accepted vectors may
	// advance internal history; rejected ones must leave it unchanged.
	CheckVector(v []float64) bool
}

// All combines assertions conjunctively: a value is acceptable only if
// every assertion accepts it.
func All(asserts ...Assertion) Assertion {
	return allAssertion(asserts)
}

type allAssertion []Assertion

var _ Assertion = allAssertion(nil)

func (a allAssertion) Check(i int, v float64) bool {
	for _, sub := range a {
		if !sub.Check(i, v) {
			return false
		}
	}
	return true
}

// CheckVector forwards the whole-vector check to every member that
// implements VectorAssertion (a no-op conjunction otherwise).
func (a allAssertion) CheckVector(v []float64) bool {
	for _, sub := range a {
		if va, ok := sub.(VectorAssertion); ok && !va.CheckVector(v) {
			return false
		}
	}
	return true
}

func (a allAssertion) Name() string {
	name := "all("
	for i, sub := range a {
		if i > 0 {
			name += ","
		}
		name += sub.Name()
	}
	return name + ")"
}
