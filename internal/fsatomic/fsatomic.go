// Package fsatomic provides crash-safe file replacement: write to a
// temporary file in the target directory, fsync it, then rename it over
// the destination and fsync the directory. A reader therefore always
// sees either the old complete file or the new complete file — never a
// torn intermediate — no matter where a crash or power loss lands.
//
// This is the classic write-temp/fsync/rename discipline every durable
// store uses; the campaign record files and the job journal's
// compaction both go through it so a kill -9 can never leave a
// half-written result behind.
package fsatomic

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// On any error the destination is left untouched and the temporary file
// is removed.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fsatomic: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsatomic: close %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("fsatomic: rename %s -> %s: %w", tmpName, path, err)
	}
	// Persist the rename itself. Directory fsync is advisory on some
	// filesystems; failure to open the directory is not fatal.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// SyncDir fsyncs a directory, persisting rename/create/unlink entries
// within it. Unlike the advisory directory sync inside WriteFile, every
// failure is reported — callers that must know the rename is durable
// before acting on it (the journal's compaction) use this.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsatomic: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsatomic: fsync dir %s: %w", dir, err)
	}
	return nil
}
