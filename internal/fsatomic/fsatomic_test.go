package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "first\n" {
		t.Fatalf("content = %q", b)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "second\n" {
		t.Fatalf("content after replace = %q", b)
	}
}

// TestWriteFileFailureLeavesOldContent is the chaos case: the write
// callback fails partway (a short write followed by an error, like a
// full disk or injected store fault). The destination must keep its
// previous complete content and no temp litter may remain.
func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	if err := os.WriteFile(path, []byte("intact\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected short write")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half a rec") // short write lands in the temp file only
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "intact\n" {
		t.Fatalf("destination corrupted: %q", b)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a real directory: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory: want error")
	}
}

func TestWriteFileCreatesMissingTarget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
