package cpu

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Program is an assembled program image: code and the initial data
// segment, plus the symbol tables for diagnostics and for locating
// variables in experiments.
type Program struct {
	Code       []uint32
	Data       []uint32
	CodeLabels map[string]uint32 // label -> absolute code address
	DataLabels map[string]uint32 // label -> absolute data address
}

// DataAddr returns the absolute address of a data label.
func (p *Program) DataAddr(label string) (uint32, bool) {
	a, ok := p.DataLabels[label]
	return a, ok
}

// Assemble translates assembly source to a Program.
//
// Syntax:
//
//	; or # start a comment
//	.code / .data          switch section
//	label:                 define a label (own line or before stmt)
//	.word N  /  .float F   emit initialised data (data section)
//	MOVI r1, 123           immediates: decimal, 0x-hex, =label
//	LD r1, 8(r2)           memory operand: offset(reg)
//	LD r1, @x(r10)         @x = offset of data label x from DataBase
//	BEQ target             branch/jump targets are code labels
//
// Every branch, jump and call target must be a SIG instruction (the
// control-flow-checking landing pad); Assemble rejects programs that
// violate this.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		codeLabels: make(map[string]uint32),
		dataLabels: make(map[string]uint32),
	}
	if err := a.firstPass(src); err != nil {
		return nil, err
	}
	if err := a.secondPass(src); err != nil {
		return nil, err
	}
	if err := a.checkLandingPads(); err != nil {
		return nil, err
	}
	return &Program{
		Code:       a.code,
		Data:       a.data,
		CodeLabels: a.codeLabels,
		DataLabels: a.dataLabels,
	}, nil
}

// MustAssemble is Assemble for known-good embedded sources; it panics
// on error, which can only happen from a programming mistake in this
// repository.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	code       []uint32
	data       []uint32
	codeLabels map[string]uint32
	dataLabels map[string]uint32

	// jumpTargets records (source line, target address) of every
	// control transfer for the landing-pad validation.
	jumpTargets []jumpRef
}

type jumpRef struct {
	line int
	addr uint32
}

type stmt struct {
	line    int
	label   string
	mnem    string
	args    []string
	section string // "code" or "data" at time of statement
}

func parseLines(src string) ([]stmt, error) {
	var out []stmt
	section := "code"
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexAny(line, ";#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		var label string
		if idx := strings.Index(line, ":"); idx >= 0 && !strings.ContainsAny(line[:idx], " \t") {
			label = line[:idx]
			line = strings.TrimSpace(line[idx+1:])
		}

		switch strings.ToLower(line) {
		case ".code":
			section = "code"
			if label != "" {
				return nil, fmt.Errorf("asm line %d: label on section directive", i+1)
			}
			continue
		case ".data":
			section = "data"
			if label != "" {
				return nil, fmt.Errorf("asm line %d: label on section directive", i+1)
			}
			continue
		}

		s := stmt{line: i + 1, label: label, section: section}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			s.mnem = strings.ToUpper(strings.TrimSpace(fields[0]))
			if len(fields) > 1 {
				for _, arg := range strings.Split(fields[1], ",") {
					s.args = append(s.args, strings.TrimSpace(arg))
				}
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func (a *assembler) firstPass(src string) error {
	stmts, err := parseLines(src)
	if err != nil {
		return err
	}
	var codePos, dataPos uint32
	for _, s := range stmts {
		if s.label != "" {
			if s.section == "code" {
				if _, dup := a.codeLabels[s.label]; dup {
					return fmt.Errorf("asm line %d: duplicate label %q", s.line, s.label)
				}
				a.codeLabels[s.label] = CodeBase + codePos
			} else {
				if _, dup := a.dataLabels[s.label]; dup {
					return fmt.Errorf("asm line %d: duplicate label %q", s.line, s.label)
				}
				a.dataLabels[s.label] = DataBase + dataPos
			}
		}
		if s.mnem == "" {
			continue
		}
		if s.section == "code" {
			switch s.mnem {
			case "FMOV":
				codePos += 8 // pseudo-instruction: MOVU + ORI
			case "FMOVD":
				codePos += 16 // pseudo-instruction: two MOVU + ORI pairs
			default:
				codePos += 4
			}
		} else if s.mnem == ".DOUBLE" {
			dataPos += 8
		} else {
			dataPos += 4
		}
	}
	if codePos > CodeSize {
		return fmt.Errorf("asm: code segment overflow (%d bytes)", codePos)
	}
	if dataPos > DataSize {
		return fmt.Errorf("asm: data segment overflow (%d bytes)", dataPos)
	}
	return nil
}

func (a *assembler) secondPass(src string) error {
	stmts, _ := parseLines(src)
	for _, s := range stmts {
		if s.mnem == "" {
			continue
		}
		if s.section == "data" {
			words, err := a.dataWords(s)
			if err != nil {
				return err
			}
			a.data = append(a.data, words...)
			continue
		}
		if s.mnem == "FMOV" || s.mnem == "FMOVD" {
			words, err := a.fmov(s)
			if err != nil {
				return err
			}
			a.code = append(a.code, words...)
			continue
		}
		in, err := a.instruction(s)
		if err != nil {
			return err
		}
		a.code = append(a.code, in.Encode())
	}
	return nil
}

func (a *assembler) dataWords(s stmt) ([]uint32, error) {
	if len(s.args) != 1 {
		return nil, fmt.Errorf("asm line %d: %s needs one operand", s.line, s.mnem)
	}
	switch s.mnem {
	case ".WORD":
		v, err := strconv.ParseInt(s.args[0], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: bad integer %q", s.line, s.args[0])
		}
		return []uint32{uint32(int32(v))}, nil
	case ".FLOAT":
		f, err := strconv.ParseFloat(s.args[0], 32)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: bad float %q", s.line, s.args[0])
		}
		return []uint32{math.Float32bits(float32(f))}, nil
	case ".DOUBLE":
		f, err := strconv.ParseFloat(s.args[0], 64)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: bad double %q", s.line, s.args[0])
		}
		bits := math.Float64bits(f)
		return []uint32{uint32(bits >> 32), uint32(bits)}, nil
	default:
		return nil, fmt.Errorf("asm line %d: unknown data directive %q", s.line, s.mnem)
	}
}

var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func (a *assembler) instruction(s stmt) (Instr, error) {
	op, ok := mnemonics[s.mnem]
	if !ok {
		return Instr{}, fmt.Errorf("asm line %d: unknown mnemonic %q", s.line, s.mnem)
	}
	in := Instr{Op: op}
	need := func(n int) error {
		if len(s.args) != n {
			return fmt.Errorf("asm line %d: %s needs %d operands, got %d", s.line, s.mnem, n, len(s.args))
		}
		return nil
	}
	var err error
	switch op {
	case OpNop, OpHalt, OpRet, OpSig, OpFail:
		err = need(0)

	case OpMovi, OpMovu:
		if err = need(2); err == nil {
			if in.Rd, err = parseReg(s, s.args[0]); err == nil {
				in.Imm, err = a.parseImm(s, s.args[1])
			}
		}

	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpFadd, OpFsub, OpFmul, OpFdiv,
		OpFaddd, OpFsubd, OpFmuld, OpFdivd:
		if err = need(3); err == nil {
			if in.Rd, err = parseReg(s, s.args[0]); err == nil {
				if in.Rs1, err = parseReg(s, s.args[1]); err == nil {
					in.Rs2, err = parseReg(s, s.args[2])
				}
			}
		}

	case OpAddi, OpOri:
		if err = need(3); err == nil {
			if in.Rd, err = parseReg(s, s.args[0]); err == nil {
				if in.Rs1, err = parseReg(s, s.args[1]); err == nil {
					in.Imm, err = a.parseImm(s, s.args[2])
				}
			}
		}

	case OpCmp, OpFcmp, OpFcmpd:
		if err = need(2); err == nil {
			if in.Rs1, err = parseReg(s, s.args[0]); err == nil {
				in.Rs2, err = parseReg(s, s.args[1])
			}
		}

	case OpLd, OpSt:
		if err = need(2); err == nil {
			if in.Rd, err = parseReg(s, s.args[0]); err == nil {
				in.Imm, in.Rs1, err = a.parseMem(s, s.args[1])
			}
		}

	case OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpJmp, OpCall:
		if err = need(1); err == nil {
			addr, ok := a.codeLabels[s.args[0]]
			if !ok {
				err = fmt.Errorf("asm line %d: undefined code label %q", s.line, s.args[0])
				break
			}
			in.Imm = uint16(addr)
			a.jumpTargets = append(a.jumpTargets, jumpRef{line: s.line, addr: addr})
		}

	default:
		err = fmt.Errorf("asm line %d: no operand rule for %s", s.line, s.mnem)
	}
	return in, err
}

// fmov expands the FMOV rd, <float32-literal> pseudo-instruction into
// MOVU rd, hi16 followed by ORI rd, rd, lo16, and FMOVD rd,
// <float64-literal> into two such pairs filling the even/odd register
// pair (rd, rd+1). They let programs build float constants in protected
// code instead of injectable data memory, mirroring compiled-in Ada
// literals.
func (a *assembler) fmov(s stmt) ([]uint32, error) {
	if len(s.args) != 2 {
		return nil, fmt.Errorf("asm line %d: %s needs rd, floatLiteral", s.line, s.mnem)
	}
	rd, err := parseReg(s, s.args[0])
	if err != nil {
		return nil, err
	}
	if s.mnem == "FMOV" {
		f, err := strconv.ParseFloat(s.args[1], 32)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: bad float literal %q", s.line, s.args[1])
		}
		bits := math.Float32bits(float32(f))
		return []uint32{
			Instr{Op: OpMovu, Rd: rd, Imm: uint16(bits >> 16)}.Encode(),
			Instr{Op: OpOri, Rd: rd, Rs1: rd, Imm: uint16(bits)}.Encode(),
		}, nil
	}
	if rd%2 != 0 || rd > 14 {
		return nil, fmt.Errorf("asm line %d: FMOVD needs an even register pair, got r%d", s.line, rd)
	}
	f, err := strconv.ParseFloat(s.args[1], 64)
	if err != nil {
		return nil, fmt.Errorf("asm line %d: bad double literal %q", s.line, s.args[1])
	}
	bits := math.Float64bits(f)
	hi, lo := uint32(bits>>32), uint32(bits)
	return []uint32{
		Instr{Op: OpMovu, Rd: rd, Imm: uint16(hi >> 16)}.Encode(),
		Instr{Op: OpOri, Rd: rd, Rs1: rd, Imm: uint16(hi)}.Encode(),
		Instr{Op: OpMovu, Rd: rd + 1, Imm: uint16(lo >> 16)}.Encode(),
		Instr{Op: OpOri, Rd: rd + 1, Rs1: rd + 1, Imm: uint16(lo)}.Encode(),
	}, nil
}

func parseReg(s stmt, tok string) (int, error) {
	tok = strings.ToLower(tok)
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("asm line %d: expected register, got %q", s.line, tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("asm line %d: bad register %q", s.line, tok)
	}
	return n, nil
}

// parseImm handles decimal/hex literals, =label (absolute address of a
// code or data label) and @label or @label+N (offset of a data label
// from DataBase, plus an optional byte displacement for the low word of
// a double).
func (a *assembler) parseImm(s stmt, tok string) (uint16, error) {
	switch {
	case strings.HasPrefix(tok, "="):
		name := tok[1:]
		if addr, ok := a.dataLabels[name]; ok {
			return uint16(addr), nil
		}
		if addr, ok := a.codeLabels[name]; ok {
			return uint16(addr), nil
		}
		return 0, fmt.Errorf("asm line %d: undefined label %q", s.line, name)
	case strings.HasPrefix(tok, "@"):
		name := tok[1:]
		disp := uint32(0)
		if plus := strings.Index(name, "+"); plus >= 0 {
			d, err := strconv.ParseUint(name[plus+1:], 0, 16)
			if err != nil {
				return 0, fmt.Errorf("asm line %d: bad displacement in %q", s.line, tok)
			}
			disp = uint32(d)
			name = name[:plus]
		}
		addr, ok := a.dataLabels[name]
		if !ok {
			return 0, fmt.Errorf("asm line %d: undefined data label %q", s.line, name)
		}
		return uint16(addr - DataBase + disp), nil
	default:
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("asm line %d: bad immediate %q", s.line, tok)
		}
		if v < math.MinInt16 || v > math.MaxUint16 {
			return 0, fmt.Errorf("asm line %d: immediate %d out of 16-bit range", s.line, v)
		}
		return uint16(v), nil
	}
}

// parseMem parses offset(reg) memory operands.
func (a *assembler) parseMem(s stmt, tok string) (uint16, int, error) {
	open := strings.Index(tok, "(")
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, fmt.Errorf("asm line %d: expected offset(reg), got %q", s.line, tok)
	}
	imm, err := a.parseImm(s, tok[:open])
	if err != nil {
		return 0, 0, err
	}
	reg, err := parseReg(s, tok[open+1:len(tok)-1])
	if err != nil {
		return 0, 0, err
	}
	return imm, reg, nil
}

// checkLandingPads verifies that every control transfer lands on SIG.
func (a *assembler) checkLandingPads() error {
	for _, ref := range a.jumpTargets {
		idx := (ref.addr - CodeBase) / 4
		if int(idx) >= len(a.code) {
			return fmt.Errorf("asm line %d: jump target %#x beyond code", ref.line, ref.addr)
		}
		if Opcode(a.code[idx]>>24) != OpSig {
			return fmt.Errorf("asm line %d: jump target %#x is not a SIG landing pad", ref.line, ref.addr)
		}
	}
	return nil
}
