package cpu

import "fmt"

// Mechanism identifies the error-detection mechanism (EDM) that trapped,
// mirroring Table 1 of the paper (the Thor microprocessor's EDMs).
type Mechanism string

// The error-detection mechanisms of the simulated CPU. DATA ERROR
// (uncorrectable memory error) is listed for completeness but cannot
// fire in this model because faults are injected only into CPU state
// elements, never into parity-protected main memory. The master/slave
// comparator of Thor is not modelled (the paper did not use it either).
// WATCHDOG TIMER replaces the bus time-out of the paper's BUS ERROR for
// runaway executions: the host terminates an iteration that exceeds its
// cycle budget.
const (
	MechBusError     Mechanism = "BUS ERROR"
	MechAddressError Mechanism = "ADDRESS ERROR"
	MechInstrError   Mechanism = "INSTRUCTION ERROR"
	MechJumpError    Mechanism = "JUMP ERROR"
	MechConstraint   Mechanism = "CONSTRAINT ERROR"
	MechAccessCheck  Mechanism = "ACCESS CHECK"
	MechStorageError Mechanism = "STORAGE ERROR"
	MechOverflow     Mechanism = "OVERFLOW CHECK"
	MechUnderflow    Mechanism = "UNDERFLOW CHECK"
	MechDivision     Mechanism = "DIVISION CHECK"
	MechIllegalOp    Mechanism = "ILLEGAL OPERATION"
	MechDataError    Mechanism = "DATA ERROR"
	MechControlFlow  Mechanism = "CONTROL FLOW ERROR"
	MechWatchdog     Mechanism = "WATCHDOG TIMER"

	// Detector mechanisms contributed by internal/detect: SCFI-style
	// basic-block signature monitoring and behavior-derived state
	// automata. They are not Thor EDMs but flow through the same trap
	// plumbing so campaigns classify their verdicts as detections.
	MechSignature Mechanism = "SIGNATURE MONITOR"
	MechAutomaton Mechanism = "BEHAVIOR AUTOMATON"
)

// Mechanisms lists every EDM in the order of Table 1, for table
// rendering.
func Mechanisms() []Mechanism {
	return []Mechanism{
		MechBusError,
		MechAddressError,
		MechDataError,
		MechInstrError,
		MechJumpError,
		MechConstraint,
		MechAccessCheck,
		MechStorageError,
		MechOverflow,
		MechUnderflow,
		MechDivision,
		MechIllegalOp,
		MechControlFlow,
		MechWatchdog,
		MechSignature,
		MechAutomaton,
	}
}

// TrapError is returned by CPU.Step when an error-detection mechanism
// fires. Execution cannot continue after a trap.
type TrapError struct {
	Mech Mechanism
	PC   uint32
	Addr uint32 // faulting data address, when applicable
	Info string
}

// Error implements error.
func (t *TrapError) Error() string {
	if t.Info != "" {
		return fmt.Sprintf("cpu: %s at pc=%#x: %s", t.Mech, t.PC, t.Info)
	}
	return fmt.Sprintf("cpu: %s at pc=%#x", t.Mech, t.PC)
}
