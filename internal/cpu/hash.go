package cpu

// Compact per-instruction state signatures used by the detail-mode
// execution traces (the paper's GOOFI detail mode logs the system state
// before every machine instruction). Hashing keeps a full-run trace of
// several hundred thousand instructions affordable.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(h uint64, v uint32) uint64 {
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(v >> shift & 0xFF)
		h *= fnvPrime
	}
	return h
}

// RegisterHash returns a signature of the register file, PC and flags.
func (c *CPU) RegisterHash() uint64 {
	h := uint64(fnvOffset)
	for r := 1; r < 16; r++ {
		h = fnv1a(h, c.Regs[r])
	}
	h = fnv1a(h, c.PC)
	h = fnv1a(h, boolWord(c.FlagZ)<<1|boolWord(c.FlagLT))
	return h
}

// CacheHash returns a signature of the complete data-cache state
// (tags, status bits and data).
func (c *CPU) CacheHash() uint64 {
	h := uint64(fnvOffset)
	for i := range c.Cache.lines {
		line := &c.Cache.lines[i]
		h = fnv1a(h, uint32(line.tag)<<2|boolWord(line.valid)<<1|boolWord(line.dirty))
		for _, w := range line.data {
			h = fnv1a(h, w)
		}
	}
	return h
}
