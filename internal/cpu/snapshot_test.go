package cpu

import (
	"testing"
)

// snapSrc exercises registers, flags, cached data memory and the stack,
// looping so the machine has non-trivial state at any prefix length.
const snapSrc = `
.data
v:      .word 0
w:      .word 7
.code
start:  SIG
        MOVI r2, =v
        MOVI r3, 0
        MOVI r4, 100
        ADDI r14, r14, -16
loop:   SIG
        LD r5, 0(r2)
        ADD r5, r5, r3
        ST r5, 0(r2)
        ADDI r3, r3, 1
        ST r3, 0(r14)
        CMP r3, r4
        BLT loop
        HALT
`

func assembleSnap(t *testing.T) *Program {
	t.Helper()
	p, err := Assemble(snapSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// stepN steps the CPU n times, failing on any trap.
func stepN(t *testing.T, c *CPU, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if c.Halted() {
			return
		}
		if err := c.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	p := assembleSnap(t)

	// Reference: run straight through to halt.
	ref := New(p, newStubIO())
	for !ref.Halted() {
		if err := ref.Step(); err != nil {
			t.Fatalf("reference run trapped: %v", err)
		}
	}

	for _, prefix := range []int{0, 1, 17, 100, 333} {
		c := New(p, newStubIO())
		stepN(t, c, prefix)
		snap := c.Snapshot()

		resumed := NewFromSnapshot(snap, newStubIO())
		if got, want := resumed.StateDigest(), c.StateDigest(); got != want {
			t.Fatalf("prefix %d: digest after NewFromSnapshot differs", prefix)
		}
		for !resumed.Halted() {
			if err := resumed.Step(); err != nil {
				t.Fatalf("prefix %d: resumed run trapped: %v", prefix, err)
			}
		}
		if got, want := resumed.StateDigest(), ref.StateDigest(); got != want {
			t.Errorf("prefix %d: final digest differs from straight run", prefix)
		}
		if !StatesEqual(resumed.FinalState(), ref.FinalState()) {
			t.Errorf("prefix %d: FinalState differs from straight run", prefix)
		}
		if resumed.InstrCount() != ref.InstrCount() {
			t.Errorf("prefix %d: instruction count %d, want %d", prefix, resumed.InstrCount(), ref.InstrCount())
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := assembleSnap(t)
	c := New(p, newStubIO())
	stepN(t, c, 50)
	snap := c.Snapshot()
	digest := NewFromSnapshot(snap, newStubIO()).StateDigest()

	// Mutating the original machine must not reach the snapshot.
	stepN(t, c, 50)
	c.Regs[5] ^= 0xFFFF
	c.Mem.WriteWord(DataBase, 0xDEADBEEF)
	if err := c.FlipBit(StateBit{RegionCache, "line0.data0", 3}); err != nil {
		t.Fatal(err)
	}

	if got := NewFromSnapshot(snap, newStubIO()).StateDigest(); got != digest {
		t.Error("snapshot changed when the source machine was mutated")
	}
}

func TestRestoreOverwritesExistingMachine(t *testing.T) {
	p := assembleSnap(t)
	c := New(p, newStubIO())
	stepN(t, c, 200)
	snap := c.Snapshot()
	want := c.StateDigest()

	other := New(p, newStubIO())
	stepN(t, other, 37)
	other.Restore(snap)
	if got := other.StateDigest(); got != want {
		t.Error("Restore did not reproduce the source digest")
	}
	if other.Cache.Hits != c.Cache.Hits || other.Cache.Misses != c.Cache.Misses {
		t.Error("Restore did not carry the cache hit/miss counters")
	}
}

func TestStateDigestSensitivity(t *testing.T) {
	p := assembleSnap(t)
	c := New(p, newStubIO())
	stepN(t, c, 120)
	base := c.StateDigest()

	// Every class of state must influence the digest.
	mutations := []struct {
		name string
		mut  func(*CPU)
	}{
		{"register", func(m *CPU) { m.Regs[7] ^= 1 }},
		{"pc", func(m *CPU) { m.PC ^= 4 }},
		{"flag", func(m *CPU) { m.FlagZ = !m.FlagZ }},
		{"instr count", func(m *CPU) { m.instrCount++ }},
		{"last jump", func(m *CPU) { m.lastJump = !m.lastJump }},
		{"halted", func(m *CPU) { m.halted = !m.halted }},
		{"memory", func(m *CPU) { m.Mem.WriteWord(StackBase, m.Mem.ReadWord(StackBase)^1) }},
		{"cache tag", func(m *CPU) { m.Cache.lines[0].tag ^= 1 }},
		{"cache data", func(m *CPU) { m.Cache.lines[0].data[1] ^= 1 }},
		{"cache dirty", func(m *CPU) { m.Cache.lines[0].dirty = !m.Cache.lines[0].dirty }},
	}
	for _, mt := range mutations {
		m := NewFromSnapshot(c.Snapshot(), newStubIO())
		mt.mut(m)
		if m.StateDigest() == base {
			t.Errorf("%s mutation did not change the digest", mt.name)
		}
	}

	// Hit/miss counters are diagnostics, not behaviour.
	m := NewFromSnapshot(c.Snapshot(), newStubIO())
	m.Cache.Hits += 5
	if m.StateDigest() != base {
		t.Error("hit counter changed the behavioural digest")
	}
}
