package cpu

import (
	"errors"
	"fmt"
	"math"
)

// IOBus is the host side of the memory-mapped I/O window. The workload
// harness implements it to exchange sensor and actuator values with the
// environment simulator, like the paper's data exchange between target
// system and host.
type IOBus interface {
	// ReadIO returns the word at byte offset off within the I/O
	// window.
	ReadIO(off uint32) uint32

	// WriteIO stores the word at byte offset off within the I/O
	// window.
	WriteIO(off uint32, v uint32)
}

// ErrHalted is returned by Step after the CPU executed HALT.
var ErrHalted = errors.New("cpu: halted")

// SPReg is the register conventionally holding the stack pointer; data
// accesses into the stack segment below it raise STORAGE ERROR.
const SPReg = 14

// CPU is the simulated processor.
type CPU struct {
	// Architectural state — the fault-injection targets.
	Regs   [16]uint32 // r0 reads as zero; r1..r15 injectable
	PC     uint32
	FlagZ  bool // last compare: equal
	FlagLT bool // last compare: less than

	Mem   *Memory
	Cache *Cache
	IO    IOBus

	instrCount uint64
	lastJump   bool // previous instruction transferred control
	halted     bool

	// dec, when non-nil, is the predecoded instruction stream Step
	// dispatches from instead of decoding the fetched word — see
	// AttachDecoded. Behaviour is identical either way.
	dec *Decoded
}

// New creates a CPU with the given program image loaded: code at
// CodeBase, data at DataBase, PC at CodeBase, SP at the stack top.
func New(p *Program, io IOBus) *CPU {
	c := &CPU{
		Mem:   NewMemory(),
		Cache: NewCache(),
		IO:    io,
	}
	for i, w := range p.Code {
		c.Mem.WriteWord(CodeBase+uint32(i*4), w)
	}
	for i, w := range p.Data {
		c.Mem.WriteWord(DataBase+uint32(i*4), w)
	}
	c.PC = CodeBase
	c.Regs[SPReg] = StackBase + StackSize
	return c
}

// InstrCount returns the number of instructions executed so far; the
// campaign uses it as the fault-injection time base, mirroring the
// paper's sampling over the points in time instructions begin
// execution.
func (c *CPU) InstrCount() uint64 {
	return c.instrCount
}

// Halted reports whether HALT has been executed.
func (c *CPU) Halted() bool {
	return c.halted
}

// reg reads a register; r0 is hardwired to zero.
func (c *CPU) reg(i int) uint32 {
	if i == 0 {
		return 0
	}
	return c.Regs[i]
}

// setReg writes a register; writes to r0 are discarded.
func (c *CPU) setReg(i int, v uint32) {
	if i != 0 {
		c.Regs[i] = v
	}
}

// Step executes one instruction. It returns nil on success, ErrHalted
// when the CPU has halted, or a *TrapError when an error-detection
// mechanism fires. After a trap the CPU must not be stepped again.
func (c *CPU) Step() error {
	if c.halted {
		return ErrHalted
	}

	// Instruction fetch. A PC outside the code segment (for example
	// after a bit-flip in the PC itself) is a jump error.
	if c.PC%4 != 0 || SegmentOf(c.PC) != SegCode {
		return &TrapError{Mech: MechJumpError, PC: c.PC, Info: "instruction fetch outside code segment"}
	}
	if d := c.dec; d != nil {
		// Predecoded dispatch: the code segment is immutable after
		// load (verified by AttachDecoded), so the slot at PC is
		// exactly what fetching and decoding the word would yield —
		// including the INSTRUCTION ERROR for undecodable words.
		s := &d.ops[(c.PC-CodeBase)>>2]
		if s.err != nil {
			return &TrapError{Mech: MechInstrError, PC: c.PC, Info: s.err.Error()}
		}
		return c.exec(s)
	}
	word := c.Mem.ReadWord(c.PC)
	in, err := Decode(word)
	if err != nil {
		return &TrapError{Mech: MechInstrError, PC: c.PC, Info: err.Error()}
	}
	s := compile(in)
	return c.exec(&s)
}

// exec executes one predecoded slot: the shared back half of Step
// behind both the interpreted and the predecoded front ends.
func (c *CPU) exec(in *dop) error {
	// Control-flow checking: every control transfer must land on a
	// SIG landing pad.
	if c.lastJump && in.op != OpSig {
		c.lastJump = false
		return &TrapError{Mech: MechControlFlow, PC: c.PC, Info: "control transfer to non-SIG instruction"}
	}
	c.lastJump = false

	c.instrCount++
	nextPC := c.PC + 4

	switch in.op {
	case OpNop, OpSig:
		// no effect

	case OpHalt:
		c.halted = true

	case OpFail:
		return &TrapError{Mech: MechConstraint, PC: c.PC, Info: "software run-time assertion"}

	case OpMovi:
		c.setReg(in.rd, in.simm)

	case OpMovu:
		c.setReg(in.rd, uint32(in.imm)<<16)

	case OpAdd, OpSub, OpAddi:
		a := int64(int32(c.reg(in.rs1)))
		var b int64
		if in.op == OpAddi {
			b = int64(int32(in.simm))
		} else {
			b = int64(int32(c.reg(in.rs2)))
		}
		if in.op == OpSub {
			b = -b
		}
		sum := a + b
		if sum > math.MaxInt32 || sum < math.MinInt32 {
			return &TrapError{Mech: MechOverflow, PC: c.PC, Info: "signed integer overflow"}
		}
		c.setReg(in.rd, uint32(int32(sum)))

	case OpOri:
		c.setReg(in.rd, c.reg(in.rs1)|uint32(in.imm))

	case OpAnd:
		c.setReg(in.rd, c.reg(in.rs1)&c.reg(in.rs2))
	case OpOr:
		c.setReg(in.rd, c.reg(in.rs1)|c.reg(in.rs2))
	case OpXor:
		c.setReg(in.rd, c.reg(in.rs1)^c.reg(in.rs2))

	case OpCmp:
		a, b := int32(c.reg(in.rs1)), int32(c.reg(in.rs2))
		c.FlagZ = a == b
		c.FlagLT = a < b

	case OpLd:
		addr := c.reg(in.rs1) + in.simm
		v, trap := c.load(addr)
		if trap != nil {
			trap.PC = c.PC
			return trap
		}
		c.setReg(in.rd, v)

	case OpSt:
		addr := c.reg(in.rs1) + in.simm
		if trap := c.store(addr, c.reg(in.rd)); trap != nil {
			trap.PC = c.PC
			return trap
		}

	case OpFadd, OpFsub, OpFmul, OpFdiv:
		v, trap := c.floatOp(in.op, c.reg(in.rs1), c.reg(in.rs2))
		if trap != nil {
			trap.PC = c.PC
			return trap
		}
		c.setReg(in.rd, v)

	case OpFcmp:
		a := math.Float32frombits(c.reg(in.rs1))
		b := math.Float32frombits(c.reg(in.rs2))
		if isNaN32(a) || isNaN32(b) {
			return &TrapError{Mech: MechIllegalOp, PC: c.PC, Info: "unordered float compare"}
		}
		c.FlagZ = a == b
		c.FlagLT = a < b

	case OpFaddd, OpFsubd, OpFmuld, OpFdivd:
		if err := checkPair(in.rd, in.rs1, in.rs2); err != nil {
			return &TrapError{Mech: MechInstrError, PC: c.PC, Info: err.Error()}
		}
		v, trap := c.floatOp64(in.op, c.regPair(in.rs1), c.regPair(in.rs2))
		if trap != nil {
			trap.PC = c.PC
			return trap
		}
		c.setRegPair(in.rd, v)

	case OpFcmpd:
		if err := checkPair(in.rs1, in.rs2); err != nil {
			return &TrapError{Mech: MechInstrError, PC: c.PC, Info: err.Error()}
		}
		a := math.Float64frombits(c.regPair(in.rs1))
		b := math.Float64frombits(c.regPair(in.rs2))
		if math.IsNaN(a) || math.IsNaN(b) {
			return &TrapError{Mech: MechIllegalOp, PC: c.PC, Info: "unordered double compare"}
		}
		c.FlagZ = a == b
		c.FlagLT = a < b

	case OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle:
		if c.branchTaken(in.op) {
			if !in.jumpOK {
				return c.checkJumpTarget(uint32(in.imm))
			}
			nextPC = uint32(in.imm)
			c.lastJump = true
		}

	case OpJmp:
		if !in.jumpOK {
			return c.checkJumpTarget(uint32(in.imm))
		}
		nextPC = uint32(in.imm)
		c.lastJump = true

	case OpCall:
		if !in.jumpOK {
			return c.checkJumpTarget(uint32(in.imm))
		}
		c.setReg(15, c.PC+4)
		nextPC = uint32(in.imm)
		c.lastJump = true

	case OpRet:
		target := c.reg(15)
		if trap := c.checkJumpTarget(target); trap != nil {
			return trap
		}
		nextPC = target
		c.lastJump = true
	}

	c.PC = nextPC
	return nil
}

func (c *CPU) branchTaken(op Opcode) bool {
	switch op {
	case OpBeq:
		return c.FlagZ
	case OpBne:
		return !c.FlagZ
	case OpBlt:
		return c.FlagLT
	case OpBge:
		return !c.FlagLT
	case OpBgt:
		return !c.FlagLT && !c.FlagZ
	case OpBle:
		return c.FlagLT || c.FlagZ
	default:
		return false
	}
}

func (c *CPU) checkJumpTarget(target uint32) *TrapError {
	if target%4 != 0 || SegmentOf(target) != SegCode {
		return &TrapError{Mech: MechJumpError, PC: c.PC, Addr: target,
			Info: "jump, call or return target outside code segment"}
	}
	return nil
}

// load performs a data load with the full EDM checks.
func (c *CPU) load(addr uint32) (uint32, *TrapError) {
	if trap := c.checkDataAddr(addr, false); trap != nil {
		return 0, trap
	}
	switch SegmentOf(addr) {
	case SegIO:
		return c.IO.ReadIO(addr - IOBase), nil
	case SegStack:
		return c.Mem.ReadWord(addr), nil
	default: // SegData
		return c.Cache.ReadWord(addr, c.Mem)
	}
}

// store performs a data store with the full EDM checks.
func (c *CPU) store(addr uint32, v uint32) *TrapError {
	if trap := c.checkDataAddr(addr, true); trap != nil {
		return trap
	}
	switch SegmentOf(addr) {
	case SegIO:
		c.IO.WriteIO(addr-IOBase, v)
		return nil
	case SegStack:
		c.Mem.WriteWord(addr, v)
		return nil
	default: // SegData
		return c.Cache.WriteWord(addr, v, c.Mem)
	}
}

// checkDataAddr applies ACCESS CHECK, alignment, segment protection and
// the storage (stack-bounds) check.
func (c *CPU) checkDataAddr(addr uint32, _ bool) *TrapError {
	if addr < NullGuard {
		return &TrapError{Mech: MechAccessCheck, Addr: addr, Info: "null pointer dereference"}
	}
	if addr%4 != 0 {
		return &TrapError{Mech: MechAddressError, Addr: addr, Info: "misaligned access"}
	}
	switch SegmentOf(addr) {
	case SegCode:
		return &TrapError{Mech: MechAddressError, Addr: addr, Info: "data access to protected code segment"}
	case SegNone:
		return &TrapError{Mech: MechAddressError, Addr: addr, Info: "access to non-existing memory"}
	case SegStack:
		if addr < c.reg(SPReg) {
			return &TrapError{Mech: MechStorageError, Addr: addr, Info: "access outside the task's stack"}
		}
	}
	return nil
}

// floatOp executes single-precision arithmetic with Thor's float EDMs:
// illegal operation for NaN/infinite operands, overflow and underflow
// checks on the result, and the division check.
func (c *CPU) floatOp(op Opcode, ra, rb uint32) (uint32, *TrapError) {
	a := math.Float32frombits(ra)
	b := math.Float32frombits(rb)
	if isNaN32(a) || isNaN32(b) || isInf32(a) || isInf32(b) {
		return 0, &TrapError{Mech: MechIllegalOp, Info: "float operand is NaN or infinite"}
	}
	var r float32
	switch op {
	case OpFadd:
		r = a + b
	case OpFsub:
		r = a - b
	case OpFmul:
		r = a * b
	case OpFdiv:
		if b == 0 {
			return 0, &TrapError{Mech: MechDivision, Info: "float division by zero"}
		}
		r = a / b
	}
	if isInf32(r) {
		return 0, &TrapError{Mech: MechOverflow, Info: "float overflow"}
	}
	if isDenormal32(r) || (op == OpFmul && r == 0 && a != 0 && b != 0) {
		return 0, &TrapError{Mech: MechUnderflow, Info: "float underflow or denormalized result"}
	}
	return math.Float32bits(r), nil
}

// regPair reads the double-precision value held in the even/odd
// register pair starting at even register i: high word in r[i], low
// word in r[i+1].
func (c *CPU) regPair(i int) uint64 {
	return uint64(c.reg(i))<<32 | uint64(c.reg(i+1))
}

// setRegPair writes a double-precision value to the pair starting at i.
func (c *CPU) setRegPair(i int, v uint64) {
	c.setReg(i, uint32(v>>32))
	c.setReg(i+1, uint32(v))
}

// checkPair validates double-operand register numbers: each must be
// even so that (k, k+1) forms a pair.
func checkPair(regs ...int) error {
	for _, r := range regs {
		if r%2 != 0 {
			return fmt.Errorf("cpu: double operand register r%d is not even", r)
		}
	}
	return nil
}

// floatOp64 executes double-precision arithmetic with the same EDM
// rules as floatOp: illegal operation for NaN/infinite operands,
// overflow and underflow checks on the result, and the division check.
func (c *CPU) floatOp64(op Opcode, ra, rb uint64) (uint64, *TrapError) {
	a := math.Float64frombits(ra)
	b := math.Float64frombits(rb)
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return 0, &TrapError{Mech: MechIllegalOp, Info: "double operand is NaN or infinite"}
	}
	var r float64
	switch op {
	case OpFaddd:
		r = a + b
	case OpFsubd:
		r = a - b
	case OpFmuld:
		r = a * b
	case OpFdivd:
		if b == 0 {
			return 0, &TrapError{Mech: MechDivision, Info: "double division by zero"}
		}
		r = a / b
	}
	if math.IsInf(r, 0) {
		return 0, &TrapError{Mech: MechOverflow, Info: "double overflow"}
	}
	if isDenormal64(r) || (op == OpFmuld && r == 0 && a != 0 && b != 0) {
		return 0, &TrapError{Mech: MechUnderflow, Info: "double underflow or denormalized result"}
	}
	return math.Float64bits(r), nil
}

func isDenormal64(f float64) bool {
	if f == 0 {
		return false
	}
	exp := math.Float64bits(f) >> 52 & 0x7FF
	return exp == 0
}

func isNaN32(f float32) bool {
	return f != f
}

func isInf32(f float32) bool {
	return math.IsInf(float64(f), 0)
}

func isDenormal32(f float32) bool {
	if f == 0 {
		return false
	}
	exp := math.Float32bits(f) >> 23 & 0xFF
	return exp == 0
}
