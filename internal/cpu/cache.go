package cpu

// Data-cache geometry: 128 bytes like Thor's, direct-mapped, write-back
// with write-allocate. Only the data segment is cached; code, I/O and
// stack bypass it.
const (
	CacheLines    = 8
	CacheLineSize = 16 // bytes
	cacheWords    = CacheLineSize / 4

	// Address decomposition: offset = addr[3:0], index = addr[6:4],
	// tag = addr[15:7]. The tag deliberately covers more address bits
	// than the data segment needs, so a corrupted tag can point a
	// dirty line's write-back anywhere in the 64 KiB address space —
	// the mechanism behind address errors caused by cache faults.
	tagShift = 7
	tagBits  = 9
	tagMask  = 1<<tagBits - 1
)

type cacheLine struct {
	tag   uint16
	valid bool
	dirty bool
	data  [cacheWords]uint32
}

// Cache is the CPU's write-back data cache. Its bits are the "Cache"
// fault-injection region of the campaign, like the 1824 cache state
// elements of the paper.
type Cache struct {
	lines [CacheLines]cacheLine

	// Hits and Misses count accesses, for diagnostics and benches.
	Hits, Misses uint64
}

// NewCache returns an empty (all-invalid) cache.
func NewCache() *Cache {
	return &Cache{}
}

func cacheIndex(addr uint32) int {
	return int(addr >> 4 & (CacheLines - 1))
}

func cacheTag(addr uint32) uint16 {
	return uint16(addr >> tagShift & tagMask)
}

// lineBase reconstructs the memory address a line maps to from its tag
// and index. With a corrupted tag this can be any line-aligned address
// in the 64 KiB space.
func lineBase(tag uint16, index int) uint32 {
	return uint32(tag)<<tagShift | uint32(index)<<4
}

// ReadWord reads the aligned word at addr through the cache.
func (c *Cache) ReadWord(addr uint32, mem *Memory) (uint32, *TrapError) {
	line, trap := c.ensure(addr, mem)
	if trap != nil {
		return 0, trap
	}
	return line.data[addr>>2&(cacheWords-1)], nil
}

// WriteWord writes the aligned word at addr through the cache
// (write-back, write-allocate).
func (c *Cache) WriteWord(addr uint32, v uint32, mem *Memory) *TrapError {
	line, trap := c.ensure(addr, mem)
	if trap != nil {
		return trap
	}
	line.data[addr>>2&(cacheWords-1)] = v
	line.dirty = true
	return nil
}

// ensure returns the line holding addr, filling (and writing back the
// victim) on a miss.
func (c *Cache) ensure(addr uint32, mem *Memory) (*cacheLine, *TrapError) {
	idx := cacheIndex(addr)
	line := &c.lines[idx]
	want := cacheTag(addr)
	if line.valid && line.tag == want {
		c.Hits++
		return line, nil
	}
	c.Misses++
	if trap := c.evict(idx, mem); trap != nil {
		return nil, trap
	}
	base := addr &^ uint32(CacheLineSize-1)
	for w := 0; w < cacheWords; w++ {
		line.data[w] = mem.ReadWord(base + uint32(w*4))
	}
	line.tag = want
	line.valid = true
	line.dirty = false
	return line, nil
}

// evict writes back the line at idx if it is valid and dirty. A
// corrupted tag makes the write-back land outside the data segment,
// which raises ADDRESS ERROR exactly like a faulty bus address would.
func (c *Cache) evict(idx int, mem *Memory) *TrapError {
	line := &c.lines[idx]
	if !line.valid || !line.dirty {
		line.valid = false
		return nil
	}
	base := lineBase(line.tag, idx)
	if SegmentOf(base) != SegData {
		return &TrapError{Mech: MechAddressError, Addr: base,
			Info: "dirty cache line write-back outside data segment"}
	}
	for w := 0; w < cacheWords; w++ {
		mem.WriteWord(base+uint32(w*4), line.data[w])
	}
	line.valid = false
	line.dirty = false
	return nil
}

// FlushTo writes every dirty line back to mem, leaving the cache valid.
// Used when computing the final system state of a run.
func (c *Cache) FlushTo(mem *Memory) *TrapError {
	for idx := range c.lines {
		line := &c.lines[idx]
		if !line.valid || !line.dirty {
			continue
		}
		base := lineBase(line.tag, idx)
		if SegmentOf(base) != SegData {
			return &TrapError{Mech: MechAddressError, Addr: base,
				Info: "dirty cache line flush outside data segment"}
		}
		for w := 0; w < cacheWords; w++ {
			mem.WriteWord(base+uint32(w*4), line.data[w])
		}
		line.dirty = false
	}
	return nil
}

// Invalidate empties the cache without writing anything back.
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}
