package cpu

import (
	"errors"
	"math"
	"testing"
)

// stubIO records I/O traffic for tests.
type stubIO struct {
	reads  []uint32
	writes map[uint32]uint32
	input  map[uint32]uint32
}

func newStubIO() *stubIO {
	return &stubIO{writes: make(map[uint32]uint32), input: make(map[uint32]uint32)}
}

func (s *stubIO) ReadIO(off uint32) uint32 {
	s.reads = append(s.reads, off)
	return s.input[off]
}

func (s *stubIO) WriteIO(off uint32, v uint32) {
	s.writes[off] = v
}

// runSrc assembles and runs src until HALT, a trap, or maxSteps.
func runSrc(t *testing.T, src string, maxSteps int) (*CPU, *stubIO, error) {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	io := newStubIO()
	c := New(p, io)
	for i := 0; i < maxSteps; i++ {
		if err := c.Step(); err != nil {
			return c, io, err
		}
		if c.Halted() {
			return c, io, nil
		}
	}
	t.Fatalf("program did not halt in %d steps", maxSteps)
	return nil, nil, nil
}

// expectTrap asserts that the program traps with the given mechanism.
func expectTrap(t *testing.T, src string, want Mechanism) {
	t.Helper()
	_, _, err := runSrc(t, src, 1000)
	var trap *TrapError
	if !errors.As(err, &trap) {
		t.Fatalf("expected %s trap, got err=%v", want, err)
	}
	if trap.Mech != want {
		t.Errorf("trap mechanism = %s, want %s", trap.Mech, want)
	}
}

func TestArithmetic(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVI r1, 10
        MOVI r2, 3
        ADD  r3, r1, r2
        SUB  r4, r1, r2
        AND  r5, r1, r2
        OR   r6, r1, r2
        XOR  r7, r1, r2
        ADDI r8, r1, -4
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]uint32{3: 13, 4: 7, 5: 2, 6: 11, 7: 9, 8: 6}
	for r, want := range wants {
		if c.Regs[r] != want {
			t.Errorf("r%d = %d, want %d", r, c.Regs[r], want)
		}
	}
}

func TestR0HardwiredZero(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVI r0, 99
        ADDI r1, r0, 7
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[0] != 0 {
		t.Errorf("r0 = %d, want 0", c.Regs[0])
	}
	if c.Regs[1] != 7 {
		t.Errorf("r1 = %d, want 7", c.Regs[1])
	}
}

func TestMovuBuildsUpperHalf(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVU r1, 0x1234
        HALT
`, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[1] != 0x12340000 {
		t.Errorf("r1 = %#x", c.Regs[1])
	}
}

func TestLoadStoreThroughCache(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @v(r10)
        ADDI r1, r1, 1
        ST   r1, @v(r10)
        LD   r2, @v(r10)
        HALT
.data
v:      .word 41
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[2] != 42 {
		t.Errorf("r2 = %d, want 42", c.Regs[2])
	}
	if c.Cache.Hits == 0 {
		t.Error("expected cache hits")
	}
}

func TestFloatArithmetic(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @a(r10)
        LD   r2, @b(r10)
        FADD r3, r1, r2
        FSUB r4, r1, r2
        FMUL r5, r1, r2
        FDIV r6, r1, r2
        HALT
.data
a:      .float 6.0
b:      .float 1.5
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]float32{3: 7.5, 4: 4.5, 5: 9.0, 6: 4.0}
	for r, want := range wants {
		if got := math.Float32frombits(c.Regs[r]); got != want {
			t.Errorf("r%d = %v, want %v", r, got, want)
		}
	}
}

func TestBranching(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVI r1, 0
        MOVI r2, 5
loop:   SIG
        ADDI r1, r1, 1
        CMP  r1, r2
        BLT  loop
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[1] != 5 {
		t.Errorf("loop counter = %d, want 5", c.Regs[1])
	}
}

func TestBranchConditions(t *testing.T) {
	// Exercise every branch flavour both taken and not taken.
	c, _, err := runSrc(t, `
.code
        MOVI r1, 1
        MOVI r2, 2
        MOVI r9, 0          ; result bitmask
        CMP  r1, r2         ; 1 < 2
        BLT  t1
        JMP  c1
t1:     SIG
        ADDI r9, r9, 1
c1:     SIG
        CMP  r2, r1
        BGT  t2
        JMP  c2
t2:     SIG
        ADDI r9, r9, 2
c2:     SIG
        CMP  r1, r1
        BEQ  t3
        JMP  c3
t3:     SIG
        ADDI r9, r9, 4
c3:     SIG
        CMP  r1, r2
        BNE  t4
        JMP  c4
t4:     SIG
        ADDI r9, r9, 8
c4:     SIG
        CMP  r1, r1
        BGE  t5
        JMP  c5
t5:     SIG
        ADDI r9, r9, 16
c5:     SIG
        CMP  r1, r2
        BLE  t6
        JMP  c6
t6:     SIG
        ADDI r9, r9, 32
c6:     SIG
        HALT
`, 200)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 63 {
		t.Errorf("branch mask = %d, want 63", c.Regs[9])
	}
}

func TestCallRet(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVI r1, 1
        CALL fn
        ADDI r1, r1, 100
        HALT
fn:     SIG
        ADDI r1, r1, 10
        RET
`, 100)
	// RET returns to the instruction after CALL, which is not a SIG —
	// that is a control-flow violation in this ISA, so functions are
	// entered with an explicit landing pad after the call site.
	if err == nil {
		if c.Regs[1] != 111 {
			t.Errorf("r1 = %d, want 111", c.Regs[1])
		}
	} else {
		var trap *TrapError
		if !errors.As(err, &trap) || trap.Mech != MechControlFlow {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestCallRetWithLandingPad(t *testing.T) {
	// RET targets must also be SIG landing pads; CALL sites therefore
	// place a SIG right after the call. RET itself must point at it.
	p, err := Assemble(`
.code
        MOVI r1, 1
        CALL fn
retpt:  SIG
        ADDI r1, r1, 100
        HALT
fn:     SIG
        ADDI r1, r1, 10
        RET
`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(p, newStubIO())
	for i := 0; i < 100 && !c.Halted(); i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Regs[1] != 111 {
		t.Errorf("r1 = %d, want 111", c.Regs[1])
	}
}

func TestIOReadWrite(t *testing.T) {
	p := MustAssemble(`
.code
        MOVI r12, 0x2000
        LD   r1, 0(r12)
        ADDI r1, r1, 1
        ST   r1, 8(r12)
        HALT
`)
	io := newStubIO()
	io.input[0] = 41
	c := New(p, io)
	for !c.Halted() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if io.writes[8] != 42 {
		t.Errorf("IO write = %d, want 42", io.writes[8])
	}
}

// --- EDM trap tests, one per mechanism of Table 1 ---

func TestTrapAccessCheckNullPointer(t *testing.T) {
	expectTrap(t, ".code\n MOVI r1, 0\n LD r2, 0(r1)\n HALT\n", MechAccessCheck)
}

func TestTrapAddressErrorMisaligned(t *testing.T) {
	expectTrap(t, ".code\n MOVI r1, 0x1002\n LD r2, 0(r1)\n HALT\n", MechAddressError)
}

func TestTrapAddressErrorUnmapped(t *testing.T) {
	expectTrap(t, ".code\n MOVI r1, 0x2800\n LD r2, 0(r1)\n HALT\n", MechAddressError)
}

func TestTrapAddressErrorCodeWrite(t *testing.T) {
	expectTrap(t, ".code\n MOVI r1, 0x100\n ST r1, 0(r1)\n HALT\n", MechAddressError)
}

func TestTrapStorageErrorBelowSP(t *testing.T) {
	// SP starts at the stack top, so any stack-segment access is
	// below it.
	expectTrap(t, ".code\n MOVI r1, 0x3000\n LD r2, 0(r1)\n HALT\n", MechStorageError)
}

func TestStackAccessAboveSPAllowed(t *testing.T) {
	// Lower SP (r14) first, then access above it.
	c, _, err := runSrc(t, `
.code
        MOVI r14, 0x3F00
        MOVI r1, 7
        MOVI r2, 0x3F00
        ST   r1, 0(r2)
        LD   r3, 0(r2)
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[3] != 7 {
		t.Errorf("stack readback = %d, want 7", c.Regs[3])
	}
}

func TestTrapOverflowInteger(t *testing.T) {
	expectTrap(t, `
.code
        MOVU r1, 0x7FFF
        ADDI r2, r1, 0x7FFF
        ADD  r3, r2, r2
        HALT
`, MechOverflow)
}

func TestTrapOverflowFloat(t *testing.T) {
	expectTrap(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @big(r10)
        FMUL r2, r1, r1
        HALT
.data
big:    .float 3.0e38
`, MechOverflow)
}

func TestTrapUnderflowFloat(t *testing.T) {
	expectTrap(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @tiny(r10)
        FMUL r2, r1, r1
        HALT
.data
tiny:   .float 1.0e-30
`, MechUnderflow)
}

func TestTrapDivisionByZero(t *testing.T) {
	expectTrap(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @one(r10)
        LD   r2, @zero(r10)
        FDIV r3, r1, r2
        HALT
.data
one:    .float 1.0
zero:   .float 0.0
`, MechDivision)
}

func TestTrapIllegalOperationNaN(t *testing.T) {
	expectTrap(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @nan(r10)
        LD   r2, @one(r10)
        FADD r3, r1, r2
        HALT
.data
nan:    .word 0x7FC00000
one:    .float 1.0
`, MechIllegalOp)
}

func TestTrapIllegalOperationFcmpNaN(t *testing.T) {
	expectTrap(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @nan(r10)
        FCMP r1, r1
        HALT
.data
nan:    .word 0x7FC00000
`, MechIllegalOp)
}

func TestFcmpInfinityAllowed(t *testing.T) {
	// FCMP tolerates infinities (only arithmetic traps on them), so
	// range assertions can catch ±Inf values and recover.
	c, _, err := runSrc(t, `
.code
        MOVI r10, 0x1000
        LD   r1, @inf(r10)
        LD   r2, @seventy(r10)
        FCMP r1, r2
        BGT  big
        HALT
big:    SIG
        MOVI r9, 1
        HALT
.data
inf:    .word 0x7F800000
seventy: .float 70.0
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 1 {
		t.Error("+Inf did not compare greater than 70")
	}
}

func TestTrapInstructionError(t *testing.T) {
	// Jump into the data segment is a jump error; instead poke an
	// illegal opcode into code via a program that falls through to a
	// data word. Assemble a single .word-like instruction by using a
	// program whose second word is garbage: simplest is to execute
	// past HALT-less code into zeroed memory (opcode 0 = illegal).
	p := MustAssemble(".code\n NOP\n")
	c := New(p, newStubIO())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	err := c.Step() // fetches zeroed word: illegal opcode
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Mech != MechInstrError {
		t.Fatalf("err = %v, want INSTRUCTION ERROR", err)
	}
}

func TestTrapJumpErrorViaPCCorruption(t *testing.T) {
	p := MustAssemble(".code\n NOP\n NOP\n HALT\n")
	c := New(p, newStubIO())
	c.PC = 0x5000 // outside every segment
	err := c.Step()
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Mech != MechJumpError {
		t.Fatalf("err = %v, want JUMP ERROR", err)
	}
}

func TestTrapControlFlowError(t *testing.T) {
	// Corrupt r15 so RET lands on a non-SIG instruction.
	p := MustAssemble(`
.code
        CALL fn
land:   SIG
        HALT
fn:     SIG
        RET
`)
	c := New(p, newStubIO())
	if err := c.Step(); err != nil { // CALL
		t.Fatal(err)
	}
	if err := c.Step(); err != nil { // SIG at fn
		t.Fatal(err)
	}
	c.Regs[15] += 4                  // return address now points past the landing pad
	if err := c.Step(); err != nil { // RET
		t.Fatal(err)
	}
	err := c.Step() // lands on HALT without SIG
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Mech != MechControlFlow {
		t.Fatalf("err = %v, want CONTROL FLOW ERROR", err)
	}
}

func TestTrapConstraintError(t *testing.T) {
	expectTrap(t, ".code\n FAIL\n", MechConstraint)
}

func TestHaltReturnsErrHalted(t *testing.T) {
	p := MustAssemble(".code\n HALT\n")
	c := New(p, newStubIO())
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

func TestInstrCountAdvances(t *testing.T) {
	p := MustAssemble(".code\n NOP\n NOP\n HALT\n")
	c := New(p, newStubIO())
	for !c.Halted() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.InstrCount() != 3 {
		t.Errorf("InstrCount = %d, want 3", c.InstrCount())
	}
}

func TestDoubleArithmetic(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        FMOVD r2, 6.25
        FMOVD r4, 1.5
        FADDD r6, r2, r4
        FSUBD r8, r2, r4
        FMULD r10, r2, r4
        FDIVD r12, r2, r4
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	pair := func(i int) float64 {
		return math.Float64frombits(uint64(c.Regs[i])<<32 | uint64(c.Regs[i+1]))
	}
	wants := map[int]float64{6: 7.75, 8: 4.75, 10: 9.375, 12: 6.25 / 1.5}
	for r, want := range wants {
		if got := pair(r); got != want {
			t.Errorf("pair r%d = %v, want %v", r, got, want)
		}
	}
}

func TestDoubleCompareAndBranch(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        FMOVD r2, 2.5
        FMOVD r4, 2.5
        FCMPD r2, r4
        BEQ  eq
        HALT
eq:     SIG
        MOVI r9, 1
        FMOVD r4, 3.0
        FCMPD r2, r4
        BLT  lt
        HALT
lt:     SIG
        ADDI r9, r9, 1
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 2 {
		t.Errorf("branch result = %d, want 2", c.Regs[9])
	}
}

func TestDoubleOddRegisterTrapsInstructionError(t *testing.T) {
	// Hand-encode FADDD with an odd rd: the assembler would reject
	// it, but a corrupted instruction stream can produce it.
	p := MustAssemble(".code\n NOP\n HALT\n")
	c := New(p, newStubIO())
	c.Mem.WriteWord(0, Instr{Op: OpFaddd, Rd: 3, Rs1: 2, Rs2: 4}.Encode())
	err := c.Step()
	var trap *TrapError
	if !errors.As(err, &trap) || trap.Mech != MechInstrError {
		t.Fatalf("err = %v, want INSTRUCTION ERROR", err)
	}
}

func TestDoubleTrapOverflow(t *testing.T) {
	expectTrap(t, `
.code
        FMOVD r2, 1.0e308
        FMULD r4, r2, r2
        HALT
`, MechOverflow)
}

func TestDoubleTrapUnderflow(t *testing.T) {
	expectTrap(t, `
.code
        FMOVD r2, 1.0e-200
        FMULD r4, r2, r2
        HALT
`, MechUnderflow)
}

func TestDoubleTrapDivisionByZero(t *testing.T) {
	expectTrap(t, `
.code
        FMOVD r2, 1.0
        FMOVD r4, 0.0
        FDIVD r6, r2, r4
        HALT
`, MechDivision)
}

func TestDoubleTrapIllegalOperationNaN(t *testing.T) {
	expectTrap(t, `
.code
        MOVU r2, 0x7FF8        ; NaN high word
        MOVI r3, 0
        FMOVD r4, 1.0
        FADDD r6, r2, r4
        HALT
`, MechIllegalOp)
}

func TestDoubleFcmpdInfinityAllowed(t *testing.T) {
	c, _, err := runSrc(t, `
.code
        MOVU r2, 0x7FF0        ; +Inf high word
        MOVI r3, 0
        FMOVD r4, 70.0
        FCMPD r2, r4
        BGT  big
        HALT
big:    SIG
        MOVI r9, 1
        HALT
`, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 1 {
		t.Error("+Inf did not compare greater than 70")
	}
}
