package cpu

import (
	"strings"
	"testing"
)

func TestDefUseTables(t *testing.T) {
	cases := []struct {
		in   Instr
		want DefUse
	}{
		{Instr{Op: OpMovi, Rd: 3, Imm: 7}, DefUse{DefRegs: regMask(3)}},
		{Instr{Op: OpMovu, Rd: 9}, DefUse{DefRegs: regMask(9)}},
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, DefUse{UseRegs: regMask(2, 3), DefRegs: regMask(1)}},
		{Instr{Op: OpAddi, Rd: 4, Rs1: 4}, DefUse{UseRegs: regMask(4), DefRegs: regMask(4)}},
		{Instr{Op: OpLd, Rd: 2, Rs1: 1}, DefUse{UseRegs: regMask(1), DefRegs: regMask(2), Mem: MemLoad}},
		// ST's rd slot is the store's SOURCE, so it must be a use.
		{Instr{Op: OpSt, Rd: 2, Rs1: 1}, DefUse{UseRegs: regMask(1, 2), Mem: MemStore}},
		{Instr{Op: OpCmp, Rs1: 1, Rs2: 2}, DefUse{UseRegs: regMask(1, 2), DefFlags: FlagMaskZ | FlagMaskLT}},
		{Instr{Op: OpFcmpd, Rs1: 2, Rs2: 4}, DefUse{UseRegs: regMask(2, 3, 4, 5), DefFlags: FlagMaskZ | FlagMaskLT}},
		// Double ops read and write even/odd pairs.
		{Instr{Op: OpFaddd, Rd: 8, Rs1: 2, Rs2: 6}, DefUse{UseRegs: regMask(2, 3, 6, 7), DefRegs: regMask(8, 9)}},
		{Instr{Op: OpBeq}, DefUse{UseFlags: FlagMaskZ}},
		{Instr{Op: OpBlt}, DefUse{UseFlags: FlagMaskLT}},
		{Instr{Op: OpBgt}, DefUse{UseFlags: FlagMaskZ | FlagMaskLT}},
		{Instr{Op: OpCall}, DefUse{DefRegs: regMask(15)}},
		{Instr{Op: OpRet}, DefUse{UseRegs: regMask(15)}},
		{Instr{Op: OpJmp}, DefUse{}},
		{Instr{Op: OpNop}, DefUse{}},
		{Instr{Op: OpHalt}, DefUse{}},
		// r0 is hardwired: neither a use nor a def.
		{Instr{Op: OpAdd, Rd: 0, Rs1: 0, Rs2: 5}, DefUse{UseRegs: regMask(5)}},
	}
	for _, tc := range cases {
		if got := tc.in.DefUse(); got != tc.want {
			t.Errorf("%s: DefUse() = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestDefUseString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2}, "use r1,r2 def r3"},
		{Instr{Op: OpLd, Rd: 2, Rs1: 1}, "use r1,mem def r2"},
		{Instr{Op: OpSt, Rd: 2, Rs1: 1}, "use r1,r2 def mem"},
		{Instr{Op: OpCmp, Rs1: 1, Rs2: 2}, "use r1,r2 def Z,LT"},
		{Instr{Op: OpBgt}, "use Z,LT"},
		{Instr{Op: OpNop}, "-"},
	}
	for _, tc := range cases {
		if got := tc.in.DefUse().String(); got != tc.want {
			t.Errorf("%s: String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestDefUseMatchesExecution cross-checks the static tables against the
// machine: for each single-register-operand instruction shape, changing
// a register listed as a use must be able to change the result, and a
// register listed as a def must hold a value independent of its prior
// content.
func TestDefUseMatchesExecution(t *testing.T) {
	// ADDI r2, r1, 1 — r1 use, r2 def.
	p := MustAssemble(".code\n ADDI r2, r1, 1\n HALT\n")
	run := func(r1, r2 uint32) uint32 {
		c := New(p, newStubIO())
		c.Regs[1], c.Regs[2] = r1, r2
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
		return c.Regs[2]
	}
	if run(10, 0) != run(10, 99) {
		t.Error("r2 (a def) influenced ADDI's result")
	}
	if run(10, 0) == run(20, 0) {
		t.Error("r1 (a use) did not influence ADDI's result")
	}
}

func TestDisassembleDefUse(t *testing.T) {
	p := MustAssemble(`
.code
 MOVI r1, 0x1000
 LD r2, 0(r1)
 ST r2, 4(r1)
 HALT
.data
 .word 7
`)
	out := p.DisassembleDefUse()
	for _, want := range []string{
		"; def r1",
		"; use r1,mem def r2",
		"; use r1,r2 def mem",
		"; -",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DisassembleDefUse() missing %q in:\n%s", want, out)
		}
	}
	// The plain disassembly must stay unannotated.
	if strings.Contains(p.Disassemble(), "; def") {
		t.Error("Disassemble() leaked def/use annotations")
	}
}

func TestCacheProbe(t *testing.T) {
	c := New(MustAssemble(".code\n HALT\n"), newStubIO())
	addr := DataBase // line index of DataBase, cold cache

	acc := c.Cache.Probe(addr)
	if acc.Hit {
		t.Fatal("probe of a cold cache reported a hit")
	}
	if acc.VictimValid || acc.VictimDirty {
		t.Errorf("cold-cache probe reported a victim: %+v", acc)
	}
	if acc.FillBase != addr&^15 {
		t.Errorf("FillBase = %#x, want %#x", acc.FillBase, addr&^15)
	}

	// Fill the line via a real write, then probe again: a hit, and the
	// probe must not have perturbed anything.
	if err := c.Cache.WriteWord(addr, 42, c.Mem); err != nil {
		t.Fatal(err)
	}
	acc = c.Cache.Probe(addr)
	if !acc.Hit {
		t.Fatal("probe after fill missed")
	}
	if got, ok := c.Cache.PeekWord(addr); !ok || got != 42 {
		t.Fatalf("PeekWord after probe = %d,%v, want 42,true", got, ok)
	}

	// A conflicting address (same line, different tag) sees the dirty
	// victim.
	conflict := addr + uint32(CacheLines*CacheLineSize)
	acc = c.Cache.Probe(conflict)
	if acc.Hit {
		t.Fatal("conflicting address hit")
	}
	if !acc.VictimValid || !acc.VictimDirty {
		t.Errorf("conflict probe lost the dirty victim: %+v", acc)
	}
	if acc.VictimBase != addr&^15 {
		t.Errorf("VictimBase = %#x, want %#x", acc.VictimBase, addr&^15)
	}

	tag, valid, dirty := c.Cache.LineState(acc.Line)
	if !valid || !dirty {
		t.Errorf("LineState = tag %d valid %v dirty %v, want the dirty line", tag, valid, dirty)
	}
}
