package cpu

import (
	"math"
	"strings"
	"testing"
)

func TestAssembleMinimal(t *testing.T) {
	p, err := Assemble(`
.code
start:  SIG
        MOVI r1, 5
        HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 3 {
		t.Fatalf("code length = %d, want 3", len(p.Code))
	}
	if p.CodeLabels["start"] != CodeBase {
		t.Errorf("start label = %#x", p.CodeLabels["start"])
	}
}

func TestAssembleDataSection(t *testing.T) {
	p, err := Assemble(`
.code
        HALT
.data
a:      .float 7.0
b:      .word -3
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 2 {
		t.Fatalf("data length = %d, want 2", len(p.Data))
	}
	if p.Data[0] != math.Float32bits(7.0) {
		t.Errorf("float data = %#x", p.Data[0])
	}
	if int32(p.Data[1]) != -3 {
		t.Errorf("word data = %d", int32(p.Data[1]))
	}
	if addr, ok := p.DataAddr("b"); !ok || addr != DataBase+4 {
		t.Errorf("DataAddr(b) = %#x, %v", addr, ok)
	}
}

func TestAssembleDataOffsetOperand(t *testing.T) {
	p, err := Assemble(`
.code
        MOVI r10, 0x1000
        LD   r1, @v(r10)
        HALT
.data
pad:    .word 0
v:      .float 1.5
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := Decode(p.Code[1])
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != 4 {
		t.Errorf("@v offset = %d, want 4", in.Imm)
	}
}

func TestAssembleAbsoluteLabelImmediate(t *testing.T) {
	p, err := Assemble(`
.code
        MOVI r1, =v
        HALT
.data
v:      .word 9
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := Decode(p.Code[0])
	if uint32(in.Imm) != DataBase {
		t.Errorf("=v = %#x, want %#x", in.Imm, DataBase)
	}
}

func TestAssembleBranchTarget(t *testing.T) {
	p, err := Assemble(`
.code
top:    SIG
        CMP r1, r2
        BEQ top
        HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := Decode(p.Code[2])
	if uint32(in.Imm) != CodeBase {
		t.Errorf("branch target = %#x, want %#x", in.Imm, CodeBase)
	}
}

func TestAssembleRejectsNonSigTarget(t *testing.T) {
	_, err := Assemble(`
.code
top:    MOVI r1, 1
        JMP top
`)
	if err == nil || !strings.Contains(err.Error(), "landing pad") {
		t.Errorf("expected landing-pad error, got %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", ".code\n FROB r1, r2\n"},
		{"bad register", ".code\n MOVI r16, 1\n"},
		{"bad register token", ".code\n MOVI x1, 1\n"},
		{"missing operand", ".code\n MOVI r1\n"},
		{"extra operand", ".code\n NOP r1\n"},
		{"undefined branch label", ".code\n JMP nowhere\n"},
		{"undefined data label", ".code\n LD r1, @nope(r10)\n"},
		{"duplicate label", ".code\na: SIG\na: SIG\n"},
		{"bad immediate", ".code\n MOVI r1, zork\n"},
		{"immediate out of range", ".code\n MOVI r1, 100000\n"},
		{"bad mem operand", ".code\n LD r1, 4\n"},
		{"bad data directive", ".data\nv: .quad 1\n"},
		{"bad float", ".data\nv: .float abc\n"},
		{"label on section directive", "lbl: .code\n NOP\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Assemble(tt.src); err == nil {
				t.Error("expected an assembly error")
			}
		})
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble(`
; full-line comment
.code
        NOP        ; trailing comment
        NOP        # hash comment
        HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 3 {
		t.Errorf("code length = %d, want 3", len(p.Code))
	}
}

func TestAssembleHexAndNegativeImmediates(t *testing.T) {
	p, err := Assemble(`
.code
        MOVI r1, 0x2000
        MOVI r2, -5
        HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	in0, _ := Decode(p.Code[0])
	if in0.Imm != 0x2000 {
		t.Errorf("hex imm = %#x", in0.Imm)
	}
	in1, _ := Decode(p.Code[1])
	if int16(in1.Imm) != -5 {
		t.Errorf("negative imm = %d", int16(in1.Imm))
	}
}

func TestMustAssemblePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustAssemble(".code\n BADOP\n")
}

func TestAssembleLabelOnOwnLine(t *testing.T) {
	p, err := Assemble(`
.code
alone:
        SIG
        JMP alone
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeLabels["alone"] != CodeBase {
		t.Errorf("label = %#x", p.CodeLabels["alone"])
	}
}

func TestAssembleDoubleDirective(t *testing.T) {
	p, err := Assemble(`
.code
        HALT
.data
d:      .double 7.0
after:  .word 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3 {
		t.Fatalf("data length = %d, want 3", len(p.Data))
	}
	bits := uint64(p.Data[0])<<32 | uint64(p.Data[1])
	if math.Float64frombits(bits) != 7.0 {
		t.Errorf("double data = %v", math.Float64frombits(bits))
	}
	if addr, _ := p.DataAddr("after"); addr != DataBase+8 {
		t.Errorf("label after double = %#x, want %#x", addr, DataBase+8)
	}
}

func TestAssembleDataOffsetDisplacement(t *testing.T) {
	p, err := Assemble(`
.code
        MOVI r1, 0x1000
        LD   r2, @d(r1)
        LD   r3, @d+4(r1)
        HALT
.data
d:      .double 1.5
`)
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := Decode(p.Code[1])
	lo, _ := Decode(p.Code[2])
	if hi.Imm != 0 || lo.Imm != 4 {
		t.Errorf("offsets = %d, %d; want 0, 4", hi.Imm, lo.Imm)
	}
}

func TestAssembleBadDisplacement(t *testing.T) {
	_, err := Assemble(".code\n LD r1, @d+zz(r2)\n HALT\n.data\nd: .word 0\n")
	if err == nil {
		t.Error("expected displacement error")
	}
}

func TestAssembleFMOVD(t *testing.T) {
	p, err := Assemble(`
.code
        FMOVD r2, 7.0
        HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 5 {
		t.Fatalf("FMOVD should expand to 4 instructions, code length = %d", len(p.Code))
	}
	// Execute and verify the pair holds 7.0.
	c := New(p, nil)
	for !c.Halted() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := math.Float64frombits(uint64(c.Regs[2])<<32 | uint64(c.Regs[3]))
	if got != 7.0 {
		t.Errorf("FMOVD result = %v, want 7.0", got)
	}
}

func TestAssembleFMOVDOddRegisterRejected(t *testing.T) {
	if _, err := Assemble(".code\n FMOVD r3, 1.0\n HALT\n"); err == nil {
		t.Error("expected error for odd register pair")
	}
}

func TestAssembleFMOVDBadLiteral(t *testing.T) {
	if _, err := Assemble(".code\n FMOVD r2, abc\n HALT\n"); err == nil {
		t.Error("expected error for bad literal")
	}
}

func TestAssembleFMOVDLabelAddressing(t *testing.T) {
	// FMOVD occupies 8 bytes in the first pass too; labels after it
	// must resolve correctly.
	p, err := Assemble(`
.code
        FMOVD r2, 1.0
target: SIG
        JMP  target
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.CodeLabels["target"] != CodeBase+16 {
		t.Errorf("label after FMOVD = %#x, want %#x", p.CodeLabels["target"], CodeBase+16)
	}
}
