package cpu

import (
	"math"
	"testing"
)

func TestPeekWordPrefersResidentLine(t *testing.T) {
	mem := NewMemory()
	cache := NewCache()
	c := &CPU{Mem: mem, Cache: cache}

	addr := DataBase + 16
	mem.WriteWord(addr, 0x1111)
	if got := c.PeekWord(addr); got != 0x1111 {
		t.Fatalf("PeekWord (uncached) = %#x, want 0x1111", got)
	}

	// Pull the line in and diverge the cached copy from memory.
	if trap := cache.WriteWord(addr, 0x2222, mem); trap != nil {
		t.Fatal(trap)
	}
	if got := c.PeekWord(addr); got != 0x2222 {
		t.Fatalf("PeekWord (cached) = %#x, want the cached copy 0x2222", got)
	}
	if mem.ReadWord(addr) == 0x2222 {
		t.Fatal("write-back cache should not have updated memory yet")
	}

	// Peeking must not have changed residency or counters.
	hits, misses := cache.Hits, cache.Misses
	c.PeekWord(addr)
	c.PeekWord(addr + 64) // different tag, same index: a miss if it touched state
	if cache.Hits != hits || cache.Misses != misses {
		t.Fatalf("PeekWord moved hit/miss counters: %d/%d -> %d/%d",
			hits, misses, cache.Hits, cache.Misses)
	}
}

func TestPeekDoubleBits(t *testing.T) {
	mem := NewMemory()
	c := &CPU{Mem: mem, Cache: NewCache()}
	bits := math.Float64bits(7.25)
	addr := DataBase + 8
	mem.WriteWord(addr, uint32(bits>>32))
	mem.WriteWord(addr+4, uint32(bits))
	if got := c.PeekDoubleBits(addr); got != bits {
		t.Fatalf("PeekDoubleBits = %#x, want %#x", got, bits)
	}
}

func TestSnapshotWordsLength(t *testing.T) {
	cache := NewCache()
	words := cache.SnapshotWords(nil)
	if len(words) != CacheTotalWords {
		t.Fatalf("SnapshotWords length = %d, want %d", len(words), CacheTotalWords)
	}
}
