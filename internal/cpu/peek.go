package cpu

// Non-destructive state inspection for observers. The detail-mode
// tracer reads the controller's state variable every instruction; going
// through Cache.ReadWord would fill lines and write back victims,
// perturbing the very propagation being observed. These helpers look
// but never touch.

// CacheTotalWords is the number of data words across all cache lines,
// the length of a SnapshotWords buffer.
const CacheTotalWords = CacheLines * cacheWords

// CacheWordsPerLine is the number of data words in one cache line.
const CacheWordsPerLine = cacheWords

// PeekWord returns the cached copy of the aligned data word at addr
// when its line is resident, without updating hit/miss counters or
// line state. The second result reports residency.
func (c *Cache) PeekWord(addr uint32) (uint32, bool) {
	line := &c.lines[cacheIndex(addr)]
	if !line.valid || line.tag != cacheTag(addr) {
		return 0, false
	}
	return line.data[addr>>2&(cacheWords-1)], true
}

// SnapshotWords copies the data words of every cache line into dst
// (line-major, CacheTotalWords words), growing dst as needed, and
// returns the filled slice. Observers diff consecutive snapshots to
// learn which words an iteration touched.
func (c *Cache) SnapshotWords(dst []uint32) []uint32 {
	dst = dst[:0]
	for i := range c.lines {
		dst = append(dst, c.lines[i].data[:]...)
	}
	return dst
}

// CacheAccess predicts what a cache access at a given address would do
// to the current cache state, without performing it. It exposes exactly
// the decision points of Cache.ensure: the hit check, the victim's
// eviction, and the line refill.
type CacheAccess struct {
	Line int  // direct-mapped line index of the address
	Word int  // data-word index of the address within the line
	Hit  bool // the line currently holds the address

	// Victim state on a miss (meaningful only when !Hit): whether the
	// displaced line is valid, whether its eviction writes it back
	// (valid && dirty), and the memory base address of the write-back.
	VictimValid bool
	VictimDirty bool
	VictimBase  uint32

	// FillBase is the memory base address the refill would read
	// (meaningful only when !Hit).
	FillBase uint32
}

// Probe predicts the effect of accessing addr through the cache in its
// current state. Like PeekWord it looks but never touches: no counters,
// no fills, no write-backs.
func (c *Cache) Probe(addr uint32) CacheAccess {
	idx := cacheIndex(addr)
	line := &c.lines[idx]
	acc := CacheAccess{
		Line: idx,
		Word: int(addr >> 2 & (cacheWords - 1)),
	}
	if line.valid && line.tag == cacheTag(addr) {
		acc.Hit = true
		return acc
	}
	acc.VictimValid = line.valid
	acc.VictimDirty = line.dirty
	if line.valid {
		acc.VictimBase = lineBase(line.tag, idx)
	}
	acc.FillBase = addr &^ uint32(CacheLineSize-1)
	return acc
}

// LineState returns the metadata of cache line idx without touching it.
func (c *Cache) LineState(idx int) (tag uint16, valid, dirty bool) {
	line := &c.lines[idx]
	return line.tag, line.valid, line.dirty
}

// PeekWord returns the effective value of the aligned word at addr —
// the cached copy when the line holding addr is resident, the backing
// store otherwise — without disturbing the machine state. It is meant
// for run observers; it performs none of the EDM address checks.
func (c *CPU) PeekWord(addr uint32) uint32 {
	if SegmentOf(addr) == SegData {
		if v, ok := c.Cache.PeekWord(addr); ok {
			return v
		}
	}
	return c.Mem.ReadWord(addr)
}

// PeekDoubleBits returns the IEEE-754 bit pattern of the double stored
// at addr (high word first, low word at addr+4), read effectively like
// PeekWord.
func (c *CPU) PeekDoubleBits(addr uint32) uint64 {
	return uint64(c.PeekWord(addr))<<32 | uint64(c.PeekWord(addr+4))
}
