package cpu

// Full-machine checkpointing. A Snapshot captures every bit of state
// that influences future execution — registers, PC, flags, the
// control-flow-checking latch, the halt latch, the instruction counter,
// the complete data cache (tags, status bits, data, hit/miss counters)
// and the memory backing store. Restoring a snapshot and stepping is
// byte-for-byte indistinguishable from having executed the original
// prefix, which is what lets the campaign engine resume fault-injection
// experiments from a cached pre-injection checkpoint instead of
// replaying the golden prefix (FERRARI-style pre-injection
// snapshotting).

// LineSnapshot is the saved state of one cache line.
type LineSnapshot struct {
	Tag   uint16
	Valid bool
	Dirty bool
	Data  [cacheWords]uint32
}

// CacheSnapshot is the saved state of the data cache, including the
// diagnostic hit/miss counters so a resumed run reports the same
// statistics as a full replay.
type CacheSnapshot struct {
	Lines  [CacheLines]LineSnapshot
	Hits   uint64
	Misses uint64
}

// Snapshot is a complete, self-contained copy of the machine state.
// It shares no storage with the CPU it was taken from, so one snapshot
// can seed many concurrent resumed runs.
type Snapshot struct {
	Regs   [16]uint32
	PC     uint32
	FlagZ  bool
	FlagLT bool

	// InstrCount is the dynamic instruction count at the snapshot
	// point — the campaign's fault-injection time base continues from
	// here on resume.
	InstrCount uint64

	// LastJump and Halted preserve the control-flow-checking latch and
	// the halt latch (the trap-relevant machine state outside the
	// architectural registers).
	LastJump bool
	Halted   bool

	Mem   []uint32 // MemSize/4 words
	Cache CacheSnapshot
}

// Snapshot captures the full machine state.
func (c *CPU) Snapshot() *Snapshot {
	s := &Snapshot{
		Regs:       c.Regs,
		PC:         c.PC,
		FlagZ:      c.FlagZ,
		FlagLT:     c.FlagLT,
		InstrCount: c.instrCount,
		LastJump:   c.lastJump,
		Halted:     c.halted,
		Mem:        c.Mem.Snapshot(),
	}
	s.Cache.Hits = c.Cache.Hits
	s.Cache.Misses = c.Cache.Misses
	for i := range c.Cache.lines {
		line := &c.Cache.lines[i]
		s.Cache.Lines[i] = LineSnapshot{
			Tag:   line.tag,
			Valid: line.valid,
			Dirty: line.dirty,
			Data:  line.data,
		}
	}
	return s
}

// Restore overwrites the CPU's state with the snapshot's. The CPU keeps
// its IOBus; the snapshot is not aliased and may be restored again.
func (c *CPU) Restore(s *Snapshot) {
	c.Regs = s.Regs
	c.PC = s.PC
	c.FlagZ = s.FlagZ
	c.FlagLT = s.FlagLT
	c.instrCount = s.InstrCount
	c.lastJump = s.LastJump
	c.halted = s.Halted
	copy(c.Mem.words[:], s.Mem)
	c.Cache.Hits = s.Cache.Hits
	c.Cache.Misses = s.Cache.Misses
	for i := range c.Cache.lines {
		ls := &s.Cache.Lines[i]
		c.Cache.lines[i] = cacheLine{
			tag:   ls.Tag,
			valid: ls.Valid,
			dirty: ls.Dirty,
			data:  ls.Data,
		}
	}
}

// NewFromSnapshot builds a fresh CPU positioned at the snapshot, bound
// to the given I/O bus.
func NewFromSnapshot(s *Snapshot, io IOBus) *CPU {
	c := &CPU{
		Mem:   NewMemory(),
		Cache: NewCache(),
		IO:    io,
	}
	c.Restore(s)
	return c
}

// Digest is a 128-bit signature of the complete behavioural machine
// state (everything a Snapshot captures except the diagnostic hit/miss
// counters). Two machines with equal digests at an iteration boundary
// evolve identically from there given identical inputs; the campaign
// engine uses this to cut a faulty run short once its state re-converges
// with the golden run's. 128 bits keep the collision probability
// negligible even across billions of comparisons.
type Digest [2]uint64

const (
	digestOffset2 = 0x9E3779B97F4A7C15
	digestPrime2  = 0xFF51AFD7ED558CCD
)

// StateDigest hashes the full behavioural state: registers, PC, flags,
// the control-flow and halt latches, the instruction counter, the cache
// (tags, status bits, data) and the whole memory backing store.
func (c *CPU) StateDigest() Digest {
	h1 := uint64(fnvOffset)
	h2 := uint64(digestOffset2)
	mix := func(v uint32) {
		h1 = fnv1a(h1, v)
		h2 = (h2 ^ uint64(v)) * digestPrime2
	}
	for r := 1; r < 16; r++ {
		mix(c.Regs[r])
	}
	mix(c.PC)
	mix(boolWord(c.FlagZ)<<3 | boolWord(c.FlagLT)<<2 | boolWord(c.lastJump)<<1 | boolWord(c.halted))
	mix(uint32(c.instrCount))
	mix(uint32(c.instrCount >> 32))
	for i := range c.Cache.lines {
		line := &c.Cache.lines[i]
		mix(uint32(line.tag)<<2 | boolWord(line.valid)<<1 | boolWord(line.dirty))
		for _, w := range line.data {
			mix(w)
		}
	}
	for _, w := range c.Mem.words {
		mix(w)
	}
	return Digest{h1, h2}
}
