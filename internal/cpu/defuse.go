package cpu

import (
	"fmt"
	"strings"
)

// Static def/use summaries of the instruction set, the ground truth the
// fault-space pruner's liveness analysis is built on. The tables mirror
// CPU.Step exactly: a location is a "use" when its pre-instruction value
// can influence the instruction's behaviour (result, flags, trap, or
// memory traffic), and a "def" when the instruction overwrites it at
// full width regardless of its prior value.
//
// Two architectural reads are implicit and NOT in the tables:
//
//   - The PC is read by every instruction fetch and written by every
//     completion, so the first use of a PC fault is always the faulted
//     instruction itself.
//   - The stack pointer (r14) is read by the storage check, but only
//     when a load or store actually targets the stack segment. The
//     address depends on runtime register values, so the dynamic
//     analyzer adds that use per executed instruction.

// MemMode classifies an instruction's data-memory behaviour.
type MemMode uint8

// Memory access modes.
const (
	MemNone MemMode = iota
	MemLoad
	MemStore
)

// Flag bit positions in DefUse.UseFlags / DefUse.DefFlags.
const (
	FlagMaskZ  uint8 = 1 << 0
	FlagMaskLT uint8 = 1 << 1
)

// DefUse is the static def/use summary of one decoded instruction.
// Register masks have bit i set for register ri; r0 is excluded because
// it is hardwired to zero (neither readable state nor writable).
type DefUse struct {
	UseRegs  uint16
	DefRegs  uint16
	UseFlags uint8
	DefFlags uint8
	Mem      MemMode
}

// regMask builds a register mask, dropping r0.
func regMask(regs ...int) uint16 {
	var m uint16
	for _, r := range regs {
		if r != 0 {
			m |= 1 << (r & 15)
		}
	}
	return m
}

// pairMask builds the mask of the even/odd pair starting at r.
func pairMask(r int) uint16 {
	return regMask(r, (r+1)&15)
}

// DefUse returns the instruction's static def/use summary, matching the
// execution semantics of CPU.Step.
func (in Instr) DefUse() DefUse {
	switch in.Op {
	case OpMovi, OpMovu:
		return DefUse{DefRegs: regMask(in.Rd)}
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpFadd, OpFsub, OpFmul, OpFdiv:
		return DefUse{UseRegs: regMask(in.Rs1, in.Rs2), DefRegs: regMask(in.Rd)}
	case OpAddi, OpOri:
		return DefUse{UseRegs: regMask(in.Rs1), DefRegs: regMask(in.Rd)}
	case OpLd:
		return DefUse{UseRegs: regMask(in.Rs1), DefRegs: regMask(in.Rd), Mem: MemLoad}
	case OpSt:
		// The rd slot encodes the store's source register.
		return DefUse{UseRegs: regMask(in.Rs1, in.Rd), Mem: MemStore}
	case OpCmp, OpFcmp:
		return DefUse{UseRegs: regMask(in.Rs1, in.Rs2), DefFlags: FlagMaskZ | FlagMaskLT}
	case OpFaddd, OpFsubd, OpFmuld, OpFdivd:
		return DefUse{UseRegs: pairMask(in.Rs1) | pairMask(in.Rs2), DefRegs: pairMask(in.Rd)}
	case OpFcmpd:
		return DefUse{UseRegs: pairMask(in.Rs1) | pairMask(in.Rs2), DefFlags: FlagMaskZ | FlagMaskLT}
	case OpBeq, OpBne:
		return DefUse{UseFlags: FlagMaskZ}
	case OpBlt, OpBge:
		return DefUse{UseFlags: FlagMaskLT}
	case OpBgt, OpBle:
		return DefUse{UseFlags: FlagMaskZ | FlagMaskLT}
	case OpCall:
		return DefUse{DefRegs: regMask(15)}
	case OpRet:
		return DefUse{UseRegs: regMask(15)}
	default: // Nop, Halt, Jmp, Sig, Fail
		return DefUse{}
	}
}

// String renders the summary as "use r1,r2,Z def r3", or "-" when the
// instruction touches no tracked location.
func (du DefUse) String() string {
	var b strings.Builder
	writeSet := func(label string, regs uint16, flags uint8, mem string) {
		if regs == 0 && flags == 0 && mem == "" {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(label)
		b.WriteByte(' ')
		first := true
		emit := func(s string) {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(s)
		}
		for r := 1; r < 16; r++ {
			if regs&(1<<r) != 0 {
				emit(fmt.Sprintf("r%d", r))
			}
		}
		if flags&FlagMaskZ != 0 {
			emit("Z")
		}
		if flags&FlagMaskLT != 0 {
			emit("LT")
		}
		if mem != "" {
			emit(mem)
		}
	}
	useMem, defMem := "", ""
	switch du.Mem {
	case MemLoad:
		useMem = "mem"
	case MemStore:
		defMem = "mem"
	}
	writeSet("use", du.UseRegs, du.UseFlags, useMem)
	writeSet("def", du.DefRegs, du.DefFlags, defMem)
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}
