package cpu

import (
	"fmt"
	"strings"
)

// Region partitions the injectable state elements the way the paper's
// Table 2 does: faults into the data cache versus faults into all other
// parts of the CPU ("Registers").
type Region string

// Injection regions.
const (
	RegionCache     Region = "cache"
	RegionRegisters Region = "registers"
)

// StateBit identifies one injectable bit of CPU state.
type StateBit struct {
	Region  Region
	Element string // e.g. "r5", "pc", "line3.tag", "line2.data1"
	Bit     uint   // bit position within the element
}

// String renders the bit as element[bit].
func (b StateBit) String() string {
	return fmt.Sprintf("%s/%s[%d]", b.Region, b.Element, b.Bit)
}

// StateBits enumerates every injectable state bit of the CPU, in a
// stable order: first the register region (r1..r15, PC, the two
// condition flags), then the cache region (per line: tag, valid, dirty,
// data words). r0 is excluded because it is hardwired to zero.
func StateBits() []StateBit {
	var bits []StateBit
	for r := 1; r < 16; r++ {
		for b := uint(0); b < 32; b++ {
			bits = append(bits, StateBit{RegionRegisters, fmt.Sprintf("r%d", r), b})
		}
	}
	for b := uint(0); b < 32; b++ {
		bits = append(bits, StateBit{RegionRegisters, "pc", b})
	}
	bits = append(bits,
		StateBit{RegionRegisters, "flagZ", 0},
		StateBit{RegionRegisters, "flagLT", 0},
	)
	for l := 0; l < CacheLines; l++ {
		for b := uint(0); b < tagBits; b++ {
			bits = append(bits, StateBit{RegionCache, fmt.Sprintf("line%d.tag", l), b})
		}
		bits = append(bits,
			StateBit{RegionCache, fmt.Sprintf("line%d.valid", l), 0},
			StateBit{RegionCache, fmt.Sprintf("line%d.dirty", l), 0},
		)
		for w := 0; w < cacheWords; w++ {
			for b := uint(0); b < 32; b++ {
				bits = append(bits, StateBit{RegionCache, fmt.Sprintf("line%d.data%d", l, w), b})
			}
		}
	}
	return bits
}

// FlipBit inverts the given state bit, the single-bit-flip fault model
// of the paper (SCIFI: read the scan chain, invert the bit, write it
// back).
func (c *CPU) FlipBit(sb StateBit) error {
	switch sb.Region {
	case RegionRegisters:
		return c.flipRegisterBit(sb)
	case RegionCache:
		return c.flipCacheBit(sb)
	default:
		return fmt.Errorf("cpu: unknown region %q", sb.Region)
	}
}

func (c *CPU) flipRegisterBit(sb StateBit) error {
	switch sb.Element {
	case "pc":
		c.PC ^= 1 << sb.Bit
		return nil
	case "flagZ":
		c.FlagZ = !c.FlagZ
		return nil
	case "flagLT":
		c.FlagLT = !c.FlagLT
		return nil
	}
	var r int
	if _, err := fmt.Sscanf(sb.Element, "r%d", &r); err != nil || r < 1 || r > 15 {
		return fmt.Errorf("cpu: bad register element %q", sb.Element)
	}
	c.Regs[r] ^= 1 << sb.Bit
	return nil
}

func (c *CPU) flipCacheBit(sb StateBit) error {
	var l int
	var field string
	if _, err := fmt.Sscanf(sb.Element, "line%d.%s", &l, &field); err != nil || l < 0 || l >= CacheLines {
		return fmt.Errorf("cpu: bad cache element %q", sb.Element)
	}
	line := &c.Cache.lines[l]
	switch {
	case field == "tag":
		line.tag ^= 1 << sb.Bit
	case field == "valid":
		line.valid = !line.valid
	case field == "dirty":
		line.dirty = !line.dirty
	default:
		var w int
		if _, err := fmt.Sscanf(field, "data%d", &w); err != nil || w < 0 || w >= cacheWords {
			return fmt.Errorf("cpu: bad cache element %q", sb.Element)
		}
		line.data[w] ^= 1 << sb.Bit
	}
	return nil
}

// StateBitWidth returns the number of bits the element holding sb can
// store: 1 for the flags and the cache line valid/dirty bits, the tag
// width for cache tags, and the 32-bit word width otherwise. Burst
// faults wrap within this width, so a burst never spills into a
// neighbouring element.
func StateBitWidth(sb StateBit) uint {
	switch sb.Element {
	case "flagZ", "flagLT":
		return 1
	}
	if sb.Region == RegionCache {
		if strings.HasSuffix(sb.Element, ".tag") {
			return tagBits
		}
		if strings.HasSuffix(sb.Element, ".valid") || strings.HasSuffix(sb.Element, ".dirty") {
			return 1
		}
	}
	return 32
}

// StateBitValue reads the current value of one state bit without
// perturbing the machine, for the transient fault model's
// flip-then-restore bookkeeping.
func (c *CPU) StateBitValue(sb StateBit) (bool, error) {
	switch sb.Region {
	case RegionRegisters:
		switch sb.Element {
		case "pc":
			return c.PC&(1<<sb.Bit) != 0, nil
		case "flagZ":
			return c.FlagZ, nil
		case "flagLT":
			return c.FlagLT, nil
		}
		var r int
		if _, err := fmt.Sscanf(sb.Element, "r%d", &r); err != nil || r < 1 || r > 15 {
			return false, fmt.Errorf("cpu: bad register element %q", sb.Element)
		}
		return c.Regs[r]&(1<<sb.Bit) != 0, nil
	case RegionCache:
		var l int
		var field string
		if _, err := fmt.Sscanf(sb.Element, "line%d.%s", &l, &field); err != nil || l < 0 || l >= CacheLines {
			return false, fmt.Errorf("cpu: bad cache element %q", sb.Element)
		}
		line := &c.Cache.lines[l]
		switch {
		case field == "tag":
			return line.tag&(1<<sb.Bit) != 0, nil
		case field == "valid":
			return line.valid, nil
		case field == "dirty":
			return line.dirty, nil
		default:
			var w int
			if _, err := fmt.Sscanf(field, "data%d", &w); err != nil || w < 0 || w >= cacheWords {
				return false, fmt.Errorf("cpu: bad cache element %q", sb.Element)
			}
			return line.data[w]&(1<<sb.Bit) != 0, nil
		}
	default:
		return false, fmt.Errorf("cpu: unknown region %q", sb.Region)
	}
}

// FlipBurst inverts width adjacent bits of the element holding sb,
// starting at sb.Bit and wrapping within the element's width — the
// multi-bit burst fault model. width <= 1 degenerates to FlipBit.
func (c *CPU) FlipBurst(sb StateBit, width int) error {
	if width <= 1 {
		return c.FlipBit(sb)
	}
	w := StateBitWidth(sb)
	if uint(width) > w {
		width = int(w)
	}
	for i := 0; i < width; i++ {
		b := sb
		b.Bit = (sb.Bit + uint(i)) % w
		if err := c.FlipBit(b); err != nil {
			return err
		}
	}
	return nil
}

// FinalState captures the architecturally visible end-of-run state for
// the latent-versus-overwritten comparison of §4.1: registers, flags,
// PC, and the effective memory contents (memory overlaid with dirty
// cache lines). Traps during the overlay (corrupted tags) are folded
// into the snapshot rather than raised, because the run is already
// over.
func (c *CPU) FinalState() []uint32 {
	out := make([]uint32, 0, 16+2+int(MemSize/4))
	for r := 1; r < 16; r++ {
		out = append(out, c.Regs[r])
	}
	out = append(out, c.PC, boolWord(c.FlagZ)<<1|boolWord(c.FlagLT))

	mem := c.Mem.Snapshot()
	for idx := range c.Cache.lines {
		line := &c.Cache.lines[idx]
		if !line.valid || !line.dirty {
			continue
		}
		base := lineBase(line.tag, idx)
		if SegmentOf(base) != SegData {
			// The corrupted line cannot be written back; record
			// its contents at the end so the difference is still
			// visible as state divergence.
			out = append(out, line.data[:]...)
			continue
		}
		for w := 0; w < cacheWords; w++ {
			mem[(base+uint32(w*4))/4] = line.data[w]
		}
	}
	return append(out, mem...)
}

func boolWord(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// StatesEqual compares two FinalState snapshots.
func StatesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
