package cpu

import (
	"testing"
	"testing/quick"
)

// TestPropertyStepNeverPanicsOnRandomCode executes random instruction
// words: whatever garbage the PC lands on, Step must either execute it
// or trap — never panic. This is the robustness the fault-injection
// campaigns rely on (corrupted PCs execute arbitrary code bytes).
func TestPropertyStepNeverPanicsOnRandomCode(t *testing.T) {
	f := func(words []uint32) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 256 {
			words = words[:256]
		}
		p := &Program{Code: words}
		c := New(p, nil)
		for i := 0; i < 2000; i++ {
			if err := c.Step(); err != nil {
				return true // trapped or halted: fine
			}
		}
		return true // still running: fine too
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFlipNeverBreaksExecution flips arbitrary enumerated state
// bits at arbitrary points of a small loop: execution must continue or
// trap cleanly.
func TestPropertyFlipNeverBreaksExecution(t *testing.T) {
	prog := MustAssemble(`
.code
loop:   SIG
        MOVI r1, 0x1000
        LD   r2, @v(r1)
        ADDI r2, r2, 1
        ST   r2, @v(r1)
        JMP  loop
.data
v:      .word 0
`)
	bits := StateBits()
	f := func(bitIdx uint16, when uint8) bool {
		c := New(prog, nil)
		target := int(when % 100)
		sb := bits[int(bitIdx)%len(bits)]
		for i := 0; i < 200; i++ {
			if i == target {
				if err := c.FlipBit(sb); err != nil {
					return false
				}
			}
			if err := c.Step(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEncodeDecodeTotal: every decodable word re-encodes to a
// word that decodes identically (the operand fields the instruction
// uses round-trip).
func TestPropertyEncodeDecodeTotal(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true
		}
		in2, err := Decode(in.Encode())
		if err != nil {
			return false
		}
		return in == in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
