package cpu

import "sync"

// Predecoded instruction streams. The code segment is execute-only and
// immutable after load — data stores into SegCode trap ADDRESS ERROR
// and cache write-backs outside SegData trap too — so every word of a
// program can be decoded exactly once and the per-instruction
// fetch/decode work hoisted out of the campaign hot loop. A Decoded
// stream covers the whole code segment (not just the program's words):
// a PC fault can land execution on any aligned code address, and the
// predecoded slot there must behave exactly like Decode on the raw
// word, illegal-opcode trap included.

// dop is one predecoded slot: the Instr fields plus everything Step
// would otherwise recompute per execution — the sign-extended
// immediate, the static jump-target validity, and the decode error for
// words that do not decode.
type dop struct {
	op       Opcode
	rd       int
	rs1, rs2 int
	imm      uint16
	simm     uint32 // sign-extended immediate
	jumpOK   bool   // static branch/jump/call target is a legal code address
	err      error  // non-nil: executing this word raises INSTRUCTION ERROR
}

// compile lowers a decoded instruction into its executable slot.
func compile(in Instr) dop {
	s := dop{op: in.Op, rd: in.Rd, rs1: in.Rs1, rs2: in.Rs2, imm: in.Imm, simm: signExt(in.Imm)}
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpJmp, OpCall:
		t := uint32(in.Imm)
		s.jumpOK = t%4 == 0 && SegmentOf(t) == SegCode
	}
	return s
}

// Decoded is a program compiled into a directly dispatchable slot per
// aligned code address. It is immutable after Predecode and safe to
// share across any number of CPUs and goroutines.
type Decoded struct {
	code []uint32 // the program's code words, for attach validation
	ops  []dop    // one slot per aligned code-segment address
}

// Predecode compiles prog's code segment into a decoded stream. Words
// beyond the program (the zero-filled remainder of the segment) decode
// to the same illegal-opcode slots executing them would produce.
func Predecode(prog *Program) *Decoded {
	d := &Decoded{
		code: append([]uint32(nil), prog.Code...),
		ops:  make([]dop, CodeSize/4),
	}
	for i := range d.ops {
		var w uint32
		if i < len(d.code) {
			w = d.code[i]
		}
		in, err := Decode(w)
		if err != nil {
			d.ops[i].err = err
			continue
		}
		d.ops[i] = compile(in)
	}
	return d
}

// decodedCache memoises Predecode per program identity. Workload
// programs are assembled once per variant and shared, so campaigns hit
// the same entry no matter how many runs they make. The cache is
// LRU-bounded: SWIFI campaigns churn through one mutated program per
// experiment, and an unbounded identity-keyed cache would retain every
// one of them.
const decodedCacheCap = 32

var (
	decodedMu    sync.Mutex
	decodedCache = make(map[*Program]*decodedEntry, decodedCacheCap)
	decodedClock uint64
)

type decodedEntry struct {
	d    *Decoded
	used uint64
}

// PredecodeCached returns the (process-wide, shared) decoded stream for
// prog, predecoding on first use.
func PredecodeCached(prog *Program) *Decoded {
	decodedMu.Lock()
	defer decodedMu.Unlock()
	decodedClock++
	if e, ok := decodedCache[prog]; ok {
		e.used = decodedClock
		return e.d
	}
	if len(decodedCache) >= decodedCacheCap {
		var victim *Program
		oldest := decodedClock
		for p, e := range decodedCache {
			if e.used <= oldest {
				oldest, victim = e.used, p
			}
		}
		delete(decodedCache, victim)
	}
	d := Predecode(prog)
	decodedCache[prog] = &decodedEntry{d: d, used: decodedClock}
	return d
}

// Instr returns the decoded instruction at code index idx (the word at
// CodeBase + 4*idx), or the decode error Decode would return for it.
// Consumers like the pruner's def-use capture and the detector's
// block-graph derivation use this instead of re-decoding words.
func (d *Decoded) Instr(idx int) (Instr, error) {
	s := &d.ops[idx]
	if s.err != nil {
		return Instr{}, s.err
	}
	in := Instr{Op: s.op, Rd: s.rd, Rs1: s.rs1}
	switch s.op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpCmp, OpFadd, OpFsub, OpFmul, OpFdiv, OpFcmp,
		OpFaddd, OpFsubd, OpFmuld, OpFdivd, OpFcmpd:
		in.Rs2 = s.rs2
	default:
		in.Imm = s.imm
	}
	return in, nil
}

// Len returns the number of code words the source program has (the
// stream itself covers the whole code segment).
func (d *Decoded) Len() int {
	return len(d.code)
}

// AttachDecoded points the CPU's dispatch loop at the predecoded
// stream. It verifies the stream matches the machine's loaded code
// image word for word and reports whether it attached; on mismatch the
// CPU keeps interpreting, which is always behaviour-preserving. The
// check is what makes predecoding sound to apply from snapshots: a
// snapshot of a machine running prog necessarily carries prog's code
// segment (it is immutable), and anything else is rejected here.
func (c *CPU) AttachDecoded(d *Decoded) bool {
	if d == nil {
		c.dec = nil
		return false
	}
	for i, w := range d.code {
		if c.Mem.words[i] != w {
			return false
		}
	}
	for i := len(d.code); i < int(CodeSize/4); i++ {
		if c.Mem.words[i] != 0 {
			return false
		}
	}
	c.dec = d
	return true
}

// Interpreting reports whether the CPU decodes words on every Step
// (no predecoded stream attached). The interpreted path exists for
// cross-validation against the predecoded engine.
func (c *CPU) Interpreting() bool {
	return c.dec == nil
}

// CurrentInstr returns the instruction the CPU would execute next
// (the word at PC), without touching Decode when a predecoded stream
// is attached. The PC must be a legal aligned code address — which it
// always is when called from a run observer on a non-trapped machine.
func (c *CPU) CurrentInstr() (Instr, error) {
	if c.dec != nil && c.PC%4 == 0 && SegmentOf(c.PC) == SegCode {
		return c.dec.Instr(int((c.PC - CodeBase) / 4))
	}
	return Decode(c.Mem.ReadWord(c.PC))
}

// Clone returns an independent copy of the machine bound to io,
// carrying the attached decoded stream (the copy runs the same
// program). It is Snapshot + NewFromSnapshot without the intermediate
// allocation — the lockstep engine forks a lane per injection this way.
func (c *CPU) Clone(io IOBus) *CPU {
	cp := &CPU{
		Regs:       c.Regs,
		PC:         c.PC,
		FlagZ:      c.FlagZ,
		FlagLT:     c.FlagLT,
		Mem:        NewMemory(),
		Cache:      NewCache(),
		IO:         io,
		instrCount: c.instrCount,
		lastJump:   c.lastJump,
		halted:     c.halted,
		dec:        c.dec,
	}
	copy(cp.Mem.words[:], c.Mem.words[:])
	*cp.Cache = *c.Cache
	return cp
}
