package cpu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Instr{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpMovi, Rd: 3, Imm: 0x1234},
		{Op: OpMovu, Rd: 15, Imm: 0xFFFF},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSub, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpAddi, Rd: 4, Rs1: 5, Imm: 0x8000},
		{Op: OpLd, Rd: 6, Rs1: 10, Imm: 12},
		{Op: OpSt, Rd: 7, Rs1: 10, Imm: 8},
		{Op: OpCmp, Rs1: 1, Rs2: 2},
		{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpFcmp, Rs1: 4, Rs2: 5},
		{Op: OpBeq, Imm: 0x100},
		{Op: OpJmp, Imm: 0xFFC},
		{Op: OpCall, Imm: 0x20},
		{Op: OpRet},
		{Op: OpSig},
		{Op: OpFail},
	}
	for _, in := range tests {
		t.Run(in.String(), func(t *testing.T) {
			got, err := Decode(in.Encode())
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got != in {
				t.Errorf("round trip: got %+v, want %+v", got, in)
			}
		})
	}
}

func TestDecodeIllegalOpcode(t *testing.T) {
	if _, err := Decode(0xFF000000); err == nil {
		t.Error("expected error for illegal opcode")
	}
	if _, err := Decode(0); err == nil {
		t.Error("expected error for zero opcode")
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		_, _ = Decode(w)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpFmul.String() != "FMUL" {
		t.Errorf("OpFmul.String() = %q", OpFmul.String())
	}
	if !strings.Contains(Opcode(200).String(), "200") {
		t.Errorf("unknown opcode string = %q", Opcode(200).String())
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMovi, Rd: 3, Imm: 42}, "MOVI r3, 42"},
		{Instr{Op: OpLd, Rd: 6, Rs1: 10, Imm: 12}, "LD r6, 12(r10)"},
		{Instr{Op: OpFadd, Rd: 1, Rs1: 2, Rs2: 3}, "FADD r1, r2, r3"},
		{Instr{Op: OpSig}, "SIG"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSignExt(t *testing.T) {
	tests := []struct {
		imm  uint16
		want uint32
	}{
		{0, 0},
		{1, 1},
		{0x7FFF, 0x7FFF},
		{0x8000, 0xFFFF8000},
		{0xFFFF, 0xFFFFFFFF},
	}
	for _, tt := range tests {
		if got := signExt(tt.imm); got != tt.want {
			t.Errorf("signExt(%#x) = %#x, want %#x", tt.imm, got, tt.want)
		}
	}
}

func TestSegmentOf(t *testing.T) {
	tests := []struct {
		addr uint32
		want Segment
	}{
		{0x0000, SegCode},
		{0x0FFC, SegCode},
		{0x1000, SegData},
		{0x1FFF, SegData},
		{0x2000, SegIO},
		{0x20FF, SegIO},
		{0x2100, SegNone},
		{0x3000, SegStack},
		{0x3FFF, SegStack},
		{0x4000, SegNone},
		{0xFFFF0000, SegNone},
	}
	for _, tt := range tests {
		if got := SegmentOf(tt.addr); got != tt.want {
			t.Errorf("SegmentOf(%#x) = %v, want %v", tt.addr, got, tt.want)
		}
	}
}
