package cpu

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders the program's code segment as annotated assembly,
// resolving code labels and marking control-flow landing pads. It is
// the inverse of Assemble up to label names and comments, used by the
// trace tools and for debugging workloads.
func (p *Program) Disassemble() string {
	return p.disassemble(false)
}

// DisassembleDefUse renders the code segment like Disassemble but
// annotates every instruction with its static def/use summary — the
// register, flag and memory effects the fault-space pruner's liveness
// analysis is built on. Used by the analyzer's debug output and the
// trace tools.
func (p *Program) DisassembleDefUse() string {
	return p.disassemble(true)
}

func (p *Program) disassemble(defuse bool) string {
	labelAt := make(map[uint32][]string, len(p.CodeLabels))
	for name, addr := range p.CodeLabels {
		labelAt[addr] = append(labelAt[addr], name)
	}
	for addr := range labelAt {
		sort.Strings(labelAt[addr])
	}

	var b strings.Builder
	b.WriteString(".code\n")
	for i, w := range p.Code {
		addr := CodeBase + uint32(i*4)
		for _, name := range labelAt[addr] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		in, err := Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "  %#06x  .word %#08x  ; %v\n", addr, w, err)
			continue
		}
		if defuse {
			fmt.Fprintf(&b, "  %#06x  %-24s ; %s\n", addr, in.String(), in.DefUse())
			continue
		}
		fmt.Fprintf(&b, "  %#06x  %s\n", addr, in)
	}

	if len(p.Data) > 0 {
		b.WriteString(".data\n")
		dataLabelAt := make(map[uint32][]string, len(p.DataLabels))
		for name, addr := range p.DataLabels {
			dataLabelAt[addr] = append(dataLabelAt[addr], name)
		}
		for addr := range dataLabelAt {
			sort.Strings(dataLabelAt[addr])
		}
		for i, w := range p.Data {
			addr := DataBase + uint32(i*4)
			for _, name := range dataLabelAt[addr] {
				fmt.Fprintf(&b, "%s:\n", name)
			}
			fmt.Fprintf(&b, "  %#06x  .word %#08x\n", addr, w)
		}
	}
	return b.String()
}
