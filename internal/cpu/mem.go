package cpu

// Memory map of the target system. Code is execute-only (data accesses
// trap), data is cached read/write, the I/O window is uncached and
// host-mapped, and the stack segment is guarded by the storage check.
const (
	CodeBase  uint32 = 0x0000
	CodeSize  uint32 = 0x1000
	DataBase  uint32 = 0x1000
	DataSize  uint32 = 0x1000
	IOBase    uint32 = 0x2000
	IOSize    uint32 = 0x0100
	StackBase uint32 = 0x3000
	StackSize uint32 = 0x1000

	// MemSize is the total backing-store size.
	MemSize uint32 = 0x4000

	// NullGuard: accesses below this address raise ACCESS CHECK
	// (null-pointer dereference).
	NullGuard uint32 = 4
)

// Segment classifies an address.
type Segment int

// Segment values.
const (
	SegNone Segment = iota
	SegCode
	SegData
	SegIO
	SegStack
)

// SegmentOf returns the segment containing addr, or SegNone.
func SegmentOf(addr uint32) Segment {
	switch {
	case addr < CodeBase+CodeSize:
		return SegCode
	case addr >= DataBase && addr < DataBase+DataSize:
		return SegData
	case addr >= IOBase && addr < IOBase+IOSize:
		return SegIO
	case addr >= StackBase && addr < StackBase+StackSize:
		return SegStack
	default:
		return SegNone
	}
}

// Memory is the flat backing store behind the cache. It is not a fault
// injection target: like Thor's parity-protected main memory, it is
// assumed error-free (faults live in the CPU's cache and registers).
type Memory struct {
	words [MemSize / 4]uint32
}

// NewMemory returns zeroed memory.
func NewMemory() *Memory {
	return &Memory{}
}

// ReadWord returns the aligned word at addr. The caller must have
// validated the address.
func (m *Memory) ReadWord(addr uint32) uint32 {
	return m.words[addr/4]
}

// WriteWord stores an aligned word at addr. The caller must have
// validated the address.
func (m *Memory) WriteWord(addr uint32, v uint32) {
	m.words[addr/4] = v
}

// Snapshot copies the memory contents for end-of-run state comparison.
func (m *Memory) Snapshot() []uint32 {
	out := make([]uint32, len(m.words))
	copy(out, m.words[:])
	return out
}
