// Package cpu implements the fault-injection target of the experiments:
// a 32-bit load/store virtual CPU modelled on the Thor microprocessor
// used by the paper. It has a general register file, a small write-back
// data cache, single-precision soft-float arithmetic, and the
// error-detection mechanisms of the paper's Table 1. Every architectural
// state bit is enumerable and flippable, which is the SCIFI-equivalent
// access the GOOFI campaign needs.
package cpu

import (
	"fmt"
	"sync/atomic"
)

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes. The encoding is a fixed 32-bit word:
//
//	bits 31-24: opcode
//	bits 23-20: rd   (or rs2 for ST)
//	bits 19-16: rs1
//	bits 15-0:  imm16 (I-format)  |  bits 15-12: rs2 (R-format)
const (
	OpNop Opcode = iota + 1
	OpHalt
	OpMovi // rd = signext(imm16)
	OpMovu // rd = imm16 << 16
	OpAdd  // rd = rs1 + rs2 (traps on signed overflow)
	OpSub  // rd = rs1 - rs2 (traps on signed overflow)
	OpAnd
	OpOr
	OpXor
	OpAddi // rd = rs1 + signext(imm16) (traps on signed overflow)
	OpOri  // rd = rs1 | zeroext(imm16)
	OpLd   // rd = mem[rs1 + signext(imm16)]
	OpSt   // mem[rs1 + signext(imm16)] = rs2 (rs2 encoded in rd slot)
	OpCmp  // integer compare rs1, rs2; sets flags
	OpFadd // IEEE-754 single precision on register bit patterns
	OpFsub
	OpFmul
	OpFdiv
	OpFcmp // float compare rs1, rs2; sets flags

	// Double-precision arithmetic operates on even/odd register
	// pairs: operand k names registers (k, k+1) holding the high and
	// low words of an IEEE-754 double. k must be even.
	OpFaddd
	OpFsubd
	OpFmuld
	OpFdivd
	OpFcmpd
	OpBeq // branch to code address imm16 when Z
	OpBne
	OpBlt
	OpBge
	OpBgt
	OpBle
	OpJmp  // jump to code address imm16
	OpCall // r15 = pc+4, jump
	OpRet  // pc = r15
	OpSig  // control-flow landing pad
	OpFail // raise CONSTRAINT ERROR (software run-time assertion trap)

	opMax // sentinel, keep last
)

var opNames = map[Opcode]string{
	OpNop: "NOP", OpHalt: "HALT", OpMovi: "MOVI", OpMovu: "MOVU",
	OpAdd: "ADD", OpSub: "SUB", OpAnd: "AND", OpOr: "OR", OpXor: "XOR",
	OpAddi: "ADDI", OpOri: "ORI", OpLd: "LD", OpSt: "ST", OpCmp: "CMP",
	OpFadd: "FADD", OpFsub: "FSUB", OpFmul: "FMUL", OpFdiv: "FDIV",
	OpFcmp: "FCMP", OpFaddd: "FADDD", OpFsubd: "FSUBD", OpFmuld: "FMULD",
	OpFdivd: "FDIVD", OpFcmpd: "FCMPD",
	OpBeq: "BEQ", OpBne: "BNE", OpBlt: "BLT",
	OpBge: "BGE", OpBgt: "BGT", OpBle: "BLE", OpJmp: "JMP",
	OpCall: "CALL", OpRet: "RET", OpSig: "SIG", OpFail: "FAIL",
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// valid reports whether op decodes to a defined instruction.
func (op Opcode) valid() bool {
	return op >= OpNop && op < opMax
}

// IsBranch reports whether op is a conditional branch, for static
// control-flow analysis (internal/detect's block-graph derivation).
func (op Opcode) IsBranch() bool {
	return op.isBranch()
}

// isBranch reports whether op is a conditional branch.
func (op Opcode) isBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle:
		return true
	default:
		return false
	}
}

// Instr is a decoded instruction.
type Instr struct {
	Op       Opcode
	Rd       int    // destination register (source for ST)
	Rs1, Rs2 int    // source registers
	Imm      uint16 // raw immediate; sign-extend as needed
}

// Encode packs the instruction into its 32-bit representation.
func (in Instr) Encode() uint32 {
	w := uint32(in.Op)<<24 | uint32(in.Rd&0xF)<<20 | uint32(in.Rs1&0xF)<<16
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpCmp, OpFadd, OpFsub, OpFmul, OpFdiv, OpFcmp,
		OpFaddd, OpFsubd, OpFmuld, OpFdivd, OpFcmpd:
		w |= uint32(in.Rs2&0xF) << 12
	default:
		w |= uint32(in.Imm)
	}
	return w
}

// decodeCalls counts every Decode invocation, so tests can pin that
// campaign hot paths run entirely from the predecoded stream (the fix
// for Decode being re-run on every Step). Always on: the only paths
// still decoding per instruction are the cross-validation interpreter
// and one-off program analyses, where one atomic add is noise.
var decodeCalls atomic.Uint64

// DecodeCalls returns the number of times Decode has run in this
// process. Regression tests snapshot it around a campaign and require a
// zero delta on the predecoded hot path.
func DecodeCalls() uint64 {
	return decodeCalls.Load()
}

// Decode unpacks a 32-bit instruction word. It returns an error for an
// undefined opcode (the INSTRUCTION ERROR condition).
func Decode(w uint32) (Instr, error) {
	decodeCalls.Add(1)
	op := Opcode(w >> 24)
	if !op.valid() {
		return Instr{}, fmt.Errorf("cpu: illegal opcode %#x", w>>24)
	}
	in := Instr{
		Op:  op,
		Rd:  int(w >> 20 & 0xF),
		Rs1: int(w >> 16 & 0xF),
	}
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpCmp, OpFadd, OpFsub, OpFmul, OpFdiv, OpFcmp,
		OpFaddd, OpFsubd, OpFmuld, OpFdivd, OpFcmpd:
		in.Rs2 = int(w >> 12 & 0xF)
	default:
		in.Imm = uint16(w)
	}
	return in, nil
}

// signExt sign-extends a 16-bit immediate to 32 bits.
func signExt(imm uint16) uint32 {
	return uint32(int32(int16(imm)))
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet, OpSig, OpFail:
		return in.Op.String()
	case OpMovi, OpMovu:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, int16(in.Imm))
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpFadd, OpFsub, OpFmul, OpFdiv,
		OpFaddd, OpFsubd, OpFmuld, OpFdivd:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpCmp, OpFcmp, OpFcmpd:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rs1, in.Rs2)
	case OpAddi, OpOri:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, int16(in.Imm))
	case OpLd:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, int16(in.Imm), in.Rs1)
	case OpSt:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, int16(in.Imm), in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge, OpBgt, OpBle, OpJmp, OpCall:
		return fmt.Sprintf("%s %#x", in.Op, in.Imm)
	default:
		return in.Op.String()
	}
}
