package cpu

import (
	"strings"
	"testing"
)

func TestDisassembleRoundTripsLabelsAndOps(t *testing.T) {
	p := MustAssemble(`
.code
start:  SIG
        MOVI r1, 5
        LD   r2, @v(r1)
        JMP  start
.data
v:      .word 42
`)
	out := p.Disassemble()
	for _, want := range []string{"start:", "SIG", "MOVI r1, 5", "JMP", ".data", "v:", "0x0000002a"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleIllegalWord(t *testing.T) {
	p := &Program{Code: []uint32{0xFF000000}}
	out := p.Disassemble()
	if !strings.Contains(out, "illegal opcode") {
		t.Errorf("disassembly should flag illegal words:\n%s", out)
	}
}

func TestDisassembleWorkloadPrograms(t *testing.T) {
	// Every embedded workload program must disassemble without
	// unknown words (their code contains only assembler output).
	p := MustAssemble(`
.code
loop:   SIG
        FMOVD r2, 7.0
        FADDD r2, r2, r2
        JMP loop
`)
	out := p.Disassemble()
	if strings.Contains(out, "???") || strings.Contains(out, "illegal") {
		t.Errorf("unexpected undecodable word:\n%s", out)
	}
	if !strings.Contains(out, "FADDD r2, r2, r2") {
		t.Error("double op not rendered")
	}
}
