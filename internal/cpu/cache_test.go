package cpu

import "testing"

func TestCacheReadMissThenHit(t *testing.T) {
	mem := NewMemory()
	mem.WriteWord(0x1000, 42)
	c := NewCache()
	v, trap := c.ReadWord(0x1000, mem)
	if trap != nil {
		t.Fatal(trap)
	}
	if v != 42 {
		t.Errorf("read = %d, want 42", v)
	}
	if c.Misses != 1 || c.Hits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/1", c.Hits, c.Misses)
	}
	if _, trap := c.ReadWord(0x1004, mem); trap != nil { // same line
		t.Fatal(trap)
	}
	if c.Hits != 1 {
		t.Errorf("hits = %d, want 1", c.Hits)
	}
}

func TestCacheWriteBack(t *testing.T) {
	mem := NewMemory()
	c := NewCache()
	if trap := c.WriteWord(0x1000, 7, mem); trap != nil {
		t.Fatal(trap)
	}
	if mem.ReadWord(0x1000) != 0 {
		t.Error("write-through observed; cache should be write-back")
	}
	// Conflict-miss on the same index evicts and writes back:
	// 0x1000 and 0x1080 share index 0 (bit 7 differs → different tag).
	if _, trap := c.ReadWord(0x1080, mem); trap != nil {
		t.Fatal(trap)
	}
	if mem.ReadWord(0x1000) != 7 {
		t.Errorf("victim not written back: mem = %d", mem.ReadWord(0x1000))
	}
}

func TestCacheIndexMapping(t *testing.T) {
	// Addresses 16 bytes apart map to consecutive lines.
	if cacheIndex(0x1000) == cacheIndex(0x1010) {
		t.Error("adjacent lines map to the same index")
	}
	if cacheIndex(0x1000) != cacheIndex(0x1080) {
		t.Error("conflicting addresses map to different indexes")
	}
	if cacheTag(0x1000) == cacheTag(0x1080) {
		t.Error("conflicting addresses must differ in tag")
	}
}

func TestCacheCorruptedTagWriteBackTraps(t *testing.T) {
	mem := NewMemory()
	c := NewCache()
	if trap := c.WriteWord(0x1000, 7, mem); trap != nil {
		t.Fatal(trap)
	}
	// Corrupt the tag so the dirty line points outside the data
	// segment (tag 0x1FF → base 0xFF80).
	c.lines[0].tag = 0x1FF
	_, trap := c.ReadWord(0x1000, mem)
	if trap == nil || trap.Mech != MechAddressError {
		t.Fatalf("trap = %v, want ADDRESS ERROR", trap)
	}
}

func TestCacheCorruptedTagSilentAliasing(t *testing.T) {
	mem := NewMemory()
	c := NewCache()
	if trap := c.WriteWord(0x1000, 7, mem); trap != nil {
		t.Fatal(trap)
	}
	// Corrupt the tag so the line aliases another data address
	// (0x1080: same index, different tag, still in the data segment).
	c.lines[0].tag = cacheTag(0x1080)
	if _, trap := c.ReadWord(0x1000, mem); trap != nil {
		t.Fatal(trap)
	}
	if mem.ReadWord(0x1080) != 7 {
		t.Error("aliased write-back did not corrupt the other variable")
	}
}

func TestCacheValidFlipDropsDirtyData(t *testing.T) {
	mem := NewMemory()
	mem.WriteWord(0x1000, 1)
	c := NewCache()
	if trap := c.WriteWord(0x1000, 99, mem); trap != nil {
		t.Fatal(trap)
	}
	c.lines[cacheIndex(0x1000)].valid = false // injected valid-bit flip
	v, trap := c.ReadWord(0x1000, mem)
	if trap != nil {
		t.Fatal(trap)
	}
	if v != 1 {
		t.Errorf("read = %d, want stale memory value 1 (dirty data lost)", v)
	}
}

func TestCacheFlushTo(t *testing.T) {
	mem := NewMemory()
	c := NewCache()
	if trap := c.WriteWord(0x1000, 5, mem); trap != nil {
		t.Fatal(trap)
	}
	if trap := c.WriteWord(0x1010, 6, mem); trap != nil {
		t.Fatal(trap)
	}
	if trap := c.FlushTo(mem); trap != nil {
		t.Fatal(trap)
	}
	if mem.ReadWord(0x1000) != 5 || mem.ReadWord(0x1010) != 6 {
		t.Error("flush did not write dirty lines back")
	}
}

func TestCacheInvalidate(t *testing.T) {
	mem := NewMemory()
	c := NewCache()
	if trap := c.WriteWord(0x1000, 5, mem); trap != nil {
		t.Fatal(trap)
	}
	c.Invalidate()
	v, trap := c.ReadWord(0x1000, mem)
	if trap != nil {
		t.Fatal(trap)
	}
	if v != 0 {
		t.Errorf("read after invalidate = %d, want 0 (memory value)", v)
	}
}

func TestStateBitsEnumeration(t *testing.T) {
	bits := StateBits()
	var cacheBits, regBits int
	for _, b := range bits {
		switch b.Region {
		case RegionCache:
			cacheBits++
		case RegionRegisters:
			regBits++
		default:
			t.Fatalf("unknown region %q", b.Region)
		}
	}
	// registers: 15×32 + 32 (pc) + 2 flags = 514
	if regBits != 514 {
		t.Errorf("register bits = %d, want 514", regBits)
	}
	// cache: 8 lines × (9 tag + 1 valid + 1 dirty + 128 data) = 1112
	if cacheBits != 1112 {
		t.Errorf("cache bits = %d, want 1112", cacheBits)
	}
}

func TestStateBitsStableOrder(t *testing.T) {
	a, b := StateBits(), StateBits()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enumeration not stable at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFlipBitEveryEnumerated(t *testing.T) {
	p := MustAssemble(".code\n HALT\n")
	for _, sb := range StateBits() {
		c := New(p, newStubIO())
		if err := c.FlipBit(sb); err != nil {
			t.Fatalf("FlipBit(%v): %v", sb, err)
		}
	}
}

func TestFlipBitRoundTrip(t *testing.T) {
	p := MustAssemble(".code\n HALT\n")
	c := New(p, newStubIO())
	before := c.FinalState()
	sb := StateBit{Region: RegionRegisters, Element: "r5", Bit: 3}
	if err := c.FlipBit(sb); err != nil {
		t.Fatal(err)
	}
	if StatesEqual(before, c.FinalState()) {
		t.Error("flip did not change state")
	}
	if err := c.FlipBit(sb); err != nil {
		t.Fatal(err)
	}
	if !StatesEqual(before, c.FinalState()) {
		t.Error("double flip did not restore state")
	}
}

func TestFlipBitErrors(t *testing.T) {
	p := MustAssemble(".code\n HALT\n")
	c := New(p, newStubIO())
	bad := []StateBit{
		{Region: "nowhere", Element: "r1", Bit: 0},
		{Region: RegionRegisters, Element: "r99", Bit: 0},
		{Region: RegionRegisters, Element: "bogus", Bit: 0},
		{Region: RegionCache, Element: "line9.tag", Bit: 0},
		{Region: RegionCache, Element: "line0.data9", Bit: 0},
		{Region: RegionCache, Element: "line0.bogus9", Bit: 0},
	}
	for _, sb := range bad {
		if err := c.FlipBit(sb); err == nil {
			t.Errorf("FlipBit(%v) should fail", sb)
		}
	}
}

func TestFinalStateReflectsDirtyCache(t *testing.T) {
	p := MustAssemble(`
.code
        MOVI r10, 0x1000
        MOVI r1, 123
        ST   r1, 0(r10)
        HALT
`)
	c := New(p, newStubIO())
	for !c.Halted() {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// The store is still sitting dirty in the cache; FinalState must
	// observe it anyway.
	found := false
	for _, w := range c.FinalState() {
		if w == 123 {
			found = true
		}
	}
	if !found {
		t.Error("dirty cache contents missing from FinalState")
	}
}

func TestStatesEqual(t *testing.T) {
	a := []uint32{1, 2, 3}
	if !StatesEqual(a, []uint32{1, 2, 3}) {
		t.Error("equal states reported unequal")
	}
	if StatesEqual(a, []uint32{1, 2, 4}) {
		t.Error("unequal states reported equal")
	}
	if StatesEqual(a, []uint32{1, 2}) {
		t.Error("different lengths reported equal")
	}
}
