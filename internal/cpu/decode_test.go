package cpu

import (
	"errors"
	"math/rand"
	"testing"
)

// twinMachines builds an interpreted and a predecoded CPU over the same
// program with identically randomised architectural state.
func twinMachines(t *testing.T, prog *Program, rng *rand.Rand) (interp, dec *CPU) {
	t.Helper()
	interp = New(prog, newStubIO())
	dec = New(prog, newStubIO())
	if !dec.AttachDecoded(PredecodeCached(prog)) {
		t.Fatal("AttachDecoded rejected the machine's own program")
	}
	for r := 1; r < 16; r++ {
		v := rng.Uint32()
		interp.Regs[r] = v
		dec.Regs[r] = v
	}
	// Keep SP sane often enough that loads and stores sometimes land.
	if rng.Intn(2) == 0 {
		interp.Regs[SPReg] = StackBase
		dec.Regs[SPReg] = StackBase
	}
	return interp, dec
}

// stepTwins steps both machines to completion and requires identical
// behaviour at every step: same error (or none), same state digest.
func stepTwins(t *testing.T, interp, dec *CPU, maxSteps int) {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		errI := interp.Step()
		errD := dec.Step()
		if (errI == nil) != (errD == nil) {
			t.Fatalf("step %d: interpreted err=%v, predecoded err=%v", i, errI, errD)
		}
		if errI != nil {
			if errI.Error() != errD.Error() {
				t.Fatalf("step %d: trap text differs:\n  interpreted: %v\n  predecoded:  %v", i, errI, errD)
			}
			return
		}
		if interp.StateDigest() != dec.StateDigest() {
			t.Fatalf("step %d: state digests diverge (PC=%#x vs %#x)", i, interp.PC, dec.PC)
		}
		if interp.Halted() {
			return
		}
	}
}

// randProgram emits a random mix of mostly-valid instructions; raw
// random words are thrown in so illegal opcodes are exercised too.
func randProgram(rng *rand.Rand, n int) *Program {
	code := make([]uint32, n)
	for i := range code {
		if rng.Intn(8) == 0 {
			code[i] = rng.Uint32()
			continue
		}
		op := Opcode(rng.Intn(int(opMax)-1) + 1)
		in := Instr{
			Op:  op,
			Rd:  rng.Intn(16),
			Rs1: rng.Intn(16),
			Rs2: rng.Intn(16),
			Imm: uint16(rng.Uint32()),
		}
		if op == OpJmp || op == OpCall || op.isBranch() {
			// Bias control transfers toward legal code addresses so
			// runs survive long enough to exercise the landing-pad
			// check; leave some wild.
			if rng.Intn(4) != 0 {
				in.Imm = uint16(rng.Intn(n) * 4)
			}
		}
		code[i] = in.Encode()
	}
	data := make([]uint32, 16)
	for i := range data {
		data[i] = rng.Uint32()
	}
	return &Program{Code: code, Data: data}
}

// TestPredecodeEquivalenceRandomPrograms is the core soundness property
// of the predecoded engine: over random programs and random register
// state, the interpreted and predecoded paths are step-for-step
// indistinguishable — same traps (text included), same state digests.
func TestPredecodeEquivalenceRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 200; trial++ {
		prog := randProgram(rng, 8+rng.Intn(120))
		interp, dec := twinMachines(t, prog, rng)
		stepTwins(t, interp, dec, 2000)
	}
}

// TestPredecodeCoversWholeSegment pins that a PC fault landing anywhere
// in the code segment — including the zero-filled tail past the
// program — behaves identically on both paths.
func TestPredecodeCoversWholeSegment(t *testing.T) {
	prog := MustAssemble(`
.code
loop:   SIG
        JMP loop
`)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		interp, dec := twinMachines(t, prog, rng)
		pc := rng.Uint32() % (CodeSize + 64) // sometimes past the segment
		interp.PC = pc
		dec.PC = pc
		stepTwins(t, interp, dec, 50)
	}
}

// TestPredecodeIllegalWordTrapText pins the exact INSTRUCTION ERROR
// text: the predecoded path must preserve Decode's error verbatim, so
// record files stay byte-identical.
func TestPredecodeIllegalWordTrapText(t *testing.T) {
	prog := &Program{Code: []uint32{0xFF000000}}
	c := New(prog, newStubIO())
	if !c.AttachDecoded(Predecode(prog)) {
		t.Fatal("attach failed")
	}
	err := c.Step()
	var trap *TrapError
	if !errors.As(err, &trap) {
		t.Fatalf("want trap, got %v", err)
	}
	if trap.Mech != MechInstrError || trap.Info != "cpu: illegal opcode 0xff" {
		t.Fatalf("trap = %v / %q", trap.Mech, trap.Info)
	}
}

// TestAttachDecodedRejectsMismatch pins the attach-time validation: a
// stream for a different program must be refused, leaving the CPU
// interpreting.
func TestAttachDecodedRejectsMismatch(t *testing.T) {
	a := MustAssemble(".code\n MOVI r1, 1\n HALT\n")
	b := MustAssemble(".code\n MOVI r1, 2\n HALT\n")
	c := New(a, newStubIO())
	if c.AttachDecoded(Predecode(b)) {
		t.Fatal("attached a stream for a different program")
	}
	if !c.Interpreting() {
		t.Fatal("CPU not interpreting after a rejected attach")
	}
	if c.AttachDecoded(nil) {
		t.Fatal("attached nil")
	}
}

// TestCurrentInstrMatchesDecode pins that the observer-facing accessor
// returns exactly what decoding the fetched word would, on both paths.
func TestCurrentInstrMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prog := randProgram(rng, 64)
	interp, dec := twinMachines(t, prog, rng)
	for i := 0; i < 200; i++ {
		wantIn, wantErr := Decode(interp.Mem.ReadWord(interp.PC))
		gotIn, gotErr := dec.CurrentInstr()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("step %d: err %v vs %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("step %d: err text %q vs %q", i, wantErr, gotErr)
			}
			return
		}
		if wantIn != gotIn {
			t.Fatalf("step %d: instr %+v vs %+v", i, wantIn, gotIn)
		}
		if interp.Step() != nil || dec.Step() != nil || interp.Halted() {
			return
		}
	}
}

// TestCloneIsIndependent pins the lockstep fork primitive: a clone
// matches the original's digest, then evolves independently.
func TestCloneIsIndependent(t *testing.T) {
	prog := MustAssemble(`
.code
        MOVI r1, 0
loop:   SIG
        ADDI r1, r1, 1
        JMP pad
pad:    SIG
        ADDI r2, r2, 1
        JMP loop
`)
	c := New(prog, newStubIO())
	c.AttachDecoded(Predecode(prog))
	for i := 0; i < 17; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp := c.Clone(newStubIO())
	if cp.StateDigest() != c.StateDigest() {
		t.Fatal("clone digest differs")
	}
	if cp.Interpreting() {
		t.Fatal("clone lost the decoded stream")
	}
	if err := cp.Step(); err != nil {
		t.Fatal(err)
	}
	if cp.StateDigest() == c.StateDigest() {
		t.Fatal("stepping the clone changed nothing")
	}
	before := c.StateDigest()
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
	if c.StateDigest() == before {
		t.Fatal("original did not evolve")
	}
}

// TestDecodeCallsCounts sanity-checks the regression counter itself.
func TestDecodeCallsCounts(t *testing.T) {
	before := DecodeCalls()
	if _, err := Decode(Instr{Op: OpNop}.Encode()); err != nil {
		t.Fatal(err)
	}
	if DecodeCalls() != before+1 {
		t.Fatalf("DecodeCalls delta = %d, want 1", DecodeCalls()-before)
	}
}
