package cpu

import "testing"

// FuzzPredecodeEquivalence fuzzes the core predecode soundness claim
// over single instruction words: executing any word — decodable or not
// — through the interpreted and the predecoded paths must be
// indistinguishable, trap text included. The checked-in corpus under
// testdata/fuzz seeds one word per opcode plus illegal encodings; CI
// runs a short -fuzz smoke on top.
func FuzzPredecodeEquivalence(f *testing.F) {
	for op := OpNop; op < opMax; op++ {
		f.Add(Instr{Op: op, Rd: 4, Rs1: 1, Rs2: 2, Imm: 0x1008}.Encode(), uint32(0x1008), uint32(0x3FF0))
	}
	f.Add(uint32(0x00000000), uint32(0), uint32(0))
	f.Add(uint32(0xFFFFFFFF), ^uint32(0), ^uint32(0))

	f.Fuzz(func(t *testing.T, word, a, b uint32) {
		prog := &Program{Code: []uint32{word, Instr{Op: OpHalt}.Encode()}}
		interp := New(prog, newStubIO())
		dec := New(prog, newStubIO())
		if !dec.AttachDecoded(Predecode(prog)) {
			t.Fatal("AttachDecoded rejected the machine's own program")
		}
		for _, c := range []*CPU{interp, dec} {
			c.Regs[1], c.Regs[2] = a, b
			c.Regs[4] = a ^ b
			c.Regs[15] = a % (CodeSize * 2)
		}
		for i := 0; i < 4; i++ {
			errI := interp.Step()
			errD := dec.Step()
			if (errI == nil) != (errD == nil) {
				t.Fatalf("step %d: interpreted err=%v, predecoded err=%v", i, errI, errD)
			}
			if errI != nil {
				if errI.Error() != errD.Error() {
					t.Fatalf("step %d: trap text differs: %v vs %v", i, errI, errD)
				}
				return
			}
			if interp.StateDigest() != dec.StateDigest() {
				t.Fatalf("step %d: state digests diverge after %#x", i, word)
			}
			if interp.Halted() {
				return
			}
		}
	})
}
