// Package castore is a content-addressed result store: blobs filed
// under the SHA-256 of what produced them. ctrlguardd uses it to
// memoize campaigns — a campaign's records are a deterministic
// function of (engine version, canonical spec), so a duplicate
// submission can be served the original run's bytes instead of
// burning workers re-deriving them. Entries are immutable once
// written; eviction is least-recently-used under an optional byte
// budget.
package castore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ctrlguard/internal/fsatomic"
)

// Key derives the content address for a result: the hex SHA-256 of
// the canonical JSON encoding of parts, hashed in order with a
// length-prefixed frame so distinct part sequences cannot collide.
// Callers pass the values that fully determine the result (e.g. an
// engine version string and a canonicalized spec struct).
func Key(parts ...any) (string, error) {
	h := sha256.New()
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			return "", fmt.Errorf("castore: canonicalize key part: %w", err)
		}
		fmt.Fprintf(h, "%d:", len(b))
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Store is a directory of content-addressed blobs. All methods are
// safe for concurrent use; writes are atomic (temp + fsync + rename),
// so a crash mid-Put never leaves a corrupt entry addressable.
type Store struct {
	dir      string
	maxBytes int64 // 0 = unbounded

	mu sync.Mutex // serialises eviction sweeps against writes
}

// Open creates (if needed) and opens a store rooted at dir. maxBytes
// bounds the total stored size; 0 means unbounded.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("castore: create %s: %w", dir, err)
	}
	return &Store{dir: dir, maxBytes: maxBytes}, nil
}

// path maps a key onto its blob file. Keys are hex digests; anything
// else is rejected by the public methods before reaching here.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".blob")
}

func validKey(key string) error {
	if len(key) != 64 {
		return fmt.Errorf("castore: malformed key %q", key)
	}
	for _, c := range key {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return fmt.Errorf("castore: malformed key %q", key)
		}
	}
	return nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	if s == nil || validKey(key) != nil {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Get returns the blob stored under key, touching its LRU clock.
// ok is false when the key is absent.
func (s *Store) Get(key string) (data []byte, ok bool, err error) {
	if s == nil {
		return nil, false, nil
	}
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("castore: read %s: %w", key, err)
	}
	s.touch(key)
	return b, true, nil
}

// CopyTo writes the blob stored under key to dst atomically, touching
// the entry's LRU clock. ok is false when the key is absent.
func (s *Store) CopyTo(key, dst string) (ok bool, err error) {
	if s == nil {
		return false, nil
	}
	if err := validKey(key); err != nil {
		return false, err
	}
	src, err := os.Open(s.path(key))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("castore: open %s: %w", key, err)
	}
	defer src.Close()
	if err := fsatomic.WriteFile(dst, func(w io.Writer) error {
		_, err := io.Copy(w, src)
		return err
	}); err != nil {
		return false, fmt.Errorf("castore: copy %s to %s: %w", key, dst, err)
	}
	s.touch(key)
	return true, nil
}

// Put stores data under key. Entries are immutable: putting an
// existing key is a no-op (first write wins — with deterministic
// producers every writer carries the same bytes anyway).
func (s *Store) Put(key string, data []byte) error {
	if s == nil {
		return nil
	}
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.path(key)); err == nil {
		return nil
	}
	if err := fsatomic.WriteFile(s.path(key), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	return s.evictLocked()
}

// PutFile stores the contents of src under key (immutable, first
// write wins).
func (s *Store) PutFile(key, src string) error {
	if s == nil {
		return nil
	}
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.path(key)); err == nil {
		return nil
	}
	f, err := os.Open(src)
	if err != nil {
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	defer f.Close()
	if err := fsatomic.WriteFile(s.path(key), func(w io.Writer) error {
		_, err := io.Copy(w, f)
		return err
	}); err != nil {
		return fmt.Errorf("castore: put %s: %w", key, err)
	}
	return s.evictLocked()
}

// touch bumps an entry's mtime so eviction treats it as recently
// used. Best-effort: a failed touch only skews LRU order.
func (s *Store) touch(key string) {
	now := time.Now()
	_ = os.Chtimes(s.path(key), now, now)
}

// Stats reports the number of entries and total stored bytes.
func (s *Store) Stats() (entries int, bytes int64) {
	if s == nil {
		return 0, 0
	}
	for _, e := range s.entries() {
		entries++
		bytes += e.size
	}
	return entries, bytes
}

type entry struct {
	path  string
	size  int64
	mtime time.Time
}

func (s *Store) entries() []entry {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "*.blob"))
	out := make([]entry, 0, len(matches))
	for _, p := range matches {
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		out = append(out, entry{path: p, size: fi.Size(), mtime: fi.ModTime()})
	}
	return out
}

// evictLocked drops least-recently-used entries until the store fits
// its byte budget. Caller holds s.mu.
func (s *Store) evictLocked() error {
	if s.maxBytes <= 0 {
		return nil
	}
	es := s.entries()
	var total int64
	for _, e := range es {
		total += e.size
	}
	if total <= s.maxBytes {
		return nil
	}
	sort.Slice(es, func(i, j int) bool { return es[i].mtime.Before(es[j].mtime) })
	for _, e := range es {
		if total <= s.maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("castore: evict %s: %w", e.path, err)
		}
		total -= e.size
	}
	return nil
}
