package castore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestKeyDeterministicAndFramed(t *testing.T) {
	type spec struct {
		N    int    `json:"n"`
		Seed uint64 `json:"seed"`
	}
	k1, err := Key("engine/1", spec{N: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Key("engine/1", spec{N: 10, Seed: 7})
	if k1 != k2 {
		t.Fatal("identical parts hashed differently")
	}
	if len(k1) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(k1))
	}
	k3, _ := Key("engine/2", spec{N: 10, Seed: 7})
	if k1 == k3 {
		t.Fatal("engine version not part of the address")
	}
	k4, _ := Key("engine/1", spec{N: 10, Seed: 8})
	if k1 == k4 {
		t.Fatal("spec change not part of the address")
	}
	// The length-prefixed frame keeps part boundaries from colliding.
	a, _ := Key("ab", "c")
	b, _ := Key("a", "bc")
	if a == b {
		t.Fatal("part boundary collision")
	}
}

func TestStorePutGetCopy(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "cache"), 0)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := Key("engine/1", 42)
	if s.Has(key) {
		t.Fatal("empty store has key")
	}
	if _, ok, _ := s.Get(key); ok {
		t.Fatal("Get on empty store hit")
	}
	want := []byte("{\"id\":0}\n{\"id\":1}\n")
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("stored key missing")
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	// First write wins; a second Put cannot mutate the entry.
	if err := s.Put(key, []byte("different")); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get(key)
	if !bytes.Equal(got, want) {
		t.Fatal("Put overwrote an immutable entry")
	}

	dst := filepath.Join(t.TempDir(), "out.jsonl")
	ok, err = s.CopyTo(key, dst)
	if err != nil || !ok {
		t.Fatalf("CopyTo = %v, %v", ok, err)
	}
	b, _ := os.ReadFile(dst)
	if !bytes.Equal(b, want) {
		t.Fatal("CopyTo bytes differ from Put bytes")
	}
	missing, _ := Key("engine/1", 43)
	if ok, _ := s.CopyTo(missing, dst); ok {
		t.Fatal("CopyTo hit on a missing key")
	}

	if n, sz := s.Stats(); n != 1 || sz != int64(len(want)) {
		t.Fatalf("Stats = %d entries, %d bytes; want 1, %d", n, sz, len(want))
	}
}

func TestStorePutFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "run.jsonl")
	want := []byte("{\"id\":0}\n")
	os.WriteFile(src, want, 0o644)
	s, _ := Open(filepath.Join(dir, "cache"), 0)
	key, _ := Key("engine/1", "spec")
	if err := s.PutFile(key, src); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get after PutFile = %q, %v", got, ok)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	// Budget fits two 100-byte entries; a third evicts the least
	// recently used.
	s, _ := Open(filepath.Join(t.TempDir(), "cache"), 250)
	blob := bytes.Repeat([]byte("x"), 100)
	keys := make([]string, 3)
	for i := range keys {
		keys[i], _ = Key("engine/1", i)
	}
	s.Put(keys[0], blob)
	s.Put(keys[1], blob)
	// Age entry 0, then touch it via Get so entry 1 becomes the LRU.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(s.path(keys[0]), old, old)
	older := time.Now().Add(-2 * time.Hour)
	os.Chtimes(s.path(keys[1]), older, older)
	if _, ok, _ := s.Get(keys[0]); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	s.Put(keys[2], blob)
	if s.Has(keys[1]) {
		t.Fatal("LRU entry survived eviction")
	}
	if !s.Has(keys[0]) || !s.Has(keys[2]) {
		t.Fatal("recently used entries evicted")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	key, _ := Key("engine/1", 1)
	if s.Has(key) {
		t.Fatal("nil store has key")
	}
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatal("nil store Get misbehaved")
	}
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.CopyTo(key, "unused"); ok || err != nil {
		t.Fatal("nil store CopyTo misbehaved")
	}
}

func TestMalformedKeyRejected(t *testing.T) {
	s, _ := Open(filepath.Join(t.TempDir(), "cache"), 0)
	for _, bad := range []string{"", "short", "../../etc/passwd", string(bytes.Repeat([]byte("Z"), 64))} {
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put accepted malformed key %q", bad)
		}
	}
}
