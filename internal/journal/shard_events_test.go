package journal

import (
	"path/filepath"
	"testing"
)

func intp(v int) *int { return &v }

func TestReduceFoldsCompletedShards(t *testing.T) {
	entries := []Entry{
		{Job: "c1", Type: EventSubmitted, Kind: "campaign", Total: 60},
		{Job: "c1", Type: EventStarted, State: "running"},
		{Job: "c1", Type: EventShardLeased, Shard: intp(0), Executor: "local-1"},
		{Job: "c1", Type: EventShardLeased, Shard: intp(1), Executor: "local-2"},
		{Job: "c1", Type: EventShardRenewed, Shard: intp(0), Executor: "local-1"},
		{Job: "c1", Type: EventShardCompleted, Shard: intp(1), Executor: "local-2"},
		{Job: "c1", Type: EventShardExpired, Shard: intp(0), Executor: "local-1", Error: "lease expired"},
		{Job: "c1", Type: EventShardLeased, Shard: intp(0), Executor: "local-2"},
		{Job: "c1", Type: EventShardCompleted, Shard: intp(0), Executor: "local-2"},
	}
	statuses := Reduce(entries)
	if len(statuses) != 1 {
		t.Fatalf("got %d statuses, want 1", len(statuses))
	}
	s := statuses[0]
	if len(s.ShardsDone) != 2 || !s.ShardsDone[0] || !s.ShardsDone[1] {
		t.Fatalf("ShardsDone = %v, want {0,1}", s.ShardsDone)
	}
	if s.Terminal {
		t.Fatal("completed shards must not make the job terminal")
	}
}

func TestShardEventsRoundTripThroughFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	writes := []Entry{
		{Job: "c1", Type: EventSubmitted, Kind: "campaign", Total: 40},
		{Job: "c1", Type: EventShardLeased, Shard: intp(0), Executor: "w1", Done: 0},
		{Job: "c1", Type: EventShardCompleted, Shard: intp(0), Executor: "w1", Done: 20},
	}
	for _, e := range writes {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, entries, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(entries))
	}
	got := entries[1]
	if got.Type != EventShardLeased || got.Shard == nil || *got.Shard != 0 || got.Executor != "w1" {
		t.Fatalf("shard-leased entry did not round-trip: %+v", got)
	}
	statuses := Reduce(entries)
	if !statuses[0].ShardsDone[0] {
		t.Fatalf("ShardsDone after replay = %v, want {0}", statuses[0].ShardsDone)
	}
}

// TestCompactPreservesShardCompletions: compacting a journal with an
// in-flight distributed campaign must not lose which shards finished —
// a restart would otherwise re-run them.
func TestCompactPreservesShardCompletions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	seed := []Entry{
		{Job: "c1", Type: EventSubmitted, Kind: "campaign", Total: 90},
		{Job: "c1", Type: EventStarted, State: "running"},
		{Job: "c1", Type: EventShardCompleted, Shard: intp(2)},
		{Job: "c1", Type: EventShardCompleted, Shard: intp(0)},
		{Job: "c2", Type: EventSubmitted, Kind: "campaign", Total: 10},
		{Job: "c2", Type: EventTerminal, State: "done", Done: 10, Total: 10},
	}
	for _, e := range seed {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(Reduce(seed)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, entries, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	statuses := Reduce(entries)
	if len(statuses) != 2 {
		t.Fatalf("got %d statuses after compaction, want 2", len(statuses))
	}
	c1 := statuses[0]
	if len(c1.ShardsDone) != 2 || !c1.ShardsDone[0] || !c1.ShardsDone[2] {
		t.Fatalf("compaction lost shard completions: %v, want {0,2}", c1.ShardsDone)
	}
	if c1.Terminal {
		t.Fatal("c1 must stay non-terminal through compaction")
	}
	if !statuses[1].Terminal || statuses[1].State != "done" {
		t.Fatalf("c2 lost its terminal state: %+v", statuses[1])
	}
	// Terminal jobs do not need their shard trail.
	for _, e := range entries {
		if e.Job == "c2" && e.Type == EventShardCompleted {
			t.Fatal("compaction emitted shard entries for a terminal job")
		}
	}
}
