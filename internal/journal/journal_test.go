package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openT(t *testing.T, path string) (*Journal, []Entry) {
	t.Helper()
	j, entries, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, entries
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, entries := openT(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	spec := json.RawMessage(`{"variant":"alg1","n":100,"seed":7}`)
	events := []Entry{
		{Job: "c000001", Type: EventSubmitted, Kind: "campaign", State: "queued", Total: 100, Spec: spec},
		{Job: "c000001", Type: EventStarted, State: "running"},
		{Job: "c000001", Type: EventProgress, Done: 40, Total: 100},
		{Job: "c000001", Type: EventTerminal, State: "done", Done: 100, Total: 100,
			Outcomes: map[string]int{"latent": 60, "uwr-permanent": 40}},
	}
	for _, e := range events {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, replayed := openT(t, path)
	if len(replayed) != len(events) {
		t.Fatalf("replayed %d entries, want %d", len(replayed), len(events))
	}
	for i, e := range replayed {
		if e.Seq != int64(i+1) {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.Job != "c000001" || e.Type != events[i].Type {
			t.Errorf("entry %d = %+v, want type %s", i, e, events[i].Type)
		}
		if e.Time.IsZero() {
			t.Errorf("entry %d missing timestamp", i)
		}
	}
	if string(replayed[0].Spec) != string(spec) {
		t.Errorf("spec round-trip: %s", replayed[0].Spec)
	}

	st := Reduce(replayed)
	if len(st) != 1 {
		t.Fatalf("reduce: %d jobs", len(st))
	}
	s := st[0]
	if !s.Terminal || s.State != "done" || s.Done != 100 || s.Total != 100 {
		t.Fatalf("reduced status = %+v", s)
	}
	if s.Outcomes["latent"] != 60 {
		t.Errorf("outcomes lost: %v", s.Outcomes)
	}
}

// TestTornTailRepaired is the mid-record crash: the final append is cut
// short. Open must drop exactly the torn line, repair the file, and
// keep subsequent appends well-formed.
func TestTornTailRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openT(t, path)
	j.Append(Entry{Job: "c1", Type: EventSubmitted, State: "queued"})
	j.Append(Entry{Job: "c1", Type: EventStarted, State: "running"})
	j.Close()

	// Simulate a crash mid-append: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"job":"c1","ev":"term`)
	f.Close()

	j2, entries := openT(t, path)
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries after torn tail, want 2", len(entries))
	}
	// The repair must allow clean appends: the new entry continues the
	// sequence and a fresh replay sees three well-formed entries.
	if err := j2.Append(Entry{Job: "c1", Type: EventTerminal, State: "interrupted"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, again := openT(t, path)
	if len(again) != 3 {
		t.Fatalf("replayed %d entries after repair+append, want 3", len(again))
	}
	if again[2].Seq != 3 || again[2].State != "interrupted" {
		t.Fatalf("appended entry = %+v", again[2])
	}
}

// A malformed line followed by more entries is corruption, not a torn
// tail, and must fail loudly rather than silently dropping history.
func TestMidStreamCorruptionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	content := `{"seq":1,"job":"c1","ev":"submitted"}` + "\n" +
		"GARBAGE NOT JSON\n" +
		`{"seq":3,"job":"c1","ev":"started"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted a corrupt mid-stream line")
	}
}

func TestReadEntriesTruncatedError(t *testing.T) {
	in := `{"seq":1,"job":"c1","ev":"submitted"}` + "\n" + `{"seq":2,"job":`
	entries, err := ReadEntries(strings.NewReader(in))
	var trunc *TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("err = %v, want TruncatedError", err)
	}
	if trunc.Line != 2 || len(entries) != 1 {
		t.Fatalf("entries = %d, trunc = %+v", len(entries), trunc)
	}
}

func TestReduceResumeReopensJob(t *testing.T) {
	entries := []Entry{
		{Seq: 1, Job: "c1", Type: EventSubmitted, Kind: "campaign", State: "queued", Total: 10},
		{Seq: 2, Job: "c1", Type: EventStarted, State: "running"},
		{Seq: 3, Job: "c1", Type: EventTerminal, State: "interrupted", Done: 4, Error: "shutdown"},
		{Seq: 4, Job: "c1", Type: EventResumed, State: "queued"},
	}
	st := Reduce(entries)
	if len(st) != 1 {
		t.Fatalf("%d jobs", len(st))
	}
	if st[0].Terminal {
		t.Fatal("resumed job still terminal")
	}
	if st[0].State != "queued" || st[0].Error != "" {
		t.Fatalf("resumed status = %+v", st[0])
	}
}

func TestCompactKeepsStatusesAndSequencing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := openT(t, path)
	spec := json.RawMessage(`{"n":10}`)
	// A finished job with lots of progress chatter, plus a live one.
	j.Append(Entry{Job: "c1", Type: EventSubmitted, Kind: "campaign", State: "queued", Total: 10, Spec: spec})
	j.Append(Entry{Job: "c1", Type: EventStarted, State: "running"})
	for d := 1; d <= 9; d++ {
		j.Append(Entry{Job: "c1", Type: EventProgress, Done: d, Total: 10})
	}
	j.Append(Entry{Job: "c1", Type: EventTerminal, State: "done", Done: 10, Total: 10, Time: time.Now()})
	j.Append(Entry{Job: "c2", Type: EventSubmitted, Kind: "campaign", State: "queued", Total: 5, Spec: spec})
	j.Append(Entry{Job: "c2", Type: EventStarted, State: "running"})

	jr, before, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if err := j.Compact(Reduce(before)); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction continue the new sequence.
	if err := j.Append(Entry{Job: "c2", Type: EventTerminal, State: "done", Done: 5, Total: 5}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, after := openT(t, path)
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the journal: %d -> %d lines", len(before), len(after))
	}
	st := Reduce(after)
	if len(st) != 2 {
		t.Fatalf("%d jobs after compact", len(st))
	}
	for _, s := range st {
		if !s.Terminal || s.State != "done" {
			t.Errorf("job %s status = %+v", s.Job, s)
		}
		if string(s.Spec) != string(spec) {
			t.Errorf("job %s lost its spec: %s", s.Job, s.Spec)
		}
	}
}
