// Package journal is a durable, append-only log of job lifecycle
// events — the campaign server's write-ahead journal. It applies the
// paper's best-effort-recovery discipline to the harness itself: every
// state transition of every job is persisted (fsync'd) before the
// server acts on it, so a daemon crash costs at most the tail of the
// current campaign, never the queue.
//
// The format is JSON lines, one Entry per line. Like the campaign
// record store, the reader is truncation-tolerant: a final line cut
// short by a crash mid-append is dropped (and the file repaired by
// truncating the torn tail on Open), while a malformed line in the
// middle of the stream — corruption, not truncation — is a hard error.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ctrlguard/internal/fsatomic"
)

// EventType names one kind of lifecycle event.
type EventType string

const (
	// EventSubmitted records a new job entering the queue, carrying its
	// spec so a restart can reconstruct it.
	EventSubmitted EventType = "submitted"
	// EventStarted records a job beginning execution.
	EventStarted EventType = "started"
	// EventProgress periodically records how far a running job has got.
	EventProgress EventType = "progress"
	// EventTerminal records a job reaching a final state (done, failed,
	// cancelled, or interrupted by a shutdown).
	EventTerminal EventType = "terminal"
	// EventResumed records a restart re-enqueueing an interrupted job.
	EventResumed EventType = "resumed"

	// EventShardLeased records a distributed campaign shard being leased
	// to an executor — a first lease or a re-lease after a failure. The
	// shard index rides in Entry.Shard, the executor name in
	// Entry.Executor.
	EventShardLeased EventType = "shard-leased"
	// EventShardRenewed records a lease renewal: the executor streamed
	// progress recently. Renewals are throttled by the coordinator so
	// the journal grows with shard count, not record count.
	EventShardRenewed EventType = "shard-renewed"
	// EventShardCompleted records a shard finishing; its segment file
	// holds every in-shard record. On restart, completed shards are not
	// re-leased — their segments are merged as-is.
	EventShardCompleted EventType = "shard-completed"
	// EventShardExpired records a lease expiring or an executor dying;
	// the shard returns to the queue for re-lease, resuming from
	// whatever its segment salvaged.
	EventShardExpired EventType = "shard-expired"
)

// Entry is one journal line. The job specs are opaque JSON so the
// journal stays independent of the job types it logs.
type Entry struct {
	Seq      int64           `json:"seq"`
	Time     time.Time       `json:"t"`
	Job      string          `json:"job"`
	Type     EventType       `json:"ev"`
	Kind     string          `json:"kind,omitempty"`
	State    string          `json:"state,omitempty"`
	Done     int             `json:"done,omitempty"`
	Total    int             `json:"total,omitempty"`
	Outcomes map[string]int  `json:"outcomes,omitempty"`
	Error    string          `json:"error,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	TuneSpec json.RawMessage `json:"tuneSpec,omitempty"`
	// Tenant names the tenant a job belongs to, so per-tenant quota
	// accounting can be reconstructed from the journal after a restart.
	// Empty on pre-tenancy journals (treated as the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Shard and Executor describe distributed-campaign lease events
	// (the shard-* event types). Shard is a pointer so shard 0 is
	// distinguishable from "not a shard event".
	Shard    *int   `json:"shard,omitempty"`
	Executor string `json:"executor,omitempty"`
}

// TruncatedError reports a journal whose final line was cut short by a
// crash mid-append. The entries before it are intact.
type TruncatedError struct {
	Line int
	Err  error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("journal: truncated entry on final line %d: %v", e.Line, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// ReadEntries parses journal entries from r. A malformed final line
// returns the intact entries together with a *TruncatedError; a
// malformed line anywhere else is a hard error.
func ReadEntries(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var trunc *TruncatedError
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if trunc != nil {
			return nil, fmt.Errorf("journal: corrupt entry on line %d: %w", trunc.Line, trunc.Err)
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			trunc = &TruncatedError{Line: line, Err: err}
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	if trunc != nil {
		return out, trunc
	}
	return out, nil
}

// Journal is an open write-ahead log. Appends are serialised and
// fsync'd before returning, so an acknowledged event survives a crash.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	bw   *bufio.Writer
	path string
	seq  int64
	size int64
}

// Open opens (creating if needed) the journal at path, replays its
// entries, repairs a crash-torn final line by truncating it, and
// returns the journal positioned for appending together with the
// replayed entries. Corruption other than a torn tail is a hard error.
func Open(path string) (*Journal, []Entry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	entries, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Truncate the torn tail (a no-op when the file ends cleanly) so
	// subsequent appends produce a well-formed stream again.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: repair %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	j := &Journal{f: f, bw: bufio.NewWriter(f), path: path, size: good}
	for _, e := range entries {
		if e.Seq > j.seq {
			j.seq = e.Seq
		}
	}
	return j, entries, nil
}

// scan reads entries from f and returns them together with the byte
// offset just past the last fully-parseable line.
func scan(f *os.File) ([]Entry, int64, error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read: %w", err)
	}
	entries, err := ReadEntries(bytes.NewReader(b))
	if err != nil {
		var trunc *TruncatedError
		if !errors.As(err, &trunc) {
			return nil, 0, err
		}
		// Offset of the torn tail: everything up to and including the
		// last newline that terminates a good line.
		good := int64(0)
		rest := b
		for i := 0; i < len(entries); {
			nl := bytes.IndexByte(rest, '\n')
			if nl < 0 {
				break
			}
			if len(bytes.TrimSpace(rest[:nl])) > 0 {
				i++
			}
			good += int64(nl + 1)
			rest = rest[nl+1:]
		}
		return entries, good, nil
	}
	return entries, int64(len(b)), nil
}

// Append assigns the entry the next sequence number, stamps it, writes
// it, and fsyncs before returning.
func (j *Journal) Append(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: append to closed journal")
	}
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now().UTC()
	}
	b, err := json.Marshal(&e)
	if err != nil {
		j.seq--
		return fmt.Errorf("journal: encode: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.bw.Write(b); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(len(b))
	return nil
}

// Size is the journal file's current length in bytes — the input to
// size-triggered compaction.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var first error
	if err := j.bw.Flush(); err != nil {
		first = err
	}
	if err := j.f.Sync(); err != nil && first == nil {
		first = err
	}
	if err := j.f.Close(); err != nil && first == nil {
		first = err
	}
	j.f = nil
	return first
}

// JobStatus is the folded state of one job after replaying the journal.
type JobStatus struct {
	Job       string
	Kind      string
	State     string
	Done      int
	Total     int
	Outcomes  map[string]int
	Error     string
	Submitted time.Time
	Finished  time.Time
	Spec      json.RawMessage
	TuneSpec  json.RawMessage
	Tenant    string
	// Terminal mirrors whether the last event for the job was an
	// EventTerminal — the job finished (in some state) rather than being
	// cut off mid-flight by a crash.
	Terminal bool
	// ShardsDone holds the shard indices this job has completed, for
	// distributed campaigns. A restarted coordinator skips these shards
	// and merges their segment files directly.
	ShardsDone map[int]bool
}

// Reduce folds a replayed entry stream into per-job statuses, ordered
// by first submission. Later events overwrite earlier state; a resumed
// event re-opens a previously terminal job.
func Reduce(entries []Entry) []JobStatus {
	byJob := make(map[string]*JobStatus)
	var order []string
	for _, e := range entries {
		s, ok := byJob[e.Job]
		if !ok {
			s = &JobStatus{Job: e.Job}
			byJob[e.Job] = s
			order = append(order, e.Job)
		}
		if e.Kind != "" {
			s.Kind = e.Kind
		}
		if e.State != "" {
			s.State = e.State
		}
		if e.Done != 0 {
			s.Done = e.Done
		}
		if e.Total != 0 {
			s.Total = e.Total
		}
		if len(e.Outcomes) > 0 {
			s.Outcomes = e.Outcomes
		}
		if e.Error != "" {
			s.Error = e.Error
		}
		if len(e.Spec) > 0 {
			s.Spec = e.Spec
		}
		if len(e.TuneSpec) > 0 {
			s.TuneSpec = e.TuneSpec
		}
		if e.Tenant != "" {
			s.Tenant = e.Tenant
		}
		switch e.Type {
		case EventSubmitted:
			s.Submitted = e.Time
		case EventTerminal:
			s.Terminal = true
			s.Finished = e.Time
		case EventResumed:
			s.Terminal = false
			s.Error = ""
		case EventShardCompleted:
			if e.Shard != nil {
				if s.ShardsDone == nil {
					s.ShardsDone = make(map[int]bool)
				}
				s.ShardsDone[*e.Shard] = true
			}
		}
	}
	out := make([]JobStatus, 0, len(order))
	for _, id := range order {
		out = append(out, *byJob[id])
	}
	return out
}

// Compact atomically rewrites the journal to a minimal equivalent
// stream: one submitted entry per job plus, where state advanced, one
// entry carrying the latest known state. A long-running daemon calls
// this at startup so the journal stays proportional to the number of
// jobs rather than the number of events.
func (j *Journal) Compact(statuses []JobStatus) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked(statuses)
}

// CompactIfOver compacts the journal when it has grown past maxBytes,
// folding its own entries down to the minimal equivalent stream — the
// long-running server's defence against unbounded journal growth.
// It reports whether a compaction ran. maxBytes <= 0 disables the
// trigger.
func (j *Journal) CompactIfOver(maxBytes int64) (bool, error) {
	if maxBytes <= 0 {
		return false, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.size <= maxBytes {
		return false, nil
	}
	if err := j.bw.Flush(); err != nil {
		return false, fmt.Errorf("journal: flush: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return false, fmt.Errorf("journal: seek: %w", err)
	}
	entries, _, err := scan(j.f)
	if err != nil {
		return false, err
	}
	if err := j.compactLocked(Reduce(entries)); err != nil {
		return false, err
	}
	return true, nil
}

func (j *Journal) compactLocked(statuses []JobStatus) error {
	if j.f == nil {
		return fmt.Errorf("journal: compact closed journal")
	}
	var seq int64
	err := fsatomic.WriteFile(j.path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, s := range statuses {
			seq++
			sub := Entry{
				Seq: seq, Time: s.Submitted, Job: s.Job,
				Type: EventSubmitted, Kind: s.Kind, State: s.State,
				Total: s.Total, Spec: s.Spec, TuneSpec: s.TuneSpec,
				Tenant: s.Tenant,
			}
			if err := enc.Encode(&sub); err != nil {
				return fmt.Errorf("journal: compact encode: %w", err)
			}
			if !s.Terminal {
				// An in-flight distributed campaign's completed shards
				// must survive compaction, or a restart would re-run
				// them. One entry per shard, in index order.
				shards := make([]int, 0, len(s.ShardsDone))
				for sh := range s.ShardsDone {
					shards = append(shards, sh)
				}
				sort.Ints(shards)
				for _, sh := range shards {
					seq++
					shard := sh
					done := Entry{
						Seq: seq, Time: s.Submitted, Job: s.Job,
						Type: EventShardCompleted, Shard: &shard,
					}
					if err := enc.Encode(&done); err != nil {
						return fmt.Errorf("journal: compact encode: %w", err)
					}
				}
				continue
			}
			seq++
			term := Entry{
				Seq: seq, Time: s.Finished, Job: s.Job,
				Type: EventTerminal, State: s.State,
				Done: s.Done, Total: s.Total,
				Outcomes: s.Outcomes, Error: s.Error,
			}
			if err := enc.Encode(&term); err != nil {
				return fmt.Errorf("journal: compact encode: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// The journal is the server's source of truth across restarts: the
	// rename that installed the compacted file must itself be durable
	// before the old entries are considered gone, so unlike WriteFile's
	// advisory sync this directory fsync is a hard requirement.
	if err := fsatomic.SyncDir(filepath.Dir(j.path)); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Reopen the rewritten file for appending; the old descriptor now
	// points at the unlinked pre-compaction inode.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.bw = bufio.NewWriter(f)
	j.seq = seq
	j.size = 0
	if fi, err := f.Stat(); err == nil {
		j.size = fi.Size()
	}
	return nil
}
