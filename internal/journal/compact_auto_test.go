package journal

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestSizeTracksAppendsAndSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 0 {
		t.Fatalf("fresh journal size %d", j.Size())
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(Entry{Job: "c000001", Type: EventProgress, Done: i}); err != nil {
			t.Fatal(err)
		}
	}
	size := j.Size()
	if size <= 0 {
		t.Fatal("size not tracked across appends")
	}
	j.Close()
	j2, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Size() != size {
		t.Fatalf("reopened size %d, want %d", j2.Size(), size)
	}
}

func TestCompactIfOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	spec := json.RawMessage(`{"variant":"alg1","n":100,"seed":7}`)
	shard := 2
	j.Append(Entry{Job: "c000001", Type: EventSubmitted, Kind: "campaign", State: "queued", Total: 100, Spec: spec, Tenant: "acme"})
	j.Append(Entry{Job: "c000001", Type: EventStarted, State: "running"})
	for i := 0; i < 200; i++ {
		j.Append(Entry{Job: "c000001", Type: EventProgress, Done: i})
	}
	j.Append(Entry{Job: "c000001", Type: EventShardCompleted, Shard: &shard})

	// Below threshold: no-op.
	if ran, err := j.CompactIfOver(1 << 30); ran || err != nil {
		t.Fatalf("CompactIfOver under threshold ran=%v err=%v", ran, err)
	}
	// Disabled: no-op.
	if ran, err := j.CompactIfOver(0); ran || err != nil {
		t.Fatalf("CompactIfOver disabled ran=%v err=%v", ran, err)
	}

	before := j.Size()
	ran, err := j.CompactIfOver(1024)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("oversized journal not compacted")
	}
	if j.Size() >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before, j.Size())
	}

	// The compacted journal folds to the same job status, including the
	// tenant and the completed shard (PR 7 semantics).
	j.Close()
	_, entries, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	statuses := Reduce(entries)
	if len(statuses) != 1 {
		t.Fatalf("compacted journal has %d jobs, want 1", len(statuses))
	}
	s := statuses[0]
	if s.Tenant != "acme" {
		t.Fatalf("tenant %q lost in compaction", s.Tenant)
	}
	if s.State != "running" || s.Terminal {
		t.Fatalf("state %q terminal=%v, want running in-flight", s.State, s.Terminal)
	}
	if !s.ShardsDone[2] {
		t.Fatal("completed shard lost in compaction")
	}
	if string(s.Spec) != string(spec) {
		t.Fatalf("spec %s lost in compaction", s.Spec)
	}
}

func TestTenantFoldsThroughReduce(t *testing.T) {
	entries := []Entry{
		{Seq: 1, Job: "c1", Type: EventSubmitted, Tenant: "acme"},
		{Seq: 2, Job: "c1", Type: EventStarted},
		{Seq: 3, Job: "c2", Type: EventSubmitted}, // pre-tenancy entry
	}
	statuses := Reduce(entries)
	if statuses[0].Tenant != "acme" {
		t.Fatalf("tenant = %q, want acme", statuses[0].Tenant)
	}
	if statuses[1].Tenant != "" {
		t.Fatalf("pre-tenancy job tenant = %q, want empty", statuses[1].Tenant)
	}
}

func TestAppendAfterCompactIfOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 100; i++ {
		j.Append(Entry{Job: "c000001", Type: EventProgress, Done: i})
	}
	if ran, err := j.CompactIfOver(256); !ran || err != nil {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
	// The journal keeps accepting appends with monotonic sequencing.
	if err := j.Append(Entry{Job: "c000002", Type: EventSubmitted, Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, entries, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq <= entries[i-1].Seq {
			t.Fatalf("sequence not monotonic after compact: %d then %d", entries[i-1].Seq, entries[i].Seq)
		}
	}
	last := entries[len(entries)-1]
	if last.Job != "c000002" || last.Tenant != "acme" {
		t.Fatalf("post-compact append lost: %+v", last)
	}
}
