package control

import (
	"math"
	"testing"
)

// twoByTwo returns a stable 2-state, 2-input, 2-output controller used
// across the tests.
func twoByTwo(t *testing.T) *StateSpace {
	t.Helper()
	ss, err := NewStateSpace(
		[][]float64{{0.9, 0}, {0, 0.8}},
		[][]float64{{0.1, 0}, {0, 0.1}},
		[][]float64{{1, 0}, {0, 1}},
		[][]float64{{0.5, 0}, {0, 0.5}},
		[]float64{-10, -10},
		[]float64{10, 10},
	)
	if err != nil {
		t.Fatalf("NewStateSpace: %v", err)
	}
	return ss
}

func TestStateSpaceDims(t *testing.T) {
	ss := twoByTwo(t)
	n, m, p := ss.Dims()
	if n != 2 || m != 2 || p != 2 {
		t.Errorf("Dims() = %d,%d,%d, want 2,2,2", n, m, p)
	}
}

func TestStateSpaceZeroInputZeroOutput(t *testing.T) {
	ss := twoByTwo(t)
	u := ss.Update([]float64{0, 0})
	for i, v := range u {
		if v != 0 {
			t.Errorf("u[%d] = %v, want 0", i, v)
		}
	}
}

func TestStateSpaceStableDecay(t *testing.T) {
	ss := twoByTwo(t)
	if err := ss.SetInitialState([]float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ss.Update([]float64{0, 0})
	}
	for i, v := range ss.State() {
		if math.Abs(v) > 1e-6 {
			t.Errorf("state[%d] = %v did not decay", i, v)
		}
	}
}

func TestStateSpaceOutputLimited(t *testing.T) {
	ss := twoByTwo(t)
	u := ss.Update([]float64{1e9, -1e9})
	if u[0] != 10 {
		t.Errorf("u[0] = %v, want clamped 10", u[0])
	}
	if u[1] != -10 {
		t.Errorf("u[1] = %v, want clamped -10", u[1])
	}
}

func TestStateSpaceIntegratesInput(t *testing.T) {
	ss := twoByTwo(t)
	ss.Update([]float64{1, 0})
	s := ss.State()
	if s[0] != 0.1 {
		t.Errorf("state[0] = %v, want 0.1 after one step", s[0])
	}
	if s[1] != 0 {
		t.Errorf("state[1] = %v, want 0 (decoupled)", s[1])
	}
}

func TestStateSpaceResetRestoresInitial(t *testing.T) {
	ss := twoByTwo(t)
	if err := ss.SetInitialState([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	ss.Update([]float64{3, 4})
	ss.Reset()
	s := ss.State()
	if s[0] != 1 || s[1] != 2 {
		t.Errorf("state after reset = %v, want [1 2]", s)
	}
}

func TestStateSpaceStateCopy(t *testing.T) {
	ss := twoByTwo(t)
	s := ss.State()
	s[0] = 777
	if ss.State()[0] == 777 {
		t.Error("State() must return a copy")
	}
}

func TestStateSpaceDimensionErrors(t *testing.T) {
	tests := []struct {
		name           string
		a, b, c, d     [][]float64
		outMin, outMax []float64
	}{
		{
			name:   "ragged A",
			a:      [][]float64{{1, 0}, {0}},
			b:      [][]float64{{1}, {1}},
			c:      [][]float64{{1, 0}},
			d:      [][]float64{{0}},
			outMin: []float64{-1}, outMax: []float64{1},
		},
		{
			name:   "B row mismatch",
			a:      [][]float64{{1}},
			b:      [][]float64{{1}, {1}},
			c:      [][]float64{{1}},
			d:      [][]float64{{0}},
			outMin: []float64{-1}, outMax: []float64{1},
		},
		{
			name:   "limits length mismatch",
			a:      [][]float64{{1}},
			b:      [][]float64{{1}},
			c:      [][]float64{{1}},
			d:      [][]float64{{0}},
			outMin: []float64{-1, -1}, outMax: []float64{1},
		},
		{
			name:   "inverted limits",
			a:      [][]float64{{1}},
			b:      [][]float64{{1}},
			c:      [][]float64{{1}},
			d:      [][]float64{{0}},
			outMin: []float64{5}, outMax: []float64{-5},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewStateSpace(tt.a, tt.b, tt.c, tt.d, tt.outMin, tt.outMax); err == nil {
				t.Error("expected a dimension error")
			}
		})
	}
}

func TestStateSpaceEmptyAError(t *testing.T) {
	if _, err := NewStateSpace(nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("expected error for empty A")
	}
}

func TestStateSpaceInitialStateLengthError(t *testing.T) {
	ss := twoByTwo(t)
	if err := ss.SetInitialState([]float64{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestStateSpaceMatricesCopied(t *testing.T) {
	a := [][]float64{{0.5}}
	b := [][]float64{{1.0}}
	c := [][]float64{{1.0}}
	d := [][]float64{{0.0}}
	ss, err := NewStateSpace(a, b, c, d, []float64{-100}, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	a[0][0] = 999 // mutate caller's matrix
	ss.Update([]float64{1})
	if got := ss.State()[0]; got != 1.0 {
		t.Errorf("controller affected by caller mutation: state = %v, want 1.0", got)
	}
}

func TestStateSpaceAntiWindupBoundsState(t *testing.T) {
	mk := func(withAW bool) *StateSpace {
		ss, err := NewStateSpace(
			[][]float64{{1}},
			[][]float64{{0.1}},
			[][]float64{{1}},
			[][]float64{{0}},
			[]float64{-10}, []float64{10},
		)
		if err != nil {
			t.Fatal(err)
		}
		if withAW {
			if err := ss.SetAntiWindup([][]float64{{1.0}}); err != nil {
				t.Fatal(err)
			}
		}
		return ss
	}

	plain, guarded := mk(false), mk(true)
	for i := 0; i < 500; i++ {
		plain.Update([]float64{100}) // persistent large error: windup
		guarded.Update([]float64{100})
	}
	if plain.State()[0] < 100 {
		t.Errorf("expected plain controller to wind up, state = %v", plain.State()[0])
	}
	if guarded.State()[0] > 25 {
		t.Errorf("anti-windup failed to bound state: %v", guarded.State()[0])
	}
}

func TestStateSpaceSetAntiWindupDimsError(t *testing.T) {
	ss := twoByTwo(t)
	if err := ss.SetAntiWindup([][]float64{{1}}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestStateSpaceAntiWindupNoEffectUnsaturated(t *testing.T) {
	a, b := twoByTwo(t), twoByTwo(t)
	if err := b.SetAntiWindup([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ua := a.Update([]float64{0.5, -0.5})
		ub := b.Update([]float64{0.5, -0.5})
		if ua[0] != ub[0] || ua[1] != ub[1] {
			t.Fatal("anti-windup changed unsaturated behaviour")
		}
	}
}

func TestStateSpaceOutputLimitsCopies(t *testing.T) {
	ss := twoByTwo(t)
	lo, _ := ss.OutputLimits()
	lo[0] = -9999
	u := ss.Update([]float64{-1e9, 0})
	if u[0] != -10 {
		t.Errorf("limits affected by caller mutation: u[0] = %v", u[0])
	}
}
