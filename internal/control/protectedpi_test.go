package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProtectedPIMatchesPIWhenHealthy(t *testing.T) {
	cfg := testCfg()
	plain := NewPI(cfg)
	prot := NewProtectedPI(cfg)
	for i := 0; i < 650; i++ {
		r := 2000 + 100*math.Sin(float64(i)/30)
		y := 2000 + 80*math.Cos(float64(i)/25)
		up := plain.Step(r, y)
		uq := prot.Step(r, y)
		if up != uq {
			t.Fatalf("healthy protected controller diverged at %d: %v vs %v", i, up, uq)
		}
	}
	if s, o := prot.Recoveries(); s != 0 || o != 0 {
		t.Errorf("healthy run triggered recoveries: state=%d output=%d", s, o)
	}
}

func TestProtectedPIRecoversOutOfRangeState(t *testing.T) {
	cfg := testCfg()
	c := NewProtectedPI(cfg)
	c.Step(2000, 2000) // establish backup
	healthy := c.X

	c.X = 1e20 // corruption far outside [0, 70]
	u := c.Step(2000, 2000)
	if u < 0 || u > 70 {
		t.Errorf("output after recovery out of range: %v", u)
	}
	if math.Abs(c.X-healthy) > 1 {
		t.Errorf("state not recovered: %v, want ≈ %v", c.X, healthy)
	}
	if s, _ := c.Recoveries(); s != 1 {
		t.Errorf("state recoveries = %d, want 1", s)
	}
}

func TestProtectedPIRecoversNaNState(t *testing.T) {
	c := NewProtectedPI(testCfg())
	c.Step(2000, 2000)
	c.X = math.NaN()
	u := c.Step(2000, 2000)
	if math.IsNaN(u) {
		t.Error("NaN state leaked into output")
	}
	if math.IsNaN(c.X) {
		t.Error("NaN state not recovered")
	}
}

func TestProtectedPIRecoversNegativeState(t *testing.T) {
	c := NewProtectedPI(testCfg())
	c.Step(2000, 2000)
	c.X = -500
	c.Step(2000, 2000)
	if c.X < 0 {
		t.Errorf("negative state not recovered: %v", c.X)
	}
}

func TestProtectedPIMissesInRangeCorruption(t *testing.T) {
	// The Figure 10 failure mode: a corruption inside [0, 70] evades
	// the range assertion by design.
	c := NewProtectedPI(testCfg())
	c.Step(2000, 2000)
	c.X = 69 // wrong but in range
	c.Step(2000, 2000)
	if s, _ := c.Recoveries(); s != 0 {
		t.Errorf("in-range corruption unexpectedly detected (%d recoveries)", s)
	}
}

func TestProtectedPICorruptedBackupHealsOverTime(t *testing.T) {
	// A corrupted backup (x_old) is itself repaired the next healthy
	// iteration, because the backup is overwritten by the healthy x.
	c := NewProtectedPI(testCfg())
	c.Step(2000, 2000)
	c.XOld = 1e20
	c.Step(2000, 2000) // healthy x overwrites bad backup
	if c.XOld > 70 {
		t.Errorf("backup not refreshed: %v", c.XOld)
	}
}

func TestProtectedPIOutputAlwaysInRange(t *testing.T) {
	c := NewProtectedPI(testCfg())
	f := func(xCorrupt float64, r, y float64) bool {
		c.X = xCorrupt
		u := c.Step(math.Mod(r, 5000), math.Mod(y, 5000))
		return u >= 0 && u <= 70 && !math.IsNaN(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProtectedPIStateVector(t *testing.T) {
	c := NewProtectedPI(testCfg())
	s := c.State()
	if len(s) != 3 {
		t.Fatalf("state length = %d, want 3", len(s))
	}
	c.SetState([]float64{1, 2, 3})
	if c.X != 1 || c.XOld != 2 || c.UOld != 3 {
		t.Errorf("SetState wrong: %v %v %v", c.X, c.XOld, c.UOld)
	}
}

func TestProtectedPIReset(t *testing.T) {
	c := NewProtectedPI(testCfg())
	c.X = 1e20
	c.Step(2000, 2000)
	c.Reset()
	if c.X != 7 || c.XOld != 7 {
		t.Errorf("reset state wrong: x=%v xOld=%v", c.X, c.XOld)
	}
	if s, o := c.Recoveries(); s != 0 || o != 0 {
		t.Errorf("reset did not clear recovery counters: %d %d", s, o)
	}
}

func TestProtectedPIUpdateMatchesStep(t *testing.T) {
	a := NewProtectedPI(testCfg())
	b := NewProtectedPI(testCfg())
	for i := 0; i < 50; i++ {
		ua := a.Step(2100, 2000)
		ub := b.Update([]float64{2100, 2000})
		if ua != ub[0] {
			t.Fatalf("Step and Update diverged: %v vs %v", ua, ub[0])
		}
	}
}
