package control

import "ctrlguard/internal/fphys"

// PIDConfig extends the PI gains with filtered derivative action.
type PIDConfig struct {
	Kp     float64 // proportional gain
	Ki     float64 // integral gain
	Kd     float64 // derivative gain
	Tf     float64 // derivative filter time constant (seconds, > 0)
	T      float64 // sample interval (seconds)
	OutMin float64
	OutMax float64
	InitX  float64 // initial integrator state
}

// PID is a two-state controller: the integrator x (as in the paper's
// PI controller) plus a filtered derivative state d. Its state vector
// is [x, d], making it the simplest multi-state target for the
// generalised protection scheme of package core.
//
//	e(k)  = r(k) − y(k)
//	d(k)  = α·d(k−1) + (1−α)·(e(k) − e(k−1))/T,  α = Tf/(Tf+T)
//	u(k)  = Kp·e(k) + x(k−1) + Kd·d(k)
//	u_lim = limit(u)
//	x(k)  = x(k−1) + T·Ki·e(k)   (cut while winding up)
type PID struct {
	cfg PIDConfig

	// X is the integrator state, D the filtered derivative state and
	// PrevE the previous error sample (state too: it feeds the next
	// derivative). All exported for fault injection.
	X     float64
	D     float64
	PrevE float64

	primed bool // first sample: no derivative yet
}

var (
	_ Controller = (*PID)(nil)
	_ Stateful   = (*PID)(nil)
)

// NewPID creates a PID controller.
func NewPID(cfg PIDConfig) *PID {
	if cfg.Tf <= 0 {
		cfg.Tf = 4 * cfg.T // sensible default filter
	}
	return &PID{cfg: cfg, X: cfg.InitX}
}

// Step implements Controller.
func (c *PID) Step(r, y float64) float64 {
	e := r - y
	if c.primed {
		alpha := c.cfg.Tf / (c.cfg.Tf + c.cfg.T)
		c.D = alpha*c.D + (1-alpha)*(e-c.PrevE)/c.cfg.T
	}
	c.PrevE = e
	c.primed = true

	u := c.cfg.Kp*e + c.X + c.cfg.Kd*c.D
	uLim := fphys.Clamp(u, c.cfg.OutMin, c.cfg.OutMax)
	ki := c.cfg.Ki
	if antiWindupActive(u, e, c.cfg.OutMin, c.cfg.OutMax) {
		ki = 0
	}
	c.X += c.cfg.T * e * ki
	return uLim
}

// Reset implements Controller.
func (c *PID) Reset() {
	c.X = c.cfg.InitX
	c.D = 0
	c.PrevE = 0
	c.primed = false
}

// State implements Stateful: [x, d, prevE].
func (c *PID) State() []float64 {
	return []float64{c.X, c.D, c.PrevE}
}

// SetState implements Stateful.
func (c *PID) SetState(s []float64) {
	if len(s) > 0 {
		c.X = s[0]
	}
	if len(s) > 1 {
		c.D = s[1]
	}
	if len(s) > 2 {
		c.PrevE = s[2]
	}
}

// Update implements Stateful; inputs is [r, y].
func (c *PID) Update(inputs []float64) []float64 {
	return []float64{c.Step(inputs[0], inputs[1])}
}

// Config returns the controller configuration.
func (c *PID) Config() PIDConfig {
	return c.cfg
}
