package control

// Controller cloning, the capability behind warm-started variable-level
// fault-injection campaigns: a campaign snapshots a controller at its
// injection iteration by cloning it during the single golden pass, then
// resumes each experiment from the clone instead of replaying the
// prefix.
//
// CloneStateful returns `any` rather than Stateful to keep the method
// usable through the structurally identical Stateful interfaces of
// other packages (core declares its own) without an import cycle; the
// caller type-asserts. A nil return means "not cloneable" and callers
// fall back to full replay.

// CloneStateful returns an independent copy of the controller.
func (c *PI) CloneStateful() any {
	cp := *c
	return &cp
}

// CloneStateful returns an independent copy of the controller.
func (c *ProtectedPI) CloneStateful() any {
	cp := *c
	return &cp
}

// CloneStateful returns an independent copy of the controller.
func (c *PID) CloneStateful() any {
	cp := *c
	return &cp
}

// CloneStateful returns an independent copy of the controller. The
// coefficient matrices are shared — they are private and immutable
// after construction — while the mutable state vectors are deep-copied.
func (s *StateSpace) CloneStateful() any {
	cp := *s
	cp.x = append([]float64(nil), s.x...)
	cp.initX = append([]float64(nil), s.initX...)
	return &cp
}
