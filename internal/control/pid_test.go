package control

import (
	"math"
	"testing"

	"ctrlguard/internal/plant"
)

func pidCfg() PIDConfig {
	return PIDConfig{
		Kp: 0.068, Ki: 0.25, Kd: 0.01, Tf: 0.06,
		T: plant.DefaultSampleInterval, OutMin: 0, OutMax: 70, InitX: 7,
	}
}

func TestPIDZeroKdMatchesPI(t *testing.T) {
	cfg := pidCfg()
	cfg.Kd = 0
	pid := NewPID(cfg)
	pi := NewPI(PIConfig{Kp: cfg.Kp, Ki: cfg.Ki, T: cfg.T,
		OutMin: cfg.OutMin, OutMax: cfg.OutMax, InitX: cfg.InitX})
	for i := 0; i < 650; i++ {
		r := 2000 + 100*math.Sin(float64(i)/25)
		y := 2000 + 70*math.Cos(float64(i)/30)
		if a, b := pid.Step(r, y), pi.Step(r, y); a != b {
			t.Fatalf("PID(Kd=0) diverged from PI at %d: %v vs %v", i, a, b)
		}
	}
}

func TestPIDOutputWithinLimits(t *testing.T) {
	c := NewPID(pidCfg())
	for i := 0; i < 1000; i++ {
		u := c.Step(1e5*math.Sin(float64(i)), 1e5*math.Cos(float64(i)))
		if u < 0 || u > 70 {
			t.Fatalf("u = %v outside limits", u)
		}
	}
}

func TestPIDDerivativeKicksOnErrorStep(t *testing.T) {
	cfg := pidCfg()
	cfg.Kd = 0.5
	withD := NewPID(cfg)
	cfg2 := cfg
	cfg2.Kd = 0
	withoutD := NewPID(cfg2)

	// Settle both, then apply a step in the error.
	for i := 0; i < 10; i++ {
		withD.Step(2000, 2000)
		withoutD.Step(2000, 2000)
	}
	uD := withD.Step(2100, 2000)
	u0 := withoutD.Step(2100, 2000)
	if uD <= u0 {
		t.Errorf("derivative action missing: with=%v without=%v", uD, u0)
	}
}

func TestPIDDerivativeFilterSmooths(t *testing.T) {
	// A larger Tf must damp the derivative response to the same step.
	sharp := NewPID(PIDConfig{Kp: 0, Ki: 0, Kd: 1, Tf: 0.001,
		T: 0.0154, OutMin: -1000, OutMax: 1000})
	smooth := NewPID(PIDConfig{Kp: 0, Ki: 0, Kd: 1, Tf: 0.5,
		T: 0.0154, OutMin: -1000, OutMax: 1000})
	sharp.Step(0, 0)
	smooth.Step(0, 0)
	uSharp := sharp.Step(10, 0)
	uSmooth := smooth.Step(10, 0)
	if math.Abs(uSmooth) >= math.Abs(uSharp) {
		t.Errorf("filter not smoothing: sharp=%v smooth=%v", uSharp, uSmooth)
	}
}

func TestPIDFirstSampleNoDerivativeSpike(t *testing.T) {
	c := NewPID(pidCfg())
	u := c.Step(3000, 2000) // huge first error must not excite D
	if c.D != 0 {
		t.Errorf("derivative state after first sample = %v, want 0", c.D)
	}
	if u < 0 || u > 70 {
		t.Errorf("first output out of range: %v", u)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	c := NewPID(pidCfg())
	for i := 0; i < 100; i++ {
		c.Step(100000, 0)
	}
	if c.X > 2*70 {
		t.Errorf("integrator wound up to %v", c.X)
	}
}

func TestPIDStatefulRoundTrip(t *testing.T) {
	c := NewPID(pidCfg())
	c.SetState([]float64{1, 2, 3})
	s := c.State()
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("state = %v", s)
	}
	if len(s) != 3 {
		t.Errorf("state length = %d, want 3", len(s))
	}
}

func TestPIDReset(t *testing.T) {
	c := NewPID(pidCfg())
	c.Step(2500, 2000)
	c.Step(2500, 2100)
	c.Reset()
	if c.X != 7 || c.D != 0 || c.PrevE != 0 {
		t.Errorf("reset state = %v %v %v", c.X, c.D, c.PrevE)
	}
}

func TestPIDDefaultFilter(t *testing.T) {
	cfg := pidCfg()
	cfg.Tf = 0
	c := NewPID(cfg)
	if c.cfg.Tf <= 0 {
		t.Error("default filter constant not applied")
	}
}

func TestPIDClosedLoopTracks(t *testing.T) {
	eng := plant.NewEngine(plant.DefaultEngineConfig())
	c := NewPID(pidCfg())
	ref := plant.PaperReference()
	y := eng.Speed()
	for k := 0; k < plant.DefaultIterations; k++ {
		u := c.Step(ref(float64(k)*plant.DefaultSampleInterval), y)
		y = eng.Step(u)
	}
	if math.Abs(y-3000) > 10 {
		t.Errorf("final speed = %v, want ≈ 3000", y)
	}
}

func TestPIDUpdateMatchesStep(t *testing.T) {
	a, b := NewPID(pidCfg()), NewPID(pidCfg())
	for i := 0; i < 50; i++ {
		if ua, ub := a.Step(2100, 2000), b.Update([]float64{2100, 2000})[0]; ua != ub {
			t.Fatalf("Step and Update diverged: %v vs %v", ua, ub)
		}
	}
}
