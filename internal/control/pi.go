package control

import "ctrlguard/internal/fphys"

// PIConfig holds the gains and limits of the PI engine-speed
// controller.
type PIConfig struct {
	Kp     float64 // proportional gain
	Ki     float64 // integral gain
	T      float64 // sample interval in seconds
	OutMin float64 // lower actuator limit (0.0 degrees in the paper)
	OutMax float64 // upper actuator limit (70.0 degrees in the paper)
	InitX  float64 // initial integrator state
}

// PaperPIConfig returns the gains used throughout this reproduction for
// the engine workload, tuned so the closed loop with
// plant.DefaultEngineConfig reproduces Figures 3 and 5.
func PaperPIConfig(sampleInterval float64) PIConfig {
	return PIConfig{
		Kp:     0.068,
		Ki:     0.25,
		T:      sampleInterval,
		OutMin: 0.0,
		OutMax: 70.0,
		InitX:  7.0, // steady-state throttle at 2000 rpm
	}
}

// PI is the paper's Algorithm I: a proportional-integral controller
// with output limiting and anti-windup, and no protection of its state.
//
//	e(k) = r(k) − y(k)
//	u(k) = Kp·e(k) + x(k−1)
//	u_lim = limit(u)
//	x(k) = x(k−1) + T·Ki·e(k)   (integration cut while winding up)
type PI struct {
	cfg PIConfig

	// X is the integrator state x of Algorithm I. It is exported so
	// fault-injection experiments can corrupt it directly, exactly
	// as a bit-flip in the cache line holding x would.
	X float64
}

var (
	_ Controller = (*PI)(nil)
	_ Stateful   = (*PI)(nil)
)

// NewPI creates an Algorithm I controller.
func NewPI(cfg PIConfig) *PI {
	return &PI{cfg: cfg, X: cfg.InitX}
}

// Step implements Controller.
func (c *PI) Step(r, y float64) float64 {
	e := r - y
	u := e*c.cfg.Kp + c.X
	uLim := fphys.Clamp(u, c.cfg.OutMin, c.cfg.OutMax)
	ki := c.cfg.Ki
	if antiWindupActive(u, e, c.cfg.OutMin, c.cfg.OutMax) {
		ki = 0 // disable integration while the output is saturated
	}
	c.X += c.cfg.T * e * ki
	return uLim
}

// Reset implements Controller.
func (c *PI) Reset() {
	c.X = c.cfg.InitX
}

// State implements Stateful.
func (c *PI) State() []float64 {
	return []float64{c.X}
}

// SetState implements Stateful.
func (c *PI) SetState(x []float64) {
	if len(x) > 0 {
		c.X = x[0]
	}
}

// Update implements Stateful; inputs is [r, y] and the result is
// [u_lim].
func (c *PI) Update(inputs []float64) []float64 {
	return []float64{c.Step(inputs[0], inputs[1])}
}

// Config returns the controller configuration.
func (c *PI) Config() PIConfig {
	return c.cfg
}

// antiWindupActive reports whether integration should be cut: the
// unlimited output is outside the actuator range and the control error
// would push it further out.
func antiWindupActive(u, e, outMin, outMax float64) bool {
	return (u > outMax && e > 0) || (u < outMin && e < 0)
}
