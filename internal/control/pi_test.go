package control

import (
	"math"
	"testing"
	"testing/quick"
)

func testCfg() PIConfig {
	return PIConfig{Kp: 0.068, Ki: 0.25, T: 10.0 / 650, OutMin: 0, OutMax: 70, InitX: 7}
}

func TestPIOutputWithinLimits(t *testing.T) {
	c := NewPI(testCfg())
	f := func(r, y float64) bool {
		u := c.Step(math.Mod(r, 5000), math.Mod(y, 5000))
		return u >= 0 && u <= 70
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPIZeroErrorHoldsState(t *testing.T) {
	c := NewPI(testCfg())
	u1 := c.Step(2000, 2000)
	u2 := c.Step(2000, 2000)
	if u1 != u2 {
		t.Errorf("output changed with zero error: %v then %v", u1, u2)
	}
	if c.X != 7 {
		t.Errorf("state drifted with zero error: %v", c.X)
	}
}

func TestPIIntegratesPositiveError(t *testing.T) {
	c := NewPI(testCfg())
	before := c.X
	c.Step(2100, 2000)
	if c.X <= before {
		t.Errorf("positive error should grow state: %v -> %v", before, c.X)
	}
}

func TestPIIntegratesNegativeError(t *testing.T) {
	c := NewPI(testCfg())
	before := c.X
	c.Step(1900, 2000)
	if c.X >= before {
		t.Errorf("negative error should shrink state: %v -> %v", before, c.X)
	}
}

func TestPIProportionalAction(t *testing.T) {
	c := NewPI(testCfg())
	u := c.Step(2100, 2000)
	want := 100*0.068 + 7
	if math.Abs(u-want) > 1e-12 {
		t.Errorf("u = %v, want %v", u, want)
	}
}

func TestPIAntiWindupStopsIntegration(t *testing.T) {
	cfg := testCfg()
	c := NewPI(cfg)
	// Huge persistent error saturates the output; the state must stop
	// growing once saturated (anti-windup).
	var prevX float64
	for i := 0; i < 200; i++ {
		prevX = c.X
		c.Step(100000, 0)
	}
	if c.X != prevX {
		t.Errorf("state still integrating while saturated: %v -> %v", prevX, c.X)
	}
	if c.X > 2*cfg.OutMax {
		t.Errorf("state wound up to %v despite anti-windup", c.X)
	}
}

func TestPIAntiWindupAllowsUnwinding(t *testing.T) {
	// A wound-up state with a mildly negative error: the output is
	// still above the limit, but because the error now points back
	// into range, integration must continue (downward).
	c := NewPI(testCfg())
	c.X = 80 // wound-up state above the actuator limit
	c.Step(1900, 2000)
	if c.X >= 80 {
		t.Errorf("negative error did not unwind state: %v", c.X)
	}
}

func TestPIAntiWindupCutsBothLimits(t *testing.T) {
	// Error pushing deeper into saturation freezes the state at
	// either limit.
	c := NewPI(testCfg())
	c.Step(100000, 0) // saturated high, e > 0
	if c.X != 7 {
		t.Errorf("state integrated while saturated high: %v", c.X)
	}
	c.Reset()
	c.Step(0, 100000) // saturated low, e < 0
	if c.X != 7 {
		t.Errorf("state integrated while saturated low: %v", c.X)
	}
}

func TestPIReset(t *testing.T) {
	c := NewPI(testCfg())
	c.Step(2500, 2000)
	c.Reset()
	if c.X != 7 {
		t.Errorf("state after reset = %v, want 7", c.X)
	}
}

func TestPIStatefulRoundTrip(t *testing.T) {
	c := NewPI(testCfg())
	c.SetState([]float64{42})
	got := c.State()
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("State() = %v, want [42]", got)
	}
}

func TestPIUpdateMatchesStep(t *testing.T) {
	a := NewPI(testCfg())
	b := NewPI(testCfg())
	for i := 0; i < 100; i++ {
		r := 2000 + 50*math.Sin(float64(i)/7)
		y := 2000 + 30*math.Cos(float64(i)/5)
		ua := a.Step(r, y)
		ub := b.Update([]float64{r, y})
		if ua != ub[0] {
			t.Fatalf("Step and Update diverged at %d: %v vs %v", i, ua, ub[0])
		}
	}
}

func TestPIStateCopySemantics(t *testing.T) {
	c := NewPI(testCfg())
	s := c.State()
	s[0] = -999
	if c.X == -999 {
		t.Error("State() must return a copy, not a reference")
	}
}

func TestAntiWindupActive(t *testing.T) {
	tests := []struct {
		name string
		u, e float64
		want bool
	}{
		{"saturated high, pushing up", 75, 10, true},
		{"saturated high, pushing down", 75, -10, false},
		{"saturated low, pushing down", -5, -10, true},
		{"saturated low, pushing up", -5, 10, false},
		{"in range", 35, 10, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := antiWindupActive(tt.u, tt.e, 0, 70); got != tt.want {
				t.Errorf("antiWindupActive(%v, %v) = %v, want %v", tt.u, tt.e, got, tt.want)
			}
		})
	}
}
