package control

import (
	"errors"
	"fmt"

	"ctrlguard/internal/fphys"
)

// StateSpace is a discrete-time MIMO controller
//
//	x(k+1) = A·x(k) + B·e(k)
//	u(k)   = C·x(k) + D·e(k)
//
// operating on the error vector e = r − y. The paper names MIMO
// controllers (jet-engine controllers) as the target of its future
// work; this type is the substrate on which the generalised
// assertion/recovery scheme of package core is demonstrated.
type StateSpace struct {
	a, b, c, d [][]float64
	aw         [][]float64 // anti-windup back-calculation gain (n×p), may be nil
	x          []float64
	initX      []float64
	outMin     []float64
	outMax     []float64
}

var _ Stateful = (*StateSpace)(nil)

// NewStateSpace builds a MIMO controller from its matrices. A must be
// n×n, B n×m, C p×n and D p×m where n is the state dimension, m the
// input (error) dimension and p the output dimension. outMin/outMax
// give per-output actuator limits and must have length p.
func NewStateSpace(a, b, c, d [][]float64, outMin, outMax []float64) (*StateSpace, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("control: A matrix must be non-empty")
	}
	m := len(b[0])
	p := len(c)
	if err := checkDims(a, n, n, "A"); err != nil {
		return nil, err
	}
	if err := checkDims(b, n, m, "B"); err != nil {
		return nil, err
	}
	if err := checkDims(c, p, n, "C"); err != nil {
		return nil, err
	}
	if err := checkDims(d, p, m, "D"); err != nil {
		return nil, err
	}
	if len(outMin) != p || len(outMax) != p {
		return nil, fmt.Errorf("control: output limits must have length %d", p)
	}
	for j := range outMin {
		if outMin[j] > outMax[j] {
			return nil, fmt.Errorf("control: output %d has min %v > max %v", j, outMin[j], outMax[j])
		}
	}
	return &StateSpace{
		a: copyMatrix(a), b: copyMatrix(b), c: copyMatrix(c), d: copyMatrix(d),
		x:      make([]float64, n),
		initX:  make([]float64, n),
		outMin: append([]float64(nil), outMin...),
		outMax: append([]float64(nil), outMax...),
	}, nil
}

// SetInitialState sets both the current and the reset state to x0.
func (s *StateSpace) SetInitialState(x0 []float64) error {
	if len(x0) != len(s.x) {
		return fmt.Errorf("control: initial state has length %d, want %d", len(x0), len(s.x))
	}
	copy(s.initX, x0)
	copy(s.x, x0)
	return nil
}

// SetAntiWindup installs a back-calculation anti-windup gain: each
// state update gains the term gain·(u_limited − u_unlimited), pulling
// the states back whenever an output saturates, like the integration
// cut-off of the paper's PI controller. gain must be n×p.
func (s *StateSpace) SetAntiWindup(gain [][]float64) error {
	n, _, p := s.Dims()
	if err := checkDims(gain, n, p, "anti-windup gain"); err != nil {
		return err
	}
	s.aw = copyMatrix(gain)
	return nil
}

// Dims returns the state, input and output dimensions.
func (s *StateSpace) Dims() (n, m, p int) {
	return len(s.x), len(s.b[0]), len(s.c)
}

// State implements Stateful.
func (s *StateSpace) State() []float64 {
	return append([]float64(nil), s.x...)
}

// SetState implements Stateful.
func (s *StateSpace) SetState(x []float64) {
	copy(s.x, x)
}

// Update implements Stateful: inputs is the error vector e(k) and the
// result is the limited output vector u(k).
func (s *StateSpace) Update(e []float64) []float64 {
	p := len(s.c)
	u := make([]float64, p)
	windup := make([]float64, p) // u_limited − u_unlimited, ≤ 0 when saturating high
	for i := 0; i < p; i++ {
		v := dot(s.c[i], s.x) + dot(s.d[i], e)
		u[i] = fphys.Clamp(v, s.outMin[i], s.outMax[i])
		windup[i] = u[i] - v
	}
	next := make([]float64, len(s.x))
	for i := range s.a {
		next[i] = dot(s.a[i], s.x) + dot(s.b[i], e)
		if s.aw != nil {
			next[i] += dot(s.aw[i], windup)
		}
	}
	copy(s.x, next)
	return u
}

// Reset restores the initial state.
func (s *StateSpace) Reset() {
	copy(s.x, s.initX)
}

// OutputLimits returns copies of the per-output limits.
func (s *StateSpace) OutputLimits() (lo, hi []float64) {
	return append([]float64(nil), s.outMin...), append([]float64(nil), s.outMax...)
}

func checkDims(m [][]float64, rows, cols int, name string) error {
	if len(m) != rows {
		return fmt.Errorf("control: %s has %d rows, want %d", name, len(m), rows)
	}
	for i, row := range m {
		if len(row) != cols {
			return fmt.Errorf("control: %s row %d has %d cols, want %d", name, i, len(row), cols)
		}
	}
	return nil
}

func copyMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
