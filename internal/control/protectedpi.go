package control

import "ctrlguard/internal/fphys"

// ProtectedPI is the paper's Algorithm II: the PI controller of
// Algorithm I augmented with executable assertions on the state
// variable and the output signal, and best effort recovery from
// backed-up copies of both. The assertions use the physical constraints
// of the controlled object: the throttle angle (and, thanks to
// anti-windup, the integrator state) must lie in [OutMin, OutMax].
type ProtectedPI struct {
	cfg PIConfig

	// X is the integrator state; XOld and UOld are the backup copies
	// taken each healthy iteration. All three are exported so
	// fault-injection experiments can corrupt them like any other
	// cached variable.
	X    float64
	XOld float64
	UOld float64

	stateRecoveries  int
	outputRecoveries int
}

var (
	_ Controller = (*ProtectedPI)(nil)
	_ Stateful   = (*ProtectedPI)(nil)
)

// NewProtectedPI creates an Algorithm II controller.
func NewProtectedPI(cfg PIConfig) *ProtectedPI {
	return &ProtectedPI{
		cfg:  cfg,
		X:    cfg.InitX,
		XOld: cfg.InitX,
		UOld: fphys.Clamp(cfg.InitX, cfg.OutMin, cfg.OutMax),
	}
}

// Step implements Controller, following Algorithm II of the paper
// line by line.
func (c *ProtectedPI) Step(r, y float64) float64 {
	e := r - y

	// Executable assertion on the state; best effort recovery from
	// the previous iteration's backup on failure, otherwise back up.
	if !fphys.InRange(c.X, c.cfg.OutMin, c.cfg.OutMax) {
		c.X = c.XOld
		c.stateRecoveries++
	} else {
		c.XOld = c.X
	}

	u := e*c.cfg.Kp + c.X
	uLim := fphys.Clamp(u, c.cfg.OutMin, c.cfg.OutMax)
	ki := c.cfg.Ki
	if antiWindupActive(u, e, c.cfg.OutMin, c.cfg.OutMax) {
		ki = 0
	}
	c.X += c.cfg.T * e * ki

	// Executable assertion on the output; on failure deliver the
	// previous output and restore the corresponding state.
	if !fphys.InRange(uLim, c.cfg.OutMin, c.cfg.OutMax) {
		uLim = c.UOld
		c.X = c.XOld
		c.outputRecoveries++
	}
	c.UOld = uLim
	return uLim
}

// Reset implements Controller.
func (c *ProtectedPI) Reset() {
	c.X = c.cfg.InitX
	c.XOld = c.cfg.InitX
	c.UOld = fphys.Clamp(c.cfg.InitX, c.cfg.OutMin, c.cfg.OutMax)
	c.stateRecoveries = 0
	c.outputRecoveries = 0
}

// State implements Stateful. The state vector is [x, x_old, u_old]: the
// backups are controller state too and equally exposed to bit-flips.
func (c *ProtectedPI) State() []float64 {
	return []float64{c.X, c.XOld, c.UOld}
}

// SetState implements Stateful.
func (c *ProtectedPI) SetState(x []float64) {
	if len(x) > 0 {
		c.X = x[0]
	}
	if len(x) > 1 {
		c.XOld = x[1]
	}
	if len(x) > 2 {
		c.UOld = x[2]
	}
}

// Update implements Stateful; inputs is [r, y] and the result is
// [u_lim].
func (c *ProtectedPI) Update(inputs []float64) []float64 {
	return []float64{c.Step(inputs[0], inputs[1])}
}

// Recoveries returns how many times the state assertion and the output
// assertion triggered a best effort recovery.
func (c *ProtectedPI) Recoveries() (state, output int) {
	return c.stateRecoveries, c.outputRecoveries
}

// Config returns the controller configuration.
func (c *ProtectedPI) Config() PIConfig {
	return c.cfg
}
