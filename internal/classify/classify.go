// Package classify implements the error and failure classification
// scheme of §4.1 of the paper. Every fault-injection experiment ends in
// exactly one of these outcomes:
//
//   - Detected: an error-detection mechanism of the target CPU trapped.
//   - Undetected wrong result (value failure), graded by its impact on
//     the controlled object: Permanent or SemiPermanent (severe),
//     Transient or Insignificant (minor).
//   - Latent: the run completed with correct outputs but the final
//     system state differs from the reference execution.
//   - Overwritten: the run completed and no difference from the
//     reference execution is observable at all.
package classify

// Outcome is the terminal classification of one experiment.
type Outcome int

// Outcome values, ordered roughly by severity.
const (
	Overwritten Outcome = iota + 1
	Latent
	Detected
	Insignificant
	Transient
	SemiPermanent
	Permanent
)

var outcomeNames = map[Outcome]string{
	Overwritten:   "overwritten",
	Latent:        "latent",
	Detected:      "detected",
	Insignificant: "uwr-insignificant",
	Transient:     "uwr-transient",
	SemiPermanent: "uwr-semi-permanent",
	Permanent:     "uwr-permanent",
}

// String returns the outcome's canonical label.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return "unknown"
}

// IsValueFailure reports whether the outcome is an undetected wrong
// result of any grade.
func (o Outcome) IsValueFailure() bool {
	switch o {
	case Insignificant, Transient, SemiPermanent, Permanent:
		return true
	default:
		return false
	}
}

// IsSevere reports whether the outcome is a severe value failure
// (permanent or semi-permanent).
func (o Outcome) IsSevere() bool {
	return o == Permanent || o == SemiPermanent
}

// IsEffective reports whether the error was effective: detected by an
// EDM or visible as a value failure.
func (o Outcome) IsEffective() bool {
	return o == Detected || o.IsValueFailure()
}

// Config holds the thresholds of the classification rules.
type Config struct {
	// Threshold is the deviation (degrees) above which the output is
	// considered to "differ strongly" from the fault-free output.
	// The paper uses 0.1 degrees.
	Threshold float64

	// TransientWindow operationalises the paper's "differs strongly
	// during one iteration and then rapidly starts to converge": a
	// strong-deviation episode no longer than this many iterations
	// that converges within the observed window is a transient
	// (minor) failure; a longer episode is semi-permanent (severe).
	// A literal one-iteration rule is physically unrealisable with
	// a 0.1° threshold, because any stronger kick to the engine
	// excites a closed-loop recovery tail spanning several samples —
	// visible as the decaying tail of the paper's own Figure 9.
	TransientWindow int
}

// DefaultTransientWindow is about 0.75 s at the paper's 15.4 ms sample
// interval: excursions shorter than this count as "rapid" convergence.
const DefaultTransientWindow = 50

// DefaultConfig returns the paper's thresholds.
func DefaultConfig() Config {
	return Config{Threshold: 0.1, TransientWindow: DefaultTransientWindow}
}

// Verdict is the result of classifying one completed experiment.
type Verdict struct {
	Outcome Outcome

	// Mechanism names the detecting EDM when Outcome == Detected.
	Mechanism string

	// FirstDeviation is the iteration index of the first strong
	// deviation (−1 when none occurred).
	FirstDeviation int

	// LastDeviation is the iteration index of the last strong
	// deviation (−1 when none occurred).
	LastDeviation int

	// StrongIterations counts iterations whose deviation exceeded the
	// threshold.
	StrongIterations int

	// MaxDeviation is the largest absolute output deviation observed.
	MaxDeviation float64
}

// DetectedVerdict returns the verdict for an experiment terminated by
// the named error-detection mechanism.
func DetectedVerdict(mechanism string) Verdict {
	return Verdict{
		Outcome:        Detected,
		Mechanism:      mechanism,
		FirstDeviation: -1,
		LastDeviation:  -1,
	}
}

// Run classifies a completed (undetected) experiment by comparing its
// output trace against the fault-free reference trace.
//
// stateDiffers tells the classifier whether the final system state of
// the experiment differs from the reference execution's final state; it
// separates Latent from Overwritten when the outputs were correct.
//
// The rules follow §4.1 of the paper, with two criteria made explicit:
//
//   - Permanent: the deviation is still strong at the final iteration —
//     the failure never converged within the observed window (the
//     paper's permanent examples are the output stuck at a throttle
//     limit until the window ends).
//   - Transient vs semi-permanent: an episode whose strong deviations
//     span at most cfg.TransientWindow iterations and that converges is
//     transient ("rapidly starts to converge", Figure 9); a longer
//     episode that still converges within the window is semi-permanent
//     (Figures 8 and 10).
func Run(golden, faulty []float64, stateDiffers bool, cfg Config) Verdict {
	n := len(golden)
	if len(faulty) < n {
		n = len(faulty)
	}

	v := Verdict{FirstDeviation: -1, LastDeviation: -1}
	anyDiff := false
	for k := 0; k < n; k++ {
		d := faulty[k] - golden[k]
		if d < 0 {
			d = -d
		}
		if d > 0 {
			anyDiff = true
		}
		if d > v.MaxDeviation {
			v.MaxDeviation = d
		}
		if d > cfg.Threshold {
			if v.FirstDeviation < 0 {
				v.FirstDeviation = k
			}
			v.LastDeviation = k
			v.StrongIterations++
		}
	}

	switch {
	case v.StrongIterations == 0 && !anyDiff:
		if stateDiffers {
			v.Outcome = Latent
		} else {
			v.Outcome = Overwritten
		}
	case v.StrongIterations == 0:
		// Output deviates, but never by more than the threshold.
		v.Outcome = Insignificant
	case v.LastDeviation == n-1:
		// Still strongly deviating at the end of the window: the
		// failure never converged — permanent.
		v.Outcome = Permanent
	case v.LastDeviation-v.FirstDeviation < max(cfg.TransientWindow, 1):
		v.Outcome = Transient
	default:
		v.Outcome = SemiPermanent
	}
	return v
}

// RunMulti classifies a completed experiment of a controller with
// several output signals, per the paper's generalised scheme: each
// output trace is classified independently and the experiment takes the
// most severe verdict (the Outcome values are ordered by severity).
// golden and faulty are indexed [output][iteration].
func RunMulti(golden, faulty [][]float64, stateDiffers bool, cfg Config) Verdict {
	if len(golden) == 0 {
		return Verdict{Outcome: Overwritten, FirstDeviation: -1, LastDeviation: -1}
	}
	worst := Verdict{FirstDeviation: -1, LastDeviation: -1}
	for j := range golden {
		var f []float64
		if j < len(faulty) {
			f = faulty[j]
		}
		v := Run(golden[j], f, stateDiffers, cfg)
		if v.Outcome > worst.Outcome {
			// Keep the counters of the output driving the verdict.
			worst = v
		}
	}
	return worst
}
