package classify

import (
	"testing"
	"testing/quick"
)

func flat(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{Overwritten, "overwritten"},
		{Latent, "latent"},
		{Detected, "detected"},
		{Insignificant, "uwr-insignificant"},
		{Transient, "uwr-transient"},
		{SemiPermanent, "uwr-semi-permanent"},
		{Permanent, "uwr-permanent"},
		{Outcome(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.o, got, tt.want)
		}
	}
}

func TestOutcomePredicates(t *testing.T) {
	if !Permanent.IsSevere() || !SemiPermanent.IsSevere() {
		t.Error("permanent/semi-permanent must be severe")
	}
	if Transient.IsSevere() || Insignificant.IsSevere() {
		t.Error("transient/insignificant must not be severe")
	}
	for _, o := range []Outcome{Insignificant, Transient, SemiPermanent, Permanent} {
		if !o.IsValueFailure() || !o.IsEffective() {
			t.Errorf("%v should be a value failure and effective", o)
		}
	}
	if Detected.IsValueFailure() {
		t.Error("detected is not a value failure")
	}
	if !Detected.IsEffective() {
		t.Error("detected is effective")
	}
	if Latent.IsEffective() || Overwritten.IsEffective() {
		t.Error("latent/overwritten are non-effective")
	}
}

func TestDetectedVerdict(t *testing.T) {
	v := DetectedVerdict("ADDRESS ERROR")
	if v.Outcome != Detected || v.Mechanism != "ADDRESS ERROR" {
		t.Errorf("verdict = %+v", v)
	}
}

func TestRunOverwritten(t *testing.T) {
	g := flat(650, 7)
	v := Run(g, g, false, DefaultConfig())
	if v.Outcome != Overwritten {
		t.Errorf("outcome = %v, want overwritten", v.Outcome)
	}
}

func TestRunLatent(t *testing.T) {
	g := flat(650, 7)
	v := Run(g, g, true, DefaultConfig())
	if v.Outcome != Latent {
		t.Errorf("outcome = %v, want latent", v.Outcome)
	}
}

func TestRunInsignificant(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	f[100] = 7.05 // below the 0.1 threshold but non-zero
	v := Run(g, f, true, DefaultConfig())
	if v.Outcome != Insignificant {
		t.Errorf("outcome = %v, want insignificant", v.Outcome)
	}
	if v.StrongIterations != 0 {
		t.Errorf("strong iterations = %d, want 0", v.StrongIterations)
	}
}

func TestRunTransient(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	f[100] = 9 // one strong deviation, then back
	v := Run(g, f, false, DefaultConfig())
	if v.Outcome != Transient {
		t.Errorf("outcome = %v, want transient", v.Outcome)
	}
	if v.FirstDeviation != 100 || v.LastDeviation != 100 {
		t.Errorf("deviation window = [%d, %d], want [100, 100]", v.FirstDeviation, v.LastDeviation)
	}
}

func TestRunSemiPermanent(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	// Strong deviation over 100 iterations (beyond the transient
	// window), converging before the end.
	for k := 100; k < 200; k++ {
		f[k] = 20
	}
	v := Run(g, f, false, DefaultConfig())
	if v.Outcome != SemiPermanent {
		t.Errorf("outcome = %v, want semi-permanent", v.Outcome)
	}
	if !v.Outcome.IsSevere() {
		t.Error("semi-permanent must be severe")
	}
}

func TestRunTransientWindowBoundary(t *testing.T) {
	cfg := DefaultConfig()
	mk := func(span int) Verdict {
		g := flat(650, 7)
		f := flat(650, 7)
		for k := 100; k < 100+span; k++ {
			f[k] = 20
		}
		return Run(g, f, false, cfg)
	}
	if v := mk(cfg.TransientWindow); v.Outcome != Transient {
		t.Errorf("span == window: outcome = %v, want transient", v.Outcome)
	}
	if v := mk(cfg.TransientWindow + 2); v.Outcome != SemiPermanent {
		t.Errorf("span > window: outcome = %v, want semi-permanent", v.Outcome)
	}
}

func TestRunZeroWindowStillAllowsSingleIteration(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	f[100] = 20
	v := Run(g, f, false, Config{Threshold: 0.1})
	if v.Outcome != Transient {
		t.Errorf("outcome = %v, want transient for single-iteration episode", v.Outcome)
	}
}

func TestRunPermanentStuckAtLimit(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	for k := 100; k < 650; k++ {
		f[k] = 70 // throttle locked at full speed until the window ends
	}
	v := Run(g, f, false, DefaultConfig())
	if v.Outcome != Permanent {
		t.Errorf("outcome = %v, want permanent", v.Outcome)
	}
	if v.FirstDeviation != 100 {
		t.Errorf("first deviation = %d, want 100", v.FirstDeviation)
	}
}

func TestRunPermanentRequiresDeviationAtEnd(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	for k := 100; k < 649; k++ { // recovers exactly at the last sample
		f[k] = 70
	}
	v := Run(g, f, false, DefaultConfig())
	if v.Outcome != SemiPermanent {
		t.Errorf("outcome = %v, want semi-permanent (converged within window)", v.Outcome)
	}
}

func TestRunMaxDeviationRecorded(t *testing.T) {
	g := flat(10, 0)
	f := flat(10, 0)
	f[3] = -4
	f[7] = 2
	v := Run(g, f, false, DefaultConfig())
	if v.MaxDeviation != 4 {
		t.Errorf("MaxDeviation = %v, want 4", v.MaxDeviation)
	}
}

func TestRunStrongIterationsCount(t *testing.T) {
	g := flat(10, 0)
	f := flat(10, 0)
	f[2], f[5], f[6] = 1, 1, 1
	v := Run(g, f, false, DefaultConfig())
	if v.StrongIterations != 3 {
		t.Errorf("StrongIterations = %d, want 3", v.StrongIterations)
	}
}

func TestRunLengthMismatchUsesCommonPrefix(t *testing.T) {
	g := flat(650, 7)
	f := flat(100, 7)
	f[99] = 70
	v := Run(g, f, false, DefaultConfig())
	// The deviation is at the last common sample, so it counts as
	// never-converged within the (truncated) window.
	if v.Outcome != Transient && v.Outcome != Permanent {
		t.Errorf("outcome = %v", v.Outcome)
	}
	if v.StrongIterations != 1 {
		t.Errorf("StrongIterations = %d, want 1", v.StrongIterations)
	}
}

func TestRunThresholdBoundaryIsNotStrong(t *testing.T) {
	g := flat(10, 0)
	f := flat(10, 0)
	f[5] = 0.1 // exactly the threshold: paper says "more than 0.1"
	v := Run(g, f, false, DefaultConfig())
	if v.Outcome != Insignificant {
		t.Errorf("outcome = %v, want insignificant at exact threshold", v.Outcome)
	}
}

func TestRunCustomThreshold(t *testing.T) {
	g := flat(10, 0)
	f := flat(10, 0)
	f[5] = 0.5
	v := Run(g, f, false, Config{Threshold: 1.0})
	if v.Outcome != Insignificant {
		t.Errorf("outcome = %v, want insignificant with loose threshold", v.Outcome)
	}
}

func TestRunMultiTakesWorstOutput(t *testing.T) {
	g := [][]float64{flat(650, 7), flat(650, 30)}
	f := [][]float64{flat(650, 7), flat(650, 30)}
	// Output 1 clean; output 2 permanently stuck.
	for k := 100; k < 650; k++ {
		f[1][k] = 40
	}
	v := RunMulti(g, f, false, DefaultConfig())
	if v.Outcome != Permanent {
		t.Errorf("outcome = %v, want permanent from output 2", v.Outcome)
	}
	if v.FirstDeviation != 100 {
		t.Errorf("first deviation = %d, want 100", v.FirstDeviation)
	}
}

func TestRunMultiAllClean(t *testing.T) {
	g := [][]float64{flat(10, 1), flat(10, 2)}
	if v := RunMulti(g, g, false, DefaultConfig()); v.Outcome != Overwritten {
		t.Errorf("outcome = %v, want overwritten", v.Outcome)
	}
	if v := RunMulti(g, g, true, DefaultConfig()); v.Outcome != Latent {
		t.Errorf("outcome = %v, want latent", v.Outcome)
	}
}

func TestRunMultiEmpty(t *testing.T) {
	if v := RunMulti(nil, nil, false, DefaultConfig()); v.Outcome != Overwritten {
		t.Errorf("outcome = %v", v.Outcome)
	}
}

func TestRunMultiMissingFaultyOutput(t *testing.T) {
	g := [][]float64{flat(10, 1), flat(10, 2)}
	f := [][]float64{flat(10, 1)} // second trace missing entirely
	v := RunMulti(g, f, false, DefaultConfig())
	// A zero-length faulty trace compares over an empty prefix: no
	// deviations, so the verdict falls back to the state comparison.
	if v.Outcome != Overwritten {
		t.Errorf("outcome = %v", v.Outcome)
	}
}

func TestRunMultiSISOEquivalence(t *testing.T) {
	g := flat(650, 7)
	f := flat(650, 7)
	f[100] = 20
	single := Run(g, f, false, DefaultConfig())
	multi := RunMulti([][]float64{g}, [][]float64{f}, false, DefaultConfig())
	if single.Outcome != multi.Outcome {
		t.Errorf("SISO equivalence broken: %v vs %v", single.Outcome, multi.Outcome)
	}
}

func TestPropertyClassifyTotalFunction(t *testing.T) {
	// Run must produce a consistent verdict for arbitrary trace pairs:
	// a known outcome, coherent deviation window, non-negative counts.
	f := func(golden, faulty []float64, stateDiffers bool) bool {
		v := Run(golden, faulty, stateDiffers, DefaultConfig())
		switch v.Outcome {
		case Overwritten, Latent, Insignificant, Transient, SemiPermanent, Permanent:
		default:
			return false
		}
		if v.StrongIterations < 0 || v.MaxDeviation < 0 {
			return false
		}
		if v.StrongIterations > 0 && (v.FirstDeviation < 0 || v.LastDeviation < v.FirstDeviation) {
			return false
		}
		if v.Outcome.IsValueFailure() == (v.Outcome == Overwritten || v.Outcome == Latent) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertySeverityMonotoneInWindow(t *testing.T) {
	// Widening the transient window can only make verdicts less
	// severe, never more.
	f := func(span uint8) bool {
		g := flat(650, 7)
		fa := flat(650, 7)
		end := 100 + int(span)
		if end > 640 {
			end = 640
		}
		for k := 100; k < end; k++ {
			fa[k] = 20
		}
		tight := Run(g, fa, false, Config{Threshold: 0.1, TransientWindow: 10})
		loose := Run(g, fa, false, Config{Threshold: 0.1, TransientWindow: 200})
		return loose.Outcome <= tight.Outcome
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
