package detect

import (
	"fmt"
	"math"

	"ctrlguard/internal/core"
	"ctrlguard/internal/trace"
)

// MineOptions tunes the automaton miner. Zero values select defaults.
type MineOptions struct {
	// Margin widens each element's observed [min, max] envelope by
	// Margin * span on each side (default 0.05).
	Margin float64

	// RateFactor scales the observed maximum per-iteration |delta|
	// into the enforced rate bound (default 1.5).
	RateFactor float64

	// Bins quantises each element's envelope for the state-transition
	// set (default 8).
	Bins int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.Margin <= 0 {
		o.Margin = 0.05
	}
	if o.RateFactor <= 0 {
		o.RateFactor = 1.5
	}
	if o.Bins <= 0 {
		o.Bins = 8
	}
	return o
}

// Elem is the mined behavior of one state element: a value envelope, a
// rate bound, an optional monotonicity direction, and the set of
// quantised bin transitions the golden run exhibited. An element whose
// golden series contained non-finite values is left unconstrained —
// mining never invents a constraint the reference data cannot support.
type Elem struct {
	Constrained bool
	Lo, Hi      float64 // widened envelope
	MaxDelta    float64 // widened rate bound (+Inf when unobservable)
	Monotone    int     // +1 nondecreasing, -1 nonincreasing, 0 none
	Bins        int
	Allowed     []bool // Bins*Bins transition matrix, prev*Bins+cur
}

// Automaton is a behavior-derived state-sequence detector mined from
// golden per-iteration state vectors. The zero-element automaton
// (mined from an empty capture) accepts everything.
type Automaton struct {
	Elems      []Elem
	Iterations int // golden iterations mined
}

// MineSeries mines an automaton from golden per-iteration state
// vectors: series[k] is the vector at iteration k. Short or degenerate
// inputs are valid: an empty series yields an accept-all automaton, a
// single iteration yields envelope-only constraints, and elements with
// NaN/Inf samples are left unconstrained rather than panicking.
func MineSeries(series [][]float64, opts MineOptions) *Automaton {
	opts = opts.withDefaults()
	a := &Automaton{Iterations: len(series)}
	if len(series) == 0 {
		return a
	}
	elems := len(series[0])
	for _, row := range series {
		if len(row) < elems {
			elems = len(row)
		}
	}
	a.Elems = make([]Elem, elems)

	for i := range a.Elems {
		e := &a.Elems[i]
		finite := true
		lo, hi := math.Inf(1), math.Inf(-1)
		maxDelta := 0.0
		up, down := false, false
		for k, row := range series {
			v := row[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
				break
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			if k > 0 {
				d := v - series[k-1][i]
				if math.Abs(d) > maxDelta {
					maxDelta = math.Abs(d)
				}
				if d > 0 {
					up = true
				}
				if d < 0 {
					down = true
				}
			}
		}
		if !finite {
			continue
		}
		e.Constrained = true
		span := hi - lo
		widen := opts.Margin*span + 1e-9*(1+math.Abs(hi))
		e.Lo, e.Hi = lo-widen, hi+widen
		if len(series) > 1 {
			e.MaxDelta = opts.RateFactor*maxDelta + 1e-9*(1+math.Abs(hi))
		} else {
			e.MaxDelta = math.Inf(1)
		}
		switch {
		case up && !down:
			e.Monotone = 1
		case down && !up:
			e.Monotone = -1
		}
		if len(series) > 1 {
			e.Bins = opts.Bins
			e.Allowed = make([]bool, opts.Bins*opts.Bins)
			prev := e.bin(series[0][i])
			for k := 1; k < len(series); k++ {
				cur := e.bin(series[k][i])
				e.Allowed[prev*e.Bins+cur] = true
				prev = cur
			}
		}
	}
	return a
}

// MineFromTrace mines an automaton from the golden side of a captured
// experiment trace: the per-iteration golden state variable and golden
// output form the state vector. Captures without a located state
// variable mine the output series alone; zero-iteration captures yield
// an accept-all automaton.
func MineFromTrace(t *trace.Trace, opts MineOptions) *Automaton {
	if t == nil {
		return &Automaton{}
	}
	var series [][]float64
	for _, it := range t.Iterations {
		if it.Events&trace.EventTrapped != 0 {
			// No output was delivered for a trapped iteration; its
			// golden values are not a behavior sample.
			continue
		}
		if t.Header.HasState {
			series = append(series, []float64{it.XGolden, it.GoldenOutput})
		} else {
			series = append(series, []float64{it.GoldenOutput})
		}
	}
	return MineSeries(series, opts)
}

// bin quantises v into the element's transition bin, clamping values
// outside the envelope into the edge bins.
func (e *Elem) bin(v float64) int {
	if e.Bins <= 1 || e.Hi <= e.Lo {
		return 0
	}
	b := int(float64(e.Bins) * (v - e.Lo) / (e.Hi - e.Lo))
	if b < 0 {
		b = 0
	}
	if b >= e.Bins {
		b = e.Bins - 1
	}
	return b
}

// Checker validates a sequence of state vectors against the automaton.
// It is stateful (the previous accepted vector seeds the rate,
// monotonicity and transition checks) and single-run: use NewChecker
// per run.
type Checker struct {
	a      *Automaton
	prev   []float64
	seeded bool
}

// NewChecker creates a fresh checker over a.
func (a *Automaton) NewChecker() *Checker {
	return &Checker{a: a}
}

// Check validates the next vector of the sequence; a non-empty result
// names the first violated constraint. Accepted vectors advance the
// history; rejected ones leave it unchanged.
func (c *Checker) Check(v []float64) string {
	for i := range c.a.Elems {
		e := &c.a.Elems[i]
		if !e.Constrained || i >= len(v) {
			continue
		}
		x := v[i]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Sprintf("elem %d: non-finite value", i)
		}
		if x < e.Lo || x > e.Hi {
			return fmt.Sprintf("elem %d: value %g outside envelope [%g, %g]", i, x, e.Lo, e.Hi)
		}
		if c.seeded && i < len(c.prev) {
			d := x - c.prev[i]
			if math.Abs(d) > e.MaxDelta {
				return fmt.Sprintf("elem %d: delta %g exceeds rate bound %g", i, d, e.MaxDelta)
			}
			if e.Monotone > 0 && d < 0 || e.Monotone < 0 && d > 0 {
				return fmt.Sprintf("elem %d: non-monotone step %g", i, d)
			}
			if e.Bins > 0 && !e.Allowed[e.bin(c.prev[i])*e.Bins+e.bin(x)] {
				return fmt.Sprintf("elem %d: transition bin %d -> %d never observed",
					i, e.bin(c.prev[i]), e.bin(x))
			}
		}
	}
	c.prev = append(c.prev[:0], v...)
	c.seeded = true
	return ""
}

// Violations counts how many vectors of a series the automaton rejects
// (each vector checked with a shared history; rejections do not advance
// it). Validating the mined series itself measures the false-positive
// floor — zero by construction for the data the automaton was mined
// from.
func (a *Automaton) Violations(series [][]float64) int {
	c := a.NewChecker()
	n := 0
	for _, v := range series {
		if c.Check(v) != "" {
			n++
		}
	}
	return n
}

// Assertion adapts the automaton to the core executable-assertion
// interfaces: the whole-vector sequence check runs through
// core.VectorAssertion, and the per-element envelope check through the
// ordinary element interface, so a mined automaton drops into
// core.Guard exactly like the paper's range and rate assertions.
type Assertion struct {
	checker *Checker
}

var (
	_ core.Assertion       = (*Assertion)(nil)
	_ core.VectorAssertion = (*Assertion)(nil)
)

// NewAssertion creates a guard assertion evaluating the automaton.
func (a *Automaton) NewAssertion() *Assertion {
	return &Assertion{checker: a.NewChecker()}
}

// CheckVector implements core.VectorAssertion.
func (s *Assertion) CheckVector(v []float64) bool {
	return s.checker.Check(v) == ""
}

// Check implements core.Assertion: the stateless per-element envelope
// check (the sequence checks ran in CheckVector).
func (s *Assertion) Check(i int, v float64) bool {
	if i >= len(s.checker.a.Elems) {
		return true
	}
	e := &s.checker.a.Elems[i]
	if !e.Constrained {
		return true
	}
	return v >= e.Lo && v <= e.Hi
}

// Name implements core.Assertion.
func (s *Assertion) Name() string {
	return fmt.Sprintf("automaton[%d elems, %d iters]",
		len(s.checker.a.Elems), s.checker.a.Iterations)
}

// CloneAssertion implements core.AssertionCloner: the clone shares the
// immutable automaton but starts with fresh sequence history.
func (s *Assertion) CloneAssertion() core.Assertion {
	return s.checker.a.NewAssertion()
}
