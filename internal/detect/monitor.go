package detect

import (
	"math"

	"ctrlguard/internal/cpu"
)

// The per-iteration state vector the automaton family observes on the
// simulated CPU: the workload's controller state doubles (the same
// data labels internal/trace tracks — x for the SISO variants, x1/x2
// for MIMO), read non-perturbingly at each iteration boundary.
var stateLabelCandidates = []string{"x", "x1", "x2"}

// StateAddrs locates the observable state doubles of a program, in
// label order. Programs without any known label yield an empty slice —
// the automaton then has nothing to watch and accepts every run.
func StateAddrs(prog *cpu.Program) []uint32 {
	var addrs []uint32
	for _, l := range stateLabelCandidates {
		if a, ok := prog.DataAddr(l); ok {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// peekVector reads the state doubles at addrs without perturbing the
// machine.
func peekVector(vm *cpu.CPU, addrs []uint32) []float64 {
	v := make([]float64, len(addrs))
	for i, a := range addrs {
		v[i] = math.Float64frombits(vm.PeekDoubleBits(a))
	}
	return v
}

// Collector is a passive workload.Monitor that gathers the golden
// per-iteration state series the automaton miner consumes. It never
// traps.
type Collector struct {
	addrs  []uint32
	Series [][]float64
}

// NewCollector creates a collector over the program's state doubles.
func NewCollector(prog *cpu.Program) *Collector {
	return &Collector{addrs: StateAddrs(prog)}
}

// OnInstr implements workload.Monitor.
func (c *Collector) OnInstr(int, uint64, *cpu.CPU) *cpu.TrapError {
	return nil
}

// OnIteration implements workload.Monitor.
func (c *Collector) OnIteration(_ int, vm *cpu.CPU) *cpu.TrapError {
	c.Series = append(c.Series, peekVector(vm, c.addrs))
	return nil
}

// AutomatonMonitor evaluates a mined automaton in-loop: at every
// iteration boundary it reads the state doubles and validates the
// vector against the automaton; a violation traps with
// cpu.MechAutomaton. One monitor serves one run; the shared Automaton
// is read-only.
type AutomatonMonitor struct {
	addrs   []uint32
	checker *Checker
}

// NewAutomatonMonitor creates a monitor evaluating a over the
// program's state doubles.
func NewAutomatonMonitor(prog *cpu.Program, a *Automaton) *AutomatonMonitor {
	return &AutomatonMonitor{addrs: StateAddrs(prog), checker: a.NewChecker()}
}

// OnInstr implements workload.Monitor.
func (m *AutomatonMonitor) OnInstr(int, uint64, *cpu.CPU) *cpu.TrapError {
	return nil
}

// OnIteration implements workload.Monitor.
func (m *AutomatonMonitor) OnIteration(_ int, vm *cpu.CPU) *cpu.TrapError {
	if len(m.addrs) == 0 {
		return nil
	}
	if info := m.checker.Check(peekVector(vm, m.addrs)); info != "" {
		return &cpu.TrapError{Mech: cpu.MechAutomaton, PC: vm.PC, Info: info}
	}
	return nil
}

// Stack combines monitors: the first non-nil trap wins, in order.
type Stack []interface {
	OnInstr(iteration int, instr uint64, vm *cpu.CPU) *cpu.TrapError
	OnIteration(iteration int, vm *cpu.CPU) *cpu.TrapError
}

// OnInstr implements workload.Monitor.
func (s Stack) OnInstr(iteration int, instr uint64, vm *cpu.CPU) *cpu.TrapError {
	for _, m := range s {
		if t := m.OnInstr(iteration, instr, vm); t != nil {
			return t
		}
	}
	return nil
}

// OnIteration implements workload.Monitor.
func (s Stack) OnIteration(iteration int, vm *cpu.CPU) *cpu.TrapError {
	for _, m := range s {
		if t := m.OnIteration(iteration, vm); t != nil {
			return t
		}
	}
	return nil
}
