// Package detect is the detection subsystem beyond the paper's
// executable assertions: in-loop error detectors that watch the
// simulated CPU while a campaign experiment runs. Two families are
// implemented. Control-flow error detection (SCFI-style signature
// monitoring) derives the program's basic-block graph, tracks the
// executed block sequence and a per-block instruction signature, and
// traps on any inter-block transition or signature the static program
// cannot produce. Behavior-derived detection mines a state-sequence
// automaton — per-element value envelopes, rate bounds, monotonicity
// and quantised state-transition sets — offline from a golden run (or
// an internal/trace capture) and validates every control iteration
// against it in-loop. Both report through cpu.TrapError with their own
// mechanisms (SIGNATURE MONITOR, BEHAVIOR AUTOMATON), so campaign
// classification, analysis tables and the server treat their verdicts
// exactly like the Thor EDMs' detections.
package detect

import (
	"fmt"
	"sort"
	"strings"
)

// Spec selects which detector families a campaign arms. The zero value
// means no detectors.
type Spec struct {
	CFE       bool `json:"cfe,omitempty"`       // basic-block signature monitoring
	Automaton bool `json:"automaton,omitempty"` // behavior-derived state automaton
}

// Enabled reports whether any family is armed.
func (s Spec) Enabled() bool {
	return s.CFE || s.Automaton
}

// String renders the spec in the form ParseSpec accepts.
func (s Spec) String() string {
	switch {
	case s.CFE && s.Automaton:
		return "cfe+automaton"
	case s.CFE:
		return "cfe"
	case s.Automaton:
		return "automaton"
	default:
		return "none"
	}
}

// Family describes one detector family for discovery (-list-detectors).
type Family struct {
	Name        string
	Description string
}

// Families lists the available detector families.
func Families() []Family {
	return []Family{
		{"cfe", "control-flow error detection: basic-block signature monitoring over the simulated CPU (SCFI-style)"},
		{"automaton", "behavior-derived detection: state-sequence/invariant automaton mined from golden runs"},
	}
}

// ParseSpec parses a detector selection: "", "none", "cfe",
// "automaton", or a "+"-joined combination ("cfe+automaton"). Unknown
// names list the options.
func ParseSpec(sel string) (Spec, error) {
	var s Spec
	sel = strings.ToLower(strings.TrimSpace(sel))
	if sel == "" || sel == "none" {
		return s, nil
	}
	for _, part := range strings.Split(sel, "+") {
		switch strings.TrimSpace(part) {
		case "cfe":
			s.CFE = true
		case "automaton":
			s.Automaton = true
		default:
			var names []string
			for _, f := range Families() {
				names = append(names, f.Name)
			}
			sort.Strings(names)
			return Spec{}, fmt.Errorf(
				"detect: unknown detector %q (available: %s, none, or a \"+\"-joined combination)",
				part, strings.Join(names, ", "))
		}
	}
	return s, nil
}

// The deterministic overhead model, in the spirit of the tuner's
// instruction-count cost model: a hardware or instrumented-software
// implementation of each detector costs a fixed number of checking
// instructions per checked event. Signature monitoring pays per block
// entry (update the runtime signature, compare at the block exit);
// the automaton pays per state element per iteration (range, rate,
// monotonicity and transition-set checks).
const (
	cfeInstrPerBlockEntry     = 2
	automatonInstrPerElem     = 8
	automatonInstrPerIterBase = 3
)

// CFEOverhead models the relative instruction-count overhead of
// signature monitoring on a run that entered blockEntries basic blocks
// over totalInstr instructions.
func CFEOverhead(blockEntries, totalInstr uint64) float64 {
	if totalInstr == 0 {
		return 0
	}
	return float64(cfeInstrPerBlockEntry*blockEntries) / float64(totalInstr)
}

// AutomatonOverhead models the relative instruction-count overhead of
// evaluating an automaton over elems state elements once per control
// iteration, on a run of totalInstr instructions.
func AutomatonOverhead(elems, iterations int, totalInstr uint64) float64 {
	if totalInstr == 0 || iterations <= 0 {
		return 0
	}
	perIter := automatonInstrPerIterBase + automatonInstrPerElem*elems
	return float64(uint64(perIter)*uint64(iterations)) / float64(totalInstr)
}
