package detect

import (
	"math"
	"strings"
	"testing"

	"ctrlguard/internal/core"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"none", Spec{}},
		{"cfe", Spec{CFE: true}},
		{"automaton", Spec{Automaton: true}},
		{"cfe+automaton", Spec{CFE: true, Automaton: true}},
		{"automaton+cfe", Spec{CFE: true, Automaton: true}},
		{" CFE ", Spec{CFE: true}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if _, err := ParseSpec("cfe+bogus"); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestBlockGraphCoversAllVariants pins that the static analysis decodes
// every workload variant into a consistent block partition.
func TestBlockGraphCoversAllVariants(t *testing.T) {
	for _, v := range workload.Variants() {
		g := NewBlockGraph(workload.Program(v))
		if g.Blocks() == 0 {
			t.Errorf("%s: no basic blocks", v)
		}
		if g.Instructions() == 0 {
			t.Errorf("%s: no instructions", v)
		}
	}
}

// TestCFMonitorGoldenClean pins the soundness side of signature
// monitoring: the fault-free reference execution of every variant must
// pass the monitor without a single trap.
func TestCFMonitorGoldenClean(t *testing.T) {
	for _, v := range workload.Variants() {
		prog := workload.Program(v)
		spec := workload.SpecFor(v)
		spec.Monitor = NewCFMonitor(NewBlockGraph(prog))
		out := workload.Run(prog, spec)
		if out.Detected() {
			t.Errorf("%s: golden run trapped under the CF monitor: %v", v, out.Trap)
		}
	}
}

// TestCFMonitorDetectsPCCorruption pins the detection side: forcing the
// PC off the legal inter-block edges must trap with MechSignature.
func TestCFMonitorDetectsPCCorruption(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	spec := workload.SpecFor(workload.AlgorithmI)
	caught := 0
	for _, bit := range []uint{2, 3, 4, 5, 6} {
		run := spec
		run.Injection = &workload.Injection{
			At:    4000,
			Bit:   cpu.StateBit{Region: cpu.RegionRegisters, Element: "pc", Bit: bit},
			Model: workload.ModelPC,
		}
		run.Monitor = NewCFMonitor(NewBlockGraph(prog))
		out := workload.Run(prog, run)
		if out.Detected() && out.Trap.Mech == cpu.MechSignature {
			caught++
		}
	}
	if caught == 0 {
		t.Error("no PC bit-flip was caught by signature monitoring")
	}
}

// Mining edge cases: degenerate golden captures must yield valid
// (possibly accept-all) automata, never a panic.

func TestMineSeriesEmpty(t *testing.T) {
	a := MineSeries(nil, MineOptions{})
	if len(a.Elems) != 0 || a.Iterations != 0 {
		t.Fatalf("empty series mined %+v", a)
	}
	c := a.NewChecker()
	for _, v := range [][]float64{{1}, {math.NaN()}, nil} {
		if got := c.Check(v); got != "" {
			t.Errorf("accept-all automaton rejected %v: %s", v, got)
		}
	}
}

func TestMineSeriesSingleIteration(t *testing.T) {
	a := MineSeries([][]float64{{2.5, -1}}, MineOptions{})
	if len(a.Elems) != 2 {
		t.Fatalf("got %d elems, want 2", len(a.Elems))
	}
	for i, e := range a.Elems {
		if !e.Constrained {
			t.Errorf("elem %d unconstrained", i)
		}
		if !math.IsInf(e.MaxDelta, 1) {
			t.Errorf("elem %d: single iteration must leave the rate unbounded, got %g", i, e.MaxDelta)
		}
	}
	c := a.NewChecker()
	if got := c.Check([]float64{2.5, -1}); got != "" {
		t.Errorf("mined sample rejected: %s", got)
	}
	if got := c.Check([]float64{100, -1}); got == "" {
		t.Error("far-out-of-envelope value accepted")
	}
}

func TestMineSeriesAllGoldenSelfConsistent(t *testing.T) {
	series := make([][]float64, 0, 100)
	for k := 0; k < 100; k++ {
		series = append(series, []float64{math.Sin(float64(k) / 7), float64(k)})
	}
	a := MineSeries(series, MineOptions{})
	if fp := a.Violations(series); fp != 0 {
		t.Errorf("automaton rejects %d samples of its own training series", fp)
	}
	if a.Elems[1].Monotone != 1 {
		t.Errorf("strictly increasing element not marked monotone: %+v", a.Elems[1])
	}
}

func TestMineSeriesNaNUnconstrains(t *testing.T) {
	series := [][]float64{{1, 1}, {math.NaN(), 2}, {3, 3}}
	a := MineSeries(series, MineOptions{})
	if a.Elems[0].Constrained {
		t.Error("element with a NaN sample was constrained")
	}
	if !a.Elems[1].Constrained {
		t.Error("clean element was not constrained")
	}
	c := a.NewChecker()
	if got := c.Check([]float64{1e300, 1}); got != "" {
		t.Errorf("unconstrained element still enforced: %s", got)
	}
}

func TestMineFromTraceZeroIterations(t *testing.T) {
	if a := MineFromTrace(nil, MineOptions{}); len(a.Elems) != 0 {
		t.Errorf("nil trace mined %d elems", len(a.Elems))
	}
	empty := &trace.Trace{}
	if a := MineFromTrace(empty, MineOptions{}); len(a.Elems) != 0 || a.Iterations != 0 {
		t.Errorf("zero-iteration trace mined a constrained automaton")
	}
}

func TestMineFromTraceSkipsTrappedIterations(t *testing.T) {
	tr := &trace.Trace{}
	tr.Header.HasState = true
	tr.Iterations = []trace.Iteration{
		{XGolden: 1, GoldenOutput: 10},
		{XGolden: math.NaN(), GoldenOutput: math.NaN(), Events: trace.EventTrapped},
		{XGolden: 2, GoldenOutput: 11},
	}
	a := MineFromTrace(tr, MineOptions{})
	if a.Iterations != 2 {
		t.Fatalf("mined %d iterations, want 2 (trapped one skipped)", a.Iterations)
	}
	for i, e := range a.Elems {
		if !e.Constrained {
			t.Errorf("elem %d unconstrained; the trapped NaN row leaked into mining", i)
		}
	}
}

// TestAutomatonAssertionInGuard pins the core integration: the mined
// automaton drops into a guard as a vector assertion, vetoes
// out-of-behavior vectors, and clones with fresh history.
func TestAutomatonAssertionInGuard(t *testing.T) {
	series := make([][]float64, 0, 50)
	for k := 0; k < 50; k++ {
		series = append(series, []float64{float64(k) * 0.1})
	}
	a := MineSeries(series, MineOptions{})
	assert := a.NewAssertion()

	if !assert.CheckVector([]float64{0.05}) {
		t.Fatal("in-envelope vector rejected")
	}
	if assert.CheckVector([]float64{4.9}) {
		t.Fatal("rate-violating jump accepted")
	}
	if !strings.Contains(assert.Name(), "automaton") {
		t.Errorf("Name() = %q", assert.Name())
	}

	// Through core.All the vector check must still run (the guard's
	// composite assertion forwards CheckVector to members).
	combined := core.All(assert.CloneAssertion(), core.RangeAssertion{Min: -100, Max: 100})
	va, ok := combined.(core.VectorAssertion)
	if !ok {
		t.Fatal("core.All lost the VectorAssertion capability")
	}
	if !va.CheckVector([]float64{0.05}) {
		t.Error("composite rejected an in-envelope vector")
	}
	if va.CheckVector([]float64{4.9}) {
		t.Error("composite accepted a rate-violating jump")
	}
}

// TestOverheadModels pins the deterministic cost model's basic shape.
func TestOverheadModels(t *testing.T) {
	if got := CFEOverhead(100, 1000); got != 0.2 {
		t.Errorf("CFEOverhead(100, 1000) = %g, want 0.2", got)
	}
	if got := AutomatonOverhead(2, 10, 1000); got <= 0 {
		t.Errorf("AutomatonOverhead = %g, want positive", got)
	}
	if CFEOverhead(1, 0) != 0 || AutomatonOverhead(1, 1, 0) != 0 {
		t.Error("zero-instruction runs must have zero overhead, not NaN")
	}
}
