package detect

import (
	"fmt"

	"ctrlguard/internal/cpu"
)

// Block is one basic block: instructions [Start, End) by code index.
type Block struct {
	Start, End int
}

// BlockGraph is the static control-flow graph of a program: its basic
// blocks, the legal inter-block edges, and a per-block signature (the
// XOR of the block's instruction words). It is immutable after
// construction and safe to share across concurrent monitors.
type BlockGraph struct {
	blocks  []Block
	blockOf []int    // code index -> block index
	succ    [][]int  // block index -> legal successor blocks
	sig     []uint32 // block index -> expected signature
	words   []uint32 // the program's code words (the reference image)
}

// NewBlockGraph derives the basic-block graph of prog. Leaders are the
// entry point, every branch/jump/call target, and every instruction
// following a control transfer; edges follow the ISA semantics (branch
// target + fall-through, jump/call target, RET to every return site).
// Instruction words that fail to decode terminate their block with no
// successors — the CPU's own INSTRUCTION ERROR fires before the
// monitor would matter there.
func NewBlockGraph(prog *cpu.Program) *BlockGraph {
	n := len(prog.Code)
	g := &BlockGraph{
		blockOf: make([]int, n),
		words:   append([]uint32(nil), prog.Code...),
	}
	if n == 0 {
		return g
	}

	// The graph is derived from the same shared predecoded stream the
	// execution engine dispatches from, not a private re-decode.
	dec := cpu.PredecodeCached(prog)
	decoded := make([]cpu.Instr, n)
	ok := make([]bool, n)
	for i := range prog.Code {
		in, err := dec.Instr(i)
		if err == nil {
			decoded[i], ok[i] = in, true
		}
	}

	target := func(in cpu.Instr) (int, bool) {
		a := uint32(in.Imm)
		if a%4 != 0 || cpu.SegmentOf(a) != cpu.SegCode {
			return 0, false
		}
		idx := int((a - cpu.CodeBase) / 4)
		if idx < 0 || idx >= n {
			return 0, false
		}
		return idx, true
	}

	leader := make([]bool, n)
	leader[0] = true
	for i := range decoded {
		if !ok[i] {
			if i+1 < n {
				leader[i+1] = true
			}
			continue
		}
		in := decoded[i]
		switch {
		case in.Op.IsBranch(), in.Op == cpu.OpJmp, in.Op == cpu.OpCall:
			if t, found := target(in); found {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == cpu.OpRet, in.Op == cpu.OpHalt, in.Op == cpu.OpFail:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	for i := 0; i < n; i++ {
		if leader[i] {
			g.blocks = append(g.blocks, Block{Start: i, End: i})
		}
		b := len(g.blocks) - 1
		g.blockOf[i] = b
		g.blocks[b].End = i + 1
	}

	g.sig = make([]uint32, len(g.blocks))
	for b, blk := range g.blocks {
		var s uint32
		for i := blk.Start; i < blk.End; i++ {
			s ^= prog.Code[i]
		}
		g.sig[b] = s
	}

	// Return sites: the blocks whose leader follows a CALL.
	var retSites []int
	for i := range decoded {
		if ok[i] && decoded[i].Op == cpu.OpCall && i+1 < n {
			retSites = append(retSites, g.blockOf[i+1])
		}
	}

	g.succ = make([][]int, len(g.blocks))
	for b, blk := range g.blocks {
		last := blk.End - 1
		if !ok[last] {
			continue
		}
		in := decoded[last]
		add := func(t int) {
			for _, e := range g.succ[b] {
				if e == t {
					return
				}
			}
			g.succ[b] = append(g.succ[b], t)
		}
		switch {
		case in.Op.IsBranch():
			if t, found := target(in); found {
				add(g.blockOf[t])
			}
			if last+1 < n {
				add(g.blockOf[last+1])
			}
		case in.Op == cpu.OpJmp, in.Op == cpu.OpCall:
			if t, found := target(in); found {
				add(g.blockOf[t])
			}
		case in.Op == cpu.OpRet:
			for _, t := range retSites {
				add(t)
			}
		case in.Op == cpu.OpHalt, in.Op == cpu.OpFail:
			// terminal: no successors
		default:
			if last+1 < n {
				add(g.blockOf[last+1])
			}
		}
	}
	return g
}

// Blocks returns the number of basic blocks.
func (g *BlockGraph) Blocks() int {
	return len(g.blocks)
}

// Instructions returns the number of code words covered by the graph.
func (g *BlockGraph) Instructions() int {
	return len(g.blockOf)
}

// isEdge reports whether from -> to is a legal inter-block transition.
func (g *BlockGraph) isEdge(from, to int) bool {
	for _, e := range g.succ[from] {
		if e == to {
			return true
		}
	}
	return false
}

// String summarises the graph for diagnostics.
func (g *BlockGraph) String() string {
	return fmt.Sprintf("detect.BlockGraph{%d blocks over %d instructions}",
		len(g.blocks), len(g.blockOf))
}
