package detect

import (
	"fmt"

	"ctrlguard/internal/cpu"
)

// CFMonitor is the runtime half of signature monitoring: it watches
// every fetched instruction, verifies that execution flows sequentially
// inside basic blocks and only crosses blocks along the static graph's
// edges, and checks each completed block's accumulated instruction
// signature against the expected one. Violations trap with
// cpu.MechSignature. One monitor serves one run; the shared BlockGraph
// is read-only.
type CFMonitor struct {
	g      *BlockGraph
	prev   int // code index of the previously fetched instruction, -1 at start
	runSig uint32

	// Entries counts basic-block entries, the unit of the overhead
	// model (CFEOverhead).
	Entries uint64
}

// NewCFMonitor creates a monitor over g.
func NewCFMonitor(g *BlockGraph) *CFMonitor {
	return &CFMonitor{g: g, prev: -1}
}

// OnInstr implements workload.Monitor.
func (m *CFMonitor) OnInstr(_ int, _ uint64, vm *cpu.CPU) *cpu.TrapError {
	pc := vm.PC
	if pc%4 != 0 || cpu.SegmentOf(pc) != cpu.SegCode {
		// The CPU's own fetch check traps this before executing.
		return nil
	}
	idx := int((pc - cpu.CodeBase) / 4)
	if idx >= m.g.Instructions() {
		return m.trap(pc, "fetch beyond the program's last instruction")
	}

	b := m.g.blockOf[idx]
	switch {
	case m.prev < 0:
		// First instruction of the run: must be the entry point.
		if idx != 0 {
			return m.trap(pc, "execution did not start at the entry block")
		}
		m.enter(vm, idx)
	case m.prev+1 == idx && m.g.blockOf[m.prev] == b:
		// Sequential flow inside the current block.
		m.runSig ^= vm.Mem.ReadWord(pc)
	case idx == m.g.blocks[b].Start:
		// Crossing into a block: legal only from the end of a block
		// along a static edge.
		pb := m.g.blockOf[m.prev]
		if m.prev != m.g.blocks[pb].End-1 {
			return m.trap(pc, fmt.Sprintf("control left block %d before its last instruction", pb))
		}
		if !m.g.isEdge(pb, b) {
			return m.trap(pc, fmt.Sprintf("illegal transition block %d -> block %d", pb, b))
		}
		m.enter(vm, idx)
	default:
		return m.trap(pc, fmt.Sprintf("jump into the middle of block %d", b))
	}

	// Completed the block's last instruction: the accumulated
	// signature must match the static one.
	if idx == m.g.blocks[b].End-1 && m.runSig != m.g.sig[b] {
		return m.trap(pc, fmt.Sprintf("signature mismatch in block %d", b))
	}
	m.prev = idx
	return nil
}

// OnIteration implements workload.Monitor; signature monitoring is
// purely per-instruction.
func (m *CFMonitor) OnIteration(int, *cpu.CPU) *cpu.TrapError {
	return nil
}

func (m *CFMonitor) enter(vm *cpu.CPU, idx int) {
	m.Entries++
	m.runSig = vm.Mem.ReadWord(cpu.CodeBase + uint32(idx*4))
}

func (m *CFMonitor) trap(pc uint32, info string) *cpu.TrapError {
	return &cpu.TrapError{Mech: cpu.MechSignature, PC: pc, Info: info}
}
