package workload

import (
	"math"
	"testing"
	"time"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/control"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/sim"
)

func TestAllVariantsAssemble(t *testing.T) {
	for _, v := range Variants() {
		t.Run(string(v), func(t *testing.T) {
			src, ok := Source(v)
			if !ok || src == "" {
				t.Fatal("missing source")
			}
			p := Program(v)
			if len(p.Code) == 0 || len(p.Data) == 0 {
				t.Error("empty program")
			}
		})
	}
}

func TestProgramUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Program(Variant("nope"))
}

func TestGoldenRunCompletes(t *testing.T) {
	out := Run(Program(AlgorithmI), PaperRunSpec())
	if out.Detected() {
		t.Fatalf("golden run trapped: %v", out.Trap)
	}
	if len(out.Outputs) != plant.DefaultIterations {
		t.Fatalf("outputs = %d, want %d", len(out.Outputs), plant.DefaultIterations)
	}
	if out.FinalState == nil {
		t.Error("missing final state")
	}
}

func TestGoldenRunsAllVariantsComplete(t *testing.T) {
	for _, v := range Variants() {
		t.Run(string(v), func(t *testing.T) {
			out := Run(Program(v), SpecFor(v))
			if out.Detected() {
				t.Fatalf("golden run trapped: %v at iteration %d", out.Trap, out.TrapIteration)
			}
		})
	}
}

func TestGoldenRunDeterministic(t *testing.T) {
	a := Run(Program(AlgorithmI), PaperRunSpec())
	b := Run(Program(AlgorithmI), PaperRunSpec())
	if a.Instructions != b.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", a.Instructions, b.Instructions)
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
	if !cpu.StatesEqual(a.FinalState, b.FinalState) {
		t.Error("final states differ")
	}
}

func TestVMMatchesGoControllerClosedLoop(t *testing.T) {
	// The assembly Algorithm I must track the Go implementation of the
	// same controller within float32 rounding across the whole run.
	vmOut := Run(Program(AlgorithmI), PaperRunSpec())
	if vmOut.Detected() {
		t.Fatal(vmOut.Trap)
	}

	eng := plant.NewEngine(plant.DefaultEngineConfig())
	ctrl := control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
	goTrace := sim.Run(ctrl, eng, sim.PaperConfig())

	for k := range vmOut.Outputs {
		if d := math.Abs(vmOut.Outputs[k] - goTrace.U[k]); d > 0.05 {
			t.Fatalf("VM and Go controller diverged at k=%d: %v vs %v (d=%v)",
				k, vmOut.Outputs[k], goTrace.U[k], d)
		}
	}
}

func TestAlgorithmIIGoldenMatchesAlgorithmI(t *testing.T) {
	a := Run(Program(AlgorithmI), PaperRunSpec())
	b := Run(Program(AlgorithmII), PaperRunSpec())
	for k := range a.Outputs {
		if a.Outputs[k] != b.Outputs[k] {
			t.Fatalf("fault-free Algorithm II diverged at k=%d", k)
		}
	}
}

func TestFaultFreeOutputShape(t *testing.T) {
	out := Run(Program(AlgorithmI), PaperRunSpec())
	// Settled at 2000 rpm before the load bump.
	if math.Abs(out.Speeds[150]-2000) > 5 {
		t.Errorf("speed at k=150 = %v, want ≈ 2000", out.Speeds[150])
	}
	// Settled at 3000 rpm at the end.
	if math.Abs(out.Speeds[649]-3000) > 5 {
		t.Errorf("final speed = %v, want ≈ 3000", out.Speeds[649])
	}
	// Throttle saturates during the reference step (Figure 5).
	sat := false
	for k := 325; k < 360; k++ {
		if out.Outputs[k] >= 69.99 {
			sat = true
		}
	}
	if !sat {
		t.Error("throttle did not saturate during the step")
	}
}

func TestInjectedStateCorruptionSevereForAlg1(t *testing.T) {
	prog := Program(AlgorithmI)
	golden := Run(prog, PaperRunSpec())

	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 27},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.Run(golden.Outputs, out.Outputs, true, classify.DefaultConfig())
	if !v.Outcome.IsSevere() {
		t.Errorf("outcome = %v, want severe (state exponent flip locks throttle)", v.Outcome)
	}
}

func TestInjectedStateCorruptionRecoveredByAlg2(t *testing.T) {
	prog := Program(AlgorithmII)
	golden := Run(prog, PaperRunSpec())

	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 27},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.Run(golden.Outputs, out.Outputs, true, classify.DefaultConfig())
	if v.Outcome.IsSevere() {
		t.Errorf("outcome = %v, want minor (assertion recovers the state)", v.Outcome)
	}
}

func TestInjectionIntoDeadRegisterIsNonEffective(t *testing.T) {
	prog := Program(AlgorithmI)
	golden := Run(prog, PaperRunSpec())

	// r13 only ever holds the constant 1 written fresh before the
	// sync store; flipping it at the very start of an iteration is
	// overwritten before use.
	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r13", Bit: 5},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.Run(golden.Outputs, out.Outputs,
		!cpu.StatesEqual(golden.FinalState, out.FinalState), classify.DefaultConfig())
	if v.Outcome.IsValueFailure() {
		t.Errorf("outcome = %v, want non-effective", v.Outcome)
	}
}

func TestInjectionPCCorruptionDetected(t *testing.T) {
	prog := Program(AlgorithmI)
	golden := Run(prog, PaperRunSpec())

	// Flipping a high PC bit sends the fetch far outside the code
	// segment: JUMP ERROR.
	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "pc", Bit: 14},
	}
	out := Run(prog, spec)
	if !out.Detected() {
		t.Fatal("PC corruption not detected")
	}
	if out.Trap.Mech != cpu.MechJumpError {
		t.Errorf("mechanism = %v, want JUMP ERROR", out.Trap.Mech)
	}
}

func TestWatchdogTerminatesRunawayIteration(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := PaperRunSpec()
	spec.CycleBudget = 10 // far below one healthy iteration
	out := Run(prog, spec)
	if !out.Detected() || out.Trap.Mech != cpu.MechWatchdog {
		t.Fatalf("expected watchdog, got %v", out.Trap)
	}
}

func TestFailStopVariantTrapsOnCorruptState(t *testing.T) {
	prog := Program(AlgorithmIIFailStop)
	golden := Run(prog, PaperRunSpec())

	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 27},
	}
	out := Run(prog, spec)
	if !out.Detected() || out.Trap.Mech != cpu.MechConstraint {
		t.Fatalf("expected CONSTRAINT ERROR, got %v", out.Trap)
	}
}

func TestRegStateVariantImmuneToCacheStateFlip(t *testing.T) {
	prog := Program(AlgorithmIRegState)
	golden := Run(prog, PaperRunSpec())

	// With the state in r6, the cached copy of x is read once at
	// start-up; flipping it mid-run cannot reach the controller.
	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 27},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.Run(golden.Outputs, out.Outputs, true, classify.DefaultConfig())
	if v.Outcome.IsValueFailure() && v.Outcome != classify.Insignificant {
		t.Errorf("outcome = %v, want non-effective or insignificant", v.Outcome)
	}
}

func TestRegStateVariantVulnerableToRegisterFlip(t *testing.T) {
	prog := Program(AlgorithmIRegState)
	golden := Run(prog, PaperRunSpec())

	spec := PaperRunSpec()
	spec.Injection = &Injection{
		At:  golden.Instructions / 2,
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r6", Bit: 27},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Skipf("register flip detected by %v; acceptable", out.Trap.Mech)
	}
	v := classify.Run(golden.Outputs, out.Outputs, true, classify.DefaultConfig())
	if !v.Outcome.IsSevere() {
		t.Errorf("outcome = %v, want severe (state lives in r6)", v.Outcome)
	}
}

func TestOutcomeDetectedAccessor(t *testing.T) {
	o := &Outcome{}
	if o.Detected() {
		t.Error("empty outcome should not be detected")
	}
	o.Trap = &cpu.TrapError{Mech: cpu.MechAddressError}
	if !o.Detected() {
		t.Error("outcome with trap should be detected")
	}
}

// TestDeadlineAbortsRun checks the per-run deadline used by the
// campaign engine's worker fault isolation: an expired deadline stops
// the run at an iteration boundary with Aborted + DeadlineExceeded,
// while a generous one changes nothing.
func TestDeadlineAbortsRun(t *testing.T) {
	prog := Program(AlgorithmI)

	spec := PaperRunSpec()
	spec.Deadline = time.Now().Add(-time.Second)
	out := Run(prog, spec)
	if !out.Aborted || !out.DeadlineExceeded {
		t.Fatalf("expired deadline: Aborted=%v DeadlineExceeded=%v, want both", out.Aborted, out.DeadlineExceeded)
	}
	if len(out.Outputs) != 0 {
		t.Errorf("expired deadline completed %d iterations, want 0", len(out.Outputs))
	}

	spec = PaperRunSpec()
	spec.Deadline = time.Now().Add(time.Hour)
	out = Run(prog, spec)
	if out.Aborted || out.DeadlineExceeded {
		t.Fatalf("generous deadline aborted the run: %+v", out)
	}
	if len(out.Outputs) != spec.Iterations {
		t.Errorf("completed %d iterations, want %d", len(out.Outputs), spec.Iterations)
	}
}
