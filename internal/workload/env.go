package workload

import "ctrlguard/internal/plant"

// Environment is the host side of the data exchange: the controlled
// object the paper's environment simulator played. Each iteration the
// harness writes the environment's input values to the I/O window,
// runs the target until it delivers its outputs, and feeds them back.
type Environment interface {
	// Inputs returns the values of the input ports for iteration k.
	Inputs(k int) []float64

	// Deliver consumes the outputs of iteration k.
	Deliver(k int, u []float64)
}

// PortLayout describes a workload's I/O window: Inputs doubles followed
// by Outputs doubles, then the sync word and the ready flag. Input j
// lives at byte offset 8·j, output j at 8·(Inputs+j), sync at
// 8·(Inputs+Outputs) and ready 4 bytes after.
type PortLayout struct {
	Inputs  int
	Outputs int
}

// SyncOffset returns the byte offset of the sync word.
func (p PortLayout) SyncOffset() uint32 {
	return uint32(8 * (p.Inputs + p.Outputs))
}

// ReadyOffset returns the byte offset of the ready flag.
func (p PortLayout) ReadyOffset() uint32 {
	return p.SyncOffset() + 4
}

// sisoPorts is the engine workload's layout: r and y in, u_lim out.
var sisoPorts = PortLayout{Inputs: 2, Outputs: 1}

// mimoPorts is the two-shaft workload's layout: r1, r2, n1, n2 in and
// u1, u2 out.
var mimoPorts = PortLayout{Inputs: 4, Outputs: 2}

// engineEnv is the paper's environment: the engine model fed by the
// reference profile.
type engineEnv struct {
	eng    *plant.Engine
	ref    plant.ReferenceProfile
	t      float64
	y      float64
	speeds []float64
}

var _ Environment = (*engineEnv)(nil)

func newEngineEnv(spec RunSpec) *engineEnv {
	eng := plant.NewEngine(spec.EngineCfg)
	return &engineEnv{
		eng: eng,
		ref: spec.Reference,
		t:   spec.EngineCfg.T,
		y:   eng.Speed(),
	}
}

func (e *engineEnv) Inputs(k int) []float64 {
	return []float64{e.ref(float64(k) * e.t), e.y}
}

func (e *engineEnv) Deliver(_ int, u []float64) {
	e.y = e.eng.Step(u[0])
	e.speeds = append(e.speeds, e.y)
}

// CloneEnv implements CloneableEnv: an independent engine environment
// frozen mid-run, including the accumulated speed trace.
func (e *engineEnv) CloneEnv() Environment {
	cp := *e
	cp.eng = e.eng.Clone()
	cp.speeds = append([]float64(nil), e.speeds...)
	return &cp
}

// twoShaftEnv is the MIMO workload's environment: the two-spool plant
// with per-shaft reference profiles.
type twoShaftEnv struct {
	shafts     *plant.TwoShaft
	ref1, ref2 plant.ReferenceProfile
	t          float64
	n1, n2     float64
}

var _ Environment = (*twoShaftEnv)(nil)

func newTwoShaftEnv(RunSpec) *twoShaftEnv {
	cfg := plant.DefaultTwoShaftConfig()
	p := plant.NewTwoShaft(cfg)
	ref1, ref2 := plant.PaperMIMOReference()
	n1, n2 := p.Speeds()
	return &twoShaftEnv{shafts: p, ref1: ref1, ref2: ref2, t: cfg.T, n1: n1, n2: n2}
}

func (e *twoShaftEnv) Inputs(k int) []float64 {
	t := float64(k) * e.t
	return []float64{e.ref1(t), e.ref2(t), e.n1, e.n2}
}

func (e *twoShaftEnv) Deliver(_ int, u []float64) {
	e.n1, e.n2 = e.shafts.Step(u[0], u[1])
}

// CloneEnv implements CloneableEnv.
func (e *twoShaftEnv) CloneEnv() Environment {
	cp := *e
	cp.shafts = e.shafts.Clone()
	return &cp
}
