// Package workload contains the fault-injection workload of the
// experiments: the PI engine-speed controller of the paper compiled to
// the target CPU's assembly, in its unprotected form (Algorithm I), the
// form hardened with executable assertions and best effort recovery
// (Algorithm II), and the ablation variants analysed in DESIGN.md. The
// Harness runs a program against the host-side environment simulator
// (the engine model), exchanging sensor and actuator values through the
// CPU's memory-mapped I/O window each control iteration.
//
// Fidelity notes, both load-bearing for the reproduction:
//
//   - All controller arithmetic is double precision (register-pair
//     soft-float), like the Ada code Real-Time Workshop generates for
//     Simulink's default double signals. The width of the state
//     variable determines the grade mix of its corruption: most of a
//     double's bits are low mantissa whose flips cause insignificant
//     failures, while a float32 state would make nearly half of all
//     state flips severe.
//   - The gains and limits (Kp, Ki, T, u_min, u_max) are built from
//     immediates in the protected code segment (FMOVD), matching
//     compiled-in Ada literals. Only the mutable controller state — x
//     and, for Algorithm II, its backups — lives in cached data memory,
//     which is why the paper's severe failures concentrate on "the
//     cache lines where the global variable x is stored".
//   - Every program ends each iteration busy-waiting on the IOReady
//     flag, modelling the real target idling between the host's
//     15.4 ms data exchanges. While the CPU idles its registers hold
//     dead values, but the cached state stays live — the effect behind
//     the paper's cache-dominated value failures.
package workload

import (
	"sync"

	"ctrlguard/internal/cpu"
)

// I/O window offsets used by the workload programs. Sensor and actuator
// values are doubles: high word first, low word at +4.
const (
	IOR     = 0  // float64 in: reference speed r
	IOY     = 8  // float64 in: measured engine speed y
	IOU     = 16 // float64 out: limited throttle command u_lim
	IOSync  = 24 // write 1: iteration complete
	IOReady = 28 // reads 0 until the next sample period begins
)

// Variant names the available workload programs.
type Variant string

// Workload variants. AlgorithmI and AlgorithmII correspond to the
// paper's Algorithms I and II. The remaining variants are the
// ablations called out in DESIGN.md §5.
const (
	// AlgorithmI is the unprotected PI controller.
	AlgorithmI Variant = "alg1"

	// AlgorithmII adds executable assertions on the state and output
	// with best effort recovery (Algorithm II of the paper).
	AlgorithmII Variant = "alg2"

	// AlgorithmIRegState is Algorithm I with the integrator state
	// held in a register pair for the whole run instead of cached
	// memory. Ablation: moves the severe-failure mass from the cache
	// region to the register region.
	AlgorithmIRegState Variant = "alg1-regstate"

	// AlgorithmIIBackupFirst is Algorithm II with the state backup
	// taken BEFORE the assertion, violating step 1 of the paper's
	// generalised scheme: a corrupted state propagates into its own
	// backup, defeating the recovery.
	AlgorithmIIBackupFirst Variant = "alg2-backup-first"

	// AlgorithmIIFailStop replaces best effort recovery with a
	// fail-stop trap (CONSTRAINT ERROR) when an assertion fails.
	AlgorithmIIFailStop Variant = "alg2-failstop"
)

// Variants lists every workload variant.
func Variants() []Variant {
	return []Variant{
		AlgorithmI,
		AlgorithmII,
		AlgorithmIRegState,
		AlgorithmIIBackupFirst,
		AlgorithmIIFailStop,
		MIMOAlgorithmI,
		MIMOAlgorithmII,
	}
}

// Source returns the assembly source of a variant.
func Source(v Variant) (string, bool) {
	src, ok := sources[v]
	return src, ok
}

// Program assembles a variant. It panics only on a programming error in
// the embedded sources (covered by tests).
func Program(v Variant) *cpu.Program {
	if p, ok := programs.Load(v); ok {
		return p.(*cpu.Program)
	}
	src, ok := sources[v]
	if !ok {
		panic("workload: unknown variant " + string(v))
	}
	p, _ := programs.LoadOrStore(v, cpu.MustAssemble(src))
	return p.(*cpu.Program)
}

// programs memoises assembly per variant. The sources are fixed, every
// consumer treats the returned program as immutable (SWIFI copies
// before mutating), and sharing one identity per variant is what keeps
// the predecoded-stream cache effective across campaigns.
var programs sync.Map // Variant -> *cpu.Program

var sources = map[Variant]string{
	AlgorithmI:             srcAlgorithmI,
	AlgorithmII:            srcAlgorithmII,
	AlgorithmIRegState:     srcAlgorithmIRegState,
	AlgorithmIIBackupFirst: srcAlgorithmIIBackupFirst,
	AlgorithmIIFailStop:    srcAlgorithmIIFailStop,
	MIMOAlgorithmI:         srcMIMOAlgorithmI,
	MIMOAlgorithmII:        srcMIMOAlgorithmII,
}

// SpecFor returns the default run specification for a variant: the
// paper's engine workload for the SISO variants, the two-shaft
// workload for the MIMO variants.
func SpecFor(v Variant) RunSpec {
	switch v {
	case MIMOAlgorithmI, MIMOAlgorithmII:
		return MIMORunSpec()
	default:
		return PaperRunSpec()
	}
}

// MIMORunSpec returns the run specification of the MIMO workload: 650
// iterations of the two-loop controller against the two-shaft plant.
func MIMORunSpec() RunSpec {
	return RunSpec{
		Iterations: 650,
		Ports:      mimoPorts,
		NewEnv:     func(spec RunSpec) Environment { return newTwoShaftEnv(spec) },
	}
}

// Register conventions shared by all variants (pairs are even/odd):
//
//	r1      scalar base pointer (I/O window or data segment)
//	r2:r3   reference r, then control error e
//	r4:r5   measurement y, then u_min (0.0), then T
//	r6:r7   state x
//	r8:r9   Kp, then unlimited output u
//	r10:r11 u_max, then Ki
//	r12:r13 limited output u_lim
//	r15     sync/poll scratch

// srcAlgorithmI is the paper's Algorithm I:
//
//	e = r - y
//	u = e*Kp + x
//	u_lim = limit_output(u)
//	if anti_windup_activated then Ki = 0.0 else Ki = integral_gain
//	x = x + T*e*Ki
//	return u_lim
const srcAlgorithmI = `
.code
loop:   SIG
        MOVI r1, 0x2000       ; I/O window base
        LD   r2, 0(r1)        ; r (high word)
        LD   r3, 4(r1)        ; r (low word)
        LD   r4, 8(r1)        ; y (high word)
        LD   r5, 12(r1)       ; y (low word)
        MOVI r1, 0x1000       ; data segment base
        LD   r6, @x(r1)       ; x (high word, cached state variable)
        LD   r7, @x+4(r1)     ; x (low word)
        FSUBD r2, r2, r4      ; e = r - y
        FMOVD r8, 0.068       ; Kp (compiled-in literal)
        FMULD r8, r2, r8      ; Kp*e
        FADDD r8, r8, r6      ; u = Kp*e + x
        FMOVD r10, 70.0       ; throttle upper limit
        FMOVD r4, 0.0         ; throttle lower limit
        OR   r12, r8, r0      ; u_lim = u
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  cklo
        OR   r12, r10, r0     ; clamp to upper limit
        OR   r13, r11, r0
cklo:   SIG
        FCMPD r12, r4
        BGE  kisel
        OR   r12, r4, r0      ; clamp to lower limit
        OR   r13, r5, r0
kisel:  SIG
        FCMPD r8, r10         ; anti-windup: u beyond a limit and e
        BLE  awlo             ; pushing further out => Ki = 0
        FCMPD r2, r4
        BLE  kipos
        MOVI r10, 0           ; Ki = 0.0
        MOVI r11, 0
        JMP  integ
awlo:   SIG
        FCMPD r8, r4
        BGE  kipos
        FCMPD r2, r4
        BGE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
kipos:  SIG
        FMOVD r10, 0.25       ; Ki = integral gain
integ:  SIG
        FMOVD r4, 0.015384615384615385 ; T, sample interval 10 s / 650
        FMULD r2, r2, r4      ; e*T
        FMULD r2, r2, r10     ; e*T*Ki
        FADDD r6, r6, r2      ; x = x + T*e*Ki
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
        MOVI r1, 0x2000
        ST   r12, 16(r1)      ; deliver u_lim (high word)
        ST   r13, 20(r1)      ; deliver u_lim (low word)
        MOVI r15, 1
        ST   r15, 24(r1)      ; signal iteration complete
wait:   SIG
        LD   r15, 28(r1)      ; poll the sample-period ready flag
        CMP  r15, r0
        BEQ  wait
        JMP  loop
.data
x:      .double 7.0           ; controller state (integrator)
`

// srcAlgorithmII is the paper's Algorithm II: assertions on x and u_lim
// against the throttle's physical range, with best effort recovery from
// the previous iteration's backups.
const srcAlgorithmII = `
.code
loop:   SIG
        MOVI r1, 0x2000
        LD   r2, 0(r1)        ; r
        LD   r3, 4(r1)
        LD   r4, 8(r1)        ; y
        LD   r5, 12(r1)
        MOVI r1, 0x1000
        LD   r6, @x(r1)       ; x
        LD   r7, @x+4(r1)
        FSUBD r2, r2, r4      ; e = r - y
        FMOVD r10, 70.0
        FMOVD r4, 0.0
        FCMPD r6, r4          ; assertion: in_range(x)?
        BLT  recx             ; x < min: ERROR, recover
        FCMPD r6, r10
        BGT  recx             ; x > max: ERROR, recover
        ST   r6, @xold(r1)    ; healthy: back up the state
        ST   r7, @xold+4(r1)
        JMP  xok
recx:   SIG
        LD   r6, @xold(r1)    ; best effort recovery: x = x_old
        LD   r7, @xold+4(r1)
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
xok:    SIG
        FMOVD r8, 0.068
        FMULD r8, r2, r8
        FADDD r8, r8, r6      ; u = Kp*e + x
        OR   r12, r8, r0
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  cklo
        OR   r12, r10, r0
        OR   r13, r11, r0
cklo:   SIG
        FCMPD r12, r4
        BGE  kisel
        OR   r12, r4, r0
        OR   r13, r5, r0
kisel:  SIG
        FCMPD r8, r10
        BLE  awlo
        FCMPD r2, r4
        BLE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
awlo:   SIG
        FCMPD r8, r4
        BGE  kipos
        FCMPD r2, r4
        BGE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
kipos:  SIG
        FMOVD r10, 0.25
integ:  SIG
        FMOVD r4, 0.015384615384615385
        FMULD r2, r2, r4
        FMULD r2, r2, r10
        FADDD r6, r6, r2      ; x = x + T*e*Ki
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
        FMOVD r4, 0.0         ; reload limits for the output assertion
        FMOVD r10, 70.0
        FCMPD r12, r4         ; assertion: in_range(u_lim)?
        BLT  recu
        FCMPD r12, r10
        BGT  recu
        JMP  uok
recu:   SIG
        LD   r12, @uold(r1)   ; ERROR: deliver previous output
        LD   r13, @uold+4(r1)
        LD   r6, @xold(r1)    ; and restore the matching state
        LD   r7, @xold+4(r1)
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
uok:    SIG
        ST   r12, @uold(r1)   ; back up the output
        ST   r13, @uold+4(r1)
        MOVI r1, 0x2000
        ST   r12, 16(r1)
        ST   r13, 20(r1)
        MOVI r15, 1
        ST   r15, 24(r1)
wait:   SIG
        LD   r15, 28(r1)
        CMP  r15, r0
        BEQ  wait
        JMP  loop
.data
x:      .double 7.0           ; controller state (integrator)
xold:   .double 7.0           ; backup of the state
uold:   .double 7.0           ; backup of the output
`

// srcAlgorithmIRegState keeps the integrator state in the r6:r7 pair
// for the whole run; data memory holds only the seed value read once at
// start-up.
const srcAlgorithmIRegState = `
.code
entry:  SIG
        MOVI r1, 0x1000
        LD   r6, @x(r1)       ; seed the state register pair once
        LD   r7, @x+4(r1)
loop:   SIG
        MOVI r1, 0x2000
        LD   r2, 0(r1)
        LD   r3, 4(r1)
        LD   r4, 8(r1)
        LD   r5, 12(r1)
        FSUBD r2, r2, r4      ; e = r - y
        FMOVD r8, 0.068
        FMULD r8, r2, r8
        FADDD r8, r8, r6      ; u = Kp*e + x (x lives in r6:r7)
        FMOVD r10, 70.0
        FMOVD r4, 0.0
        OR   r12, r8, r0
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  cklo
        OR   r12, r10, r0
        OR   r13, r11, r0
cklo:   SIG
        FCMPD r12, r4
        BGE  kisel
        OR   r12, r4, r0
        OR   r13, r5, r0
kisel:  SIG
        FCMPD r8, r10
        BLE  awlo
        FCMPD r2, r4
        BLE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
awlo:   SIG
        FCMPD r8, r4
        BGE  kipos
        FCMPD r2, r4
        BGE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
kipos:  SIG
        FMOVD r10, 0.25
integ:  SIG
        FMOVD r4, 0.015384615384615385
        FMULD r2, r2, r4
        FMULD r2, r2, r10
        FADDD r6, r6, r2      ; x stays in r6:r7, never stored
        MOVI r1, 0x2000
        ST   r12, 16(r1)
        ST   r13, 20(r1)
        MOVI r15, 1
        ST   r15, 24(r1)
wait:   SIG
        LD   r15, 28(r1)
        CMP  r15, r0
        BEQ  wait
        JMP  loop
.data
x:      .double 7.0           ; start-up seed for the state register pair
`

// srcAlgorithmIIBackupFirst violates step 1 of the paper's generalised
// scheme by backing the state up BEFORE asserting it, so a corrupted x
// poisons its own recovery point.
const srcAlgorithmIIBackupFirst = `
.code
loop:   SIG
        MOVI r1, 0x2000
        LD   r2, 0(r1)
        LD   r3, 4(r1)
        LD   r4, 8(r1)
        LD   r5, 12(r1)
        MOVI r1, 0x1000
        LD   r6, @x(r1)
        LD   r7, @x+4(r1)
        FSUBD r2, r2, r4
        FMOVD r10, 70.0
        FMOVD r4, 0.0
        ST   r6, @xold(r1)    ; WRONG ORDER: backup before assertion
        ST   r7, @xold+4(r1)
        FCMPD r6, r4
        BLT  recx
        FCMPD r6, r10
        BGT  recx
        JMP  xok
recx:   SIG
        LD   r6, @xold(r1)    ; recovers the already-poisoned backup
        LD   r7, @xold+4(r1)
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
xok:    SIG
        FMOVD r8, 0.068
        FMULD r8, r2, r8
        FADDD r8, r8, r6
        OR   r12, r8, r0
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  cklo
        OR   r12, r10, r0
        OR   r13, r11, r0
cklo:   SIG
        FCMPD r12, r4
        BGE  kisel
        OR   r12, r4, r0
        OR   r13, r5, r0
kisel:  SIG
        FCMPD r8, r10
        BLE  awlo
        FCMPD r2, r4
        BLE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
awlo:   SIG
        FCMPD r8, r4
        BGE  kipos
        FCMPD r2, r4
        BGE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
kipos:  SIG
        FMOVD r10, 0.25
integ:  SIG
        FMOVD r4, 0.015384615384615385
        FMULD r2, r2, r4
        FMULD r2, r2, r10
        FADDD r6, r6, r2
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
        FMOVD r4, 0.0
        FMOVD r10, 70.0
        FCMPD r12, r4
        BLT  recu
        FCMPD r12, r10
        BGT  recu
        JMP  uok
recu:   SIG
        LD   r12, @uold(r1)
        LD   r13, @uold+4(r1)
        LD   r6, @xold(r1)
        LD   r7, @xold+4(r1)
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
uok:    SIG
        ST   r12, @uold(r1)
        ST   r13, @uold+4(r1)
        MOVI r1, 0x2000
        ST   r12, 16(r1)
        ST   r13, 20(r1)
        MOVI r15, 1
        ST   r15, 24(r1)
wait:   SIG
        LD   r15, 28(r1)
        CMP  r15, r0
        BEQ  wait
        JMP  loop
.data
x:      .double 7.0
xold:   .double 7.0
uold:   .double 7.0
`

// srcAlgorithmIIFailStop replaces best effort recovery with a fail-stop
// trap: the assertion raises CONSTRAINT ERROR instead of recovering,
// modelling strong failure semantics at the cost of availability.
const srcAlgorithmIIFailStop = `
.code
loop:   SIG
        MOVI r1, 0x2000
        LD   r2, 0(r1)
        LD   r3, 4(r1)
        LD   r4, 8(r1)
        LD   r5, 12(r1)
        MOVI r1, 0x1000
        LD   r6, @x(r1)
        LD   r7, @x+4(r1)
        FSUBD r2, r2, r4
        FMOVD r10, 70.0
        FMOVD r4, 0.0
        FCMPD r6, r4
        BLT  dead
        FCMPD r6, r10
        BGT  dead
        JMP  xok
dead:   SIG
        FAIL                  ; fail-stop: constraint error
xok:    SIG
        FMOVD r8, 0.068
        FMULD r8, r2, r8
        FADDD r8, r8, r6
        OR   r12, r8, r0
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  cklo
        OR   r12, r10, r0
        OR   r13, r11, r0
cklo:   SIG
        FCMPD r12, r4
        BGE  kisel
        OR   r12, r4, r0
        OR   r13, r5, r0
kisel:  SIG
        FCMPD r8, r10
        BLE  awlo
        FCMPD r2, r4
        BLE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
awlo:   SIG
        FCMPD r8, r4
        BGE  kipos
        FCMPD r2, r4
        BGE  kipos
        MOVI r10, 0
        MOVI r11, 0
        JMP  integ
kipos:  SIG
        FMOVD r10, 0.25
integ:  SIG
        FMOVD r4, 0.015384615384615385
        FMULD r2, r2, r4
        FMULD r2, r2, r10
        FADDD r6, r6, r2
        ST   r6, @x(r1)
        ST   r7, @x+4(r1)
        FMOVD r4, 0.0
        FMOVD r10, 70.0
        FCMPD r12, r4
        BLT  dead2
        FCMPD r12, r10
        BGT  dead2
        JMP  uok
dead2:  SIG
        FAIL
uok:    SIG
        MOVI r1, 0x2000
        ST   r12, 16(r1)
        ST   r13, 20(r1)
        MOVI r15, 1
        ST   r15, 24(r1)
wait:   SIG
        LD   r15, 28(r1)
        CMP  r15, r0
        BEQ  wait
        JMP  loop
.data
x:      .double 7.0
`
