package workload

import (
	"sort"

	"ctrlguard/internal/cpu"
)

// RunBatch executes one experiment per injection over a single shared
// golden prefix. All experiments of a campaign batch replay the same
// fault-free instruction sequence up to their injection points, so the
// leader machine executes that prefix exactly once; at each injection's
// instruction count a full lane (machine, I/O port, environment,
// outcome accumulator) is forked off and later run to completion on its
// own. Every lane outcome is byte-identical to the solo Run of the same
// spec — forks happen at the precise point a solo run would apply its
// injection, and the forked lane then takes the identical code path
// (including the Golden re-convergence splice).
//
// The second result is false when the spec cannot be batched (an
// Observer or Monitor that must see every instruction, abort/deadline
// hooks, state-hash recording, a non-cloneable environment); callers
// must then fall back to solo runs. Outcomes may individually be nil
// when the leader never reached an injection's instruction count (the
// fault-free run ends before it); those lanes also need the solo
// fallback.
func RunBatch(prog *cpu.Program, spec RunSpec, injs []*Injection) ([]*Outcome, bool) {
	if len(injs) == 0 ||
		spec.Observer != nil || spec.Monitor != nil ||
		spec.Abort != nil || !spec.Deadline.IsZero() ||
		spec.RecordStateHashes || spec.Injection != nil {
		return nil, false
	}
	for _, inj := range injs {
		if inj == nil {
			return nil, false
		}
	}

	order := make([]int, len(injs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return injs[order[a]].At < injs[order[b]].At
	})

	// The leader replays the fault-free sequence, so a warm-start
	// checkpoint is only sound when it precedes every injection point.
	leaderSpec := spec
	leaderSpec.Injection = nil
	if leaderSpec.From != nil && leaderSpec.From.Instructions() > injs[order[0]].At {
		leaderSpec.From = nil
	}
	leader := newRunner(prog, leaderSpec)
	if _, ok := leader.env.(CloneableEnv); !ok {
		return nil, false
	}

	lanes := make([]*runner, len(injs))
	pending := order
	leader.fork = func(r *runner) bool {
		count := r.vm.InstrCount()
		for len(pending) > 0 && injs[pending[0]].At <= count {
			idx := pending[0]
			pending = pending[1:]
			if injs[idx].At == count {
				lanes[idx] = forkLane(r, injs[idx])
			}
		}
		// Once the last lane has forked the leader's remaining tail is
		// dead work; stop it here.
		return len(pending) == 0
	}
	leader.run(-1)

	outs := make([]*Outcome, len(injs))
	for i, lane := range lanes {
		if lane == nil {
			continue
		}
		outs[i], _ = lane.run(-1)
	}
	return outs, true
}

// forkLane snapshots the leader mid-iteration into an independent
// runner that will execute inj's experiment tail. The clone resumes
// inside the current iteration (mid=true) at the exact point a solo
// run would test its injection trigger, so the lane's very next check
// applies the injection itself — preserving the solo ordering of
// injection, Step, and the transient model's restore hook.
func forkLane(r *runner, inj *Injection) *runner {
	spec := r.spec
	spec.Injection = inj
	spec.From = nil

	port := &ioPort{
		ports:      r.port.ports,
		in:         append([]float64(nil), r.port.in...),
		outHi:      append([]uint32(nil), r.port.outHi...),
		outLo:      append([]uint32(nil), r.port.outLo...),
		syncSeen:   r.port.syncSeen,
		readyPolls: r.port.readyPolls,
		idleSpins:  r.port.idleSpins,
	}
	out := &Outcome{
		MultiOutputs:    make([][]float64, len(r.out.MultiOutputs)),
		IterationStarts: append(make([]uint64, 0, spec.Iterations), r.out.IterationStarts...),
	}
	for j := range out.MultiOutputs {
		out.MultiOutputs[j] = append(make([]float64, 0, spec.Iterations), r.out.MultiOutputs[j]...)
	}

	golden := spec.Golden
	if !goldenUsable(golden, spec, r.ports) {
		golden = nil
	}
	return &runner{
		prog:   r.prog,
		spec:   spec,
		budget: r.budget,
		ports:  r.ports,
		port:   port,
		vm:     r.vm.Clone(port),
		env:    r.env.(CloneableEnv).CloneEnv(),
		out:    out,
		golden: golden,
		gap:    1,
		k:      r.k,
		cycles: r.cycles,
		mid:    true,
	}
}
