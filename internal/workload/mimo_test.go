package workload

import (
	"math"
	"testing"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
)

func TestMIMOGoldenTracksSetpoints(t *testing.T) {
	out := Run(Program(MIMOAlgorithmI), MIMORunSpec())
	if out.Detected() {
		t.Fatalf("golden run trapped: %v", out.Trap)
	}
	if len(out.MultiOutputs) != 2 {
		t.Fatalf("output ports = %d, want 2", len(out.MultiOutputs))
	}
	// After the step the actuators settle at the steady-state inputs
	// for (400, 250): u1 ≈ 40.5, u2 ≈ 35.7.
	u1, u2 := out.MultiOutputs[0][649], out.MultiOutputs[1][649]
	if math.Abs(u1-40.5) > 1 || math.Abs(u2-35.7) > 1 {
		t.Errorf("final actuators = (%v, %v), want ≈ (40.5, 35.7)", u1, u2)
	}
}

func TestMIMOAlgIIGoldenMatchesAlgI(t *testing.T) {
	a := Run(Program(MIMOAlgorithmI), MIMORunSpec())
	b := Run(Program(MIMOAlgorithmII), MIMORunSpec())
	for j := range a.MultiOutputs {
		for k := range a.MultiOutputs[j] {
			if a.MultiOutputs[j][k] != b.MultiOutputs[j][k] {
				t.Fatalf("fault-free MIMO Algorithm II diverged at output %d, k=%d", j, k)
			}
		}
	}
}

func TestMIMOStateCorruptionSevereForAlgI(t *testing.T) {
	prog := Program(MIMOAlgorithmI)
	golden := Run(prog, MIMORunSpec())

	// x1 occupies line0.data0/1; flip a high exponent bit mid-run.
	spec := MIMORunSpec()
	spec.Injection = &Injection{
		At:  golden.IterationStarts[300] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 28},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, true, classify.DefaultConfig())
	if !v.Outcome.IsSevere() {
		t.Errorf("outcome = %v, want severe", v.Outcome)
	}
}

func TestMIMOStateCorruptionRecoveredByAlgII(t *testing.T) {
	prog := Program(MIMOAlgorithmII)
	golden := Run(prog, MIMORunSpec())

	spec := MIMORunSpec()
	spec.Injection = &Injection{
		At:  golden.IterationStarts[300] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 28},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, true, classify.DefaultConfig())
	if v.Outcome.IsSevere() {
		t.Errorf("outcome = %v, want minor (generalised scheme recovers)", v.Outcome)
	}
}

func TestMIMOSecondStateCorruptionRecoveredByAlgII(t *testing.T) {
	// x2 lives in line0.data2/3: the generalised scheme must protect
	// every state variable, not just the first.
	prog := Program(MIMOAlgorithmII)
	golden := Run(prog, MIMORunSpec())

	spec := MIMORunSpec()
	spec.Injection = &Injection{
		At:  golden.IterationStarts[300] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data2", Bit: 28},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Fatalf("unexpected detection: %v", out.Trap)
	}
	v := classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, true, classify.DefaultConfig())
	if v.Outcome.IsSevere() {
		t.Errorf("outcome = %v, want minor", v.Outcome)
	}
}

func TestMIMOCorruptionOnSecondOutputClassified(t *testing.T) {
	// A fault whose effect shows on output 2 must be visible to the
	// multi-output classification even when output 1 stays clean.
	prog := Program(MIMOAlgorithmI)
	golden := Run(prog, MIMORunSpec())

	spec := MIMORunSpec()
	spec.Injection = &Injection{
		At:  golden.IterationStarts[300] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data2", Bit: 28},
	}
	out := Run(prog, spec)
	if out.Detected() {
		t.Skipf("detected by %v", out.Trap.Mech)
	}
	multi := classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, true, classify.DefaultConfig())
	first := classify.Run(golden.MultiOutputs[0], out.MultiOutputs[0], true, classify.DefaultConfig())
	if multi.Outcome < first.Outcome {
		t.Error("multi-output verdict weaker than a single output's")
	}
	if !multi.Outcome.IsValueFailure() {
		t.Errorf("x2 corruption invisible to classification: %v", multi.Outcome)
	}
}

func TestSpecFor(t *testing.T) {
	if SpecFor(AlgorithmI).Ports != (PortLayout{}) {
		t.Error("SISO spec should use the default layout")
	}
	spec := SpecFor(MIMOAlgorithmII)
	if spec.Ports != (PortLayout{Inputs: 4, Outputs: 2}) {
		t.Errorf("MIMO ports = %+v", spec.Ports)
	}
	if spec.NewEnv == nil {
		t.Error("MIMO spec missing environment factory")
	}
}

func TestPortLayoutOffsets(t *testing.T) {
	p := PortLayout{Inputs: 4, Outputs: 2}
	if p.SyncOffset() != 48 || p.ReadyOffset() != 52 {
		t.Errorf("offsets = %d, %d; want 48, 52", p.SyncOffset(), p.ReadyOffset())
	}
	siso := PortLayout{Inputs: 2, Outputs: 1}
	if siso.SyncOffset() != 24 || siso.ReadyOffset() != 28 {
		t.Errorf("SISO offsets = %d, %d; want 24, 28", siso.SyncOffset(), siso.ReadyOffset())
	}
}
