package workload

import (
	"math"
	"testing"
)

func TestIOPortInputReadback(t *testing.T) {
	p := newIOPort(PortLayout{Inputs: 2, Outputs: 1}, 3)
	p.in[0] = 2000.5
	p.in[1] = -3.25
	read := func(off uint32) uint64 {
		return uint64(p.ReadIO(off))<<32 | uint64(p.ReadIO(off+4))
	}
	if got := math.Float64frombits(read(0)); got != 2000.5 {
		t.Errorf("input 0 = %v", got)
	}
	if got := math.Float64frombits(read(8)); got != -3.25 {
		t.Errorf("input 1 = %v", got)
	}
}

func TestIOPortOutputWriteAndReadback(t *testing.T) {
	p := newIOPort(PortLayout{Inputs: 2, Outputs: 2}, 3)
	bits := math.Float64bits(7.125)
	p.WriteIO(24, uint32(bits>>32)) // output 1 high (offset 8*(2+1))
	p.WriteIO(28, uint32(bits))
	if got := p.outputs()[1]; got != 7.125 {
		t.Errorf("output 1 = %v", got)
	}
	// The program can read its own delivered outputs back (used by
	// the MIMO output assertions).
	hi, lo := p.ReadIO(24), p.ReadIO(28)
	if math.Float64frombits(uint64(hi)<<32|uint64(lo)) != 7.125 {
		t.Error("output read-back wrong")
	}
}

func TestIOPortSyncAndReady(t *testing.T) {
	ports := PortLayout{Inputs: 2, Outputs: 1}
	p := newIOPort(ports, 2)
	if p.syncSeen {
		t.Fatal("sync before write")
	}
	p.WriteIO(ports.SyncOffset(), 1)
	if !p.syncSeen {
		t.Fatal("sync write not observed")
	}
	// Ready flag: 0 for idleSpins polls, then 1.
	if p.ReadIO(ports.ReadyOffset()) != 0 || p.ReadIO(ports.ReadyOffset()) != 0 {
		t.Error("ready flag set too early")
	}
	if p.ReadIO(ports.ReadyOffset()) != 1 {
		t.Error("ready flag never set")
	}
}

func TestIOPortIgnoresStrayWrites(t *testing.T) {
	p := newIOPort(PortLayout{Inputs: 2, Outputs: 1}, 2)
	p.WriteIO(0, 42)  // input port: read-only from the target side
	p.WriteIO(60, 42) // beyond the window
	if p.in[0] != 0 || p.syncSeen {
		t.Error("stray writes had effects")
	}
}

func TestEngineEnvFeedsLoop(t *testing.T) {
	spec := PaperRunSpec()
	env := newEngineEnv(spec)
	in := env.Inputs(0)
	if in[0] != 2000 || math.Abs(in[1]-2000) > 1 {
		t.Errorf("initial inputs = %v", in)
	}
	env.Deliver(0, []float64{70})
	in = env.Inputs(1)
	if in[1] <= 2000 {
		t.Errorf("full throttle did not raise speed: %v", in[1])
	}
	if len(env.speeds) != 1 {
		t.Error("telemetry not recorded")
	}
}

func TestTwoShaftEnvFeedsLoop(t *testing.T) {
	env := newTwoShaftEnv(RunSpec{})
	in := env.Inputs(0)
	if len(in) != 4 {
		t.Fatalf("inputs = %v", in)
	}
	if in[0] != 300 || in[1] != 200 {
		t.Errorf("references = %v, %v", in[0], in[1])
	}
	env.Deliver(0, []float64{100, 40})
	in2 := env.Inputs(1)
	if in2[2] <= in[2] || in2[3] <= in[3] {
		t.Error("max actuators did not raise shaft speeds")
	}
	// After the step time the references rise.
	inLate := env.Inputs(400)
	if inLate[0] != 400 || inLate[1] != 250 {
		t.Errorf("post-step references = %v, %v", inLate[0], inLate[1])
	}
}

func TestRunMIMOSpecIndependentRuns(t *testing.T) {
	// The environment factory must give independent environments:
	// two concurrent runs from one spec cannot share plant state.
	spec := MIMORunSpec()
	spec.Iterations = 30
	prog := Program(MIMOAlgorithmI)
	a := Run(prog, spec)
	b := Run(prog, spec)
	for k := range a.Outputs {
		if a.Outputs[k] != b.Outputs[k] {
			t.Fatalf("runs diverged at %d; environment state leaked", k)
		}
	}
}
