package workload

import (
	"fmt"

	"ctrlguard/internal/cpu"
)

// Checkpoint is a frozen harness run at a control-iteration boundary:
// the complete machine state (cpu.Snapshot), the environment simulator,
// the I/O window's output latches and the outcome accumulated so far.
// A checkpoint is immutable once captured — resuming deep-copies every
// part — so one checkpoint can seed many concurrent runs, which is how
// the campaign engine amortises the pre-injection prefix across all
// experiments that inject at the same iteration (the software analogue
// of FERRARI-style pre-injection snapshotting).
type Checkpoint struct {
	iteration int
	vm        *cpu.Snapshot
	env       CloneableEnv
	outHi     []uint32
	outLo     []uint32
	outputs   [][]float64 // per-port outputs of iterations [0, iteration)
	starts    []uint64    // iteration start instruction counts
}

// CloneableEnv is implemented by environment simulators that can be
// deep-copied mid-run, the capability checkpointing needs. The engine
// and two-shaft environments implement it; a custom RunSpec.NewEnv
// environment that does not is simply never checkpointed (runs fall
// back to full replay).
type CloneableEnv interface {
	Environment

	// CloneEnv returns an independent copy frozen at the current
	// state.
	CloneEnv() Environment
}

// Iteration returns the control iteration the checkpoint was taken at:
// iterations [0, Iteration()) have completed.
func (c *Checkpoint) Iteration() int {
	return c.iteration
}

// Instructions returns the dynamic instruction count at the checkpoint
// — injections at or after this point can be resumed from it.
func (c *Checkpoint) Instructions() uint64 {
	return c.vm.InstrCount
}

// CaptureCheckpoint runs prog under spec up to the boundary of control
// iteration k (iterations [0, k) execute) and returns the frozen state.
// spec.From may name an earlier checkpoint to capture incrementally
// from. It fails when k is not reachable (non-positive, beyond the run
// length, a trap fires first) or when the environment does not support
// cloning. spec.Injection is ignored: checkpoints are always taken on
// the fault-free path.
func CaptureCheckpoint(prog *cpu.Program, spec RunSpec, k int) (*Checkpoint, error) {
	spec.Injection = nil
	spec.Golden = nil
	if spec.From != nil && spec.From.iteration >= k {
		spec.From = nil
	}
	return capture(prog, spec, k)
}

func capture(prog *cpu.Program, spec RunSpec, k int) (*Checkpoint, error) {
	if k <= 0 {
		return nil, fmt.Errorf("checkpoint at iteration %d: boundary must be positive", k)
	}
	if k >= spec.Iterations {
		return nil, fmt.Errorf("checkpoint at iteration %d: run has only %d iterations", k, spec.Iterations)
	}
	spec.Observer = nil
	spec.RecordStateHashes = false
	out, ck := run(prog, spec, k)
	if ck != nil {
		return ck, nil
	}
	switch {
	case out.Trap != nil:
		return nil, fmt.Errorf("checkpoint at iteration %d: run trapped at iteration %d: %v",
			k, out.TrapIteration, out.Trap)
	case out.Aborted:
		return nil, fmt.Errorf("checkpoint at iteration %d: run aborted", k)
	default:
		return nil, fmt.Errorf("checkpoint at iteration %d: environment does not support cloning", k)
	}
}
