package workload

// The MIMO workload implements the paper's future-work direction on the
// simulated CPU: a controller with multiple state variables and
// multiple output signals (a two-spool jet-engine abstraction), with
// the generalised protection scheme of §4.3 — assert every state
// before backing any up, recover ALL states together, assert every
// output before returning, recover all outputs and states together.
//
// The control structure is two PI loops (fuel flow → shaft 1, nozzle
// area → shaft 2) closed around the coupled two-shaft plant. Actuator
// ranges: u1 ∈ [0, 100], u2 ∈ [0, 40]. Anti-windup per loop keeps each
// integrator inside its actuator range — the invariant the assertions
// check.
//
// I/O window: r1@0, r2@8, n1@16, n2@24 in; u1@32, u2@40 out; sync@48,
// ready@52 (see mimoPorts).

// MIMO workload variants.
const (
	// MIMOAlgorithmI is the unprotected two-loop controller.
	MIMOAlgorithmI Variant = "mimo-alg1"

	// MIMOAlgorithmII applies the generalised assertion + best effort
	// recovery scheme of §4.3 to both states and both outputs.
	MIMOAlgorithmII Variant = "mimo-alg2"
)

// mimoLoops is the shared two-loop computation: e1/e2 from the I/O
// window, PI with clamping and anti-windup per loop, outputs delivered
// to the I/O window. It leaves the data base in r1.
const mimoLoops = `
        MOVI r1, 0x2000
        LD   r2, 0(r1)        ; r1ref
        LD   r3, 4(r1)
        LD   r4, 16(r1)       ; n1
        LD   r5, 20(r1)
        FSUBD r2, r2, r4      ; e1 = r1ref - n1
        MOVI r1, 0x1000
        LD   r6, @x1(r1)      ; x1
        LD   r7, @x1+4(r1)
        FMOVD r8, 0.29        ; Kp1
        FMULD r8, r2, r8
        FADDD r8, r8, r6      ; u1 = Kp1*e1 + x1
        FMOVD r10, 100.0      ; u1 upper limit
        FMOVD r4, 0.0
        OR   r12, r8, r0
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  ck1lo
        OR   r12, r10, r0
        OR   r13, r11, r0
ck1lo:  SIG
        FCMPD r12, r4
        BGE  ki1sel
        OR   r12, r4, r0
        OR   r13, r5, r0
ki1sel: SIG
        FCMPD r8, r10
        BLE  aw1lo
        FCMPD r2, r4
        BLE  ki1pos
        MOVI r10, 0
        MOVI r11, 0
        JMP  int1
aw1lo:  SIG
        FCMPD r8, r4
        BGE  ki1pos
        FCMPD r2, r4
        BGE  ki1pos
        MOVI r10, 0
        MOVI r11, 0
        JMP  int1
ki1pos: SIG
        FMOVD r10, 0.5        ; Ki1
int1:   SIG
        FMOVD r4, 0.015384615384615385
        FMULD r2, r2, r4
        FMULD r2, r2, r10
        FADDD r6, r6, r2      ; x1 += T*e1*Ki1
        ST   r6, @x1(r1)
        ST   r7, @x1+4(r1)
        MOVI r1, 0x2000
        ST   r12, 32(r1)      ; deliver u1
        ST   r13, 36(r1)

        LD   r2, 8(r1)        ; r2ref
        LD   r3, 12(r1)
        LD   r4, 24(r1)       ; n2
        LD   r5, 28(r1)
        FSUBD r2, r2, r4      ; e2 = r2ref - n2
        MOVI r1, 0x1000
        LD   r6, @x2(r1)      ; x2
        LD   r7, @x2+4(r1)
        FMOVD r8, 0.35        ; Kp2
        FMULD r8, r2, r8
        FADDD r8, r8, r6      ; u2 = Kp2*e2 + x2
        FMOVD r10, 40.0       ; u2 upper limit
        FMOVD r4, 0.0
        OR   r12, r8, r0
        OR   r13, r9, r0
        FCMPD r12, r10
        BLE  ck2lo
        OR   r12, r10, r0
        OR   r13, r11, r0
ck2lo:  SIG
        FCMPD r12, r4
        BGE  ki2sel
        OR   r12, r4, r0
        OR   r13, r5, r0
ki2sel: SIG
        FCMPD r8, r10
        BLE  aw2lo
        FCMPD r2, r4
        BLE  ki2pos
        MOVI r10, 0
        MOVI r11, 0
        JMP  int2
aw2lo:  SIG
        FCMPD r8, r4
        BGE  ki2pos
        FCMPD r2, r4
        BGE  ki2pos
        MOVI r10, 0
        MOVI r11, 0
        JMP  int2
ki2pos: SIG
        FMOVD r10, 0.67      ; Ki2
int2:   SIG
        FMOVD r4, 0.015384615384615385
        FMULD r2, r2, r4
        FMULD r2, r2, r10
        FADDD r6, r6, r2      ; x2 += T*e2*Ki2
        ST   r6, @x2(r1)
        ST   r7, @x2+4(r1)
        MOVI r1, 0x2000
        ST   r12, 40(r1)      ; deliver u2
        ST   r13, 44(r1)
`

// mimoEpilogue signals the iteration and idles until the next period.
const mimoEpilogue = `
        MOVI r15, 1
        ST   r15, 48(r1)      ; sync
wait:   SIG
        LD   r15, 52(r1)      ; ready flag
        CMP  r15, r0
        BEQ  wait
        JMP  loop
`

// srcMIMOAlgorithmI is the unprotected two-loop controller (Algorithm I
// generalised to two states and two outputs). The initial integrator
// values are the steady-state actuator commands for (300, 200) rpm.
const srcMIMOAlgorithmI = `
.code
loop:   SIG
` + mimoLoops + mimoEpilogue + `
.data
x1:     .double 30.10752688   ; fuel-flow integrator
x2:     .double 29.13978495   ; nozzle integrator
`

// srcMIMOAlgorithmII applies §4.3's generalised scheme:
//
//  1. assert every state x_i before backing any up; on failure recover
//     ALL states from the previous iteration's backups, otherwise back
//     ALL of them up;
//  2. after computing, assert every output u_j; on failure deliver ALL
//     previous outputs and restore ALL states;
//  3. back up the outputs;  4. return them.
const srcMIMOAlgorithmII = `
.code
loop:   SIG
        MOVI r1, 0x1000
        LD   r6, @x1(r1)
        LD   r7, @x1+4(r1)
        LD   r8, @x2(r1)
        LD   r9, @x2+4(r1)
        FMOVD r4, 0.0
        FMOVD r10, 100.0
        FCMPD r6, r4          ; assert x1 in [0, 100]
        BLT  recx
        FCMPD r6, r10
        BGT  recx
        FMOVD r10, 40.0
        FCMPD r8, r4          ; assert x2 in [0, 40]
        BLT  recx
        FCMPD r8, r10
        BGT  recx
        ST   r6, @x1old(r1)   ; back up ALL states
        ST   r7, @x1old+4(r1)
        ST   r8, @x2old(r1)
        ST   r9, @x2old+4(r1)
        JMP  xok
recx:   SIG
        LD   r6, @x1old(r1)   ; recover ALL states
        LD   r7, @x1old+4(r1)
        ST   r6, @x1(r1)
        ST   r7, @x1+4(r1)
        LD   r8, @x2old(r1)
        LD   r9, @x2old+4(r1)
        ST   r8, @x2(r1)
        ST   r9, @x2+4(r1)
xok:    SIG
` + mimoLoops + `
        LD   r2, 32(r1)       ; read back u1
        LD   r3, 36(r1)
        LD   r8, 40(r1)       ; read back u2
        LD   r9, 44(r1)
        FMOVD r4, 0.0
        FMOVD r10, 100.0
        FCMPD r2, r4          ; assert u1 in [0, 100]
        BLT  recu
        FCMPD r2, r10
        BGT  recu
        FMOVD r10, 40.0
        FCMPD r8, r4          ; assert u2 in [0, 40]
        BLT  recu
        FCMPD r8, r10
        BGT  recu
        JMP  uok
recu:   SIG
        MOVI r1, 0x1000
        LD   r2, @u1old(r1)   ; deliver ALL previous outputs
        LD   r3, @u1old+4(r1)
        LD   r8, @u2old(r1)
        LD   r9, @u2old+4(r1)
        LD   r6, @x1old(r1)   ; and restore ALL states
        LD   r7, @x1old+4(r1)
        ST   r6, @x1(r1)
        ST   r7, @x1+4(r1)
        LD   r6, @x2old(r1)
        LD   r7, @x2old+4(r1)
        ST   r6, @x2(r1)
        ST   r7, @x2+4(r1)
        MOVI r1, 0x2000
        ST   r2, 32(r1)
        ST   r3, 36(r1)
        ST   r8, 40(r1)
        ST   r9, 44(r1)
uok:    SIG
        MOVI r1, 0x1000
        ST   r2, @u1old(r1)   ; back up the outputs
        ST   r3, @u1old+4(r1)
        ST   r8, @u2old(r1)
        ST   r9, @u2old+4(r1)
        MOVI r1, 0x2000
` + mimoEpilogue + `
.data
x1:     .double 30.10752688
x2:     .double 29.13978495
x1old:  .double 30.10752688
x2old:  .double 29.13978495
u1old:  .double 30.10752688
u2old:  .double 29.13978495
`
