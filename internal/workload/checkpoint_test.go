package workload

import (
	"math"
	"testing"

	"ctrlguard/internal/cpu"
)

// shortSpec trims the paper's 650 iterations so the many full-replay
// reference runs in these tests stay fast.
func shortSpec() RunSpec {
	spec := PaperRunSpec()
	spec.Iterations = 120
	return spec
}

// outcomesIdentical compares every observable field bit-for-bit —
// float comparisons use the raw bits so NaNs and signed zeros count.
func outcomesIdentical(t *testing.T, label string, got, want *Outcome) {
	t.Helper()
	floatsEq := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	if len(got.MultiOutputs) != len(want.MultiOutputs) {
		t.Fatalf("%s: %d output ports, want %d", label, len(got.MultiOutputs), len(want.MultiOutputs))
	}
	for j := range want.MultiOutputs {
		if !floatsEq(got.MultiOutputs[j], want.MultiOutputs[j]) {
			t.Errorf("%s: output port %d trace differs", label, j)
		}
	}
	if !floatsEq(got.Outputs, want.Outputs) {
		t.Errorf("%s: Outputs differ", label)
	}
	if !floatsEq(got.Speeds, want.Speeds) {
		t.Errorf("%s: Speeds differ", label)
	}
	if (got.Trap == nil) != (want.Trap == nil) {
		t.Fatalf("%s: trap %v, want %v", label, got.Trap, want.Trap)
	}
	if got.Trap != nil {
		if got.Trap.Mech != want.Trap.Mech || got.TrapIteration != want.TrapIteration {
			t.Errorf("%s: trap %v at %d, want %v at %d",
				label, got.Trap.Mech, got.TrapIteration, want.Trap.Mech, want.TrapIteration)
		}
	}
	if !cpu.StatesEqual(got.FinalState, want.FinalState) {
		t.Errorf("%s: FinalState differs", label)
	}
	if got.Instructions != want.Instructions {
		t.Errorf("%s: %d instructions, want %d", label, got.Instructions, want.Instructions)
	}
	if len(got.IterationStarts) != len(want.IterationStarts) {
		t.Fatalf("%s: %d iteration starts, want %d",
			label, len(got.IterationStarts), len(want.IterationStarts))
	}
	for i := range want.IterationStarts {
		if got.IterationStarts[i] != want.IterationStarts[i] {
			t.Errorf("%s: IterationStarts[%d] = %d, want %d",
				label, i, got.IterationStarts[i], want.IterationStarts[i])
			break
		}
	}
	if got.Aborted != want.Aborted {
		t.Errorf("%s: Aborted = %v, want %v", label, got.Aborted, want.Aborted)
	}
}

// injections returns a spread of faults at or after instruction lo,
// covering registers, cache metadata and cached data.
func injections(golden *Outcome, k int) []Injection {
	at := golden.IterationStarts[k]
	return []Injection{
		{At: at, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}},
		{At: at + 11, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "pc", Bit: 2}},
		{At: at + 40, Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line2.data1", Bit: 17}},
		{At: at + 95, Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.dirty", Bit: 0}},
		{At: at + 200, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "flagZ", Bit: 0}},
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	for _, v := range []Variant{AlgorithmI, AlgorithmII, MIMOAlgorithmI} {
		t.Run(string(v), func(t *testing.T) {
			prog := Program(v)
			spec := SpecFor(v)
			spec.Iterations = 120
			golden := Run(prog, spec)

			for _, k := range []int{1, 37, 90} {
				ck, err := CaptureCheckpoint(prog, spec, k)
				if err != nil {
					t.Fatalf("capture at %d: %v", k, err)
				}
				if ck.Iteration() != k {
					t.Fatalf("checkpoint iteration %d, want %d", ck.Iteration(), k)
				}
				if ck.Instructions() != golden.IterationStarts[k] {
					t.Fatalf("checkpoint at %d instructions, want %d",
						ck.Instructions(), golden.IterationStarts[k])
				}

				// Fault-free resume reproduces the golden run.
				warm := spec
				warm.From = ck
				outcomesIdentical(t, "fault-free resume", Run(prog, warm), golden)

				// Injected resumes reproduce injected full replays.
				for _, inj := range injections(golden, k) {
					inj := inj
					full := spec
					full.Injection = &inj
					want := Run(prog, full)

					fast := warm
					fast.Injection = &inj
					outcomesIdentical(t, inj.Bit.String(), Run(prog, fast), want)
				}
			}
		})
	}
}

func TestCheckpointInjectionBeforeCheckpointFallsBack(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := shortSpec()
	ck, err := CaptureCheckpoint(prog, spec, 50)
	if err != nil {
		t.Fatal(err)
	}

	// Injection at instruction 0 (iteration 0) precedes the
	// checkpoint: the run must silently fall back to full replay, not
	// skip the injection or panic.
	inj := Injection{At: 0, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}}
	full := spec
	full.Injection = &inj
	want := Run(prog, full)

	fast := full
	fast.From = ck
	outcomesIdentical(t, "pre-checkpoint injection", Run(prog, fast), want)
}

func TestCaptureFromEarlierCheckpoint(t *testing.T) {
	prog := Program(AlgorithmII)
	spec := shortSpec()

	base, err := CaptureCheckpoint(prog, spec, 20)
	if err != nil {
		t.Fatal(err)
	}
	incSpec := spec
	incSpec.From = base
	incremental, err := CaptureCheckpoint(prog, incSpec, 80)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := CaptureCheckpoint(prog, spec, 80)
	if err != nil {
		t.Fatal(err)
	}
	if incremental.Instructions() != direct.Instructions() {
		t.Fatalf("incremental checkpoint at %d instructions, direct at %d",
			incremental.Instructions(), direct.Instructions())
	}

	golden := Run(prog, spec)
	warm := spec
	warm.From = incremental
	outcomesIdentical(t, "resume from incremental checkpoint", Run(prog, warm), golden)
}

func TestCaptureCheckpointRejectsBadBoundaries(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := shortSpec()
	if _, err := CaptureCheckpoint(prog, spec, 0); err == nil {
		t.Error("capture at iteration 0 should fail")
	}
	if _, err := CaptureCheckpoint(prog, spec, spec.Iterations); err == nil {
		t.Error("capture at the run length should fail")
	}
}

func TestGoldenEarlyExitByteIdentical(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := shortSpec()
	goldenSpec := spec
	goldenSpec.RecordStateHashes = true
	golden := Run(prog, goldenSpec)
	if len(golden.StateHashes) != spec.Iterations {
		t.Fatalf("%d state hashes, want %d", len(golden.StateHashes), spec.Iterations)
	}

	reconverged := 0
	for _, k := range []int{0, 1, 30, 60, 110} {
		for _, inj := range injections(golden, k) {
			inj := inj
			full := spec
			full.Injection = &inj
			want := Run(prog, full)

			fast := full
			fast.Golden = golden
			got := Run(prog, fast)
			outcomesIdentical(t, inj.Bit.String(), got, want)
			if got.ReconvergedAt != 0 {
				reconverged++
				if got.ReconvergedAt <= k {
					t.Errorf("%s: reconverged at %d, before injection iteration %d",
						inj.Bit, got.ReconvergedAt, k)
				}
			}
		}
	}
	// The sample includes masked faults (dead registers, clean cache
	// metadata), so the early exit must actually fire for some of them.
	if reconverged == 0 {
		t.Error("no run took the early exit; the fast path is dead code")
	}
}

func TestGoldenEarlyExitWithCheckpointResume(t *testing.T) {
	prog := Program(AlgorithmII)
	spec := shortSpec()
	goldenSpec := spec
	goldenSpec.RecordStateHashes = true
	golden := Run(prog, goldenSpec)

	k := 45
	ck, err := CaptureCheckpoint(prog, spec, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range injections(golden, k) {
		inj := inj
		full := spec
		full.Injection = &inj
		want := Run(prog, full)

		fast := full
		fast.From = ck
		fast.Golden = golden
		outcomesIdentical(t, inj.Bit.String(), Run(prog, fast), want)
	}
}

func TestRecordStateHashesDisablesResume(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := shortSpec()
	ck, err := CaptureCheckpoint(prog, spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	goldenSpec := spec
	goldenSpec.RecordStateHashes = true
	want := Run(prog, goldenSpec)

	goldenSpec.From = ck
	got := Run(prog, goldenSpec)
	if len(got.StateHashes) != spec.Iterations {
		t.Fatalf("%d state hashes, want %d (resume must be ignored)",
			len(got.StateHashes), spec.Iterations)
	}
	for i := range want.StateHashes {
		if got.StateHashes[i] != want.StateHashes[i] {
			t.Fatalf("StateHashes[%d] differs", i)
		}
	}
}
