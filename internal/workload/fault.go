package workload

import (
	"fmt"

	"ctrlguard/internal/cpu"
)

// FaultModel selects how an Injection perturbs the machine. The zero
// value is the paper's single permanent bit-flip; the other models are
// the attack-style extensions: PC/branch corruption, single-cycle
// transients, and multi-bit bursts.
type FaultModel string

// The fault models understood by the run harness. ModelPC shares the
// bit-flip mechanics — the difference is that its samplers draw only
// from the control-flow state (PC and the branch condition flags).
const (
	ModelBitFlip   FaultModel = "bitflip"
	ModelPC        FaultModel = "pc"
	ModelTransient FaultModel = "transient"
	ModelBurst     FaultModel = "burst"
)

// DefaultBurstWidth is the burst span used when Injection.Width is zero.
const DefaultBurstWidth = 2

// Canonical returns the model with the zero value normalised to
// ModelBitFlip.
func (m FaultModel) Canonical() FaultModel {
	if m == "" {
		return ModelBitFlip
	}
	return m
}

// applyInjection perturbs the machine per the injection's fault model,
// immediately before the targeted instruction executes. For the
// transient model it returns a restore hook that must run once, right
// after that instruction's Step: the glitch is undone if the bit still
// holds the flipped value (flip-then-restore-if-unchanged — a latch
// re-latching correctly on the next cycle unless the faulty value was
// already consumed or overwritten). Errors are programming mistakes
// (covered by tests): samplers only produce bits from cpu.StateBits.
func applyInjection(vm *cpu.CPU, inj *Injection) func() {
	switch inj.Model.Canonical() {
	case ModelBitFlip, ModelPC:
		if err := vm.FlipBit(inj.Bit); err != nil {
			panic(err)
		}
		return nil
	case ModelBurst:
		w := inj.Width
		if w <= 0 {
			w = DefaultBurstWidth
		}
		if err := vm.FlipBurst(inj.Bit, w); err != nil {
			panic(err)
		}
		return nil
	case ModelTransient:
		if err := vm.FlipBit(inj.Bit); err != nil {
			panic(err)
		}
		bad, err := vm.StateBitValue(inj.Bit)
		if err != nil {
			panic(err)
		}
		return func() {
			cur, err := vm.StateBitValue(inj.Bit)
			if err == nil && cur == bad {
				if err := vm.FlipBit(inj.Bit); err != nil {
					panic(err)
				}
			}
		}
	default:
		panic(fmt.Sprintf("workload: unknown fault model %q", inj.Model))
	}
}
