package workload

import (
	"testing"
	"time"

	"ctrlguard/internal/cpu"
)

// batchInjections builds a batch spanning every fault model, duplicate
// injection points, and unsorted At order — the shapes a campaign feed
// actually produces.
func batchInjections(golden *Outcome) []*Injection {
	at := func(k int) uint64 { return golden.IterationStarts[k] }
	return []*Injection{
		{At: at(40) + 7, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}},
		{At: 0, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r7", Bit: 30}},
		{At: at(10) + 11, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "pc", Bit: 2}, Model: ModelPC},
		{At: at(40) + 7, Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line2.data1", Bit: 17}},
		{At: at(70) + 3, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r4", Bit: 12}, Model: ModelTransient},
		{At: at(25) + 60, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r6", Bit: 5}, Model: ModelBurst, Width: 3},
		{At: golden.Instructions - 1, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "flagZ", Bit: 0}},
		{At: at(90), Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.dirty", Bit: 0}},
	}
}

// TestLockstepBatchByteIdentical is the core lockstep invariant: every
// lane outcome of RunBatch equals the solo Run of the same injection,
// bit for bit, across variants, fault models and golden-splice use.
func TestLockstepBatchByteIdentical(t *testing.T) {
	for _, v := range []Variant{AlgorithmI, AlgorithmII, MIMOAlgorithmI} {
		t.Run(string(v), func(t *testing.T) {
			prog := Program(v)
			spec := SpecFor(v)
			spec.Iterations = 120
			goldenSpec := spec
			goldenSpec.RecordStateHashes = true
			golden := Run(prog, goldenSpec)

			for _, useGolden := range []bool{false, true} {
				batch := spec
				if useGolden {
					batch.Golden = golden
				}
				injs := batchInjections(golden)
				outs, ok := RunBatch(prog, batch, injs)
				if !ok {
					t.Fatal("RunBatch declined a batchable spec")
				}
				if len(outs) != len(injs) {
					t.Fatalf("%d outcomes for %d injections", len(outs), len(injs))
				}
				for i, inj := range injs {
					if outs[i] == nil {
						t.Fatalf("lane %d (At=%d) not forked; golden has %d instructions",
							i, inj.At, golden.Instructions)
					}
					solo := batch
					solo.Injection = inj
					outcomesIdentical(t, inj.Bit.String(), outs[i], Run(prog, solo))
				}
			}
		})
	}
}

// TestLockstepUnreachableInjection pins the contract for injection
// points past the end of the fault-free run: the lane is reported nil
// (caller falls back to a solo run) and the reachable lanes are
// unaffected.
func TestLockstepUnreachableInjection(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := shortSpec()
	golden := Run(prog, spec)

	injs := []*Injection{
		{At: golden.IterationStarts[5], Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}},
		{At: golden.Instructions + 1000, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}},
	}
	outs, ok := RunBatch(prog, spec, injs)
	if !ok {
		t.Fatal("RunBatch declined")
	}
	if outs[1] != nil {
		t.Error("unreachable injection produced an outcome")
	}
	if outs[0] == nil {
		t.Fatal("reachable lane missing")
	}
	solo := spec
	solo.Injection = injs[0]
	outcomesIdentical(t, "reachable lane", outs[0], Run(prog, solo))
}

// TestLockstepWithCheckpoint pins warm-start composition: a From
// checkpoint preceding every injection shortens the leader's replay
// without changing any lane; a checkpoint past the earliest injection
// is silently dropped, again without changing any lane.
func TestLockstepWithCheckpoint(t *testing.T) {
	prog := Program(AlgorithmII)
	spec := shortSpec()
	goldenSpec := spec
	goldenSpec.RecordStateHashes = true
	golden := Run(prog, goldenSpec)

	ck, err := CaptureCheckpoint(prog, spec, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		ks   []int
	}{
		{"checkpoint before all injections", []int{45, 60, 100}},
		{"checkpoint after earliest injection", []int{5, 60, 100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var injs []*Injection
			for _, k := range tc.ks {
				injs = append(injs, &Injection{
					At:  golden.IterationStarts[k] + 9,
					Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3},
				})
			}
			batch := spec
			batch.From = ck
			batch.Golden = golden
			outs, ok := RunBatch(prog, batch, injs)
			if !ok {
				t.Fatal("RunBatch declined")
			}
			for i, inj := range injs {
				// The reference is the plain full replay: no checkpoint,
				// no golden splice.
				solo := spec
				solo.Injection = inj
				outcomesIdentical(t, tc.name, outs[i], Run(prog, solo))
			}
		})
	}
}

// TestLockstepInterpretCrossVal runs the three engines the
// lockstep-crossval CI job exercises — classic interpreter, predecoded
// solo, lockstep batch — and requires identical outcomes.
func TestLockstepInterpretCrossVal(t *testing.T) {
	prog := Program(AlgorithmI)
	spec := shortSpec()
	golden := Run(prog, spec)
	injs := batchInjections(golden)

	outs, ok := RunBatch(prog, spec, injs)
	if !ok {
		t.Fatal("RunBatch declined")
	}
	for i, inj := range injs {
		interp := spec
		interp.Interpret = true
		interp.Injection = inj
		want := Run(prog, interp)

		solo := spec
		solo.Injection = inj
		outcomesIdentical(t, "predecoded solo vs interpreted", Run(prog, solo), want)
		outcomesIdentical(t, "lockstep lane vs interpreted", outs[i], want)
	}
}

// TestLockstepDeclines pins every condition under which RunBatch must
// refuse to batch rather than risk a divergent outcome.
func TestLockstepDeclines(t *testing.T) {
	prog := Program(AlgorithmI)
	base := shortSpec()
	injs := []*Injection{
		{At: 100, Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r5", Bit: 3}},
	}

	decline := func(name string, spec RunSpec, batch []*Injection) {
		if _, ok := RunBatch(prog, spec, batch); ok {
			t.Errorf("%s: RunBatch accepted", name)
		}
	}
	decline("empty batch", base, nil)
	decline("nil injection", base, []*Injection{nil})

	withObserver := base
	withObserver.Observer = func(int, uint64, *cpu.CPU) {}
	decline("observer", withObserver, injs)

	withAbort := base
	withAbort.Abort = func() bool { return false }
	decline("abort hook", withAbort, injs)

	withDeadline := base
	withDeadline.Deadline = time.Now().Add(time.Hour)
	decline("deadline", withDeadline, injs)

	withHashes := base
	withHashes.RecordStateHashes = true
	decline("state hashes", withHashes, injs)

	withInjection := base
	withInjection.Injection = injs[0]
	decline("spec-level injection", withInjection, injs)

	withMonitor := base
	withMonitor.Monitor = nopMonitor{}
	decline("monitor", withMonitor, injs)
}

type nopMonitor struct{}

func (nopMonitor) OnInstr(int, uint64, *cpu.CPU) *cpu.TrapError { return nil }
func (nopMonitor) OnIteration(int, *cpu.CPU) *cpu.TrapError    { return nil }
