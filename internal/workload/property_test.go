package workload_test

import (
	"testing"
	"testing/quick"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/workload"
)

// shortRun keeps property tests fast.
func shortRun() workload.RunSpec {
	spec := workload.PaperRunSpec()
	spec.Iterations = 40
	return spec
}

// TestPropertyInjectionNeverPanics drives the whole stack with random
// faults: whatever bit flips at whatever time, Run must return a
// well-formed Outcome (trap or completed run), never panic.
func TestPropertyInjectionNeverPanics(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	golden := workload.Run(prog, shortRun())
	if golden.Detected() {
		t.Fatal(golden.Trap)
	}
	sampler := inject.NewSampler(99, golden.Instructions)

	f := func(_ uint8) bool {
		inj := sampler.Next()
		spec := shortRun()
		spec.Injection = &inj
		out := workload.Run(prog, spec)
		if out.Detected() {
			return out.Trap.Mech != "" && out.TrapIteration >= 0
		}
		return len(out.Outputs) == spec.Iterations && out.FinalState != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOutputsAlwaysFinite: whatever fault is injected, every
// delivered output is a finite float (the limiter and the EDMs together
// keep garbage off the actuator bus or terminate the run).
func TestPropertyOutputsAlwaysFinite(t *testing.T) {
	prog := workload.Program(workload.AlgorithmII)
	golden := workload.Run(prog, shortRun())
	sampler := inject.NewSampler(123, golden.Instructions)

	f := func(_ uint8) bool {
		inj := sampler.Next()
		spec := shortRun()
		spec.Injection = &inj
		out := workload.Run(prog, spec)
		for _, u := range out.Outputs {
			if u != u || u > 1e12 || u < -1e12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInjectionDeterministic: the same fault always produces
// bit-identical outcomes.
func TestPropertyInjectionDeterministic(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	golden := workload.Run(prog, shortRun())
	sampler := inject.NewSampler(7, golden.Instructions)
	for i := 0; i < 50; i++ {
		inj := sampler.Next()
		spec := shortRun()
		spec.Injection = &inj
		a := workload.Run(prog, spec)
		b := workload.Run(prog, spec)
		if a.Detected() != b.Detected() || a.Instructions != b.Instructions {
			t.Fatalf("run %d not deterministic", i)
		}
		if !a.Detected() && !cpu.StatesEqual(a.FinalState, b.FinalState) {
			t.Fatalf("final states differ for %v", inj)
		}
	}
}

// TestIterationStartsMonotonic: iteration starts strictly increase and
// each window is wide enough for the idle polling plus compute.
func TestIterationStartsMonotonic(t *testing.T) {
	out := workload.Run(workload.Program(workload.AlgorithmI), workload.PaperRunSpec())
	if out.Detected() {
		t.Fatal(out.Trap)
	}
	for k := 1; k < len(out.IterationStarts); k++ {
		if out.IterationStarts[k] <= out.IterationStarts[k-1] {
			t.Fatalf("iteration starts not increasing at %d", k)
		}
		// The poll phase for sample period k executes at the start of
		// window k, so every window except the very first spans at
		// least the idle polls.
		if k >= 2 {
			width := out.IterationStarts[k] - out.IterationStarts[k-1]
			if width < uint64(workload.DefaultIdleSpins) {
				t.Fatalf("iteration %d spans %d instructions, less than the idle polls", k, width)
			}
		}
	}
}
