package workload

import (
	"math"
	"time"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/plant"
)

// DefaultCycleBudget is the per-iteration instruction limit enforced by
// the host. A healthy iteration (idle polling included) takes a few
// hundred instructions; a run that exceeds the budget is terminated by
// the watchdog, like a bus time-out would terminate a wedged Thor.
const DefaultCycleBudget = 20000

// DefaultIdleSpins is how many times the workload's wait loop polls the
// ready flag before the next sample period begins. It models the duty
// cycle of the real target, which computes for microseconds and then
// idles until the next 15.4 ms data exchange. The idle share determines
// how exposed the registers are: faults hitting registers while the CPU
// idles are overwritten by the reloads at the top of the next
// iteration, whereas the cached state variable stays live throughout —
// the effect behind the paper's cache-dominated value failures.
const DefaultIdleSpins = 100

// Injection describes one SCIFI-style fault: perturb Bit just before
// the instruction with global index At begins execution, per Model.
// The zero Model is the paper's permanent single bit-flip; Width is
// the burst span for ModelBurst (0 = DefaultBurstWidth) and ignored
// otherwise.
type Injection struct {
	At    uint64
	Bit   cpu.StateBit
	Model FaultModel `json:",omitempty"`
	Width int        `json:",omitempty"`
}

// Monitor is an in-loop error detector: OnInstr runs before every
// instruction (after any injection for that cycle is applied) and
// OnIteration after each control iteration's outputs are delivered. A
// non-nil trap terminates the run exactly like a CPU EDM firing —
// detectors report through the same trap plumbing the campaigns
// already classify. Monitors disable the From/Golden fast paths, which
// must not skip instructions a detector needs to see.
type Monitor interface {
	OnInstr(iteration int, instr uint64, vm *cpu.CPU) *cpu.TrapError
	OnIteration(iteration int, vm *cpu.CPU) *cpu.TrapError
}

// RunSpec configures one execution of a workload program against its
// environment simulator.
type RunSpec struct {
	Iterations  int
	CycleBudget int // per-iteration instruction limit (0 = default)
	IdleSpins   int // ready-flag polls per sample period (0 = default)

	// EngineCfg and Reference configure the default (engine)
	// environment; they are ignored when NewEnv is set.
	EngineCfg plant.EngineConfig
	Reference plant.ReferenceProfile

	// Ports describes the I/O window; the zero value means the engine
	// workload's layout (2 inputs, 1 output).
	Ports PortLayout

	// NewEnv constructs the environment simulator for one run. nil
	// means the paper's engine environment. A fresh environment is
	// created per run, so the factory must be safe for concurrent
	// use.
	NewEnv func(RunSpec) Environment

	Injection *Injection // nil for the reference (golden) run

	// Observer, if non-nil, is invoked before every instruction with
	// the current iteration, the global instruction index and the
	// machine — GOOFI's detail mode, used for error-propagation
	// analysis. It slows the run down considerably.
	Observer func(iteration int, instr uint64, vm *cpu.CPU)

	// Monitor, if non-nil, is the in-loop detector for this run. Like
	// Observer it sees every instruction, so it disables the From and
	// Golden fast paths.
	Monitor Monitor

	// Abort, if non-nil, is polled at every iteration boundary; when it
	// returns true the run stops before the next iteration and the
	// Outcome is returned with Aborted set. Used to cancel detail-mode
	// traces, which are far slower than ordinary runs.
	Abort func() bool

	// Deadline, if non-zero, bounds the run's wall-clock time: once it
	// passes, the run stops at the next iteration boundary with Aborted
	// and DeadlineExceeded set. A single wedged iteration is already
	// bounded by the cycle-budget watchdog, so boundary checks bound the
	// whole run. Used by the campaign engine's worker fault isolation
	// to abandon hung experiments instead of wedging a worker.
	Deadline time.Time

	// From, if non-nil, resumes the run from a checkpoint instead of
	// executing the pre-checkpoint iterations. It is purely an
	// optimisation hint: the outcome is byte-identical to a full run,
	// and the checkpoint is silently ignored whenever it cannot
	// guarantee that (injection before the checkpoint, an Observer
	// that must see every instruction, RecordStateHashes, a mismatched
	// port layout).
	From *Checkpoint

	// Golden, if non-nil, is the fault-free outcome of the same spec,
	// recorded with RecordStateHashes. After the injection the run
	// then watches for re-convergence: once the machine state digest
	// matches the golden run at an iteration boundary and every output
	// so far is bit-identical, the remainder must equal the golden
	// remainder and is spliced in instead of re-executed. Like From,
	// this never changes the outcome — only how much of it is
	// recomputed.
	Golden *Outcome

	// RecordStateHashes captures the 128-bit machine-state digest at
	// every iteration boundary into Outcome.StateHashes, making the
	// outcome usable as a Golden reference. It costs one digest of the
	// full state per iteration.
	RecordStateHashes bool

	// Interpret forces the classic fetch/decode interpreter instead of
	// the predecoded instruction stream. Behaviour is identical either
	// way (pinned by tests and the lockstep-crossval CI job); the knob
	// exists for cross-validation and benchmarking the decode overhead.
	Interpret bool
}

// PaperRunSpec returns the paper's experiment parameters: 650 control
// iterations of the engine workload.
func PaperRunSpec() RunSpec {
	return RunSpec{
		Iterations: plant.DefaultIterations,
		EngineCfg:  plant.DefaultEngineConfig(),
		Reference:  plant.PaperReference(),
	}
}

// Outcome is the observable result of one run.
type Outcome struct {
	// Outputs holds the first output port's value for every completed
	// iteration (u_lim for the engine workload).
	Outputs []float64

	// MultiOutputs holds every output port's trace: MultiOutputs[j][k]
	// is port j at iteration k. Outputs aliases MultiOutputs[0].
	MultiOutputs [][]float64

	// Speeds holds the engine speed after each completed iteration
	// (engine environment only; empty for other environments).
	Speeds []float64

	// Trap is non-nil when an error-detection mechanism terminated
	// the run; TrapIteration is the iteration during which it fired.
	Trap          *cpu.TrapError
	TrapIteration int

	// FinalState is the end-of-run architectural state snapshot,
	// valid only when Trap is nil.
	FinalState []uint32

	// Instructions is the total number of instructions executed.
	Instructions uint64

	// IterationStarts records the instruction count at the beginning
	// of each iteration, letting callers target an injection at a
	// precise point of a chosen control iteration.
	IterationStarts []uint64

	// Aborted reports that RunSpec.Abort or RunSpec.Deadline stopped the
	// run early; the outcome then covers only the completed iterations.
	Aborted bool

	// DeadlineExceeded reports that the abort was RunSpec.Deadline
	// expiring rather than the Abort callback.
	DeadlineExceeded bool

	// StateHashes holds the machine-state digest at the start of each
	// iteration; populated only when RunSpec.RecordStateHashes is set.
	StateHashes []cpu.Digest

	// ReconvergedAt is the iteration at which the run was found
	// bit-identical to RunSpec.Golden and its remainder spliced in, or
	// 0 when the run executed to its end (re-convergence is never
	// checked before iteration 1).
	ReconvergedAt int
}

// Detected reports whether the run was terminated by an EDM.
func (o *Outcome) Detected() bool {
	return o.Trap != nil
}

// ioPort implements cpu.IOBus for a PortLayout: input doubles, output
// doubles, the sync word and the ready flag. The ready flag reads 0 for
// the first idleSpins polls of each sample period, keeping the CPU in
// its wait loop like the real target idling between data exchanges.
type ioPort struct {
	ports      PortLayout
	in         []float64
	outHi      []uint32
	outLo      []uint32
	syncSeen   bool
	readyPolls int
	idleSpins  int
}

var _ cpu.IOBus = (*ioPort)(nil)

func newIOPort(ports PortLayout, idleSpins int) *ioPort {
	return &ioPort{
		ports:     ports,
		in:        make([]float64, ports.Inputs),
		outHi:     make([]uint32, ports.Outputs),
		outLo:     make([]uint32, ports.Outputs),
		idleSpins: idleSpins,
	}
}

func (p *ioPort) ReadIO(off uint32) uint32 {
	switch {
	case off == p.ports.ReadyOffset():
		p.readyPolls++
		if p.readyPolls > p.idleSpins {
			return 1
		}
		return 0
	case off == p.ports.SyncOffset():
		return 0
	}
	idx := int(off / 8)
	hi := off%8 == 0
	switch {
	case idx < p.ports.Inputs:
		bits := math.Float64bits(p.in[idx])
		if hi {
			return uint32(bits >> 32)
		}
		return uint32(bits)
	case idx < p.ports.Inputs+p.ports.Outputs:
		j := idx - p.ports.Inputs
		if hi {
			return p.outHi[j]
		}
		return p.outLo[j]
	default:
		return 0
	}
}

func (p *ioPort) WriteIO(off uint32, v uint32) {
	if off == p.ports.SyncOffset() {
		p.syncSeen = true
		return
	}
	idx := int(off / 8)
	j := idx - p.ports.Inputs
	if j < 0 || j >= p.ports.Outputs {
		return
	}
	if off%8 == 0 {
		p.outHi[j] = v
	} else {
		p.outLo[j] = v
	}
}

// outputs returns the delivered output values; valid once the sync
// store has been observed.
func (p *ioPort) outputs() []float64 {
	out := make([]float64, p.ports.Outputs)
	for j := range out {
		out[j] = math.Float64frombits(uint64(p.outHi[j])<<32 | uint64(p.outLo[j]))
	}
	return out
}

// Run executes prog against its environment for spec.Iterations control
// iterations, optionally injecting one bit-flip, and returns the
// observable outcome. Runs are fully deterministic: the From and
// Golden fast paths never change the outcome, only how much of it is
// re-executed.
func Run(prog *cpu.Program, spec RunSpec) *Outcome {
	out, _ := run(prog, spec, -1)
	return out
}

// goldenUsable reports whether golden can serve as the re-convergence
// reference for a run of spec: a complete fault-free outcome of the
// same shape, with a digest recorded at every iteration boundary.
func goldenUsable(golden *Outcome, spec RunSpec, ports PortLayout) bool {
	if golden == nil || golden.Trap != nil || golden.Aborted {
		return false
	}
	if len(golden.StateHashes) != spec.Iterations ||
		len(golden.IterationStarts) != spec.Iterations ||
		len(golden.MultiOutputs) != ports.Outputs {
		return false
	}
	for _, trace := range golden.MultiOutputs {
		if len(trace) != spec.Iterations {
			return false
		}
	}
	return true
}

// runner is one in-flight harness execution: the machine, its
// environment, the accumulating outcome, and the golden-splice
// bookkeeping. Factoring the state out of run's locals is what lets
// the lockstep engine fork a lane mid-iteration (mid=true) and resume
// it through the exact same loop a solo run takes, preserving the
// byte-identity of every outcome.
type runner struct {
	prog   *cpu.Program
	spec   RunSpec
	budget int
	ports  PortLayout
	port   *ioPort
	vm     *cpu.CPU
	env    Environment
	out    *Outcome
	golden *Outcome

	// diverged latches once any output differs from the golden trace:
	// the environment has then left the golden trajectory and splicing
	// the golden remainder would be wrong.
	diverged bool
	// nextCheck/gap implement exponential backoff between digest
	// comparisons, so a latently corrupted run that never re-converges
	// pays O(log iterations) digests, not one per iteration.
	nextCheck int
	gap       int

	injected bool
	k        int // current control iteration
	cycles   int // instructions into the current iteration
	mid      bool // resume inside iteration k (lane fork) — skip boundary work once

	// fork, when non-nil, runs before every instruction (where a solo
	// run checks its injection point); returning true stops the run —
	// the lockstep leader exits once its last lane has forked.
	fork func(*runner) bool
}

// newRunner normalises the spec and builds the initial machine state,
// applying the From checkpoint when it provably cannot change the
// outcome.
func newRunner(prog *cpu.Program, spec RunSpec) *runner {
	budget := spec.CycleBudget
	if budget <= 0 {
		budget = DefaultCycleBudget
	}
	idle := spec.IdleSpins
	if idle <= 0 {
		idle = DefaultIdleSpins
	}
	ports := spec.Ports
	if ports == (PortLayout{}) {
		ports = sisoPorts
	}

	// The checkpoint is only a shortcut when it provably cannot change
	// the outcome; otherwise fall back to full replay.
	from := spec.From
	if from != nil {
		usable := from.iteration > 0 &&
			from.iteration < spec.Iterations &&
			len(from.outHi) == ports.Outputs &&
			spec.Observer == nil &&
			spec.Monitor == nil &&
			!spec.RecordStateHashes &&
			(spec.Injection == nil || spec.Injection.At >= from.vm.InstrCount)
		if !usable {
			from = nil
		}
	}

	port := newIOPort(ports, idle)
	out := &Outcome{MultiOutputs: make([][]float64, ports.Outputs)}
	var env Environment
	var vm *cpu.CPU
	startK := 0
	if from != nil {
		copy(port.outHi, from.outHi)
		copy(port.outLo, from.outLo)
		vm = cpu.NewFromSnapshot(from.vm, port)
		env = from.env.CloneEnv()
		startK = from.iteration
		for j := range out.MultiOutputs {
			out.MultiOutputs[j] = append(make([]float64, 0, spec.Iterations), from.outputs[j]...)
		}
		out.IterationStarts = append(make([]uint64, 0, spec.Iterations), from.starts...)
	} else {
		if spec.NewEnv != nil {
			env = spec.NewEnv(spec)
		} else {
			env = newEngineEnv(spec)
		}
		vm = cpu.New(prog, port)
		for j := range out.MultiOutputs {
			out.MultiOutputs[j] = make([]float64, 0, spec.Iterations)
		}
	}
	if !spec.Interpret {
		// The predecoded dispatch engine; behaviour-preserving, so no
		// usability conditions. AttachDecoded itself verifies the
		// stream matches the loaded code image.
		vm.AttachDecoded(cpu.PredecodeCached(prog))
	}

	golden := spec.Golden
	if spec.Injection == nil || spec.Observer != nil || spec.Monitor != nil ||
		!goldenUsable(golden, spec, ports) {
		golden = nil
	}
	return &runner{
		prog: prog, spec: spec, budget: budget, ports: ports,
		port: port, vm: vm, env: env, out: out, golden: golden,
		gap: 1, k: startK,
	}
}

// run is the engine behind Run and CaptureCheckpoint. When captureAt
// is non-negative the run stops at that iteration boundary and returns
// the frozen state (nil when the boundary is unreachable or the
// environment cannot be cloned); the partial outcome is returned
// alongside for diagnostics.
func run(prog *cpu.Program, spec RunSpec, captureAt int) (*Outcome, *Checkpoint) {
	return newRunner(prog, spec).run(captureAt)
}

func (r *runner) run(captureAt int) (*Outcome, *Checkpoint) {
	spec, out, vm, port, env := r.spec, r.out, r.vm, r.port, r.env
	for ; r.k < spec.Iterations; r.k++ {
		k := r.k
		if !r.mid {
			if spec.Abort != nil && spec.Abort() {
				out.Aborted = true
				out.Instructions = vm.InstrCount()
				out.finish(env)
				return out, nil
			}
			if !spec.Deadline.IsZero() && time.Now().After(spec.Deadline) {
				out.Aborted = true
				out.DeadlineExceeded = true
				out.Instructions = vm.InstrCount()
				out.finish(env)
				return out, nil
			}
			if spec.RecordStateHashes {
				out.StateHashes = append(out.StateHashes, vm.StateDigest())
			}
			if k == captureAt {
				ce, ok := env.(CloneableEnv)
				if !ok {
					return out, nil
				}
				clone, ok := ce.CloneEnv().(CloneableEnv)
				if !ok {
					return out, nil
				}
				ck := &Checkpoint{
					iteration: k,
					vm:        vm.Snapshot(),
					env:       clone,
					outHi:     append([]uint32(nil), port.outHi...),
					outLo:     append([]uint32(nil), port.outLo...),
					outputs:   make([][]float64, len(out.MultiOutputs)),
					starts:    append([]uint64(nil), out.IterationStarts...),
				}
				for j := range ck.outputs {
					ck.outputs[j] = append([]float64(nil), out.MultiOutputs[j]...)
				}
				return out, ck
			}
			if r.golden != nil && r.injected && !r.diverged && k >= r.nextCheck {
				golden := r.golden
				if vm.InstrCount() == golden.IterationStarts[k] &&
					vm.StateDigest() == golden.StateHashes[k] {
					// The machine state and the whole output history match
					// the fault-free run, so the remainder is bit-identical
					// to it: splice it in instead of re-executing.
					for j := range out.MultiOutputs {
						out.MultiOutputs[j] = append(out.MultiOutputs[j], golden.MultiOutputs[j][k:]...)
					}
					out.IterationStarts = append(out.IterationStarts, golden.IterationStarts[k:]...)
					out.FinalState = golden.FinalState
					out.Instructions = golden.Instructions
					out.ReconvergedAt = k
					out.finish(env)
					if len(golden.Speeds) > k && len(out.Speeds) == k {
						out.Speeds = append(out.Speeds, golden.Speeds[k:]...)
					}
					return out, nil
				}
				r.gap *= 2
				r.nextCheck = k + r.gap
			}
			out.IterationStarts = append(out.IterationStarts, vm.InstrCount())
			copy(port.in, env.Inputs(k))
			port.syncSeen = false
			port.readyPolls = 0
			r.cycles = 0
		}
		r.mid = false

		var restore func()
		for !port.syncSeen {
			if r.fork != nil && r.fork(r) {
				out.Aborted = true
				out.Instructions = vm.InstrCount()
				out.finish(env)
				return out, nil
			}
			if spec.Injection != nil && !r.injected && vm.InstrCount() == spec.Injection.At {
				restore = applyInjection(vm, spec.Injection)
				r.injected = true
				r.nextCheck = k + 1
				r.gap = 1
			}
			if spec.Observer != nil {
				spec.Observer(k, vm.InstrCount(), vm)
			}
			if spec.Monitor != nil {
				if t := spec.Monitor.OnInstr(k, vm.InstrCount(), vm); t != nil {
					out.Trap = t
					out.TrapIteration = k
					out.Instructions = vm.InstrCount()
					out.finish(env)
					return out, nil
				}
			}
			if err := vm.Step(); err != nil {
				out.Trap = asTrap(err)
				out.TrapIteration = k
				out.Instructions = vm.InstrCount()
				out.finish(env)
				return out, nil
			}
			if restore != nil {
				restore()
				restore = nil
			}
			r.cycles++
			if r.cycles > r.budget {
				out.Trap = &cpu.TrapError{Mech: cpu.MechWatchdog,
					Info: "iteration exceeded its cycle budget"}
				out.TrapIteration = k
				out.Instructions = vm.InstrCount()
				out.finish(env)
				return out, nil
			}
		}

		u := port.outputs()
		for j, v := range u {
			out.MultiOutputs[j] = append(out.MultiOutputs[j], v)
			if r.golden != nil && !r.diverged &&
				math.Float64bits(v) != math.Float64bits(r.golden.MultiOutputs[j][k]) {
				r.diverged = true
			}
		}
		env.Deliver(k, u)
		if spec.Monitor != nil {
			if t := spec.Monitor.OnIteration(k, vm); t != nil {
				out.Trap = t
				out.TrapIteration = k
				out.Instructions = vm.InstrCount()
				out.finish(env)
				return out, nil
			}
		}
	}
	out.FinalState = vm.FinalState()
	out.Instructions = vm.InstrCount()
	out.finish(env)
	return out, nil
}

// finish wires the convenience views of the outcome.
func (o *Outcome) finish(env Environment) {
	if len(o.MultiOutputs) > 0 {
		o.Outputs = o.MultiOutputs[0]
	}
	if e, ok := env.(*engineEnv); ok {
		o.Speeds = e.speeds
	}
}

// asTrap converts the error from CPU.Step into a *TrapError; ErrHalted
// cannot occur for the looping workloads but is mapped to a constraint
// trap defensively rather than dropped.
func asTrap(err error) *cpu.TrapError {
	if t, ok := err.(*cpu.TrapError); ok {
		return t
	}
	return &cpu.TrapError{Mech: cpu.MechConstraint, Info: err.Error()}
}
