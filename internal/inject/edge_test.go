package inject

import (
	"reflect"
	"testing"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// Edge-case regressions for the injection machinery: faults landing on
// the very last instruction of a run, bit indices at word boundaries
// (burst wrap-around), and plans containing duplicate
// (element, bit, time) tuples.

// TestFinalInstructionInjection pins that every fault model can be
// injected at the last instruction of the run without panicking or
// wedging the harness — the transient model's restore hook in
// particular must cope with the run ending immediately after the flip.
func TestFinalInstructionInjection(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	spec := workload.SpecFor(workload.AlgorithmI)
	golden := workload.Run(prog, spec)
	if golden.Detected() {
		t.Fatalf("golden run trapped: %v", golden.Trap)
	}
	bit := cpu.StateBit{Region: cpu.RegionRegisters, Element: "r6", Bit: 3}
	for _, m := range []FaultModel{ModelBitFlip, ModelPC, ModelTransient, ModelBurst} {
		inj := workload.Injection{At: golden.Instructions - 1, Bit: bit}
		if c := m.Canonical(); c != ModelBitFlip {
			inj.Model = c
			if c == ModelBurst {
				inj.Width = DefaultBurstWidth
			}
		}
		if m == ModelPC {
			inj.Bit = cpu.StateBit{Region: cpu.RegionRegisters, Element: "pc", Bit: 2}
		}
		run := spec
		run.Injection = &inj
		out := workload.Run(prog, run)
		if out.Aborted {
			t.Errorf("model %s: final-instruction injection aborted the run", m)
		}
		// A fault on the last instruction can at most perturb the final
		// state or trap — the completed iterations must all be there.
		if got := len(out.Outputs); !out.Detected() && got != len(golden.Outputs) {
			t.Errorf("model %s: %d outputs, want %d", m, got, len(golden.Outputs))
		}
	}
}

// TestBurstWrapsAtWordBoundary pins the burst model's bit arithmetic at
// the top of a 32-bit element: a width-2 burst at bit 31 must flip bits
// 31 and 0 of the same element, not spill into a neighbour.
func TestBurstWrapsAtWordBoundary(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	vm := cpu.New(prog, nopIO{})
	bit := cpu.StateBit{Region: cpu.RegionRegisters, Element: "r6", Bit: 31}
	if err := vm.FlipBurst(bit, 2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		b       uint
		flipped bool
	}{{31, true}, {0, true}, {1, false}, {30, false}} {
		got, err := vm.StateBitValue(cpu.StateBit{Region: bit.Region, Element: bit.Element, Bit: want.b})
		if err != nil {
			t.Fatal(err)
		}
		if got != want.flipped {
			t.Errorf("after width-2 burst at bit 31: bit %d = %v, want %v", want.b, got, want.flipped)
		}
	}
}

// TestBurstClampsToElementWidth pins the clamp for sub-word elements: a
// wide burst on a 1-bit flag flips exactly that flag once.
func TestBurstClampsToElementWidth(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	vm := cpu.New(prog, nopIO{})
	flag := cpu.StateBit{Region: cpu.RegionRegisters, Element: "flagZ", Bit: 0}
	before, err := vm.StateBitValue(flag)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.FlipBurst(flag, 8); err != nil {
		t.Fatal(err)
	}
	after, err := vm.StateBitValue(flag)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Error("width-8 burst on flagZ cancelled itself; want a single effective flip")
	}
}

// TestImageFlipMaskWraps pins the SWIFI burst mask at the word
// boundary.
func TestImageFlipMaskWraps(t *testing.T) {
	f := ImageFlip{Target: ImageCode, Word: 0, Bit: 31, Width: 2}
	if got, want := f.Mask(), uint32(1<<31|1); got != want {
		t.Errorf("Mask() = %#x, want %#x", got, want)
	}
	if got, want := (ImageFlip{Bit: 5}).Mask(), uint32(1<<5); got != want {
		t.Errorf("single-bit Mask() = %#x, want %#x", got, want)
	}
	if got, want := (ImageFlip{Bit: 0, Width: 64}).Mask(), uint32(0xFFFFFFFF); got != want {
		t.Errorf("over-wide Mask() = %#x, want %#x", got, want)
	}
}

// TestDuplicateInjectionsDeterministic pins that a plan containing the
// same (element, bit, time) tuple twice yields identical runs for each
// occurrence — the property the campaign engine's equivalence-class
// pruning and record comparison rest on.
func TestDuplicateInjectionsDeterministic(t *testing.T) {
	prog := workload.Program(workload.AlgorithmI)
	spec := workload.SpecFor(workload.AlgorithmI)
	for _, m := range []FaultModel{ModelBitFlip, ModelTransient, ModelBurst} {
		inj := workload.Injection{
			At:  5000,
			Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r8", Bit: 17},
		}
		if c := m.Canonical(); c != ModelBitFlip {
			inj.Model = c
			if c == ModelBurst {
				inj.Width = 3
			}
		}
		run := spec
		run.Injection = &inj
		a := workload.Run(prog, run)
		dup := inj // same tuple, fresh pointer: a duplicate plan entry
		run.Injection = &dup
		b := workload.Run(prog, run)
		if !reflect.DeepEqual(a.Outputs, b.Outputs) || a.Instructions != b.Instructions ||
			(a.Trap == nil) != (b.Trap == nil) {
			t.Errorf("model %s: duplicate injections diverged (%d vs %d instructions)",
				m, a.Instructions, b.Instructions)
		}
	}
}

// TestModelSamplerMatchesDefaultDrawSequence pins the byte-identity
// cornerstone: for the location/time models that share the default
// sampling distribution, NewModelSampler draws exactly the sequence
// NewSampler does — only the stamped Model/Width fields differ.
func TestModelSamplerMatchesDefaultDrawSequence(t *testing.T) {
	for _, m := range []FaultModel{ModelBitFlip, ModelTransient, ModelBurst} {
		got, err := NewModelSampler(99, 123456, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		refCopy := NewSampler(99, 123456)
		for i := 0; i < 500; i++ {
			a, b := refCopy.Next(), got.Next()
			if a.At != b.At || a.Bit != b.Bit {
				t.Fatalf("model %s: draw %d diverged: %v vs %v", m, i, a, b)
			}
			if m.Canonical() == ModelBitFlip && (b.Model != "" || b.Width != 0) {
				t.Fatalf("default model stamped %q/%d; historical records would change shape", b.Model, b.Width)
			}
		}
	}
}

// TestPCModelSamplesControlFlowBitsOnly pins the pc model's location
// restriction.
func TestPCModelSamplesControlFlowBitsOnly(t *testing.T) {
	s, err := NewModelSampler(7, 10000, ModelPC, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		inj := s.Next()
		switch inj.Bit.Element {
		case "pc", "flagZ", "flagLT":
		default:
			t.Fatalf("pc model drew element %q; want control-flow state only", inj.Bit.Element)
		}
	}
}

// nopIO satisfies the CPU's I/O bus for direct-VM tests.
type nopIO struct{}

func (nopIO) ReadIO(off uint32) uint32     { return 0 }
func (nopIO) WriteIO(off uint32, v uint32) {}
