package inject

import (
	"fmt"
	"sort"
	"strings"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/workload"
)

// FaultModel re-exports the workload fault-model type: inject owns the
// sampling and the user-facing vocabulary, workload owns the injection
// mechanics (inject imports workload, so the type lives there).
type FaultModel = workload.FaultModel

// The available fault models.
const (
	ModelBitFlip   = workload.ModelBitFlip
	ModelPC        = workload.ModelPC
	ModelTransient = workload.ModelTransient
	ModelBurst     = workload.ModelBurst
)

// DefaultBurstWidth mirrors workload.DefaultBurstWidth.
const DefaultBurstWidth = workload.DefaultBurstWidth

// modelInfo describes one fault model for discovery (-list-models).
var modelInfo = map[FaultModel]string{
	ModelBitFlip:   "permanent single bit-flip in CPU state, uniform over location x time (the paper's model)",
	ModelPC:        "permanent bit-flip restricted to control-flow state: the PC and the branch condition flags",
	ModelTransient: "single-cycle transient: flip one bit, restore it after one instruction unless it was overwritten",
	ModelBurst:     "multi-bit burst: flip N adjacent bits of one element (wrapping within the element)",
}

// Models lists every fault model, default first and the rest sorted.
func Models() []FaultModel {
	out := []FaultModel{ModelBitFlip}
	var rest []string
	for m := range modelInfo {
		if m != ModelBitFlip {
			rest = append(rest, string(m))
		}
	}
	sort.Strings(rest)
	for _, m := range rest {
		out = append(out, FaultModel(m))
	}
	return out
}

// DescribeModel returns the one-line description of a model.
func DescribeModel(m FaultModel) string {
	return modelInfo[m.Canonical()]
}

// ParseModel validates a user-supplied model name ("" means the
// default bit-flip model); unknown names list the options.
func ParseModel(name string) (FaultModel, error) {
	m := FaultModel(strings.ToLower(strings.TrimSpace(name))).Canonical()
	if _, ok := modelInfo[m]; !ok {
		var names []string
		for _, k := range Models() {
			names = append(names, string(k))
		}
		return "", fmt.Errorf("inject: unknown fault model %q (available: %s)",
			name, strings.Join(names, ", "))
	}
	return m, nil
}

// controlFlowBits returns the injectable bits of the control-flow
// state: the PC word and the two branch condition flags, in StateBits
// order.
func controlFlowBits() []cpu.StateBit {
	var out []cpu.StateBit
	for _, b := range cpu.StateBits() {
		switch b.Element {
		case "pc", "flagZ", "flagLT":
			out = append(out, b)
		}
	}
	return out
}

// NewModelSampler creates a sampler for the given fault model. For the
// bit-flip, transient and burst models it draws exactly the sequence
// NewSampler draws (uniform over all state bits, then time), so
// default-model campaigns remain byte-identical to the pre-model
// engine; the pc model draws its locations from the control-flow bits
// only. Injections carry Model/Width only for non-default models, so
// default records keep their historical wire shape.
func NewModelSampler(seed uint64, totalInstructions uint64, model FaultModel, width int) (*Sampler, error) {
	model = model.Canonical()
	if _, ok := modelInfo[model]; !ok {
		return nil, fmt.Errorf("inject: unknown fault model %q", model)
	}
	s := &Sampler{
		rng:   stats.NewRNG(seed),
		bits:  cpu.StateBits(),
		total: totalInstructions,
		model: model,
	}
	if model == ModelBurst {
		if width <= 0 {
			width = DefaultBurstWidth
		}
		s.width = width
	}
	if model == ModelPC {
		s.bits = controlFlowBits()
	}
	return s, nil
}

// Model returns the sampler's fault model.
func (s *Sampler) Model() FaultModel {
	return s.model.Canonical()
}
