package inject

import (
	"strings"
	"testing"

	"ctrlguard/internal/cpu"
)

func testProg(t *testing.T) *cpu.Program {
	t.Helper()
	p, err := cpu.Assemble(`
.code
        MOVI r1, 1
        HALT
.data
v:      .word 7
w:      .word 9
`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestImageFlipApplyCode(t *testing.T) {
	prog := testProg(t)
	orig := prog.Code[0]
	mutated, err := ImageFlip{Target: ImageCode, Word: 0, Bit: 3}.Apply(prog)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.Code[0] != orig^8 {
		t.Errorf("mutated word = %#x, want %#x", mutated.Code[0], orig^8)
	}
	if prog.Code[0] != orig {
		t.Error("Apply modified the original program")
	}
}

func TestImageFlipApplyData(t *testing.T) {
	prog := testProg(t)
	mutated, err := ImageFlip{Target: ImageData, Word: 1, Bit: 0}.Apply(prog)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.Data[1] != 8 {
		t.Errorf("mutated data = %d, want 8", mutated.Data[1])
	}
}

func TestImageFlipErrors(t *testing.T) {
	prog := testProg(t)
	bad := []ImageFlip{
		{Target: ImageCode, Word: -1},
		{Target: ImageCode, Word: 99},
		{Target: ImageData, Word: 99},
		{Target: ImageTarget(9), Word: 0},
	}
	for _, f := range bad {
		if _, err := f.Apply(prog); err == nil {
			t.Errorf("Apply(%v) should fail", f)
		}
	}
}

func TestImageFlipString(t *testing.T) {
	s := ImageFlip{Target: ImageCode, Word: 4, Bit: 31}.String()
	if !strings.Contains(s, "code") || !strings.Contains(s, "4") {
		t.Errorf("String() = %q", s)
	}
	if ImageTarget(9).String() != "unknown" {
		t.Error("unknown target label wrong")
	}
}

func TestImageSamplerBoundsAndCoverage(t *testing.T) {
	prog := testProg(t)
	s := NewImageSampler(3, prog)
	seen := map[ImageTarget]bool{}
	for i := 0; i < 5000; i++ {
		f := s.Next()
		seen[f.Target] = true
		if _, err := f.Apply(prog); err != nil {
			t.Fatalf("sampler produced invalid flip %v: %v", f, err)
		}
	}
	if !seen[ImageCode] || !seen[ImageData] {
		t.Errorf("targets sampled: %v, want both", seen)
	}
}

func TestImageSamplerDeterministic(t *testing.T) {
	prog := testProg(t)
	a, b := NewImageSampler(7, prog), NewImageSampler(7, prog)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("samplers diverged")
		}
	}
}
