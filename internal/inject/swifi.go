package inject

import (
	"fmt"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/stats"
)

// Pre-runtime Software-Implemented Fault Injection (SWIFI), the second
// injection technique GOOFI supports (§3.3.1 of the paper): the fault
// is inserted into the program image before the run starts, modelling a
// corrupted instruction or initialised variable in memory, rather than
// a transient bit-flip during execution.

// ImageTarget selects which part of the program image a SWIFI fault
// mutates.
type ImageTarget int

// Image targets.
const (
	ImageCode ImageTarget = iota + 1
	ImageData
)

// String returns the target's label.
func (t ImageTarget) String() string {
	switch t {
	case ImageCode:
		return "code"
	case ImageData:
		return "data"
	default:
		return "unknown"
	}
}

// ImageFlip is one pre-runtime fault: invert a bit of one word of the
// program image. Width > 1 is the burst model — Width adjacent bits of
// the word are inverted, wrapping within the 32-bit word.
type ImageFlip struct {
	Target ImageTarget
	Word   int // word index within the target section
	Bit    uint
	Width  int // burst span; <= 1 means a single bit
}

// String renders the flip for logging.
func (f ImageFlip) String() string {
	if f.Width > 1 {
		return fmt.Sprintf("%s[%d] bits %d+%d", f.Target, f.Word, f.Bit, f.Width)
	}
	return fmt.Sprintf("%s[%d] bit %d", f.Target, f.Word, f.Bit)
}

// Mask returns the XOR mask for the flip's bit or burst.
func (f ImageFlip) Mask() uint32 {
	w := f.Width
	if w < 1 {
		w = 1
	}
	if w > 32 {
		w = 32
	}
	var m uint32
	for i := 0; i < w; i++ {
		m |= 1 << ((f.Bit + uint(i)) % 32)
	}
	return m
}

// Apply returns a copy of prog with the fault inserted. The original is
// not modified. It returns an error for out-of-range words.
func (f ImageFlip) Apply(prog *cpu.Program) (*cpu.Program, error) {
	mutated := &cpu.Program{
		Code:       append([]uint32(nil), prog.Code...),
		Data:       append([]uint32(nil), prog.Data...),
		CodeLabels: prog.CodeLabels,
		DataLabels: prog.DataLabels,
	}
	switch f.Target {
	case ImageCode:
		if f.Word < 0 || f.Word >= len(mutated.Code) {
			return nil, fmt.Errorf("inject: code word %d out of range", f.Word)
		}
		mutated.Code[f.Word] ^= f.Mask()
	case ImageData:
		if f.Word < 0 || f.Word >= len(mutated.Data) {
			return nil, fmt.Errorf("inject: data word %d out of range", f.Word)
		}
		mutated.Data[f.Word] ^= f.Mask()
	default:
		return nil, fmt.Errorf("inject: unknown image target %d", f.Target)
	}
	return mutated, nil
}

// ImageSampler draws SWIFI faults uniformly over every bit of the
// program image (code and initialised data together).
type ImageSampler struct {
	rng       *stats.RNG
	codeWords int
	dataWords int
	width     int // burst span stamped on drawn flips (0 = single bit)
}

// SetBurstWidth makes subsequent draws burst flips of the given width.
// The draw sequence is unchanged — only the stamped Width differs — so
// burst SWIFI campaigns hit the same (word, bit) sites as single-bit
// ones for the same seed.
func (s *ImageSampler) SetBurstWidth(width int) {
	s.width = width
}

// NewImageSampler creates a sampler for the given program.
func NewImageSampler(seed uint64, prog *cpu.Program) *ImageSampler {
	return &ImageSampler{
		rng:       stats.NewRNG(seed),
		codeWords: len(prog.Code),
		dataWords: len(prog.Data),
	}
}

// Next draws one image flip.
func (s *ImageSampler) Next() ImageFlip {
	total := s.codeWords + s.dataWords
	w := s.rng.Intn(total)
	bit := uint(s.rng.Intn(32))
	if w < s.codeWords {
		return ImageFlip{Target: ImageCode, Word: w, Bit: bit, Width: s.width}
	}
	return ImageFlip{Target: ImageData, Word: w - s.codeWords, Bit: bit, Width: s.width}
}
