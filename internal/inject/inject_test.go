package inject

import (
	"math"
	"testing"

	"ctrlguard/internal/control"
	"ctrlguard/internal/cpu"
)

func TestSamplerDeterministic(t *testing.T) {
	a := NewSampler(42, 10000)
	b := NewSampler(42, 10000)
	for i := 0; i < 100; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("samplers diverged at %d: %v vs %v", i, ia, ib)
		}
	}
}

func TestSamplerCoversBothRegions(t *testing.T) {
	s := NewSampler(7, 10000)
	seen := map[cpu.Region]bool{}
	for i := 0; i < 1000; i++ {
		seen[s.Next().Bit.Region] = true
	}
	if !seen[cpu.RegionCache] || !seen[cpu.RegionRegisters] {
		t.Errorf("regions sampled: %v, want both", seen)
	}
}

func TestSamplerTimeRange(t *testing.T) {
	const total = 5000
	s := NewSampler(3, total)
	for i := 0; i < 10000; i++ {
		if inj := s.Next(); inj.At >= total {
			t.Fatalf("At = %d, beyond total %d", inj.At, total)
		}
	}
}

func TestSamplerRegionWeightMatchesBitCounts(t *testing.T) {
	// Sampling is uniform over bits, so the cache share must match
	// the cache's share of enumerable bits.
	var cacheBits int
	bits := cpu.StateBits()
	for _, b := range bits {
		if b.Region == cpu.RegionCache {
			cacheBits++
		}
	}
	want := float64(cacheBits) / float64(len(bits))

	s := NewSampler(9, 1000)
	const n = 50000
	got := 0
	for i := 0; i < n; i++ {
		if s.Next().Bit.Region == cpu.RegionCache {
			got++
		}
	}
	share := float64(got) / n
	if math.Abs(share-want) > 0.02 {
		t.Errorf("cache share = %v, want ≈ %v", share, want)
	}
}

func TestSamplerLocations(t *testing.T) {
	s := NewSampler(1, 10)
	if s.Locations() != len(cpu.StateBits()) {
		t.Errorf("Locations() = %d, want %d", s.Locations(), len(cpu.StateBits()))
	}
}

func TestVarFlipApply(t *testing.T) {
	ctrl := control.NewPI(control.PIConfig{Kp: 1, Ki: 1, T: 1, OutMax: 70, InitX: 1.0})
	VarFlip{Element: 0, Bit: 63}.Apply(ctrl)
	if ctrl.X != -1.0 {
		t.Errorf("sign-bit flip: X = %v, want -1", ctrl.X)
	}
}

func TestVarFlipOutOfRangeElementIgnored(t *testing.T) {
	ctrl := control.NewPI(control.PIConfig{InitX: 3})
	VarFlip{Element: 5, Bit: 0}.Apply(ctrl)
	VarFlip{Element: -1, Bit: 0}.Apply(ctrl)
	if ctrl.X != 3 {
		t.Errorf("out-of-range element changed state: %v", ctrl.X)
	}
}

func TestVarFlipDoubleApplyRestores(t *testing.T) {
	ctrl := control.NewPI(control.PIConfig{InitX: 7.25})
	f := VarFlip{Element: 0, Bit: 40}
	f.Apply(ctrl)
	f.Apply(ctrl)
	if ctrl.X != 7.25 {
		t.Errorf("double flip did not restore: %v", ctrl.X)
	}
}

func TestVarSamplerBounds(t *testing.T) {
	s := NewVarSampler(5, 3, 650)
	for i := 0; i < 10000; i++ {
		it, flip := s.Next()
		if it < 0 || it >= 650 {
			t.Fatalf("iteration %d out of range", it)
		}
		if flip.Element < 0 || flip.Element >= 3 {
			t.Fatalf("element %d out of range", flip.Element)
		}
		if flip.Bit > 63 {
			t.Fatalf("bit %d out of range", flip.Bit)
		}
	}
}

func TestVarSamplerDeterministic(t *testing.T) {
	a := NewVarSampler(11, 3, 650)
	b := NewVarSampler(11, 3, 650)
	for i := 0; i < 100; i++ {
		ita, fa := a.Next()
		itb, fb := b.Next()
		if ita != itb || fa != fb {
			t.Fatal("samplers diverged")
		}
	}
}
