// Package inject implements the fault models and sampling of the
// GOOFI campaigns: single bit-flips, uniformly sampled over fault
// location (CPU state-element bits) and fault time (the points in time
// instructions begin execution), matching §3.3.2 of the paper. It also
// provides a variable-level injector that flips IEEE-754 bits of a Go
// controller's state directly, for fast experiments that skip the CPU
// simulator.
package inject

import (
	"ctrlguard/internal/control"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/fphys"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/workload"
)

// Sampler draws (location, time) pairs for SCIFI-style campaigns.
type Sampler struct {
	rng   *stats.RNG
	bits  []cpu.StateBit
	total uint64 // dynamic instruction count of the reference run

	// model/width parameterise NewModelSampler; the zero values are
	// the default bit-flip model.
	model workload.FaultModel
	width int
}

// NewSampler creates a sampler over every injectable CPU state bit and
// the [0, totalInstructions) time base measured on the golden run.
func NewSampler(seed uint64, totalInstructions uint64) *Sampler {
	return &Sampler{
		rng:   stats.NewRNG(seed),
		bits:  cpu.StateBits(),
		total: totalInstructions,
	}
}

// Locations returns the number of injectable state bits.
func (s *Sampler) Locations() int {
	return len(s.bits)
}

// Next draws one injection uniformly over locations × time. Model and
// Width are stamped only for non-default models, keeping default
// campaigns byte-identical to the historical engine.
func (s *Sampler) Next() workload.Injection {
	bit := s.bits[s.rng.Intn(len(s.bits))]
	at := s.rng.Uint64() % s.total
	inj := workload.Injection{At: at, Bit: bit}
	if m := s.model.Canonical(); m != workload.ModelBitFlip {
		inj.Model = m
		inj.Width = s.width
	}
	return inj
}

// VarFlip is the variable-level fault model: flip one bit of one state
// element of a Go controller, modelling a bit-flip in the memory word
// holding that variable. This is the fast path used by examples and the
// Guard ablation benches; the CPU-simulator path is the faithful one.
type VarFlip struct {
	Element int  // index into the controller's state vector
	Bit     uint // 0..63, bit of the float64 representation
}

// Apply flips the bit in the controller's state.
func (f VarFlip) Apply(ctrl control.Stateful) {
	x := ctrl.State()
	if f.Element < 0 || f.Element >= len(x) {
		return
	}
	x[f.Element] = fphys.FlipBit64(x[f.Element], f.Bit)
	ctrl.SetState(x)
}

// VarSampler draws variable-level injections uniformly over the state
// elements and bits of a controller, and over control iterations.
type VarSampler struct {
	rng        *stats.RNG
	elements   int
	iterations int
}

// NewVarSampler creates a sampler for a controller with the given state
// dimension over a run of the given length.
func NewVarSampler(seed uint64, elements, iterations int) *VarSampler {
	return &VarSampler{
		rng:        stats.NewRNG(seed),
		elements:   elements,
		iterations: iterations,
	}
}

// Next draws one (iteration, flip) pair.
func (s *VarSampler) Next() (iteration int, flip VarFlip) {
	return s.rng.Intn(s.iterations), VarFlip{
		Element: s.rng.Intn(s.elements),
		Bit:     uint(s.rng.Intn(64)),
	}
}
