package goofi

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ctrlguard/internal/detect"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// nonDefaultModels are the extended fault models: the ones the
// equivalence-class pruner does not understand and must cleanly
// decline.
var nonDefaultModels = []inject.FaultModel{
	workload.ModelPC, workload.ModelTransient, workload.ModelBurst,
}

// TestModelCampaignDeclinesPruneAndWarmStart pins the decline contract:
// a campaign under any non-default fault model runs every experiment
// from scratch — no pruner, no warm-start — instead of misclassifying
// through machinery calibrated for single persistent bit flips.
func TestModelCampaignDeclinesPruneAndWarmStart(t *testing.T) {
	for _, m := range nonDefaultModels {
		res, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 40, Seed: 5, Model: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Prune != nil {
			t.Errorf("%s: pruner ran on an unsupported model", m)
		}
		if res.WarmStart != nil {
			t.Errorf("%s: warm-start fast path ran on an unsupported model", m)
		}
		for i, rec := range res.Records {
			if rec.Model != string(m) {
				t.Fatalf("%s: record %d stamped model %q", m, i, rec.Model)
			}
		}
	}
}

// TestDefaultModelRecordsUnstamped pins the wire-compatibility side:
// default-model campaigns leave Model/Width zero so historical record
// files stay byte-identical.
func TestDefaultModelRecordsUnstamped(t *testing.T) {
	res, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Records {
		if rec.Model != "" || rec.Width != 0 {
			t.Fatalf("record %d stamped %q/%d on the default model", i, rec.Model, rec.Width)
		}
	}
}

// modelIdentityCheck runs one campaign three ways — solo, with
// warm-start/pruning explicitly disabled, and as a random shard
// partition merged in order — and requires byte-identical record files.
// This is the cross-validation property the distributed coordinator and
// the resume machinery rest on for the extended fault models.
func modelIdentityCheck(t *testing.T, rng *rand.Rand, v workload.Variant, m inject.FaultModel, n int, seed uint64) {
	t.Helper()
	base := Config{Variant: v, Experiments: n, Seed: seed, Model: m}
	solo, err := Run(base)
	if err != nil {
		t.Fatalf("%s/%s solo: %v", v, m, err)
	}
	var want bytes.Buffer
	if err := WriteRecords(&want, solo.Records); err != nil {
		t.Fatal(err)
	}

	// Explicitly disabled fast paths must change nothing: the model
	// already declined them, and the decline must be total.
	disabled := base
	disabled.DisableWarmStart = true
	disabled.DisablePrune = true
	plain, err := Run(disabled)
	if err != nil {
		t.Fatalf("%s/%s disabled: %v", v, m, err)
	}
	var got bytes.Buffer
	if err := WriteRecords(&got, plain.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("%s/%s: -no-prune/-no-warm-start run differs from the declined solo run", v, m)
	}

	// Sharded execution in a random partition, merged in shard order.
	got.Reset()
	var merged []Record
	for _, sh := range randomPartition(rng, n, 6) {
		cfg := base
		cfg.Shard = &Shard{Start: sh.Start, End: sh.End}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s shard %+v: %v", v, m, sh, err)
		}
		merged = append(merged, res.Records...)
	}
	if err := WriteRecords(&got, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("%s/%s: sharded merge differs from solo run", v, m)
	}
}

// TestModelShardMergeByteIdentical is the fixed-seed smoke version of
// the cross-validation property, always on.
func TestModelShardMergeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8822))
	for _, m := range nonDefaultModels {
		modelIdentityCheck(t, rng, workload.AlgorithmI, m, 48, 321)
	}
}

// TestModelCrossVal is the randomized cross-validation job: CI sets
// MODEL_CROSSVAL_TRIALS (and optionally MODEL_CROSSVAL_SEED) to sweep
// random (variant, model, n, seed) points; locally it defaults to a
// handful of trials.
func TestModelCrossVal(t *testing.T) {
	trials := 3
	if s := os.Getenv("MODEL_CROSSVAL_TRIALS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("MODEL_CROSSVAL_TRIALS=%q: %v", s, err)
		}
		trials = v
	}
	seed := int64(20260808)
	if s := os.Getenv("MODEL_CROSSVAL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MODEL_CROSSVAL_SEED=%q: %v", s, err)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))
	variants := workload.Variants()
	for i := 0; i < trials; i++ {
		v := variants[rng.Intn(len(variants))]
		m := nonDefaultModels[rng.Intn(len(nonDefaultModels))]
		n := 20 + rng.Intn(40)
		campaignSeed := rng.Uint64()
		t.Logf("trial %d: %s/%s n=%d seed=%d", i, v, m, n, campaignSeed)
		modelIdentityCheck(t, rng, v, m, n, campaignSeed)
	}
}

// TestDetectorCampaign pins the detector integration end to end: a
// PC-model campaign with both families armed classifies some faults as
// detector catches, reports verdict counts, and stamps the model on
// every record.
func TestDetectorCampaign(t *testing.T) {
	res, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 200, Seed: 9,
		Model: workload.ModelPC, Detect: detect.Spec{CFE: true, Automaton: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detect == nil {
		t.Fatal("Result.Detect is nil with detectors armed")
	}
	d := res.Detect
	if d.CFEDetected == 0 {
		t.Error("signature monitoring caught nothing across 200 PC faults")
	}
	if d.BlockEntries == 0 || d.Overhead <= 0 {
		t.Errorf("overhead model not populated: %+v", d)
	}
	cfe, auto := TallyDetect(res.Records)
	if cfe != d.CFEDetected || auto != d.AutomatonDetected {
		t.Errorf("TallyDetect (%d, %d) disagrees with stats (%d, %d)",
			cfe, auto, d.CFEDetected, d.AutomatonDetected)
	}
	if res.Prune != nil || res.WarmStart != nil {
		t.Error("fast paths ran with detectors armed")
	}
}

// TestDetectorCampaignDeterministic pins that armed detectors keep the
// campaign deterministic: same config, identical record bytes.
func TestDetectorCampaignDeterministic(t *testing.T) {
	cfg := Config{Variant: workload.AlgorithmII, Experiments: 60, Seed: 13,
		Model: workload.ModelPC, Detect: detect.Spec{CFE: true}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := WriteRecords(&ab, a.Records); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecords(&bb, b.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Error("detector campaign is not deterministic")
	}
}

// TestSWIFIRejectsRuntimeModels pins that image-level injection refuses
// the runtime-only models instead of silently running default flips.
func TestSWIFIRejectsRuntimeModels(t *testing.T) {
	for _, m := range []inject.FaultModel{workload.ModelPC, workload.ModelTransient} {
		_, err := RunSWIFI(Config{Variant: workload.AlgorithmI, Experiments: 10, Seed: 3,
			Model: m})
		if err == nil {
			t.Errorf("SWIFI accepted runtime-only model %s", m)
		}
	}
	if _, err := RunSWIFI(Config{Variant: workload.AlgorithmI, Experiments: 10, Seed: 3,
		Model: workload.ModelBurst, BurstWidth: 2}); err != nil {
		t.Errorf("SWIFI rejected the burst model: %v", err)
	}
}

// TestTraceRejectsDetectors pins the explicit decline for detail-mode
// replay, which cannot arm monitors.
func TestTraceRejectsDetectors(t *testing.T) {
	cfg := Config{Variant: workload.AlgorithmI, Experiments: 5, Seed: 1,
		Detect: detect.Spec{CFE: true},
		Trace:  &TraceConfig{OnTrace: func(Record, *trace.Trace) {}},
	}
	if _, err := Run(cfg); err == nil {
		t.Error("trace mode accepted armed detectors")
	}
}
