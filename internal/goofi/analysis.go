package goofi

import (
	"fmt"
	"strings"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/stats"
)

// Outcome category labels used in the analysis counters. Detected
// errors are keyed "detected:<MECHANISM>".
const (
	catLatent        = "latent"
	catOverwritten   = "overwritten"
	catPermanent     = "uwr-permanent"
	catSemiPermanent = "uwr-semi-permanent"
	catTransient     = "uwr-transient"
	catInsignificant = "uwr-insignificant"
	detectedPrefix   = "detected:"
)

// Analysis aggregates a campaign's records per injection region, the
// way Tables 2 and 3 of the paper are organised.
type Analysis struct {
	Variant string
	Cache   *stats.Counter
	Regs    *stats.Counter
	Total   *stats.Counter
}

// Analyze tallies the records of a campaign.
func Analyze(recs []Record) *Analysis {
	a := &Analysis{
		Cache: stats.NewCounter(),
		Regs:  stats.NewCounter(),
		Total: stats.NewCounter(),
	}
	for _, r := range recs {
		if a.Variant == "" {
			a.Variant = r.Variant
		}
		cat := r.Outcome
		if r.Outcome == classify.Detected.String() {
			cat = detectedPrefix + r.Mechanism
		}
		switch cpu.Region(r.Region) {
		case cpu.RegionCache:
			a.Cache.Add(cat)
		case cpu.RegionRegisters:
			a.Regs.Add(cat)
		}
		a.Total.Add(cat)
	}
	return a
}

// detectedCategories returns every "detected:<mech>" category for
// Table 1's mechanism rows.
func detectedCategories() []string {
	mechs := cpu.Mechanisms()
	out := make([]string, len(mechs))
	for i, m := range mechs {
		out[i] = detectedPrefix + string(m)
	}
	return out
}

// severeCategories and minorCategories group the value failures.
func severeCategories() []string {
	return []string{catPermanent, catSemiPermanent}
}

func minorCategories() []string {
	return []string{catTransient, catInsignificant}
}

func valueFailureCategories() []string {
	return append(severeCategories(), minorCategories()...)
}

// DetectedProportion returns the share of experiments detected by any
// EDM in counter c.
func DetectedProportion(c *stats.Counter) stats.Proportion {
	return c.SumProportion(detectedCategories()...)
}

// NonEffectiveProportion returns the share of latent plus overwritten
// errors.
func NonEffectiveProportion(c *stats.Counter) stats.Proportion {
	return c.SumProportion(catLatent, catOverwritten)
}

// ValueFailureProportion returns the share of undetected wrong results
// of any grade.
func ValueFailureProportion(c *stats.Counter) stats.Proportion {
	return c.SumProportion(valueFailureCategories()...)
}

// SevereProportion returns the share of severe undetected wrong
// results.
func SevereProportion(c *stats.Counter) stats.Proportion {
	return c.SumProportion(severeCategories()...)
}

// RenderRegionTable renders the analysis in the layout of Tables 2/3 of
// the paper: one column group per injection region plus the total.
func (a *Analysis) RenderRegionTable(title string) string {
	tbl := stats.NewTable(title,
		"Type of Errors and Wrong Results", "Cache", "Registers", "Total")
	cols := []*stats.Counter{a.Cache, a.Regs, a.Total}

	row := func(label string, cats ...string) {
		cells := make([]string, 0, 4)
		cells = append(cells, label)
		for _, c := range cols {
			cells = append(cells, c.SumProportion(cats...).String())
		}
		tbl.AddRow(cells...)
	}

	row("Latent Errors", catLatent)
	row("Overwritten Errors", catOverwritten)
	row("Total (Non Effective Errors)", catLatent, catOverwritten)
	tbl.AddSeparator()
	for _, mech := range cpu.Mechanisms() {
		row(string(mech), detectedPrefix+string(mech))
	}
	row("Total (Detected Errors)", detectedCategories()...)
	tbl.AddSeparator()
	row("Undetected Wrong Results (Severe)", severeCategories()...)
	row("Undetected Wrong Results (Minor)", minorCategories()...)
	detEff := append(detectedCategories(), valueFailureCategories()...)
	row("Total (Effective Errors)", detEff...)
	tbl.AddSeparator()
	tbl.AddRow("Total (Faults Injected)",
		fmt.Sprintf("%d", a.Cache.Total()),
		fmt.Sprintf("%d", a.Regs.Total()),
		fmt.Sprintf("%d", a.Total.Total()))
	row("Total (Undetected Wrong Results)", valueFailureCategories()...)

	// Coverage = 1 − P(undetected wrong result), as in the paper.
	cover := make([]string, 0, 4)
	cover = append(cover, "Coverage")
	for _, c := range cols {
		p := ValueFailureProportion(c)
		inv := stats.Proportion{Count: p.N - p.Count, N: p.N}
		cover = append(cover, inv.String())
	}
	tbl.AddRow(cover...)
	return tbl.String()
}

// RenderComparisonTable renders Table 4 of the paper: Algorithm I
// versus Algorithm II with value failures split by grade.
func RenderComparisonTable(a1, a2 *Analysis) string {
	tbl := stats.NewTable("Comparison of results (Table 4)",
		"", fmt.Sprintf("Algorithm I (%s)", a1.Variant), fmt.Sprintf("Algorithm II (%s)", a2.Variant))

	row := func(label string, cats ...string) {
		tbl.AddRow(label,
			a1.Total.SumProportion(cats...).String(),
			a2.Total.SumProportion(cats...).String())
	}
	row("Total (Non Effective Errors)", catLatent, catOverwritten)
	row("Total (Detected Errors)", detectedCategories()...)
	tbl.AddSeparator()
	row("Undetected Wrong Results (Permanent)", catPermanent)
	row("Undetected Wrong Results (Semi-Permanent)", catSemiPermanent)
	row("Undetected Wrong Results (Transient)", catTransient)
	row("Undetected Wrong Results (Insignificant)", catInsignificant)
	row("Total (Undetected Wrong Results)", valueFailureCategories()...)
	tbl.AddSeparator()
	detEff := append(detectedCategories(), valueFailureCategories()...)
	row("Total (Effective Errors)", detEff...)
	tbl.AddRow("Total (Faults Injected)",
		fmt.Sprintf("%d", a1.Total.Total()),
		fmt.Sprintf("%d", a2.Total.Total()))
	return tbl.String()
}

// Summary returns the headline numbers of a campaign in the style of
// the paper's abstract: the share of value failures that were severe.
func (a *Analysis) Summary() string {
	var b strings.Builder
	vf := ValueFailureProportion(a.Total)
	sev := SevereProportion(a.Total)
	fmt.Fprintf(&b, "variant %s: %d faults injected\n", a.Variant, a.Total.Total())
	fmt.Fprintf(&b, "  value failures: %s\n", vf)
	fmt.Fprintf(&b, "  severe value failures: %s\n", sev)
	if vf.Count > 0 {
		share := stats.Proportion{Count: sev.Count, N: vf.Count}
		fmt.Fprintf(&b, "  severe share of value failures: %s\n", share)
	}
	return b.String()
}
