package goofi

import (
	"sync"
	"testing"
	"time"

	"ctrlguard/internal/workload"
)

// chaosConfig is a small campaign with test-friendly retry timing.
func chaosConfig(n int, seed uint64) Config {
	return Config{
		Variant:      workload.AlgorithmI,
		Experiments:  n,
		Seed:         seed,
		Workers:      2,
		RetryBackoff: time.Millisecond,
		// Chaos tests count exact per-experiment retries/panics; pruning
		// would skip some experiments entirely.
		DisablePrune: true,
	}
}

// TestChaosPanicRetriedToCleanResult kills (panics) every experiment's
// first attempt. Isolation must retry each one and the final records
// must be identical to an undisturbed campaign — a worker crash costs a
// retry, never a result.
func TestChaosPanicRetriedToCleanResult(t *testing.T) {
	const n, seed = 30, 11
	clean, err := Run(chaosConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Faults.Zero() {
		t.Fatalf("undisturbed campaign reported faults: %+v", clean.Faults)
	}

	var mu sync.Mutex
	firstAttempt := make(map[int]bool)
	cfg := chaosConfig(n, seed)
	cfg.Chaos = func(id, attempt int) {
		mu.Lock()
		defer mu.Unlock()
		if !firstAttempt[id] {
			firstAttempt[id] = true
			panic("chaos: worker killed mid-experiment")
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Panicked != n || res.Faults.Retried != n {
		t.Errorf("faults = %+v, want %d panicked and %d retried", res.Faults, n, n)
	}
	if res.Faults.Abandoned != 0 {
		t.Errorf("abandoned = %d, want 0 (every retry succeeds)", res.Faults.Abandoned)
	}
	if len(res.Records) != n {
		t.Fatalf("%d records, want %d", len(res.Records), n)
	}
	for i, rec := range res.Records {
		if rec != clean.Records[i] {
			t.Fatalf("record %d differs under chaos: %+v vs %+v", i, rec, clean.Records[i])
		}
	}
}

// TestChaosPersistentPanicAbandons makes one experiment panic on every
// attempt. It must be recorded as abandoned — with its injection
// coordinates and the panic message — while the rest of the campaign is
// untouched.
func TestChaosPersistentPanicAbandons(t *testing.T) {
	const n, seed, victim = 20, 5, 7
	clean, err := Run(chaosConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}

	cfg := chaosConfig(n, seed)
	cfg.Chaos = func(id, attempt int) {
		if id == victim {
			panic("chaos: unrecoverable worker bug")
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Abandoned != 1 {
		t.Fatalf("faults = %+v, want exactly 1 abandoned", res.Faults)
	}
	if want := DefaultExperimentRetries + 1; res.Faults.Panicked != want {
		t.Errorf("panicked = %d, want %d (initial attempt + retries)", res.Faults.Panicked, want)
	}
	for i, rec := range res.Records {
		if i == victim {
			if rec.Outcome != OutcomeAbandoned {
				t.Fatalf("victim outcome = %q, want %q", rec.Outcome, OutcomeAbandoned)
			}
			// The abandoned record still names the fault it stood for.
			want := clean.Records[victim]
			if rec.Region != want.Region || rec.Element != want.Element || rec.Bit != want.Bit || rec.At != want.At {
				t.Errorf("abandoned record lost its injection: %+v vs %+v", rec, want)
			}
			continue
		}
		if rec != clean.Records[i] {
			t.Fatalf("bystander record %d differs: %+v vs %+v", i, rec, clean.Records[i])
		}
	}
}

// TestChaosHungExperimentDeadline hangs one experiment's every attempt
// past the per-experiment deadline; isolation must time it out, retry,
// and finally abandon it without wedging the campaign.
func TestChaosHungExperimentDeadline(t *testing.T) {
	const n, seed, victim = 10, 3, 2
	cfg := chaosConfig(n, seed)
	// Generous against a real experiment's few milliseconds, tight
	// against the chaos hang.
	cfg.ExperimentTimeout = 250 * time.Millisecond
	cfg.ExperimentRetries = 1
	cfg.Chaos = func(id, attempt int) {
		if id == victim {
			time.Sleep(400 * time.Millisecond) // hang well past the deadline
		}
	}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = Run(cfg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("campaign wedged on a hung experiment")
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TimedOut != 2 || res.Faults.Abandoned != 1 {
		t.Fatalf("faults = %+v, want 2 timed out (attempt + 1 retry), 1 abandoned", res.Faults)
	}
	if res.Records[victim].Outcome != OutcomeAbandoned {
		t.Fatalf("victim outcome = %q, want abandoned", res.Records[victim].Outcome)
	}
}

// TestResumeSkipsCompletedExperiments replays the server's restart
// path: a prefix of a previous run's records is passed as Resume, and
// the campaign must reuse them verbatim, re-run only the missing ones,
// and land byte-identical to an uninterrupted run.
func TestResumeSkipsCompletedExperiments(t *testing.T) {
	const n, seed = 40, 21
	clean, err := Run(chaosConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}

	cfg := chaosConfig(n, seed)
	cfg.Resume = append([]Record(nil), clean.Records[:25]...)
	var reused []Record
	cfg.OnResume = func(rs []Record) { reused = append(reused, rs...) }
	ran := make(map[int]bool)
	var mu sync.Mutex
	cfg.Chaos = func(id, attempt int) {
		mu.Lock()
		ran[id] = true
		mu.Unlock()
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Resumed != 25 || len(reused) != 25 {
		t.Fatalf("resumed = %d (OnResume saw %d), want 25", res.Faults.Resumed, len(reused))
	}
	for id := 0; id < 25; id++ {
		if ran[id] {
			t.Fatalf("experiment %d re-ran despite a resumable record", id)
		}
	}
	for id := 25; id < n; id++ {
		if !ran[id] {
			t.Fatalf("experiment %d never ran", id)
		}
	}
	for i, rec := range res.Records {
		if rec != clean.Records[i] {
			t.Fatalf("record %d differs after resume: %+v vs %+v", i, rec, clean.Records[i])
		}
	}
}

// TestResumeRejectsForeignAndAbandonedRecords: records from a different
// seed (mismatched injections) and abandoned placeholders must not be
// reused — both are re-run.
func TestResumeRejectsForeignAndAbandonedRecords(t *testing.T) {
	const n = 15
	foreign, err := Run(chaosConfig(n, 999)) // different seed -> different injections
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(chaosConfig(n, 4))
	if err != nil {
		t.Fatal(err)
	}

	cfg := chaosConfig(n, 4)
	cfg.Resume = append([]Record(nil), foreign.Records...)
	abandoned := clean.Records[3]
	abandoned.Outcome = OutcomeAbandoned
	cfg.Resume = append(cfg.Resume, abandoned)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Resumed != 0 {
		t.Fatalf("resumed %d foreign/abandoned records, want 0", res.Faults.Resumed)
	}
	for i, rec := range res.Records {
		if rec != clean.Records[i] {
			t.Fatalf("record %d wrong after rejecting foreign resume: %+v vs %+v", i, rec, clean.Records[i])
		}
	}
}

// TestResumeNewestRecordWins: when a record file holds two lines for
// one experiment (a crash between resume cycles), the later line is the
// newer re-run and must win.
func TestResumeNewestRecordWins(t *testing.T) {
	const n, seed = 10, 8
	clean, err := Run(chaosConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	stale := clean.Records[0]
	stale.Outcome = OutcomeAbandoned // old abandoned line...
	cfg := chaosConfig(n, seed)
	cfg.Resume = []Record{stale, clean.Records[0]} // ...then its good re-run
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1 (the newest line)", res.Faults.Resumed)
	}
	if res.Records[0] != clean.Records[0] {
		t.Fatalf("record 0 = %+v, want the re-run %+v", res.Records[0], clean.Records[0])
	}
}
