package goofi

import (
	"fmt"

	"ctrlguard/internal/detect"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/workload"
)

// EngineVersion names the current record-producing behavior of the
// engine. Two runs of the same resolved spec under the same
// EngineVersion produce byte-identical record files, so the pair
// (EngineVersion, canonical spec) is a sound content address for
// campaign results. Bump it whenever a change alters the records a
// spec produces — new fields, reordered experiments, different
// outcome classification — and stale cache entries simply stop being
// addressable.
const EngineVersion = "goofi/1"

// CampaignSpec is the external, serialisable description of a campaign,
// shared by cmd/goofi's flag parsing and ctrlguardd's JSON API so both
// front ends validate requests identically.
type CampaignSpec struct {
	// Alg is shorthand for the paper's algorithms: 1 or 2. Mutually
	// exclusive with Variant; 0 means unset.
	Alg int `json:"alg,omitempty"`

	// Variant names the workload variant (alg1, alg2, ...). Empty with
	// Alg == 0 defaults to Algorithm I.
	Variant string `json:"variant,omitempty"`

	// Experiments is the number of faults to inject (ignored when
	// Precision is set).
	Experiments int `json:"n"`

	// Seed makes the campaign reproducible.
	Seed uint64 `json:"seed"`

	// Workers bounds parallel experiments (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// Precision, if positive, runs a sequential campaign until the
	// severe-rate 95% CI half-width is at or below this value instead
	// of a fixed experiment count. Must be below 1.
	Precision float64 `json:"precision,omitempty"`

	// MaxExperiments bounds a precision-driven campaign's total effort
	// (0 = the sequential campaign's default).
	MaxExperiments int `json:"maxExperiments,omitempty"`

	// DisableWarmStart turns off the checkpoint fast path, replaying
	// every experiment from iteration 0. Results are byte-identical
	// either way; the knob exists for benchmarking and validation.
	DisableWarmStart bool `json:"disableWarmStart,omitempty"`

	// DisablePrune turns off fault-space pruning, simulating every
	// injection instead of synthesizing records for provably dead
	// faults and collapsing equivalence classes. Aggregate statistics
	// are byte-identical either way; the knob exists for benchmarking
	// and cross-validation.
	DisablePrune bool `json:"disablePrune,omitempty"`

	// DisableLockstep turns off lockstep batching, running every
	// simulated experiment solo instead of sharing one golden-prefix
	// replay per batch. Records are byte-identical either way; the knob
	// exists for benchmarking and cross-validation.
	DisableLockstep bool `json:"disableLockstep,omitempty"`

	// LockstepK bounds how many experiments share one lockstep batch
	// (0 = derived from the campaign size and worker count).
	LockstepK int `json:"lockstepK,omitempty"`

	// Model selects the fault model ("" or "bitflip" = the paper's
	// permanent single bit-flip; "pc", "transient", "burst" are the
	// attack-style extensions — see inject.Models). Non-default models
	// decline the prune and warm-start fast paths, whose golden-run
	// analyses assume permanent single flips.
	Model string `json:"model,omitempty"`

	// BurstWidth is the adjacent-bit span of the burst model (0 =
	// workload.DefaultBurstWidth); it only applies to Model "burst".
	BurstWidth int `json:"burstWidth,omitempty"`

	// Detector arms in-loop detectors for every experiment: "cfe",
	// "automaton", or "cfe+automaton" (see detect.Families). Armed
	// campaigns decline prune and warm-start: both fast paths skip
	// instructions the detectors must see.
	Detector string `json:"detector,omitempty"`
}

// Sequential reports whether the spec asks for a precision-driven
// (sequential) campaign rather than a fixed experiment count.
func (s CampaignSpec) Sequential() bool { return s.Precision > 0 }

// Resolve validates the spec and turns it into a campaign Config.
func (s CampaignSpec) Resolve() (Config, error) {
	v, err := ResolveVariant(s.Alg, s.Variant)
	if err != nil {
		return Config{}, err
	}
	if s.Precision < 0 || s.Precision >= 1 {
		return Config{}, fmt.Errorf("goofi: precision target must be in (0, 1), got %v", s.Precision)
	}
	if !s.Sequential() && s.Experiments <= 0 {
		return Config{}, fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", s.Experiments)
	}
	if s.Workers < 0 {
		return Config{}, fmt.Errorf("goofi: workers must be non-negative, got %d", s.Workers)
	}
	if s.MaxExperiments < 0 {
		return Config{}, fmt.Errorf("goofi: maxExperiments must be non-negative, got %d", s.MaxExperiments)
	}
	if s.LockstepK < 0 {
		return Config{}, fmt.Errorf("goofi: lockstepK must be non-negative, got %d", s.LockstepK)
	}
	model, err := inject.ParseModel(s.Model)
	if err != nil {
		return Config{}, err
	}
	if s.BurstWidth < 0 || s.BurstWidth > 32 {
		return Config{}, fmt.Errorf("goofi: burstWidth must be in [0, 32], got %d", s.BurstWidth)
	}
	if s.BurstWidth != 0 && model != inject.ModelBurst {
		return Config{}, fmt.Errorf("goofi: burstWidth only applies to the %q fault model, not %q",
			inject.ModelBurst, model)
	}
	det, err := detect.ParseSpec(s.Detector)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Variant:          v,
		Experiments:      s.Experiments,
		Seed:             s.Seed,
		Workers:          s.Workers,
		DisableWarmStart: s.DisableWarmStart,
		DisablePrune:     s.DisablePrune,
		DisableLockstep:  s.DisableLockstep,
		LockstepK:        s.LockstepK,
		Model:            model,
		BurstWidth:       s.BurstWidth,
		Detect:           det,
	}, nil
}

// ResolveVariant maps the two ways of naming a workload — the -alg
// shorthand (1 or 2) or an explicit variant name — onto a validated
// workload.Variant. Both unset defaults to Algorithm I.
func ResolveVariant(alg int, variant string) (workload.Variant, error) {
	switch {
	case variant != "" && alg != 0:
		return "", fmt.Errorf("goofi: use either alg or variant, not both")
	case alg == 1:
		return workload.AlgorithmI, nil
	case alg == 2:
		return workload.AlgorithmII, nil
	case alg != 0:
		return "", fmt.Errorf("goofi: unknown algorithm %d (want 1 or 2)", alg)
	case variant != "":
		v := workload.Variant(variant)
		if _, ok := workload.Source(v); !ok {
			return "", fmt.Errorf("goofi: unknown variant %q (have %v)", variant, workload.Variants())
		}
		return v, nil
	default:
		return workload.AlgorithmI, nil
	}
}
