package goofi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The original GOOFI logged every experiment to a SQL database; this
// reproduction stores records as JSON lines, one experiment per line,
// which is equally queryable and dependency-free.

// WriteRecords streams records to w as JSON lines.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("goofi: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// TruncatedError reports a JSONL stream whose final line failed to
// parse — the signature of a campaign log cut short mid-write by a
// crash or interrupt. The records parsed before it are still returned
// alongside the error, so callers can tolerate-and-report.
type TruncatedError struct {
	Line int   // 1-based line number of the unparsable final line
	Err  error // the underlying JSON error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("goofi: truncated record on final line %d: %v", e.Line, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// ReadRecords parses JSON-lines records from r.
//
// A malformed line in the middle of the stream is a hard error. A
// malformed *final* line — a record cut short by a crash-interrupted
// campaign — returns the successfully parsed records together with a
// *TruncatedError naming the line, so a partial campaign database
// remains analysable.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var trunc *TruncatedError
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if trunc != nil {
			// The bad line was not the last one: corrupt, not truncated.
			return nil, fmt.Errorf("goofi: decode record on line %d: %w", trunc.Line, trunc.Err)
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			trunc = &TruncatedError{Line: line, Err: err}
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("goofi: read records: %w", err)
	}
	if trunc != nil {
		return out, trunc
	}
	return out, nil
}

// SaveRecords writes records to path, creating or truncating it.
func SaveRecords(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("goofi: create %s: %w", path, err)
	}
	if err := WriteRecords(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRecords reads records from path.
func LoadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("goofi: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadRecords(f)
}
