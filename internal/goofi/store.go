package goofi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"ctrlguard/internal/fsatomic"
)

// The original GOOFI logged every experiment to a SQL database; this
// reproduction stores records as JSON lines, one experiment per line,
// which is equally queryable and dependency-free.

// WriteRecords streams records to w as JSON lines.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("goofi: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// TruncatedError reports a JSONL stream whose final line failed to
// parse — the signature of a campaign log cut short mid-write by a
// crash or interrupt. The records parsed before it are still returned
// alongside the error, so callers can tolerate-and-report.
type TruncatedError struct {
	Line int   // 1-based line number of the unparsable final line
	Err  error // the underlying JSON error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("goofi: truncated record on final line %d: %v", e.Line, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// ReadRecords parses JSON-lines records from r.
//
// A malformed line in the middle of the stream is a hard error. A
// malformed *final* line — a record cut short by a crash-interrupted
// campaign — returns the successfully parsed records together with a
// *TruncatedError naming the line, so a partial campaign database
// remains analysable.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var trunc *TruncatedError
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if trunc != nil {
			// The bad line was not the last one: corrupt, not truncated.
			return nil, fmt.Errorf("goofi: decode record on line %d: %w", trunc.Line, trunc.Err)
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			trunc = &TruncatedError{Line: line, Err: err}
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("goofi: read records: %w", err)
	}
	if trunc != nil {
		return out, trunc
	}
	return out, nil
}

// RecordScanner streams records from a JSONL reader one at a time, so
// paginating a large record file costs O(page) memory instead of
// loading the whole campaign. Its truncation semantics match
// ReadRecords: a malformed final line yields a *TruncatedError from
// Err() after the intact records have been scanned, while corruption
// mid-stream is a hard error.
type RecordScanner struct {
	br   *bufio.Reader
	rec  Record
	line int
	err  error
	done bool
}

// NewRecordScanner wraps r for streaming record reads.
func NewRecordScanner(r io.Reader) *RecordScanner {
	return &RecordScanner{br: bufio.NewReaderSize(r, 64*1024)}
}

// Scan advances to the next record, reporting false at end of stream
// or on error (check Err).
func (s *RecordScanner) Scan() bool {
	for !s.done && s.err == nil {
		raw, err := s.br.ReadBytes('\n')
		atEOF := errors.Is(err, io.EOF)
		if err != nil && !atEOF {
			s.err = fmt.Errorf("goofi: read records: %w", err)
			return false
		}
		s.done = atEOF
		s.line++
		b := bytes.TrimSpace(raw)
		if len(b) == 0 {
			continue
		}
		if uerr := json.Unmarshal(b, &s.rec); uerr != nil {
			if s.lastDataLine() {
				s.err = &TruncatedError{Line: s.line, Err: uerr}
			} else {
				s.err = fmt.Errorf("goofi: decode record on line %d: %w", s.line, uerr)
			}
			return false
		}
		return true
	}
	return false
}

// lastDataLine reports whether the line just read is the stream's
// final non-blank line — the only place a parse failure means
// "truncated" rather than "corrupt".
func (s *RecordScanner) lastDataLine() bool {
	if s.done {
		return true
	}
	for {
		raw, err := s.br.ReadBytes('\n')
		if len(bytes.TrimSpace(raw)) > 0 {
			return false
		}
		if err != nil {
			s.done = true
			return true
		}
		s.line++
	}
}

// Record is the record most recently scanned.
func (s *RecordScanner) Record() Record { return s.rec }

// Err returns the error that stopped the scan, if any.
func (s *RecordScanner) Err() error { return s.err }

// SaveRecords writes records to path via write-temp/fsync/rename, so a
// crash mid-save can never leave a torn record file: readers see either
// the previous complete file or the new one.
func SaveRecords(path string, recs []Record) error {
	return fsatomic.WriteFile(path, func(w io.Writer) error {
		return WriteRecords(w, recs)
	})
}

// LoadRecords reads records from path.
func LoadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("goofi: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadRecords(f)
}

// appenderSyncEvery is how many appended records may ride in the OS
// page cache before the appender fsyncs — the trade between fsync cost
// and how many experiments a crash can force a resume to re-run.
const appenderSyncEvery = 64

// RecordAppender persists records incrementally, one JSON line per
// completed experiment, so a crash mid-campaign leaves a salvageable
// partial record file instead of nothing. Opening an existing file —
// the resume path — salvages its intact records and truncates a
// crash-torn final line, so appends always continue a well-formed
// stream. Appends are flushed per record and fsync'd every
// appenderSyncEvery records and on Close.
type RecordAppender struct {
	f       *os.File
	bw      *bufio.Writer
	size    int64
	unsynct int
}

// OpenRecordAppender opens path for incremental record persistence and
// returns the appender together with the records salvaged from an
// earlier, possibly crash-interrupted run (nil for a fresh file). A
// torn final line is dropped and truncated away; corruption elsewhere
// is a hard error.
func OpenRecordAppender(path string) (*RecordAppender, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("goofi: open %s: %w", path, err)
	}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("goofi: read %s: %w", path, err)
	}
	recs, err := ReadRecords(bytes.NewReader(b))
	good := int64(len(b))
	if err != nil {
		var trunc *TruncatedError
		if !errors.As(err, &trunc) {
			f.Close()
			return nil, nil, err
		}
		good = tornOffset(b)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("goofi: repair %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("goofi: seek %s: %w", path, err)
	}
	a := &RecordAppender{f: f, bw: bufio.NewWriter(f), size: good}
	return a, recs, nil
}

// tornOffset returns the byte offset at which a stream's final,
// unparsable line begins — the truncation point that removes exactly
// the torn tail (including any trailing blank lines after it).
func tornOffset(b []byte) int64 {
	end := len(b)
	for end > 0 {
		nl := bytes.LastIndexByte(b[:end], '\n')
		if len(bytes.TrimSpace(b[nl+1:end])) > 0 {
			return int64(nl + 1)
		}
		if nl < 0 {
			break
		}
		end = nl
	}
	return 0
}

// Append writes one record and flushes it to the OS; every
// appenderSyncEvery records the file is also fsync'd.
func (a *RecordAppender) Append(rec Record) error {
	// Marshal-then-write (byte-identical to json.Encoder.Encode) so the
	// appender can account the file size for segment rolling.
	b, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("goofi: append record: %w", err)
	}
	b = append(b, '\n')
	if _, err := a.bw.Write(b); err != nil {
		return fmt.Errorf("goofi: append record: %w", err)
	}
	a.size += int64(len(b))
	if err := a.bw.Flush(); err != nil {
		return fmt.Errorf("goofi: flush record: %w", err)
	}
	a.unsynct++
	if a.unsynct >= appenderSyncEvery {
		a.unsynct = 0
		if err := a.f.Sync(); err != nil {
			return fmt.Errorf("goofi: fsync records: %w", err)
		}
	}
	return nil
}

// Size is the record file's current length in bytes, counting both
// the salvaged prefix and every append so far.
func (a *RecordAppender) Size() int64 { return a.size }

// Close flushes, fsyncs, and closes the file.
func (a *RecordAppender) Close() error {
	if a.f == nil {
		return nil
	}
	var first error
	if err := a.bw.Flush(); err != nil {
		first = err
	}
	if err := a.f.Sync(); err != nil && first == nil {
		first = err
	}
	if err := a.f.Close(); err != nil && first == nil {
		first = err
	}
	a.f = nil
	return first
}
