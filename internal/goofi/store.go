package goofi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The original GOOFI logged every experiment to a SQL database; this
// reproduction stores records as JSON lines, one experiment per line,
// which is equally queryable and dependency-free.

// WriteRecords streams records to w as JSON lines.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("goofi: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords parses JSON-lines records from r.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("goofi: decode record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// SaveRecords writes records to path, creating or truncating it.
func SaveRecords(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("goofi: create %s: %w", path, err)
	}
	if err := WriteRecords(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadRecords reads records from path.
func LoadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("goofi: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadRecords(f)
}
