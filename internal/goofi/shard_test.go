package goofi

import (
	"bytes"
	"math/rand"
	"testing"

	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

func TestSplitShards(t *testing.T) {
	cases := []struct {
		total, size int
		want        []Shard
	}{
		{0, 10, nil},
		{10, 0, []Shard{{0, 10}}},
		{10, 20, []Shard{{0, 10}}},
		{10, 10, []Shard{{0, 10}}},
		{10, 4, []Shard{{0, 4}, {4, 8}, {8, 10}}},
		{9, 3, []Shard{{0, 3}, {3, 6}, {6, 9}}},
	}
	for _, c := range cases {
		got := SplitShards(c.total, c.size)
		if len(got) != len(c.want) {
			t.Fatalf("SplitShards(%d, %d) = %v, want %v", c.total, c.size, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitShards(%d, %d)[%d] = %v, want %v", c.total, c.size, i, got[i], c.want[i])
			}
		}
	}
}

func TestShardValidation(t *testing.T) {
	base := Config{Variant: workload.AlgorithmI, Experiments: 10, Seed: 1}
	bad := []Shard{{-1, 5}, {5, 5}, {6, 4}, {0, 11}}
	for _, s := range bad {
		cfg := base
		cfg.Shard = &Shard{Start: s.Start, End: s.End}
		if _, err := Run(cfg); err == nil {
			t.Errorf("shard %+v accepted, want error", s)
		}
	}
	cfg := base
	cfg.Shard = &Shard{Start: 0, End: 10}
	cfg.Trace = &TraceConfig{OnTrace: func(Record, *trace.Trace) {}}
	if _, err := Run(cfg); err == nil {
		t.Error("shard with trace accepted, want error")
	}
}

// randomPartition cuts [0, total) into contiguous shards at random
// boundaries.
func randomPartition(rng *rand.Rand, total, maxShards int) []Shard {
	n := 2 + rng.Intn(maxShards-1)
	cuts := map[int]bool{}
	for len(cuts) < n-1 {
		cuts[1+rng.Intn(total-1)] = true
	}
	bounds := []int{0}
	for c := 1; c < total; c++ {
		if cuts[c] {
			bounds = append(bounds, c)
		}
	}
	bounds = append(bounds, total)
	shards := make([]Shard, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		shards = append(shards, Shard{Start: bounds[i], End: bounds[i+1]})
	}
	return shards
}

// TestShardPartitionMergeByteIdentical is the property distributed
// campaigns rest on: for ANY contiguous partition of the plan, running
// each shard independently and concatenating the shards' records in
// shard order serializes to the byte-identical record file of the
// unsharded run — pruning classes spanning shards, warm start, and all.
func TestShardPartitionMergeByteIdentical(t *testing.T) {
	variants := []struct {
		v workload.Variant
		n int
	}{
		{workload.AlgorithmI, 90},
		{workload.AlgorithmII, 70},
		{workload.MIMOAlgorithmII, 50},
	}
	rng := rand.New(rand.NewSource(20260808))
	for _, tc := range variants {
		solo, err := Run(Config{Variant: tc.v, Experiments: tc.n, Seed: 4242})
		if err != nil {
			t.Fatalf("%s solo: %v", tc.v, err)
		}
		var want bytes.Buffer
		if err := WriteRecords(&want, solo.Records); err != nil {
			t.Fatal(err)
		}

		partitions := [][]Shard{
			{{0, tc.n}},                               // trivial
			{{0, tc.n / 2}, {tc.n / 2, tc.n}},         // halves
			{{0, 1}, {1, tc.n - 1}, {tc.n - 1, tc.n}}, // singleton edges
			randomPartition(rng, tc.n, 6),             // random
			randomPartition(rng, tc.n, 9),             // random, finer
		}
		for pi, shards := range partitions {
			var merged []Record
			for _, sh := range shards {
				cfg := Config{Variant: tc.v, Experiments: tc.n, Seed: 4242,
					Shard: &Shard{Start: sh.Start, End: sh.End}}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s partition %d shard %+v: %v", tc.v, pi, sh, err)
				}
				if len(res.Records) != sh.Size() {
					t.Fatalf("%s partition %d shard %+v: %d records, want %d",
						tc.v, pi, sh, len(res.Records), sh.Size())
				}
				for j, rec := range res.Records {
					if rec.ID != sh.Start+j {
						t.Fatalf("%s partition %d shard %+v: record %d has ID %d",
							tc.v, pi, sh, j, rec.ID)
					}
				}
				merged = append(merged, res.Records...)
			}
			var got bytes.Buffer
			if err := WriteRecords(&got, merged); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%s partition %d (%v): merged records differ from solo run", tc.v, pi, shards)
			}
		}
	}
}

// TestShardDisabledPruneMerge pins the same merge property with the
// pruner (and its cross-shard representative machinery) switched off.
func TestShardDisabledPruneMerge(t *testing.T) {
	const n = 40
	solo, err := Run(Config{Variant: workload.AlgorithmI, Experiments: n, Seed: 7, DisablePrune: true})
	if err != nil {
		t.Fatal(err)
	}
	var merged []Record
	for _, sh := range SplitShards(n, 17) {
		res, err := Run(Config{Variant: workload.AlgorithmI, Experiments: n, Seed: 7,
			DisablePrune: true, Shard: &Shard{Start: sh.Start, End: sh.End}})
		if err != nil {
			t.Fatal(err)
		}
		merged = append(merged, res.Records...)
	}
	if len(merged) != len(solo.Records) {
		t.Fatalf("merged %d records, want %d", len(merged), len(solo.Records))
	}
	for i := range merged {
		if merged[i] != solo.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, merged[i], solo.Records[i])
		}
	}
}

// TestShardResumeWithinShard proves a re-leased shard resumes from its
// salvaged segment records: a shard run fed the first half of its own
// records via Resume re-executes only the missing tail and still
// matches the fresh shard run record-for-record.
func TestShardResumeWithinShard(t *testing.T) {
	const n = 60
	sh := &Shard{Start: 20, End: 45}
	fresh, err := Run(Config{Variant: workload.AlgorithmI, Experiments: n, Seed: 11, Shard: sh})
	if err != nil {
		t.Fatal(err)
	}
	salvaged := append([]Record(nil), fresh.Records[:10]...)
	resumed, err := Run(Config{Variant: workload.AlgorithmI, Experiments: n, Seed: 11, Shard: sh,
		Resume: salvaged})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Faults.Resumed != len(salvaged) {
		t.Errorf("resumed %d records, want %d", resumed.Faults.Resumed, len(salvaged))
	}
	if len(resumed.Records) != len(fresh.Records) {
		t.Fatalf("resumed run has %d records, want %d", len(resumed.Records), len(fresh.Records))
	}
	for i := range fresh.Records {
		if resumed.Records[i] != fresh.Records[i] {
			t.Fatalf("record %d differs after resume:\n%+v\n%+v", i, resumed.Records[i], fresh.Records[i])
		}
	}
}
