package goofi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ctrlguard/internal/fsatomic"
)

// A SegmentStore persists a campaign's records incrementally across
// size-capped JSONL segments instead of one ever-growing file. Each
// segment is written by a RecordAppender; when it reaches the size cap
// it is sealed — fsync'd, recorded in the store's index, and never
// written again — and a fresh segment takes over. Only the newest
// segment can therefore be torn by a crash, and the appender's
// torn-tail salvage repairs exactly that one on reopen. Retention can
// later drop or compact whole sealed segments without touching the
// live tail.
type SegmentStore struct {
	dir      string
	segBytes int64
	index    segmentIndex
	cur      *RecordAppender
	curSeq   int
	curRecs  int
}

// segmentIndex is the store's small metadata sidecar: one row per
// sealed segment, kept in index.json via atomic replace. It lets a
// reader skip whole segments by record count without decoding them.
type segmentIndex struct {
	Segments []segmentInfo `json:"segments"`
}

type segmentInfo struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
}

// DefaultSegmentBytes caps a record segment when the caller does not
// choose a size.
const DefaultSegmentBytes = 4 << 20

const segIndexName = "index.json"

func segName(seq int) string { return fmt.Sprintf("seg-%06d.jsonl", seq) }

func segSeq(name string) (int, bool) {
	var seq int
	if _, err := fmt.Sscanf(name, "seg-%06d.jsonl", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// OpenSegmentStore opens (creating if needed) the segment directory
// and returns the store together with every record salvaged from a
// previous, possibly crash-interrupted run — the input to campaign
// resume. Sealed segments must be intact; only the newest segment is
// given torn-tail tolerance.
func OpenSegmentStore(dir string, segBytes int64) (*SegmentStore, []Record, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("goofi: create segment dir %s: %w", dir, err)
	}
	s := &SegmentStore{dir: dir, segBytes: segBytes}
	if err := s.loadIndex(); err != nil {
		return nil, nil, err
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, nil, err
	}

	sealed := make(map[string]bool, len(s.index.Segments))
	for _, info := range s.index.Segments {
		sealed[info.Name] = true
	}
	var recs []Record
	last := ""
	if len(names) > 0 {
		last = names[len(names)-1]
	}
	for _, name := range names {
		if name == last && !sealed[name] {
			break // the live tail; opened below with salvage
		}
		segRecs, err := LoadRecords(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("goofi: sealed segment %s: %w", name, err)
		}
		recs = append(recs, segRecs...)
		if !sealed[name] {
			// Present on disk but missing from the index: the crash hit
			// between sealing the file and writing the index. Re-seal.
			s.index.Segments = append(s.index.Segments, segmentInfo{
				Name: name, Records: len(segRecs), Bytes: fileSize(filepath.Join(dir, name)),
			})
			if err := s.saveIndex(); err != nil {
				return nil, nil, err
			}
		}
	}

	nextSeq := 1
	if last != "" {
		seq, _ := segSeq(last)
		nextSeq = seq + 1
		if !sealed[last] {
			// Continue the unsealed tail, salvaging a torn final line.
			a, tail, err := OpenRecordAppender(filepath.Join(dir, last))
			if err != nil {
				return nil, nil, err
			}
			s.cur, s.curSeq, s.curRecs = a, seq, len(tail)
			return s, append(recs, tail...), nil
		}
	}
	a, _, err := OpenRecordAppender(filepath.Join(dir, segName(nextSeq)))
	if err != nil {
		return nil, nil, err
	}
	s.cur, s.curSeq, s.curRecs = a, nextSeq, 0
	return s, recs, nil
}

// Append persists one record, sealing the current segment and rolling
// to a fresh one once it reaches the size cap.
func (s *SegmentStore) Append(rec Record) error {
	if err := s.cur.Append(rec); err != nil {
		return err
	}
	s.curRecs++
	if s.cur.Size() < s.segBytes {
		return nil
	}
	return s.roll()
}

// roll seals the current segment — fsync via Close, index entry,
// directory sync — and opens the next one. Ordering matters: the
// segment is durable before the index names it, and the index names it
// before the next segment exists, so on any crash at most the newest
// segment needs salvage.
func (s *SegmentStore) roll() error {
	size := s.cur.Size()
	if err := s.cur.Close(); err != nil {
		return err
	}
	s.index.Segments = append(s.index.Segments, segmentInfo{
		Name: segName(s.curSeq), Records: s.curRecs, Bytes: size,
	})
	if err := s.saveIndex(); err != nil {
		return err
	}
	a, _, err := OpenRecordAppender(filepath.Join(s.dir, segName(s.curSeq+1)))
	if err != nil {
		return err
	}
	s.cur, s.curSeq, s.curRecs = a, s.curSeq+1, 0
	return nil
}

// Close seals the live segment (or removes it if empty) and persists
// the final index.
func (s *SegmentStore) Close() error {
	if s.cur == nil {
		return nil
	}
	size := s.cur.Size()
	err := s.cur.Close()
	s.cur = nil
	if err != nil {
		return err
	}
	if s.curRecs == 0 {
		return os.Remove(filepath.Join(s.dir, segName(s.curSeq)))
	}
	s.index.Segments = append(s.index.Segments, segmentInfo{
		Name: segName(s.curSeq), Records: s.curRecs, Bytes: size,
	})
	return s.saveIndex()
}

func (s *SegmentStore) loadIndex() error {
	b, err := os.ReadFile(filepath.Join(s.dir, segIndexName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("goofi: read segment index: %w", err)
	}
	if err := json.Unmarshal(b, &s.index); err != nil {
		return fmt.Errorf("goofi: parse segment index: %w", err)
	}
	return nil
}

func (s *SegmentStore) saveIndex() error {
	return fsatomic.WriteFile(filepath.Join(s.dir, segIndexName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&s.index)
	})
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// segmentNames lists the directory's segment files in sequence order.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("goofi: list segments %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".jsonl") {
			if _, ok := segSeq(e.Name()); ok {
				names = append(names, e.Name())
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// SegmentFiles returns the absolute paths of dir's segments in order.
// A missing directory is an empty store, not an error.
func SegmentFiles(dir string) ([]string, error) {
	names, err := segmentNames(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// LoadSegmentRecords reads every record across dir's segments in
// order, tolerating a torn final line in the newest segment exactly
// as OpenSegmentStore would. A missing directory yields no records.
func LoadSegmentRecords(dir string) ([]Record, error) {
	paths, err := SegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for i, p := range paths {
		recs, err := LoadRecords(p)
		if err != nil {
			var trunc *TruncatedError
			if i == len(paths)-1 && errors.As(err, &trunc) {
				out = append(out, recs...)
				break
			}
			return nil, fmt.Errorf("goofi: segment %s: %w", filepath.Base(p), err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// SegmentPage streams one page of records — skip offset, return at
// most limit — using the index to hop over whole sealed segments
// without decoding them, and a streaming scanner within the segments
// it must read. total is the full record count across the store.
func SegmentPage(dir string, offset, limit int) (page []Record, total int, err error) {
	names, err := segmentNames(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var idx segmentIndex
	if b, err := os.ReadFile(filepath.Join(dir, segIndexName)); err == nil {
		_ = json.Unmarshal(b, &idx)
	}
	counted := make(map[string]int, len(idx.Segments))
	for _, info := range idx.Segments {
		counted[info.Name] = info.Records
	}
	if offset < 0 {
		offset = 0
	}
	if limit < 0 {
		limit = 0
	}
	pos := 0 // records before the current segment
	for i, name := range names {
		last := i == len(names)-1
		n, indexed := counted[name]
		// An indexed (sealed) segment that the page does not intersect
		// contributes only its count.
		if indexed && (pos+n <= offset || len(page) >= limit) {
			pos += n
			total += n
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, 0, fmt.Errorf("goofi: segment %s: %w", name, err)
		}
		sc := NewRecordScanner(f)
		for sc.Scan() {
			if pos >= offset && len(page) < limit {
				page = append(page, sc.Record())
			}
			pos++
			total++
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			var trunc *TruncatedError
			if last && errors.As(err, &trunc) {
				break
			}
			return nil, 0, fmt.Errorf("goofi: segment %s: %w", name, err)
		}
	}
	return page, total, nil
}

// CompactSegments collapses a terminal campaign's segment directory
// into the single canonical record file at dst (atomically), then
// removes the directory. It streams segment bytes rather than
// re-encoding records, so dst is byte-identical to the segments'
// concatenation.
func CompactSegments(dir, dst string) error {
	paths, err := SegmentFiles(dir)
	if err != nil {
		return err
	}
	if err := fsatomic.WriteFile(dst, func(w io.Writer) error {
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			_, err = io.Copy(w, f)
			f.Close()
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("goofi: compact segments %s: %w", dir, err)
	}
	return os.RemoveAll(dir)
}
