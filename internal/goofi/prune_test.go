package goofi

import (
	"strconv"
	"strings"
	"testing"

	"ctrlguard/internal/workload"
)

// pruneTestConfig mirrors warmTestConfig: small enough to simulate
// fully in a test, large enough for the pruner to find dead flips and
// multi-member classes.
func pruneTestConfig(v workload.Variant) Config {
	spec := workload.SpecFor(v)
	spec.Iterations = 150
	return Config{
		Variant:     v,
		Experiments: 150,
		Seed:        2001,
		Spec:        spec,
		Workers:     4,
	}
}

// TestPrunedCampaignMatchesUnpruned is the pinned correctness contract
// of the pruning subsystem: for a fixed (spec, seed), the pruned
// campaign and the simulate-everything campaign must produce identical
// records — field for field, modulo the Provenance annotation — and
// therefore byte-identical aggregate statistics, for both of the
// paper's algorithms and the MIMO variant.
func TestPrunedCampaignMatchesUnpruned(t *testing.T) {
	for _, v := range []workload.Variant{
		workload.AlgorithmI,
		workload.AlgorithmII,
		workload.MIMOAlgorithmI,
	} {
		t.Run(string(v), func(t *testing.T) {
			pruned, err := Run(pruneTestConfig(v))
			if err != nil {
				t.Fatal(err)
			}
			cold := pruneTestConfig(v)
			cold.DisablePrune = true
			ref, err := Run(cold)
			if err != nil {
				t.Fatal(err)
			}

			if pruned.Prune == nil {
				t.Fatal("pruned campaign reported no pruning stats")
			}
			if ref.Prune != nil {
				t.Fatalf("DisablePrune campaign reported pruning stats %+v", ref.Prune)
			}
			if len(pruned.Records) != len(ref.Records) {
				t.Fatalf("%d records, want %d", len(pruned.Records), len(ref.Records))
			}
			for i, got := range pruned.Records {
				want := ref.Records[i]
				if want.Provenance != ProvenanceSimulated {
					t.Fatalf("record %d of the unpruned campaign has provenance %q", i, want.Provenance)
				}
				// Same record, different provenance story.
				got.Provenance, want.Provenance = "", ""
				if got != want {
					t.Errorf("record %d differs:\npruned   %+v\nsimulated %+v", i, got, want)
				}
			}

			// The analysis phase sees no difference at all.
			gotTable := Analyze(pruned.Records).RenderRegionTable("t")
			wantTable := Analyze(ref.Records).RenderRegionTable("t")
			if gotTable != wantTable {
				t.Errorf("aggregate tables diverge:\n%s\nvs\n%s", gotTable, wantTable)
			}
		})
	}
}

// TestPruneProvenanceAccounting checks the provenance annotations and
// the stats against each other: every record carries a provenance,
// members name a representative that exists and is marked as one, and
// the stats add up.
func TestPruneProvenanceAccounting(t *testing.T) {
	res, err := Run(pruneTestConfig(workload.AlgorithmI))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Prune
	if p == nil {
		t.Fatal("no pruning stats")
	}
	if p.Planned != len(res.Records) {
		t.Errorf("Planned = %d, want %d", p.Planned, len(res.Records))
	}
	if p.Planned != p.Simulated+p.PrunedDead+p.Collapsed {
		t.Errorf("stats do not add up: %+v", p)
	}
	if p.PrunedDead == 0 || p.Collapsed == 0 {
		t.Errorf("campaign too tame to exercise pruning: %+v", p)
	}

	byID := make(map[int]Record, len(res.Records))
	for _, r := range res.Records {
		byID[r.ID] = r
	}
	var dead, collapsed, reps, simulated int
	repMembers := make(map[int]int) // representative ID -> member count
	for _, r := range res.Records {
		switch {
		case r.Provenance == ProvenanceSimulated:
			simulated++
		case r.Provenance == ProvenanceDead:
			dead++
		case strings.HasPrefix(r.Provenance, "class-representative:"):
			simulated++ // a representative is genuinely simulated
			reps++
		case strings.HasPrefix(r.Provenance, "class-member-of:"):
			collapsed++
			id, err := strconv.Atoi(strings.TrimPrefix(r.Provenance, "class-member-of:"))
			if err != nil {
				t.Fatalf("record %d: bad provenance %q", r.ID, r.Provenance)
			}
			rep, ok := byID[id]
			if !ok {
				t.Fatalf("record %d names missing representative %d", r.ID, id)
			}
			if !strings.HasPrefix(rep.Provenance, "class-representative:") {
				t.Errorf("record %d's representative %d has provenance %q", r.ID, id, rep.Provenance)
			}
			// The inferred verdict is the representative's verdict.
			if r.Outcome != rep.Outcome || r.Mechanism != rep.Mechanism || r.FirstDev != rep.FirstDev {
				t.Errorf("member %d (%s/%s) diverges from representative %d (%s/%s)",
					r.ID, r.Outcome, r.Mechanism, id, rep.Outcome, rep.Mechanism)
			}
			repMembers[id]++
		default:
			t.Fatalf("record %d: unknown provenance %q", r.ID, r.Provenance)
		}
	}
	if dead != p.PrunedDead || collapsed != p.Collapsed || simulated != p.Simulated || reps != p.Classes {
		t.Errorf("provenance tally (sim %d dead %d collapsed %d reps %d) disagrees with stats %+v",
			simulated, dead, collapsed, reps, p)
	}
	// Each representative advertises its fan-out count.
	for id, n := range repMembers {
		want := ProvenanceRepresentative(n)
		if got := byID[id].Provenance; got != want {
			t.Errorf("representative %d has provenance %q, want %q", id, got, want)
		}
	}
}
