package goofi

import (
	"testing"

	"ctrlguard/internal/stats"
	"ctrlguard/internal/workload"
)

func TestRunUntilPrecisionValidation(t *testing.T) {
	if _, err := RunUntilPrecision(PrecisionConfig{}); err == nil {
		t.Error("expected error for zero target")
	}
}

func TestRunUntilPrecisionConverges(t *testing.T) {
	// The value-failure rate (~5 %) is frequent enough to pin down
	// with modest effort: half-width 2 percentage points needs a few
	// hundred experiments.
	res, err := RunUntilPrecision(PrecisionConfig{
		Campaign:        Config{Variant: workload.AlgorithmI, Seed: 31},
		Metric:          ValueFailureProportion,
		TargetHalfWidth: 0.02,
		BatchSize:       200,
		MaxExperiments:  4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.HalfWidth > 0.02 {
		t.Errorf("half-width %v above target", res.HalfWidth)
	}
	if res.Experiments != len(res.Records) {
		t.Errorf("experiment count %d != records %d", res.Experiments, len(res.Records))
	}
	if res.Batches < 1 {
		t.Error("no batches recorded")
	}
}

func TestRunUntilPrecisionRespectsBudget(t *testing.T) {
	// An absurdly tight target must stop at the budget, unconverged.
	res, err := RunUntilPrecision(PrecisionConfig{
		Campaign:        Config{Variant: workload.AlgorithmI, Seed: 31},
		Metric:          SevereProportion,
		TargetHalfWidth: 1e-9,
		BatchSize:       150,
		MaxExperiments:  300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("cannot converge to 1e-9 in 300 experiments")
	}
	if res.Experiments != 300 {
		t.Errorf("experiments = %d, want the full budget 300", res.Experiments)
	}
}

func TestRunUntilPrecisionDeterministic(t *testing.T) {
	cfg := PrecisionConfig{
		Campaign:        Config{Variant: workload.AlgorithmI, Seed: 5},
		Metric:          ValueFailureProportion,
		TargetHalfWidth: 0.05,
		BatchSize:       100,
		MaxExperiments:  800,
	}
	a, err := RunUntilPrecision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunUntilPrecision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Experiments != b.Experiments || a.Estimate != b.Estimate {
		t.Errorf("sequential campaign not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunUntilPrecisionDefaultMetric(t *testing.T) {
	res, err := RunUntilPrecision(PrecisionConfig{
		Campaign:        Config{Variant: workload.AlgorithmI, Seed: 77},
		TargetHalfWidth: 0.5, // trivially loose: one batch with ≥1 severe converges
		BatchSize:       300,
		MaxExperiments:  1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The default metric is the severe proportion; the estimate must
	// be consistent with re-analyzing the records.
	want := SevereProportion(Analyze(res.Records).Total)
	if res.Estimate != want {
		t.Errorf("estimate %+v inconsistent with records %+v", res.Estimate, want)
	}
	var _ stats.Proportion = res.Estimate
}
