package goofi

import (
	"errors"
	"fmt"
	"time"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// Worker fault isolation: the campaign engine applies the paper's
// recovery discipline to itself. An experiment that panics or hangs
// must cost one retry, not a worker or the campaign — so every
// experiment attempt runs panic-recovered under an optional wall-clock
// deadline, is retried a bounded number of times with exponential
// backoff, and, if it keeps failing, is recorded with the distinct
// OutcomeAbandoned instead of poisoning the campaign.

// OutcomeAbandoned marks an experiment that exhausted its retry budget
// (repeated panics or deadline expiries). It is outside the paper's
// classification taxonomy on purpose: analysis code counts it as its
// own bucket and never mistakes it for a real fault outcome.
const OutcomeAbandoned = "abandoned"

// DefaultExperimentRetries is how many times a failing experiment is
// re-attempted before being abandoned.
const DefaultExperimentRetries = 2

// DefaultRetryBackoff is the sleep before the first retry; it doubles
// per subsequent attempt.
const DefaultRetryBackoff = 10 * time.Millisecond

// errExperimentDeadline reports an attempt stopped by the
// per-experiment deadline.
var errExperimentDeadline = errors.New("goofi: experiment deadline exceeded")

// FaultStats counts the campaign engine's own fault handling: how often
// worker isolation intervened and how much work a resume reused.
type FaultStats struct {
	// Retried counts re-attempts after a panic or deadline expiry.
	Retried int `json:"retried,omitempty"`
	// Panicked counts attempts that ended in a recovered panic.
	Panicked int `json:"panicked,omitempty"`
	// TimedOut counts attempts stopped by the per-experiment deadline.
	TimedOut int `json:"timedOut,omitempty"`
	// Abandoned counts experiments recorded as OutcomeAbandoned after
	// exhausting their retry budget.
	Abandoned int `json:"abandoned,omitempty"`
	// Resumed counts experiments whose records were reused from a
	// previous interrupted run (Config.Resume) instead of re-executed.
	Resumed int `json:"resumed,omitempty"`
}

func (s *FaultStats) add(o FaultStats) {
	s.Retried += o.Retried
	s.Panicked += o.Panicked
	s.TimedOut += o.TimedOut
	s.Abandoned += o.Abandoned
	s.Resumed += o.Resumed
}

// Zero reports whether isolation never had to intervene.
func (s FaultStats) Zero() bool { return s == FaultStats{} }

// retryBudget resolves the configured retry knobs.
func (cfg *Config) retryBudget() (retries int, backoff time.Duration) {
	retries = cfg.ExperimentRetries
	if retries == 0 {
		retries = DefaultExperimentRetries
	} else if retries < 0 {
		retries = 0
	}
	backoff = cfg.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	return retries, backoff
}

// runExperimentIsolated runs one experiment under fault isolation:
// panic-recovered, deadline-bounded, retried with exponential backoff,
// and finally abandoned with a distinct outcome rather than failing the
// campaign.
func runExperimentIsolated(prog *cpu.Program, cfg Config, golden *workload.Outcome, warm *warmState, id int, inj workload.Injection) (Record, FaultStats) {
	retries, backoff := cfg.retryBudget()
	var stats FaultStats
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			stats.Retried++
			time.Sleep(backoff)
			backoff *= 2
		}
		rec, err := runAttempt(prog, cfg, golden, warm, id, inj, attempt)
		if err == nil {
			return rec, stats
		}
		if errors.Is(err, errExperimentDeadline) {
			stats.TimedOut++
		} else {
			stats.Panicked++
		}
		lastErr = err
	}
	stats.Abandoned++
	return Record{
		ID:         id,
		Variant:    string(cfg.Variant),
		Region:     string(inj.Bit.Region),
		Element:    inj.Bit.Element,
		Bit:        inj.Bit.Bit,
		At:         inj.At,
		Model:      string(inj.Model),
		Width:      inj.Width,
		Outcome:    OutcomeAbandoned,
		Mechanism:  lastErr.Error(),
		Provenance: ProvenanceSimulated,
	}, stats
}

// runAttempt is one panic-recovered, deadline-bounded attempt at an
// experiment.
func runAttempt(prog *cpu.Program, cfg Config, golden *workload.Outcome, warm *warmState, id int, inj workload.Injection, attempt int) (rec Record, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("goofi: experiment %d panicked: %v", id, p)
		}
	}()
	var deadline time.Time
	if cfg.ExperimentTimeout > 0 {
		deadline = time.Now().Add(cfg.ExperimentTimeout)
	}
	if cfg.Chaos != nil {
		// The hook may sleep (a hung worker) or panic (a crashed one);
		// its time counts against the attempt's deadline.
		cfg.Chaos(id, attempt)
		if !deadline.IsZero() && time.Now().After(deadline) {
			return Record{}, errExperimentDeadline
		}
	}
	return runExperiment(prog, cfg, golden, warm, id, inj, deadline)
}

// resumable reports whether a persisted record can stand in for
// experiment id of this campaign: same variant and exactly the fault
// the campaign's deterministic sampler drew for that id. Records from a
// different seed or spec therefore never leak into a resumed campaign,
// and abandoned records are always re-run.
func resumable(rec Record, variant string, inj workload.Injection) bool {
	return rec.Outcome != OutcomeAbandoned &&
		rec.Variant == variant &&
		rec.Region == string(inj.Bit.Region) &&
		rec.Element == inj.Bit.Element &&
		rec.Bit == inj.Bit.Bit &&
		rec.At == inj.At &&
		rec.Model == string(inj.Model) &&
		rec.Width == inj.Width
}
