package goofi

import (
	"fmt"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/detect"
	"ctrlguard/internal/workload"
)

// Detector integration: an armed campaign derives the program's
// basic-block graph, runs the golden execution under the detectors
// (signature monitoring enforcing, the automaton family collecting the
// state series it then mines), and arms a fresh monitor stack on every
// experiment. Detector verdicts arrive as cpu.TrapError with the
// detect mechanisms and classify as detections like any EDM trap.

// DetectStats reports a campaign's detector configuration and results.
type DetectStats struct {
	// CFE and Automaton mirror the armed families.
	CFE       bool `json:"cfe,omitempty"`
	Automaton bool `json:"automaton,omitempty"`

	// BlockEntries is the golden run's basic-block entry count (the
	// cost basis of signature monitoring); Elements is the number of
	// state doubles the automaton watches.
	BlockEntries uint64 `json:"blockEntries,omitempty"`
	Elements     int    `json:"elements,omitempty"`

	// CFEDetected and AutomatonDetected count the campaign's records
	// whose detection verdict came from each family.
	CFEDetected       int `json:"cfeDetected"`
	AutomatonDetected int `json:"automatonDetected"`

	// FalsePositives counts golden iterations the armed detectors
	// reject — the mined automaton validated against its own training
	// series (zero by construction; non-zero would mean the miner
	// produced an unsound envelope).
	FalsePositives int `json:"falsePositives"`

	// Overhead is the modeled relative instruction-count overhead of
	// the armed detectors on the golden run (see detect.CFEOverhead
	// and detect.AutomatonOverhead).
	Overhead float64 `json:"overhead"`
}

// detectState is the shared, immutable-after-setup detector state of
// one campaign: built once from the golden run, reused by every
// experiment (and across the batches of a sequential campaign).
type detectState struct {
	spec      detect.Spec
	graph     *detect.BlockGraph
	automaton *detect.Automaton
	golden    *workload.Outcome
	stats     DetectStats
}

// newDetectState runs the monitored golden execution and prepares the
// per-experiment detector factories. The golden run must be clean under
// the armed detectors: a signature-monitor trap on the fault-free
// reference means the block graph disagrees with the real control flow
// — a bug, not a detection — and fails the campaign loudly.
func newDetectState(prog *cpu.Program, cfg Config) (*detectState, error) {
	d := &detectState{spec: cfg.Detect}
	var stack detect.Stack
	var cf *detect.CFMonitor
	var coll *detect.Collector
	if cfg.Detect.CFE {
		d.graph = detect.NewBlockGraph(prog)
		cf = detect.NewCFMonitor(d.graph)
		stack = append(stack, cf)
	}
	if cfg.Detect.Automaton {
		coll = detect.NewCollector(prog)
		stack = append(stack, coll)
	}

	goldenSpec := cfg.Spec
	goldenSpec.Monitor = stack
	golden := workload.Run(prog, goldenSpec)
	if golden.Detected() {
		return nil, fmt.Errorf("goofi: detectors rejected the fault-free reference execution: %v", golden.Trap)
	}
	d.golden = golden

	d.stats = DetectStats{CFE: cfg.Detect.CFE, Automaton: cfg.Detect.Automaton}
	if cf != nil {
		d.stats.BlockEntries = cf.Entries
		d.stats.Overhead += detect.CFEOverhead(cf.Entries, golden.Instructions)
	}
	if coll != nil {
		d.automaton = detect.MineSeries(coll.Series, detect.MineOptions{})
		d.stats.Elements = len(d.automaton.Elems)
		d.stats.FalsePositives = d.automaton.Violations(coll.Series)
		d.stats.Overhead += detect.AutomatonOverhead(
			len(d.automaton.Elems), len(coll.Series), golden.Instructions)
	}
	return d, nil
}

// newMonitor builds a fresh monitor stack for one experiment run.
func (d *detectState) newMonitor(prog *cpu.Program) workload.Monitor {
	var stack detect.Stack
	if d.spec.CFE {
		stack = append(stack, detect.NewCFMonitor(d.graph))
	}
	if d.spec.Automaton {
		stack = append(stack, detect.NewAutomatonMonitor(prog, d.automaton))
	}
	return stack
}

// tally counts detector verdicts over the campaign's emitted records
// and returns the campaign-level stats.
func (d *detectState) tally(records []Record) *DetectStats {
	s := d.stats
	s.CFEDetected, s.AutomatonDetected = TallyDetect(records)
	return &s
}

// TallyDetect counts records whose detection verdict came from each
// detector family. Exported for consumers that merge records without a
// campaign Result (the distributed coordinator).
func TallyDetect(records []Record) (cfe, automaton int) {
	for _, rec := range records {
		switch rec.Mechanism {
		case string(cpu.MechSignature):
			cfe++
		case string(cpu.MechAutomaton):
			automaton++
		}
	}
	return cfe, automaton
}
