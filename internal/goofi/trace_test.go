package goofi

import (
	"bytes"
	"context"
	"testing"

	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// traceCampaignConfig is a deliberately small campaign for the tracing
// tests; every experiment is selected so at least one trace arrives
// regardless of the outcome mix.
func traceCampaignConfig() Config {
	spec := workload.PaperRunSpec()
	spec.Iterations = 80
	return Config{
		Variant:     workload.AlgorithmI,
		Experiments: 6,
		Seed:        2001,
		Spec:        spec,
		Workers:     2,
	}
}

func TestCampaignTraceMode(t *testing.T) {
	cfg := traceCampaignConfig()
	traces := map[int]*trace.Trace{}
	cfg.Trace = &TraceConfig{
		Select: func(Record) bool { return true },
		OnTrace: func(rec Record, tr *trace.Trace) {
			traces[rec.ID] = tr
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != cfg.Experiments {
		t.Fatalf("traced %d experiments, want %d", len(traces), cfg.Experiments)
	}
	for _, rec := range res.Records {
		tr := traces[rec.ID]
		if tr == nil {
			t.Fatalf("experiment %d has no trace", rec.ID)
		}
		h := tr.Header
		if h.Experiment != rec.ID || h.Seed != cfg.Seed {
			t.Errorf("experiment %d: trace header identifies %d/seed %d", rec.ID, h.Experiment, h.Seed)
		}
		// The trace must replay the very fault the record logged and
		// reach the same classification.
		if h.Injection.Element != rec.Element || h.Injection.Bit != rec.Bit || h.Injection.At != rec.At {
			t.Errorf("experiment %d: trace injection %v, record %s/%s[%d]@%d",
				rec.ID, h.Injection, rec.Region, rec.Element, rec.Bit, rec.At)
		}
		if h.Outcome != rec.Outcome {
			t.Errorf("experiment %d: trace outcome %q, record %q", rec.ID, h.Outcome, rec.Outcome)
		}
	}
}

// TestTraceExperimentReplaysCampaign: replaying an experiment from
// nothing but the campaign config and its index must reproduce the
// in-campaign trace byte for byte.
func TestTraceExperimentReplaysCampaign(t *testing.T) {
	cfg := traceCampaignConfig()
	var inCampaign *trace.Trace
	const target = 3
	cfg.Trace = &TraceConfig{
		Select: func(rec Record) bool { return rec.ID == target },
		OnTrace: func(rec Record, tr *trace.Trace) {
			inCampaign = tr
		},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if inCampaign == nil {
		t.Fatal("campaign produced no trace for the selected experiment")
	}

	replayed, err := TraceExperiment(context.Background(), traceCampaignConfig(), target)
	if err != nil {
		t.Fatalf("TraceExperiment: %v", err)
	}
	if !bytes.Equal(trace.Encode(inCampaign), trace.Encode(replayed)) {
		t.Error("replayed trace differs from the in-campaign capture")
	}
}

func TestTraceExperimentRejectsBadIndex(t *testing.T) {
	cfg := traceCampaignConfig()
	if _, err := TraceExperiment(context.Background(), cfg, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := TraceExperiment(context.Background(), cfg, cfg.Experiments); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestTraceConfigDefaultSelectsSevere(t *testing.T) {
	tc := &TraceConfig{}
	if !tc.shouldTrace(Record{Outcome: "uwr-permanent"}) ||
		!tc.shouldTrace(Record{Outcome: "uwr-semi-permanent"}) {
		t.Error("default selector skips severe failures")
	}
	if tc.shouldTrace(Record{Outcome: "overwritten"}) || tc.shouldTrace(Record{Outcome: "detected"}) {
		t.Error("default selector traces benign outcomes")
	}
}
