// Package goofi reimplements the campaign structure of the paper's
// GOOFI tool (Generic Object-Oriented Fault Injection): configuration,
// set-up, a reference (golden) execution, a fault-injection phase of
// independent experiments, result logging, and an analysis phase that
// reproduces the paper's tables.
package goofi

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/detect"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/prune"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// Config describes one fault-injection campaign.
type Config struct {
	// Variant selects the workload program (Algorithm I, II or an
	// ablation variant).
	Variant workload.Variant

	// Experiments is the number of faults to inject.
	Experiments int

	// Seed makes the campaign reproducible.
	Seed uint64

	// Spec configures each run; the zero value means the paper's
	// 650-iteration engine workload.
	Spec workload.RunSpec

	// Workers bounds the number of parallel experiments
	// (0 = GOMAXPROCS).
	Workers int

	// Classify holds the failure-classification thresholds; the zero
	// value means the paper's defaults.
	Classify classify.Config

	// Progress, if non-nil, is called after each completed experiment
	// with the number done so far.
	Progress func(done, total int)

	// OnRecord, if non-nil, is called with each completed experiment's
	// record. Calls are serialised (never concurrent) but their order
	// follows worker completion, not experiment ID.
	OnRecord func(Record)

	// Trace, if non-nil, re-runs selected experiments in detail mode
	// after classification and hands their propagation traces to
	// Trace.OnTrace. Opt-in: tracing is far slower than the campaign
	// itself (see TraceConfig).
	Trace *TraceConfig

	// Resume holds records persisted by an earlier, interrupted run of
	// the same campaign. Experiments whose deterministic injection
	// matches a resumed record are not re-executed: the record is
	// reused verbatim, so a restarted campaign converges on the same
	// result as an uninterrupted one while only paying for the missing
	// experiments. Records that do not match (different seed or spec)
	// and abandoned records are ignored and re-run.
	Resume []Record

	// OnResume, if non-nil, is called once, before execution starts,
	// with the records reused from Resume (in experiment-ID order).
	// OnRecord is NOT called for reused records.
	OnResume func([]Record)

	// ExperimentRetries bounds how many times a panicking or
	// deadline-expired experiment is re-attempted before being recorded
	// as OutcomeAbandoned (0 = DefaultExperimentRetries, negative = no
	// retries).
	ExperimentRetries int

	// ExperimentTimeout is the per-attempt wall-clock deadline (0 =
	// none). A hung experiment is abandoned at the deadline instead of
	// wedging its worker.
	ExperimentTimeout time.Duration

	// RetryBackoff is the sleep before the first retry, doubled per
	// attempt (0 = DefaultRetryBackoff).
	RetryBackoff time.Duration

	// Chaos, if non-nil, is invoked at the start of every experiment
	// attempt. TEST-ONLY: the chaos harness uses it to crash (panic) or
	// hang (sleep) workers mid-campaign and prove fault isolation;
	// production configs leave it nil.
	Chaos func(id, attempt int)

	// DisableWarmStart forces every experiment to replay from
	// iteration 0 instead of resuming from a cached checkpoint at its
	// injection iteration. The fast path produces byte-identical
	// records (guaranteed by tests), so this exists for benchmarking
	// and belt-and-braces validation, not correctness.
	DisableWarmStart bool

	// DisablePrune forces every experiment to be simulated instead of
	// letting the fault-space pruner synthesize records for provably
	// dead faults and collapse first-use equivalence classes to one
	// representative run. Pruning produces byte-identical aggregate
	// statistics (guaranteed by tests), so like DisableWarmStart this
	// exists for benchmarking and cross-validation, not correctness.
	DisablePrune bool

	// DisableLockstep forces every simulated experiment to run solo
	// instead of batching experiments of one campaign over a single
	// shared golden-prefix replay (the lockstep engine). Records are
	// byte-identical either way (guaranteed by tests), so like the
	// other Disable knobs this exists for benchmarking and
	// cross-validation, not correctness.
	DisableLockstep bool

	// LockstepK bounds how many experiments share one lockstep batch
	// (0 = derived from the campaign size and worker count).
	LockstepK int

	// Model selects the fault model for every injection (the zero
	// value is the paper's permanent single bit-flip). Non-default
	// models cleanly decline the prune and warm-start fast paths: the
	// pruner's def-use reasoning and the checkpoint reconvergence
	// argument are proven only for permanent single flips, so campaigns
	// run full simulations rather than risk silent misclassification.
	Model inject.FaultModel

	// BurstWidth is the adjacent-bit span for Model "burst"
	// (0 = workload.DefaultBurstWidth).
	BurstWidth int

	// Detect arms in-loop detectors (signature monitoring and/or a
	// behavior-derived automaton mined from this campaign's golden run)
	// on every experiment. Armed campaigns decline prune and warm-start
	// too: both fast paths skip instructions the detectors must see.
	Detect detect.Spec

	// CheckpointCap bounds the per-campaign checkpoint cache
	// (0 = DefaultCheckpointCap).
	CheckpointCap int

	// Shard, if non-nil, restricts the campaign to the contiguous
	// experiment-ID range [Shard.Start, Shard.End) of the full plan.
	// The golden run, the sampler's full plan, and the pruner's
	// classification are identical to a solo run's; only experiments in
	// the range execute and emit records (plus any out-of-shard class
	// representative an in-shard member's verdict depends on, which runs
	// but is not emitted). Result.Records holds the shard's records in
	// experiment-ID order, each byte-identical to the corresponding solo
	// record — the invariant distributed campaigns rely on to merge
	// shard segments into a solo-identical file. Incompatible with Trace
	// (which must see the whole campaign).
	Shard *Shard

	// warm carries the fast-path state across the batches of a
	// sequential campaign, so later batches skip the golden run and
	// reuse cached checkpoints.
	warm *warmState

	// prune carries the fault-space pruner's event index across the
	// batches of a sequential campaign, like warm.
	prune *pruneState

	// det carries the detector state (block graph, mined automaton,
	// monitored golden run) across the batches of a sequential
	// campaign, like warm and prune.
	det *detectState
}

// Record is the logged result of a single fault-injection experiment —
// one row of the campaign database.
type Record struct {
	ID        int     `json:"id"`
	Variant   string  `json:"variant"`
	Region    string  `json:"region"`
	Element   string  `json:"element"`
	Bit       uint    `json:"bit"`
	At        uint64  `json:"at"`
	Outcome   string  `json:"outcome"`
	Mechanism string  `json:"mechanism,omitempty"`
	FirstDev  int     `json:"firstDeviation"`
	StrongIts int     `json:"strongIterations"`
	MaxDev    float64 `json:"maxDeviation"`

	// Model and Width name the fault model of the injection; both are
	// empty/zero for the default single bit-flip, so historical records
	// keep their exact wire shape.
	Model string `json:"model,omitempty"`
	Width int    `json:"width,omitempty"`

	// Provenance records how the verdict was obtained: "simulated" for
	// an executed experiment, "pruned-dead" for a record synthesized
	// because the pruner proved the fault non-effective,
	// "class-representative:<n>" for a simulated run whose verdict was
	// fanned out to n equivalence-class members, and
	// "class-member-of:<id>" for a record inferred from representative
	// experiment <id>.
	Provenance string `json:"provenance,omitempty"`
}

// Result is a completed campaign.
type Result struct {
	Config  Config
	Golden  *workload.Outcome
	Records []Record

	// WarmStart reports the checkpoint fast path's work avoidance;
	// nil when the fast path was disabled.
	WarmStart *WarmStartStats

	// Prune reports the fault-space pruner's work avoidance; nil when
	// pruning was disabled or inapplicable (detail-mode observer set,
	// non-default fault model, or armed detectors).
	Prune *PruneStats

	// Lockstep reports the batching engine's work sharing; nil when
	// lockstep was disabled or inapplicable (detail-mode observers,
	// armed detectors, tracing, per-experiment deadlines, chaos hooks).
	Lockstep *LockstepStats

	// Detect reports the armed detectors' configuration, verdict counts
	// and modeled overhead; nil when no detectors were armed.
	Detect *DetectStats

	// Faults reports the campaign engine's own fault handling: retries,
	// recovered panics, deadline expiries, abandoned experiments, and
	// records reused from a resumed run. All zero for a healthy,
	// fresh campaign.
	Faults FaultStats
}

// Run executes a campaign: golden run, then Experiments independent
// fault injections with uniform (location, time) sampling, classified
// against the golden outputs.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// campaign stops at the next experiment boundary and returns the
// records completed so far (ordered by experiment ID) together with
// ctx's error. A nil ctx behaves like context.Background.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Experiments <= 0 {
		return nil, fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", cfg.Experiments)
	}
	shard := cfg.Shard
	if shard != nil {
		if err := shard.validFor(cfg.Experiments); err != nil {
			return nil, err
		}
		if cfg.Trace != nil {
			return nil, fmt.Errorf("goofi: shard-scoped campaigns cannot trace (tracing needs the whole campaign)")
		}
	}
	inShard := func(i int) bool { return shard == nil || shard.Contains(i) }
	shardTotal := cfg.Experiments
	if shard != nil {
		shardTotal = shard.Size()
	}
	if cfg.Spec.Iterations == 0 {
		cfg.Spec = workload.SpecFor(cfg.Variant)
	}
	if cfg.Classify == (classify.Config{}) {
		cfg.Classify = classify.DefaultConfig()
	}
	prog := workload.Program(cfg.Variant)

	// The warm-start fast path records state digests during the golden
	// run so injected runs can detect re-convergence, and shares
	// pre-injection checkpoints across the worker pool. The fault-space
	// pruner piggybacks a def-use observer on the same golden run to
	// build its event index. Detail-mode observers must see every
	// instruction of every run, so they force full replays and disable
	// pruning; trace mode simulates every selected experiment in detail,
	// so it declines pruning too. Non-default fault models and armed
	// detectors cleanly decline BOTH fast paths: the pruner's def-use
	// reasoning assumes permanent single flips (prune.SupportsModel) and
	// the checkpoint/golden-splice shortcuts skip instructions a
	// detector must see — declining runs everything fully simulated
	// instead of silently misclassifying.
	detectOn := cfg.Detect.Enabled()
	if cfg.Trace != nil && detectOn {
		return nil, fmt.Errorf("goofi: trace mode does not support detector campaigns (the detail-mode replay cannot arm monitors)")
	}
	modelPrunable := prune.SupportsModel(string(cfg.Model))
	warm := cfg.warm
	prn := cfg.prune
	useWarm := !cfg.DisableWarmStart && cfg.Spec.Observer == nil && modelPrunable && !detectOn
	usePrune := !cfg.DisablePrune && cfg.Spec.Observer == nil && cfg.Trace == nil && modelPrunable && !detectOn

	// The lockstep batcher shares one golden-prefix replay across a
	// batch of experiments, forking a lane per injection point. It
	// composes with warm start and pruning and — unlike them — is valid
	// for every fault model, but not with hooks that must see every
	// instruction (observers, detectors), detail-mode tracing, or the
	// per-attempt deadline/chaos machinery, whose fault isolation is
	// built around solo runs.
	useLockstep := !cfg.DisableLockstep && cfg.Spec.Observer == nil && !detectOn &&
		cfg.Trace == nil && cfg.Chaos == nil && cfg.ExperimentTimeout == 0

	det := cfg.det
	if detectOn && det == nil {
		var err error
		if det, err = newDetectState(prog, cfg); err != nil {
			return nil, err
		}
	}
	cfg.det = det // runExperiment arms a fresh monitor stack per run

	var golden *workload.Outcome
	if det != nil {
		golden = det.golden
	} else if warm != nil {
		golden = warm.golden
	} else {
		goldenSpec := cfg.Spec
		goldenSpec.RecordStateHashes = useWarm
		var capture *prune.Capture
		if usePrune && prn == nil {
			capture = prune.NewCapture()
			goldenSpec.Observer = capture.Observer()
		}
		golden = workload.Run(prog, goldenSpec)
		if golden.Detected() {
			return nil, fmt.Errorf("goofi: reference execution trapped: %v", golden.Trap)
		}
		if useWarm {
			warm = newWarmState(prog, cfg.Spec, golden, cfg.CheckpointCap)
		}
		if capture != nil {
			// A nil index means the capture saw something it could not
			// model; pruning silently degrades to full simulation.
			if ix := capture.Finish(golden.Instructions); ix != nil {
				prn = newPruneState(ix, golden, cfg.Classify)
			}
		}
	}

	// Set-up phase: pre-draw every experiment's fault so the campaign
	// is deterministic regardless of worker scheduling.
	sampler, err := inject.NewModelSampler(cfg.Seed, golden.Instructions, cfg.Model, cfg.BurstWidth)
	if err != nil {
		return nil, err
	}
	injections := make([]workload.Injection, cfg.Experiments)
	for i := range injections {
		injections[i] = sampler.Next()
	}

	// Pruning phase: classify the whole plan against the golden event
	// index before anything executes. The plan is deterministic for a
	// given (spec, seed), so resumed campaigns rebuild it identically.
	var plan *prunePlan
	if prn != nil && usePrune {
		plan = buildPrunePlan(prn.idx, injections)
	}
	prov := func(i int) string {
		if plan != nil {
			return plan.provenance(i)
		}
		return ProvenanceSimulated
	}

	// Feed experiments in injection order so the checkpoint capture
	// cursor walks forward monotonically and lockstep batches group
	// At-adjacent experiments over one shared replay. Records still
	// land at their experiment ID, so results are unaffected.
	order := make([]int, cfg.Experiments)
	for i := range order {
		order[i] = i
	}
	if warm != nil || useLockstep {
		sort.SliceStable(order, func(a, b int) bool {
			return injections[order[a]].At < injections[order[b]].At
		})
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Experiments {
		workers = cfg.Experiments
	}

	records := make([]Record, cfg.Experiments)
	completed := make([]bool, cfg.Experiments)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		done   int
		faults FaultStats
	)

	// Best-effort recovery for the campaign itself: records persisted
	// by an earlier interrupted run stand in for their experiments, so
	// a restart only pays for the work that was lost.
	if len(cfg.Resume) > 0 {
		byID := make(map[int]Record, len(cfg.Resume))
		for _, rec := range cfg.Resume {
			if rec.ID >= 0 && rec.ID < cfg.Experiments {
				byID[rec.ID] = rec // later lines are newer re-runs
			}
		}
		var reused []Record
		for i := range injections {
			rec, ok := byID[i]
			if !ok || !inShard(i) || !resumable(rec, string(cfg.Variant), injections[i]) {
				continue
			}
			// Normalize to this run's plan so a restarted campaign's
			// record file matches an uninterrupted one, even when the
			// interrupted run had pruning toggled differently.
			rec.Provenance = prov(i)
			records[i] = rec
			completed[i] = true
			done++
			reused = append(reused, rec)
		}
		faults.Resumed = len(reused)
		if len(reused) > 0 {
			if cfg.Progress != nil {
				cfg.Progress(done, shardTotal)
			}
			if cfg.OnResume != nil {
				cfg.OnResume(reused)
			}
		}
	}

	// fanOut infers the records of rep's equivalence-class members from
	// its verdict. Callers must hold mu (or run before the workers
	// start).
	fanOut := func(rep int) {
		for _, m := range plan.members[rep] {
			if completed[m] || !inShard(m) {
				continue // reused from a resumed run, or another shard's
			}
			rec := memberRecord(m, injections[m], records[rep])
			records[m] = rec
			completed[m] = true
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, shardTotal)
			}
			if cfg.OnRecord != nil {
				cfg.OnRecord(rec)
			}
		}
	}

	if plan != nil && ctx.Err() == nil {
		// Dead faults never execute: synthesize their records up front.
		for i := range injections {
			if completed[i] || plan.decision[i] != pdDead || !inShard(i) {
				continue
			}
			rec := deadRecord(cfg, i, injections[i], prn.deadVerdict)
			records[i] = rec
			completed[i] = true
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, shardTotal)
			}
			if cfg.OnRecord != nil {
				cfg.OnRecord(rec)
			}
		}
		// Representatives already settled by a resumed run fan out now.
		for rep := range plan.members {
			if completed[rep] && records[rep].Outcome != OutcomeAbandoned {
				fanOut(rep)
			}
		}
	}

	var lockstep *LockstepStats
	if useLockstep {
		lockstep = &LockstepStats{K: lockstepK(cfg, workers)}
	}

	// runSolo executes one experiment the classic way — isolated,
	// retried, deadline-bounded — and books its record.
	runSolo := func(i int) {
		rec, fs := runExperimentIsolated(prog, cfg, golden, warm, i, injections[i])
		if plan != nil && plan.decision[i] == pdRep && rec.Outcome != OutcomeAbandoned {
			rec.Provenance = prov(i)
		}
		var tr *trace.Trace
		if cfg.Trace != nil && cfg.Trace.OnTrace != nil && cfg.Trace.shouldTrace(rec) {
			// Capture errors mean cancellation; the partial
			// campaign result already reflects that.
			if t, err := trace.Capture(ctx, cfg.Variant, cfg.Spec, injections[i], cfg.Classify); err == nil {
				t.Header.Experiment = i
				t.Header.Seed = cfg.Seed
				tr = t
			}
		}
		mu.Lock()
		records[i] = rec
		completed[i] = true
		faults.add(fs)
		if lockstep != nil {
			lockstep.Solo++
		}
		// An out-of-shard representative ran only to supply its
		// class verdict: record the run for fan-out, emit nothing.
		if inShard(i) {
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, shardTotal)
			}
			if cfg.OnRecord != nil {
				cfg.OnRecord(rec)
			}
		}
		if plan != nil && plan.decision[i] == pdRep && rec.Outcome != OutcomeAbandoned {
			fanOut(i)
		}
		if tr != nil {
			cfg.Trace.OnTrace(rec, tr)
		}
		mu.Unlock()
	}

	next := make(chan []int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range next {
				if ctx.Err() != nil {
					continue // drain without running
				}
				if lockstep != nil && len(batch) > 1 {
					if outs := runBatchLockstep(prog, cfg, warm, batch, injections); outs != nil {
						mu.Lock()
						lockstep.Batches++
						mu.Unlock()
						for j, i := range batch {
							if outs[j] == nil {
								// The fault-free run ends before this
								// injection point; only the solo engine
								// defines that outcome.
								runSolo(i)
								continue
							}
							rec := buildRecord(cfg, golden, i, injections[i], outs[j])
							if plan != nil && plan.decision[i] == pdRep {
								rec.Provenance = prov(i)
							}
							mu.Lock()
							records[i] = rec
							completed[i] = true
							lockstep.Lanes++
							if inShard(i) {
								done++
								if cfg.Progress != nil {
									cfg.Progress(done, shardTotal)
								}
								if cfg.OnRecord != nil {
									cfg.OnRecord(rec)
								}
							}
							if plan != nil && plan.decision[i] == pdRep {
								fanOut(i)
							}
							mu.Unlock()
						}
						continue
					}
				}
				for _, i := range batch {
					if ctx.Err() != nil {
						break
					}
					runSolo(i)
				}
			}
		}()
	}

	batchCap := 1
	if lockstep != nil {
		batchCap = lockstep.K
	}
	pending := make([]int, 0, batchCap)
feed:
	for _, i := range order {
		// Members and dead faults never dispatch (members land with
		// their representative); checking the plan first also keeps this
		// unlocked completed[] read off indices the workers' fan-out
		// writes concurrently.
		if plan != nil && (plan.decision[i] == pdDead || plan.decision[i] == pdMember) {
			continue
		}
		if !inShard(i) {
			// Another shard's experiment — unless it is a class
			// representative whose verdict an in-shard member still
			// needs, in which case it runs here too (un-emitted). The
			// members read below is safe unlocked: only this
			// representative's own fan-out writes them, and it cannot
			// have been dispatched yet.
			if plan == nil || plan.decision[i] != pdRep {
				continue
			}
			needed := false
			for _, m := range plan.members[i] {
				if inShard(m) && !completed[m] {
					needed = true
					break
				}
			}
			if !needed {
				continue
			}
		}
		if completed[i] {
			continue // reused from a resumed run
		}
		pending = append(pending, i)
		if len(pending) < batchCap {
			continue
		}
		select {
		case next <- pending:
			pending = make([]int, 0, batchCap)
		case <-ctx.Done():
			break feed
		}
	}
	if len(pending) > 0 && ctx.Err() == nil {
		select {
		case next <- pending:
		case <-ctx.Done():
		}
	}
	close(next)
	wg.Wait()

	// An abandoned representative (wall-clock deadline — the one
	// nondeterministic outcome) cannot vouch for its class: fall back to
	// simulating the members it was standing for.
	if plan != nil && ctx.Err() == nil {
		for rep, members := range plan.members {
			if !completed[rep] || records[rep].Outcome != OutcomeAbandoned {
				continue
			}
			for _, m := range members {
				if completed[m] || !inShard(m) || ctx.Err() != nil {
					continue
				}
				rec, fs := runExperimentIsolated(prog, cfg, golden, warm, m, injections[m])
				records[m] = rec
				completed[m] = true
				done++
				faults.add(fs)
				if lockstep != nil {
					lockstep.Solo++
				}
				if cfg.Progress != nil {
					cfg.Progress(done, shardTotal)
				}
				if cfg.OnRecord != nil {
					cfg.OnRecord(rec)
				}
			}
		}
	}

	lo, hi := 0, cfg.Experiments
	if shard != nil {
		lo, hi = shard.Start, shard.End
	}
	res := &Result{Config: cfg, Golden: golden, Records: records, Faults: faults}
	if warm != nil {
		res.Config.warm = warm
		res.WarmStart = warm.stats()
	}
	if prn != nil {
		res.Config.prune = prn
	}
	if det != nil {
		res.Detect = det.tally(res.Records)
	}
	if lockstep != nil {
		res.Lockstep = lockstep
	}
	if plan != nil {
		res.Prune = tallyPrune(records, completed, shardTotal, lo, hi)
	}
	if shard != nil || ctx.Err() != nil {
		// Shard runs emit only their own range; cancelled runs only what
		// finished. Either way the records stay in experiment-ID order.
		partial := make([]Record, 0, done)
		for i := lo; i < hi; i++ {
			if completed[i] {
				partial = append(partial, records[i])
			}
		}
		res.Records = partial
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runExperiment performs one fault injection and classifies it. A
// non-zero deadline bounds the run's wall-clock time; an expired run
// returns errExperimentDeadline instead of a (meaningless) record.
func runExperiment(prog *cpu.Program, cfg Config, golden *workload.Outcome, warm *warmState, id int, inj workload.Injection, deadline time.Time) (Record, error) {
	spec := cfg.Spec
	spec.Injection = &inj
	spec.Deadline = deadline
	if cfg.det != nil {
		spec.Monitor = cfg.det.newMonitor(prog)
	}
	if warm != nil {
		spec.Golden = warm.golden
		spec.From = warm.checkpointFor(inj.At)
	}
	out := workload.Run(prog, spec)
	if out.Aborted {
		return Record{}, errExperimentDeadline
	}
	if warm != nil {
		warm.noteRun(spec.From, out)
	}
	return buildRecord(cfg, golden, id, inj, out), nil
}
