// Package goofi reimplements the campaign structure of the paper's
// GOOFI tool (Generic Object-Oriented Fault Injection): configuration,
// set-up, a reference (golden) execution, a fault-injection phase of
// independent experiments, result logging, and an analysis phase that
// reproduces the paper's tables.
package goofi

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// Config describes one fault-injection campaign.
type Config struct {
	// Variant selects the workload program (Algorithm I, II or an
	// ablation variant).
	Variant workload.Variant

	// Experiments is the number of faults to inject.
	Experiments int

	// Seed makes the campaign reproducible.
	Seed uint64

	// Spec configures each run; the zero value means the paper's
	// 650-iteration engine workload.
	Spec workload.RunSpec

	// Workers bounds the number of parallel experiments
	// (0 = GOMAXPROCS).
	Workers int

	// Classify holds the failure-classification thresholds; the zero
	// value means the paper's defaults.
	Classify classify.Config

	// Progress, if non-nil, is called after each completed experiment
	// with the number done so far.
	Progress func(done, total int)

	// OnRecord, if non-nil, is called with each completed experiment's
	// record. Calls are serialised (never concurrent) but their order
	// follows worker completion, not experiment ID.
	OnRecord func(Record)

	// Trace, if non-nil, re-runs selected experiments in detail mode
	// after classification and hands their propagation traces to
	// Trace.OnTrace. Opt-in: tracing is far slower than the campaign
	// itself (see TraceConfig).
	Trace *TraceConfig

	// DisableWarmStart forces every experiment to replay from
	// iteration 0 instead of resuming from a cached checkpoint at its
	// injection iteration. The fast path produces byte-identical
	// records (guaranteed by tests), so this exists for benchmarking
	// and belt-and-braces validation, not correctness.
	DisableWarmStart bool

	// CheckpointCap bounds the per-campaign checkpoint cache
	// (0 = DefaultCheckpointCap).
	CheckpointCap int

	// warm carries the fast-path state across the batches of a
	// sequential campaign, so later batches skip the golden run and
	// reuse cached checkpoints.
	warm *warmState
}

// Record is the logged result of a single fault-injection experiment —
// one row of the campaign database.
type Record struct {
	ID        int     `json:"id"`
	Variant   string  `json:"variant"`
	Region    string  `json:"region"`
	Element   string  `json:"element"`
	Bit       uint    `json:"bit"`
	At        uint64  `json:"at"`
	Outcome   string  `json:"outcome"`
	Mechanism string  `json:"mechanism,omitempty"`
	FirstDev  int     `json:"firstDeviation"`
	StrongIts int     `json:"strongIterations"`
	MaxDev    float64 `json:"maxDeviation"`
}

// Result is a completed campaign.
type Result struct {
	Config  Config
	Golden  *workload.Outcome
	Records []Record

	// WarmStart reports the checkpoint fast path's work avoidance;
	// nil when the fast path was disabled.
	WarmStart *WarmStartStats
}

// Run executes a campaign: golden run, then Experiments independent
// fault injections with uniform (location, time) sampling, classified
// against the golden outputs.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// campaign stops at the next experiment boundary and returns the
// records completed so far (ordered by experiment ID) together with
// ctx's error. A nil ctx behaves like context.Background.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Experiments <= 0 {
		return nil, fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", cfg.Experiments)
	}
	if cfg.Spec.Iterations == 0 {
		cfg.Spec = workload.SpecFor(cfg.Variant)
	}
	if cfg.Classify == (classify.Config{}) {
		cfg.Classify = classify.DefaultConfig()
	}
	prog := workload.Program(cfg.Variant)

	// The warm-start fast path records state digests during the golden
	// run so injected runs can detect re-convergence, and shares
	// pre-injection checkpoints across the worker pool. Detail-mode
	// observers must see every instruction of every run, so they force
	// full replays.
	warm := cfg.warm
	useWarm := !cfg.DisableWarmStart && cfg.Spec.Observer == nil
	var golden *workload.Outcome
	if warm != nil {
		golden = warm.golden
	} else {
		goldenSpec := cfg.Spec
		goldenSpec.RecordStateHashes = useWarm
		golden = workload.Run(prog, goldenSpec)
		if golden.Detected() {
			return nil, fmt.Errorf("goofi: reference execution trapped: %v", golden.Trap)
		}
		if useWarm {
			warm = newWarmState(prog, cfg.Spec, golden, cfg.CheckpointCap)
		}
	}

	// Set-up phase: pre-draw every experiment's fault so the campaign
	// is deterministic regardless of worker scheduling.
	sampler := inject.NewSampler(cfg.Seed, golden.Instructions)
	injections := make([]workload.Injection, cfg.Experiments)
	for i := range injections {
		injections[i] = sampler.Next()
	}

	// Feed experiments in injection order so the checkpoint capture
	// cursor walks forward monotonically. Records still land at their
	// experiment ID, so results are unaffected.
	order := make([]int, cfg.Experiments)
	for i := range order {
		order[i] = i
	}
	if warm != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return injections[order[a]].At < injections[order[b]].At
		})
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Experiments {
		workers = cfg.Experiments
	}

	records := make([]Record, cfg.Experiments)
	completed := make([]bool, cfg.Experiments)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without running
				}
				rec := runExperiment(prog, cfg, golden, warm, i, injections[i])
				var tr *trace.Trace
				if cfg.Trace != nil && cfg.Trace.OnTrace != nil && cfg.Trace.shouldTrace(rec) {
					// Capture errors mean cancellation; the partial
					// campaign result already reflects that.
					if t, err := trace.Capture(ctx, cfg.Variant, cfg.Spec, injections[i], cfg.Classify); err == nil {
						t.Header.Experiment = i
						t.Header.Seed = cfg.Seed
						tr = t
					}
				}
				mu.Lock()
				records[i] = rec
				completed[i] = true
				done++
				if cfg.Progress != nil {
					cfg.Progress(done, cfg.Experiments)
				}
				if cfg.OnRecord != nil {
					cfg.OnRecord(rec)
				}
				if tr != nil {
					cfg.Trace.OnTrace(rec, tr)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, i := range order {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	res := &Result{Config: cfg, Golden: golden, Records: records}
	if warm != nil {
		res.Config.warm = warm
		res.WarmStart = warm.stats()
	}
	if err := ctx.Err(); err != nil {
		partial := make([]Record, 0, done)
		for i, ok := range completed {
			if ok {
				partial = append(partial, records[i])
			}
		}
		res.Records = partial
		return res, err
	}
	return res, nil
}

// runExperiment performs one fault injection and classifies it.
func runExperiment(prog *cpu.Program, cfg Config, golden *workload.Outcome, warm *warmState, id int, inj workload.Injection) Record {
	spec := cfg.Spec
	spec.Injection = &inj
	if warm != nil {
		spec.Golden = warm.golden
		spec.From = warm.checkpointFor(inj.At)
	}
	out := workload.Run(prog, spec)
	if warm != nil {
		warm.noteRun(spec.From, out)
	}

	rec := Record{
		ID:      id,
		Variant: string(cfg.Variant),
		Region:  string(inj.Bit.Region),
		Element: inj.Bit.Element,
		Bit:     inj.Bit.Bit,
		At:      inj.At,
	}
	var verdict classify.Verdict
	if out.Detected() {
		verdict = classify.DetectedVerdict(string(out.Trap.Mech))
	} else {
		stateDiffers := !cpu.StatesEqual(golden.FinalState, out.FinalState)
		verdict = classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, stateDiffers, cfg.Classify)
	}
	rec.Outcome = verdict.Outcome.String()
	rec.Mechanism = verdict.Mechanism
	rec.FirstDev = verdict.FirstDeviation
	rec.StrongIts = verdict.StrongIterations
	rec.MaxDev = verdict.MaxDeviation
	return rec
}
