// Package goofi reimplements the campaign structure of the paper's
// GOOFI tool (Generic Object-Oriented Fault Injection): configuration,
// set-up, a reference (golden) execution, a fault-injection phase of
// independent experiments, result logging, and an analysis phase that
// reproduces the paper's tables.
package goofi

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// Config describes one fault-injection campaign.
type Config struct {
	// Variant selects the workload program (Algorithm I, II or an
	// ablation variant).
	Variant workload.Variant

	// Experiments is the number of faults to inject.
	Experiments int

	// Seed makes the campaign reproducible.
	Seed uint64

	// Spec configures each run; the zero value means the paper's
	// 650-iteration engine workload.
	Spec workload.RunSpec

	// Workers bounds the number of parallel experiments
	// (0 = GOMAXPROCS).
	Workers int

	// Classify holds the failure-classification thresholds; the zero
	// value means the paper's defaults.
	Classify classify.Config

	// Progress, if non-nil, is called after each completed experiment
	// with the number done so far.
	Progress func(done, total int)

	// OnRecord, if non-nil, is called with each completed experiment's
	// record. Calls are serialised (never concurrent) but their order
	// follows worker completion, not experiment ID.
	OnRecord func(Record)

	// Trace, if non-nil, re-runs selected experiments in detail mode
	// after classification and hands their propagation traces to
	// Trace.OnTrace. Opt-in: tracing is far slower than the campaign
	// itself (see TraceConfig).
	Trace *TraceConfig
}

// Record is the logged result of a single fault-injection experiment —
// one row of the campaign database.
type Record struct {
	ID        int     `json:"id"`
	Variant   string  `json:"variant"`
	Region    string  `json:"region"`
	Element   string  `json:"element"`
	Bit       uint    `json:"bit"`
	At        uint64  `json:"at"`
	Outcome   string  `json:"outcome"`
	Mechanism string  `json:"mechanism,omitempty"`
	FirstDev  int     `json:"firstDeviation"`
	StrongIts int     `json:"strongIterations"`
	MaxDev    float64 `json:"maxDeviation"`
}

// Result is a completed campaign.
type Result struct {
	Config  Config
	Golden  *workload.Outcome
	Records []Record
}

// Run executes a campaign: golden run, then Experiments independent
// fault injections with uniform (location, time) sampling, classified
// against the golden outputs.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// campaign stops at the next experiment boundary and returns the
// records completed so far (ordered by experiment ID) together with
// ctx's error. A nil ctx behaves like context.Background.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Experiments <= 0 {
		return nil, fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", cfg.Experiments)
	}
	if cfg.Spec.Iterations == 0 {
		cfg.Spec = workload.SpecFor(cfg.Variant)
	}
	if cfg.Classify == (classify.Config{}) {
		cfg.Classify = classify.DefaultConfig()
	}
	prog := workload.Program(cfg.Variant)

	golden := workload.Run(prog, cfg.Spec)
	if golden.Detected() {
		return nil, fmt.Errorf("goofi: reference execution trapped: %v", golden.Trap)
	}

	// Set-up phase: pre-draw every experiment's fault so the campaign
	// is deterministic regardless of worker scheduling.
	sampler := inject.NewSampler(cfg.Seed, golden.Instructions)
	injections := make([]workload.Injection, cfg.Experiments)
	for i := range injections {
		injections[i] = sampler.Next()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Experiments {
		workers = cfg.Experiments
	}

	records := make([]Record, cfg.Experiments)
	completed := make([]bool, cfg.Experiments)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain without running
				}
				rec := runExperiment(prog, cfg, golden, i, injections[i])
				var tr *trace.Trace
				if cfg.Trace != nil && cfg.Trace.OnTrace != nil && cfg.Trace.shouldTrace(rec) {
					// Capture errors mean cancellation; the partial
					// campaign result already reflects that.
					if t, err := trace.Capture(ctx, cfg.Variant, cfg.Spec, injections[i], cfg.Classify); err == nil {
						t.Header.Experiment = i
						t.Header.Seed = cfg.Seed
						tr = t
					}
				}
				mu.Lock()
				records[i] = rec
				completed[i] = true
				done++
				if cfg.Progress != nil {
					cfg.Progress(done, cfg.Experiments)
				}
				if cfg.OnRecord != nil {
					cfg.OnRecord(rec)
				}
				if tr != nil {
					cfg.Trace.OnTrace(rec, tr)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := 0; i < cfg.Experiments; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		partial := make([]Record, 0, done)
		for i, ok := range completed {
			if ok {
				partial = append(partial, records[i])
			}
		}
		return &Result{Config: cfg, Golden: golden, Records: partial}, err
	}
	return &Result{Config: cfg, Golden: golden, Records: records}, nil
}

// runExperiment performs one fault injection and classifies it.
func runExperiment(prog *cpu.Program, cfg Config, golden *workload.Outcome, id int, inj workload.Injection) Record {
	spec := cfg.Spec
	spec.Injection = &inj
	out := workload.Run(prog, spec)

	rec := Record{
		ID:      id,
		Variant: string(cfg.Variant),
		Region:  string(inj.Bit.Region),
		Element: inj.Bit.Element,
		Bit:     inj.Bit.Bit,
		At:      inj.At,
	}
	var verdict classify.Verdict
	if out.Detected() {
		verdict = classify.DetectedVerdict(string(out.Trap.Mech))
	} else {
		stateDiffers := !cpu.StatesEqual(golden.FinalState, out.FinalState)
		verdict = classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, stateDiffers, cfg.Classify)
	}
	rec.Outcome = verdict.Outcome.String()
	rec.Mechanism = verdict.Mechanism
	rec.FirstDev = verdict.FirstDeviation
	rec.StrongIts = verdict.StrongIterations
	rec.MaxDev = verdict.MaxDeviation
	return rec
}
