package goofi

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/workload"
)

// lockstepModels spans the default bit-flip plus every extended model:
// unlike prune and warm start, the lockstep batcher is valid for all of
// them.
var lockstepModels = []inject.FaultModel{
	"", workload.ModelPC, workload.ModelTransient, workload.ModelBurst,
}

// recordBytes renders a campaign's records exactly as the record file
// would persist them.
func recordBytes(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lockstepIdentityCheck runs one campaign three ways — the production
// default (lockstep batching over the predecoded engine), lockstep
// disabled (predecoded solo runs), and the classic interpreter with
// every fast path off — and requires byte-identical record files. This
// is the cross-validation property CI's lockstep-crossval job sweeps.
func lockstepIdentityCheck(t *testing.T, v workload.Variant, m inject.FaultModel, n int, seed uint64, k int) {
	t.Helper()
	base := Config{Variant: v, Experiments: n, Seed: seed, Model: m, LockstepK: k}
	batched, err := Run(base)
	if err != nil {
		t.Fatalf("%s/%s lockstep: %v", v, m, err)
	}
	want := recordBytes(t, batched.Records)

	solo := base
	solo.DisableLockstep = true
	plain, err := Run(solo)
	if err != nil {
		t.Fatalf("%s/%s solo: %v", v, m, err)
	}
	if !bytes.Equal(recordBytes(t, plain.Records), want) {
		t.Errorf("%s/%s n=%d seed=%d k=%d: lockstep records differ from predecoded solo runs",
			v, m, n, seed, k)
	}

	// The interpreted reference keeps the same prune setting — pruning
	// stamps provenance into the records, so toggling it is a wire
	// difference, not an engine one. Warm start is byte-identical by its
	// own pinned invariant, and disabling it forces the interpreter to
	// execute full replays.
	interp := base
	interp.DisableLockstep = true
	interp.DisableWarmStart = true
	interp.Spec = workload.SpecFor(v)
	interp.Spec.Interpret = true
	classic, err := Run(interp)
	if err != nil {
		t.Fatalf("%s/%s interpreted: %v", v, m, err)
	}
	if !bytes.Equal(recordBytes(t, classic.Records), want) {
		t.Errorf("%s/%s n=%d seed=%d k=%d: lockstep records differ from the classic interpreter",
			v, m, n, seed, k)
	}
}

// TestLockstepCampaignByteIdentical is the fixed-seed smoke version of
// the lockstep cross-validation property, always on.
func TestLockstepCampaignByteIdentical(t *testing.T) {
	for _, m := range lockstepModels {
		lockstepIdentityCheck(t, workload.AlgorithmI, m, 48, 707, 0)
	}
	// A tiny K exercises many batches; an oversized one a single batch.
	lockstepIdentityCheck(t, workload.AlgorithmII, "", 40, 708, 3)
	lockstepIdentityCheck(t, workload.MIMOAlgorithmI, workload.ModelTransient, 24, 709, 64)
}

// TestLockstepCrossVal is the randomized cross-validation job: CI sets
// LOCKSTEP_CROSSVAL_TRIALS (and optionally LOCKSTEP_CROSSVAL_SEED) to
// sweep random (variant, model, n, seed, K) points; locally it defaults
// to a handful of trials.
func TestLockstepCrossVal(t *testing.T) {
	trials := 3
	if s := os.Getenv("LOCKSTEP_CROSSVAL_TRIALS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("LOCKSTEP_CROSSVAL_TRIALS=%q: %v", s, err)
		}
		trials = v
	}
	seed := int64(20260808)
	if s := os.Getenv("LOCKSTEP_CROSSVAL_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("LOCKSTEP_CROSSVAL_SEED=%q: %v", s, err)
		}
		seed = v
	}
	rng := rand.New(rand.NewSource(seed))
	variants := workload.Variants()
	for i := 0; i < trials; i++ {
		v := variants[rng.Intn(len(variants))]
		m := lockstepModels[rng.Intn(len(lockstepModels))]
		n := 20 + rng.Intn(40)
		k := rng.Intn(12) // 0 = auto
		campaignSeed := rng.Uint64()
		t.Logf("trial %d: %s/%q n=%d seed=%d k=%d", i, v, m, n, campaignSeed, k)
		lockstepIdentityCheck(t, v, m, n, campaignSeed, k)
	}
}

// TestLockstepStatsReported pins the accounting: with pruning off every
// experiment simulates, and each lands either as a lockstep lane or as
// a solo run — nothing double-counted, nothing lost.
func TestLockstepStatsReported(t *testing.T) {
	res, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 60, Seed: 11,
		DisablePrune: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ls := res.Lockstep
	if ls == nil {
		t.Fatal("Result.Lockstep is nil on a default campaign")
	}
	if ls.Batches == 0 || ls.Lanes == 0 {
		t.Fatalf("lockstep engine idle: %+v", ls)
	}
	if ls.Lanes+ls.Solo != 60 {
		t.Fatalf("lanes %d + solo %d != 60 experiments", ls.Lanes, ls.Solo)
	}
	if ls.K <= 0 {
		t.Fatalf("derived K = %d", ls.K)
	}

	disabled, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 60, Seed: 11,
		DisablePrune: true, DisableLockstep: true})
	if err != nil {
		t.Fatal(err)
	}
	if disabled.Lockstep != nil {
		t.Error("Result.Lockstep reported with lockstep disabled")
	}
}

// TestLockstepDeclinesDetectorsAndChaos pins the decline contract: the
// hooks whose fault isolation or instruction visibility is built around
// solo runs must turn batching off entirely.
func TestLockstepDeclinesDetectorsAndChaos(t *testing.T) {
	res, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 20, Seed: 3,
		Chaos: func(int, int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lockstep != nil {
		t.Error("lockstep ran under a chaos hook")
	}
}

// TestCampaignHotPathZeroDecode is the regression pin for the predecode
// tentpole: once a variant's program is predecoded (and its golden
// outputs cached by an earlier campaign of this test), a whole
// default-config campaign must execute without a single Decode call —
// the hot path dispatches predecoded slots only.
func TestCampaignHotPathZeroDecode(t *testing.T) {
	cfg := Config{Variant: workload.AlgorithmI, Experiments: 30, Seed: 4}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err) // prewarm: assembly + predecode of the program
	}
	before := cpu.DecodeCalls()
	cfg.Seed = 5 // different plan, same program
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if delta := cpu.DecodeCalls() - before; delta != 0 {
		t.Fatalf("campaign hot path made %d Decode calls, want 0", delta)
	}
}
