package goofi

import (
	"sort"
	"sync"
	"sync/atomic"

	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// DefaultCheckpointCap bounds the checkpoint cache when
// Config.CheckpointCap is zero. Each checkpoint holds a full machine
// snapshot (~16 KiB of memory image plus registers and cache), so a few
// dozen cover the hot injection iterations of a campaign without
// noticeable memory cost.
const DefaultCheckpointCap = 32

// WarmStartStats summarises how much re-execution the campaign fast
// path avoided. For sequential (precision-driven) campaigns the counts
// are cumulative over all batches sharing the golden run.
type WarmStartStats struct {
	// Resumed counts experiments that started from a checkpoint
	// instead of iteration 0; FullReplays counts the rest.
	Resumed     int `json:"resumed"`
	FullReplays int `json:"fullReplays"`

	// EarlyExits counts experiments whose post-injection state
	// re-converged with the golden run, splicing the golden remainder
	// instead of executing it.
	EarlyExits int `json:"earlyExits"`

	// Checkpoints is the number of snapshots captured; CacheHits the
	// number of times a worker reused one already captured (or in
	// flight); Evictions the number dropped by the LRU bound.
	Checkpoints int `json:"checkpoints"`
	CacheHits   int `json:"cacheHits"`
	Evictions   int `json:"evictions"`

	// SkippedInstructions is the total pre-injection instruction count
	// that resumed experiments did not re-execute.
	SkippedInstructions uint64 `json:"skippedInstructions"`
}

// ckptEntry is one singleflight slot of the checkpoint cache. The
// first worker to request an iteration creates the entry and captures
// the snapshot; later workers wait on ready. ck stays nil when the
// capture failed, which waiters treat as "run a full replay".
type ckptEntry struct {
	ready   chan struct{}
	ck      *workload.Checkpoint
	lastUse uint64
}

func (e *ckptEntry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// warmState is the per-golden-run fast-path state shared by a
// campaign's worker pool: the hash-annotated golden outcome and the
// LRU-bounded checkpoint cache. It is safe for concurrent use.
type warmState struct {
	prog   *cpu.Program
	spec   workload.RunSpec
	golden *workload.Outcome

	mu      sync.Mutex
	clock   uint64
	cap     int
	entries map[int]*ckptEntry

	resumed     atomic.Int64
	fullReplays atomic.Int64
	earlyExits  atomic.Int64
	checkpoints atomic.Int64
	cacheHits   atomic.Int64
	evictions   atomic.Int64
	skipped     atomic.Uint64
}

func newWarmState(prog *cpu.Program, spec workload.RunSpec, golden *workload.Outcome, cap int) *warmState {
	if cap <= 0 {
		cap = DefaultCheckpointCap
	}
	return &warmState{
		prog:    prog,
		spec:    spec,
		golden:  golden,
		cap:     cap,
		entries: make(map[int]*ckptEntry),
	}
}

// injectionIteration returns the control iteration an injection at
// instruction index at falls into: the largest k with starts[k] <= at.
func injectionIteration(starts []uint64, at uint64) int {
	return sort.Search(len(starts), func(i int) bool { return starts[i] > at }) - 1
}

// checkpointFor returns a checkpoint usable for an injection at
// instruction index at, or nil when the experiment must run from the
// start (injection during iteration 0, or capture failure).
func (w *warmState) checkpointFor(at uint64) *workload.Checkpoint {
	k := injectionIteration(w.golden.IterationStarts, at)
	if k <= 0 {
		return nil
	}
	return w.get(k)
}

// get returns the checkpoint at iteration k, capturing it at most once
// across the worker pool (singleflight).
func (w *warmState) get(k int) *workload.Checkpoint {
	w.mu.Lock()
	w.clock++
	if e, ok := w.entries[k]; ok {
		e.lastUse = w.clock
		w.mu.Unlock()
		<-e.ready
		w.cacheHits.Add(1)
		return e.ck
	}
	e := &ckptEntry{ready: make(chan struct{}), lastUse: w.clock}
	w.entries[k] = e
	w.evictLocked(k)
	// Capture incrementally from the nearest earlier cached
	// checkpoint: with experiments fed in injection order the capture
	// cursor only ever walks forward, so the total capture cost of a
	// campaign is about one golden run.
	var from *workload.Checkpoint
	fromK := -1
	for i, other := range w.entries {
		if i < k && i > fromK && other.done() && other.ck != nil {
			fromK = i
			from = other.ck
		}
	}
	w.mu.Unlock()

	spec := w.spec
	spec.From = from
	// Capture failures (an environment that cannot be cloned) leave
	// e.ck nil: every experiment at this iteration falls back to full
	// replay, preserving correctness.
	if ck, err := workload.CaptureCheckpoint(w.prog, spec, k); err == nil {
		e.ck = ck
		w.checkpoints.Add(1)
	}
	close(e.ready)
	return e.ck
}

// evictLocked enforces the LRU bound, never touching the entry just
// inserted (keep) or captures still in flight.
func (w *warmState) evictLocked(keep int) {
	for len(w.entries) > w.cap {
		victim := -1
		var oldest uint64
		for i, e := range w.entries {
			if i == keep || !e.done() {
				continue
			}
			if victim == -1 || e.lastUse < oldest {
				victim = i
				oldest = e.lastUse
			}
		}
		if victim == -1 {
			return
		}
		delete(w.entries, victim)
		w.evictions.Add(1)
	}
}

// noteRun records an experiment's fast-path statistics.
func (w *warmState) noteRun(resumedFrom *workload.Checkpoint, out *workload.Outcome) {
	if resumedFrom != nil {
		w.resumed.Add(1)
		w.skipped.Add(resumedFrom.Instructions())
	} else {
		w.fullReplays.Add(1)
	}
	if out.ReconvergedAt != 0 {
		w.earlyExits.Add(1)
	}
}

// noteLane records a lockstep lane's fast-path statistics. A lane
// forks off its batch leader's shared golden-prefix replay at the
// injection instruction, so per-experiment it is a resume that skipped
// the entire prefix; the leader's single replay of that prefix is
// shared work the lane never pays.
func (w *warmState) noteLane(at uint64, out *workload.Outcome) {
	w.resumed.Add(1)
	w.skipped.Add(at)
	if out.ReconvergedAt != 0 {
		w.earlyExits.Add(1)
	}
}

// stats snapshots the counters.
func (w *warmState) stats() *WarmStartStats {
	return &WarmStartStats{
		Resumed:             int(w.resumed.Load()),
		FullReplays:         int(w.fullReplays.Load()),
		EarlyExits:          int(w.earlyExits.Load()),
		Checkpoints:         int(w.checkpoints.Load()),
		CacheHits:           int(w.cacheHits.Load()),
		Evictions:           int(w.evictions.Load()),
		SkippedInstructions: w.skipped.Load(),
	}
}
