package goofi

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteMarkdownReport(t *testing.T) {
	a1 := Analyze([]Record{
		{Variant: "alg1", Region: "cache", Outcome: "uwr-permanent", MaxDev: 60},
		{Variant: "alg1", Region: "cache", Outcome: "overwritten"},
		{Variant: "alg1", Region: "registers", Outcome: "detected", Mechanism: "JUMP ERROR"},
	})
	a2 := Analyze([]Record{
		{Variant: "alg2", Region: "cache", Outcome: "uwr-insignificant", MaxDev: 0.01},
		{Variant: "alg2", Region: "registers", Outcome: "latent"},
	})
	var buf bytes.Buffer
	if err := WriteMarkdownReport(&buf, a1, a2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Campaign report: alg1 vs alg2",
		"| Outcome | alg1 | alg2 |",
		"Undetected wrong results (permanent)",
		"JUMP ERROR",
		"## Regional structure",
		"## Headline",
		"severe share of value failures",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteInvestigation(t *testing.T) {
	recs := []Record{
		{Element: "line0.data0", Outcome: "uwr-permanent", MaxDev: 63},
		{Element: "line0.data0", Outcome: "uwr-semi-permanent", MaxDev: 20},
		{Element: "r13", Outcome: "overwritten"},
	}
	var buf bytes.Buffer
	if err := WriteInvestigation(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2 of 3", "line0.data0", "Permanent failures: 1", "max 63.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("investigation missing %q:\n%s", want, out)
		}
	}
}

func TestWriteInvestigationNoSevere(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInvestigation(&buf, []Record{{Element: "r1", Outcome: "overwritten"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No severe value failures") {
		t.Error("missing no-severe message")
	}
}

// failingWriter errors after n bytes, to exercise error propagation.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteMarkdownReportPropagatesWriteError(t *testing.T) {
	a := Analyze([]Record{{Variant: "alg1", Region: "cache", Outcome: "overwritten"}})
	if err := WriteMarkdownReport(&failingWriter{n: 10}, a, a); err == nil {
		t.Error("expected write error")
	}
}
