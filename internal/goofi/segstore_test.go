package goofi

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func segTestRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{ID: i, Variant: "alg1", Region: "data", Element: "r1", Bit: uint(i % 31), At: uint64(i % 50), Outcome: "non-effective"}
	}
	return recs
}

func TestSegmentStoreRollsAndReloads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c000001.records")
	// ~90-byte records against a 256-byte cap forces several segments.
	s, salvaged, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != 0 {
		t.Fatalf("fresh store salvaged %d records", len(salvaged))
	}
	recs := segTestRecords(40)
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := SegmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("40 records under a 256-byte cap produced %d segments, want several", len(files))
	}
	got, err := LoadSegmentRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("reloaded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v != %+v", i, got[i], recs[i])
		}
	}
	// Concatenated segments are byte-identical to the single-file form.
	var concat bytes.Buffer
	for _, f := range files {
		b, _ := os.ReadFile(f)
		concat.Write(b)
	}
	var single bytes.Buffer
	if err := WriteRecords(&single, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(concat.Bytes(), single.Bytes()) {
		t.Fatal("segment concatenation diverges from WriteRecords output")
	}
}

func TestSegmentStoreResumeAfterTorn(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c000001.records")
	s, _, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	recs := segTestRecords(20)
	for _, r := range recs[:12] {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: no Close, and the live tail gets a torn line.
	files, _ := SegmentFiles(dir)
	tail := files[len(files)-1]
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":9999,"variant":"alg1","reg`)
	f.Close()

	// LoadSegmentRecords tolerates the torn tail.
	partial, err := LoadSegmentRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 12 {
		t.Fatalf("salvaged %d records, want 12", len(partial))
	}

	// Reopening salvages the same 12 and continues appending.
	s2, salvaged, err := OpenSegmentStore(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != 12 {
		t.Fatalf("reopen salvaged %d records, want 12", len(salvaged))
	}
	for _, r := range recs[12:] {
		if err := s2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSegmentRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("after resume store holds %d records, want 20", len(got))
	}
}

func TestSegmentStoreReopenAfterCleanClose(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c000001.records")
	s, _, _ := OpenSegmentStore(dir, 1<<20)
	for _, r := range segTestRecords(5) {
		s.Append(r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A sealed segment is never appended to: reopening starts a new one.
	s2, salvaged, err := OpenSegmentStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != 5 {
		t.Fatalf("salvaged %d, want 5", len(salvaged))
	}
	for _, r := range segTestRecords(7)[5:] {
		s2.Append(r)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := LoadSegmentRecords(dir)
	if len(got) != 7 {
		t.Fatalf("store holds %d records, want 7", len(got))
	}
}

func TestSegmentPage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c000001.records")
	s, _, _ := OpenSegmentStore(dir, 256)
	recs := segTestRecords(40)
	for _, r := range recs {
		s.Append(r)
	}
	s.Close()
	for _, tc := range []struct{ offset, limit, wantLen, wantFirst int }{
		{0, 10, 10, 0},
		{15, 10, 10, 15},
		{35, 10, 5, 35},
		{40, 10, 0, 0},
		{0, 0, 0, 0},
	} {
		page, total, err := SegmentPage(dir, tc.offset, tc.limit)
		if err != nil {
			t.Fatal(err)
		}
		if total != 40 {
			t.Fatalf("offset %d: total = %d, want 40", tc.offset, total)
		}
		if len(page) != tc.wantLen {
			t.Fatalf("offset %d limit %d: got %d records, want %d", tc.offset, tc.limit, len(page), tc.wantLen)
		}
		if tc.wantLen > 0 && page[0].ID != tc.wantFirst {
			t.Fatalf("offset %d: first record ID %d, want %d", tc.offset, page[0].ID, tc.wantFirst)
		}
	}
	// Missing directory pages empty.
	page, total, err := SegmentPage(filepath.Join(t.TempDir(), "nope"), 0, 10)
	if err != nil || total != 0 || len(page) != 0 {
		t.Fatalf("missing dir paged %d/%d, %v", len(page), total, err)
	}
}

func TestCompactSegments(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "c000001.records")
	s, _, _ := OpenSegmentStore(dir, 256)
	recs := segTestRecords(25)
	for _, r := range recs {
		s.Append(r)
	}
	s.Close()
	dst := filepath.Join(base, "c000001.jsonl")
	if err := CompactSegments(dir, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("segment dir survived compaction")
	}
	var want bytes.Buffer
	WriteRecords(&want, recs)
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("compacted file diverges from canonical record bytes")
	}
}

func TestRecordScannerMatchesReadRecords(t *testing.T) {
	recs := segTestRecords(10)
	var buf bytes.Buffer
	WriteRecords(&buf, recs)
	sc := NewRecordScanner(bytes.NewReader(buf.Bytes()))
	var got []Record
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRecordScannerTornTail(t *testing.T) {
	recs := segTestRecords(3)
	var buf bytes.Buffer
	WriteRecords(&buf, recs)
	buf.WriteString(`{"id":9999,"vari`)
	sc := NewRecordScanner(bytes.NewReader(buf.Bytes()))
	n := 0
	for sc.Scan() {
		n++
	}
	var trunc *TruncatedError
	if !errors.As(sc.Err(), &trunc) {
		t.Fatalf("torn tail gave %v, want TruncatedError", sc.Err())
	}
	if n != 3 {
		t.Fatalf("scanned %d intact records, want 3", n)
	}
}

func TestRecordScannerMidStreamCorruption(t *testing.T) {
	recs := segTestRecords(3)
	var buf bytes.Buffer
	WriteRecords(&buf, recs)
	lines := strings.SplitAfter(buf.String(), "\n")
	lines[1] = "{\"id\":bogus}\n"
	sc := NewRecordScanner(strings.NewReader(strings.Join(lines, "")))
	for sc.Scan() {
	}
	err := sc.Err()
	var trunc *TruncatedError
	if err == nil || errors.As(err, &trunc) {
		t.Fatalf("mid-stream corruption gave %v, want a hard error", err)
	}
}
