package goofi

import (
	"os"
	"path/filepath"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{ID: i, Variant: "alg1", Region: "cache", Element: "line0.data0",
			Bit: uint(i % 32), At: uint64(1000 + i), Outcome: "latent"}
	}
	return recs
}

func TestAppenderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c1.jsonl")
	a, salvaged, err := OpenRecordAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != 0 {
		t.Fatalf("fresh file salvaged %d records", len(salvaged))
	}
	want := testRecords(100) // crosses the fsync interval
	for _, rec := range want {
		if err := a.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestAppenderSalvagesTornFile is the crash path: a record file ending
// in a half-written line must yield its intact records, lose exactly
// the torn tail, and accept clean appends afterwards.
func TestAppenderSalvagesTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c1.jsonl")
	a, _, err := OpenRecordAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(10)
	for _, rec := range recs[:8] {
		a.Append(rec)
	}
	a.Close()
	// Crash mid-append: half a JSON line, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":8,"variant":"alg1","reg`)
	f.Close()

	a2, salvaged, err := OpenRecordAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != 8 {
		t.Fatalf("salvaged %d records, want 8", len(salvaged))
	}
	for _, rec := range recs[8:] {
		if err := a2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	a2.Close()

	got, err := LoadRecords(path)
	if err != nil {
		t.Fatalf("file not well-formed after salvage+append: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("%d records after repair, want 10", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// A newline-terminated garbage final line (e.g. zero-fill from a crash)
// is also dropped as a torn tail.
func TestAppenderSalvagesGarbageFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c1.jsonl")
	a, _, err := OpenRecordAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(3)
	for _, rec := range recs {
		a.Append(rec)
	}
	a.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("\x00\x00GARBAGE\n")
	f.Close()

	a2, salvaged, err := OpenRecordAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	a2.Close()
	if len(salvaged) != 3 {
		t.Fatalf("salvaged %d records, want 3", len(salvaged))
	}
	if got, err := LoadRecords(path); err != nil || len(got) != 3 {
		t.Fatalf("after repair: %d records, err %v", len(got), err)
	}
}

// SaveRecords must replace an existing (possibly longer) file
// atomically: after an interrupted campaign is finalised, the sorted
// rewrite fully supersedes the unordered incremental file.
func TestSaveRecordsReplacesIncrementalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c1.jsonl")
	a, _, err := OpenRecordAppender(path)
	if err != nil {
		t.Fatal(err)
	}
	// Completion order, not ID order — plus a stale duplicate.
	recs := testRecords(5)
	for _, i := range []int{3, 0, 4, 1, 2, 3} {
		a.Append(recs[i])
	}
	a.Close()

	if err := SaveRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("%d records after final save, want 5", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d out of order after final save", i)
		}
	}
}
