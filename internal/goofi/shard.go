package goofi

import "fmt"

// Distributed campaigns split one plan across executor processes. The
// unit of distribution is a contiguous slice of experiment IDs: the
// sampler draws the identical full plan everywhere (it is deterministic
// for a given spec and seed), so a shard needs only its [Start, End)
// range to know exactly which injections are its own. Contiguity is
// what makes the final merge trivial and deterministic: concatenating
// the shards' record sets in shard order yields the experiment-ordered
// record file of a solo run.
//
// Pruning equivalence classes do not respect shard boundaries: a class
// member's record is inferred from its representative's verdict, and
// the representative (the class's lowest experiment ID) may live in
// another shard. A shard therefore *executes* an out-of-shard
// representative when one of its own members needs the verdict, but
// never emits its record — the representative's home shard does that.
// The duplicated run is deterministic, so both shards derive identical
// member records and the merge stays byte-identical to a solo run.

// Shard restricts a campaign to the contiguous experiment-ID range
// [Start, End) of its full plan. The campaign still draws and
// classifies the complete plan (both are cheap and deterministic);
// only execution and record emission are scoped.
type Shard struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Size is the number of experiments the shard owns.
func (s Shard) Size() int { return s.End - s.Start }

// Contains reports whether experiment id belongs to the shard.
func (s Shard) Contains(id int) bool { return id >= s.Start && id < s.End }

// validFor checks the shard against the campaign's plan size.
func (s Shard) validFor(experiments int) error {
	if s.Start < 0 || s.End <= s.Start || s.End > experiments {
		return fmt.Errorf("goofi: shard [%d,%d) invalid for a %d-experiment plan", s.Start, s.End, experiments)
	}
	return nil
}

// SplitShards partitions a plan of total experiments into contiguous
// shards of at most size experiments each (the final shard takes the
// remainder). size <= 0 yields a single shard covering the whole plan.
func SplitShards(total, size int) []Shard {
	if total <= 0 {
		return nil
	}
	if size <= 0 || size > total {
		size = total
	}
	shards := make([]Shard, 0, (total+size-1)/size)
	for start := 0; start < total; start += size {
		end := start + size
		if end > total {
			end = total
		}
		shards = append(shards, Shard{Start: start, End: end})
	}
	return shards
}
