package goofi

import (
	"fmt"
	"sort"
	"strings"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/stats"
)

// The paper's analysis phase is ad-hoc queries against the campaign
// database (§3.3.4: "The user must write tailor made scripts or
// programs that query the database"). Query provides that layer over a
// record set: chainable filters plus the aggregations the paper's
// detailed investigations used (which elements caused the severe
// failures, when were faults injected, how large were the deviations).

// Query is an immutable view over a set of records.
type Query struct {
	recs []Record
}

// NewQuery wraps records; the slice is not copied, so callers must not
// mutate it while querying.
func NewQuery(recs []Record) Query {
	return Query{recs: recs}
}

// Len returns the number of records in the view.
func (q Query) Len() int {
	return len(q.recs)
}

// Records returns a copy of the current view.
func (q Query) Records() []Record {
	return append([]Record(nil), q.recs...)
}

// Where keeps the records matching pred.
func (q Query) Where(pred func(Record) bool) Query {
	var out []Record
	for _, r := range q.recs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return Query{recs: out}
}

// ByRegion keeps records from one injection region.
func (q Query) ByRegion(region string) Query {
	return q.Where(func(r Record) bool { return r.Region == region })
}

// ByElement keeps records injected into one state element.
func (q Query) ByElement(element string) Query {
	return q.Where(func(r Record) bool { return r.Element == element })
}

// ByOutcome keeps records with the given outcome label.
func (q Query) ByOutcome(outcome classify.Outcome) Query {
	return q.Where(func(r Record) bool { return r.Outcome == outcome.String() })
}

// Severe keeps the severe value failures.
func (q Query) Severe() Query {
	return q.Where(func(r Record) bool {
		return r.Outcome == classify.Permanent.String() ||
			r.Outcome == classify.SemiPermanent.String()
	})
}

// ValueFailures keeps all undetected wrong results.
func (q Query) ValueFailures() Query {
	return q.Where(func(r Record) bool {
		return strings.HasPrefix(r.Outcome, "uwr-")
	})
}

// Detected keeps the detected errors, optionally limited to one
// mechanism ("" = any).
func (q Query) Detected(mechanism string) Query {
	return q.Where(func(r Record) bool {
		if r.Outcome != classify.Detected.String() {
			return false
		}
		return mechanism == "" || r.Mechanism == mechanism
	})
}

// ElementCount is one row of a per-element tally.
type ElementCount struct {
	Element string `json:"element"`
	Count   int    `json:"count"`
}

// TopElements returns the k elements with the most records in the
// view, descending (ties broken by name for determinism). k ≤ 0 means
// all.
func (q Query) TopElements(k int) []ElementCount {
	counts := make(map[string]int)
	for _, r := range q.recs {
		counts[r.Element]++
	}
	out := make([]ElementCount, 0, len(counts))
	for e, c := range counts {
		out = append(out, ElementCount{Element: e, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Element < out[j].Element
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Proportion returns the view's share of a base population of n
// experiments.
func (q Query) Proportion(n int) stats.Proportion {
	return stats.Proportion{Count: len(q.recs), N: n}
}

// MaxDeviationStats returns the min/mean/max of the records' maximum
// output deviations.
func (q Query) MaxDeviationStats() (min, mean, max float64) {
	if len(q.recs) == 0 {
		return 0, 0, 0
	}
	min = q.recs[0].MaxDev
	max = q.recs[0].MaxDev
	sum := 0.0
	for _, r := range q.recs {
		if r.MaxDev < min {
			min = r.MaxDev
		}
		if r.MaxDev > max {
			max = r.MaxDev
		}
		sum += r.MaxDev
	}
	return min, sum / float64(len(q.recs)), max
}

// Report renders a short investigation summary in the style of the
// paper's "detailed investigation" paragraphs: which elements the
// view's records were injected into and how they were classified.
func (q Query) Report(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d records\n", title, len(q.recs))
	outcomes := stats.NewCounter()
	for _, r := range q.recs {
		outcomes.Add(r.Outcome)
	}
	for _, cat := range outcomes.Categories() {
		fmt.Fprintf(&b, "  %-22s %d\n", cat, outcomes.Count(cat))
	}
	if top := q.TopElements(5); len(top) > 0 {
		b.WriteString("  top elements:\n")
		for _, ec := range top {
			fmt.Fprintf(&b, "    %-16s %d\n", ec.Element, ec.Count)
		}
	}
	return b.String()
}
