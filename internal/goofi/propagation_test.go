package goofi

import (
	"strings"
	"testing"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// shortSpec keeps detail-mode tests fast: 60 iterations instead of 650.
func shortSpec() workload.RunSpec {
	spec := workload.PaperRunSpec()
	spec.Iterations = 60
	return spec
}

func goldenShort(t *testing.T) *workload.Outcome {
	t.Helper()
	out := workload.Run(workload.Program(workload.AlgorithmI), shortSpec())
	if out.Detected() {
		t.Fatalf("golden run trapped: %v", out.Trap)
	}
	return out
}

func TestPropagationStateFlipReachesOutput(t *testing.T) {
	golden := goldenShort(t)
	inj := workload.Injection{
		At:  golden.IterationStarts[30] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionCache, Element: "line0.data0", Bit: 21},
	}
	p, err := TracePropagation(workload.AlgorithmI, shortSpec(), inj)
	if err != nil {
		t.Fatal(err)
	}
	if p.FirstOutputDivergence < 0 {
		t.Error("state corruption should reach the output")
	}
	if p.CacheDivergence == 0 {
		t.Error("cache state should diverge")
	}
	if p.InjectionIteration != 30 {
		t.Errorf("injection iteration = %d, want 30", p.InjectionIteration)
	}
	if !strings.Contains(p.Reach(), "output") {
		t.Errorf("Reach() = %q", p.Reach())
	}
	if !strings.Contains(p.String(), "line0.data0") {
		t.Errorf("String() missing element: %s", p.String())
	}
}

func TestPropagationDeadRegisterFlipVanishes(t *testing.T) {
	golden := goldenShort(t)
	// r8 holds Kp and then u during the compute phase; a flip landing
	// in the idle phase hits a dead value that the next FMOVD rewrites.
	inj := workload.Injection{
		At:  golden.IterationStarts[30] + 10, // inside the poll loop
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r8", Bit: 7},
	}
	p, err := TracePropagation(workload.AlgorithmI, shortSpec(), inj)
	if err != nil {
		t.Fatal(err)
	}
	if p.Detected != "" {
		t.Skipf("flip detected by %s; pick of timing hit a live window", p.Detected)
	}
	if p.FirstOutputDivergence >= 0 {
		t.Errorf("dead register flip reached the output: %+v", p)
	}
	if p.RegisterDivergence == 0 {
		t.Error("register state should diverge at least briefly")
	}
	if p.VanishedAt == 0 {
		t.Error("divergence should vanish once the register is rewritten")
	}
}

func TestPropagationPCFlipDetected(t *testing.T) {
	golden := goldenShort(t)
	inj := workload.Injection{
		At:  golden.IterationStarts[30] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "pc", Bit: 14},
	}
	p, err := TracePropagation(workload.AlgorithmI, shortSpec(), inj)
	if err != nil {
		t.Fatal(err)
	}
	if p.Detected == "" {
		t.Fatalf("PC corruption not detected: %+v", p)
	}
	if p.Outcome != classify.Detected {
		t.Errorf("outcome = %v, want detected", p.Outcome)
	}
	if !strings.Contains(p.Reach(), "detected") {
		t.Errorf("Reach() = %q", p.Reach())
	}
}

func TestPropagationLatentFlip(t *testing.T) {
	golden := goldenShort(t)
	// r14 is the stack pointer: never touched by the workload, so the
	// flip persists to the end of the run without any effect.
	inj := workload.Injection{
		At:  golden.IterationStarts[30] + 1,
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r14", Bit: 3},
	}
	p, err := TracePropagation(workload.AlgorithmI, shortSpec(), inj)
	if err != nil {
		t.Fatal(err)
	}
	if p.Outcome != classify.Latent {
		t.Errorf("outcome = %v, want latent", p.Outcome)
	}
	if p.VanishedAt != 0 {
		t.Errorf("latent divergence should persist, vanished at %d", p.VanishedAt)
	}
	if !strings.Contains(p.Reach(), "latent") {
		t.Errorf("Reach() = %q", p.Reach())
	}
}

func TestPropagationDefaultsSpec(t *testing.T) {
	// A zero RunSpec must default to the paper run without panicking.
	inj := workload.Injection{
		At:  50,
		Bit: cpu.StateBit{Region: cpu.RegionRegisters, Element: "r14", Bit: 0},
	}
	p, err := TracePropagation(workload.AlgorithmI, workload.RunSpec{}, inj)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions == 0 {
		t.Error("no instructions compared")
	}
}
