package goofi

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{ID: 0, Variant: "alg1", Region: "cache", Element: "line0.data0", Bit: 27,
			At: 12345, Outcome: "uwr-permanent", FirstDev: 300, StrongIts: 350, MaxDev: 60.1},
		{ID: 1, Variant: "alg1", Region: "registers", Element: "pc", Bit: 14,
			At: 99, Outcome: "detected", Mechanism: "JUMP ERROR", FirstDev: -1},
		{ID: 2, Variant: "alg1", Region: "registers", Element: "r13", Bit: 5,
			At: 20000, Outcome: "overwritten", FirstDev: -1},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWriteRecordsIsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[1], `"mechanism":"JUMP ERROR"`) {
		t.Errorf("line 1 missing mechanism: %s", lines[1])
	}
}

func TestReadRecordsEmpty(t *testing.T) {
	got, err := ReadRecords(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from empty input", len(got))
	}
}

// A zero-byte JSONL file — a campaign that crashed before its first
// record, or a store file created but never written — is an empty
// database, not a truncated one: no records, and in particular no
// *TruncatedError.
func TestReadRecordsZeroByteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadRecords(f)
	var trunc *TruncatedError
	if errors.As(err, &trunc) {
		t.Fatalf("zero-byte file reported as truncated: %v", err)
	}
	if err != nil {
		t.Fatalf("zero-byte file: %v", err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from a zero-byte file", len(got))
	}
}

func TestReadRecordsMalformed(t *testing.T) {
	if _, err := ReadRecords(strings.NewReader("{not json")); err == nil {
		t.Error("expected error for malformed input")
	}
}

// A crash-interrupted campaign leaves a half-written final line; the
// intact records must still be readable, with the bad line reported.
func TestReadRecordsTruncatedFinalLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecords(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	cut := full[:len(full)-25] // chop mid-way through record 2

	got, err := ReadRecords(strings.NewReader(cut))
	if err == nil {
		t.Fatal("expected a TruncatedError for the half-written final line")
	}
	var trunc *TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("got %T (%v), want *TruncatedError", err, err)
	}
	if trunc.Line != 3 {
		t.Errorf("TruncatedError.Line = %d, want 3", trunc.Line)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name the line", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records alongside the error, want the 2 intact ones", len(got))
	}
	want := sampleRecords()
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// A malformed line in the *middle* of the stream is corruption, not
// truncation: that stays a hard error.
func TestReadRecordsCorruptMiddleLine(t *testing.T) {
	in := `{"id":0,"variant":"alg1"}` + "\n" + `{"id":1,"var` + "\n" + `{"id":2,"variant":"alg1"}` + "\n"
	got, err := ReadRecords(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected hard error for a corrupt middle line")
	}
	var trunc *TruncatedError
	if errors.As(err, &trunc) {
		t.Errorf("middle-line corruption misreported as truncation: %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name line 2", err)
	}
	if got != nil {
		t.Errorf("expected no records on hard error, got %d", len(got))
	}
}

func TestSaveLoadRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	recs := sampleRecords()
	if err := SaveRecords(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestLoadRecordsMissingFile(t *testing.T) {
	if _, err := LoadRecords(filepath.Join(t.TempDir(), "nope.jsonl")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestSaveRecordsBadPath(t *testing.T) {
	if err := SaveRecords(filepath.Join(t.TempDir(), "no", "dir", "x.jsonl"), nil); err == nil {
		t.Error("expected error for unwritable path")
	}
}
