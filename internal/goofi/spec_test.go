package goofi

import (
	"context"
	"strings"
	"testing"

	"ctrlguard/internal/workload"
)

func TestResolveVariant(t *testing.T) {
	cases := []struct {
		alg     int
		variant string
		want    workload.Variant
		errPart string // "" = no error, otherwise a substring of it
	}{
		{0, "", workload.AlgorithmI, ""},
		{1, "", workload.AlgorithmI, ""},
		{2, "", workload.AlgorithmII, ""},
		{0, "alg2", workload.AlgorithmII, ""},
		{0, "alg2-failstop", workload.Variant("alg2-failstop"), ""},
		{1, "alg2", "", "not both"},
		{3, "", "", "unknown algorithm"},
		{0, "no-such-variant", "", "unknown variant"},
	}
	for _, c := range cases {
		got, err := ResolveVariant(c.alg, c.variant)
		if c.errPart != "" {
			if err == nil || !strings.Contains(err.Error(), c.errPart) {
				t.Errorf("ResolveVariant(%d, %q) err = %v, want containing %q", c.alg, c.variant, err, c.errPart)
			}
			continue
		}
		if err != nil {
			t.Errorf("ResolveVariant(%d, %q): %v", c.alg, c.variant, err)
		} else if got != c.want {
			t.Errorf("ResolveVariant(%d, %q) = %q, want %q", c.alg, c.variant, got, c.want)
		}
	}
}

func TestCampaignSpecResolveInvalid(t *testing.T) {
	cases := []struct {
		name    string
		spec    CampaignSpec
		errPart string
	}{
		{"unknown variant", CampaignSpec{Variant: "bogus", Experiments: 10}, "unknown variant"},
		{"zero experiments", CampaignSpec{Variant: "alg1"}, "positive experiment count"},
		{"negative experiments", CampaignSpec{Alg: 1, Experiments: -5}, "positive experiment count"},
		{"negative precision", CampaignSpec{Alg: 1, Precision: -0.01}, "precision"},
		{"precision too large", CampaignSpec{Alg: 1, Precision: 1.5}, "precision"},
		{"negative workers", CampaignSpec{Alg: 1, Experiments: 10, Workers: -1}, "workers"},
		{"negative budget", CampaignSpec{Alg: 1, Precision: 0.01, MaxExperiments: -1}, "maxExperiments"},
	}
	for _, c := range cases {
		if _, err := c.spec.Resolve(); err == nil || !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: Resolve() err = %v, want containing %q", c.name, err, c.errPart)
		}
	}
}

func TestCampaignSpecResolveValid(t *testing.T) {
	cfg, err := CampaignSpec{Alg: 2, Experiments: 42, Seed: 7, Workers: 3}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Variant != workload.AlgorithmII || cfg.Experiments != 42 || cfg.Seed != 7 || cfg.Workers != 3 {
		t.Errorf("Resolve() = %+v", cfg)
	}

	// Precision-driven specs don't need an experiment count.
	if _, err := (CampaignSpec{Variant: "alg1", Precision: 0.005}).Resolve(); err != nil {
		t.Errorf("precision spec rejected: %v", err)
	}
	if !(CampaignSpec{Precision: 0.005}).Sequential() {
		t.Error("Sequential() = false for a precision spec")
	}
}

// Cancelling mid-campaign must stop at an experiment boundary and hand
// back the completed records with ctx's error.
func TestRunContextCancelReturnsPartialRecords(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 400
	stopAt := 20
	cfg := Config{Variant: workload.AlgorithmI, Experiments: n, Seed: 2001, Workers: 2}
	cfg.OnRecord = func(Record) {
		stopAt--
		if stopAt == 0 {
			cancel()
		}
	}
	res, err := RunContext(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("expected a partial result alongside the cancellation error")
	}
	if len(res.Records) == 0 || len(res.Records) >= n {
		t.Fatalf("partial records = %d, want in (0, %d)", len(res.Records), n)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i-1].ID >= res.Records[i].ID {
			t.Fatalf("partial records not ordered by ID: %d then %d", res.Records[i-1].ID, res.Records[i].ID)
		}
	}
	// The partial prefix must match an uncancelled run of the same
	// seed: determinism survives cancellation.
	full := pilot(t, workload.AlgorithmI, n)
	for _, r := range res.Records {
		if r != full.Records[r.ID] {
			t.Fatalf("partial record %d differs from the full campaign's", r.ID)
		}
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, Config{Variant: workload.AlgorithmI, Experiments: 50, Seed: 1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Records) != 0 {
		t.Fatalf("expected an empty partial result, got %+v", res)
	}
}

func TestRunUntilPrecisionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen int
	cfg := PrecisionConfig{
		Campaign: Config{Variant: workload.AlgorithmI, Seed: 11, OnRecord: func(Record) {
			seen++
			if seen == 30 {
				cancel()
			}
		}},
		TargetHalfWidth: 1e-9, // unreachable: only cancellation ends it
		BatchSize:       100,
		MaxExperiments:  400,
	}
	res, err := RunUntilPrecisionContext(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Records) == 0 || len(res.Records) >= 400 {
		t.Fatalf("expected partial records, got %v", res)
	}
	if res.Converged {
		t.Error("cancelled campaign reported convergence")
	}
}
