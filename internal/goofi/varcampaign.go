package goofi

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/control"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/stats"
)

// VarConfig configures a variable-level campaign: faults are IEEE-754
// bit-flips applied directly to a Go controller's state vector at a
// random control iteration, skipping the CPU simulation entirely. This
// is the fast path for studying assertion and recovery designs on the
// library itself — thousands of experiments per second — while the
// SCIFI campaigns on the simulated CPU remain the faithful path.
type VarConfig struct {
	// Name labels the records (the Variant column).
	Name string

	// New constructs a fresh controller for each run. The controller
	// is driven through Stateful.Update with inputs [r, y].
	New func() control.Stateful

	// Experiments is the number of faults to inject.
	Experiments int

	// Seed makes the campaign reproducible.
	Seed uint64

	// Iterations per run (0 = the paper's 650).
	Iterations int

	// Engine and Reference default to the paper's engine workload.
	Engine    *plant.EngineConfig
	Reference plant.ReferenceProfile

	// Classify holds the thresholds (zero value = paper defaults).
	Classify classify.Config

	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
}

func (cfg *VarConfig) fill() error {
	if cfg.New == nil {
		return fmt.Errorf("goofi: VarConfig.New is required")
	}
	if cfg.Experiments <= 0 {
		return fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", cfg.Experiments)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = plant.DefaultIterations
	}
	if cfg.Engine == nil {
		ec := plant.DefaultEngineConfig()
		cfg.Engine = &ec
	}
	if cfg.Reference == nil {
		cfg.Reference = plant.PaperReference()
	}
	if cfg.Classify == (classify.Config{}) {
		cfg.Classify = classify.DefaultConfig()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// runVarLoop drives ctrl closed-loop and returns the output trace.
// corruptAt < 0 disables injection.
func runVarLoop(ctrl control.Stateful, cfg *VarConfig, corruptAt int, flip inject.VarFlip) []float64 {
	eng := plant.NewEngine(*cfg.Engine)
	out := make([]float64, 0, cfg.Iterations)
	y := eng.Speed()
	for k := 0; k < cfg.Iterations; k++ {
		if k == corruptAt {
			flip.Apply(ctrl)
		}
		t := float64(k) * cfg.Engine.T
		u := ctrl.Update([]float64{cfg.Reference(t), y})[0]
		y = eng.Step(u)
		out = append(out, u)
	}
	return out
}

// RunVariable executes a variable-level campaign and returns records in
// the same schema as the CPU campaigns: Region "variable", Element
// "state[i]", At = the injection iteration. Variable-level faults
// cannot be detected by hardware EDMs, so every record is either a
// value failure or non-effective; Latent means the final controller
// state still differs from the reference run's.
func RunVariable(cfg VarConfig) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}

	goldenCtrl := cfg.New()
	stateDim := len(goldenCtrl.State())
	if stateDim == 0 {
		return nil, fmt.Errorf("goofi: controller exposes no state to inject into")
	}
	golden := runVarLoop(goldenCtrl, &cfg, -1, inject.VarFlip{})
	goldenFinal := goldenCtrl.State()

	sampler := inject.NewVarSampler(cfg.Seed, stateDim, cfg.Iterations)
	type experiment struct {
		iteration int
		flip      inject.VarFlip
	}
	exps := make([]experiment, cfg.Experiments)
	for i := range exps {
		it, flip := sampler.Next()
		exps[i] = experiment{iteration: it, flip: flip}
	}

	records := make([]Record, cfg.Experiments)
	var wg sync.WaitGroup
	next := make(chan int)
	workers := cfg.Workers
	if workers > cfg.Experiments {
		workers = cfg.Experiments
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				e := exps[i]
				ctrl := cfg.New()
				outputs := runVarLoop(ctrl, &cfg, e.iteration, e.flip)
				stateDiffers := !float64SlicesEqual(ctrl.State(), goldenFinal)
				verdict := classify.Run(golden, outputs, stateDiffers, cfg.Classify)
				records[i] = Record{
					ID:        i,
					Variant:   cfg.Name,
					Region:    "variable",
					Element:   fmt.Sprintf("state[%d]", e.flip.Element),
					Bit:       e.flip.Bit,
					At:        uint64(e.iteration),
					Outcome:   verdict.Outcome.String(),
					FirstDev:  verdict.FirstDeviation,
					StrongIts: verdict.StrongIterations,
					MaxDev:    verdict.MaxDeviation,
				}
			}
		}()
	}
	for i := 0; i < cfg.Experiments; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	return &Result{Records: records}, nil
}

// VarSummary condenses a variable-level campaign: total value failures
// and the severe share.
func VarSummary(recs []Record) (valueFailures, severe stats.Proportion) {
	c := counterForRegion(recs, "")
	return ValueFailureProportion(c), SevereProportion(c)
}

// float64SlicesEqual compares two state vectors bit-exactly (NaN-safe:
// a NaN state differs from any golden value, which is what the latent
// classification needs).
func float64SlicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
