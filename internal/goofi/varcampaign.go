package goofi

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/control"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/plant"
	"ctrlguard/internal/stats"
)

// VarConfig configures a variable-level campaign: faults are IEEE-754
// bit-flips applied directly to a Go controller's state vector at a
// random control iteration, skipping the CPU simulation entirely. This
// is the fast path for studying assertion and recovery designs on the
// library itself — thousands of experiments per second — while the
// SCIFI campaigns on the simulated CPU remain the faithful path.
type VarConfig struct {
	// Name labels the records (the Variant column).
	Name string

	// New constructs a fresh controller for each run. The controller
	// is driven through Stateful.Update with inputs [r, y].
	New func() control.Stateful

	// Experiments is the number of faults to inject.
	Experiments int

	// Seed makes the campaign reproducible.
	Seed uint64

	// Iterations per run (0 = the paper's 650).
	Iterations int

	// Engine and Reference default to the paper's engine workload.
	Engine    *plant.EngineConfig
	Reference plant.ReferenceProfile

	// Classify holds the thresholds (zero value = paper defaults).
	Classify classify.Config

	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int

	// DisableWarmStart forces every experiment to replay the
	// pre-injection iterations instead of resuming from a controller
	// clone captured during the golden run. Results are byte-identical
	// either way. Warm start also disables itself when the controller
	// does not support cloning (no CloneStateful method, or a guard
	// with an uncloneable assertion).
	DisableWarmStart bool
}

func (cfg *VarConfig) fill() error {
	if cfg.New == nil {
		return fmt.Errorf("goofi: VarConfig.New is required")
	}
	if cfg.Experiments <= 0 {
		return fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", cfg.Experiments)
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = plant.DefaultIterations
	}
	if cfg.Engine == nil {
		ec := plant.DefaultEngineConfig()
		cfg.Engine = &ec
	}
	if cfg.Reference == nil {
		cfg.Reference = plant.PaperReference()
	}
	if cfg.Classify == (classify.Config{}) {
		cfg.Classify = classify.DefaultConfig()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// runVarLoop drives ctrl closed-loop and returns the output trace.
// corruptAt < 0 disables injection.
func runVarLoop(ctrl control.Stateful, cfg *VarConfig, corruptAt int, flip inject.VarFlip) []float64 {
	eng := plant.NewEngine(*cfg.Engine)
	return varLoopFrom(ctrl, eng, eng.Speed(), 0, nil, cfg, corruptAt, flip)
}

// varLoopFrom is the loop body shared by full runs and checkpoint
// resumes: iterations [0, startK) are taken from the golden prefix
// (identical by determinism — the injection has not happened yet),
// iterations [startK, Iterations) are executed.
func varLoopFrom(ctrl control.Stateful, eng *plant.Engine, y float64, startK int,
	prefix []float64, cfg *VarConfig, corruptAt int, flip inject.VarFlip) []float64 {
	out := make([]float64, 0, cfg.Iterations)
	out = append(out, prefix[:startK]...)
	for k := startK; k < cfg.Iterations; k++ {
		if k == corruptAt {
			flip.Apply(ctrl)
		}
		t := float64(k) * cfg.Engine.T
		u := ctrl.Update([]float64{cfg.Reference(t), y})[0]
		y = eng.Step(u)
		out = append(out, u)
	}
	return out
}

// varCheckpoint freezes a variable-level run at the top of one control
// iteration: the controller clone, the plant clone and the last
// measurement. Checkpoints are immutable; every resume re-clones.
type varCheckpoint struct {
	ctrl control.Stateful
	eng  *plant.Engine
	y    float64
}

// cloneVarController clones a controller through the CloneStateful()
// any convention (see package control; core.GuardedController also
// implements it).
func cloneVarController(c control.Stateful) (control.Stateful, bool) {
	cl, ok := c.(interface{ CloneStateful() any })
	if !ok {
		return nil, false
	}
	v := cl.CloneStateful()
	if v == nil {
		return nil, false
	}
	s, ok := v.(control.Stateful)
	return s, ok
}

// runVarGolden drives ctrl fault-free like runVarLoop while capturing a
// checkpoint at each requested iteration. When the controller (or the
// guard state it carries) cannot be cloned, the checkpoint map comes
// back nil and the campaign runs every experiment in full.
func runVarGolden(ctrl control.Stateful, cfg *VarConfig, want map[int]bool) ([]float64, map[int]*varCheckpoint) {
	eng := plant.NewEngine(*cfg.Engine)
	out := make([]float64, 0, cfg.Iterations)
	ckpts := make(map[int]*varCheckpoint, len(want))
	y := eng.Speed()
	for k := 0; k < cfg.Iterations; k++ {
		if ckpts != nil && want[k] {
			if cc, ok := cloneVarController(ctrl); ok {
				ckpts[k] = &varCheckpoint{ctrl: cc, eng: eng.Clone(), y: y}
			} else {
				ckpts = nil
			}
		}
		t := float64(k) * cfg.Engine.T
		u := ctrl.Update([]float64{cfg.Reference(t), y})[0]
		y = eng.Step(u)
		out = append(out, u)
	}
	return out, ckpts
}

// RunVariable executes a variable-level campaign and returns records in
// the same schema as the CPU campaigns: Region "variable", Element
// "state[i]", At = the injection iteration. Variable-level faults
// cannot be detected by hardware EDMs, so every record is either a
// value failure or non-effective; Latent means the final controller
// state still differs from the reference run's.
func RunVariable(cfg VarConfig) (*Result, error) {
	return RunVariableContext(context.Background(), cfg)
}

// RunVariableContext is RunVariable with cancellation: when ctx is
// cancelled the campaign stops at the next experiment boundary and
// returns the records completed so far together with ctx's error.
func RunVariableContext(ctx context.Context, cfg VarConfig) (*Result, error) {
	results, err := RunVariableBatch(ctx, []VarConfig{cfg})
	if len(results) == 1 {
		return results[0], err
	}
	return nil, err
}

// varExperiment is one pre-drawn fault of a batched campaign.
type varExperiment struct {
	iteration int
	flip      inject.VarFlip
}

// varCampaign is the prepared state of one campaign within a batch.
type varCampaign struct {
	cfg         VarConfig
	golden      []float64
	goldenFinal []float64
	exps        []varExperiment
	records     []Record
	completed   []bool

	// ckpts holds the warm-start checkpoints keyed by injection
	// iteration, captured during the golden run; nil when warm start
	// is off or the controller is not cloneable.
	ckpts       map[int]*varCheckpoint
	resumed     atomic.Int64
	fullReplays atomic.Int64
}

// runOne executes one experiment, resuming from the checkpoint at its
// injection iteration when one exists.
func (c *varCampaign) runOne(e varExperiment) ([]float64, control.Stateful) {
	if ck := c.ckpts[e.iteration]; ck != nil {
		if ctrl, ok := cloneVarController(ck.ctrl); ok {
			c.resumed.Add(1)
			out := varLoopFrom(ctrl, ck.eng.Clone(), ck.y, e.iteration,
				c.golden, &c.cfg, e.iteration, e.flip)
			return out, ctrl
		}
	}
	c.fullReplays.Add(1)
	ctrl := c.cfg.New()
	return runVarLoop(ctrl, &c.cfg, e.iteration, e.flip), ctrl
}

// RunVariableBatch evaluates several variable-level campaigns over one
// shared worker pool, interleaving their experiments so a batch of
// small campaigns saturates the machine the way one large campaign
// does — the throughput path for the design-space tuner, which
// evaluates many candidate configurations at once. Results align with
// cfgs by index, and each campaign's records are identical to what
// RunVariable would produce alone: faults are pre-drawn per campaign
// from its own seed, so scheduling cannot change any result.
//
// When ctx is cancelled the batch stops at the next experiment
// boundary and every campaign returns the records it completed so far
// (ordered by experiment ID) together with ctx's error.
func RunVariableBatch(ctx context.Context, cfgs []VarConfig) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(cfgs) == 0 {
		return nil, nil
	}

	// Set-up phase: golden run and pre-drawn faults per campaign.
	camps := make([]*varCampaign, len(cfgs))
	poolSize := 0
	totalExps := 0
	for ci := range cfgs {
		cfg := cfgs[ci] // copy; fill must not mutate the caller's slice
		if err := cfg.fill(); err != nil {
			return nil, fmt.Errorf("goofi: campaign %d (%s): %w", ci, cfg.Name, err)
		}
		if cfg.Workers > poolSize {
			poolSize = cfg.Workers
		}
		goldenCtrl := cfg.New()
		stateDim := len(goldenCtrl.State())
		if stateDim == 0 {
			return nil, fmt.Errorf("goofi: campaign %d (%s): controller exposes no state to inject into", ci, cfg.Name)
		}
		c := &varCampaign{
			cfg:       cfg,
			exps:      make([]varExperiment, cfg.Experiments),
			records:   make([]Record, cfg.Experiments),
			completed: make([]bool, cfg.Experiments),
		}
		// Pre-draw the faults before the golden run so the golden pass
		// knows which iterations to checkpoint. Injections at
		// iteration 0 have no prefix to skip and stay full replays.
		sampler := inject.NewVarSampler(cfg.Seed, stateDim, cfg.Iterations)
		want := make(map[int]bool)
		for i := range c.exps {
			it, flip := sampler.Next()
			c.exps[i] = varExperiment{iteration: it, flip: flip}
			if it > 0 && !cfg.DisableWarmStart {
				want[it] = true
			}
		}
		if cfg.DisableWarmStart {
			c.golden = runVarLoop(goldenCtrl, &c.cfg, -1, inject.VarFlip{})
		} else {
			c.golden, c.ckpts = runVarGolden(goldenCtrl, &c.cfg, want)
		}
		c.goldenFinal = goldenCtrl.State()
		totalExps += cfg.Experiments
		camps[ci] = c
	}
	if poolSize > totalExps {
		poolSize = totalExps
	}

	// Injection phase: one task queue over (campaign, experiment)
	// pairs; records land at fixed indices, so the result is
	// deterministic regardless of worker scheduling.
	type task struct{ camp, exp int }
	next := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < poolSize; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range next {
				if ctx.Err() != nil {
					continue // drain without running
				}
				c := camps[tk.camp]
				e := c.exps[tk.exp]
				outputs, ctrl := c.runOne(e)
				stateDiffers := !float64SlicesEqual(ctrl.State(), c.goldenFinal)
				verdict := classify.Run(c.golden, outputs, stateDiffers, c.cfg.Classify)
				c.records[tk.exp] = Record{
					ID:         tk.exp,
					Variant:    c.cfg.Name,
					Region:     "variable",
					Element:    fmt.Sprintf("state[%d]", e.flip.Element),
					Bit:        e.flip.Bit,
					At:         uint64(e.iteration),
					Outcome:    verdict.Outcome.String(),
					FirstDev:   verdict.FirstDeviation,
					StrongIts:  verdict.StrongIterations,
					MaxDev:     verdict.MaxDeviation,
					Provenance: ProvenanceSimulated,
				}
				c.completed[tk.exp] = true
			}
		}()
	}
feed:
	for ci, c := range camps {
		for i := 0; i < c.cfg.Experiments; i++ {
			select {
			case next <- task{camp: ci, exp: i}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(next)
	wg.Wait()

	results := make([]*Result, len(camps))
	err := ctx.Err()
	for ci, c := range camps {
		res := &Result{Records: c.records}
		if c.ckpts != nil {
			res.WarmStart = &WarmStartStats{
				Resumed:     int(c.resumed.Load()),
				FullReplays: int(c.fullReplays.Load()),
				Checkpoints: len(c.ckpts),
			}
		}
		if err != nil {
			partial := make([]Record, 0, len(c.records))
			for i, ok := range c.completed {
				if ok {
					partial = append(partial, c.records[i])
				}
			}
			res.Records = partial
		}
		results[ci] = res
	}
	return results, err
}

// VarSummary condenses a variable-level campaign: total value failures
// and the severe share.
func VarSummary(recs []Record) (valueFailures, severe stats.Proportion) {
	c := counterForRegion(recs, "")
	return ValueFailureProportion(c), SevereProportion(c)
}

// float64SlicesEqual compares two state vectors bit-exactly (NaN-safe:
// a NaN state differs from any golden value, which is what the latent
// classification needs).
func float64SlicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
