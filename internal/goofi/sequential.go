package goofi

import (
	"context"
	"fmt"

	"ctrlguard/internal/stats"
)

// Sequential campaigns: instead of fixing the number of experiments in
// advance (the paper used 9290 and 2372), run batches until the
// quantity of interest is estimated to a target precision. The paper's
// Algorithm II campaign, for example, is too small to bound the severe
// rate tightly (0.17 % ± 0.17 %); a precision-driven campaign makes the
// trade-off explicit.

// Metric extracts the proportion of interest from a tally.
type Metric func(*stats.Counter) stats.Proportion

// PrecisionConfig configures a sequential campaign.
type PrecisionConfig struct {
	// Campaign is the base configuration; its Experiments field is
	// ignored (batches are sized by BatchSize).
	Campaign Config

	// Metric is the proportion whose confidence interval drives
	// termination (default: SevereProportion).
	Metric Metric

	// TargetHalfWidth stops the campaign once the metric's 95 %
	// confidence half-width is at or below this value (e.g. 0.001 for
	// ±0.1 percentage points).
	TargetHalfWidth float64

	// BatchSize is the number of experiments per batch (default 500).
	BatchSize int

	// MaxExperiments bounds the total effort (default 50000).
	MaxExperiments int
}

// PrecisionResult is the outcome of a sequential campaign.
type PrecisionResult struct {
	Records     []Record
	Estimate    stats.Proportion
	HalfWidth   float64
	Batches     int
	Converged   bool // target reached before MaxExperiments
	Experiments int

	// WarmStart reports the checkpoint fast path's work avoidance,
	// cumulative over every batch (the batches share one golden run
	// and checkpoint cache); nil when the fast path was disabled.
	WarmStart *WarmStartStats

	// Prune accumulates the fault-space pruner's work avoidance over
	// every batch (the batches share one event index); nil when pruning
	// was disabled.
	Prune *PruneStats

	// Detect accumulates the armed detectors' verdict counts over every
	// batch (the batches share one monitored golden run and mined
	// automaton); nil when no detectors were armed.
	Detect *DetectStats

	// Lockstep accumulates the batching engine's work sharing over
	// every batch; nil when lockstep was disabled or inapplicable.
	Lockstep *LockstepStats

	// Faults accumulates worker fault isolation's interventions over
	// every batch (see Result.Faults).
	Faults FaultStats
}

// RunUntilPrecision runs batches of experiments, extending the seed per
// batch, until the metric's confidence half-width reaches the target or
// the experiment budget is exhausted. Results are deterministic for a
// given configuration.
func RunUntilPrecision(cfg PrecisionConfig) (*PrecisionResult, error) {
	return RunUntilPrecisionContext(context.Background(), cfg)
}

// RunUntilPrecisionContext is RunUntilPrecision with cancellation: when
// ctx is cancelled the campaign stops at the next experiment boundary
// and returns the records and estimate accumulated so far together
// with ctx's error. A nil ctx behaves like context.Background.
func RunUntilPrecisionContext(ctx context.Context, cfg PrecisionConfig) (*PrecisionResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.TargetHalfWidth <= 0 {
		return nil, fmt.Errorf("goofi: TargetHalfWidth must be positive, got %v", cfg.TargetHalfWidth)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 500
	}
	if cfg.MaxExperiments <= 0 {
		cfg.MaxExperiments = 50000
	}
	metric := cfg.Metric
	if metric == nil {
		metric = SevereProportion
	}

	res := &PrecisionResult{}
	counter := stats.NewCounter()
	// Every batch runs the same variant and spec, so the golden run,
	// the checkpoint cache and the pruner's event index carry over from
	// batch to batch: only the first batch pays for the reference
	// execution.
	var warm *warmState
	var prn *pruneState
	var det *detectState
	for res.Experiments < cfg.MaxExperiments {
		batch := cfg.Campaign
		batch.Experiments = cfg.BatchSize
		if remaining := cfg.MaxExperiments - res.Experiments; batch.Experiments > remaining {
			batch.Experiments = remaining
		}
		// A distinct seed per batch keeps samples independent while
		// staying reproducible.
		batch.Seed = cfg.Campaign.Seed + uint64(res.Batches)*1_000_003
		batch.warm = warm
		batch.prune = prn
		batch.det = det

		out, err := RunContext(ctx, batch)
		if out != nil {
			warm = out.Config.warm
			prn = out.Config.prune
			det = out.Config.det
			if out.WarmStart != nil {
				res.WarmStart = out.WarmStart
			}
			if out.Prune != nil {
				if res.Prune == nil {
					res.Prune = &PruneStats{}
				}
				res.Prune.add(*out.Prune)
			}
			if out.Detect != nil {
				if res.Detect == nil {
					d := *out.Detect
					d.CFEDetected, d.AutomatonDetected = 0, 0
					res.Detect = &d
				}
				res.Detect.CFEDetected += out.Detect.CFEDetected
				res.Detect.AutomatonDetected += out.Detect.AutomatonDetected
			}
			if out.Lockstep != nil {
				if res.Lockstep == nil {
					res.Lockstep = &LockstepStats{K: out.Lockstep.K}
				}
				res.Lockstep.Batches += out.Lockstep.Batches
				res.Lockstep.Lanes += out.Lockstep.Lanes
				res.Lockstep.Solo += out.Lockstep.Solo
				res.Lockstep.K = out.Lockstep.K
			}
			res.Faults.add(out.Faults)
		}
		if out != nil && len(out.Records) > 0 {
			res.Records = append(res.Records, out.Records...)
			res.Batches++
			res.Experiments += len(out.Records)

			counter.Merge(Analyze(out.Records).Total)
			res.Estimate = metric(counter)
			res.HalfWidth = res.Estimate.CI95()
		}
		if err != nil {
			if ctx.Err() != nil {
				return res, err
			}
			return nil, err
		}
		// A zero-count estimate has a degenerate normal CI; keep
		// sampling until at least one observation or the budget ends.
		if res.Estimate.Count > 0 && res.HalfWidth <= cfg.TargetHalfWidth {
			res.Converged = true
			break
		}
	}
	return res, nil
}
