package goofi

import (
	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// LockstepStats reports the lockstep batching engine's work sharing:
// how many experiments completed as lanes forked off a shared
// golden-prefix replay versus classic solo runs.
type LockstepStats struct {
	// Batches is the number of lockstep batches executed.
	Batches int `json:"batches"`

	// Lanes is the number of experiments completed as lockstep lanes.
	Lanes int `json:"lanes"`

	// Solo is the number of simulated experiments that ran solo:
	// single-lane batches, lanes the batch engine could not fork (the
	// fault-free run ends before their injection point), and the
	// abandoned-representative fallback pass.
	Solo int `json:"solo"`

	// K is the per-batch lane bound in effect (configured or derived).
	K int `json:"k"`
}

// lockstepK derives the per-batch lane bound: enough lanes per batch
// to amortise the leader's shared replay, few enough batches per
// worker to keep the pool busy.
func lockstepK(cfg Config, workers int) int {
	if cfg.LockstepK > 0 {
		return cfg.LockstepK
	}
	k := (cfg.Experiments + workers - 1) / workers
	if k < 4 {
		k = 4
	}
	if k > 64 {
		k = 64
	}
	return k
}

// runBatchLockstep executes one batch of experiments over a single
// shared golden-prefix replay. It returns nil when the spec cannot be
// batched or the batch engine panicked; callers then fall back to solo
// runs, which re-establish per-experiment fault isolation. Individual
// nil outcomes (injection points the fault-free run never reaches)
// also take the solo fallback.
func runBatchLockstep(prog *cpu.Program, cfg Config, warm *warmState, ids []int, injections []workload.Injection) (outs []*workload.Outcome) {
	defer func() {
		if recover() != nil {
			outs = nil
		}
	}()
	spec := cfg.Spec
	injs := make([]*workload.Injection, len(ids))
	minAt := injections[ids[0]].At
	for j, i := range ids {
		inj := injections[i]
		injs[j] = &inj
		if inj.At < minAt {
			minAt = inj.At
		}
	}
	if warm != nil {
		spec.Golden = warm.golden
		spec.From = warm.checkpointFor(minAt)
	}
	res, ok := workload.RunBatch(prog, spec, injs)
	if !ok {
		return nil
	}
	if warm != nil {
		for j, out := range res {
			if out != nil {
				warm.noteLane(injs[j].At, out)
			}
		}
	}
	return res
}

// buildRecord classifies one experiment outcome against the golden run
// into its campaign record. Shared by the solo and lockstep paths so a
// lane's record is constructed exactly like a solo run's.
func buildRecord(cfg Config, golden *workload.Outcome, id int, inj workload.Injection, out *workload.Outcome) Record {
	rec := Record{
		ID:         id,
		Variant:    string(cfg.Variant),
		Region:     string(inj.Bit.Region),
		Element:    inj.Bit.Element,
		Bit:        inj.Bit.Bit,
		At:         inj.At,
		Model:      string(inj.Model),
		Width:      inj.Width,
		Provenance: ProvenanceSimulated,
	}
	var verdict classify.Verdict
	if out.Detected() {
		verdict = classify.DetectedVerdict(string(out.Trap.Mech))
	} else {
		stateDiffers := !cpu.StatesEqual(golden.FinalState, out.FinalState)
		verdict = classify.RunMulti(golden.MultiOutputs, out.MultiOutputs, stateDiffers, cfg.Classify)
	}
	rec.Outcome = verdict.Outcome.String()
	rec.Mechanism = verdict.Mechanism
	rec.FirstDev = verdict.FirstDeviation
	rec.StrongIts = verdict.StrongIterations
	rec.MaxDev = verdict.MaxDeviation
	return rec
}
