package goofi

import (
	"reflect"
	"testing"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/plant"
)

// varWarmConfig builds a variable-level campaign whose controllers
// exercise the cloning paths: a bare PI, a guard with a stateful rate
// assertion (history must survive the clone), and a guard with a
// combined assertion (aliasing of state/output assertions must survive).
func varWarmFactories() map[string]func() control.Stateful {
	return map[string]func() control.Stateful{
		"pi":        piFactory(),
		"protected": protectedFactory(),
		"guarded":   guardedFactory(nil),
		"guarded-rate": guardedFactory(
			core.NewRateAssertion(5.0)),
	}
}

// TestVarWarmStartRecordsByteIdentical pins the fast-path contract for
// variable-level campaigns: resumed experiments classify identically
// to full replays for every controller shape, including guards whose
// assertion history is part of the resumed state.
func TestVarWarmStartRecordsByteIdentical(t *testing.T) {
	for name, factory := range varWarmFactories() {
		t.Run(name, func(t *testing.T) {
			warm := VarConfig{Name: name, New: factory, Experiments: 120, Seed: 7, Iterations: 200}
			cold := warm
			cold.DisableWarmStart = true

			a, err := RunVariable(warm)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunVariable(cold)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Records, b.Records) {
				for i := range b.Records {
					if !reflect.DeepEqual(a.Records[i], b.Records[i]) {
						t.Fatalf("record %d differs:\nwarm: %+v\nfull: %+v",
							i, a.Records[i], b.Records[i])
					}
				}
				t.Fatal("records differ")
			}
			if a.WarmStart == nil {
				t.Fatal("warm campaign reported no stats")
			}
			if a.WarmStart.Resumed == 0 {
				t.Error("no experiment resumed from a clone; the fast path is dead code")
			}
			if b.WarmStart != nil {
				t.Error("disabled campaign reported warm-start stats")
			}
		})
	}
}

// TestVarWarmStartDeclinesUncloneable: a guard built on a FuncAssertion
// cannot promise a faithful clone (the closure may capture state), so
// the campaign must fall back to full replay — and still be correct.
func TestVarWarmStartDeclinesUncloneable(t *testing.T) {
	factory := guardedFactory(core.FuncAssertion{
		CheckFunc: func(_ int, v float64) bool { return v > -1e9 },
		Label:     "opaque",
	})
	warm := VarConfig{Name: "opaque", New: factory, Experiments: 40, Seed: 3, Iterations: 120}
	cold := warm
	cold.DisableWarmStart = true

	a, err := RunVariable(warm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVariable(cold)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("records differ for an uncloneable controller")
	}
	if a.WarmStart != nil {
		t.Errorf("uncloneable controller still produced warm-start stats: %+v", a.WarmStart)
	}
}

func TestGuardCloneIndependence(t *testing.T) {
	cfg := control.PaperPIConfig(plant.DefaultSampleInterval)
	rate := core.NewRateAssertion(4.0)
	assert := core.All(core.RangeAssertion{Min: cfg.OutMin, Max: cfg.OutMax}, rate)
	g := core.NewGuard(control.NewPI(cfg), assert)

	// Build up history before cloning.
	for i := 0; i < 25; i++ {
		if _, err := g.Step([]float64{2500, 2000 + 10*float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clone, ok := g.Clone()
	if !ok {
		t.Fatal("guard with rate assertion should be cloneable")
	}

	// Driven identically, original and clone must stay identical.
	for i := 0; i < 25; i++ {
		in := []float64{2500, 2100 + 7*float64(i)}
		ua, err := g.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		ub, err := clone.Step(append([]float64(nil), in...))
		if err != nil {
			t.Fatal(err)
		}
		if !float64SlicesEqual(ua, ub) {
			t.Fatalf("step %d: clone output %v, original %v", i, ub, ua)
		}
	}
	if !float64SlicesEqual(g.Controller().State(), clone.Controller().State()) {
		t.Fatal("clone state diverged from original under identical inputs")
	}

	// Mutating the clone must not reach the original.
	clone.Controller().SetState([]float64{1e6})
	if g.Controller().State()[0] == 1e6 {
		t.Fatal("clone shares state with the original")
	}
	if g.Stats() != clone.Stats() {
		// Stats were equal at clone time and both saw the same
		// violation-free steps since; only the SetState above may not
		// have leaked. Equal stats are expected here.
		t.Fatalf("stats diverged: original %+v, clone %+v", g.Stats(), clone.Stats())
	}
}
