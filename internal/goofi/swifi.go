package goofi

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/stats"
	"ctrlguard/internal/workload"
)

// RunSWIFI executes a pre-runtime SWIFI campaign: each experiment runs
// the workload from a program image with one bit inverted (§3.3.1 of
// the paper — GOOFI's second injection technique). Unlike the transient
// SCIFI faults, an image fault is permanent for the whole run, so the
// outcome distribution skews towards detections and gross failures.
//
// Records use Region "image-code" / "image-data" and Element "wordN";
// At is always zero (the fault exists before the first instruction).
func RunSWIFI(cfg Config) (*Result, error) {
	if cfg.Experiments <= 0 {
		return nil, fmt.Errorf("goofi: campaign needs a positive experiment count, got %d", cfg.Experiments)
	}
	if cfg.Spec.Iterations == 0 {
		cfg.Spec = workload.PaperRunSpec()
	}
	if cfg.Classify == (classify.Config{}) {
		cfg.Classify = classify.DefaultConfig()
	}
	prog := workload.Program(cfg.Variant)

	// SWIFI mutates the stored image before the run, so only the
	// permanent models apply: single bit-flips and bursts. The runtime
	// models (pc, transient) decline explicitly.
	model := workload.FaultModel(cfg.Model).Canonical()
	switch model {
	case workload.ModelBitFlip, workload.ModelBurst:
	default:
		return nil, fmt.Errorf("goofi: SWIFI supports the %q and %q fault models, not %q (runtime-only)",
			workload.ModelBitFlip, workload.ModelBurst, model)
	}

	golden := workload.Run(prog, cfg.Spec)
	if golden.Detected() {
		return nil, fmt.Errorf("goofi: reference execution trapped: %v", golden.Trap)
	}

	sampler := inject.NewImageSampler(cfg.Seed, prog)
	if model == workload.ModelBurst {
		w := cfg.BurstWidth
		if w <= 0 {
			w = workload.DefaultBurstWidth
		}
		sampler.SetBurstWidth(w)
	}
	flips := make([]inject.ImageFlip, cfg.Experiments)
	for i := range flips {
		flips[i] = sampler.Next()
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Experiments {
		workers = cfg.Experiments
	}

	records := make([]Record, cfg.Experiments)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				records[i] = runSWIFIExperiment(prog, cfg, golden, i, flips[i])
				if cfg.Progress != nil {
					mu.Lock()
					done++
					cfg.Progress(done, cfg.Experiments)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.Experiments; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	return &Result{Config: cfg, Golden: golden, Records: records}, nil
}

func runSWIFIExperiment(prog *cpu.Program, cfg Config, golden *workload.Outcome, id int, flip inject.ImageFlip) Record {
	rec := Record{
		ID:         id,
		Variant:    string(cfg.Variant),
		Region:     "image-" + flip.Target.String(),
		Element:    "word" + strconv.Itoa(flip.Word),
		Bit:        flip.Bit,
		Provenance: ProvenanceSimulated,
	}
	if flip.Width > 1 {
		rec.Model = string(workload.ModelBurst)
		rec.Width = flip.Width
	}
	mutated, err := flip.Apply(prog)
	if err != nil {
		// Cannot happen for sampler-produced flips; record it as a
		// detected configuration error rather than dropping data.
		rec.Outcome = classify.Detected.String()
		rec.Mechanism = "CAMPAIGN ERROR"
		return rec
	}
	out := workload.Run(mutated, cfg.Spec)

	var verdict classify.Verdict
	if out.Detected() {
		verdict = classify.DetectedVerdict(string(out.Trap.Mech))
	} else {
		stateDiffers := !statesEqualIgnoringImage(golden, out, flip)
		verdict = classify.Run(golden.Outputs, out.Outputs, stateDiffers, cfg.Classify)
	}
	rec.Outcome = verdict.Outcome.String()
	rec.Mechanism = verdict.Mechanism
	rec.FirstDev = verdict.FirstDeviation
	rec.StrongIts = verdict.StrongIterations
	rec.MaxDev = verdict.MaxDeviation
	return rec
}

// statesEqualIgnoringImage compares final states; the injected image
// bit itself necessarily differs, so a single-word difference at the
// injected location does not count as divergence (the fault would
// otherwise always be classified latent even when nothing consumed it).
func statesEqualIgnoringImage(golden, faulty *workload.Outcome, flip inject.ImageFlip) bool {
	a, b := golden.FinalState, faulty.FinalState
	if len(a) != len(b) {
		return false
	}
	diffs := 0
	for i := range a {
		if a[i] != b[i] {
			if a[i]^b[i] != flip.Mask() {
				return false
			}
			diffs++
		}
	}
	return diffs <= 1
}

// AnalyzeSWIFI tallies a SWIFI campaign. The two image regions take
// the place of the cache/register columns: image-code faults populate
// the Cache counter's slot and image-data faults the Regs slot; the
// region table renderer then shows code/data/total columns.
func AnalyzeSWIFI(recs []Record) *Analysis {
	a := &Analysis{
		Cache: counterForRegion(recs, "image-code"),
		Regs:  counterForRegion(recs, "image-data"),
		Total: counterForRegion(recs, ""),
	}
	if len(recs) > 0 {
		a.Variant = recs[0].Variant
	}
	return a
}

// counterForRegion tallies outcome categories for one region ("" = all).
func counterForRegion(recs []Record, region string) *stats.Counter {
	c := stats.NewCounter()
	for _, r := range recs {
		if region != "" && r.Region != region {
			continue
		}
		cat := r.Outcome
		if r.Outcome == classify.Detected.String() {
			cat = detectedPrefix + r.Mechanism
		}
		c.Add(cat)
	}
	return c
}
