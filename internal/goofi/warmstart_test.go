package goofi

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// warmTestConfig returns a campaign small enough to full-replay in a
// test, but with enough experiments to exercise checkpoints, cache
// reuse, early exits and the iteration-0 fallback.
func warmTestConfig(v workload.Variant) Config {
	spec := workload.SpecFor(v)
	spec.Iterations = 150
	return Config{
		Variant:     v,
		Experiments: 150,
		Seed:        2001,
		Spec:        spec,
		Workers:     4,
		// These tests pin warm-start bookkeeping exactly (resumed vs
		// full replays); pruning would skip some experiments entirely.
		DisablePrune: true,
	}
}

// TestWarmStartRecordsByteIdentical is the pinned correctness contract
// of the fast path: for a fixed seed, the checkpointed campaign and
// the full-replay campaign must produce identical records, field for
// field, for both of the paper's algorithms.
func TestWarmStartRecordsByteIdentical(t *testing.T) {
	for _, v := range []workload.Variant{workload.AlgorithmI, workload.AlgorithmII} {
		t.Run(string(v), func(t *testing.T) {
			warm := warmTestConfig(v)
			res, err := Run(warm)
			if err != nil {
				t.Fatal(err)
			}
			cold := warmTestConfig(v)
			cold.DisableWarmStart = true
			ref, err := Run(cold)
			if err != nil {
				t.Fatal(err)
			}

			if len(res.Records) != len(ref.Records) {
				t.Fatalf("%d records, want %d", len(res.Records), len(ref.Records))
			}
			for i := range ref.Records {
				if !reflect.DeepEqual(res.Records[i], ref.Records[i]) {
					t.Fatalf("record %d differs:\nwarm: %+v\nfull: %+v",
						i, res.Records[i], ref.Records[i])
				}
			}

			if res.WarmStart == nil {
				t.Fatal("warm-start campaign reported no stats")
			}
			if res.WarmStart.Resumed == 0 {
				t.Error("no experiment resumed from a checkpoint; the fast path is dead code")
			}
			if res.WarmStart.Checkpoints == 0 {
				t.Error("no checkpoint was captured")
			}
			if got := res.WarmStart.Resumed + res.WarmStart.FullReplays; got != cold.Experiments {
				t.Errorf("stats cover %d experiments, want %d", got, cold.Experiments)
			}
			if ref.WarmStart != nil {
				t.Error("disabled campaign reported warm-start stats")
			}
		})
	}
}

// TestWarmStartTraceByteIdentical pins the other half of the contract:
// detail-mode traces re-derived from a warm-started campaign's
// configuration encode byte-for-byte like those from a full-replay
// campaign (traces always replay in full; warm start must not leak
// into them).
func TestWarmStartTraceByteIdentical(t *testing.T) {
	warm := warmTestConfig(workload.AlgorithmII)
	cold := warmTestConfig(workload.AlgorithmII)
	cold.DisableWarmStart = true
	for _, n := range []int{0, 7, 42} {
		a, err := TraceExperiment(nil, warm, n)
		if err != nil {
			t.Fatalf("experiment %d (warm config): %v", n, err)
		}
		b, err := TraceExperiment(nil, cold, n)
		if err != nil {
			t.Fatalf("experiment %d (cold config): %v", n, err)
		}
		if !bytes.Equal(trace.Encode(a), trace.Encode(b)) {
			t.Errorf("experiment %d: trace bytes differ between warm and cold configs", n)
		}
	}
}

func TestWarmStartSequentialCampaignIdentical(t *testing.T) {
	base := warmTestConfig(workload.AlgorithmI)
	pcfg := PrecisionConfig{
		Campaign:        base,
		TargetHalfWidth: 0.5, // generous: a couple of batches suffice
		BatchSize:       60,
		MaxExperiments:  180,
	}
	res, err := RunUntilPrecision(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	cold := pcfg
	cold.Campaign.DisableWarmStart = true
	ref, err := RunUntilPrecision(cold)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, ref.Records) {
		t.Fatal("sequential campaign records differ between warm start and full replay")
	}
	if res.WarmStart == nil {
		t.Fatal("sequential warm-start campaign reported no stats")
	}
	if got := res.WarmStart.Resumed + res.WarmStart.FullReplays; got != res.Experiments {
		t.Errorf("cumulative stats cover %d experiments, want %d", got, res.Experiments)
	}
}

// TestWarmStateIterationZeroFallsBack covers the edge the cache must
// not mishandle: injections during iteration 0 have no earlier
// boundary to resume from and must run as full replays.
func TestWarmStateIterationZeroFallsBack(t *testing.T) {
	v := workload.AlgorithmI
	spec := workload.SpecFor(v)
	spec.Iterations = 50
	prog := workload.Program(v)
	goldenSpec := spec
	goldenSpec.RecordStateHashes = true
	golden := workload.Run(prog, goldenSpec)

	w := newWarmState(prog, spec, golden, 0)
	if ck := w.checkpointFor(0); ck != nil {
		t.Error("instruction 0 yielded a checkpoint")
	}
	if at := golden.IterationStarts[1] - 1; w.checkpointFor(at) != nil {
		t.Errorf("instruction %d (iteration 0) yielded a checkpoint", at)
	}
	if ck := w.checkpointFor(golden.IterationStarts[1]); ck == nil {
		t.Error("iteration 1 should be checkpointable")
	} else if ck.Iteration() != 1 {
		t.Errorf("checkpoint at iteration %d, want 1", ck.Iteration())
	}
}

// TestCheckpointCacheConcurrent hammers one small cache from many
// goroutines; run with -race this checks the singleflight and LRU
// locking, and it verifies every returned checkpoint matches its
// requested iteration even while eviction churns the map.
func TestCheckpointCacheConcurrent(t *testing.T) {
	v := workload.AlgorithmI
	spec := workload.SpecFor(v)
	spec.Iterations = 60
	prog := workload.Program(v)
	goldenSpec := spec
	goldenSpec.RecordStateHashes = true
	golden := workload.Run(prog, goldenSpec)

	w := newWarmState(prog, spec, golden, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 40; i++ {
				k := 1 + rng.Intn(spec.Iterations-1)
				ck := w.get(k)
				if ck == nil {
					t.Errorf("iteration %d: capture failed", k)
					return
				}
				if ck.Iteration() != k {
					t.Errorf("asked for iteration %d, got %d", k, ck.Iteration())
					return
				}
				if ck.Instructions() != golden.IterationStarts[k] {
					t.Errorf("iteration %d: checkpoint at instruction %d, want %d",
						k, ck.Instructions(), golden.IterationStarts[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := w.stats()
	if s.Evictions == 0 {
		t.Error("a 4-entry cache under 320 mixed requests never evicted")
	}
	w.mu.Lock()
	size := len(w.entries)
	w.mu.Unlock()
	if size > w.cap {
		t.Errorf("cache holds %d entries, cap is %d", size, w.cap)
	}
}

func TestInjectionIteration(t *testing.T) {
	starts := []uint64{0, 100, 250, 400}
	cases := []struct {
		at   uint64
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {249, 1}, {250, 2}, {399, 2}, {400, 3}, {100000, 3},
	}
	for _, c := range cases {
		if got := injectionIteration(starts, c.at); got != c.want {
			t.Errorf("injectionIteration(%d) = %d, want %d", c.at, got, c.want)
		}
	}
}
