package goofi

import (
	"strconv"
	"strings"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/prune"
	"ctrlguard/internal/workload"
)

// Fault-space pruning: before the campaign executes anything, the
// injection plan is classified against the golden run's def-use event
// index (internal/prune). Provably dead injections get their records
// synthesized from the golden verdict; injections sharing a first-use
// equivalence class collapse to one representative experiment whose
// verdict is fanned out to the members. Every record carries a
// Provenance value so analysis stays honest about what ran versus what
// was inferred — and the aggregate statistics are byte-identical to an
// unpruned campaign (pinned by tests).

// Record provenance values. Representatives encode how many member
// records were inferred from them; members name their representative's
// experiment ID.
const (
	// ProvenanceSimulated marks a record produced by actually running
	// the experiment.
	ProvenanceSimulated = "simulated"

	// ProvenanceDead marks a record synthesized for an injection the
	// pruner proved non-effective (overwritten before use).
	ProvenanceDead = "pruned-dead"

	provenanceRepPrefix    = "class-representative:"
	provenanceMemberPrefix = "class-member-of:"
)

// ProvenanceRepresentative returns the provenance of a simulated class
// representative standing for members inferred records.
func ProvenanceRepresentative(members int) string {
	return provenanceRepPrefix + strconv.Itoa(members)
}

// ProvenanceMemberOf returns the provenance of a record inferred from
// the representative experiment rep.
func ProvenanceMemberOf(rep int) string {
	return provenanceMemberPrefix + strconv.Itoa(rep)
}

// PruneStats reports the pruner's work avoidance for one campaign; for
// sequential campaigns the counts accumulate over every batch.
type PruneStats struct {
	// Planned is the number of injections the sampler drew.
	Planned int `json:"planned"`

	// Simulated counts experiments that actually executed (including
	// abandoned ones and members re-simulated after their
	// representative was abandoned).
	Simulated int `json:"simulated"`

	// PrunedDead counts records synthesized for provably dead faults.
	PrunedDead int `json:"prunedDead"`

	// Collapsed counts member records inferred from a class
	// representative's verdict.
	Collapsed int `json:"collapsed"`

	// Classes is the number of equivalence classes that actually
	// collapsed work (representatives with at least one member).
	Classes int `json:"classes"`
}

func (s *PruneStats) add(o PruneStats) {
	s.Planned += o.Planned
	s.Simulated += o.Simulated
	s.PrunedDead += o.PrunedDead
	s.Collapsed += o.Collapsed
	s.Classes += o.Classes
}

// pruneState carries the event index and the precomputed dead verdict
// across the batches of a sequential campaign, exactly like warmState
// carries the checkpoint cache: the instrumented golden replay is paid
// for once.
type pruneState struct {
	idx *prune.Index

	// deadVerdict is the golden-vs-golden classification — what a full
	// simulation of any dead fault would produce.
	deadVerdict classify.Verdict
}

func newPruneState(idx *prune.Index, golden *workload.Outcome, ccfg classify.Config) *pruneState {
	return &pruneState{
		idx:         idx,
		deadVerdict: classify.RunMulti(golden.MultiOutputs, golden.MultiOutputs, false, ccfg),
	}
}

// Plan decisions for one experiment.
const (
	pdSimulate uint8 = iota // run it; nothing is inferred from it
	pdDead                  // synthesize the golden verdict, never run
	pdRep                   // run it, then fan its verdict out to members
	pdMember                // inferred from its class representative
)

// prunePlan is the pruner's decision for every experiment of one
// campaign batch. It is deterministic for a given (index, injections),
// so resumed and restarted campaigns rebuild the identical plan.
type prunePlan struct {
	decision []uint8
	repOf    []int         // pdMember: the representative's experiment ID
	members  map[int][]int // pdRep: member IDs in ascending order
}

// buildPrunePlan classifies every injection. The representative of a
// class is its lowest experiment ID.
func buildPrunePlan(ix *prune.Index, injections []workload.Injection) *prunePlan {
	p := &prunePlan{
		decision: make([]uint8, len(injections)),
		repOf:    make([]int, len(injections)),
		members:  make(map[int][]int),
	}
	classes := make(map[prune.Key]int, len(injections))
	for i, inj := range injections {
		fate, ok := ix.Fate(inj.Bit, inj.At)
		switch {
		case !ok:
			p.decision[i] = pdSimulate
		case fate.Dead:
			p.decision[i] = pdDead
		default:
			rep, seen := classes[fate.Key]
			if !seen {
				classes[fate.Key] = i // decision stays pdSimulate until a member arrives
				continue
			}
			p.decision[rep] = pdRep
			p.decision[i] = pdMember
			p.repOf[i] = rep
			p.members[rep] = append(p.members[rep], i)
		}
	}
	return p
}

// provenance returns the plan's provenance for experiment i. Resumed
// records are normalized to these values, so a restarted campaign's
// record file is byte-identical to an uninterrupted one.
func (p *prunePlan) provenance(i int) string {
	switch p.decision[i] {
	case pdDead:
		return ProvenanceDead
	case pdRep:
		return ProvenanceRepresentative(len(p.members[i]))
	case pdMember:
		return ProvenanceMemberOf(p.repOf[i])
	default:
		return ProvenanceSimulated
	}
}

// deadRecord synthesizes the record a full simulation of a dead fault
// would produce: the golden run classified against itself.
func deadRecord(cfg Config, id int, inj workload.Injection, v classify.Verdict) Record {
	return Record{
		ID:         id,
		Variant:    string(cfg.Variant),
		Region:     string(inj.Bit.Region),
		Element:    inj.Bit.Element,
		Bit:        inj.Bit.Bit,
		At:         inj.At,
		Outcome:    v.Outcome.String(),
		Mechanism:  v.Mechanism,
		FirstDev:   v.FirstDeviation,
		StrongIts:  v.StrongIterations,
		MaxDev:     v.MaxDeviation,
		Provenance: ProvenanceDead,
	}
}

// memberRecord clones a representative's verdict for class member id.
func memberRecord(id int, inj workload.Injection, rep Record) Record {
	rec := rep
	rec.ID = id
	rec.Region = string(inj.Bit.Region)
	rec.Element = inj.Bit.Element
	rec.Bit = inj.Bit.Bit
	rec.At = inj.At
	rec.Provenance = ProvenanceMemberOf(rep.ID)
	return rec
}

// tallyPrune derives the campaign's pruning statistics from the
// completed records' provenance, so the stats agree with the records
// even across resumes and abandoned-representative fallbacks. The
// [lo, hi) range scopes the tally to a shard's own records; an
// out-of-shard representative executed only for its verdict counts
// toward no shard (its home shard tallies the emitted record).
func tallyPrune(records []Record, completed []bool, planned, lo, hi int) *PruneStats {
	s := &PruneStats{Planned: planned}
	for i := lo; i < hi; i++ {
		rec := records[i]
		if !completed[i] {
			continue
		}
		switch {
		case rec.Provenance == ProvenanceDead:
			s.PrunedDead++
		case strings.HasPrefix(rec.Provenance, provenanceMemberPrefix):
			s.Collapsed++
		case strings.HasPrefix(rec.Provenance, provenanceRepPrefix):
			s.Classes++
			s.Simulated++
		default:
			s.Simulated++
		}
	}
	return s
}
