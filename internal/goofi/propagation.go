package goofi

import (
	"fmt"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/workload"
)

// Propagation is the result of a detail-mode experiment (GOOFI's
// execution-trace mode, §3.3.3 of the paper): it describes how a single
// injected bit-flip spread through the machine, instruction by
// instruction, compared against the reference execution.
type Propagation struct {
	// Injection echoes the injected fault.
	Injection workload.Injection

	// InjectionIteration is the control iteration during which the
	// fault was injected.
	InjectionIteration int

	// Detected is non-empty when an EDM terminated the faulty run,
	// and names the mechanism.
	Detected string

	// RegisterDivergence counts instructions at which the register
	// file (incl. PC and flags) differed from the reference run.
	RegisterDivergence uint64

	// CacheDivergence counts instructions at which the cache state
	// differed from the reference run.
	CacheDivergence uint64

	// FirstControlFlowDivergence is the instruction index at which
	// the PC first differed (the error changed the execution path),
	// or 0 when control flow never diverged.
	FirstControlFlowDivergence uint64

	// FirstOutputDivergence is the first control iteration whose
	// output differed from the reference, or -1.
	FirstOutputDivergence int

	// VanishedAt is the instruction index after which the machine
	// state never differed from the reference again (the error was
	// overwritten); 0 when the divergence persisted to the end of the
	// run or the run trapped.
	VanishedAt uint64

	// Outcome is the ordinary classification of the run.
	Outcome classify.Outcome

	// Instructions is the length of the compared instruction stream.
	Instructions uint64
}

// Reach summarises how far the error travelled.
func (p *Propagation) Reach() string {
	switch {
	case p.Detected != "":
		return "detected: " + p.Detected
	case p.FirstOutputDivergence >= 0:
		return "reached the controller output"
	case p.RegisterDivergence == 0 && p.CacheDivergence == 0:
		return "no architectural effect"
	case p.VanishedAt > 0:
		return "overwritten before any effect"
	default:
		return "latent in the architectural state"
	}
}

// String renders a one-line report.
func (p *Propagation) String() string {
	return fmt.Sprintf(
		"inject %s at instr %d (iteration %d): %s; reg-divergent %d instrs, cache-divergent %d instrs, outcome %s",
		p.Injection.Bit, p.Injection.At, p.InjectionIteration, p.Reach(),
		p.RegisterDivergence, p.CacheDivergence, p.Outcome)
}

// stateTrace records per-instruction signatures of one run.
type stateTrace struct {
	regHash   []uint64
	cacheHash []uint64
	pc        []uint32
}

func traceRun(prog *cpu.Program, spec workload.RunSpec) (*workload.Outcome, *stateTrace) {
	tr := &stateTrace{}
	spec.Observer = func(_ int, _ uint64, vm *cpu.CPU) {
		tr.regHash = append(tr.regHash, vm.RegisterHash())
		tr.cacheHash = append(tr.cacheHash, vm.CacheHash())
		tr.pc = append(tr.pc, vm.PC)
	}
	out := workload.Run(prog, spec)
	return out, tr
}

// TracePropagation runs one experiment in detail mode: a reference
// execution and a faulty execution are traced instruction by
// instruction and compared. This is far slower than a normal campaign
// experiment and meant for analysing individual faults.
//
// The comparison aligns the two runs by global instruction index. A
// fault that changes the instruction stream's length without changing
// behaviour (for example, a poll-flag corruption that ends the idle
// loop a few spins early) therefore shows as divergent to the end of
// the run even though the outputs and final state match; the Outcome
// field, which compares outputs and final state, remains authoritative.
func TracePropagation(variant workload.Variant, spec workload.RunSpec, inj workload.Injection) (*Propagation, error) {
	if spec.Iterations == 0 {
		spec = workload.PaperRunSpec()
	}
	prog := workload.Program(variant)

	goldenSpec := spec
	goldenSpec.Injection = nil
	golden, goldenTrace := traceRun(prog, goldenSpec)
	if golden.Detected() {
		return nil, fmt.Errorf("goofi: reference execution trapped: %v", golden.Trap)
	}

	faultySpec := spec
	faultySpec.Injection = &inj
	faulty, faultyTrace := traceRun(prog, faultySpec)

	p := &Propagation{
		Injection:             inj,
		FirstOutputDivergence: -1,
	}
	// Locate the injection iteration from the golden iteration map.
	for k, start := range golden.IterationStarts {
		if inj.At >= start {
			p.InjectionIteration = k
		}
	}

	n := len(goldenTrace.regHash)
	if len(faultyTrace.regHash) < n {
		n = len(faultyTrace.regHash)
	}
	p.Instructions = uint64(n)
	lastDiverged := uint64(0)
	for i := 0; i < n; i++ {
		regDiff := goldenTrace.regHash[i] != faultyTrace.regHash[i]
		cacheDiff := goldenTrace.cacheHash[i] != faultyTrace.cacheHash[i]
		if regDiff {
			p.RegisterDivergence++
		}
		if cacheDiff {
			p.CacheDivergence++
		}
		if regDiff || cacheDiff {
			lastDiverged = uint64(i)
		}
		if p.FirstControlFlowDivergence == 0 && goldenTrace.pc[i] != faultyTrace.pc[i] {
			p.FirstControlFlowDivergence = uint64(i)
		}
	}

	if faulty.Detected() {
		p.Detected = string(faulty.Trap.Mech)
		p.Outcome = classify.Detected
		return p, nil
	}

	if lastDiverged+1 < uint64(n) && (p.RegisterDivergence > 0 || p.CacheDivergence > 0) {
		p.VanishedAt = lastDiverged + 1
	}

	verdict := classify.RunMulti(golden.MultiOutputs, faulty.MultiOutputs,
		!cpu.StatesEqual(golden.FinalState, faulty.FinalState), classify.DefaultConfig())
	p.Outcome = verdict.Outcome
	p.FirstOutputDivergence = verdict.FirstDeviation
	// Insignificant failures deviate below the strong threshold; find
	// the first raw difference on any output for them.
	if p.FirstOutputDivergence < 0 {
	scan:
		for j := range golden.MultiOutputs {
			if j >= len(faulty.MultiOutputs) {
				break
			}
			for k := range faulty.MultiOutputs[j] {
				if k < len(golden.MultiOutputs[j]) && faulty.MultiOutputs[j][k] != golden.MultiOutputs[j][k] {
					p.FirstOutputDivergence = k
					break scan
				}
			}
		}
	}
	return p, nil
}
