package goofi

import (
	"context"
	"testing"

	"ctrlguard/internal/control"
	"ctrlguard/internal/core"
	"ctrlguard/internal/plant"
)

func piFactory() func() control.Stateful {
	return func() control.Stateful {
		return control.NewPI(control.PaperPIConfig(plant.DefaultSampleInterval))
	}
}

func protectedFactory() func() control.Stateful {
	return func() control.Stateful {
		return control.NewProtectedPI(control.PaperPIConfig(plant.DefaultSampleInterval))
	}
}

func guardedFactory(extra core.Assertion) func() control.Stateful {
	return func() control.Stateful {
		cfg := control.PaperPIConfig(plant.DefaultSampleInterval)
		assert := core.Assertion(core.RangeAssertion{Min: cfg.OutMin, Max: cfg.OutMax})
		if extra != nil {
			assert = core.All(assert, extra)
		}
		g := core.NewGuard(control.NewPI(cfg), assert)
		return core.NewGuardedController(g)
	}
}

func TestRunVariableValidation(t *testing.T) {
	if _, err := RunVariable(VarConfig{Experiments: 10}); err == nil {
		t.Error("expected error without a factory")
	}
	if _, err := RunVariable(VarConfig{New: piFactory()}); err == nil {
		t.Error("expected error without experiments")
	}
}

func TestRunVariableRecordSchema(t *testing.T) {
	res, err := RunVariable(VarConfig{
		Name: "pi", New: piFactory(), Experiments: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 100 {
		t.Fatalf("records = %d", len(res.Records))
	}
	for _, r := range res.Records {
		if r.Region != "variable" || r.Variant != "pi" {
			t.Fatalf("bad record %+v", r)
		}
		if r.Mechanism != "" {
			t.Fatalf("variable-level faults cannot be detected: %+v", r)
		}
	}
}

func TestRunVariableDeterministic(t *testing.T) {
	run := func() []Record {
		res, err := RunVariable(VarConfig{
			Name: "pi", New: piFactory(), Experiments: 50, Seed: 7, Workers: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestVariableCampaignProtectionComparison is the library-level analogue
// of the paper's Table 4: Algorithm II and the Guard must both slash the
// severe share relative to the bare PI, because every injected fault
// lands directly in the state variable (the paper's severe channel).
func TestVariableCampaignProtectionComparison(t *testing.T) {
	const n = 600
	severeShare := func(name string, factory func() control.Stateful) float64 {
		res, err := RunVariable(VarConfig{Name: name, New: factory, Experiments: n, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		vf, sev := VarSummary(res.Records)
		if vf.Count == 0 {
			return 0
		}
		return float64(sev.Count) / float64(vf.Count)
	}

	bare := severeShare("pi", piFactory())
	protected := severeShare("protected-pi", protectedFactory())
	guarded := severeShare("guarded-pi", guardedFactory(nil))

	if bare < 0.10 {
		t.Fatalf("bare severe share = %v; direct state faults should often be severe", bare)
	}
	if protected >= bare/2 {
		t.Errorf("Algorithm II share %v not clearly below bare %v", protected, bare)
	}
	if guarded >= bare/2 {
		t.Errorf("Guard share %v not clearly below bare %v", guarded, bare)
	}
}

// TestRunVariableBatchMatchesSolo checks the batched API's contract:
// interleaving campaigns over one shared pool must not change any
// campaign's records relative to running it alone.
func TestRunVariableBatchMatchesSolo(t *testing.T) {
	cfgs := []VarConfig{
		{Name: "pi", New: piFactory(), Experiments: 120, Seed: 5},
		{Name: "guarded", New: guardedFactory(nil), Experiments: 80, Seed: 9},
		{Name: "protected", New: protectedFactory(), Experiments: 60, Seed: 5},
	}
	batch, err := RunVariableBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("batch results = %d, want %d", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		solo, err := RunVariable(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i].Records) != len(solo.Records) {
			t.Fatalf("%s: batch records = %d, solo = %d", cfg.Name, len(batch[i].Records), len(solo.Records))
		}
		for j := range solo.Records {
			if batch[i].Records[j] != solo.Records[j] {
				t.Fatalf("%s record %d differs:\nbatch %+v\nsolo  %+v", cfg.Name, j, batch[i].Records[j], solo.Records[j])
			}
		}
	}
}

func TestRunVariableBatchEmpty(t *testing.T) {
	res, err := RunVariableBatch(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

func TestRunVariableBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunVariableBatch(ctx, []VarConfig{
		{Name: "pi", New: piFactory(), Experiments: 500, Seed: 1},
	})
	if err == nil {
		t.Fatal("want context error from a cancelled batch")
	}
	if len(res) != 1 {
		t.Fatalf("cancelled batch still returns per-campaign results, got %d", len(res))
	}
	if n := len(res[0].Records); n >= 500 {
		t.Fatalf("cancelled campaign completed all %d experiments", n)
	}
}

// TestVariableCampaignRateAssertion checks the paper's future-work
// direction: adding a rate-of-change assertion catches in-range state
// jumps (the Figure 10 escape) and reduces the residual severe share
// further than the range assertion alone.
func TestVariableCampaignRateAssertion(t *testing.T) {
	const n = 1500
	severe := func(factory func() control.Stateful) int {
		res, err := RunVariable(VarConfig{Name: "g", New: factory, Experiments: n, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		_, sev := VarSummary(res.Records)
		return sev.Count
	}

	rangeOnly := severe(guardedFactory(nil))
	// Legitimate per-iteration state change is bounded by
	// T·Ki·e ≈ 3.9 degrees; 8 leaves safety margin.
	withRate := severe(guardedFactory(core.NewRateAssertion(8)))

	if withRate > rangeOnly {
		t.Errorf("rate assertion increased severe count: %d -> %d", rangeOnly, withRate)
	}
	if rangeOnly > 0 && withRate == rangeOnly {
		t.Logf("note: rate assertion did not reduce severe count (%d); acceptable but unexpected", rangeOnly)
	}
}
