package goofi

import (
	"fmt"
	"io"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/cpu"
	"ctrlguard/internal/stats"
)

// WriteMarkdownReport renders a campaign comparison as GitHub-flavoured
// markdown in the structure of EXPERIMENTS.md, so documentation tables
// can be regenerated mechanically from fresh campaigns:
//
//	go run ./cmd/goofi -compare -markdown > report.md
func WriteMarkdownReport(w io.Writer, a1, a2 *Analysis) error {
	md := &mdWriter{w: w}

	md.printf("# Campaign report: %s vs %s\n\n", a1.Variant, a2.Variant)
	md.printf("Faults injected: %d (%s), %d (%s).\n\n",
		a1.Total.Total(), a1.Variant, a2.Total.Total(), a2.Variant)

	md.printf("## Outcome distribution\n\n")
	md.printf("| Outcome | %s | %s |\n|---|---|---|\n", a1.Variant, a2.Variant)
	row := func(label string, cats ...string) {
		md.printf("| %s | %s | %s |\n", label,
			mdProp(a1.Total.SumProportion(cats...)),
			mdProp(a2.Total.SumProportion(cats...)))
	}
	row("Non-effective errors", catLatent, catOverwritten)
	row("Detected errors", detectedCategories()...)
	row("Undetected wrong results (permanent)", catPermanent)
	row("Undetected wrong results (semi-permanent)", catSemiPermanent)
	row("Undetected wrong results (transient)", catTransient)
	row("Undetected wrong results (insignificant)", catInsignificant)
	row("Total undetected wrong results", valueFailureCategories()...)
	row("Severe undetected wrong results", severeCategories()...)

	md.printf("\n## Detection mechanisms\n\n")
	md.printf("| Mechanism | %s | %s |\n|---|---|---|\n", a1.Variant, a2.Variant)
	for _, mech := range cpu.Mechanisms() {
		cat := detectedPrefix + string(mech)
		if a1.Total.Count(cat) == 0 && a2.Total.Count(cat) == 0 {
			continue
		}
		row(string(mech), cat)
	}

	md.printf("\n## Regional structure (%s)\n\n", a1.Variant)
	md.printf("| Region | Faults | Value failures | Severe |\n|---|---|---|---|\n")
	for _, rc := range []struct {
		name string
		c    *stats.Counter
	}{{"cache", a1.Cache}, {"registers", a1.Regs}} {
		md.printf("| %s | %d | %s | %s |\n", rc.name, rc.c.Total(),
			mdProp(ValueFailureProportion(rc.c)), mdProp(SevereProportion(rc.c)))
	}

	md.printf("\n## Headline\n\n")
	writeHeadline(md, a1)
	writeHeadline(md, a2)
	return md.err
}

func writeHeadline(md *mdWriter, a *Analysis) {
	vf := ValueFailureProportion(a.Total)
	sev := SevereProportion(a.Total)
	md.printf("- **%s**: value failures %s; severe %s", a.Variant, mdProp(vf), mdProp(sev))
	if vf.Count > 0 {
		share := stats.Proportion{Count: sev.Count, N: vf.Count}
		md.printf("; severe share of value failures %s", mdProp(share))
	}
	md.printf("\n")
}

// WriteInvestigation appends the severe-failure investigation of one
// record set as markdown (which elements, what deviations), mirroring
// the paper's "detailed investigation" narrative.
func WriteInvestigation(w io.Writer, recs []Record) error {
	md := &mdWriter{w: w}
	q := NewQuery(recs)
	severe := q.Severe()
	md.printf("## Severe-failure investigation\n\n")
	if severe.Len() == 0 {
		md.printf("No severe value failures in %d records.\n", q.Len())
		return md.err
	}
	md.printf("%d of %d records are severe. Injected elements:\n\n", severe.Len(), q.Len())
	md.printf("| Element | Severe count |\n|---|---|\n")
	for _, ec := range severe.TopElements(10) {
		md.printf("| %s | %d |\n", ec.Element, ec.Count)
	}
	min, mean, max := severe.MaxDeviationStats()
	md.printf("\nOutput deviations of the severe failures: min %.2f, mean %.2f, max %.2f degrees.\n",
		min, mean, max)
	perm := q.ByOutcome(classify.Permanent)
	md.printf("Permanent failures: %d.\n", perm.Len())
	return md.err
}

func mdProp(p stats.Proportion) string {
	return fmt.Sprintf("%.2f%% ± %.2f%% (%d)", p.P()*100, p.CI95()*100, p.Count)
}

// mdWriter accumulates the first write error, keeping the rendering
// code linear.
type mdWriter struct {
	w   io.Writer
	err error
}

func (m *mdWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}
