package goofi

import (
	"context"
	"fmt"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/inject"
	"ctrlguard/internal/trace"
	"ctrlguard/internal/workload"
)

// TraceConfig opts a campaign into forensic tracing: selected
// experiments are re-executed in detail mode after classification and
// their propagation traces handed to OnTrace. Tracing an experiment
// costs two fully instrumented runs (reference and faulty), orders of
// magnitude more than the experiment itself — select sparingly.
type TraceConfig struct {
	// Select decides which completed experiments to trace. nil selects
	// the severe value failures (permanent and semi-permanent), the
	// cases the paper's propagation analysis is about.
	Select func(Record) bool

	// OnTrace receives each captured trace. Calls are serialised with
	// OnRecord but follow worker completion order. A capture that
	// fails (for example when the campaign is cancelled mid-trace) is
	// dropped rather than reported.
	OnTrace func(Record, *trace.Trace)
}

func (tc *TraceConfig) shouldTrace(rec Record) bool {
	if tc.Select != nil {
		return tc.Select(rec)
	}
	return rec.Outcome == classify.Permanent.String() ||
		rec.Outcome == classify.SemiPermanent.String()
}

// TraceExperiment re-runs experiment n of the campaign described by
// cfg in detail mode and returns its propagation trace. The injection
// is re-derived from cfg.Seed exactly as RunContext draws it, so the
// returned trace replays the campaign's experiment n bit for bit —
// a campaign record plus its campaign spec is enough to reconstruct
// the full forensic picture after the fact. The replay declines every
// shortcut: no warm-start checkpoints and no fault-space pruning, so
// even an experiment whose campaign record was inferred (pruned-dead or
// class member) is traced as a genuine full simulation.
func TraceExperiment(ctx context.Context, cfg Config, n int) (*trace.Trace, error) {
	if n < 0 {
		return nil, fmt.Errorf("goofi: experiment index %d is negative", n)
	}
	if cfg.Experiments > 0 && n >= cfg.Experiments {
		return nil, fmt.Errorf("goofi: experiment %d out of range (campaign has %d)", n, cfg.Experiments)
	}
	if cfg.Spec.Iterations == 0 {
		cfg.Spec = workload.SpecFor(cfg.Variant)
	}
	prog := workload.Program(cfg.Variant)
	golden := workload.Run(prog, cfg.Spec)
	if golden.Detected() {
		return nil, fmt.Errorf("goofi: reference execution trapped: %v", golden.Trap)
	}

	sampler := inject.NewSampler(cfg.Seed, golden.Instructions)
	var inj workload.Injection
	for i := 0; i <= n; i++ {
		inj = sampler.Next()
	}

	tr, err := trace.Capture(ctx, cfg.Variant, cfg.Spec, inj, cfg.Classify)
	if err != nil {
		return nil, err
	}
	tr.Header.Experiment = n
	tr.Header.Seed = cfg.Seed
	return tr, nil
}
