package goofi

import (
	"testing"

	"ctrlguard/internal/workload"
)

func swifiPilot(t *testing.T) *Result {
	t.Helper()
	spec := workload.PaperRunSpec()
	spec.Iterations = 120 // image faults show their nature quickly
	res, err := RunSWIFI(Config{
		Variant:     workload.AlgorithmI,
		Experiments: 300,
		Seed:        9,
		Spec:        spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSWIFIRejectsZeroExperiments(t *testing.T) {
	if _, err := RunSWIFI(Config{Variant: workload.AlgorithmI}); err == nil {
		t.Error("expected error for zero experiments")
	}
}

func TestSWIFIRecordsShape(t *testing.T) {
	res := swifiPilot(t)
	if len(res.Records) != 300 {
		t.Fatalf("records = %d", len(res.Records))
	}
	regions := map[string]int{}
	for i, r := range res.Records {
		if r.ID != i {
			t.Errorf("record %d has ID %d", i, r.ID)
		}
		if r.At != 0 {
			t.Errorf("SWIFI record %d has At = %d, want 0 (pre-runtime)", i, r.At)
		}
		regions[r.Region]++
	}
	if regions["image-code"] == 0 {
		t.Error("no code-image faults sampled")
	}
	// The workload's code is far larger than its data, so code faults
	// must dominate under uniform sampling.
	if regions["image-code"] <= regions["image-data"] {
		t.Errorf("regions = %v, expected code to dominate", regions)
	}
}

func TestSWIFIDeterministic(t *testing.T) {
	spec := workload.PaperRunSpec()
	spec.Iterations = 30
	run := func() []Record {
		res, err := RunSWIFI(Config{
			Variant: workload.AlgorithmI, Experiments: 40, Seed: 4, Spec: spec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestSWIFIDetectsMoreThanSCIFI(t *testing.T) {
	// A permanent image fault is exercised on every iteration; the
	// detected share must clearly exceed the transient campaign's.
	res := swifiPilot(t)
	a := AnalyzeSWIFI(res.Records)
	det := DetectedProportion(a.Total)
	if det.P() < 0.10 {
		t.Errorf("SWIFI detected share = %v, expected well above the SCIFI ~4%%", det)
	}
	if a.Cache.Total()+a.Regs.Total() != a.Total.Total() {
		t.Error("region split does not add up")
	}
}

func TestSWIFISomeFaultsAreMasked(t *testing.T) {
	// Bit flips in unreachable code or dead fields must stay
	// non-effective even though they are permanent.
	res := swifiPilot(t)
	a := AnalyzeSWIFI(res.Records)
	if NonEffectiveProportion(a.Total).Count == 0 {
		t.Error("expected some masked image faults")
	}
}

func TestSWIFIAnalysisRenders(t *testing.T) {
	res := swifiPilot(t)
	a := AnalyzeSWIFI(res.Records)
	out := a.RenderRegionTable("SWIFI results")
	if len(out) == 0 {
		t.Fatal("empty table")
	}
	if a.Summary() == "" {
		t.Fatal("empty summary")
	}
}
