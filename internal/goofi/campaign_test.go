package goofi

import (
	"strings"
	"testing"

	"ctrlguard/internal/classify"
	"ctrlguard/internal/workload"
)

// pilot runs a small campaign once per variant and caches the result:
// campaigns are the expensive part of this package's tests.
var pilotCache = map[workload.Variant]*Result{}

func pilot(t *testing.T, v workload.Variant, n int) *Result {
	t.Helper()
	if res, ok := pilotCache[v]; ok && len(res.Records) >= n {
		return res
	}
	res, err := Run(Config{Variant: v, Experiments: n, Seed: 2001})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	pilotCache[v] = res
	return res
}

func TestRunRejectsZeroExperiments(t *testing.T) {
	if _, err := Run(Config{Variant: workload.AlgorithmI}); err == nil {
		t.Error("expected error for zero experiments")
	}
}

func TestCampaignRecordsComplete(t *testing.T) {
	res := pilot(t, workload.AlgorithmI, 400)
	if len(res.Records) != 400 {
		t.Fatalf("records = %d, want 400", len(res.Records))
	}
	for i, r := range res.Records {
		if r.ID != i {
			t.Errorf("record %d has ID %d", i, r.ID)
		}
		if r.Outcome == "" || r.Region == "" || r.Element == "" {
			t.Errorf("record %d incomplete: %+v", i, r)
		}
		if r.Outcome == classify.Detected.String() && r.Mechanism == "" {
			t.Errorf("record %d detected without mechanism", i)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 60, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Variant: workload.AlgorithmI, Experiments: 60, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("records diverge at %d:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestCampaignDifferentSeedsDiffer(t *testing.T) {
	a, _ := Run(Config{Variant: workload.AlgorithmI, Experiments: 30, Seed: 1})
	b, _ := Run(Config{Variant: workload.AlgorithmI, Experiments: 30, Seed: 2})
	same := true
	for i := range a.Records {
		if a.Records[i].Element != b.Records[i].Element || a.Records[i].At != b.Records[i].At {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical injections")
	}
}

func TestCampaignProgressCallback(t *testing.T) {
	var calls int
	_, err := Run(Config{
		Variant:     workload.AlgorithmI,
		Experiments: 20,
		Seed:        3,
		Progress:    func(done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 20 {
		t.Errorf("progress calls = %d, want 20", calls)
	}
}

func TestCampaignOutcomeMix(t *testing.T) {
	res := pilot(t, workload.AlgorithmI, 400)
	a := Analyze(res.Records)
	if NonEffectiveProportion(a.Total).Count == 0 {
		t.Error("expected some non-effective errors")
	}
	if a.Cache.Total()+a.Regs.Total() != a.Total.Total() {
		t.Error("region totals do not add up")
	}
	// Uniform bit sampling: cache region has ~68% of the bits.
	cacheShare := float64(a.Cache.Total()) / float64(a.Total.Total())
	if cacheShare < 0.55 || cacheShare > 0.8 {
		t.Errorf("cache share = %v, want ≈ 0.68", cacheShare)
	}
}

func TestAnalyzeCategorisesDetected(t *testing.T) {
	recs := []Record{
		{Variant: "alg1", Region: "cache", Outcome: "detected", Mechanism: "ADDRESS ERROR"},
		{Variant: "alg1", Region: "registers", Outcome: "uwr-permanent"},
		{Variant: "alg1", Region: "registers", Outcome: "overwritten"},
	}
	a := Analyze(recs)
	if got := DetectedProportion(a.Total).Count; got != 1 {
		t.Errorf("detected = %d, want 1", got)
	}
	if got := SevereProportion(a.Total).Count; got != 1 {
		t.Errorf("severe = %d, want 1", got)
	}
	if got := NonEffectiveProportion(a.Total).Count; got != 1 {
		t.Errorf("non-effective = %d, want 1", got)
	}
	if got := ValueFailureProportion(a.Total).Count; got != 1 {
		t.Errorf("value failures = %d, want 1", got)
	}
}

func TestRenderRegionTableContainsRows(t *testing.T) {
	res := pilot(t, workload.AlgorithmI, 400)
	a := Analyze(res.Records)
	out := a.RenderRegionTable("Table 2")
	for _, want := range []string{
		"Table 2", "Latent Errors", "Overwritten Errors",
		"ADDRESS ERROR", "Undetected Wrong Results (Severe)",
		"Coverage", "Cache", "Registers", "Total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestRenderComparisonTable(t *testing.T) {
	r1 := pilot(t, workload.AlgorithmI, 400)
	r2 := pilot(t, workload.AlgorithmII, 400)
	out := RenderComparisonTable(Analyze(r1.Records), Analyze(r2.Records))
	for _, want := range []string{
		"Undetected Wrong Results (Permanent)",
		"Undetected Wrong Results (Semi-Permanent)",
		"Undetected Wrong Results (Transient)",
		"Undetected Wrong Results (Insignificant)",
		"Total (Faults Injected)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q", want)
		}
	}
}

func TestSummaryMentionsSevereShare(t *testing.T) {
	res := pilot(t, workload.AlgorithmI, 400)
	a := Analyze(res.Records)
	if !strings.Contains(a.Summary(), "severe") {
		t.Error("summary missing severe share")
	}
}

// TestPaperShapeAlgorithmIvsII is the headline reproduction check: with
// a moderately sized campaign, Algorithm II must show a clearly lower
// severe-failure rate than Algorithm I while the overall value-failure
// rates stay comparable. Thresholds are loose so the test is robust to
// seed choice.
func TestPaperShapeAlgorithmIvsII(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too large for -short")
	}
	// Paper-scale campaigns: 9290 faults for Algorithm I, 2372 for
	// Algorithm II. The severe-failure channel (bit-flips of the
	// cached state variable consumed before the write-back erases
	// them) is rare enough that smaller campaigns are noisy.
	r1 := pilot(t, workload.AlgorithmI, 9290)
	r2 := pilot(t, workload.AlgorithmII, 2372)
	a1, a2 := Analyze(r1.Records), Analyze(r2.Records)

	sev1 := SevereProportion(a1.Total)
	sev2 := SevereProportion(a2.Total)
	vf1 := ValueFailureProportion(a1.Total)
	vf2 := ValueFailureProportion(a2.Total)
	if sev1.Count == 0 || vf1.Count == 0 {
		t.Fatal("Algorithm I produced no severe failures; campaign not representative")
	}

	// The paper's headline: the severe share of value failures drops
	// from ~11% to ~3%. Require at least a halving.
	share1 := float64(sev1.Count) / float64(vf1.Count)
	share2 := 0.0
	if vf2.Count > 0 {
		share2 = float64(sev2.Count) / float64(vf2.Count)
	}
	if share2 >= share1/2 {
		t.Errorf("severe share not clearly reduced: alg1 %.1f%% vs alg2 %.1f%%",
			share1*100, share2*100)
	}

	// Total value-failure rates stay comparable (the recovery converts
	// severe failures into minor ones rather than removing them).
	if vf2.Count > 0 {
		ratio := vf2.P() / vf1.P()
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("total value-failure rates should be comparable: %v vs %v", vf1, vf2)
		}
	}

	// Regional structure as in the paper: cache faults cause more
	// value failures than register faults, and Algorithm I's severe
	// failures are dominated by the cache (the lines holding x).
	if ValueFailureProportion(a1.Cache).P() <= ValueFailureProportion(a1.Regs).P() {
		t.Errorf("cache UWR rate %v should exceed register UWR rate %v",
			ValueFailureProportion(a1.Cache), ValueFailureProportion(a1.Regs))
	}
	if SevereProportion(a1.Cache).Count == 0 {
		t.Error("no severe cache failures for Algorithm I")
	}
}
