package goofi

import (
	"strings"
	"testing"

	"ctrlguard/internal/classify"
)

func queryFixture() []Record {
	return []Record{
		{ID: 0, Region: "cache", Element: "line0.data0", Outcome: "uwr-permanent", MaxDev: 60},
		{ID: 1, Region: "cache", Element: "line0.data0", Outcome: "uwr-semi-permanent", MaxDev: 20},
		{ID: 2, Region: "cache", Element: "line0.data1", Outcome: "uwr-insignificant", MaxDev: 0.01},
		{ID: 3, Region: "registers", Element: "pc", Outcome: "detected", Mechanism: "JUMP ERROR"},
		{ID: 4, Region: "registers", Element: "r6", Outcome: "uwr-transient", MaxDev: 2},
		{ID: 5, Region: "registers", Element: "r13", Outcome: "overwritten"},
		{ID: 6, Region: "registers", Element: "pc", Outcome: "detected", Mechanism: "CONTROL FLOW ERROR"},
	}
}

func TestQueryFilters(t *testing.T) {
	q := NewQuery(queryFixture())
	if q.Len() != 7 {
		t.Fatalf("Len = %d", q.Len())
	}
	if got := q.ByRegion("cache").Len(); got != 3 {
		t.Errorf("cache records = %d, want 3", got)
	}
	if got := q.ByElement("pc").Len(); got != 2 {
		t.Errorf("pc records = %d, want 2", got)
	}
	if got := q.Severe().Len(); got != 2 {
		t.Errorf("severe = %d, want 2", got)
	}
	if got := q.ValueFailures().Len(); got != 4 {
		t.Errorf("value failures = %d, want 4", got)
	}
	if got := q.Detected("").Len(); got != 2 {
		t.Errorf("detected = %d, want 2", got)
	}
	if got := q.Detected("JUMP ERROR").Len(); got != 1 {
		t.Errorf("jump errors = %d, want 1", got)
	}
	if got := q.ByOutcome(classify.Overwritten).Len(); got != 1 {
		t.Errorf("overwritten = %d, want 1", got)
	}
}

func TestQueryChaining(t *testing.T) {
	q := NewQuery(queryFixture())
	got := q.ByRegion("cache").Severe().Len()
	if got != 2 {
		t.Errorf("cache severe = %d, want 2", got)
	}
	if q.ByRegion("registers").Severe().Len() != 0 {
		t.Error("register severe should be empty")
	}
}

func TestQueryTopElements(t *testing.T) {
	q := NewQuery(queryFixture())
	top := q.TopElements(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Element != "line0.data0" && top[0].Element != "pc" {
		t.Errorf("unexpected top element %v", top[0])
	}
	if top[0].Count != 2 {
		t.Errorf("top count = %d, want 2", top[0].Count)
	}
	all := q.TopElements(0)
	if len(all) != 5 {
		t.Errorf("all elements = %d, want 5", len(all))
	}
}

func TestQueryTopElementsDeterministicTies(t *testing.T) {
	q := NewQuery(queryFixture())
	a := q.TopElements(0)
	b := q.TopElements(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie order not deterministic")
		}
	}
}

func TestQueryProportion(t *testing.T) {
	q := NewQuery(queryFixture())
	p := q.Severe().Proportion(700)
	if p.Count != 2 || p.N != 700 {
		t.Errorf("proportion = %+v", p)
	}
}

func TestQueryMaxDeviationStats(t *testing.T) {
	q := NewQuery(queryFixture()).ValueFailures()
	min, mean, max := q.MaxDeviationStats()
	if min != 0.01 || max != 60 {
		t.Errorf("min/max = %v/%v", min, max)
	}
	if mean <= min || mean >= max {
		t.Errorf("mean = %v out of range", mean)
	}
}

func TestQueryMaxDeviationStatsEmpty(t *testing.T) {
	min, mean, max := NewQuery(nil).MaxDeviationStats()
	if min != 0 || mean != 0 || max != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestQueryReport(t *testing.T) {
	rep := NewQuery(queryFixture()).Report("all faults")
	for _, want := range []string{"all faults: 7 records", "uwr-permanent", "top elements", "line0.data0"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestQueryRecordsCopies(t *testing.T) {
	recs := queryFixture()
	q := NewQuery(recs)
	got := q.Records()
	got[0].Outcome = "mutated"
	if recs[0].Outcome == "mutated" {
		t.Error("Records() must return a copy")
	}
}

// TestQueryOnRealCampaign reproduces the paper's detailed
// investigation: among Algorithm I's severe failures, the cache words
// holding the state variable must rank first.
func TestQueryOnRealCampaign(t *testing.T) {
	res := pilot(t, "alg1", 400)
	q := NewQuery(res.Records)
	severe := q.Severe()
	if severe.Len() == 0 {
		t.Skip("no severe failures in this pilot slice")
	}
	top := severe.TopElements(3)
	found := false
	for _, ec := range top {
		if strings.HasPrefix(ec.Element, "line0.data") || ec.Element == "r6" || ec.Element == "r7" {
			found = true
		}
	}
	if !found {
		t.Errorf("severe failures not dominated by state-variable locations: %v", top)
	}
}
