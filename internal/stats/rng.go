package stats

// RNG is a small deterministic pseudo-random number generator
// (SplitMix64) used for fault-location and fault-time sampling. It is
// self-contained so campaign results are bit-for-bit reproducible across
// Go releases, unlike math/rand whose stream is not guaranteed stable.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if
// n <= 0, mirroring math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	limit := (^uint64(0) / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
