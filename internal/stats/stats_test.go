package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionPointEstimate(t *testing.T) {
	tests := []struct {
		name  string
		count int
		n     int
		want  float64
	}{
		{"half", 50, 100, 0.5},
		{"zero count", 0, 100, 0},
		{"all", 100, 100, 1},
		{"empty trials", 0, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Proportion{Count: tt.count, N: tt.n}
			if got := p.P(); got != tt.want {
				t.Errorf("P() = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestProportionJSONRoundTrip pins the wire shape: a Proportion
// encodes as {"count": c, "n": n} and decodes back to the same value,
// so reports and the server API can carry it without a custom codec.
func TestProportionJSONRoundTrip(t *testing.T) {
	for _, want := range []Proportion{{}, {Count: 60, N: 9290}, {Count: 9290, N: 9290}} {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", want, err)
		}
		var got Proportion
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("Unmarshal(%s): %v", data, err)
		}
		if got != want {
			t.Errorf("round trip %s = %+v, want %+v", data, got, want)
		}
	}
	// The documented field names, decoded from hand-written JSON.
	var p Proportion
	if err := json.Unmarshal([]byte(`{"count": 5, "n": 1000}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Count != 5 || p.N != 1000 {
		t.Errorf(`decode {"count":5,"n":1000} = %+v`, p)
	}
}

func TestProportionCI95KnownValue(t *testing.T) {
	// p = 0.5, n = 100: CI = 1.96*sqrt(0.25/100) = 0.098.
	p := Proportion{Count: 50, N: 100}
	if got := p.CI95(); math.Abs(got-0.098) > 1e-9 {
		t.Errorf("CI95() = %v, want 0.098", got)
	}
}

func TestProportionCI95Degenerate(t *testing.T) {
	for _, p := range []Proportion{{0, 0}, {0, 10}, {10, 10}} {
		if got := p.CI95(); got != 0 {
			t.Errorf("CI95(%+v) = %v, want 0", p, got)
		}
	}
}

// Regression test: an unmeasured proportion (n = 0) must report total
// uncertainty, not a confident zero-width interval. Before Interval95
// existed, callers dividing by N themselves could silently turn "no
// experiments" into "certainly zero".
func TestProportionInterval95NoExperiments(t *testing.T) {
	lo, hi := Proportion{Count: 0, N: 0}.Interval95()
	if lo != 0 || hi != 1 {
		t.Errorf("Interval95 with n=0 = [%v, %v], want degenerate [0, 1]", lo, hi)
	}
}

func TestProportionInterval95Clamped(t *testing.T) {
	tests := []struct {
		name string
		p    Proportion
	}{
		{"all failures, tiny n", Proportion{Count: 1, N: 1}},
		{"no failures, tiny n", Proportion{Count: 0, N: 1}},
		{"half", Proportion{Count: 50, N: 100}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lo, hi := tt.p.Interval95()
			if lo < 0 || hi > 1 || lo > hi {
				t.Errorf("Interval95(%+v) = [%v, %v], want 0 <= lo <= hi <= 1", tt.p, lo, hi)
			}
			est := tt.p.P()
			if est < lo || est > hi {
				t.Errorf("Interval95(%+v) = [%v, %v] excludes the point estimate %v", tt.p, lo, hi, est)
			}
		})
	}
}

func TestProportionCI95ShrinksWithN(t *testing.T) {
	small := Proportion{Count: 5, N: 10}
	large := Proportion{Count: 500, N: 1000}
	if small.CI95() <= large.CI95() {
		t.Errorf("CI should shrink with n: small=%v large=%v", small.CI95(), large.CI95())
	}
}

func TestProportionCI95Property(t *testing.T) {
	f := func(count, n uint16) bool {
		nn := int(n%1000) + 1
		cc := int(count) % (nn + 1)
		p := Proportion{Count: cc, N: nn}
		ci := p.CI95()
		// The half-width is at most 1.96·sqrt(0.25/n) ≤ 0.98 (n = 1).
		return ci >= 0 && ci <= 0.98+1e-9 && !math.IsNaN(ci)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.Add("a")
	c.Add("b")
	c.AddN("c", 3)
	if got := c.Count("a"); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := c.Total(); got != 6 {
		t.Errorf("Total() = %d, want 6", got)
	}
	if got := c.Proportion("c").P(); got != 0.5 {
		t.Errorf("Proportion(c).P() = %v, want 0.5", got)
	}
	if got := c.Count("missing"); got != 0 {
		t.Errorf("Count(missing) = %d, want 0", got)
	}
}

func TestCounterSumProportion(t *testing.T) {
	c := NewCounter()
	c.AddN("x", 2)
	c.AddN("y", 3)
	c.AddN("z", 5)
	got := c.SumProportion("x", "y")
	if got.Count != 5 || got.N != 10 {
		t.Errorf("SumProportion = %+v, want {5 10}", got)
	}
}

func TestCounterCategoriesSorted(t *testing.T) {
	c := NewCounter()
	c.Add("zeta")
	c.Add("alpha")
	c.Add("mid")
	got := c.Categories()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("Categories() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Categories()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCounterMerge(t *testing.T) {
	a := NewCounter()
	a.AddN("x", 2)
	b := NewCounter()
	b.AddN("x", 3)
	b.Add("y")
	a.Merge(b)
	if a.Count("x") != 5 || a.Count("y") != 1 || a.Total() != 6 {
		t.Errorf("merge result wrong: x=%d y=%d total=%d", a.Count("x"), a.Count("y"), a.Total())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "Category", "Value")
	tbl.AddRow("latent", "12")
	tbl.AddSeparator()
	tbl.AddRow("overwritten", "61")
	out := tbl.String()
	for _, want := range []string{"Demo", "Category", "latent", "overwritten", "61"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := NewTable("", "A", "B", "C")
	tbl.AddRow("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Errorf("table output missing cell:\n%s", out)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", i, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}
