package stats

import (
	"math"
	"testing"
)

func TestFailureRateArithmetic(t *testing.T) {
	m := DependabilityModel{
		UpsetsPerBitHour:   1e-6,
		ExposedBits:        1000,
		FailureProbability: Proportion{Count: 5, N: 1000}, // 0.5 %
	}
	want := 1e-6 * 1000 * 0.005
	if got := m.FailureRatePerHour(); math.Abs(got-want) > 1e-15 {
		t.Errorf("rate = %v, want %v", got, want)
	}
	if got := m.MTTFHours(); math.Abs(got-1/want) > 1e-6 {
		t.Errorf("MTTF = %v, want %v", got, 1/want)
	}
}

func TestMTTFInfiniteWithoutFailures(t *testing.T) {
	m := DependabilityModel{
		UpsetsPerBitHour:   1e-6,
		ExposedBits:        1000,
		FailureProbability: Proportion{Count: 0, N: 2372},
	}
	if !math.IsInf(m.MTTFHours(), 1) {
		t.Errorf("MTTF = %v, want +Inf", m.MTTFHours())
	}
	if m.MissionReliability(1e9) != 1 {
		t.Error("reliability should be 1 with zero rate")
	}
}

func TestMissionReliabilityDecays(t *testing.T) {
	m := DependabilityModel{
		UpsetsPerBitHour:   1e-5,
		ExposedBits:        1626,
		FailureProbability: Proportion{Count: 60, N: 9290},
	}
	r1 := m.MissionReliability(100)
	r2 := m.MissionReliability(10000)
	if !(r1 > r2 && r1 < 1 && r2 > 0) {
		t.Errorf("reliability not decaying sensibly: %v, %v", r1, r2)
	}
	// Sanity: R(t) = exp(-rate t).
	want := math.Exp(-m.FailureRatePerHour() * 100)
	if math.Abs(r1-want) > 1e-12 {
		t.Errorf("R(100) = %v, want %v", r1, want)
	}
}

func TestImprovementFactor(t *testing.T) {
	base := DependabilityModel{UpsetsPerBitHour: 1e-6, ExposedBits: 1000,
		FailureProbability: Proportion{Count: 60, N: 9290}}
	better := base
	better.FailureProbability = Proportion{Count: 3, N: 2372}
	f := ImprovementFactor(base, better)
	want := (60.0 / 9290.0) / (3.0 / 2372.0)
	if math.Abs(f-want) > 1e-9 {
		t.Errorf("factor = %v, want %v", f, want)
	}
}

func TestImprovementFactorEdgeCases(t *testing.T) {
	zero := DependabilityModel{UpsetsPerBitHour: 1e-6, ExposedBits: 1000,
		FailureProbability: Proportion{Count: 0, N: 100}}
	some := zero
	some.FailureProbability = Proportion{Count: 5, N: 100}
	if !math.IsInf(ImprovementFactor(some, zero), 1) {
		t.Error("eliminating all failures should be an infinite improvement")
	}
	if ImprovementFactor(zero, zero) != 1 {
		t.Error("two zero-rate models should compare equal")
	}
}

func TestWilsonCI95KnownValues(t *testing.T) {
	// 0 of 2372: upper bound ≈ 3.84/(n+3.84) ≈ 0.00162.
	p := Proportion{Count: 0, N: 2372}
	lo, hi := p.WilsonCI95()
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
	if hi < 0.0010 || hi > 0.0025 {
		t.Errorf("hi = %v, want ≈ 0.0016", hi)
	}
}

func TestWilsonCI95ContainsEstimate(t *testing.T) {
	for _, p := range []Proportion{{5, 100}, {50, 100}, {99, 100}, {1, 10000}} {
		lo, hi := p.WilsonCI95()
		if p.P() < lo || p.P() > hi {
			t.Errorf("estimate %v outside Wilson interval [%v, %v]", p.P(), lo, hi)
		}
		if lo < 0 || hi > 1 {
			t.Errorf("interval [%v, %v] out of [0,1]", lo, hi)
		}
	}
}

func TestWilsonCI95EmptyTrials(t *testing.T) {
	lo, hi := (Proportion{}).WilsonCI95()
	if lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%v, %v], want [0, 1]", lo, hi)
	}
}

func TestWilsonNarrowerThanNormalForZeroCounts(t *testing.T) {
	// The normal approximation collapses to width zero for p̂ = 0 —
	// useless. Wilson must give a positive, informative upper bound.
	p := Proportion{Count: 0, N: 1000}
	if p.CI95() != 0 {
		t.Fatalf("normal CI = %v, want degenerate 0", p.CI95())
	}
	if _, hi := p.WilsonCI95(); hi <= 0 {
		t.Error("Wilson upper bound should be positive")
	}
}
