// Package stats provides the statistical machinery used by the
// fault-injection analysis: proportion estimates with 95 % confidence
// intervals (normal approximation, as in the paper), counters keyed by
// outcome category, and plain-text table rendering matching the layout
// of Tables 2-4 of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// z95 is the two-sided 95 % quantile of the standard normal
// distribution, used by the paper for its confidence intervals.
const z95 = 1.96

// Proportion is an estimated proportion out of n trials.
type Proportion struct {
	Count int `json:"count"` // number of observations in the category
	N     int `json:"n"`     // total number of trials
}

// P returns the point estimate Count/N, or 0 when N == 0.
func (p Proportion) P() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.Count) / float64(p.N)
}

// CI95 returns the half-width of the 95 % confidence interval using the
// normal approximation 1.96*sqrt(p(1-p)/n), the formula the paper uses.
func (p Proportion) CI95() float64 {
	if p.N == 0 {
		return 0
	}
	est := p.P()
	return z95 * math.Sqrt(est*(1-est)/float64(p.N))
}

// Interval95 returns the bounds [lo, hi] of the 95 % confidence
// interval, clamped to [0, 1]. With no experiments (N == 0) the true
// proportion is completely unknown, so the degenerate full-uncertainty
// interval [0, 1] is returned rather than a zero-width interval around
// an arbitrary point estimate — callers comparing noisy estimates (for
// example the tuner's dominance pruning) must not treat an unmeasured
// proportion as a certain zero.
func (p Proportion) Interval95() (lo, hi float64) {
	if p.N == 0 {
		return 0, 1
	}
	half := p.CI95()
	lo, hi = p.P()-half, p.P()+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// String formats the proportion in the paper's style,
// e.g. "12.16% (± 0.66%) 1130".
func (p Proportion) String() string {
	return fmt.Sprintf("%6.2f%% (±%5.2f%%) %6d", p.P()*100, p.CI95()*100, p.Count)
}

// Counter tallies observations per category label.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add records one observation of category.
func (c *Counter) Add(category string) {
	c.counts[category]++
	c.total++
}

// AddN records n observations of category.
func (c *Counter) AddN(category string, n int) {
	c.counts[category] += n
	c.total += n
}

// Count returns the number of observations of category.
func (c *Counter) Count(category string) int {
	return c.counts[category]
}

// Total returns the total number of observations.
func (c *Counter) Total() int {
	return c.total
}

// Proportion returns the proportion of observations in category.
func (c *Counter) Proportion(category string) Proportion {
	return Proportion{Count: c.counts[category], N: c.total}
}

// SumProportion returns the proportion of observations falling in any of
// the given categories.
func (c *Counter) SumProportion(categories ...string) Proportion {
	sum := 0
	for _, cat := range categories {
		sum += c.counts[cat]
	}
	return Proportion{Count: sum, N: c.total}
}

// Categories returns the sorted list of category labels seen so far.
func (c *Counter) Categories() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge adds all counts from other into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.counts[k] += v
	}
	c.total += other.total
}

// Table is a plain-text table builder used to render the paper's result
// tables. Rows are added in order; columns are fixed at construction.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Missing cells render empty; extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal separator row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		if row == nil {
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
			continue
		}
		writeRow(row)
	}
	return b.String()
}
