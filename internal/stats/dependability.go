package stats

import "math"

// Dependability projections: a fault-injection campaign estimates the
// conditional probability that one bit upset causes a failure of a
// given class; combined with an environment's upset rate this yields
// the failure rate, MTTF and mission reliability that system designers
// actually need. The paper motivates its study with heavy-ion and
// neutron-induced upsets in aerospace CPUs; these helpers make that
// connection computable.

// DependabilityModel combines a campaign result with an environment.
type DependabilityModel struct {
	// UpsetsPerBitHour is the single-event-upset rate of the
	// environment (typical orders: 1e-6 for deep space, 1e-10 at
	// ground level).
	UpsetsPerBitHour float64

	// ExposedBits is the number of injectable state bits of the
	// device (the campaign's sampling universe).
	ExposedBits int

	// FailureProbability is the campaign's estimate of P(failure of
	// the class of interest | one upset).
	FailureProbability Proportion
}

// FailureRatePerHour returns λ·B·p, the rate of the modelled failure
// class.
func (m DependabilityModel) FailureRatePerHour() float64 {
	return m.UpsetsPerBitHour * float64(m.ExposedBits) * m.FailureProbability.P()
}

// MTTFHours returns the mean time to failure in hours, or +Inf when
// the campaign observed no failures of the class.
func (m DependabilityModel) MTTFHours() float64 {
	rate := m.FailureRatePerHour()
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// MissionReliability returns exp(−rate·t): the probability of
// surviving a mission of the given duration without a failure of the
// modelled class, under the usual constant-rate assumption.
func (m DependabilityModel) MissionReliability(hours float64) float64 {
	return math.Exp(-m.FailureRatePerHour() * hours)
}

// ImprovementFactor returns how many times longer the MTTF of b is
// than that of a (for example, Algorithm II versus Algorithm I). It is
// +Inf when b shows no failures and a does.
func ImprovementFactor(a, b DependabilityModel) float64 {
	ra, rb := a.FailureRatePerHour(), b.FailureRatePerHour()
	if rb == 0 {
		if ra == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return ra / rb
}

// WilsonCI95 returns the 95 % Wilson score interval for a proportion.
// Unlike the paper's normal approximation (Proportion.CI95), it is
// meaningful for zero counts — important when Algorithm II eliminates
// a failure class entirely and the question becomes "how sure are we
// the true rate is small?".
func (p Proportion) WilsonCI95() (lo, hi float64) {
	if p.N == 0 {
		return 0, 1
	}
	const z = z95
	n := float64(p.N)
	phat := p.P()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
