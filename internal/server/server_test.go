package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec string) View {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad submit response %q: %v", body, err)
	}
	if v.ID == "" || v.State == "" {
		t.Fatalf("submit response missing id/state: %+v", v)
	}
	return v
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

// streamEvents reads the NDJSON event stream until a terminal event
// (or timeout), returning every event received.
func streamEvents(t *testing.T, url string, timeout time.Duration) []Event {
	t.Helper()
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("events returned %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q, want application/x-ndjson", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if State(ev.Type).Terminal() {
			return events
		}
	}
	t.Fatalf("event stream ended without a terminal event (%d events, err %v)", len(events), sc.Err())
	return nil
}

// TestCampaignLifecycle is the end-to-end path: submit → stream NDJSON
// progress → final report, checking that the server path is exactly as
// deterministic as a direct goofi.Run with the same seed.
func TestCampaignLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DataDir: dataDir})

	const n, seed = 50, 7
	v := submit(t, ts, fmt.Sprintf(`{"variant":"alg1","n":%d,"seed":%d,"workers":2}`, n, seed))

	events := streamEvents(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/events", 2*time.Minute)
	if events[0].Type != "snapshot" {
		t.Errorf("first event type = %q, want snapshot", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != string(StateDone) || last.State != StateDone {
		t.Fatalf("terminal event = %+v, want done", last)
	}
	if last.Done != n || last.Total != n {
		t.Errorf("terminal event progress = %d/%d, want %d/%d", last.Done, last.Total, n, n)
	}
	prev := -1
	for _, ev := range events {
		if ev.Done < prev {
			t.Errorf("event progress went backwards: %d after %d", ev.Done, prev)
		}
		prev = ev.Done
	}

	var final View
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &final); code != http.StatusOK {
		t.Fatalf("get campaign: %d", code)
	}
	if final.State != StateDone || final.Records != n {
		t.Fatalf("final view = %+v, want done with %d records", final, n)
	}

	// Determinism through the server path: the report must match a
	// direct goofi.Run with the same spec.
	direct, err := goofi.Run(goofi.Config{Variant: workload.AlgorithmI, Experiments: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	wantOutcomes := map[string]int{}
	for _, r := range direct.Records {
		wantOutcomes[r.Outcome]++
	}
	var rep report
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report: %d", code)
	}
	if rep.Records != n {
		t.Errorf("report records = %d, want %d", rep.Records, n)
	}
	if len(rep.Outcomes) != len(wantOutcomes) {
		t.Errorf("report outcomes %v, want %v", rep.Outcomes, wantOutcomes)
	}
	for o, c := range wantOutcomes {
		if rep.Outcomes[o] != c {
			t.Errorf("report outcome %q = %d, direct run has %d", o, rep.Outcomes[o], c)
		}
	}
	// ...and the terminal event's running outcome tally agrees too.
	for o, c := range wantOutcomes {
		if last.Outcomes[o] != c {
			t.Errorf("terminal event outcome %q = %d, direct run has %d", o, last.Outcomes[o], c)
		}
	}

	// The records were persisted through the JSONL store.
	path := filepath.Join(dataDir, v.ID+".jsonl")
	recs, err := goofi.LoadRecords(path)
	if err != nil {
		t.Fatalf("persisted records: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("persisted %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r != direct.Records[i] {
			t.Fatalf("persisted record %d differs from direct run: %+v vs %+v", i, r, direct.Records[i])
		}
	}

	// A region filter narrows the report to that region's records.
	wantCache := 0
	for _, r := range direct.Records {
		if r.Region == "cache" {
			wantCache++
		}
	}
	var cacheRep report
	getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/report?region=cache", &cacheRep)
	if cacheRep.Records != wantCache {
		t.Errorf("region=cache report has %d records, want %d", cacheRep.Records, wantCache)
	}
}

// TestCancelRunningCampaign checks DELETE stops a running campaign
// within an experiment boundary and keeps the partial records.
func TestCancelRunningCampaign(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DataDir: t.TempDir()})

	// Big enough to be mid-flight when cancelled; one experiment
	// worker makes progress steady.
	v := submit(t, ts, `{"variant":"alg1","n":50000,"seed":3,"workers":1}`)
	url := ts.URL + "/api/v1/campaigns/" + v.ID

	// Wait for real progress on the event stream before cancelling.
	client := &http.Client{}
	resp, err := client.Get(url + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(2 * time.Minute)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Done >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress before deadline")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	cancelled := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d", dresp.StatusCode)
	}

	// The open stream must end with a "cancelled" terminal event.
	var last Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
		if State(last.Type).Terminal() {
			break
		}
	}
	if last.Type != string(StateCancelled) {
		t.Fatalf("terminal event after cancel = %+v, want cancelled", last)
	}
	if took := time.Since(cancelled); took > 30*time.Second {
		t.Errorf("cancellation took %v, want within one experiment boundary", took)
	}

	var final View
	getJSON(t, url, &final)
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Records == 0 || final.Records >= 50000 {
		t.Errorf("partial records = %d, want in (0, 50000)", final.Records)
	}

	// Partial records are still queryable.
	var rep report
	if code := getJSON(t, url+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report on cancelled campaign: %d", code)
	}
	if rep.Records != final.Records {
		t.Errorf("report records = %d, view says %d", rep.Records, final.Records)
	}

	// A second DELETE conflicts.
	req2, _ := http.NewRequest(http.MethodDelete, url, nil)
	r2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusConflict {
		t.Errorf("second cancel returned %d, want 409", r2.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	cases := []struct {
		name string
		body string
	}{
		{"unknown variant", `{"variant":"bogus","n":10}`},
		{"zero experiments", `{"variant":"alg1","n":0}`},
		{"negative experiments", `{"alg":1,"n":-3}`},
		{"bad precision", `{"alg":1,"precision":1.5}`},
		{"alg and variant", `{"alg":1,"variant":"alg2","n":10}`},
		{"unknown field", `{"variant":"alg1","n":10,"bogusField":1}`},
		{"not json", `variant=alg1`},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, body)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %s", c.name, body)
		}
	}
}

func TestQueueSheddingAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// One long campaign occupies the single runner...
	running := submit(t, ts, `{"variant":"alg1","n":50000,"seed":1,"workers":1}`)
	waitForState(t, ts, running.ID, StateRunning, time.Minute)

	// ...a second one fills the queue of depth 1...
	queued := submit(t, ts, `{"variant":"alg1","n":50000,"seed":2,"workers":1}`)

	// ...and a third is shed with 503.
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json",
		strings.NewReader(`{"variant":"alg1","n":10,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit returned %d, want 503", resp.StatusCode)
	}

	var list struct {
		Campaigns []View `json:"campaigns"`
	}
	getJSON(t, ts.URL+"/api/v1/campaigns", &list)
	if len(list.Campaigns) != 2 {
		t.Fatalf("list has %d campaigns, want 2", len(list.Campaigns))
	}
	if list.Campaigns[0].ID != running.ID || list.Campaigns[1].ID != queued.ID {
		t.Errorf("list order %s, %s; want submission order %s, %s",
			list.Campaigns[0].ID, list.Campaigns[1].ID, running.ID, queued.ID)
	}

	// Cancelling the queued campaign never lets it run.
	client := &http.Client{}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+queued.ID, nil)
	cresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, cresp.Body)
	cresp.Body.Close()
	var qv View
	getJSON(t, ts.URL+"/api/v1/campaigns/"+queued.ID, &qv)
	if qv.State != StateCancelled {
		t.Errorf("queued campaign after cancel = %s, want cancelled", qv.State)
	}

	// Clean up the runner.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+running.ID, nil)
	rresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	waitForTerminal(t, ts, running.ID, time.Minute)
}

func waitForState(t *testing.T, ts *httptest.Server, id string, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var v View
		getJSON(t, ts.URL+"/api/v1/campaigns/"+id, &v)
		if v.State == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
}

func waitForTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var v View
		getJSON(t, ts.URL+"/api/v1/campaigns/"+id, &v)
		if v.State.Terminal() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached a terminal state", id)
}

// TestMetricsChangeOverCampaignLifetime asserts /metrics moves as
// campaigns run (monotonic counters only: metrics are process-wide).
func TestMetricsChangeOverCampaignLifetime(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	read := func() map[string]any {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("metrics Content-Type = %q", ct)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	num := func(m map[string]any, key string) float64 {
		v, ok := m[key].(float64)
		if !ok {
			t.Fatalf("metric %q missing or not numeric: %v", key, m[key])
		}
		return v
	}

	before := read()
	v := submit(t, ts, `{"variant":"alg1","n":30,"seed":9}`)
	streamEvents(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/events", 2*time.Minute)
	after := read()

	if got, was := num(after, "experiments_total"), num(before, "experiments_total"); got < was+30 {
		t.Errorf("experiments_total %v -> %v, want +30", was, got)
	}
	if got, was := num(after, "campaigns_done"), num(before, "campaigns_done"); got != was+1 {
		t.Errorf("campaigns_done %v -> %v, want +1", was, got)
	}
	for _, key := range []string{"campaigns_queued", "campaigns_running", "campaigns_cancelled",
		"campaigns_failed", "campaign_workers", "campaign_workers_busy",
		"experiments_per_sec", "worker_utilization"} {
		num(after, key) // presence + numeric
	}
}

func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	v := submit(t, ts, `{"variant":"alg1","n":20,"seed":4}`)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/campaigns/"+v.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("event: snapshot\n")) || !bytes.Contains(body, []byte("data: {")) {
		t.Errorf("SSE framing missing in:\n%s", body)
	}
	if !bytes.Contains(body, []byte("event: done\n")) {
		t.Errorf("SSE stream missing terminal event:\n%s", body)
	}
}

func TestNotFoundAndVariants(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/c999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign returned %d, want 404", code)
	}
	var vars struct {
		Variants []string `json:"variants"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/variants", &vars); code != http.StatusOK {
		t.Fatalf("variants returned %d", code)
	}
	found := false
	for _, name := range vars.Variants {
		if name == string(workload.AlgorithmII) {
			found = true
		}
	}
	if !found {
		t.Errorf("variants %v missing %s", vars.Variants, workload.AlgorithmII)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz not ok")
	}
}
