package server

import (
	"encoding/json"
	"fmt"
	"time"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
	"ctrlguard/internal/tenant"
	"ctrlguard/internal/tune"
)

// This file is the admission-control layer of the tentpole: every
// submission passes, in order, the tenant's token-bucket rate limit
// (429 + Retry-After), the content-addressed cache (duplicate specs
// are served without queueing), the tenant's quotas on outstanding
// work (429), and the bounded fair-share queue (503 + Retry-After).
// Nothing here ever blocks the request: overload answers are
// immediate — the paper's "acceptable service under stress" applied
// to the service itself.

// RateLimitError reports a submission rejected by its tenant's token
// bucket, carrying the wait until a token accrues.
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("server: tenant %s is over its submission rate limit (retry in %s)", e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// QuotaError reports a submission rejected because the tenant is at a
// quota on outstanding work (queued or running jobs, or their total
// experiments). Unlike a rate limit it clears only when jobs finish.
type QuotaError struct {
	Tenant string
	Reason string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: tenant %s is over quota: %s", e.Tenant, e.Reason)
}

// Registry exposes the manager's tenant registry for request
// authentication.
func (m *Manager) Registry() *tenant.Registry { return m.tenants }

// SubmitAs validates a spec and admits a campaign for the tenant:
// rate limit, then cache, then quota, then the bounded fair queue.
func (m *Manager) SubmitAs(ten tenant.Tenant, spec goofi.CampaignSpec) (*Campaign, error) {
	if err := m.allow(ten); err != nil {
		return nil, err
	}
	if _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	c := &Campaign{
		Kind:     KindCampaign,
		Spec:     spec,
		Tenant:   ten.Name,
		Created:  time.Now(),
		state:    StateQueued,
		total:    spec.Experiments,
		outcomes: make(map[string]int),
		subs:     make(map[chan Event]struct{}),
		doneCh:   make(chan struct{}),
	}
	if spec.Sequential() {
		c.total = spec.MaxExperiments // upper bound; 0 = engine default
	}
	if hit, err := m.serveFromCache(ten, c); hit {
		return c, err
	}
	return m.enqueue(ten, c)
}

// SubmitTuneAs validates a tuning spec and admits a design-space
// search job for the tenant. Tune jobs pass the same rate limit,
// quota, and queue gates; they are never memoized.
func (m *Manager) SubmitTuneAs(ten tenant.Tenant, spec tune.Spec) (*Campaign, error) {
	if err := m.allow(ten); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Campaign{
		Kind:     KindTune,
		TuneSpec: &spec,
		Tenant:   ten.Name,
		Created:  time.Now(),
		state:    StateQueued,
		total:    spec.PlannedEvaluations(),
		outcomes: make(map[string]int),
		subs:     make(map[chan Event]struct{}),
		doneCh:   make(chan struct{}),
	}
	return m.enqueue(ten, c)
}

// allow charges the tenant's token bucket for one submission.
func (m *Manager) allow(ten tenant.Tenant) error {
	if ten.RatePerSec <= 0 {
		return nil
	}
	m.mu.Lock()
	b := m.buckets[ten.Name]
	if b == nil {
		b = tenant.NewBucket(ten.RatePerSec, ten.Burst)
		m.buckets[ten.Name] = b
	}
	m.mu.Unlock()
	if ok, retry := b.Allow(time.Now()); !ok {
		metrics.RequestsThrottled.Add(1)
		return &RateLimitError{Tenant: ten.Name, RetryAfter: retry}
	}
	return nil
}

// enqueue checks the tenant's quotas, assigns an ID, pushes the job
// onto the fair-share queue, charges usage, and journals the
// submission — all under the manager lock so a runner cannot observe
// the job half-admitted.
func (m *Manager) enqueue(ten tenant.Tenant, c *Campaign) (*Campaign, error) {
	m.mu.Lock()
	u := m.usageLocked(ten.Name)
	if ten.MaxQueuedJobs > 0 && u.QueuedJobs >= ten.MaxQueuedJobs {
		m.mu.Unlock()
		metrics.RequestsQuotaRejected.Add(1)
		return nil, &QuotaError{Tenant: ten.Name, Reason: fmt.Sprintf("%d outstanding jobs (max %d)", u.QueuedJobs, ten.MaxQueuedJobs)}
	}
	if ten.MaxQueuedExperiments > 0 && u.QueuedExperiments+c.total > ten.MaxQueuedExperiments {
		m.mu.Unlock()
		metrics.RequestsQuotaRejected.Add(1)
		return nil, &QuotaError{Tenant: ten.Name, Reason: fmt.Sprintf("%d outstanding experiments + %d requested (max %d)", u.QueuedExperiments, c.total, ten.MaxQueuedExperiments)}
	}
	c.ID = fmt.Sprintf("c%06d", m.nextID+1)
	if err := m.queue.Push(ten.Name, ten.FairWeight(), c); err != nil {
		m.mu.Unlock()
		metrics.RequestsShed.Add(1)
		return nil, ErrQueueFull // shed without consuming an ID
	}
	m.nextID++
	m.chargeUsageLocked(c)
	m.jobs[c.ID] = c
	m.order = append(m.order, c.ID)
	m.mu.Unlock()
	metrics.CampaignsQueued.Add(1)

	e := journal.Entry{
		Job: c.ID, Type: journal.EventSubmitted,
		Kind: string(c.Kind), State: string(StateQueued), Total: c.total,
		Tenant: c.Tenant,
	}
	if c.Kind == KindTune {
		e.TuneSpec, _ = json.Marshal(c.TuneSpec)
	} else {
		e.Spec, _ = json.Marshal(c.Spec)
	}
	m.appendJournal(e)
	return c, nil
}

// usageLocked returns (creating if needed) the tenant's usage record;
// m.mu must be held.
func (m *Manager) usageLocked(name string) *tenant.Usage {
	u := m.usage[name]
	if u == nil {
		u = &tenant.Usage{}
		m.usage[name] = u
	}
	return u
}

// chargeUsage charges a job against its tenant's quota accounting.
// The charge is held from admission until the job reaches a terminal
// state — queued and running jobs both count as outstanding work.
func (m *Manager) chargeUsage(c *Campaign) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.chargeUsageLocked(c)
}

func (m *Manager) chargeUsageLocked(c *Campaign) {
	if c.usageHeld {
		return
	}
	c.usageHeld = true
	c.usageN = c.total
	u := m.usageLocked(c.Tenant)
	u.QueuedJobs++
	u.QueuedExperiments += c.usageN
}

// releaseUsage returns a job's quota charge when it reaches a
// terminal state. Idempotent; called outside c.mu (lock order is
// m.mu before or independent of c.mu, never nested inside it).
func (m *Manager) releaseUsage(c *Campaign) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !c.usageHeld {
		return
	}
	c.usageHeld = false
	u := m.usageLocked(c.Tenant)
	u.QueuedJobs--
	u.QueuedExperiments -= c.usageN
}

// UsageSnapshot reports every tenant's current quota accounting,
// omitting idle tenants — the /readyz payload, and the thing the
// restart test compares byte-for-byte across a journal replay.
func (m *Manager) UsageSnapshot() map[string]tenant.Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]tenant.Usage)
	for name, u := range m.usage {
		if !u.Zero() {
			out[name] = *u
		}
	}
	return out
}

// fairWeight resolves a tenant name to its configured fair-share
// weight (1 for unknown or unconfigured tenants).
func (m *Manager) fairWeight(name string) int {
	if t, ok := m.tenants.Lookup(name); ok {
		return t.FairWeight()
	}
	return 1
}

// QueueLen is the number of jobs waiting in the fair-share queue.
func (m *Manager) QueueLen() int { return m.queue.Len() }

// QueueDepth is the queue's admission capacity.
func (m *Manager) QueueDepth() int { return m.queueDepth }

// Draining reports whether the manager is in graceful shutdown.
func (m *Manager) Draining() bool { return m.closing.Load() }
