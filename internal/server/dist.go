package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ctrlguard/internal/dist"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
)

// Distributed campaigns: with executors configured, the manager stops
// running eligible campaigns on its own goroutines and becomes a
// coordinator instead — the plan is split into contiguous shards and
// leased out to ctrlexec processes (local subprocesses and/or remote
// HTTP executors that registered themselves), with the dist package's
// lease machinery recovering from any executor death mid-shard. The
// merged result is byte-identical to a solo run, so everything
// downstream (reports, records, resume) is unchanged.

// execTTL is how long a remote executor registration stays live without
// a heartbeat re-POST (ctrlexec beats every 5s).
const execTTL = 15 * time.Second

// execEntry is one registered remote executor.
type execEntry struct {
	Name string    `json:"name"`
	URL  string    `json:"url"`
	Seen time.Time `json:"seen"`
}

// execRegistry tracks remote executors by name. Registration and
// heartbeat are the same idempotent upsert; entries expire lazily when
// read after going execTTL without one.
type execRegistry struct {
	mu  sync.Mutex
	ttl time.Duration
	m   map[string]execEntry
}

func newExecRegistry(ttl time.Duration) *execRegistry {
	if ttl <= 0 {
		ttl = execTTL
	}
	return &execRegistry{ttl: ttl, m: make(map[string]execEntry)}
}

func (r *execRegistry) upsert(name, url string) execEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := execEntry{Name: name, URL: url, Seen: time.Now()}
	r.m[name] = e
	return e
}

func (r *execRegistry) remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[name]
	delete(r.m, name)
	return ok
}

// live returns the unexpired registrations, pruning the rest, sorted by
// name for stable executor ordering.
func (r *execRegistry) live() []execEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := time.Now().Add(-r.ttl)
	out := make([]execEntry, 0, len(r.m))
	for name, e := range r.m {
		if e.Seen.Before(cutoff) {
			delete(r.m, name)
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// distEligible reports whether a campaign should run through the
// coordinator: executors are available and the job is a plain
// (non-sequential) campaign. Precision-driven campaigns batch their
// experiments adaptively, so their IDs are not stable across processes
// and they stay on the solo path.
func (m *Manager) distEligible(c *Campaign) bool {
	if c.Kind != KindCampaign || c.Spec.Sequential() {
		return false
	}
	return m.distWorkers > 0 || (m.registry != nil && len(m.registry.live()) > 0)
}

// distExecutors assembles the executor set for one campaign: the
// configured number of local ctrlexec subprocess slots plus every live
// remote registration at lease time.
func (m *Manager) distExecutors() []dist.Executor {
	var out []dist.Executor
	for i := 0; i < m.distWorkers; i++ {
		out = append(out, &dist.Proc{
			Bin:     m.execBin,
			Args:    m.execArgs,
			Tag:     fmt.Sprintf("local-%d", i+1),
			OnSpawn: m.spawnHook,
		})
	}
	if m.registry != nil {
		for _, e := range m.registry.live() {
			out = append(out, &dist.HTTP{URL: e.URL, Tag: e.Name})
		}
	}
	return out
}

// executeDist runs one campaign as a distributed coordinator. The
// shard segments live next to the record file (<id>.shards/) so a
// coordinator restart salvages them; journaled shard completions skip
// finished shards entirely.
func (m *Manager) executeDist(ctx context.Context, c *Campaign, resumed bool) {
	segDir := ""
	if m.dataDir != "" {
		segDir = filepath.Join(m.dataDir, c.ID+".shards")
	} else {
		tmp, err := os.MkdirTemp("", "ctrlguard-shards-")
		if err != nil {
			m.finalize(c, nil, goofi.FaultStats{}, fmt.Errorf("segment dir: %w", err), "")
			return
		}
		segDir = tmp
		defer os.RemoveAll(tmp)
	}
	if !resumed {
		// A fresh submission must not inherit segments from an earlier
		// unjournaled run under the same ID.
		os.RemoveAll(segDir)
	}

	c.mu.Lock()
	completed := c.shardsDone
	c.mu.Unlock()
	if !resumed {
		completed = nil
	}

	var lastJournal time.Time
	var mu sync.Mutex
	opts := dist.Options{
		ShardSize:       m.shardSize,
		LeaseTTL:        m.leaseTTL,
		SegmentDir:      segDir,
		Campaign:        c.ID,
		CompletedShards: completed,
		Logger:          m.logger,
		TaskHook:        m.distTaskHook,
		Journal: func(e journal.Entry) {
			switch e.Type {
			case journal.EventShardLeased:
				metrics.ShardsLeased.Add(1)
			case journal.EventShardCompleted:
				metrics.ShardsCompleted.Add(1)
			case journal.EventShardExpired:
				metrics.ShardsExpired.Add(1)
			}
			m.appendJournal(e)
		},
		OnRecord: func(rec goofi.Record) {
			metrics.ExperimentsTotal.Add(1)
			c.mu.Lock()
			c.outcomes[rec.Outcome]++
			c.mu.Unlock()
		},
		OnProgress: func(done, total int) {
			c.mu.Lock()
			c.done, c.total = done, total
			c.broadcastLocked(c.eventLocked("progress"))
			outcomes := copyCounts(c.outcomes)
			c.mu.Unlock()
			mu.Lock()
			due := time.Since(lastJournal) >= journalProgressEvery
			if due {
				lastJournal = time.Now()
			}
			mu.Unlock()
			if due {
				m.appendJournal(journal.Entry{Job: c.ID, Type: journal.EventProgress,
					Done: done, Total: total, Outcomes: outcomes})
			}
		},
	}

	executors := m.distExecutors()
	m.logger.Printf("campaign %s: distributing across %d executors (shard size %d)",
		c.ID, len(executors), opts.ShardSize)
	res, runErr := dist.Run(ctx, c.Spec, executors, opts)

	var recs []goofi.Record
	var faults goofi.FaultStats
	path := ""
	if res != nil {
		recs = res.Records
		faults = res.Faults
		metrics.ExperimentsResumed.Add(int64(faults.Resumed))
		prune := res.Prune
		metrics.ExperimentsPlanned.Add(int64(prune.Planned))
		metrics.ExperimentsSimulated.Add(int64(prune.Simulated))
		metrics.ExperimentsPrunedDead.Add(int64(prune.PrunedDead))
		metrics.ExperimentsCollapsed.Add(int64(prune.Collapsed))
		// The coordinator merges shard records without a campaign Result,
		// so detector verdicts are tallied from the records themselves
		// (shard golden runs stay on the executors, so no FP stats here).
		cfe, auto := goofi.TallyDetect(recs)
		metrics.DetectorCFEDetected.Add(int64(cfe))
		metrics.DetectorAutomatonDetected.Add(int64(auto))
		c.mu.Lock()
		p := prune
		c.prune = &p
		// The coordinator counts progress from salvaged segments too;
		// outcomes for those records arrive only with the final merge.
		c.outcomes = make(map[string]int)
		for _, rec := range recs {
			c.outcomes[rec.Outcome]++
		}
		c.mu.Unlock()
	}
	if m.dataDir != "" && len(recs) > 0 && !m.killed.Load() {
		path = filepath.Join(m.dataDir, c.ID+".jsonl")
		if err := goofi.SaveRecords(path, recs); err != nil {
			path = ""
			if runErr == nil {
				runErr = err
			}
		}
	}
	if runErr == nil {
		// dist.Run already removed the segment files on success; drop
		// the now-empty working directory too.
		os.Remove(segDir)
	}
	m.finalize(c, recs, faults, runErr, path)
}

// --- executor registry HTTP endpoints -------------------------------

// handleExecRegister is POST /api/v1/executors: a remote ctrlexec
// announces (or re-announces — this doubles as the heartbeat) itself.
func (s *Server) handleExecRegister(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad executor registration: %v", err)
		return
	}
	if req.Name == "" || req.URL == "" {
		s.writeError(w, http.StatusBadRequest, "executor registration needs name and url")
		return
	}
	e := s.mgr.registry.upsert(req.Name, req.URL)
	metrics.ExecutorsRegistered.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"name":    e.Name,
		"url":     e.URL,
		"ttl":     s.mgr.registry.ttl.String(),
		"expires": e.Seen.Add(s.mgr.registry.ttl),
	})
}

// handleExecList is GET /api/v1/executors: the live registrations.
func (s *Server) handleExecList(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"executors": s.mgr.registry.live()})
}

// handleExecDelete is DELETE /api/v1/executors/{name}: a clean
// deregistration on executor shutdown.
func (s *Server) handleExecDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.mgr.registry.remove(name) {
		s.writeError(w, http.StatusNotFound, "no executor %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
