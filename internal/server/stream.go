package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Live progress streaming. The default wire format is NDJSON — one
// Event JSON object per line, flushed as it happens — which curl and
// any line-oriented consumer can read. Clients that ask for
// text/event-stream get the same events framed as SSE instead.
//
// The stream is: one "snapshot" event on connect, "progress" events as
// experiments complete, and a final event whose type is the terminal
// state ("done", "failed" or "cancelled"), after which the stream
// closes.

// minEventGap throttles progress events per connection so a large fast
// campaign doesn't drown the wire; snapshot and terminal events always
// go out.
const minEventGap = 50 * time.Millisecond

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	events, unsubscribe := c.Subscribe()
	defer unsubscribe()

	write := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	var lastProgress time.Time
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-events:
			if ev.Type == "progress" {
				if time.Since(lastProgress) < minEventGap {
					continue
				}
				lastProgress = time.Now()
			}
			if !write(ev) {
				return
			}
			if State(ev.Type).Terminal() {
				return
			}
		case <-c.Done():
			// Drain anything buffered, then emit the terminal event
			// built from the final state (the broadcast copy may have
			// been dropped for a slow reader).
			for {
				select {
				case ev := <-events:
					if State(ev.Type).Terminal() {
						write(ev)
						return
					}
				default:
					v := c.Snapshot()
					ev := Event{
						Type:     string(v.State),
						Campaign: c.ID,
						State:    v.State,
						Done:     v.Done,
						Total:    v.Total,
						Outcomes: v.Outcomes,
						Error:    v.Error,
					}
					write(ev)
					return
				}
			}
		}
	}
}
