package server

import (
	"io"
	"net/http"
	"strconv"

	"ctrlguard/internal/goofi"
	"ctrlguard/internal/trace"
)

// handleTrace replays experiment {n} of a campaign in detail mode and
// serves its propagation trace. The replay is derived from the
// campaign spec's seed — no trace is stored ahead of time — so it
// works for any experiment of any fixed-size campaign, at the cost of
// two instrumented runs per request. ?format= selects the shape:
// json (default: record + trace + causal chain), bin (the compact
// stream format), svg (the propagation timeline), or text (the chain).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if c.Kind != KindCampaign {
		s.writeError(w, http.StatusConflict, "campaign %s is not a fault-injection campaign", c.ID)
		return
	}
	if c.Spec.Sequential() {
		// Sequential campaigns re-seed per batch; their experiments
		// are not addressable by a single (seed, index) pair.
		s.writeError(w, http.StatusConflict,
			"campaign %s is precision-driven; its experiments cannot be replayed by index", c.ID)
		return
	}
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil || n < 0 {
		s.writeError(w, http.StatusNotFound, "bad experiment index %q", r.PathValue("n"))
		return
	}
	var rec *goofi.Record
	recs := c.Records()
	for i := range recs {
		if recs[i].ID == n {
			rec = &recs[i]
			break
		}
	}
	if rec == nil {
		s.writeError(w, http.StatusNotFound,
			"campaign %s has no record for experiment %d (state %s, %d records)",
			c.ID, n, c.Snapshot().State, len(recs))
		return
	}
	cfg, err := c.Spec.Resolve()
	if err != nil { // validated at Submit; only a programming error lands here
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	tr, err := goofi.TraceExperiment(r.Context(), cfg, n)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away mid-trace; nothing to answer
		}
		s.writeError(w, http.StatusInternalServerError, "trace: %v", err)
		return
	}

	format := r.URL.Query().Get("format")
	switch format {
	case "", "json":
		s.writeJSON(w, http.StatusOK, map[string]any{
			"record": rec,
			"trace":  tr,
			"chain":  trace.Analyze(tr, 0),
		})
	case "bin":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(trace.Encode(tr))
	case "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		io.WriteString(w, trace.TimelineSVG(tr, nil))
	case "text", "chain":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, trace.Analyze(tr, 0).String())
	default:
		s.writeError(w, http.StatusBadRequest, "unknown trace format %q", format)
	}
}
