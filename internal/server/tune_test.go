package server

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctrlguard/internal/tune"
)

// TestServerTuneJobLifecycle drives a design-space tuning job through
// the HTTP API end to end: submit → progress events → outcome, with
// the per-candidate results persisted like campaign records.
func TestServerTuneJobLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DataDir: dataDir})

	spec := `{
		"space": {
			"policies": ["none", "rollback"],
			"learned": [false],
			"slacks": [0],
			"rateLimits": [0]
		},
		"seed": 17,
		"initialExperiments": 60,
		"rounds": 1
	}`
	resp, err := http.Post(ts.URL+"/api/v1/tune", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad submit response %q: %v", body, err)
	}
	if v.Kind != KindTune {
		t.Fatalf("kind = %q, want %q", v.Kind, KindTune)
	}
	if v.TuneSpec == nil || v.TuneSpec.Seed != 17 {
		t.Fatalf("tune spec not echoed: %+v", v)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/tune/"+v.ID+"/result" {
		t.Errorf("Location = %q", loc)
	}

	// The result endpoint conflicts until the search finishes.
	if code := getJSON(t, ts.URL+"/api/v1/tune/"+v.ID+"/result", nil); code != http.StatusConflict && code != http.StatusOK {
		t.Errorf("early result fetch returned %d", code)
	}

	events := streamEvents(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/events", 120*time.Second)
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("tune job ended %s: %s", last.State, last.Error)
	}
	if last.Done == 0 || last.Done > last.Total {
		t.Errorf("final progress %d/%d", last.Done, last.Total)
	}

	var outcome tune.Outcome
	if code := getJSON(t, ts.URL+"/api/v1/tune/"+v.ID+"/result", &outcome); code != http.StatusOK {
		t.Fatalf("result fetch returned %d", code)
	}
	if outcome.Recommended == nil {
		t.Fatal("outcome has no recommendation")
	}
	if outcome.Recommended.Severe.P() >= outcome.Baseline.Severe.P() {
		t.Errorf("recommended severe %v not below baseline %v",
			outcome.Recommended.Severe, outcome.Baseline.Severe)
	}
	if len(outcome.Front) == 0 {
		t.Error("outcome has an empty front")
	}

	// Results persisted next to campaign records.
	var final View
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &final); code != http.StatusOK {
		t.Fatalf("get returned %d", code)
	}
	wantPath := filepath.Join(dataDir, v.ID+".jsonl")
	if final.RecordsPath != wantPath {
		t.Fatalf("records path = %q, want %q", final.RecordsPath, wantPath)
	}
	saved, err := tune.LoadResults(wantPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != len(outcome.Results) {
		t.Errorf("persisted %d results, outcome has %d", len(saved), len(outcome.Results))
	}

	// The report endpoint stays a campaign-only feature.
	if code := getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID+"/report", nil); code != http.StatusConflict {
		t.Errorf("report on a tune job returned %d, want conflict", code)
	}

	// The in-process accessor serves the same outcome.
	c, err := s.mgr.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if c.Outcome() == nil || c.Outcome().Recommended == nil {
		t.Error("Campaign.Outcome missing the finished search")
	}
}

func TestServerTuneSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	for name, body := range map[string]string{
		"garbage":       "{",
		"unknown field": `{"bogus": true}`,
		"bad policy":    `{"space": {"policies": ["explode"]}}`,
		"bad rounds":    `{"rounds": 99}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/tune", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestServerTuneResultOnPlainCampaign(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	v := submit(t, ts, `{"variant":"alg1","n":2,"seed":1}`)
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur View
		getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &cur)
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/api/v1/tune/"+v.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("tune result on a plain campaign returned %d, want conflict", code)
	}
}
