package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"ctrlguard/internal/tenant"
)

// The overload suite drives the multi-tenant admission layer through
// the full HTTP stack: API keys, rate limits, quotas, shedding,
// fair-share scheduling under saturation, memoization, retention, and
// the journal-backed restart that must not lose a byte of quota
// accounting. CI runs it under -race.

// postSpec submits a campaign spec with an optional API key and
// returns the response (body pre-read, so the connection is closed).
func postSpec(t *testing.T, ts *httptest.Server, key, spec string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/campaigns", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	// Admission must answer immediately, overloaded or not: a blocked
	// submission is itself a test failure.
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("submission blocked or failed: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// submitKey is postSpec asserting 202 and decoding the View.
func submitKey(t *testing.T, ts *httptest.Server, key, spec string) View {
	t.Helper()
	resp, body := postSpec(t, ts, key, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d: %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad submit response %q: %v", body, err)
	}
	return v
}

func TestTenantAuthRequired(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Tenants: []tenant.Tenant{
		{Name: "acme", Key: "acme-key"},
	}})
	if resp, _ := postSpec(t, ts, "", `{"variant":"alg1","n":5,"seed":1}`); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("missing key accepted: %d", resp.StatusCode)
	}
	if resp, _ := postSpec(t, ts, "wrong", `{"variant":"alg1","n":5,"seed":1}`); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key accepted: %d", resp.StatusCode)
	}
	v := submitKey(t, ts, "acme-key", `{"variant":"alg1","n":5,"seed":1}`)
	if v.Tenant != "acme" {
		t.Fatalf("job attributed to %q, want acme", v.Tenant)
	}
	waitForState(t, ts, v.ID, StateDone, time.Minute)
}

func TestTenantRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Tenants: []tenant.Tenant{
		{Name: "slow", Key: "slow-key", RatePerSec: 0.2, Burst: 1},
	}})
	if resp, body := postSpec(t, ts, "slow-key", `{"variant":"alg1","n":5,"seed":1}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit rejected: %d %s", resp.StatusCode, body)
	}
	resp, body := postSpec(t, ts, "slow-key", `{"variant":"alg1","n":5,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit returned %d (%s), want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := time.ParseDuration(ra + "s"); err != nil || secs < time.Second {
		t.Fatalf("429 Retry-After = %q, want the whole-second token wait", ra)
	}
}

func TestTenantQuotaOutstandingJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		ConfigHook: slowHook(3 * time.Millisecond),
		Tenants: []tenant.Tenant{
			{Name: "capped", Key: "cap-key", MaxQueuedJobs: 1},
		},
	})
	v := submitKey(t, ts, "cap-key", `{"variant":"alg1","n":400,"seed":1,"workers":1}`)
	resp, body := postSpec(t, ts, "cap-key", `{"variant":"alg1","n":5,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "quota") {
		t.Fatalf("over-quota submit returned %d (%s), want 429 quota", resp.StatusCode, body)
	}
	// Quotas count outstanding (queued + running) work and clear only
	// when the job reaches a terminal state.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+v.ID, nil)
	if dresp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
	}
	deadline := time.Now().Add(time.Minute)
	for {
		resp, _ := postSpec(t, ts, "cap-key", `{"variant":"alg1","n":5,"seed":3}`)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never released after cancelling the outstanding job")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTenantQuotaOutstandingExperiments(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		ConfigHook: slowHook(3 * time.Millisecond),
		Tenants: []tenant.Tenant{
			{Name: "capped", Key: "cap-key", MaxQueuedExperiments: 100},
		},
	})
	submitKey(t, ts, "cap-key", `{"variant":"alg1","n":80,"seed":1,"workers":1}`)
	resp, body := postSpec(t, ts, "cap-key", `{"variant":"alg1","n":30,"seed":2}`)
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), "quota") {
		t.Fatalf("over-quota submit returned %d (%s), want 429 quota", resp.StatusCode, body)
	}
	// A job that still fits goes through.
	if resp, body := postSpec(t, ts, "cap-key", `{"variant":"alg1","n":20,"seed":3}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("within-quota submit rejected: %d %s", resp.StatusCode, body)
	}
}

func TestQueueOverloadSheds503(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 2,
		ConfigHook: slowHook(3 * time.Millisecond),
	})
	// One running plus two queued fills the house.
	for i := 0; i < 3; i++ {
		submitKey(t, ts, "", `{"variant":"alg1","n":200,"seed":`+itoa(i+1)+`,"workers":1}`)
	}
	resp, body := postSpec(t, ts, "", `{"variant":"alg1","n":5,"seed":9}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit returned %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	after := metricsMap(t, ts)
	if after["requests_shed"] < 1 {
		t.Fatalf("requests_shed = %v, want >= 1", after["requests_shed"])
	}
}

// TestOverloadFairShare saturates one worker with three tenants of
// weights 1:2:3 and requires completions in weight proportion: over
// the first 12 completions bronze:silver:gold must be 2:4:6 within
// one job of tolerance.
func TestOverloadFairShare(t *testing.T) {
	tenants := []tenant.Tenant{
		{Name: "bronze", Key: "kb", Weight: 1},
		{Name: "silver", Key: "ks", Weight: 2},
		{Name: "gold", Key: "kg", Weight: 3},
	}
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 64,
		ConfigHook: slowHook(2 * time.Millisecond),
		Tenants:    tenants,
	})
	const perTenant = 10
	var ids []string
	for i := 0; i < perTenant; i++ {
		for _, key := range []string{"kg", "ks", "kb"} {
			v := submitKey(t, ts, key, `{"variant":"alg1","n":20,"seed":`+itoa(i)+`,"workers":1}`)
			ids = append(ids, v.ID)
		}
	}
	for _, id := range ids {
		waitForState(t, ts, id, StateDone, 2*time.Minute)
	}

	// Reconstruct the completion order from finish timestamps.
	type finished struct {
		tenant string
		at     time.Time
	}
	var order []finished
	for _, c := range s.mgr.List() {
		v := c.Snapshot()
		if v.State == StateDone && v.Finished != nil {
			order = append(order, finished{v.Tenant, *v.Finished})
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].at.Before(order[j].at) })
	if len(order) != 3*perTenant {
		t.Fatalf("%d campaigns finished, want %d", len(order), 3*perTenant)
	}
	counts := map[string]int{}
	for _, f := range order[:12] {
		counts[f.tenant]++
	}
	want := map[string]int{"bronze": 2, "silver": 4, "gold": 6}
	for name, w := range want {
		if got := counts[name]; got < w-1 || got > w+1 {
			t.Errorf("over the first 12 completions %s finished %d jobs, want %d±1 (all: %v)", name, got, w, counts)
		}
	}
	if !(counts["gold"] > counts["silver"] && counts["silver"] > counts["bronze"]) {
		t.Errorf("completion shares not ordered by weight: %v", counts)
	}
}

// TestUsageAccountingSurvivesRestart crashes a loaded server and
// requires the journal replay to reconstruct per-tenant quota
// accounting byte-for-byte.
func TestUsageAccountingSurvivesRestart(t *testing.T) {
	tenants := []tenant.Tenant{
		{Name: "acme", Key: "ka"},
		{Name: "beta", Key: "kb2"},
	}
	dataDir, journalDir := t.TempDir(), t.TempDir()
	cfg := Config{
		Workers: 1, QueueDepth: 8,
		DataDir: dataDir, JournalDir: journalDir,
		ConfigHook: slowHook(5 * time.Millisecond),
		Tenants:    tenants,
	}
	s1, ts1 := newTestServer(t, cfg)
	running := submitKey(t, ts1, "ka", `{"variant":"alg1","n":400,"seed":1,"workers":1}`)
	waitForProgress(t, ts1, running.ID, 5)
	submitKey(t, ts1, "ka", `{"variant":"alg1","n":50,"seed":2}`)
	submitKey(t, ts1, "kb2", `{"variant":"alg1","n":30,"seed":3}`)

	before, err := json.Marshal(s1.mgr.UsageSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	s1.mgr.kill() // the process vanishes with all three jobs outstanding

	s2, _ := newTestServer(t, cfg)
	after, err := json.Marshal(s2.mgr.UsageSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("usage accounting diverged across restart:\n before %s\n after  %s", before, after)
	}
}

// strconv renders a small non-negative int without importing strconv
// into the JSON-building hot path of the soak loop.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestMemoizationServesDuplicates(t *testing.T) {
	dataDir, cacheDir := t.TempDir(), t.TempDir()
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		DataDir: dataDir, CacheDir: cacheDir,
	})
	const spec = `{"variant":"alg1","n":120,"seed":42}`
	v1 := submit(t, ts, spec)
	waitForState(t, ts, v1.ID, StateDone, time.Minute)
	want, err := os.ReadFile(filepath.Join(dataDir, v1.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}

	v2 := submit(t, ts, spec)
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("duplicate spec not served from cache: state %s, cacheHit %v", v2.State, v2.CacheHit)
	}
	if v2.ID == v1.ID {
		t.Fatal("cache hit reused the original job ID")
	}
	got, err := os.ReadFile(filepath.Join(dataDir, v2.ID+".jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("memoized record file differs from the original run (%d vs %d bytes)", len(got), len(want))
	}
	after := metricsMap(t, ts)
	if after["cache_hits"] < 1 {
		t.Fatalf("cache_hits = %v, want >= 1", after["cache_hits"])
	}
	// A different seed is a different content address.
	v3 := submit(t, ts, `{"variant":"alg1","n":120,"seed":43}`)
	if v3.CacheHit {
		t.Fatal("distinct spec wrongly served from cache")
	}
}

func TestMemoizationTenantOptOut(t *testing.T) {
	dataDir, cacheDir := t.TempDir(), t.TempDir()
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		DataDir: dataDir, CacheDir: cacheDir,
		Tenants: []tenant.Tenant{
			{Name: "cached", Key: "kc"},
			{Name: "fresh", Key: "kf", NoCache: true},
		},
	})
	const spec = `{"variant":"alg1","n":60,"seed":7}`
	v1 := submitKey(t, ts, "kf", spec)
	if v1.CacheHit {
		t.Fatal("first run cannot be a cache hit")
	}
	waitForState(t, ts, v1.ID, StateDone, time.Minute)

	// The opted-out tenant always runs fresh...
	v2 := submitKey(t, ts, "kf", spec)
	if v2.CacheHit || v2.State == StateDone {
		t.Fatalf("NoCache tenant served from cache: state %s, cacheHit %v", v2.State, v2.CacheHit)
	}
	waitForState(t, ts, v2.ID, StateDone, time.Minute)

	// ...but its completed runs still seed the shared store.
	v3 := submitKey(t, ts, "kc", spec)
	if !v3.CacheHit {
		t.Fatal("cached tenant missed a result the NoCache tenant already produced")
	}
}

func TestRetentionSweep(t *testing.T) {
	dataDir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		DataDir:   dataDir,
		RetainAge: 30 * time.Minute,
	})
	v := submit(t, ts, `{"variant":"alg1","n":40,"seed":5}`)
	waitForState(t, ts, v.ID, StateDone, time.Minute)
	path := filepath.Join(dataDir, v.ID+".jsonl")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("record file missing before sweep: %v", err)
	}

	if n := s.mgr.retentionSweep(time.Now()); n != 0 {
		t.Fatalf("young campaign reclaimed: %d deletions", n)
	}
	if n := s.mgr.retentionSweep(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("aged campaign not reclaimed: %d deletions", n)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("record file survived the sweep")
	}
	var view View
	getJSON(t, ts.URL+"/api/v1/campaigns/"+v.ID, &view)
	if view.RecordsPath != "" {
		t.Fatalf("swept campaign still advertises records at %q", view.RecordsPath)
	}
}

func TestRetentionByteBudget(t *testing.T) {
	dataDir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		DataDir:     dataDir,
		RetainBytes: 1, // every terminal record file is over budget
	})
	a := submit(t, ts, `{"variant":"alg1","n":30,"seed":1}`)
	waitForState(t, ts, a.ID, StateDone, time.Minute)
	b := submit(t, ts, `{"variant":"alg1","n":30,"seed":2}`)
	waitForState(t, ts, b.ID, StateDone, time.Minute)

	if n := s.mgr.retentionSweep(time.Now()); n != 2 {
		t.Fatalf("byte budget reclaimed %d campaigns, want 2", n)
	}
	for _, id := range []string{a.ID, b.ID} {
		if _, err := os.Stat(filepath.Join(dataDir, id+".jsonl")); !os.IsNotExist(err) {
			t.Fatalf("record file %s survived the byte-budget sweep", id)
		}
	}
}

// TestRecordPageStreams restarts a server so the finished campaign's
// records live only on disk, then pages through them without the
// server ever materializing the full set.
func TestRecordPageStreams(t *testing.T) {
	dataDir, journalDir := t.TempDir(), t.TempDir()
	cfg := Config{Workers: 1, QueueDepth: 4, DataDir: dataDir, JournalDir: journalDir}
	s1, ts1 := newTestServer(t, cfg)
	v := submit(t, ts1, `{"variant":"alg1","n":150,"seed":9}`)
	waitForState(t, ts1, v.ID, StateDone, time.Minute)
	ts1.Close()
	s1.Close()

	_, ts2 := newTestServer(t, cfg)
	var page struct {
		Total   int             `json:"total"`
		Count   int             `json:"count"`
		Records json.RawMessage `json:"records"`
	}
	for _, tc := range []struct{ offset, limit, wantCount int }{
		{0, 100, 100},
		{100, 100, 50},
		{140, 25, 10},
		{150, 10, 0},
	} {
		url := ts2.URL + "/api/v1/campaigns/" + v.ID + "/records?offset=" + itoa(tc.offset) + "&limit=" + itoa(tc.limit)
		if code := getJSON(t, url, &page); code != http.StatusOK {
			t.Fatalf("records page returned %d", code)
		}
		if page.Total != 150 || page.Count != tc.wantCount {
			t.Fatalf("offset %d limit %d: total %d count %d, want total 150 count %d",
				tc.offset, tc.limit, page.Total, page.Count, tc.wantCount)
		}
	}
}
