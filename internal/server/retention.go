package server

import (
	"os"
	"sort"
	"time"

	"ctrlguard/internal/goofi"
)

// Retention keeps the data directory bounded on long-lived servers.
// The sweep only ever touches campaigns in a genuinely terminal state
// (done, failed, cancelled) — never interrupted jobs, whose record
// files are the resume source for the next start — and deletes their
// persisted records oldest-finished-first, either past a configured
// age or to fit a byte budget. The jobs themselves stay listed; only
// the bulk record data is reclaimed.

// retentionInterval paces the background sweep. Tests call
// retentionSweep directly instead of waiting it out.
const retentionInterval = 30 * time.Second

func (m *Manager) retentionLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(retentionInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-ticker.C:
			m.retentionSweep(time.Now())
		}
	}
}

// retainable is one terminal campaign's on-disk footprint.
type retainable struct {
	c        *Campaign
	finished time.Time
	dataPath string
	segDir   string
	bytes    int64
}

// retentionSweep applies the age and byte policies once. It is safe
// to call concurrently with running campaigns: only terminal
// non-interrupted jobs are considered, and their paths are cleared
// under the campaign lock before the files go away.
func (m *Manager) retentionSweep(now time.Time) (deleted int) {
	if m.retainAge <= 0 && m.retainBytes <= 0 {
		return 0
	}
	var items []retainable
	for _, c := range m.List() {
		c.mu.Lock()
		state := c.state
		r := retainable{c: c, finished: c.finished, dataPath: c.dataPath, segDir: c.segDir}
		c.mu.Unlock()
		if state != StateDone && state != StateFailed && state != StateCancelled {
			continue
		}
		if r.dataPath == "" && r.segDir == "" {
			continue
		}
		if r.dataPath != "" {
			if fi, err := os.Stat(r.dataPath); err == nil {
				r.bytes += fi.Size()
			}
		}
		if r.segDir != "" {
			if files, err := goofi.SegmentFiles(r.segDir); err == nil {
				for _, f := range files {
					if fi, err := os.Stat(f); err == nil {
						r.bytes += fi.Size()
					}
				}
			}
		}
		items = append(items, r)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].finished.Before(items[j].finished) })

	var total int64
	for _, r := range items {
		total += r.bytes
	}
	for _, r := range items {
		expired := m.retainAge > 0 && !r.finished.IsZero() && now.Sub(r.finished) > m.retainAge
		overBudget := m.retainBytes > 0 && total > m.retainBytes
		if !expired && !overBudget {
			continue
		}
		m.reclaim(r)
		total -= r.bytes
		deleted++
	}
	return deleted
}

// reclaim removes one campaign's record files, detaching the paths
// from the job first so readers see "records gone" rather than a
// dangling file reference.
func (m *Manager) reclaim(r retainable) {
	r.c.mu.Lock()
	r.c.dataPath = ""
	r.c.segDir = ""
	r.c.mu.Unlock()
	if r.dataPath != "" {
		if err := os.Remove(r.dataPath); err != nil && !os.IsNotExist(err) {
			m.logger.Printf("retention: remove %s: %v", r.dataPath, err)
		}
	}
	if r.segDir != "" {
		if err := os.RemoveAll(r.segDir); err != nil {
			m.logger.Printf("retention: remove %s: %v", r.segDir, err)
		}
	}
	metrics.RetentionDeleted.Add(1)
	metrics.RetentionBytes.Add(r.bytes)
	m.logger.Printf("retention: reclaimed %s (%d bytes)", r.c.ID, r.bytes)
}
