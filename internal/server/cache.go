package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"ctrlguard/internal/castore"
	"ctrlguard/internal/fsatomic"
	"ctrlguard/internal/goofi"
	"ctrlguard/internal/journal"
	"ctrlguard/internal/tenant"
)

// Campaign memoization: a fixed-count campaign's records are a pure
// function of (goofi.EngineVersion, canonical spec), so a completed
// run's canonical JSONL can be filed in the content-addressed store
// and replayed verbatim for any later submission of the same spec —
// the duplicate costs a hash and a file copy instead of thousands of
// simulated experiments.
//
// What is deliberately NOT part of the key: Workers, LockstepK, and
// the Disable* benchmarking knobs, all of which the engine guarantees
// leave the record bytes unchanged. What is deliberately NOT cached:
// precision-driven (sequential) campaigns, whose experiment count is
// data-dependent and whose point is the fresh stopping decision; runs
// under a test ConfigHook, which mutates the engine config after spec
// resolution; and runs that abandoned experiments, whose records are
// incomplete by definition.

// memoSpec is the canonical, order-stable projection of a spec that
// determines its record bytes.
type memoSpec struct {
	Variant     string `json:"variant"`
	Experiments int    `json:"n"`
	Seed        uint64 `json:"seed"`
	Model       string `json:"model"`
	BurstWidth  int    `json:"burstWidth"`
	Detector    string `json:"detector"`
}

// memoKey derives the content address for a spec's results.
func memoKey(s goofi.CampaignSpec) (string, error) {
	v, err := goofi.ResolveVariant(s.Alg, s.Variant)
	if err != nil {
		return "", err
	}
	return castore.Key(goofi.EngineVersion, memoSpec{
		Variant:     string(v),
		Experiments: s.Experiments,
		Seed:        s.Seed,
		Model:       s.Model,
		BurstWidth:  s.BurstWidth,
		Detector:    s.Detector,
	})
}

// memoizable reports whether a job's results may flow through the
// cache at all. A tenant's NoCache opt-out additionally blocks being
// *served* from the cache (checked in serveFromCache) but not
// contributing to it — a fresh run's bytes are correct for everyone.
func (m *Manager) memoizable(c *Campaign) bool {
	return m.cache != nil && c.Kind == KindCampaign && !c.Spec.Sequential() &&
		m.hook == nil
}

// serveFromCache checks the content-addressed store for the spec's
// results and, on a hit, completes the campaign immediately: it is
// registered, journaled, and visible like any other job, but reaches
// StateDone without ever touching the queue. Returns false on any
// miss or cache trouble — the caller then runs the campaign for real.
func (m *Manager) serveFromCache(ten tenant.Tenant, c *Campaign) (bool, error) {
	if !m.memoizable(c) || ten.NoCache {
		return false, nil
	}
	key, err := memoKey(c.Spec)
	if err != nil {
		return false, nil
	}
	data, ok, err := m.cache.Get(key)
	if err != nil || !ok {
		metrics.CacheMisses.Add(1)
		return false, nil
	}
	recs, err := goofi.ReadRecords(bytes.NewReader(data))
	if err != nil { // corrupt entry: run for real rather than serve garbage
		m.logger.Printf("cache entry %s unreadable, ignoring: %v", key[:12], err)
		metrics.CacheMisses.Add(1)
		return false, nil
	}

	now := time.Now()
	m.mu.Lock()
	m.nextID++
	c.ID = fmt.Sprintf("c%06d", m.nextID)
	m.jobs[c.ID] = c
	m.order = append(m.order, c.ID)
	m.mu.Unlock()

	// Materialize the canonical record file so /records, /report, and
	// /trace serve the memoized job exactly like a freshly run one.
	path := ""
	if m.dataDir != "" {
		path = filepath.Join(m.dataDir, c.ID+".jsonl")
		if werr := fsatomic.WriteFile(path, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}); werr != nil {
			m.logger.Printf("campaign %s: cache materialization failed (serving in memory): %v", c.ID, werr)
			path = ""
		}
	}

	outcomes := make(map[string]int, 4)
	for _, r := range recs {
		outcomes[r.Outcome]++
	}
	c.mu.Lock()
	c.state = StateDone
	c.started = now
	c.finished = time.Now()
	c.cacheHit = true
	c.done = len(recs)
	c.records = recs
	c.outcomes = outcomes
	c.dataPath = path
	c.broadcastLocked(c.eventLocked(string(StateDone)))
	close(c.doneCh)
	c.mu.Unlock()
	metrics.CacheHits.Add(1)
	metrics.CampaignsDone.Add(1)

	spec, _ := json.Marshal(c.Spec)
	m.appendJournal(journal.Entry{
		Job: c.ID, Type: journal.EventSubmitted,
		Kind: string(c.Kind), State: string(StateQueued), Total: c.total,
		Spec: spec, Tenant: c.Tenant,
	})
	m.journalTerminal(c)
	m.logger.Printf("campaign %s served from result cache (%d records, key %s)", c.ID, len(recs), key[:12])
	return true, nil
}

// cachePutFile memoizes a completed campaign whose canonical record
// file is already on disk (the common path).
func (m *Manager) cachePutFile(c *Campaign, faults goofi.FaultStats, path string) {
	if faults.Abandoned > 0 || !m.memoizable(c) {
		return
	}
	key, err := memoKey(c.Spec)
	if err != nil {
		return
	}
	if err := m.cache.PutFile(key, path); err != nil {
		m.logger.Printf("campaign %s: memoization failed (continuing): %v", c.ID, err)
	}
}

// cachePut memoizes a completed campaign straight from memory (no
// data directory configured).
func (m *Manager) cachePut(c *Campaign, faults goofi.FaultStats, recs []goofi.Record) {
	if len(recs) == 0 || faults.Abandoned > 0 || !m.memoizable(c) {
		return
	}
	key, err := memoKey(c.Spec)
	if err != nil {
		return
	}
	var buf bytes.Buffer
	if err := goofi.WriteRecords(&buf, recs); err != nil {
		return
	}
	if err := m.cache.Put(key, buf.Bytes()); err != nil {
		m.logger.Printf("campaign %s: memoization failed (continuing): %v", c.ID, err)
	}
}
